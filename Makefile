GO ?= go

.PHONY: build test race bench check fmt vet chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The fault-injection acceptance scenarios under the race detector.
chaos:
	$(GO) test -race -run Chaos ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet race chaos

GO ?= go

.PHONY: build test race bench check fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet race

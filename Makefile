GO ?= go

.PHONY: build test race bench bench-json check fmt vet lint chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark run: the full suite in `go test -json` event
# form, dated so successive runs can be diffed for regressions.
bench-json:
	$(GO) test -json -run '^$$' -bench=. -benchmem . > BENCH_$(shell date +%Y%m%d).json

# The fault-injection acceptance scenarios under the race detector.
chaos:
	$(GO) test -race -run Chaos ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a notice when staticcheck is not on
# PATH (CI installs it; local runs need not).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping lint"; \
	fi

check: fmt vet lint race chaos

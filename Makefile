GO ?= go

# Minimum acceptable total statement coverage (percent) for `make cover`.
COVER_FLOOR ?= 78.0
# Optional suffix for bench-json output, e.g. BENCH_SUFFIX=b to write
# BENCH_<date>b.json next to an existing same-day baseline.
BENCH_SUFFIX ?=

.PHONY: build test race bench bench-json bench-guard check cover fmt vet lint chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark run: the full suite in `go test -json` event
# form, dated so successive runs can be diffed for regressions.
bench-json:
	$(GO) test -json -run '^$$' -bench=. -benchmem . > BENCH_$(shell date +%Y%m%d)$(BENCH_SUFFIX).json

# Regression gate on the enactment-overhead benchmark: re-runs it and fails
# when the best instrumented sample degrades more than 5% against the newest
# committed BENCH_*.json baseline (benchstat prints the comparison when
# installed; the verdict itself needs only awk).
bench-guard:
	sh scripts/bench_guard.sh

# Total statement coverage with a floor: fails when the suite drops below
# COVER_FLOOR percent. -short skips the soak/stress scenarios (the race and
# chaos targets run those); coverage comes from the fast deterministic tests.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the floor $(COVER_FLOOR)%"; exit 1; }

# The fault-injection acceptance scenarios under the race detector.
chaos:
	$(GO) test -race -run Chaos ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a notice when staticcheck is not on
# PATH (CI installs it; local runs need not).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping lint"; \
	fi

check: fmt vet lint race chaos cover

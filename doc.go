// Package repro reproduces Yu, Bai, Wang, Ji, and Marinescu,
// "Metainformation and Workflow Management for Solving Complex Problems in
// Grid Environments" (IPDPS 2004): an intelligent, agent-based grid
// environment with a process-description language, an ATN-driven
// coordination service, a GP-based planning service, a Protégé-style
// ontology store, and the virus-reconstruction case study.
//
// The root package holds the experiment benchmark harness (bench_test.go),
// one benchmark per table and figure of the paper; the implementation lives
// under internal/ (see DESIGN.md for the module map).
package repro

#!/usr/bin/env sh
# bench_guard.sh — fail when BenchmarkEnactOverhead regresses against the
# committed baseline.
#
# The committed BENCH_<date>[suffix].json artifacts are `go test -json`
# event streams of benchmark runs. This guard extracts the
# BenchmarkEnactOverhead bare and instrumented ns/op samples from the
# newest one, re-runs the benchmark COUNT times, and compares the
# *overhead ratio* — best instrumented sample over best bare sample,
# taken within the same run so ambient machine load cancels out. Absolute
# ns/op is meaningless across machines (the committed baseline and a CI
# runner differ) and even across hours on one box; the ratio is what the
# benchmark exists to bound. A fresh ratio more than THRESHOLD_PCT above
# the baseline's fails the build. The minimum is used on each side because
# scheduler contention only ever inflates a sample. When benchstat is on
# PATH its comparison table is printed for the log; the pass/fail decision
# itself is plain awk, so the guard works without benchstat too.
#
# Usage: scripts/bench_guard.sh [baseline.json]
#   COUNT=6 THRESHOLD_PCT=5 scripts/bench_guard.sh
set -eu

BENCH='BenchmarkEnactOverhead'
VARIANT='BenchmarkEnactOverhead/instrumented'
BASE_VARIANT='BenchmarkEnactOverhead/bare'
COUNT="${COUNT:-6}"
THRESHOLD_PCT="${THRESHOLD_PCT:-5}"

cd "$(dirname "$0")/.."

baseline="${1:-}"
if [ -z "$baseline" ]; then
    # Newest committed baseline by name (date-ordered: BENCH_YYYYMMDD[a-z].json).
    baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
fi
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_guard: no BENCH_*.json baseline found" >&2
    exit 1
fi
echo "bench_guard: baseline $baseline, count $COUNT, threshold ${THRESHOLD_PCT}%"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Baseline samples: unwrap the JSON event stream back into benchmark text
# lines ("BenchmarkX/variant  N  12345 ns/op  ..."). One logical line may be
# split across several Output events (the name and the values often arrive
# separately), so concatenate every payload first and only then split on the
# escaped newlines.
grep -o '"Output":"[^"]*"' "$baseline" |
    sed -e 's/^"Output":"//' -e 's/"$//' |
    tr -d '\n' |
    sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' |
    grep "^$BENCH.*ns/op" > "$tmp/old.txt" || true
if ! grep -q "^$VARIANT" "$tmp/old.txt"; then
    echo "bench_guard: $VARIANT not present in $baseline" >&2
    exit 1
fi

echo "bench_guard: running $BENCH x$COUNT ..."
# A failed iteration (the suite has one known flaky enactment precondition)
# only loses that sample; the guard judges the median of the samples that
# did complete and errors only when none did.
go test -run '^$' -bench "^$BENCH\$" -count "$COUNT" . > "$tmp/new.txt" ||
    echo "bench_guard: note — a benchmark iteration failed; judging the remaining samples" >&2
grep "^$BENCH" "$tmp/new.txt" || true
grep -q "^$VARIANT.*ns/op" "$tmp/new.txt" || { echo "bench_guard: benchmark produced no samples" >&2; exit 1; }

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$tmp/old.txt" "$tmp/new.txt" || true
fi

# Best (minimum) ns/op for one variant in one file, then the ratio verdict.
# The variant name may carry a -GOMAXPROCS suffix, hence the [ -] match.
best() {
    grep "^$2[ -]" "$1" | awk '{ for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i }' |
        sort -n | head -1
}
old_instr=$(best "$tmp/old.txt" "$VARIANT")
old_bare=$(best "$tmp/old.txt" "$BASE_VARIANT")
new_instr=$(best "$tmp/new.txt" "$VARIANT")
new_bare=$(best "$tmp/new.txt" "$BASE_VARIANT")
for v in "$old_instr" "$old_bare" "$new_instr" "$new_bare"; do
    [ -n "$v" ] || { echo "bench_guard: missing ns/op samples to compare" >&2; exit 1; }
done
awk -v oi="$old_instr" -v ob="$old_bare" -v ni="$new_instr" -v nb="$new_bare" \
    -v pct="$THRESHOLD_PCT" 'BEGIN {
    old = oi / ob; new = ni / nb
    delta = (new - old) / old * 100
    printf "bench_guard: overhead ratio %.3f (%.0f/%.0f ns/op) -> %.3f (%.0f/%.0f ns/op): %+.1f%%, budget +%s%%\n",
        old, oi, ob, new, ni, nb, delta, pct
    exit (delta > pct + 0) ? 1 : 0
}' || { echo "bench_guard: FAIL — instrumented overhead grew beyond ${THRESHOLD_PCT}%" >&2; exit 1; }
echo "bench_guard: OK"

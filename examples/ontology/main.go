// Ontology: the metainformation side of the paper. Builds the Figure 12
// grid ontology shell, populates it with the Figure 13 instances for the
// 3DSD task, runs queries over the knowledge base, and round-trips the whole
// ontology through the ontology service the way agents exchange it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/agent"
	"repro/internal/ontology"
	"repro/internal/services"
	"repro/internal/virolab"
)

func main() {
	// --- Figure 12: the ontology shell ----------------------------------
	shell := ontology.GridShell()
	fmt.Println("Figure 12 ontology shell:")
	for _, c := range shell.Classes() {
		fmt.Printf("  %-20s %2d slots  %s\n", c.Name, len(c.Slots), c.Doc)
	}

	// --- Figure 13: the populated instances ------------------------------
	kbase, err := virolab.Ontology()
	if err != nil {
		log.Fatal(err)
	}
	classes, instances := kbase.Stats()
	fmt.Printf("\nFigure 13 instances: %d (in %d classes)\n", instances, classes)

	task := kbase.Instance("T1")
	fmt.Printf("  task %s (%s), owner %s\n", task.Text("ID"), task.Text("Name"), task.Text("Owner"))
	fmt.Printf("  process description: %s, case description: %s\n",
		task.Text("ProcessDescription"), task.Text("CaseDescription"))

	// Queries, the way the coordination service navigates metadata.
	fmt.Println("\n3D models known to the system:")
	for _, in := range kbase.Query(ontology.ClassData, func(in *ontology.Instance) bool {
		return in.Text("Classification") == "3D Model"
	}) {
		fmt.Printf("  %-4s created by %s\n", in.ID, in.Text("Creator"))
	}
	fmt.Println("activities of service P3DR:")
	for _, in := range kbase.Query(ontology.ClassActivity, func(in *ontology.Instance) bool {
		return in.Text("ServiceName") == "P3DR"
	}) {
		fmt.Printf("  %-4s %-6s inputs %s -> outputs %s\n",
			in.ID, in.Text("Name"), in.Text("InputDataSet"), in.Text("OutputDataSet"))
	}

	// --- Distribution through the ontology service ----------------------
	platform := agent.NewPlatform()
	defer platform.Shutdown()
	ontsvc := services.NewOntologyService()
	if _, err := platform.Register(services.OntologyName, ontsvc); err != nil {
		log.Fatal(err)
	}
	client := platform.MustRegister("client", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))

	data, err := kbase.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Call(services.OntologyName, services.OntOntology,
		services.PublishKB{Name: "3dsd", JSON: data}, time.Second); err != nil {
		log.Fatal(err)
	}
	reply, err := client.Call(services.OntologyName, services.OntOntology,
		services.KBRequest{Name: "3dsd"}, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fetched, err := ontology.Decode(reply.Content.(services.KBReply).JSON)
	if err != nil {
		log.Fatal(err)
	}
	_, n := fetched.Stats()
	fmt.Printf("\npublished and fetched back through the ontology service: %d instances, %d bytes JSON\n",
		n, len(data))
	if errs := fetched.ValidateRefs(); len(errs) == 0 {
		fmt.Println("all instance references validate")
	} else {
		fmt.Println("reference problems:", errs)
	}
}

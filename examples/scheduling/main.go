// Scheduling: the resource-management side of the environment. Builds a
// heterogeneous grid, compares the four scheduling heuristics on a mixed
// workload, injects MTBF/MTTR failures through the discrete-event kernel to
// measure availability, and uses the simulation service to predict how the
// workload behaves under that churn.
package main

import (
	"fmt"
	"log"

	"repro/internal/grid"
	"repro/internal/services"
	"repro/internal/sim"
)

func main() {
	cfg := grid.DefaultSyntheticConfig()
	cfg.Clusters = 6
	cfg.SMPs = 3
	cfg.Supercomputers = 1
	g := grid.Synthetic(cfg)
	fmt.Printf("grid: %d nodes in %d equivalence classes\n", len(g.Nodes()), len(g.EquivalenceClasses()))
	for _, c := range g.EquivalenceClasses() {
		fmt.Printf("  %-26s %d node(s)\n", c.Key, len(c.Nodes))
	}

	// A mixed workload: one long reconstruction per four short jobs.
	var workload []services.TaskSpec
	for i := 0; i < 40; i++ {
		spec := services.TaskSpec{ID: fmt.Sprintf("t%02d", i), Service: "PSF", BaseTime: 300, DataMB: 100}
		if i%4 == 0 {
			spec.Service, spec.BaseTime, spec.DataMB = "P3DR", 1800, 1500
		}
		workload = append(workload, spec)
	}

	// --- Heuristic comparison --------------------------------------------
	sched := &services.Scheduling{Grid: g}
	fmt.Println("\nscheduling heuristics on 40 mixed tasks:")
	fmt.Println("  heuristic   makespan(s)  assigned")
	for _, h := range []services.Heuristic{
		services.HeuristicMinMin, services.HeuristicMaxMin,
		services.HeuristicSufferage, services.HeuristicFCFS,
	} {
		reply := sched.ScheduleWith(workload, h)
		fmt.Printf("  %-10s  %11.0f  %8d\n", h, reply.Makespan, len(reply.Assignments))
	}

	// --- Failure injection ------------------------------------------------
	eng := sim.NewEngine(11)
	const horizon = 200000.0
	plan, err := g.Inject(eng, 20000, 2000, horizon) // MTBF 20000s, MTTR 2000s
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(horizon)
	avail := plan.Availability(horizon)
	fmt.Printf("\nfailure injection over %.0fs (MTBF 20000s, MTTR 2000s): %d transitions\n",
		horizon, len(plan.Transitions))
	worst, worstA := "", 1.0
	for node, a := range avail {
		if a < worstA {
			worst, worstA = node, a
		}
	}
	if worst != "" {
		fmt.Printf("  least available node: %s at %.1f%%\n", worst, 100*worstA)
	}

	// Nodes may be down right now (the injection left the grid in its final
	// state); the what-if simulation sees exactly that degraded grid.
	down := 0
	for _, n := range g.Nodes() {
		if !n.Up() {
			down++
		}
	}
	fmt.Printf("  nodes down at horizon: %d\n", down)

	// --- What-if simulation ----------------------------------------------
	simsvc := services.Simulation{Grid: g}
	res := simsvc.Simulate(services.SimulateRequest{
		Tasks:        workload,
		InterArrival: 30,
		Retries:      2,
		Seed:         3,
	})
	fmt.Printf("\nsimulation service prediction on the degraded grid:\n")
	fmt.Printf("  makespan %.0fs, completed %d, failed %d, retried %d, utilization %.1f%%\n",
		res.Makespan, res.Completed, res.Failed, res.Retried, 100*res.Utilization)
}

// Virolab: the complete Section 4 case study. Builds the Figure 10 process
// description for 3D virus reconstruction, shows its Figure 11 plan tree and
// PDL text, enacts it on a heterogeneous simulated grid with the iterative
// resolution-refinement loop, and finally reruns the Section 5 planning
// experiment at reduced scale.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/plantree"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func main() {
	// --- Figure 10: the process description -----------------------------
	process := virolab.Process()
	fmt.Println("Figure 10 process description:")
	fmt.Printf("  %d end-user + %d flow-control activities, %d transitions\n",
		process.CountKind(workflow.KindEndUser),
		len(process.Activities)-process.CountKind(workflow.KindEndUser),
		len(process.Transitions))

	// --- Figure 11: the corresponding plan tree -------------------------
	tree, err := plantree.FromProcess(process)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 11 plan tree:")
	fmt.Println("  " + tree.String())

	text, err := pdl.Format(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPDL text:")
	fmt.Println(indent(text, "  "))

	// --- Enactment on the simulated grid ---------------------------------
	env, err := core.NewEnvironment(core.Options{
		Catalog:     virolab.Catalog(),
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	report, err := env.SubmitContext(context.Background(), virolab.Task(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("enactment:")
	fmt.Printf("  completed=%v, %d executions over %d firings\n",
		report.Completed, report.Executed, report.Fired)
	fmt.Printf("  simulated compute time %.0f s, cost %.2f\n",
		report.SimulatedTime, report.TotalCost)
	d12 := report.FinalState.Get("D12")
	if v, ok := d12.Prop(workflow.PropValue); ok {
		fmt.Printf("  final electron-density-map resolution: %s Angstrom\n", v.Str())
	}

	// --- Section 5 planning experiment (reduced scale) -------------------
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	results, err := planner.RunManyContext(context.Background(), virolab.Problem(), params, 3)
	if err != nil {
		log.Fatal(err)
	}
	s := planner.Summarize(results)
	fmt.Println("\nplanning experiment (3 runs at reduced scale; see cmd/gridplan for Table 2):")
	fmt.Printf("  avg fitness %.3f, avg validity %.2f, avg goal %.2f, avg size %.1f\n",
		s.AvgFitness, s.AvgValidity, s.AvgGoalFitness, s.AvgSize)
	fmt.Printf("  best plan of run 1: %s\n", results[0].Best.Tree)
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += prefix + s[start:i]
			}
			if i < len(s) {
				out += "\n"
			}
			start = i + 1
		}
	}
	return out
}

// Replanning: the Figure 3 failure-recovery scenario. The only node hosting
// the P3DR reconstruction program goes down mid-environment; the
// coordination service detects the non-executable activity, the planning
// service verifies executability through the information service, the
// brokerage service, and the application containers (the eight-step Figure 3
// interaction, printed live), and the re-planned workflow completes using a
// backup reconstruction service.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/planner"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func main() {
	// A two-node grid: the fast SMP hosts P3DR; the cluster hosts
	// everything else plus the backup P3DRALT.
	g := grid.New(7)
	mustAdd(g.AddNode(&grid.Node{
		ID: "smp-1", Domain: "purdue.edu",
		Hardware:   grid.Hardware{Type: "SMP", Speed: 3, BandwidthMbps: 1000, LatencyUs: 10},
		CostPerSec: 0.05,
	}))
	mustAdd(g.AddNode(&grid.Node{
		ID: "cluster-1", Domain: "ucf.edu",
		Hardware:   grid.Hardware{Type: "PC-cluster", Speed: 1.2, BandwidthMbps: 100, LatencyUs: 100},
		CostPerSec: 0.01,
	}))
	mustAdd(g.AddContainer(&grid.Container{ID: "ac-main", NodeID: "smp-1",
		Services: []string{"POD", "P3DR", "POR", "PSF"}}))
	mustAdd(g.AddContainer(&grid.Container{ID: "ac-backup", NodeID: "cluster-1",
		Services: []string{"POD", "POR", "PSF", "P3DRALT"}}))

	catalog := virolab.Catalog()
	p3dr := catalog.Get("P3DR")
	catalog.Add(&workflow.Service{
		Name:     "P3DRALT",
		Inputs:   p3dr.Inputs,
		Outputs:  p3dr.Outputs,
		BaseTime: p3dr.BaseTime * 2, // the backup program is slower
		Cost:     p3dr.Cost,
	})

	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	params.Seed = 7
	env, err := core.NewEnvironment(core.Options{
		Grid:        g,
		Catalog:     catalog,
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// Print the Figure 3 interaction steps as the planning service runs
	// them, and the message flow between the services.
	env.Planning.Trace = func(step string) { fmt.Println("    [fig3]", step) }
	env.Platform.SetTrace(func(m agent.Message) {
		if m.Sender == "coordination" || m.Receiver == "coordination" {
			fmt.Printf("    [msg] %s -> %s (%s)\n", m.Sender, m.Receiver, m.Performative)
		}
	})

	fmt.Println("failing node smp-1 (the only P3DR provider)...")
	if err := g.SetNodeUp("smp-1", false); err != nil {
		log.Fatal(err)
	}

	fmt.Println("enacting PD-3DSD; expect a re-plan onto P3DRALT:")
	report, err := env.SubmitContext(context.Background(), virolab.Task(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted=%v after %d re-plan(s); %d executions, %d failures\n",
		report.Completed, report.Replans, report.Executed, report.Failures)
	fmt.Println("replanning trace events:")
	for _, e := range report.Trace {
		if e.Kind == "replan" || e.Kind == "plan-request" || e.Kind == "plan-received" {
			printEvent(e)
		}
	}
}

func printEvent(e coordination.TraceEvent) {
	fmt.Printf("  %-14s %-8s %s\n", e.Kind, e.Activity, e.Detail)
}

func mustAdd(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

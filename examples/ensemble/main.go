// Ensemble: a second scientific domain on the same machinery, demonstrating
// that nothing in the library is virolab-specific. A climate-style ensemble
// run: generate perturbed members, simulate each, aggregate three distinct
// member results, verify. The GP planner must discover that AGG needs three
// different member outputs — the same distinct-binding structure that makes
// PSF need two 3D models — and the plan enacts with a soft deadline.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/planner"
	"repro/internal/workflow"
)

func catalog() *workflow.Catalog {
	gen := &workflow.Service{
		Name: "GEN",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "base-config"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name:  "B",
			Props: map[string]expr.Value{workflow.PropClassification: expr.String("member-config")},
		}},
		BaseTime: 30,
	}
	simulate := &workflow.Service{
		Name: "SIMD",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "member-config"`},
			{Name: "B", Condition: `B.Classification = "forcing-data"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name:  "C",
			Props: map[string]expr.Value{workflow.PropClassification: expr.String("member-result")},
		}},
		BaseTime: 1200,
	}
	agg := &workflow.Service{
		Name: "AGG",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "member-result"`},
			{Name: "B", Condition: `B.Classification = "member-result"`},
			{Name: "C", Condition: `C.Classification = "member-result"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name:  "D",
			Props: map[string]expr.Value{workflow.PropClassification: expr.String("ensemble-mean")},
		}},
		BaseTime: 120,
	}
	verify := &workflow.Service{
		Name: "VERIFY",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "ensemble-mean"`},
			{Name: "B", Condition: `B.Classification = "observations"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name:  "C",
			Props: map[string]expr.Value{workflow.PropClassification: expr.String("skill-report")},
		}},
		BaseTime: 60,
	}
	return workflow.NewCatalog(gen, simulate, agg, verify)
}

func main() {
	cat := catalog()
	params := planner.DefaultParams()
	params.PopulationSize = 200
	params.Generations = 25
	params.Seed = 4

	env, err := core.NewEnvironment(core.Options{Catalog: cat, Planner: params})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	initial := []*workflow.DataItem{
		workflow.NewDataItem("cfg", "base-config"),
		workflow.NewDataItem("forcing", "forcing-data"),
		workflow.NewDataItem("obs", "observations"),
	}
	problem := &workflow.Problem{
		Name:    "ensemble",
		Initial: workflow.NewState(initial...),
		Goal:    workflow.NewGoal(`G.Classification = "skill-report"`),
		Catalog: cat,
	}
	pd, reply, err := env.Plan("ensemble", problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned ensemble workflow:", reply.Tree)
	fmt.Printf("  fitness %.3f (validity %.1f, goal %.1f, size %d)\n",
		reply.Eval.Fitness, reply.Eval.FV, reply.Eval.FG, reply.Eval.Size)

	caseDesc := workflow.NewCase("ens-1", "ensemble case").AddData(initial...)
	caseDesc.Goal = problem.Goal
	caseDesc.Deadline = 4000 // soft; generous for this grid, flagged only if overrun
	report, err := env.SubmitContext(context.Background(), &workflow.Task{
		ID: "E1", Name: "ensemble", Process: pd, Case: caseDesc,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enacted: completed=%v in %.0fs wall (%.0fs compute), deadline missed: %v\n",
		report.Completed, report.WallClockTime, report.SimulatedTime, report.DeadlineMissed)
	for _, item := range report.FinalState.Items() {
		if item.Classification() == "skill-report" || item.Classification() == "ensemble-mean" {
			fmt.Println("  ", item)
		}
	}
}

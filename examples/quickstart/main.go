// Quickstart: define a tiny service catalog, let the GP planning service
// synthesize a process description for a goal, and enact it on a simulated
// grid — the whole paper in forty lines of calling code.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/planner"
	"repro/internal/workflow"
)

func main() {
	// Two services: "collect" turns raw input into a dataset, "analyze"
	// turns a dataset into a report. Pre- and postconditions are metadata
	// predicates, exactly as in the paper's C1..C8.
	collect := &workflow.Service{
		Name: "collect",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "raw"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name:  "B",
			Props: map[string]expr.Value{workflow.PropClassification: expr.String("dataset")},
		}},
		BaseTime: 30,
	}
	analyze := &workflow.Service{
		Name: "analyze",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "dataset"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name:  "B",
			Props: map[string]expr.Value{workflow.PropClassification: expr.String("report")},
		}},
		BaseTime: 60,
	}
	catalog := workflow.NewCatalog(collect, analyze)

	params := planner.DefaultParams()
	params.PopulationSize = 60
	params.Generations = 10

	env, err := core.NewEnvironment(core.Options{Catalog: catalog, Planner: params})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// The planning problem: from one raw item to a report.
	problem := &workflow.Problem{
		Name:    "quickstart",
		Initial: workflow.NewState(workflow.NewDataItem("input", "raw")),
		Goal:    workflow.NewGoal(`G.Classification = "report"`),
		Catalog: catalog,
	}
	pd, reply, err := env.Plan("quickstart", problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned:", reply.Tree)
	fmt.Printf("planner evaluation: fitness %.3f (validity %.1f, goal %.1f)\n",
		reply.Eval.Fitness, reply.Eval.FV, reply.Eval.FG)

	// Enact the plan as a case: initial data plus the goal condition.
	caseDesc := workflow.NewCase("quick-1", "quickstart case").
		AddData(workflow.NewDataItem("input", "raw"))
	caseDesc.Goal = workflow.NewGoal(`G.Classification = "report"`)
	report, err := env.SubmitContext(context.Background(), &workflow.Task{
		ID: "Q1", Name: "quickstart", Process: pd, Case: caseDesc,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enacted: completed=%v, %d executions, %.1f simulated seconds\n",
		report.Completed, report.Executed, report.SimulatedTime)
	for _, item := range report.FinalState.Items() {
		fmt.Println("  ", item)
	}
}

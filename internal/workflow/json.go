package workflow

import (
	"encoding/json"
	"fmt"
)

// jsonActivity, jsonTransition, and jsonProcess are the interchange forms.
// Unlike the PDL text (which carries only structure and conditions), the
// JSON form is complete: it preserves activity data-set bindings and
// constraints, so checkpointed enactments can resume exactly.
type jsonActivity struct {
	ID         string   `json:"id"`
	Name       string   `json:"name,omitempty"`
	Kind       string   `json:"kind"`
	Service    string   `json:"service,omitempty"`
	Inputs     []string `json:"inputs,omitempty"`
	Outputs    []string `json:"outputs,omitempty"`
	Constraint string   `json:"constraint,omitempty"`
}

type jsonTransition struct {
	ID        string `json:"id"`
	Source    string `json:"source"`
	Dest      string `json:"dest"`
	Condition string `json:"condition,omitempty"`
}

type jsonProcess struct {
	Name        string           `json:"name"`
	Activities  []jsonActivity   `json:"activities"`
	Transitions []jsonTransition `json:"transitions"`
}

// MarshalJSON implements json.Marshaler with a complete, deterministic
// rendering of the process description.
func (p *ProcessDescription) MarshalJSON() ([]byte, error) {
	if p.encJSON != nil {
		// Memoized rendering of the unchanged graph; hand out a copy so a
		// caller scribbling on the result cannot poison the cache.
		return append([]byte(nil), p.encJSON...), nil
	}
	out := jsonProcess{Name: p.Name}
	for _, a := range p.Activities {
		out.Activities = append(out.Activities, jsonActivity{
			ID: a.ID, Name: a.Name, Kind: a.Kind.String(), Service: a.Service,
			Inputs: a.Inputs, Outputs: a.Outputs, Constraint: a.Constraint,
		})
	}
	for _, t := range p.Transitions {
		out.Transitions = append(out.Transitions, jsonTransition{
			ID: t.ID, Source: t.Source, Dest: t.Dest, Condition: t.Condition,
		})
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	p.encJSON = data
	return append([]byte(nil), data...), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *ProcessDescription) UnmarshalJSON(data []byte) error {
	var in jsonProcess
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.Name = in.Name
	p.Activities = nil
	p.Transitions = nil
	p.indexed = false
	p.validated = false
	p.encJSON = nil
	for _, ja := range in.Activities {
		kind, err := ParseKind(ja.Kind)
		if err != nil {
			return fmt.Errorf("workflow: activity %s: %w", ja.ID, err)
		}
		p.Activities = append(p.Activities, &Activity{
			ID: ja.ID, Name: ja.Name, Kind: kind, Service: ja.Service,
			Inputs: ja.Inputs, Outputs: ja.Outputs, Constraint: ja.Constraint,
		})
	}
	for _, jt := range in.Transitions {
		p.Transitions = append(p.Transitions, &Transition{
			ID: jt.ID, Source: jt.Source, Dest: jt.Dest, Condition: jt.Condition,
		})
	}
	return nil
}

// DecodeProcess parses a process description from its JSON form and
// validates it.
func DecodeProcess(data []byte) (*ProcessDescription, error) {
	p := &ProcessDescription{}
	if err := p.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

package workflow

import (
	"strings"
	"testing"
)

// buildSequential builds BEGIN -> A -> B -> END.
func buildSequential() *ProcessDescription {
	p := NewProcess("seq")
	p.Add(&Activity{ID: "begin", Name: "BEGIN", Kind: KindBegin})
	p.Add(&Activity{ID: "a", Name: "A", Kind: KindEndUser, Service: "svcA"})
	p.Add(&Activity{ID: "b", Name: "B", Kind: KindEndUser, Service: "svcB"})
	p.Add(&Activity{ID: "end", Name: "END", Kind: KindEnd})
	p.Connect("begin", "a")
	p.Connect("a", "b")
	p.Connect("b", "end")
	return p
}

// buildForkJoin builds BEGIN -> FORK -> {A,B} -> JOIN -> END.
func buildForkJoin() *ProcessDescription {
	p := NewProcess("forkjoin")
	p.Add(&Activity{ID: "begin", Kind: KindBegin, Name: "BEGIN"})
	p.Add(&Activity{ID: "fork", Kind: KindFork, Name: "FORK"})
	p.Add(&Activity{ID: "a", Kind: KindEndUser, Name: "A", Service: "svcA"})
	p.Add(&Activity{ID: "b", Kind: KindEndUser, Name: "B", Service: "svcB"})
	p.Add(&Activity{ID: "join", Kind: KindJoin, Name: "JOIN"})
	p.Add(&Activity{ID: "end", Kind: KindEnd, Name: "END"})
	p.Connect("begin", "fork")
	p.Connect("fork", "a")
	p.Connect("fork", "b")
	p.Connect("a", "join")
	p.Connect("b", "join")
	p.Connect("join", "end")
	return p
}

// buildChoiceMerge builds BEGIN -> CHOICE -> {A,B} -> MERGE -> END with
// conditions on the choice arcs.
func buildChoiceMerge() *ProcessDescription {
	p := NewProcess("choicemerge")
	p.Add(&Activity{ID: "begin", Kind: KindBegin, Name: "BEGIN"})
	p.Add(&Activity{ID: "choice", Kind: KindChoice, Name: "CHOICE"})
	p.Add(&Activity{ID: "a", Kind: KindEndUser, Name: "A", Service: "svcA"})
	p.Add(&Activity{ID: "b", Kind: KindEndUser, Name: "B", Service: "svcB"})
	p.Add(&Activity{ID: "merge", Kind: KindMerge, Name: "MERGE"})
	p.Add(&Activity{ID: "end", Kind: KindEnd, Name: "END"})
	p.Connect("begin", "choice")
	p.ConnectCond("choice", "a", `x.v > 0`)
	p.ConnectCond("choice", "b", `x.v <= 0`)
	p.Connect("a", "merge")
	p.Connect("b", "merge")
	p.Connect("merge", "end")
	return p
}

func TestValidateGoodProcesses(t *testing.T) {
	for _, p := range []*ProcessDescription{buildSequential(), buildForkJoin(), buildChoiceMerge()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*ProcessDescription)
		wantSub string
	}{
		{"two begins", func(p *ProcessDescription) {
			p.Add(&Activity{ID: "begin2", Kind: KindBegin})
		}, "1 Begin"},
		{"no end", func(p *ProcessDescription) {
			acts := p.Activities[:0]
			for _, a := range p.Activities {
				if a.Kind != KindEnd {
					acts = append(acts, a)
				}
			}
			p.Activities = acts
			p.indexed = false
		}, "1 End"},
		{"dup activity id", func(p *ProcessDescription) {
			p.Add(&Activity{ID: "a", Kind: KindEndUser, Service: "x"})
		}, "duplicate activity ID"},
		{"dangling transition", func(p *ProcessDescription) {
			p.Connect("a", "ghost")
		}, "unknown destination"},
		{"self loop", func(p *ProcessDescription) {
			p.Connect("a", "a")
		}, "self loop"},
		{"end-user without service", func(p *ProcessDescription) {
			p.Activity("a").Service = ""
		}, "no service"},
		{"flow control with service", func(p *ProcessDescription) {
			p.Activity("begin").Service = "oops"
		}, "names service"},
		{"bad condition", func(p *ProcessDescription) {
			p.Transitions[1].Condition = "((("
		}, "condition"},
		{"bad constraint", func(p *ProcessDescription) {
			p.Activity("b").Constraint = ">>>"
		}, "constraint"},
	}
	for _, tt := range tests {
		p := buildSequential()
		tt.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error containing %q", tt.name, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tt.name, err, tt.wantSub)
		}
	}
}

func TestValidateDegrees(t *testing.T) {
	// A Choice with a single successor is invalid.
	p := NewProcess("badchoice")
	p.Add(&Activity{ID: "begin", Kind: KindBegin})
	p.Add(&Activity{ID: "choice", Kind: KindChoice})
	p.Add(&Activity{ID: "a", Kind: KindEndUser, Service: "s"})
	p.Add(&Activity{ID: "end", Kind: KindEnd})
	p.Connect("begin", "choice")
	p.Connect("choice", "a")
	p.Connect("a", "end")
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "out-degree") {
		t.Errorf("expected out-degree error, got %v", err)
	}
}

func TestValidateUnreachable(t *testing.T) {
	p := buildSequential()
	// Island end-user node b2 with a private cycle partner would violate
	// degrees; instead hang it off with only an outgoing edge to end (no
	// incoming), which makes in-degree 0 -> degree error. For the
	// reachability path, craft a node fed only from a node after End is
	// impossible; instead check End-unreachable: make b point nowhere by
	// removing b->end and adding b->a? a already has in from begin.
	// Simplest: check unreachable-from-Begin via a detached pair.
	q := NewProcess("detached")
	q.Add(&Activity{ID: "begin", Kind: KindBegin})
	q.Add(&Activity{ID: "a", Kind: KindEndUser, Service: "s"})
	q.Add(&Activity{ID: "end", Kind: KindEnd})
	q.Add(&Activity{ID: "x", Kind: KindEndUser, Service: "s"})
	q.Add(&Activity{ID: "y", Kind: KindEndUser, Service: "s"})
	q.Connect("begin", "a")
	q.Connect("a", "end")
	q.Connect("x", "y")
	q.Connect("y", "x") // self-cycle pair, detached from main flow
	err := q.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("expected unreachable error, got %v", err)
	}
	_ = p
}

func TestSuccessorsPredecessors(t *testing.T) {
	p := buildForkJoin()
	succ := p.Successors("fork")
	if len(succ) != 2 {
		t.Fatalf("fork successors = %d, want 2", len(succ))
	}
	pred := p.Predecessors("join")
	if len(pred) != 2 {
		t.Fatalf("join predecessors = %d, want 2", len(pred))
	}
	if got := p.Successors("end"); len(got) != 0 {
		t.Errorf("end successors = %d, want 0", len(got))
	}
	if b := p.Begin(); b == nil || b.ID != "begin" {
		t.Errorf("Begin() = %v", b)
	}
	if e := p.End(); e == nil || e.ID != "end" {
		t.Errorf("End() = %v", e)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildChoiceMerge()
	q := p.Clone()
	q.Activity("a").Name = "MUTATED"
	q.Transitions[0].Dest = "elsewhere"
	if p.Activity("a").Name == "MUTATED" {
		t.Error("activity mutation leaked into original")
	}
	if p.Transitions[0].Dest == "elsewhere" {
		t.Error("transition mutation leaked into original")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("original corrupted: %v", err)
	}
}

func TestCountsAndLookups(t *testing.T) {
	p := buildForkJoin()
	if n := p.CountKind(KindEndUser); n != 2 {
		t.Errorf("CountKind(EndUser) = %d, want 2", n)
	}
	if a := p.ActivityByName("A"); a == nil || a.ID != "a" {
		t.Errorf("ActivityByName(A) = %v", a)
	}
	if a := p.ActivityByName("ZZZ"); a != nil {
		t.Errorf("ActivityByName(ZZZ) = %v, want nil", a)
	}
	if got := len(p.EndUserActivities()); got != 2 {
		t.Errorf("EndUserActivities len = %d, want 2", got)
	}
	if !strings.Contains(p.String(), "forkjoin") {
		t.Error("String() missing process name")
	}
}

func TestKindStringAndParse(t *testing.T) {
	kinds := []Kind{KindEndUser, KindBegin, KindEnd, KindChoice, KindFork, KindJoin, KindMerge}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("Kind(%d).String() empty", k)
		}
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
	if KindBegin.IsFlowControl() != true || KindEndUser.IsFlowControl() != false {
		t.Error("IsFlowControl mismatch")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind String() empty")
	}
}

func TestDOT(t *testing.T) {
	p := buildChoiceMerge()
	dot := p.DOT()
	for _, want := range []string{"digraph", `"choice"`, "diamond", "x.v > 0", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT() missing %q:\n%s", want, dot)
		}
	}
}

func TestProcessJSONRoundTrip(t *testing.T) {
	p := buildChoiceMerge()
	p.Activity("a").Inputs = []string{"D1", "D2"}
	p.Activity("a").Outputs = []string{"D3"}
	p.Activity("choice").Constraint = "x.v > 1"
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProcess(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || len(back.Activities) != len(p.Activities) || len(back.Transitions) != len(p.Transitions) {
		t.Fatalf("shape mismatch after round trip")
	}
	a := back.Activity("a")
	if strings.Join(a.Inputs, ",") != "D1,D2" || strings.Join(a.Outputs, ",") != "D3" {
		t.Errorf("data sets lost: %+v", a)
	}
	if back.Activity("choice").Constraint != "x.v > 1" {
		t.Error("constraint lost")
	}
	cond := ""
	for _, tr := range back.Out("choice") {
		if tr.Dest == "a" {
			cond = tr.Condition
		}
	}
	if cond != `x.v > 0` {
		t.Errorf("transition condition lost: %q", cond)
	}
	// Second marshal identical (determinism).
	data2, _ := back.MarshalJSON()
	if string(data) != string(data2) {
		t.Error("marshal not deterministic")
	}
	// Corrupt input rejected.
	if _, err := DecodeProcess([]byte(`{"name":"x","activities":[{"id":"a","kind":"weird"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := DecodeProcess([]byte(`{`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := DecodeProcess([]byte(`{"name":"empty"}`)); err == nil {
		t.Error("invalid (empty) process accepted")
	}
}

package workflow

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// testCatalog mirrors the case-study services with the paper's conditions
// C1..C8 (Section 4, Figure 13).
func testCatalog() *Catalog {
	pod := &Service{
		Name: "POD",
		Inputs: []ParamSpec{
			{Name: "A", Condition: `A.Classification = "POD-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
		},
		Outputs: []OutputSpec{
			{Name: "C", Props: map[string]expr.Value{PropClassification: expr.String("Orientation File")}},
		},
		BaseTime: 60,
	}
	p3dr := &Service{
		Name: "P3DR",
		Inputs: []ParamSpec{
			{Name: "A", Condition: `A.Classification = "P3DR-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
			{Name: "C", Condition: `C.Classification = "Orientation File"`},
		},
		Outputs: []OutputSpec{
			{Name: "D", Props: map[string]expr.Value{PropClassification: expr.String("3D Model")}},
		},
		BaseTime: 300,
	}
	psf := &Service{
		Name: "PSF",
		Inputs: []ParamSpec{
			{Name: "A", Condition: `A.Classification = "PSF-Parameter"`},
			{Name: "B", Condition: `B.Classification = "3D Model"`},
			{Name: "C", Condition: `C.Classification = "3D Model"`},
		},
		Outputs: []OutputSpec{
			{Name: "D", Props: map[string]expr.Value{PropClassification: expr.String("Resolution File")}},
		},
		BaseTime: 120,
	}
	return NewCatalog(pod, p3dr, psf)
}

func initialState() *State {
	return NewState(
		NewDataItem("D1", "POD-Parameter"),
		NewDataItem("D2", "P3DR-Parameter"),
		NewDataItem("D6", "PSF-Parameter"),
		NewDataItem("D7", "2D Image").With(PropSize, expr.Number(1.5e9)),
	)
}

func TestServiceBindAndApply(t *testing.T) {
	cat := testCatalog()
	st := initialState()

	pod := cat.Get("POD")
	if pod == nil {
		t.Fatal("POD missing from catalog")
	}
	binding, ok := pod.Bind(st)
	if !ok {
		t.Fatal("POD should be applicable in the initial state")
	}
	if binding["A"].Name != "D1" || binding["B"].Name != "D7" {
		t.Errorf("POD binding = %v", binding)
	}

	// P3DR is not applicable before POD produced an orientation file.
	if cat.Get("P3DR").Applicable(st) {
		t.Error("P3DR should not be applicable before POD")
	}

	st2, valid := pod.Apply(st, []string{"D8"}, 0)
	if !valid {
		t.Fatal("POD application failed")
	}
	if st.Has("D8") {
		t.Error("Apply mutated the input state")
	}
	d8 := st2.Get("D8")
	if d8 == nil || d8.Classification() != "Orientation File" {
		t.Fatalf("D8 = %v", d8)
	}
	if creator, _ := d8.Prop(PropCreator); creator.Str() != "POD" {
		t.Errorf("D8 creator = %v, want POD", creator)
	}

	if !cat.Get("P3DR").Applicable(st2) {
		t.Error("P3DR should be applicable after POD")
	}
}

func TestServiceDistinctBinding(t *testing.T) {
	// PSF needs two distinct 3D models (C7). With only one model it must
	// not bind.
	cat := testCatalog()
	psf := cat.Get("PSF")
	one := NewState(
		NewDataItem("P", "PSF-Parameter"),
		NewDataItem("M1", "3D Model"),
	)
	if psf.Applicable(one) {
		t.Error("PSF bound with a single 3D model; requires two distinct")
	}
	two := NewState(
		NewDataItem("P", "PSF-Parameter"),
		NewDataItem("M1", "3D Model"),
		NewDataItem("M2", "3D Model"),
	)
	b, ok := psf.Bind(two)
	if !ok {
		t.Fatal("PSF should bind with two models")
	}
	if b["B"].Name == b["C"].Name {
		t.Errorf("PSF bound the same item twice: %v", b)
	}
}

func TestBindDeterministic(t *testing.T) {
	cat := testCatalog()
	psf := cat.Get("PSF")
	st := NewState(
		NewDataItem("P", "PSF-Parameter"),
		NewDataItem("MA", "3D Model"),
		NewDataItem("MB", "3D Model"),
		NewDataItem("MC", "3D Model"),
	)
	first, ok := psf.Bind(st)
	if !ok {
		t.Fatal("bind failed")
	}
	for i := 0; i < 20; i++ {
		again, ok := psf.Bind(st)
		if !ok {
			t.Fatal("bind failed on repeat")
		}
		for formal, item := range first {
			if again[formal].Name != item.Name {
				t.Fatalf("nondeterministic binding: run0 %v, run%d %v", first, i, again)
			}
		}
	}
}

func TestApplyGeneratedNames(t *testing.T) {
	cat := testCatalog()
	pod := cat.Get("POD")
	st := initialState()
	st2, ok := pod.Apply(st, nil, 7)
	if !ok {
		t.Fatal("apply failed")
	}
	if !st2.Has("POD.C.7") {
		t.Errorf("generated name missing; state: %v", st2.Names())
	}
	// Failed preconditions return the original state unchanged.
	empty := NewState()
	st3, ok := pod.Apply(empty, nil, 0)
	if ok || st3 != empty {
		t.Error("apply on empty state should fail and return input state")
	}
}

func TestGoalFitness(t *testing.T) {
	g := NewGoal(
		`G.Classification = "Resolution File"`,
		`G.Classification = "3D Model"`,
	)
	st := NewState(NewDataItem("D12", "Resolution File"))
	met, total := g.Satisfied(st)
	if met != 1 || total != 2 {
		t.Errorf("Satisfied = %d/%d, want 1/2", met, total)
	}
	if f := g.Fitness(st); f != 0.5 {
		t.Errorf("Fitness = %v, want 0.5", f)
	}
	st.Put(NewDataItem("D9", "3D Model"))
	if f := g.Fitness(st); f != 1.0 {
		t.Errorf("Fitness = %v, want 1.0", f)
	}
	if f := NewGoal().Fitness(st); f != 1.0 {
		t.Errorf("empty goal Fitness = %v, want 1.0 (vacuous)", f)
	}
}

func TestProblemValidate(t *testing.T) {
	good := &Problem{
		Name:    "p",
		Initial: initialState(),
		Goal:    NewGoal(`G.Classification = "Resolution File"`),
		Catalog: testCatalog(),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good problem: %v", err)
	}
	for _, p := range []*Problem{
		{Name: "nil-initial", Goal: NewGoal("true"), Catalog: testCatalog()},
		{Name: "no-catalog", Initial: NewState(), Goal: NewGoal("true")},
		{Name: "no-goal", Initial: NewState(), Catalog: testCatalog()},
		{Name: "bad-goal", Initial: NewState(), Goal: NewGoal("((("), Catalog: testCatalog()},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", p.Name)
		}
	}
}

func TestServiceValidate(t *testing.T) {
	ok := &Service{Name: "S", Inputs: []ParamSpec{{Name: "A", Condition: "A.x = 1"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid service: %v", err)
	}
	for _, s := range []*Service{
		{Name: ""},
		{Name: "S", Inputs: []ParamSpec{{Name: "A", Condition: "((("}}},
		{Name: "S", Outputs: []OutputSpec{{Name: ""}}},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("service %+v: Validate() = nil, want error", s)
		}
	}
}

func TestCatalogOps(t *testing.T) {
	c := testCatalog()
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	names := c.Names()
	want := []string{"P3DR", "POD", "PSF"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	var zero Catalog
	zero.Add(&Service{Name: "X"})
	if zero.Get("X") == nil {
		t.Error("Add on zero catalog failed")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("catalog validate: %v", err)
	}
}

func TestStateBasics(t *testing.T) {
	st := NewState(NewDataItem("A", "x"))
	if !st.Has("A") || st.Has("B") || st.Len() != 1 {
		t.Fatal("basic state ops broken")
	}
	st.Put(NewDataItem("B", "y").With(PropSize, expr.Number(10)))
	names := st.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
	cl := st.Clone()
	cl.Get("A").Props[PropClassification] = expr.String("mutated")
	if st.Get("A").Classification() == "mutated" {
		t.Error("Clone is shallow")
	}
	st.Remove("A")
	if st.Has("A") {
		t.Error("Remove failed")
	}
	if v, ok := st.Lookup("B", PropSize); !ok || v.Str() != "10" {
		t.Errorf("Lookup = %v, %v", v, ok)
	}
	if _, ok := st.Lookup("nope", PropSize); ok {
		t.Error("Lookup of missing item should fail")
	}
	if !strings.Contains(st.String(), "B{") {
		t.Errorf("String() = %q", st.String())
	}
	var zero State
	zero.Put(NewDataItem("Z", "z"))
	if !zero.Has("Z") {
		t.Error("Put on zero state failed")
	}
}

func TestBindingEnvShadowing(t *testing.T) {
	st := NewState(NewDataItem("D1", "base"))
	b := Binding{
		Formals: map[string]*DataItem{"A": NewDataItem("X", "formal")},
		Base:    st,
	}
	if v, ok := b.Lookup("A", PropClassification); !ok || v.Str() != "formal" {
		t.Errorf("formal lookup = %v, %v", v, ok)
	}
	if v, ok := b.Lookup("D1", PropClassification); !ok || v.Str() != "base" {
		t.Errorf("base lookup = %v, %v", v, ok)
	}
	if _, ok := b.Lookup("nope", "x"); ok {
		t.Error("missing lookup should fail")
	}
	nobase := Binding{Formals: map[string]*DataItem{}}
	if _, ok := nobase.Lookup("A", "x"); ok {
		t.Error("lookup with no base should fail")
	}
}

// Property: Apply never mutates its input state and always grows the state
// by exactly len(Outputs) when it succeeds.
func TestQuickApplyPure(t *testing.T) {
	cat := testCatalog()
	services := cat.Services()
	f := func(which uint8, seq uint8, extra bool) bool {
		svc := services[int(which)%len(services)]
		st := initialState()
		if extra {
			st.Put(NewDataItem("E1", "Orientation File"))
			st.Put(NewDataItem("E2", "3D Model"))
			st.Put(NewDataItem("E3", "3D Model"))
		}
		before := st.Len()
		beforeNames := strings.Join(st.Names(), ",")
		st2, ok := svc.Apply(st, nil, int(seq))
		if strings.Join(st.Names(), ",") != beforeNames {
			return false // input mutated
		}
		if !ok {
			return st2 == st
		}
		return st2.Len() == before+len(svc.Outputs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataItemHelpers(t *testing.T) {
	d := NewDataItem("D", "Klass").With(PropSize, expr.Number(3))
	if d.Classification() != "Klass" {
		t.Error("Classification mismatch")
	}
	if v, ok := d.Prop(PropSize); !ok || v.Str() != "3" {
		t.Error("Prop mismatch")
	}
	var bare DataItem
	bare.With("k", expr.String("v"))
	if v, ok := bare.Prop("k"); !ok || v.Str() != "v" {
		t.Error("With on zero item failed")
	}
	if (&DataItem{Name: "N"}).Classification() != "" {
		t.Error("missing classification should be empty")
	}
	if !strings.Contains(d.String(), "Size=3") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestCaseDescription(t *testing.T) {
	c := NewCase("CD-1", "case").
		AddData(NewDataItem("D1", "POD-Parameter")).
		SetConstraint("Cons1", `D10.value > 8`)
	c.Goal = NewGoal(`G.Classification = "Resolution File"`)
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	st := c.InitialState()
	if !st.Has("D1") {
		t.Error("InitialState missing D1")
	}
	st.Get("D1").Props[PropClassification] = expr.String("mutated")
	if c.InitialData[0].Classification() == "mutated" {
		t.Error("InitialState shares data with case")
	}
	// Duplicates rejected.
	dup := NewCase("CD-2", "dup").AddData(NewDataItem("D1", "x"), NewDataItem("D1", "y"))
	if err := dup.Validate(); err == nil {
		t.Error("duplicate data accepted")
	}
	if err := NewCase("", "anon").Validate(); err == nil {
		t.Error("empty ID accepted")
	}
	empty := NewCase("CD-3", "e").AddData(&DataItem{})
	if err := empty.Validate(); err == nil {
		t.Error("empty data name accepted")
	}
}

func TestTaskValidate(t *testing.T) {
	c := NewCase("CD-1", "case").AddData(NewDataItem("D1", "x"))
	good := &Task{ID: "T1", Name: "t", Case: c, Process: buildSequential()}
	if err := good.Validate(); err != nil {
		t.Errorf("good task: %v", err)
	}
	planned := &Task{ID: "T2", Case: c, NeedPlanning: true}
	if err := planned.Validate(); err != nil {
		t.Errorf("NeedPlanning task: %v", err)
	}
	for _, bad := range []*Task{
		{ID: "", Case: c},
		{ID: "T3"},
		{ID: "T4", Case: c}, // no process, NeedPlanning false
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("task %q: Validate() = nil, want error", bad.ID)
		}
	}
}

package workflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Activity is one node of a process description. End-user activities name a
// computing Service; flow-control activities direct execution.
type Activity struct {
	ID      string // unique within the process description (e.g. "A3")
	Name    string // display name (e.g. "P3DR1")
	Kind    Kind
	Service string // end-user service type name; empty for flow control

	// Inputs and Outputs list case-level data names, in order (the paper's
	// Input Data Set / Output Data Set with Input/Output Data Order).
	Inputs  []string
	Outputs []string

	// Constraint is a condition-expression source attached to the activity
	// (e.g. Cons1 on the Choice activity of Figure 10). For a Choice it
	// selects among successors together with per-transition conditions.
	Constraint string
}

// Clone returns a deep copy of a.
func (a *Activity) Clone() *Activity {
	b := *a
	b.Inputs = append([]string(nil), a.Inputs...)
	b.Outputs = append([]string(nil), a.Outputs...)
	return &b
}

// Transition is a directed edge between two activities. The optional
// Condition guards transitions out of a Choice activity.
type Transition struct {
	ID        string
	Source    string // source activity ID
	Dest      string // destination activity ID
	Condition string // condition-expression source; empty means always
}

// Clone returns a copy of t.
func (t *Transition) Clone() *Transition {
	c := *t
	return &c
}

// ProcessDescription is the formal description of a complex problem: a
// directed graph of activities connected by transitions, starting at a
// single Begin and ending at a single End activity.
type ProcessDescription struct {
	Name        string
	Activities  []*Activity
	Transitions []*Transition

	byID    map[string]*Activity
	out     map[string][]*Transition
	in      map[string][]*Transition
	indexed bool

	// validated memoizes the last Validate result (validErr); Add and
	// ConnectCond invalidate it alongside the index. A task's description
	// is validated at admission, again by the coordinator, and once more by
	// every enactment — on an unchanged graph those are the same answer.
	validated bool
	validErr  error

	// encJSON memoizes the MarshalJSON rendering; invalidated with the
	// index. Every admission re-serializes the process into its journal
	// envelope, and the graph almost never changes between admissions.
	encJSON []byte
}

// NewProcess returns an empty process description with the given name.
func NewProcess(name string) *ProcessDescription {
	return &ProcessDescription{Name: name}
}

// Add appends an activity and returns it, invalidating the index.
func (p *ProcessDescription) Add(a *Activity) *Activity {
	p.Activities = append(p.Activities, a)
	p.indexed = false
	p.validated = false
	p.encJSON = nil
	return a
}

// Connect appends a transition from src to dst with an auto-generated ID and
// returns it.
func (p *ProcessDescription) Connect(src, dst string) *Transition {
	return p.ConnectCond(src, dst, "")
}

// ConnectCond appends a conditional transition from src to dst.
func (p *ProcessDescription) ConnectCond(src, dst, cond string) *Transition {
	t := &Transition{
		ID:        fmt.Sprintf("TR%d", len(p.Transitions)+1),
		Source:    src,
		Dest:      dst,
		Condition: cond,
	}
	p.Transitions = append(p.Transitions, t)
	p.indexed = false
	p.validated = false
	p.encJSON = nil
	return t
}

// index (re)builds the lookup maps.
func (p *ProcessDescription) index() {
	if p.indexed {
		return
	}
	p.byID = make(map[string]*Activity, len(p.Activities))
	for _, a := range p.Activities {
		p.byID[a.ID] = a
	}
	p.out = make(map[string][]*Transition)
	p.in = make(map[string][]*Transition)
	for _, t := range p.Transitions {
		p.out[t.Source] = append(p.out[t.Source], t)
		p.in[t.Dest] = append(p.in[t.Dest], t)
	}
	p.indexed = true
}

// Activity returns the activity with the given ID, or nil.
func (p *ProcessDescription) Activity(id string) *Activity {
	p.index()
	return p.byID[id]
}

// ActivityByName returns the first activity with the given display name, or
// nil. Names are unique in the paper's figures but the model does not
// enforce it.
func (p *ProcessDescription) ActivityByName(name string) *Activity {
	for _, a := range p.Activities {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Out returns the transitions leaving the activity with the given ID.
func (p *ProcessDescription) Out(id string) []*Transition {
	p.index()
	return p.out[id]
}

// In returns the transitions entering the activity with the given ID.
func (p *ProcessDescription) In(id string) []*Transition {
	p.index()
	return p.in[id]
}

// Successors returns the successor activity set of the activity id.
func (p *ProcessDescription) Successors(id string) []*Activity {
	p.index()
	ts := p.out[id]
	succ := make([]*Activity, 0, len(ts))
	for _, t := range ts {
		if a := p.byID[t.Dest]; a != nil {
			succ = append(succ, a)
		}
	}
	return succ
}

// Predecessors returns the predecessor activity set of the activity id.
func (p *ProcessDescription) Predecessors(id string) []*Activity {
	p.index()
	ts := p.in[id]
	pred := make([]*Activity, 0, len(ts))
	for _, t := range ts {
		if a := p.byID[t.Source]; a != nil {
			pred = append(pred, a)
		}
	}
	return pred
}

// Begin returns the Begin activity, or nil if absent or duplicated.
func (p *ProcessDescription) Begin() *Activity { return p.uniqueKind(KindBegin) }

// End returns the End activity, or nil if absent or duplicated.
func (p *ProcessDescription) End() *Activity { return p.uniqueKind(KindEnd) }

func (p *ProcessDescription) uniqueKind(k Kind) *Activity {
	var found *Activity
	for _, a := range p.Activities {
		if a.Kind == k {
			if found != nil {
				return nil
			}
			found = a
		}
	}
	return found
}

// EndUserActivities returns the end-user activities in declaration order.
func (p *ProcessDescription) EndUserActivities() []*Activity {
	var out []*Activity
	for _, a := range p.Activities {
		if a.Kind == KindEndUser {
			out = append(out, a)
		}
	}
	return out
}

// CountKind returns the number of activities of kind k.
func (p *ProcessDescription) CountKind(k Kind) int {
	n := 0
	for _, a := range p.Activities {
		if a.Kind == k {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of p.
func (p *ProcessDescription) Clone() *ProcessDescription {
	q := NewProcess(p.Name)
	for _, a := range p.Activities {
		q.Activities = append(q.Activities, a.Clone())
	}
	for _, t := range p.Transitions {
		q.Transitions = append(q.Transitions, t.Clone())
	}
	return q
}

// String renders a compact multi-line summary for logs and tests.
func (p *ProcessDescription) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "process %s: %d activities, %d transitions\n",
		p.Name, len(p.Activities), len(p.Transitions))
	for _, a := range p.Activities {
		fmt.Fprintf(&sb, "  %s %s (%s)", a.ID, a.Name, a.Kind)
		if a.Service != "" {
			fmt.Fprintf(&sb, " service=%s", a.Service)
		}
		sb.WriteByte('\n')
	}
	for _, t := range p.Transitions {
		fmt.Fprintf(&sb, "  %s: %s -> %s", t.ID, t.Source, t.Dest)
		if t.Condition != "" {
			fmt.Fprintf(&sb, " [%s]", t.Condition)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ValidationError aggregates every structural problem found in a process
// description, so callers can report them all at once.
type ValidationError struct {
	Process  string
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("workflow: process %q invalid: %s",
		e.Process, strings.Join(e.Problems, "; "))
}

// Validate checks the structural rules of Section 3.1:
//
//   - exactly one Begin and one End, occurring nowhere else;
//   - per-kind in/out degree constraints (Choice/Fork: 1 in, >=2 out;
//     Join/Merge: >=2 in, 1 out; end-user: 1 in, 1 out);
//   - unique activity and transition IDs, transitions referencing existing
//     activities, no self loops;
//   - every activity reachable from Begin, and End reachable from every
//     activity;
//   - every condition expression parses.
func (p *ProcessDescription) Validate() error {
	if p.validated {
		return p.validErr
	}
	p.index()
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	seen := make(map[string]bool, len(p.Activities))
	for _, a := range p.Activities {
		if a.ID == "" {
			addf("activity %q has empty ID", a.Name)
			continue
		}
		if seen[a.ID] {
			addf("duplicate activity ID %q", a.ID)
		}
		seen[a.ID] = true
		if a.Kind == KindEndUser && a.Service == "" {
			addf("end-user activity %s has no service", a.ID)
		}
		if a.Kind != KindEndUser && a.Service != "" {
			addf("flow-control activity %s names service %q", a.ID, a.Service)
		}
		if a.Constraint != "" {
			if _, err := expr.Parse(a.Constraint); err != nil {
				addf("activity %s constraint: %v", a.ID, err)
			}
		}
	}

	if n := p.CountKind(KindBegin); n != 1 {
		addf("want exactly 1 Begin activity, have %d", n)
	}
	if n := p.CountKind(KindEnd); n != 1 {
		addf("want exactly 1 End activity, have %d", n)
	}

	tseen := make(map[string]bool, len(p.Transitions))
	for _, t := range p.Transitions {
		if t.ID == "" {
			addf("transition %s->%s has empty ID", t.Source, t.Dest)
		} else if tseen[t.ID] {
			addf("duplicate transition ID %q", t.ID)
		}
		tseen[t.ID] = true
		if p.byID[t.Source] == nil {
			addf("transition %s: unknown source %q", t.ID, t.Source)
		}
		if p.byID[t.Dest] == nil {
			addf("transition %s: unknown destination %q", t.ID, t.Dest)
		}
		if t.Source == t.Dest {
			addf("transition %s: self loop on %q", t.ID, t.Source)
		}
		if t.Condition != "" {
			if _, err := expr.Parse(t.Condition); err != nil {
				addf("transition %s condition: %v", t.ID, err)
			}
		}
	}

	for _, a := range p.Activities {
		inMin, inMax, outMin, outMax := a.Kind.minMaxDegree()
		in, out := len(p.in[a.ID]), len(p.out[a.ID])
		if in < inMin || (inMax >= 0 && in > inMax) {
			addf("%s activity %s has in-degree %d", a.Kind, a.ID, in)
		}
		if out < outMin || (outMax >= 0 && out > outMax) {
			addf("%s activity %s has out-degree %d", a.Kind, a.ID, out)
		}
	}

	if len(problems) == 0 {
		if begin := p.Begin(); begin != nil {
			fromBegin := p.reachableFrom(begin.ID, false)
			for _, a := range p.Activities {
				if !fromBegin[a.ID] {
					addf("activity %s unreachable from Begin", a.ID)
				}
			}
		}
		if end := p.End(); end != nil {
			toEnd := p.reachableFrom(end.ID, true)
			for _, a := range p.Activities {
				if !toEnd[a.ID] {
					addf("End unreachable from activity %s", a.ID)
				}
			}
		}
	}

	p.validated = true
	p.validErr = nil
	if len(problems) > 0 {
		sort.Strings(problems)
		p.validErr = &ValidationError{Process: p.Name, Problems: problems}
	}
	return p.validErr
}

// reachableFrom returns the set of activity IDs reachable from start,
// following transitions backwards when reverse is true.
func (p *ProcessDescription) reachableFrom(start string, reverse bool) map[string]bool {
	p.index()
	visited := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var ts []*Transition
		if reverse {
			ts = p.in[id]
		} else {
			ts = p.out[id]
		}
		for _, t := range ts {
			next := t.Dest
			if reverse {
				next = t.Source
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return visited
}

package workflow

import (
	"fmt"
	"math"
)

// CaseDescription provides the information for one particular instance of a
// process the user wishes to perform: the actual initial data, the result
// set expected, extra constraints, and the goal condition (Section 2 and
// Figure 13's CD-3DSD instance).
type CaseDescription struct {
	ID   string
	Name string

	// InitialData are the concrete data items available when enactment
	// starts (D1..D7 in the case study).
	InitialData []*DataItem

	// ResultSet names the data items the user expects to exist at the end
	// ({D12} in the case study).
	ResultSet []string

	// Constraint is a named condition-expression source evaluated where the
	// process description references it (e.g. Cons1 on the Choice activity).
	Constraints map[string]string

	// Goal is the goal condition of the case (drives re-planning).
	Goal Goal

	// Deadline is a soft deadline on the enactment's wall-clock time in
	// simulated seconds (Section 1: "sometimes tasks may have soft
	// deadlines"); 0 means none. The coordinator flags — but does not abort
	// — enactments that overrun it, unless HardDeadline is set.
	Deadline float64

	// Budget caps the total simulated spend (currency units) of the
	// enactment; 0 means unlimited. The scheduler prefers cheaper candidates
	// as spend approaches the budget and the coordinator aborts with a
	// budget_exceeded terminal reason once it would be blown.
	Budget float64

	// HardDeadline upgrades Deadline from a flag-only soft deadline to a
	// scheduling constraint: candidates are scored by ETA against the time
	// remaining and overrunning aborts with a deadline_missed reason.
	HardDeadline bool
}

// NewCase builds an empty case description.
func NewCase(id, name string) *CaseDescription {
	return &CaseDescription{ID: id, Name: name, Constraints: make(map[string]string)}
}

// AddData appends initial data items.
func (c *CaseDescription) AddData(items ...*DataItem) *CaseDescription {
	c.InitialData = append(c.InitialData, items...)
	return c
}

// SetConstraint registers a named constraint expression.
func (c *CaseDescription) SetConstraint(name, cond string) *CaseDescription {
	if c.Constraints == nil {
		c.Constraints = make(map[string]string)
	}
	c.Constraints[name] = cond
	return c
}

// InitialState materializes the initial system state from the case data.
func (c *CaseDescription) InitialState() *State {
	items := make([]*DataItem, len(c.InitialData))
	for i, d := range c.InitialData {
		items[i] = d.Clone()
	}
	return NewState(items...)
}

// ValidateConstraints checks the budget/deadline constraint fields alone so
// API layers can map violations to a dedicated error code.
func (c *CaseDescription) ValidateConstraints() error {
	if c.Budget < 0 || math.IsNaN(c.Budget) || math.IsInf(c.Budget, 0) {
		return fmt.Errorf("workflow: case %s has invalid budget %v", c.ID, c.Budget)
	}
	if c.Deadline < 0 || math.IsNaN(c.Deadline) || math.IsInf(c.Deadline, 0) {
		return fmt.Errorf("workflow: case %s has invalid deadline %v", c.ID, c.Deadline)
	}
	if c.HardDeadline && c.Deadline <= 0 {
		return fmt.Errorf("workflow: case %s has a hard deadline but no deadline value", c.ID)
	}
	return nil
}

// Constrained reports whether the case carries any enforced scheduling
// constraint (a budget, or a deadline marked hard).
func (c *CaseDescription) Constrained() bool {
	return c.Budget > 0 || (c.HardDeadline && c.Deadline > 0)
}

// Validate checks internal consistency.
func (c *CaseDescription) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("workflow: case with empty ID")
	}
	if err := c.ValidateConstraints(); err != nil {
		return err
	}
	seen := make(map[string]bool, len(c.InitialData))
	for _, d := range c.InitialData {
		if d.Name == "" {
			return fmt.Errorf("workflow: case %s has data item with empty name", c.ID)
		}
		if seen[d.Name] {
			return fmt.Errorf("workflow: case %s has duplicate data item %q", c.ID, d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}

// Task pairs a process description with a case description, mirroring the
// Task ontology class of Figure 12/13 (T1 "3DSD" in the case study).
type Task struct {
	ID      string
	Name    string
	Owner   string
	Process *ProcessDescription
	Case    *CaseDescription

	// NeedPlanning marks a task submitted without a process description;
	// the coordination service will request one from the planning service.
	NeedPlanning bool
}

// Validate checks the task and its parts.
func (t *Task) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("workflow: task with empty ID")
	}
	if t.Case == nil {
		return fmt.Errorf("workflow: task %s has no case description", t.ID)
	}
	if err := t.Case.Validate(); err != nil {
		return err
	}
	if t.Process == nil {
		if !t.NeedPlanning {
			return fmt.Errorf("workflow: task %s has no process description and NeedPlanning is false", t.ID)
		}
		return nil
	}
	return t.Process.Validate()
}

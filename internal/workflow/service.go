package workflow

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
)

// ParamSpec is one formal input parameter of a service, with the condition a
// bound data item must satisfy. The formal Name is the object the condition
// refers to, as in the paper's C1: A.Classification = "POD-Parameter".
type ParamSpec struct {
	Name      string
	Condition string

	once     sync.Once
	compiled expr.Node
	err      error
}

// compile parses the condition once and caches it. Services are shared by
// concurrent dispatch batches, so the cache fill must be synchronized.
func (p *ParamSpec) compile() (expr.Node, error) {
	p.once.Do(func() { p.compiled, p.err = expr.Parse(p.Condition) })
	return p.compiled, p.err
}

// OutputSpec describes one data item a service produces: the formal name and
// the metadata properties stamped onto the new item (its postcondition, as
// in C2: C.Type = "Orientation File").
type OutputSpec struct {
	Name  string
	Props map[string]expr.Value
}

// Service is an end-user computing service specification: the element of the
// set T in the planning problem P = {Sinit, G, T}. Pre- and postconditions
// follow Section 3.1.
type Service struct {
	Name    string
	Inputs  []ParamSpec
	Outputs []OutputSpec

	// BaseTime is the nominal execution time in simulated seconds on a
	// reference node (speed 1.0); Cost is the spot-market cost per run.
	BaseTime float64
	Cost     float64
}

// Validate checks that every input condition parses.
func (s *Service) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workflow: service with empty name")
	}
	for i := range s.Inputs {
		if _, err := s.Inputs[i].compile(); err != nil {
			return fmt.Errorf("workflow: service %s input %s: %w", s.Name, s.Inputs[i].Name, err)
		}
	}
	for _, o := range s.Outputs {
		if o.Name == "" {
			return fmt.Errorf("workflow: service %s has unnamed output", s.Name)
		}
	}
	return nil
}

// ItemList is an ordered collection of data items; it implements expr.Env
// by linear scan and is the allocation-light state representation used on
// the planner's evaluation hot path (items are append-only during plan
// simulation, so lists share prefixes safely).
type ItemList []*DataItem

// Lookup implements expr.Env over the list.
func (l ItemList) Lookup(obj, prop string) (expr.Value, bool) {
	for _, it := range l {
		if it.Name == obj {
			return it.Prop(prop)
		}
	}
	return expr.Value{}, false
}

// Bind searches for an injective assignment of distinct state items to the
// service's input parameters such that every parameter condition holds. It
// returns the chosen binding (formal name -> item) and whether one exists.
// Distinctness matters: PSF needs two different 3D models (C7 binds B and C
// to different items).
//
// The search is deterministic: items are tried in sorted-name order, so the
// same state always yields the same binding.
func (s *Service) Bind(st *State) (map[string]*DataItem, bool) {
	return s.BindItems(st.Items())
}

// BindItems is Bind over an explicit item list, tried in list order.
func (s *Service) BindItems(items ItemList) (map[string]*DataItem, bool) {
	chosen := make(map[string]*DataItem, len(s.Inputs))
	used := make(map[*DataItem]bool, len(s.Inputs))
	env := Binding{Formals: chosen, Base: items}

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(s.Inputs) {
			return true
		}
		p := &s.Inputs[i]
		cond, err := p.compile()
		if err != nil {
			return false
		}
		for _, it := range items {
			if used[it] {
				continue
			}
			chosen[p.Name] = it
			if cond.Eval(env) {
				used[it] = true
				if rec(i + 1) {
					return true
				}
				used[it] = false
			}
			delete(chosen, p.Name)
		}
		return false
	}
	if rec(0) {
		return chosen, true
	}
	return nil, false
}

// Produce builds the output items of one application. Output names are
// taken from names (parallel to s.Outputs) when provided, otherwise
// generated from seq.
func (s *Service) Produce(names []string, seq int) []*DataItem {
	out := make([]*DataItem, len(s.Outputs))
	for i, o := range s.Outputs {
		name := ""
		if i < len(names) && names[i] != "" {
			name = names[i]
		} else {
			name = fmt.Sprintf("%s.%s.%d", s.Name, o.Name, seq)
		}
		item := &DataItem{Name: name, Props: make(map[string]expr.Value, len(o.Props)+1)}
		for k, v := range o.Props {
			item.Props[k] = v
		}
		if _, ok := item.Props[PropCreator]; !ok {
			item.Props[PropCreator] = expr.String(s.Name)
		}
		out[i] = item
	}
	return out
}

// Applicable reports whether the service's preconditions are met in st.
func (s *Service) Applicable(st *State) bool {
	_, ok := s.Bind(st)
	return ok
}

// Apply executes the service against st in the metadata sense: it checks the
// preconditions and, if met, adds one new data item per output spec. Output
// item names are taken from names (parallel to s.Outputs) when provided;
// otherwise they are generated as "<service>.<formal>.<seq>" using seq.
// It returns the new state and whether the activity was valid. st is not
// modified.
func (s *Service) Apply(st *State, names []string, seq int) (*State, bool) {
	if _, ok := s.Bind(st); !ok {
		return st, false
	}
	next := st.Clone()
	for _, item := range s.Produce(names, seq) {
		next.Put(item)
	}
	return next, true
}

// Catalog is the complete set T of end-user services available to the grid
// computing system, keyed by name.
type Catalog struct {
	services map[string]*Service
}

// NewCatalog builds a catalog from the given services.
func NewCatalog(services ...*Service) *Catalog {
	c := &Catalog{services: make(map[string]*Service, len(services))}
	for _, s := range services {
		c.services[s.Name] = s
	}
	return c
}

// Add registers (or replaces) a service.
func (c *Catalog) Add(s *Service) {
	if c.services == nil {
		c.services = make(map[string]*Service)
	}
	c.services[s.Name] = s
}

// Get returns the named service, or nil.
func (c *Catalog) Get(name string) *Service { return c.services[name] }

// Len returns the number of services.
func (c *Catalog) Len() int { return len(c.services) }

// Names returns the service names sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.services))
	for n := range c.services {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Services returns the services sorted by name.
func (c *Catalog) Services() []*Service {
	names := c.Names()
	out := make([]*Service, len(names))
	for i, n := range names {
		out[i] = c.services[n]
	}
	return out
}

// Validate validates every service in the catalog.
func (c *Catalog) Validate() error {
	for _, s := range c.Services() {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Goal is the goal specification G of a planning problem: a set of
// conditions, each of which must be satisfied by some data item in the final
// state. Each condition is expressed over the formal object G (for example
// `G.Classification = "Resolution File"`).
type Goal struct {
	Conditions []string
}

// NewGoal builds a goal from condition sources.
func NewGoal(conditions ...string) Goal { return Goal{Conditions: conditions} }

// Satisfied returns how many of the goal conditions hold in st, and the
// total number of conditions. A condition holds if at least one data item,
// bound to the formal object "G", satisfies it.
func (g Goal) Satisfied(st *State) (met, total int) {
	total = len(g.Conditions)
	for _, src := range g.Conditions {
		node, err := expr.Parse(src)
		if err != nil {
			continue
		}
		for _, it := range st.Items() {
			if node.Eval(Binding{Formals: map[string]*DataItem{"G": it}, Base: st}) {
				met++
				break
			}
		}
	}
	return met, total
}

// Fitness returns the goal fitness fg of Equation 2: the fraction of goal
// specifications the final state satisfies.
func (g Goal) Fitness(st *State) float64 {
	met, total := g.Satisfied(st)
	if total == 0 {
		return 1
	}
	return float64(met) / float64(total)
}

// Problem is the planning problem P = {Sinit, G, T} of Section 3.2.
type Problem struct {
	Name    string
	Initial *State
	Goal    Goal
	Catalog *Catalog
}

// Validate checks the problem is well formed.
func (p *Problem) Validate() error {
	if p.Initial == nil {
		return fmt.Errorf("workflow: problem %q has nil initial state", p.Name)
	}
	if p.Catalog == nil || p.Catalog.Len() == 0 {
		return fmt.Errorf("workflow: problem %q has empty catalog", p.Name)
	}
	if len(p.Goal.Conditions) == 0 {
		return fmt.Errorf("workflow: problem %q has no goal conditions", p.Name)
	}
	for _, c := range p.Goal.Conditions {
		if _, err := expr.Parse(c); err != nil {
			return fmt.Errorf("workflow: problem %q goal: %w", p.Name, err)
		}
	}
	return p.Catalog.Validate()
}

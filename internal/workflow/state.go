package workflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Standard property names from the Data ontology class (Figure 12). Any
// other property name is legal; these are the ones the paper's conditions
// use.
const (
	PropClassification = "Classification"
	PropSize           = "Size"
	PropLocation       = "Location"
	PropValue          = "value"
	PropFormat         = "Format"
	PropType           = "Type"
	PropOwner          = "Owner"
	PropCreator        = "Creator"
)

// DataItem is one unit of data known to the system, described purely by
// metadata properties (the planner and coordinator never see contents).
type DataItem struct {
	Name  string
	Props map[string]expr.Value
}

// NewDataItem builds a data item with the given classification, the property
// nearly every condition in the paper tests.
func NewDataItem(name, classification string) *DataItem {
	return &DataItem{
		Name:  name,
		Props: map[string]expr.Value{PropClassification: expr.String(classification)},
	}
}

// With sets property prop to v and returns the item, for chained literals.
func (d *DataItem) With(prop string, v expr.Value) *DataItem {
	if d.Props == nil {
		d.Props = make(map[string]expr.Value)
	}
	d.Props[prop] = v
	return d
}

// Prop returns the named property.
func (d *DataItem) Prop(prop string) (expr.Value, bool) {
	v, ok := d.Props[prop]
	return v, ok
}

// Classification returns the Classification property, or "".
func (d *DataItem) Classification() string {
	if v, ok := d.Props[PropClassification]; ok {
		return v.Str()
	}
	return ""
}

// Clone returns a deep copy of d.
func (d *DataItem) Clone() *DataItem {
	props := make(map[string]expr.Value, len(d.Props))
	for k, v := range d.Props {
		props[k] = v
	}
	return &DataItem{Name: d.Name, Props: props}
}

func (d *DataItem) String() string {
	keys := make([]string, 0, len(d.Props))
	for k := range d.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, d.Props[k].Str())
	}
	return fmt.Sprintf("%s{%s}", d.Name, strings.Join(parts, ", "))
}

// State is the system state of the planning formalism (Section 3.2): the set
// of data items currently available, with their specifications. States are
// value-like: Clone before mutating a shared one.
type State struct {
	items map[string]*DataItem
}

// NewState builds a state holding the given items.
func NewState(items ...*DataItem) *State {
	s := &State{items: make(map[string]*DataItem, len(items))}
	for _, it := range items {
		s.items[it.Name] = it
	}
	return s
}

// Put inserts or replaces an item.
func (s *State) Put(item *DataItem) {
	if s.items == nil {
		s.items = make(map[string]*DataItem)
	}
	s.items[item.Name] = item
}

// Remove deletes the named item if present.
func (s *State) Remove(name string) { delete(s.items, name) }

// Get returns the named item, or nil.
func (s *State) Get(name string) *DataItem { return s.items[name] }

// Has reports whether the named item exists.
func (s *State) Has(name string) bool { return s.items[name] != nil }

// Len returns the number of items.
func (s *State) Len() int { return len(s.items) }

// Names returns the item names in sorted order (deterministic iteration).
func (s *State) Names() []string {
	names := make([]string, 0, len(s.items))
	for n := range s.items {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Items returns the items sorted by name.
func (s *State) Items() []*DataItem {
	names := s.Names()
	items := make([]*DataItem, len(names))
	for i, n := range names {
		items[i] = s.items[n]
	}
	return items
}

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	c := &State{items: make(map[string]*DataItem, len(s.items))}
	for n, it := range s.items {
		c.items[n] = it.Clone()
	}
	return c
}

// Lookup implements expr.Env over the items by name, so conditions like
// D10.Classification = "Resolution File" evaluate directly against a state.
func (s *State) Lookup(obj, prop string) (expr.Value, bool) {
	it := s.items[obj]
	if it == nil {
		return expr.Value{}, false
	}
	return it.Prop(prop)
}

func (s *State) String() string {
	items := s.Items()
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return "state[" + strings.Join(parts, "; ") + "]"
}

// Binding maps formal parameter names (the A, B, C, ... of conditions C1-C8)
// to concrete data items; it layers over a State for expression evaluation.
type Binding struct {
	Formals map[string]*DataItem
	Base    expr.Env // optional fallback (usually the State)
}

// Lookup implements expr.Env: formals shadow the base environment.
func (b Binding) Lookup(obj, prop string) (expr.Value, bool) {
	if it, ok := b.Formals[obj]; ok && it != nil {
		return it.Prop(prop)
	}
	if b.Base != nil {
		return b.Base.Lookup(obj, prop)
	}
	return expr.Value{}, false
}

package workflow

import (
	"fmt"
	"strings"
)

// DOT renders the process description in Graphviz dot syntax, with the
// figure-10 visual conventions: flow-control activities as diamonds
// (Choice/Merge) or bars (Fork/Join), end-user activities as boxes.
func (p *ProcessDescription) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", p.Name)
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	for _, a := range p.Activities {
		shape := "box"
		switch a.Kind {
		case KindBegin, KindEnd:
			shape = "ellipse"
		case KindChoice, KindMerge:
			shape = "diamond"
		case KindFork, KindJoin:
			shape = "rectangle"
		}
		label := a.Name
		if label == "" {
			label = a.ID
		}
		extra := ""
		if a.Kind == KindFork || a.Kind == KindJoin {
			extra = ` style=filled fillcolor=gray80 height=0.2`
		}
		fmt.Fprintf(&sb, "  %q [label=%q shape=%s%s];\n", a.ID, label, shape, extra)
	}
	for _, t := range p.Transitions {
		if t.Condition != "" {
			fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", t.Source, t.Dest, t.Condition)
		} else {
			fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", t.Source, t.Dest, t.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

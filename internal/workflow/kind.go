// Package workflow defines the process-description and case-description
// model of the paper's Section 2: activities (end-user and flow-control),
// transitions, the system state as a set of data items with metadata
// properties, and end-user service specifications with pre- and
// postconditions.
//
// A ProcessDescription is the formal description of the complex problem the
// user wishes to solve; a CaseDescription provides the bindings for one
// particular instance (initial data, goal conditions, constraints). The
// coordination service enacts the pair; the planning service synthesizes
// ProcessDescriptions from a Catalog of services.
package workflow

import "fmt"

// Kind classifies an activity. The paper defines six flow-control activities
// (Begin, End, Choice, Fork, Join, Merge) plus end-user activities that map
// to computing services hosted in Application Containers.
type Kind int

// Activity kinds.
const (
	KindEndUser Kind = iota
	KindBegin
	KindEnd
	KindChoice
	KindFork
	KindJoin
	KindMerge
)

// String returns the canonical spelling used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case KindEndUser:
		return "End-user"
	case KindBegin:
		return "Begin"
	case KindEnd:
		return "End"
	case KindChoice:
		return "Choice"
	case KindFork:
		return "Fork"
	case KindJoin:
		return "Join"
	case KindMerge:
		return "Merge"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses the textual kind names (case-sensitive, as in Figure 13).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "End-user", "EndUser", "end-user":
		return KindEndUser, nil
	case "Begin", "BEGIN":
		return KindBegin, nil
	case "End", "END":
		return KindEnd, nil
	case "Choice", "CHOICE":
		return KindChoice, nil
	case "Fork", "FORK":
		return KindFork, nil
	case "Join", "JOIN":
		return KindJoin, nil
	case "Merge", "MERGE":
		return KindMerge, nil
	}
	return 0, fmt.Errorf("workflow: unknown activity kind %q", s)
}

// IsFlowControl reports whether k is one of the six flow-control kinds.
func (k Kind) IsFlowControl() bool { return k != KindEndUser }

// minMaxDegree returns the allowed (min,max) in- and out-degree for the kind;
// max of -1 means unbounded.
func (k Kind) minMaxDegree() (inMin, inMax, outMin, outMax int) {
	switch k {
	case KindBegin:
		return 0, 0, 1, 1
	case KindEnd:
		return 1, 1, 0, 0
	case KindEndUser:
		return 1, 1, 1, 1
	case KindChoice, KindFork:
		return 1, 1, 2, -1
	case KindJoin, KindMerge:
		return 2, -1, 1, 1
	}
	return 0, -1, 0, -1
}

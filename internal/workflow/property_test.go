package workflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// randomState builds a state with a random mix of classifications.
func randomState(rng *rand.Rand) *State {
	classes := []string{"POD-Parameter", "P3DR-Parameter", "PSF-Parameter",
		"2D Image", "Orientation File", "3D Model", "Resolution File"}
	st := NewState()
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		st.Put(NewDataItem(fmt.Sprintf("R%02d", i), classes[rng.Intn(len(classes))]))
	}
	return st
}

// Property: whenever Bind succeeds, the returned binding is injective and
// every formal's condition holds under it.
func TestQuickBindSoundness(t *testing.T) {
	cat := testCatalog()
	svcs := cat.Services()
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64, which uint8) bool {
		local := rand.New(rand.NewSource(seed))
		st := randomState(local)
		svc := svcs[int(which)%len(svcs)]
		binding, ok := svc.Bind(st)
		if !ok {
			return true // nothing to verify
		}
		used := map[string]bool{}
		for _, item := range binding {
			if used[item.Name] {
				return false // not injective
			}
			used[item.Name] = true
		}
		env := Binding{Formals: binding, Base: st}
		for i := range svc.Inputs {
			node, err := expr.Parse(svc.Inputs[i].Condition)
			if err != nil {
				return false
			}
			if !node.Eval(env) {
				return false // condition not actually satisfied
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Bind succeeds iff a brute-force search over all injective
// assignments finds one (completeness, checked on small states).
func TestQuickBindCompleteness(t *testing.T) {
	cat := testCatalog()
	psf := cat.Get("PSF")
	rng := rand.New(rand.NewSource(32))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		st := NewState()
		n := 1 + local.Intn(5)
		classes := []string{"PSF-Parameter", "3D Model", "Orientation File"}
		for i := 0; i < n; i++ {
			st.Put(NewDataItem(fmt.Sprintf("X%d", i), classes[local.Intn(len(classes))]))
		}
		_, got := psf.Bind(st)
		// Brute force: PSF needs 1 PSF-Parameter + 2 distinct 3D Models.
		params, models := 0, 0
		for _, it := range st.Items() {
			switch it.Classification() {
			case "PSF-Parameter":
				params++
			case "3D Model":
				models++
			}
		}
		want := params >= 1 && models >= 2
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: the process JSON round trip is the identity on valid processes.
func TestQuickProcessJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func(seed int64, variant uint8) bool {
		_ = seed
		var p *ProcessDescription
		switch variant % 3 {
		case 0:
			p = buildSequential()
		case 1:
			p = buildForkJoin()
		default:
			p = buildChoiceMerge()
		}
		data, err := p.MarshalJSON()
		if err != nil {
			return false
		}
		back, err := DecodeProcess(data)
		if err != nil {
			return false
		}
		data2, err := back.MarshalJSON()
		if err != nil {
			return false
		}
		return string(data) == string(data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Goal.Fitness is monotone under state growth: adding items never
// lowers it.
func TestQuickGoalMonotone(t *testing.T) {
	goal := NewGoal(
		`G.Classification = "Resolution File"`,
		`G.Classification = "3D Model"`,
		`G.Classification = "Orientation File"`,
	)
	rng := rand.New(rand.NewSource(34))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		st := randomState(local)
		before := goal.Fitness(st)
		grown := st.Clone()
		grown.Put(NewDataItem("extra", "3D Model"))
		return goal.Fitness(grown) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock and an event queue ordered by time (FIFO among
// simultaneous events). The grid substrate and the simulation core service
// are built on it; determinism (given a seed) is what lets the experiment
// harness reproduce the paper's runs exactly.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback.
type Event struct {
	Time float64
	Name string // for tracing
	Fn   func()

	seq       uint64 // tie-break: FIFO among equal times
	index     int    // heap index; -1 once popped or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Safe to call more than once.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not ready;
// use NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	trace   func(time float64, name string)
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random stream seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTrace installs a callback invoked as each event fires.
func (e *Engine) SetTrace(fn func(time float64, name string)) { e.trace = fn }

// Schedule enqueues fn to run after delay virtual seconds and returns the
// event, which may be cancelled. Negative delays are clamped to zero
// (schedule "now").
func (e *Engine) Schedule(delay float64, name string, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := &Event{Time: e.now + delay, Name: name, Fn: fn, seq: e.seq}
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAt enqueues fn at absolute virtual time t (clamped to now).
func (e *Engine) ScheduleAt(t float64, name string, fn func()) *Event {
	return e.Schedule(t-e.now, name, fn)
}

// Pending returns the number of events still queued (including cancelled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event. It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.Time < e.now {
			panic(fmt.Sprintf("sim: event %q scheduled in the past (%g < %g)", ev.Name, ev.Time, e.now))
		}
		e.now = ev.Time
		if e.trace != nil {
			e.trace(e.now, ev.Name)
		}
		ev.Fn()
		return true
	}
	return false
}

// Run fires events until the queue drains, Stop is called, or the clock
// passes until (until <= 0 means no horizon). It returns the number of
// events fired.
func (e *Engine) Run(until float64) int {
	e.stopped = false
	fired := 0
	for !e.stopped {
		if until > 0 && len(e.queue) > 0 {
			// Peek: do not cross the horizon.
			next := e.queue[0]
			if !next.cancelled && next.Time > until {
				e.now = until
				break
			}
		}
		if !e.Step() {
			break
		}
		fired++
	}
	return fired
}

// RunAll fires events until the queue drains and returns the count.
func (e *Engine) RunAll() int { return e.Run(0) }

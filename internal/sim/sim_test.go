package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderingByTime(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(3, "c", func() { order = append(order, "c") })
	e.Schedule(1, "a", func() { order = append(order, "a") })
	e.Schedule(2, "b", func() { order = append(order, "b") })
	if n := e.RunAll(); n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %g, want 3", e.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, "x", func() { order = append(order, i) })
	}
	e.RunAll()
	if !sort.IntsAreSorted(order) {
		t.Errorf("simultaneous events not FIFO: %v", order)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(1, "x", func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []float64
	e.Schedule(1, "outer", func() {
		times = append(times, e.Now())
		e.Schedule(2, "inner", func() {
			times = append(times, e.Now())
		})
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), "x", func() { fired++ })
	}
	n := e.Run(5.5)
	if n != 5 || fired != 5 {
		t.Errorf("fired %d/%d events before horizon, want 5", n, fired)
	}
	if e.Now() != 5.5 {
		t.Errorf("Now = %g, want 5.5 (advanced to horizon)", e.Now())
	}
	// Remaining events still fire afterwards.
	if n := e.RunAll(); n != 5 {
		t.Errorf("remaining = %d, want 5", n)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(1, "a", func() { fired++; e.Stop() })
	e.Schedule(2, "b", func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (stopped)", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestScheduleAtAndClamping(t *testing.T) {
	e := NewEngine(1)
	var at []float64
	e.Schedule(2, "adv", func() {
		// Absolute scheduling in the past clamps to now.
		e.ScheduleAt(1, "past", func() { at = append(at, e.Now()) })
		e.ScheduleAt(4, "future", func() { at = append(at, e.Now()) })
	})
	e.RunAll()
	if len(at) != 2 || at[0] != 2 || at[1] != 4 {
		t.Errorf("at = %v, want [2 4]", at)
	}
	// Negative delay clamps.
	fired := false
	e.Schedule(-5, "neg", func() { fired = true })
	e.RunAll()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestTrace(t *testing.T) {
	e := NewEngine(1)
	var names []string
	e.SetTrace(func(_ float64, name string) { names = append(names, name) })
	e.Schedule(1, "a", func() {})
	e.Schedule(2, "b", func() {})
	e.RunAll()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("trace = %v", names)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

// Property: events fire in nondecreasing time order regardless of insertion
// order.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		e := NewEngine(7)
		var fired []float64
		for _, d := range delaysRaw {
			e.Schedule(float64(d)/10, "x", func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delaysRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 100; j++ {
			e.Schedule(float64(j%17), "x", func() {})
		}
		e.RunAll()
	}
}

package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBusFanOut checks plain delivery: every published event reaches a
// draining subscriber, in publication order, with bus-global sequence
// numbers.
func TestBusFanOut(t *testing.T) {
	r := New()
	sub := r.Subscribe(16)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		r.PublishEvent(Event{Kind: "k", Name: fmt.Sprintf("e%d", i)})
	}
	var last uint64
	for i := 0; i < 5; i++ {
		select {
		case ev := <-sub.Events():
			if ev.Name != fmt.Sprintf("e%d", i) {
				t.Fatalf("event %d = %q", i, ev.Name)
			}
			if ev.Seq <= last {
				t.Fatalf("seq not increasing: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
		case <-time.After(time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", sub.Dropped())
	}
}

// TestBusTraceSpansPublished checks that task spans recorded through
// TaskTrace.Span are mirrored onto the bus with the task ID attached.
func TestBusTraceSpansPublished(t *testing.T) {
	r := New()
	sub := r.Subscribe(4)
	defer sub.Close()
	r.TaskTrace("T1").Span("queue", "", "admitted")
	select {
	case ev := <-sub.Events():
		if ev.Task != "T1" || ev.Kind != "queue" || ev.Detail != "admitted" {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("span never reached the bus")
	}
}

// TestBusSlowSubscriberNeverBlocks is the acceptance scenario for the bus:
// N concurrent publishers hammer the registry while one subscriber with a
// one-slot buffer deliberately never drains. Publishing must complete (the
// test finishing is the liveness assertion — a blocking bus would hang), and
// every undeliverable event must be counted as dropped, both on the
// subscription and in telemetry.events.dropped. Run under -race via
// `make race` / `make check`.
func TestBusSlowSubscriberNeverBlocks(t *testing.T) {
	const (
		publishers = 8
		perPub     = 500
	)
	r := New()
	slow := r.Subscribe(1) // never drained
	defer slow.Close()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			trace := r.TaskTrace(fmt.Sprintf("T%d", p))
			for i := 0; i < perPub; i++ {
				trace.Span("fire", "act", "concurrent publish")
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publishers blocked on a slow subscriber")
	}

	total := uint64(publishers * perPub)
	dropped := slow.Dropped()
	if dropped == 0 {
		t.Fatal("expected drops with a one-slot buffer")
	}
	if dropped > total {
		t.Fatalf("dropped %d > published %d", dropped, total)
	}
	// Everything not dropped must still be sitting in the buffer (1 slot) —
	// drops plus deliverable events account for every publish.
	if got := dropped + uint64(len(slow.Events())); got != total {
		t.Fatalf("dropped %d + buffered %d != published %d", dropped, len(slow.Events()), total)
	}
	if c := r.Counter("telemetry.events.dropped").Value(); uint64(c) != dropped {
		t.Fatalf("telemetry.events.dropped = %d, want %d", c, dropped)
	}
	if c := r.Counter("telemetry.events.published").Value(); uint64(c) != total {
		t.Fatalf("telemetry.events.published = %d, want %d", c, total)
	}
}

// TestBusSubscribeCloseConcurrent exercises subscribe/close churn against
// concurrent publishers: closing must never panic a publisher mid-send.
func TestBusSubscribeCloseConcurrent(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.PublishEvent(Event{Kind: "churn"})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		sub := r.Subscribe(2)
		// Drain a little, then close while publishers are active.
		select {
		case <-sub.Events():
		default:
		}
		sub.Close()
	}
	close(stop)
	wg.Wait()
}

// TestBusNilSafety: nil registry and nil subscription are inert.
func TestBusNilSafety(t *testing.T) {
	var r *Registry
	r.PublishEvent(Event{Kind: "x"})
	sub := r.Subscribe(1)
	if sub != nil {
		t.Fatal("Subscribe on nil registry should return nil")
	}
	sub.Close()
	if sub.Dropped() != 0 || sub.Events() != nil {
		t.Fatal("nil subscription should be inert")
	}
}

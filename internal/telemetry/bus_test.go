package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBusFanOut checks plain delivery: every published event reaches a
// draining subscriber, in publication order, with bus-global sequence
// numbers.
func TestBusFanOut(t *testing.T) {
	r := New()
	sub := r.Subscribe(16)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		r.PublishEvent(Event{Kind: "k", Name: fmt.Sprintf("e%d", i)})
	}
	var last uint64
	for i := 0; i < 5; i++ {
		select {
		case ev := <-sub.Events():
			if ev.Name != fmt.Sprintf("e%d", i) {
				t.Fatalf("event %d = %q", i, ev.Name)
			}
			if ev.Seq <= last {
				t.Fatalf("seq not increasing: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
		case <-time.After(time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", sub.Dropped())
	}
}

// TestBusTraceSpansPublished checks that task spans recorded through
// TaskTrace.Span are mirrored onto the bus with the task ID attached.
func TestBusTraceSpansPublished(t *testing.T) {
	r := New()
	sub := r.Subscribe(4)
	defer sub.Close()
	r.TaskTrace("T1").Span("queue", "", "admitted")
	select {
	case ev := <-sub.Events():
		if ev.Task != "T1" || ev.Kind != "queue" || ev.Detail != "admitted" {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("span never reached the bus")
	}
}

// TestBusSlowSubscriberNeverBlocks is the acceptance scenario for the bus:
// N concurrent publishers hammer the registry while one subscriber with a
// one-slot buffer deliberately never drains. Publishing must complete (the
// test finishing is the liveness assertion — a blocking bus would hang), and
// every undeliverable event must be counted as dropped, both on the
// subscription and in telemetry.events.dropped. Run under -race via
// `make race` / `make check`.
func TestBusSlowSubscriberNeverBlocks(t *testing.T) {
	const (
		publishers = 8
		perPub     = 500
	)
	r := New()
	slow := r.Subscribe(1) // never drained
	defer slow.Close()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			trace := r.TaskTrace(fmt.Sprintf("T%d", p))
			for i := 0; i < perPub; i++ {
				trace.Span("fire", "act", "concurrent publish")
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publishers blocked on a slow subscriber")
	}

	total := uint64(publishers * perPub)
	dropped := slow.Dropped()
	if dropped == 0 {
		t.Fatal("expected drops with a one-slot buffer")
	}
	if dropped > total {
		t.Fatalf("dropped %d > published %d", dropped, total)
	}
	// Everything not dropped must still be sitting in the buffer (1 slot) —
	// drops plus deliverable events account for every publish.
	if got := dropped + uint64(len(slow.Events())); got != total {
		t.Fatalf("dropped %d + buffered %d != published %d", dropped, len(slow.Events()), total)
	}
	if c := r.Counter("telemetry.events.dropped").Value(); uint64(c) != dropped {
		t.Fatalf("telemetry.events.dropped = %d, want %d", c, dropped)
	}
	if c := r.Counter("telemetry.events.published").Value(); uint64(c) != total {
		t.Fatalf("telemetry.events.published = %d, want %d", c, total)
	}
}

// TestBusSubscribeCloseConcurrent exercises subscribe/close churn against
// concurrent publishers: closing must never panic a publisher mid-send.
func TestBusSubscribeCloseConcurrent(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.PublishEvent(Event{Kind: "churn"})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		sub := r.Subscribe(2)
		// Drain a little, then close while publishers are active.
		select {
		case <-sub.Events():
		default:
		}
		sub.Close()
	}
	close(stop)
	wg.Wait()
}

// TestBusNilSafety: nil registry and nil subscription are inert.
func TestBusNilSafety(t *testing.T) {
	var r *Registry
	r.PublishEvent(Event{Kind: "x"})
	sub := r.Subscribe(1)
	if sub != nil {
		t.Fatal("Subscribe on nil registry should return nil")
	}
	sub.Close()
	if sub.Dropped() != 0 || sub.Events() != nil {
		t.Fatal("nil subscription should be inert")
	}
}

// TestEventsSinceReplay pins the SSE resume contract: before any subscriber
// ever existed the ring is off (everything counts as missed), afterwards
// EventsSince replays exactly the events past the cursor, and once the ring
// wraps the overwritten prefix is reported as missed rather than silently
// skipped.
func TestEventsSinceReplay(t *testing.T) {
	r := New()

	// Before the first-ever subscriber the ring is off and events carry no
	// sequence number at all: they are outside the resume space (a resuming
	// client by definition had a prior subscription, which latched the ring
	// before anything it could have seen was published).
	r.PublishEvent(Event{Kind: "early"})
	if evs, missed := r.EventsSince(0); len(evs) != 0 || missed != 0 {
		t.Fatalf("pre-subscriber EventsSince = %d events, %d missed; want 0, 0", len(evs), missed)
	}

	sub := r.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		r.PublishEvent(Event{Kind: "spanned", Name: fmt.Sprintf("e%d", i)})
	}

	evs, missed := r.EventsSince(0)
	if missed != 0 {
		t.Fatalf("missed = %d, want 0 (ring holds everything since)", missed)
	}
	if len(evs) != 10 {
		t.Fatalf("replayed %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 1); ev.Seq != want {
			t.Fatalf("replayed event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}

	// A cursor in the middle replays only the suffix.
	if evs, _ := r.EventsSince(6); len(evs) != 4 {
		t.Fatalf("mid-cursor replayed %d events, want 4", len(evs))
	}
	// A cursor at the head replays nothing.
	if evs, missed := r.EventsSince(10); len(evs) != 0 || missed != 0 {
		t.Fatalf("head cursor = %d events, %d missed; want 0, 0", len(evs), missed)
	}
}

// TestEventsSinceRingWrap publishes past the replay capacity and checks the
// overwritten gap is counted, not skipped.
func TestEventsSinceRingWrap(t *testing.T) {
	r := New()
	sub := r.Subscribe(1)
	defer sub.Close()
	total := DefaultReplayCap + 100
	for i := 0; i < total; i++ {
		r.PublishEvent(Event{Kind: "wrap"})
	}
	evs, missed := r.EventsSince(0)
	if len(evs) != DefaultReplayCap {
		t.Fatalf("replayed %d events, want the full ring %d", len(evs), DefaultReplayCap)
	}
	if missed != 100 {
		t.Fatalf("missed = %d, want the 100 overwritten events", missed)
	}
	if evs[0].Seq != 101 || evs[len(evs)-1].Seq != uint64(total) {
		t.Fatalf("replay window [%d, %d], want [101, %d]", evs[0].Seq, evs[len(evs)-1].Seq, total)
	}
}

package telemetry

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	sc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", valid)
	}
	if sc.TraceID != "0123456789abcdef0123456789abcdef" || sc.SpanID != "0123456789abcdef" {
		t.Fatalf("parsed %+v", sc)
	}
	if got := sc.Traceparent(); got != valid {
		t.Fatalf("round trip = %q, want %q", got, valid)
	}

	for _, bad := range []string{
		"",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",    // missing flags
		"00-00000000000000000000000000000000-0123456789abcdef-01", // all-zero trace
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // all-zero span
		"00-0123456789abcdef0123456789abcde-0123456789abcdef-01",  // short trace
		"00-0123456789abcdefg123456789abcdef-0123456789abcdef-01", // non-hex
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", bad)
		}
	}

	// The parser is deliberately lenient: unknown versions pass as long as
	// the shape matches, and uppercase hex normalizes to lower.
	upper := "cc-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01"
	sc, ok = ParseTraceparent(upper)
	if !ok || sc.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("lenient parse of %q = %+v, %v", upper, sc, ok)
	}
}

func TestNewIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tr, sp := NewTraceID(), NewSpanID()
		if len(tr) != 32 || len(sp) != 16 {
			t.Fatalf("id lengths %d/%d, want 32/16", len(tr), len(sp))
		}
		if strings.Trim(tr, "0") == "" || strings.Trim(sp, "0") == "" {
			t.Fatal("generated an all-zero (invalid) ID")
		}
		if seen[tr] || seen[sp] {
			t.Fatal("duplicate ID within 1000 draws")
		}
		seen[tr], seen[sp] = true, true
	}
}

func TestContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := ContextWithSpan(context.Background(), sc)
	if got := SpanFromContext(ctx); got != sc {
		t.Fatalf("SpanFromContext = %+v, want %+v", got, sc)
	}
	if got := SpanFromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context yielded a valid span context %+v", got)
	}
}

func TestStartRootInheritsTraceparent(t *testing.T) {
	reg := New()
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tr := reg.TaskTrace("T1")
	sc, end := tr.StartRoot("task", "T1", remote.Traceparent(), nil)
	if sc.TraceID != remote.TraceID {
		t.Fatalf("root trace ID %q, want inherited %q", sc.TraceID, remote.TraceID)
	}
	end("done")
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans, want 1", len(spans))
	}
	if spans[0].ParentID != remote.SpanID {
		t.Fatalf("root ParentID %q, want remote span %q", spans[0].ParentID, remote.SpanID)
	}
	if spans[0].DurationSec <= 0 {
		t.Fatalf("root DurationSec = %v, want > 0", spans[0].DurationSec)
	}
	if got := tr.Context(); got != sc {
		t.Fatalf("latched context %+v, want %+v", got, sc)
	}
}

func TestBeginAndPointEventsParentUnderRoot(t *testing.T) {
	reg := New()
	tr := reg.TaskTrace("T2")
	root, endRoot := tr.StartRoot("task", "T2", "", nil)

	// Begin with the zero parent falls back to the latched root.
	child, endChild := tr.Begin(SpanContext{}, "queue_wait", "T2")
	if child.TraceID != root.TraceID {
		t.Fatalf("child trace %q, want %q", child.TraceID, root.TraceID)
	}
	endChild("dequeued")

	// Point events parent under the root too.
	tr.Span("dispatch", "svc", "")
	// ...and under an explicit parent via SpanUnder.
	tr.SpanUnder(child, "gp-generation", "g0", "")
	endRoot("succeeded")

	byKind := map[string]Span{}
	for _, s := range tr.Spans() {
		byKind[s.Kind] = s
	}
	if got := byKind["queue_wait"].ParentID; got != root.SpanID {
		t.Errorf("queue_wait parent %q, want root %q", got, root.SpanID)
	}
	if got := byKind["dispatch"].ParentID; got != root.SpanID {
		t.Errorf("dispatch parent %q, want root %q", got, root.SpanID)
	}
	if got := byKind["gp-generation"].ParentID; got != child.SpanID {
		t.Errorf("gp-generation parent %q, want child %q", got, child.SpanID)
	}
	for kind, s := range byKind {
		if s.TraceID != root.TraceID {
			t.Errorf("%s trace %q, want %q", kind, s.TraceID, root.TraceID)
		}
	}
}

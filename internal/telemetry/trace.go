package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one structured event in a task's trace: an activity dispatched or
// completed, a core service invoked, a token moved, a checkpoint written, a
// re-plan triggered, a GP generation evaluated (the kinds are listed in
// OBSERVABILITY.md). Seq orders spans within a task; the ring buffer keeps
// the most recent DefaultSpanCap spans.
type Span struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Name   string    `json:"name,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// TaskTrace is a bounded, concurrency-safe span log for one task. Obtain
// through Registry.TaskTrace; all methods are safe on a nil receiver.
type TaskTrace struct {
	reg  *Registry // owning registry; spans are mirrored onto its event bus
	task string

	seq atomic.Uint64

	mu    sync.Mutex
	buf   []Span // ring buffer of capacity cap
	cap   int
	start int // index of the oldest span
	n     int // spans currently held
}

// TaskTrace returns the trace for the task, creating it on first use. When
// the registry already tracks its maximum number of tasks, the oldest trace
// is evicted. Returns nil (a no-op trace) on a nil registry.
func (r *Registry) TaskTrace(taskID string) *TaskTrace {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.traces[taskID]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.traces[taskID]; t != nil {
		return t
	}
	for len(r.traceOrder) >= r.maxTraces {
		oldest := r.traceOrder[0]
		r.traceOrder = r.traceOrder[1:]
		delete(r.traces, oldest)
	}
	t = &TaskTrace{reg: r, task: taskID, cap: r.spanCap}
	r.traces[taskID] = t
	r.traceOrder = append(r.traceOrder, taskID)
	return t
}

// LookupTrace returns the task's trace or nil if none was ever recorded.
func (r *Registry) LookupTrace(taskID string) *TaskTrace {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.traces[taskID]
}

// Span appends one event to the trace.
func (t *TaskTrace) Span(kind, name, detail string) {
	if t == nil {
		return
	}
	s := Span{
		Seq:    t.seq.Add(1),
		Time:   time.Now(),
		Kind:   kind,
		Name:   name,
		Detail: detail,
	}
	t.mu.Lock()
	// The buffer grows geometrically up to cap, so short traces (the common
	// case) never pay for the full ring.
	if t.n == len(t.buf) && len(t.buf) < t.cap {
		size := len(t.buf) * 2
		if size == 0 {
			size = 64
		}
		if size > t.cap {
			size = t.cap
		}
		grown := make([]Span, size)
		for i := 0; i < t.n; i++ {
			grown[i] = t.buf[(t.start+i)%len(t.buf)]
		}
		t.buf = grown
		t.start = 0
	}
	t.buf[(t.start+t.n)%len(t.buf)] = s
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.start = (t.start + 1) % len(t.buf) // overwrote the oldest
	}
	t.mu.Unlock()
	// Mirror onto the event bus outside the ring lock: a publish never holds
	// up a concurrent Spans() reader.
	t.reg.PublishEvent(Event{Task: t.task, Time: s.Time, Kind: kind, Name: name, Detail: detail})
}

// Spans returns the retained spans in seq order (oldest first).
func (t *TaskTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Dropped reports how many spans the ring buffer has overwritten.
func (t *TaskTrace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq.Load() - uint64(t.n)
}

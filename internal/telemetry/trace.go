package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node in a task's trace tree. Two shapes share the type:
//
//   - Duration spans (SpanID set, DurationSec > 0 or explicitly recorded):
//     a stage with a start time and a measured length — the task root,
//     queue_wait, schedule, enact, journal_commit, plan, forward. Created
//     with StartRoot/Begin and recorded when the returned end func runs;
//     Time is the start instant.
//   - Point events (SpanID empty): the flat events the trace always carried
//     (dispatch, complete, retry, gp-generation, ...). They attach to a
//     parent duration span via ParentID and carry no duration.
//
// TraceID groups every span of one distributed trace across nodes; ParentID
// links children to parents (a root span's ParentID names the remote span
// that caused it, e.g. the forwarding node's forward span). Seq orders spans
// within a task; the ring buffer keeps the most recent DefaultSpanCap spans.
type Span struct {
	Seq         uint64            `json:"seq"`
	Time        time.Time         `json:"time"`
	Kind        string            `json:"kind"`
	Name        string            `json:"name,omitempty"`
	Detail      string            `json:"detail,omitempty"`
	TraceID     string            `json:"traceId,omitempty"`
	SpanID      string            `json:"spanId,omitempty"`
	ParentID    string            `json:"parentId,omitempty"`
	DurationSec float64           `json:"durationSec,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// TaskTrace is a bounded, concurrency-safe span log for one task. Obtain
// through Registry.TaskTrace; all methods are safe on a nil receiver.
type TaskTrace struct {
	reg  *Registry // owning registry; spans are mirrored onto its event bus
	task string

	seq atomic.Uint64

	mu    sync.Mutex
	root  SpanContext // latched by the first StartRoot; orients point events
	buf   []Span      // ring buffer of capacity cap
	cap   int
	start int // index of the oldest span
	n     int // spans currently held
}

// nopEnd is the end func returned for nil traces, so callers never branch.
var nopEnd = func(string) float64 { return 0 }

// TaskTrace returns the trace for the task, creating it on first use. When
// the registry already tracks its maximum number of tasks, the oldest trace
// is evicted. Returns nil (a no-op trace) on a nil registry.
func (r *Registry) TaskTrace(taskID string) *TaskTrace {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.traces[taskID]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.traces[taskID]; t != nil {
		return t
	}
	for len(r.traceOrder) >= r.maxTraces {
		oldest := r.traceOrder[0]
		r.traceOrder = r.traceOrder[1:]
		delete(r.traces, oldest)
	}
	t = &TaskTrace{reg: r, task: taskID, cap: r.spanCap}
	r.traces[taskID] = t
	r.traceOrder = append(r.traceOrder, taskID)
	return t
}

// LookupTrace returns the task's trace or nil if none was ever recorded.
func (r *Registry) LookupTrace(taskID string) *TaskTrace {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.traces[taskID]
}

// StartRoot opens the task's root duration span. When traceparent carries a
// valid W3C context (a forwarded submit, a parent task), the trace ID is
// inherited and the remote span becomes the root's parent, joining this
// node's segment to the distributed trace; otherwise a fresh trace ID is
// minted. The first root latches the trace context that orients point
// events. The returned end func records the span with the given detail and
// returns the duration in seconds.
func (t *TaskTrace) StartRoot(kind, name, traceparent string, attrs map[string]string) (SpanContext, func(detail string) float64) {
	if t == nil {
		return SpanContext{}, nopEnd
	}
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	parentID := ""
	if remote, ok := ParseTraceparent(traceparent); ok {
		sc.TraceID = remote.TraceID
		parentID = remote.SpanID
	}
	t.mu.Lock()
	if !t.root.Valid() {
		t.root = sc
	}
	t.mu.Unlock()
	start := time.Now()
	return sc, func(detail string) float64 {
		d := time.Since(start).Seconds()
		t.record(Span{
			Time: start, Kind: kind, Name: name, Detail: detail,
			TraceID: sc.TraceID, SpanID: sc.SpanID, ParentID: parentID,
			DurationSec: d, Attrs: attrs,
		})
		return d
	}
}

// Begin opens a child duration span under parent (or under the latched root
// when parent is the zero SpanContext). The returned end func records the
// span and returns the duration in seconds.
func (t *TaskTrace) Begin(parent SpanContext, kind, name string) (SpanContext, func(detail string) float64) {
	if t == nil {
		return SpanContext{}, nopEnd
	}
	if !parent.Valid() {
		t.mu.Lock()
		parent = t.root
		t.mu.Unlock()
	}
	// No trace ID is minted for a parentless span: record() orients it under
	// the latched root, and a span with no root to join stays unlabelled
	// rather than starting a one-span trace of its own.
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}
	start := time.Now()
	return sc, func(detail string) float64 {
		d := time.Since(start).Seconds()
		t.record(Span{
			Time: start, Kind: kind, Name: name, Detail: detail,
			TraceID: sc.TraceID, SpanID: sc.SpanID, ParentID: parent.SpanID,
			DurationSec: d,
		})
		return d
	}
}

// Context returns the trace context latched by the first StartRoot, or the
// zero SpanContext when no root span has been opened.
func (t *TaskTrace) Context() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Span appends one point event to the trace, parented under the root span.
func (t *TaskTrace) Span(kind, name, detail string) {
	if t == nil {
		return
	}
	t.record(Span{Time: time.Now(), Kind: kind, Name: name, Detail: detail})
}

// SpanUnder appends one point event parented under an explicit duration
// span (e.g. gp-generation events under their plan span).
func (t *TaskTrace) SpanUnder(parent SpanContext, kind, name, detail string) {
	if t == nil {
		return
	}
	t.record(Span{
		Time: time.Now(), Kind: kind, Name: name, Detail: detail,
		TraceID: parent.TraceID, ParentID: parent.SpanID,
	})
}

// record assigns the sequence number, attaches orphan point events to the
// root span, appends to the ring, and mirrors onto the event bus.
func (t *TaskTrace) record(s Span) {
	s.Seq = t.seq.Add(1)
	t.mu.Lock()
	if s.TraceID == "" && t.root.Valid() {
		s.TraceID = t.root.TraceID
		s.ParentID = t.root.SpanID
	}
	// The buffer grows geometrically up to cap, so short traces (the common
	// case) never pay for the full ring.
	if t.n == len(t.buf) && len(t.buf) < t.cap {
		size := len(t.buf) * 2
		if size == 0 {
			size = 64
		}
		if size > t.cap {
			size = t.cap
		}
		grown := make([]Span, size)
		for i := 0; i < t.n; i++ {
			grown[i] = t.buf[(t.start+i)%len(t.buf)]
		}
		t.buf = grown
		t.start = 0
	}
	t.buf[(t.start+t.n)%len(t.buf)] = s
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.start = (t.start + 1) % len(t.buf) // overwrote the oldest
	}
	t.mu.Unlock()
	// Mirror onto the event bus outside the ring lock: a publish never holds
	// up a concurrent Spans() reader.
	t.reg.PublishEvent(Event{Task: t.task, Time: s.Time, Kind: s.Kind, Name: s.Name, Detail: s.Detail})
}

// Spans returns the retained spans in seq order (oldest first).
func (t *TaskTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Dropped reports how many spans the ring buffer has overwritten.
func (t *TaskTrace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq.Load() - uint64(t.n)
}

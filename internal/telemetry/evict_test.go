package telemetry

import (
	"fmt"
	"testing"
)

// TestRingOverwriteDroppedExact pins the dropped-span accounting: a trace
// reports zero drops until the ring is full, then exactly one additional
// drop per overwriting span.
func TestRingOverwriteDroppedExact(t *testing.T) {
	r := New()
	r.spanCap = 4
	tr := r.TaskTrace("T-exact")
	for i := 0; i < 4; i++ {
		tr.Span("fire", fmt.Sprintf("a%d", i), "")
		if tr.Dropped() != 0 {
			t.Fatalf("dropped = %d before the ring filled (span %d)", tr.Dropped(), i)
		}
	}
	for i := 0; i < 10; i++ {
		tr.Span("fire", fmt.Sprintf("b%d", i), "")
		if got, want := tr.Dropped(), uint64(i+1); got != want {
			t.Fatalf("after overwrite %d: dropped = %d, want %d", i, got, want)
		}
		if n := len(tr.Spans()); n != 4 {
			t.Fatalf("retained %d spans, want 4", n)
		}
	}
	// The retained window is the newest 4 spans, still in seq order.
	spans := tr.Spans()
	for i, s := range spans {
		if want := uint64(11 + i); s.Seq != want {
			t.Fatalf("span %d seq = %d, want %d", i, s.Seq, want)
		}
	}
}

// TestEvictionAtDefaultMaxTraces exercises the registry's task-trace cap at
// its real production value: the (DefaultMaxTraces+1)-th task evicts exactly
// the oldest trace, and subsequent tasks keep evicting in insertion order.
func TestEvictionAtDefaultMaxTraces(t *testing.T) {
	r := New()
	id := func(i int) string { return fmt.Sprintf("T%04d", i) }
	for i := 0; i < DefaultMaxTraces; i++ {
		r.TaskTrace(id(i)).Span("k", "", "")
	}
	if r.LookupTrace(id(0)) == nil {
		t.Fatal("T0000 evicted before the cap was reached")
	}
	r.TaskTrace(id(DefaultMaxTraces)).Span("k", "", "")
	if r.LookupTrace(id(0)) != nil {
		t.Fatal("oldest trace survived past DefaultMaxTraces")
	}
	if r.LookupTrace(id(1)) == nil {
		t.Fatal("second-oldest trace evicted out of order")
	}
	r.TaskTrace(id(DefaultMaxTraces+1)).Span("k", "", "")
	if r.LookupTrace(id(1)) != nil {
		t.Fatal("eviction did not proceed oldest-first")
	}
	for _, i := range []int{2, DefaultMaxTraces - 1, DefaultMaxTraces, DefaultMaxTraces + 1} {
		if r.LookupTrace(id(i)) == nil {
			t.Fatalf("trace %s evicted too early", id(i))
		}
	}
}

package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestRingOverwriteDroppedExact pins the dropped-span accounting: a trace
// reports zero drops until the ring is full, then exactly one additional
// drop per overwriting span.
func TestRingOverwriteDroppedExact(t *testing.T) {
	r := New()
	r.spanCap = 4
	tr := r.TaskTrace("T-exact")
	for i := 0; i < 4; i++ {
		tr.Span("fire", fmt.Sprintf("a%d", i), "")
		if tr.Dropped() != 0 {
			t.Fatalf("dropped = %d before the ring filled (span %d)", tr.Dropped(), i)
		}
	}
	for i := 0; i < 10; i++ {
		tr.Span("fire", fmt.Sprintf("b%d", i), "")
		if got, want := tr.Dropped(), uint64(i+1); got != want {
			t.Fatalf("after overwrite %d: dropped = %d, want %d", i, got, want)
		}
		if n := len(tr.Spans()); n != 4 {
			t.Fatalf("retained %d spans, want 4", n)
		}
	}
	// The retained window is the newest 4 spans, still in seq order.
	spans := tr.Spans()
	for i, s := range spans {
		if want := uint64(11 + i); s.Seq != want {
			t.Fatalf("span %d seq = %d, want %d", i, s.Seq, want)
		}
	}
}

// TestEvictionAtDefaultMaxTraces exercises the registry's task-trace cap at
// its real production value: the (DefaultMaxTraces+1)-th task evicts exactly
// the oldest trace, and subsequent tasks keep evicting in insertion order.
func TestEvictionAtDefaultMaxTraces(t *testing.T) {
	r := New()
	id := func(i int) string { return fmt.Sprintf("T%04d", i) }
	for i := 0; i < DefaultMaxTraces; i++ {
		r.TaskTrace(id(i)).Span("k", "", "")
	}
	if r.LookupTrace(id(0)) == nil {
		t.Fatal("T0000 evicted before the cap was reached")
	}
	r.TaskTrace(id(DefaultMaxTraces)).Span("k", "", "")
	if r.LookupTrace(id(0)) != nil {
		t.Fatal("oldest trace survived past DefaultMaxTraces")
	}
	if r.LookupTrace(id(1)) == nil {
		t.Fatal("second-oldest trace evicted out of order")
	}
	r.TaskTrace(id(DefaultMaxTraces+1)).Span("k", "", "")
	if r.LookupTrace(id(1)) != nil {
		t.Fatal("eviction did not proceed oldest-first")
	}
	for _, i := range []int{2, DefaultMaxTraces - 1, DefaultMaxTraces, DefaultMaxTraces + 1} {
		if r.LookupTrace(id(i)) == nil {
			t.Fatalf("trace %s evicted too early", id(i))
		}
	}
}

// TestEvictionNeverOrphansLiveLinks drives registry-level trace eviction
// concurrently with span recording on live trace handles and asserts the
// hierarchy invariant: every child span a live handle records keeps a
// resolvable parent link (the latched root) no matter how much churn evicts
// and re-creates registry entries around it. Run under -race this also pins
// the locking of the eviction and record paths against each other.
func TestEvictionNeverOrphansLiveLinks(t *testing.T) {
	r := New()
	r.SetTraceCapacity(256, 2) // tiny trace cap: every new task evicts

	const workers = 4
	const tasksPerWorker = 50
	var wg sync.WaitGroup
	type result struct {
		root  SpanContext
		spans []Span
	}
	results := make([][]result, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < tasksPerWorker; i++ {
				// Each TaskTrace call races with the others' evictions: at
				// cap 2, most of these evict a trace another goroutine is
				// actively recording into.
				tr := r.TaskTrace(fmt.Sprintf("T-%d-%d", w, i))
				root, endRoot := tr.StartRoot("task", "t", "", nil)
				_, endQ := tr.Begin(root, "queue_wait", "t")
				endQ("dequeued")
				tr.Span("dispatch", "svc", "")
				_, endE := tr.Begin(root, "enact", "t")
				endE("done")
				endRoot("succeeded")
				results[w] = append(results[w], result{root: root, spans: tr.Spans()})
			}
		}(w)
	}
	wg.Wait()

	for w, rs := range results {
		for i, res := range rs {
			ids := map[string]bool{res.root.SpanID: true}
			for _, s := range res.spans {
				if s.SpanID != "" {
					ids[s.SpanID] = true
				}
			}
			if len(res.spans) != 4 {
				t.Fatalf("worker %d task %d: %d spans, want 4", w, i, len(res.spans))
			}
			for _, s := range res.spans {
				if s.TraceID != res.root.TraceID {
					t.Fatalf("worker %d task %d: span %s trace %q, want %q",
						w, i, s.Kind, s.TraceID, res.root.TraceID)
				}
				if s.Kind == "task" {
					continue // the root has no parent
				}
				if !ids[s.ParentID] {
					t.Fatalf("worker %d task %d: span %s orphaned parent %q",
						w, i, s.Kind, s.ParentID)
				}
			}
		}
	}
}

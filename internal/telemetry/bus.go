package telemetry

// The event bus is the live side of the monitoring service: every task span
// and node-health transition recorded into the registry is also fanned out
// to subscribers (the SSE endpoint, dashboards, steering agents). Delivery
// is strictly non-blocking: each subscriber owns a bounded buffer, and a
// subscriber that falls behind loses events — counted per subscriber and in
// the registry-wide telemetry.events.dropped counter — rather than ever
// stalling an enactment hot path.

import (
	"sync/atomic"
	"time"
)

// Event is one observability event on the bus: a task span (Task set) or a
// node-health transition (Node set). Seq is a bus-global publication order.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Task   string    `json:"task,omitempty"`
	Node   string    `json:"node,omitempty"`
	Kind   string    `json:"kind"`
	Name   string    `json:"name,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// EventKindNodeHealth is the Kind of node-health transition events published
// by the monitoring service (Name holds the new status).
const EventKindNodeHealth = "node-health"

// DefaultSubscribeBuffer is the per-subscriber channel capacity used when
// Subscribe is called with a non-positive buffer size.
const DefaultSubscribeBuffer = 256

// DefaultReplayCap is how many recent events the registry retains for
// Last-Event-ID resume. Events published before the first-ever subscriber
// are never retained (the idle bus stays free), and events older than the
// ring are reported as missed rather than replayed.
const DefaultReplayCap = 1024

// Subscription is one bounded listener on the registry's event bus. Receive
// from Events; Close unregisters. A subscription that stops draining loses
// events (Dropped counts them) but never blocks publishers.
type Subscription struct {
	reg     *Registry
	ch      chan Event
	dropped atomic.Uint64
}

// Subscribe registers a listener with the given buffer capacity (<= 0 means
// DefaultSubscribeBuffer). Returns nil on a nil registry.
func (r *Registry) Subscribe(buffer int) *Subscription {
	if r == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = DefaultSubscribeBuffer
	}
	sub := &Subscription{reg: r, ch: make(chan Event, buffer)}
	// The first subscriber ever latches the replay ring on for the rest of
	// the process lifetime, so later reconnects can resume across the gap
	// where they had no live subscription.
	r.replayOn.Store(true)
	r.subMu.Lock()
	r.subs = append(r.subs, sub)
	r.nsubs.Store(int32(len(r.subs)))
	r.subMu.Unlock()
	return sub
}

// Events is the subscription's receive channel. It is closed by Close. Nil
// on a nil subscription.
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many events this subscription lost to a full buffer.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel. Safe to call
// once; the exclusive lock excludes in-flight publishers, so no event is ever
// sent on the closed channel.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	r := s.reg
	r.subMu.Lock()
	for i, sub := range r.subs {
		if sub == s {
			r.subs = append(r.subs[:i:i], r.subs[i+1:]...)
			close(s.ch)
			break
		}
	}
	r.nsubs.Store(int32(len(r.subs)))
	r.subMu.Unlock()
}

// PublishEvent offers an event to every subscriber. With no subscribers the
// cost is one atomic load (plus the published counter), so instrumented hot
// paths pay nothing extra for an idle bus. Full subscriber buffers drop the
// event for that subscriber only. Safe on a nil registry.
func (r *Registry) PublishEvent(ev Event) {
	if r == nil {
		return
	}
	r.mEventsPublished.Inc()
	if r.nsubs.Load() == 0 && !r.replayOn.Load() {
		return
	}
	ev.Seq = r.eventSeq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.replayMu.Lock()
	if r.replayBuf == nil {
		r.replayBuf = make([]Event, DefaultReplayCap)
	}
	r.replayBuf[(r.replayStart+r.replayN)%len(r.replayBuf)] = ev
	if r.replayN < len(r.replayBuf) {
		r.replayN++
	} else {
		r.replayStart = (r.replayStart + 1) % len(r.replayBuf)
	}
	r.replayMu.Unlock()
	r.subMu.RLock()
	for _, sub := range r.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			r.mEventsDropped.Inc()
		}
	}
	r.subMu.RUnlock()
}

// EventsSince returns the retained events with Seq > after, oldest first,
// plus how many matching events were published but have already been
// overwritten by the replay ring (the unrecoverable gap). An `after` of 0
// replays the whole ring. Safe on a nil registry.
func (r *Registry) EventsSince(after uint64) (events []Event, missed uint64) {
	if r == nil {
		return nil, 0
	}
	r.replayMu.Lock()
	defer r.replayMu.Unlock()
	if r.replayN == 0 {
		// Nothing retained: everything past `after` (if anything) is missed.
		if latest := r.eventSeq.Load(); latest > after {
			return nil, latest - after
		}
		return nil, 0
	}
	oldest := r.replayBuf[r.replayStart].Seq
	if oldest > after+1 {
		missed = oldest - after - 1
	}
	for i := 0; i < r.replayN; i++ {
		ev := r.replayBuf[(r.replayStart+i)%len(r.replayBuf)]
		if ev.Seq > after {
			events = append(events, ev)
		}
	}
	return events, missed
}

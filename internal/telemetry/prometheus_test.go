package telemetry

import (
	"strings"
	"testing"
)

func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"engine.queue.depth":       "engine_queue_depth",
		"http.responses.2xx":       "http_responses_2xx",
		"2leading":                 "_2leading",
		"weird-name/with ch":       "weird_name_with_ch",
		"ok_name:colons":           "ok_name:colons",
		"":                         "_",
		"telemetry.events.dropped": "telemetry_events_dropped",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusEncoding(t *testing.T) {
	r := New()
	r.Counter("engine.admission.accepted").Add(7)
	r.Gauge("engine.queue.depth").Set(3.5)
	h := r.Histogram("engine.run.seconds", []float64{0.1, 1})
	h.Observe(0.05) // bucket le=0.1
	h.Observe(0.5)  // bucket le=1
	h.Observe(5)    // bucket le=+Inf

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE engine_admission_accepted counter\n",
		"engine_admission_accepted 7\n",
		"# TYPE engine_queue_depth gauge\n",
		"engine_queue_depth 3.5\n",
		"# TYPE engine_run_seconds histogram\n",
		// Cumulative buckets: 1, then 1+1, then all three at +Inf.
		"engine_run_seconds_bucket{le=\"0.1\"} 1\n",
		"engine_run_seconds_bucket{le=\"1\"} 2\n",
		"engine_run_seconds_bucket{le=\"+Inf\"} 3\n",
		"engine_run_seconds_sum 5.55\n",
		"engine_run_seconds_count 3\n",
		"# HELP engine_run_seconds engine.run.seconds\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	// Deterministic: a second encoding is byte-identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("encoding is not deterministic")
	}
}

// TestWritePrometheusExemplar pins the exemplar exposition: the latest
// traced observation is appended — OpenMetrics style — to exactly the first
// bucket that covers its value, and a histogram without exemplars encodes
// byte-identically to the pre-exemplar format.
func TestWritePrometheusExemplar(t *testing.T) {
	r := New()
	h := r.Histogram("trace.stage.enact.seconds", []float64{0.1, 1})
	h.ObserveExemplar(0.5, "0123456789abcdef0123456789abcdef")
	h.Observe(0.05)

	plain := r.Histogram("engine.run.seconds", []float64{0.1, 1})
	plain.Observe(0.5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// 0.5 falls in the le="1" bucket: the exemplar rides that line only.
	want := "trace_stage_enact_seconds_bucket{le=\"1\"} 2 # {trace_id=\"0123456789abcdef0123456789abcdef\"} 0.5\n"
	if !strings.Contains(out, want) {
		t.Errorf("output missing exemplar line %q\n%s", want, out)
	}
	for _, clean := range []string{
		"trace_stage_enact_seconds_bucket{le=\"0.1\"} 1\n",
		"trace_stage_enact_seconds_bucket{le=\"+Inf\"} 2\n",
		"engine_run_seconds_bucket{le=\"1\"} 1\n",
	} {
		if !strings.Contains(out, clean) {
			t.Errorf("output missing clean bucket line %q\n%s", clean, out)
		}
	}
	if n := strings.Count(out, "# {trace_id="); n != 1 {
		t.Errorf("%d exemplar suffixes, want exactly 1\n%s", n, out)
	}

	// The snapshot carries the exemplar for the JSON surface too.
	snap := r.Snapshot()
	hs := snap.Histograms["trace.stage.enact.seconds"]
	if hs.Exemplar == nil || hs.Exemplar.TraceID != "0123456789abcdef0123456789abcdef" || hs.Exemplar.Value != 0.5 {
		t.Errorf("snapshot exemplar = %+v", hs.Exemplar)
	}
	if snap.Histograms["engine.run.seconds"].Exemplar != nil {
		t.Error("untraced histogram grew an exemplar")
	}
}

package telemetry

import "testing"

func TestTenantMetric(t *testing.T) {
	cases := []struct{ tenant, suffix, want string }{
		{"alpha", "accepted", "engine.tenant.alpha.accepted"},
		{"", "queued", "engine.tenant..queued"},
		{"team-a_1", "run.seconds", "engine.tenant.team-a_1.run.seconds"},
		// Dots and exotic characters in tenant IDs must not shift the
		// suffix or survive into the metric name.
		{"a.b", "queued", "engine.tenant.a_b.queued"},
		{"sp ace/слон", "x", "engine.tenant.sp_ace_____.x"},
	}
	for _, c := range cases {
		if got := TenantMetric(c.tenant, c.suffix); got != c.want {
			t.Errorf("TenantMetric(%q, %q) = %q, want %q", c.tenant, c.suffix, got, c.want)
		}
	}
	// The sanitized name must survive Prometheus exposition sanitization
	// unchanged apart from the usual dot mapping.
	if got := PrometheusName(TenantMetric("a.b", "queued")); got != "engine_tenant_a_b_queued" {
		t.Errorf("PrometheusName round trip = %q", got)
	}
}

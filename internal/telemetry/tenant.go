package telemetry

import "strings"

// TenantMetric builds the canonical per-tenant metric name
// "engine.tenant.<tenant>.<suffix>". Tenant IDs are caller-supplied, so any
// character outside [a-zA-Z0-9_-] is mapped to '_' to keep the dotted name
// unambiguous (dots in a tenant ID would otherwise shift the suffix) and
// legal after Prometheus sanitization.
func TenantMetric(tenant, suffix string) string {
	var b strings.Builder
	b.Grow(len("engine.tenant.") + len(tenant) + 1 + len(suffix))
	b.WriteString("engine.tenant.")
	for _, r := range tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	b.WriteByte('.')
	b.WriteString(suffix)
	return b.String()
}

// Package telemetry is the measurement side of the Figure 1 monitoring
// service: a dependency-free, concurrency-safe metrics registry (counters,
// gauges, histograms with fixed buckets) plus per-task structured event
// traces (ring-buffered spans). A *Registry is threaded through
// core.Environment and the hot layers record into it; the httpapi exposes
// snapshots at GET /api/v1/metrics and GET /api/v1/tasks/{id}/trace.
//
// Every method is safe on a nil receiver and does nothing, so instrumented
// code never needs to guard against a missing registry — an un-instrumented
// run costs a nil check per call site.
//
// Metric names are dot-separated, lower-case, recorded in OBSERVABILITY.md.
package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments, task traces, and the event bus. Create
// with New; the zero value is not usable (use a nil *Registry for a no-op).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	traces     map[string]*TaskTrace
	traceOrder []string // insertion order, for eviction
	spanCap    int
	maxTraces  int

	// Event bus state (see bus.go). nsubs shadows len(subs) so the publish
	// hot path can skip the lock entirely while nobody is listening.
	subMu    sync.RWMutex
	subs     []*Subscription
	nsubs    atomic.Int32
	eventSeq atomic.Uint64

	// SSE resume ring (see bus.go): retains recent events so a reconnecting
	// subscriber can replay from its Last-Event-ID. replayOn latches true on
	// the first-ever Subscribe; until then publishes skip the ring entirely.
	replayOn    atomic.Bool
	replayMu    sync.Mutex
	replayBuf   []Event
	replayStart int
	replayN     int

	mEventsPublished *Counter
	mEventsDropped   *Counter
}

// Default capacity limits: spans retained per task trace and distinct task
// traces retained before the oldest is evicted.
const (
	DefaultSpanCap   = 2048
	DefaultMaxTraces = 1024
)

// New returns an empty registry with the default trace capacities.
func New() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		traces:     make(map[string]*TaskTrace),
		spanCap:    DefaultSpanCap,
		maxTraces:  DefaultMaxTraces,
	}
	// Resolved once so PublishEvent pays an atomic add, not a map lookup.
	r.mEventsPublished = r.Counter("telemetry.events.published")
	r.mEventsDropped = r.Counter("telemetry.events.dropped")
	return r
}

// SetTraceCapacity overrides the trace retention limits: spanCap spans kept
// per task and maxTraces distinct task traces before the oldest is evicted.
// Non-positive arguments keep the current value. Call before traffic;
// already-created traces keep their original span capacity.
func (r *Registry) SetTraceCapacity(spanCap, maxTraces int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if spanCap > 0 {
		r.spanCap = spanCap
	}
	if maxTraces > 0 {
		r.maxTraces = maxTraces
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds must be sorted ascending; an overflow
// bucket is implicit). Later calls ignore bounds and return the existing
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Add is shorthand for Counter(name).Add(n).
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// ---------------------------------------------------------------------------
// Instruments

// Counter is a monotonically increasing integer. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Nil-safe.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; len(counts) == len(bounds)+1
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64            // float64 bits, updated by CAS
	ex      atomic.Pointer[Exemplar] // most recent traced observation
}

// Exemplar ties one histogram observation back to the trace that produced
// it, in the OpenMetrics sense: a scraped latency bucket can be drilled into
// the task trace via the trace ID.
type Exemplar struct {
	TraceID string  `json:"traceId"`
	Value   float64 `json:"value"`
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// remembers it as the histogram's latest exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Exemplar returns the latest traced observation, or nil if none exists.
func (h *Histogram) Exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.ex.Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sumBits.Load())
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// ---------------------------------------------------------------------------
// Snapshot

// Snapshot is a point-in-time JSON-friendly view of every instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is one histogram's state. Buckets are non-cumulative;
// the final bucket has Le "+Inf".
type HistogramSnapshot struct {
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
	Buckets  []Bucket  `json:"buckets"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Bucket is one histogram bucket: the count of samples at or below Le and
// above the previous bound.
type Bucket struct {
	Le    string `json:"le"` // upper bound, "+Inf" for the overflow bucket
	Count int64  `json:"count"`
}

// Snapshot captures the current value of every instrument. Safe on nil
// (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Exemplar: h.Exemplar()}
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: h.counts[i].Load()})
		}
		s.Histograms[name] = hs
	}
	return s
}

package telemetry

// Prometheus text exposition (format version 0.0.4) for registry snapshots.
// The registry's dot-separated metric names are sanitized into legal
// Prometheus names (dots and other illegal runes become underscores, a
// leading digit gains an underscore prefix); counters and gauges emit one
// sample each, histograms emit cumulative `_bucket` series keyed by the `le`
// label plus `_sum` and `_count`. Output is sorted by metric name so scrapes
// are diffable and the encoder is deterministic under test.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type for text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus encodes the snapshot in Prometheus text exposition format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	type metric struct {
		name string // sanitized
		emit func() error
	}
	var metrics []metric

	for name, v := range s.Counters {
		orig, san, val := name, PrometheusName(name), v
		metrics = append(metrics, metric{san, func() error {
			return writeSimple(w, san, orig, "counter", strconv.FormatInt(val, 10))
		}})
	}
	for name, v := range s.Gauges {
		orig, san, val := name, PrometheusName(name), v
		metrics = append(metrics, metric{san, func() error {
			return writeSimple(w, san, orig, "gauge", formatFloat(val))
		}})
	}
	for name, h := range s.Histograms {
		orig, san, hs := name, PrometheusName(name), h
		metrics = append(metrics, metric{san, func() error {
			return writeHistogram(w, san, orig, hs)
		}})
	}

	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	for _, m := range metrics {
		if err := m.emit(); err != nil {
			return err
		}
	}
	return nil
}

func writeSimple(w io.Writer, name, orig, typ, value string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, helpText(orig), name, typ, name, value)
	return err
}

func writeHistogram(w io.Writer, name, orig string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		name, helpText(orig), name); err != nil {
		return err
	}
	// Snapshot buckets are per-bucket counts; Prometheus buckets are
	// cumulative ("observations at or below le"). When the histogram carries
	// an exemplar, its trace ID is appended (OpenMetrics style) to the first
	// bucket whose bound covers the exemplar value; without exemplars the
	// output is byte-identical to plain 0.0.4 exposition.
	var cum int64
	sawInf := false
	exDone := false
	for _, b := range h.Buckets {
		cum += b.Count
		if b.Le == "+Inf" {
			sawInf = true
		}
		suffix := ""
		if ex := h.Exemplar; ex != nil && !exDone {
			bound, perr := strconv.ParseFloat(b.Le, 64)
			if b.Le == "+Inf" || (perr == nil && ex.Value <= bound) {
				suffix = fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, formatFloat(ex.Value))
				exDone = true
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, b.Le, cum, suffix); err != nil {
			return err
		}
	}
	if !sawInf {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, h.Count)
	return err
}

// helpText is the HELP line payload: the registry's original dot name (the
// key documented in OBSERVABILITY.md), escaped per the exposition format.
func helpText(orig string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(orig)
}

// formatFloat renders a float sample; Prometheus accepts Go's shortest
// round-trip form plus +Inf/-Inf/NaN spellings, which 'g' covers.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusName sanitizes a registry metric name into a legal Prometheus
// metric name ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal rune becomes an
// underscore and a leading digit is prefixed with one.
func PrometheusName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		switch {
		case legal:
			b.WriteRune(r)
		case r >= '0' && r <= '9': // leading digit
			b.WriteByte('_')
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

package telemetry

// Trace context: the identity a span tree carries across goroutines, engine
// stages, and cluster hops. The wire form is the W3C traceparent header
// (version 00, sampled flag always 01):
//
//	00-<32 hex trace id>-<16 hex span id>-01
//
// A SpanContext travels through context.Context between layers (engine →
// coordination → planner) and through the traceparent HTTP header between
// nodes (submit forwarding in internal/httpapi).

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
)

// SpanContext identifies one span within one trace. The zero value is
// invalid and means "no trace in flight".
type SpanContext struct {
	TraceID string // 32 lower-case hex characters
	SpanID  string // 16 lower-case hex characters
}

// Valid reports whether the context carries a usable trace identity.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// Traceparent renders the context as a W3C traceparent header value, or ""
// for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Unknown versions
// are accepted as long as the field shape matches; all-zero IDs are invalid.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return SpanContext{}, false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

type spanContextKey struct{}

// ContextWithSpan returns a context carrying the span context, for
// propagation across layer boundaries without widening every signature.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanContextKey{}, sc)
}

// SpanFromContext extracts the span context installed by ContextWithSpan,
// or the zero SpanContext when none is present.
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanContextKey{}).(SpanContext)
	return sc
}

// ID generation: one crypto/rand seed per process, then a splitmix64 walk.
// Each new ID costs one atomic add and a small mix — no syscall, which keeps
// span creation cheap enough for enactment hot paths.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(0x9e3779b97f4a7c15)
	}
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15) // golden-ratio increment (splitmix64)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // all-zero IDs are invalid on the wire
	}
	return x
}

// NewTraceID returns a fresh 32-hex-character trace ID.
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], nextID())
	binary.BigEndian.PutUint64(b[8:], nextID())
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-character span ID.
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nextID())
	return hex.EncodeToString(b[:])
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(3)
	r.Counter("a.b").Inc()
	if got := r.Counter("a.b").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Errorf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["h"]
	want := []int64{2, 1, 1} // le 1 (0.5 and 1), le 10 (5), +Inf (100)
	for i, b := range hs.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le %s) = %d, want %d", i, b.Le, b.Count, want[i])
		}
	}
	if hs.Buckets[2].Le != "+Inf" {
		t.Errorf("overflow bucket le = %q", hs.Buckets[2].Le)
	}
	if snap.Counters["a.b"] != 4 || snap.Gauges["g"] != 2.5 {
		t.Errorf("snapshot = %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestHistogramReuseIgnoresBounds(t *testing.T) {
	r := New()
	h1 := r.Histogram("x", []float64{1, 2})
	h2 := r.Histogram("x", []float64{5})
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	r.Add("c", 5)
	r.TaskTrace("t").Span("k", "n", "d")
	if tr := r.LookupTrace("t"); tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil trace not empty")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", []float64{100, 500}).Observe(float64(i))
				r.TaskTrace("task").Span("k", "", "")
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestTraceOrderingAndRing(t *testing.T) {
	r := New()
	r.spanCap = 8 // small ring to exercise wraparound
	tr := r.TaskTrace("T1")
	for i := 0; i < 20; i++ {
		tr.Span("fire", fmt.Sprintf("a%d", i), "")
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := uint64(13 + i); s.Seq != want {
			t.Errorf("span %d seq = %d, want %d", i, s.Seq, want)
		}
	}
	if tr.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", tr.Dropped())
	}
	if r.LookupTrace("nope") != nil {
		t.Error("LookupTrace invented a trace")
	}
	if r.LookupTrace("T1") != tr {
		t.Error("LookupTrace missed the recorded trace")
	}
}

func TestTraceEviction(t *testing.T) {
	r := New()
	r.maxTraces = 3
	for i := 0; i < 5; i++ {
		r.TaskTrace(fmt.Sprintf("T%d", i)).Span("k", "", "")
	}
	if r.LookupTrace("T0") != nil || r.LookupTrace("T1") != nil {
		t.Error("oldest traces not evicted")
	}
	for i := 2; i < 5; i++ {
		if r.LookupTrace(fmt.Sprintf("T%d", i)) == nil {
			t.Errorf("trace T%d evicted too early", i)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkSpan(b *testing.B) {
	r := New()
	tr := r.TaskTrace("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Span("fire", "activity", "detail")
	}
}

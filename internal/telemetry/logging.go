package telemetry

// Structured logging for the observability plane: log/slog with
// component-scoped loggers. core.NewEnvironment derives one logger per
// component (engine, coordination, scheduling, monitoring, httpapi) from
// Options.Logger via ComponentLogger; gridenv builds the root logger from
// its -log-level / -log-format flags through NewLogger. A nil root logger
// means silent — NopLogger supplies a logger whose handler discards
// everything, so component code never nil-checks.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a root slog logger writing to w. level is one of
// "debug", "info", "warn", "error" (case-insensitive; empty means info);
// format is "text" or "json" (empty means text).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
}

// ComponentLogger scopes a root logger to one component; a nil root yields
// the no-op logger, so callers can pass the result around unconditionally.
func ComponentLogger(root *slog.Logger, component string) *slog.Logger {
	if root == nil {
		return NopLogger()
	}
	return root.With(slog.String("component", component))
}

// nopHandler discards every record.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nop = slog.New(nopHandler{})

// NopLogger returns a logger that discards everything (its handler reports
// every level disabled, so argument evaluation is the only cost).
func NopLogger() *slog.Logger { return nop }

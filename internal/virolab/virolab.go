// Package virolab reproduces the paper's Section 4 case study: the virtual
// laboratory for computational biology performing 3D reconstruction of virus
// structures from electron microscopy data. It provides the four parallel
// programs as end-user service specifications (POD, P3DR, POR, PSF) with the
// paper's conditions C1-C8, the data items D1-D12, the Figure 10 process
// description, the Figure 11 plan tree, and the Figure 13 ontology
// instances.
//
// The paper's programs run on real micrographs (GBytes of 2D projections);
// here they are simulated: the planner and coordinator only ever inspect
// metadata (classification, size, resolution value), which this package
// reproduces exactly, including the iterative resolution-refinement loop
// controlled by the constraint Cons1.
package virolab

import (
	"repro/internal/expr"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

// The input/output conditions of Figure 13.
const (
	C1 = `A.Classification = "POD-Parameter" and B.Classification = "2D Image"`
	C2 = `C.Type = "Orientation File"`
	C3 = `A.Classification = "P3DR-Parameter" and B.Classification = "2D Image" and C.Classification = "Orientation File"`
	C4 = `D.Classification = "3D Model"`
	C5 = `A.Classification = "POR-Parameter" and B.Classification = "2D Image" and C.Classification = "Orientation File" and D.Classification = "3D Model"`
	C6 = `E.Classification = "Orientation File"`
	C7 = `A.Classification = "PSF-Parameter" and B.Classification = "3D Model" and C.Classification = "3D Model"`
	C8 = `D.Classification = "Resolution File"`
)

// Cons1 is the loop constraint of Figure 13: iterate the refinement while
// the achieved resolution is coarser than 8 Angstrom. (The paper's text
// names D10 in Cons1 but its own data table has PSF writing the resolution
// file to D12; we follow the data table.)
const Cons1 = `D12.Classification = "Resolution File" and D12.value > 8`

// GoalCondition is the case goal: a resolution file exists.
const GoalCondition = `G.Classification = "Resolution File"`

// DefaultResolutionSchedule is the simulated resolution (Angstrom) after
// each pass of the iterative refinement: the loop body runs until the value
// drops to 8 or below, giving the paper's "repeat at higher resolution"
// behaviour with three iterations.
var DefaultResolutionSchedule = []float64{12, 9.5, 7.8}

// Catalog returns the set T of end-user services with the conditions C1-C8.
// Base times are the simulated nominal durations on a speed-1 node.
func Catalog() *workflow.Catalog {
	pod := &workflow.Service{
		Name: "POD",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "POD-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name: "C",
			Props: map[string]expr.Value{
				workflow.PropClassification: expr.String("Orientation File"),
				workflow.PropType:           expr.String("Orientation File"),
			},
		}},
		BaseTime: 600,
		Cost:     2,
	}
	p3dr := &workflow.Service{
		Name: "P3DR",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "P3DR-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
			{Name: "C", Condition: `C.Classification = "Orientation File"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name: "D",
			Props: map[string]expr.Value{
				workflow.PropClassification: expr.String("3D Model"),
				workflow.PropFormat:         expr.String("Electron Density Map"),
			},
		}},
		BaseTime: 1800,
		Cost:     10,
	}
	por := &workflow.Service{
		Name: "POR",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "POR-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
			{Name: "C", Condition: `C.Classification = "Orientation File"`},
			{Name: "D", Condition: `D.Classification = "3D Model"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name: "E",
			Props: map[string]expr.Value{
				workflow.PropClassification: expr.String("Orientation File"),
				workflow.PropType:           expr.String("Orientation File"),
			},
		}},
		BaseTime: 1200,
		Cost:     6,
	}
	psf := &workflow.Service{
		Name: "PSF",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "PSF-Parameter"`},
			{Name: "B", Condition: `B.Classification = "3D Model"`},
			{Name: "C", Condition: `C.Classification = "3D Model"`},
		},
		Outputs: []workflow.OutputSpec{{
			Name: "D",
			Props: map[string]expr.Value{
				workflow.PropClassification: expr.String("Resolution File"),
				workflow.PropValue:          expr.Number(12),
			},
		}},
		BaseTime: 300,
		Cost:     1,
	}
	return workflow.NewCatalog(pod, p3dr, por, psf)
}

// InitialData returns the data items D1-D7 of Figure 13.
func InitialData() []*workflow.DataItem {
	return []*workflow.DataItem{
		workflow.NewDataItem("D1", "POD-Parameter").
			With(workflow.PropFormat, expr.String("Text")).
			With(workflow.PropSize, expr.Number(3e3)).
			With(workflow.PropCreator, expr.String("User")),
		workflow.NewDataItem("D2", "P3DR-Parameter").
			With(workflow.PropFormat, expr.String("Text")).
			With(workflow.PropCreator, expr.String("User")),
		workflow.NewDataItem("D3", "P3DR-Parameter").
			With(workflow.PropFormat, expr.String("Text")).
			With(workflow.PropCreator, expr.String("User")),
		workflow.NewDataItem("D4", "P3DR-Parameter").
			With(workflow.PropFormat, expr.String("Text")).
			With(workflow.PropCreator, expr.String("User")),
		workflow.NewDataItem("D5", "POR-Parameter").
			With(workflow.PropFormat, expr.String("Text")).
			With(workflow.PropCreator, expr.String("User")),
		workflow.NewDataItem("D6", "PSF-Parameter").
			With(workflow.PropFormat, expr.String("Text")).
			With(workflow.PropCreator, expr.String("User")),
		workflow.NewDataItem("D7", "2D Image").
			With(workflow.PropSize, expr.Number(1.5e9)).
			With(workflow.PropCreator, expr.String("User")),
	}
}

// Case returns the case description CD-3DSD.
func Case() *workflow.CaseDescription {
	c := workflow.NewCase("CD-3DSD", "CD-3DSD").AddData(InitialData()...)
	c.ResultSet = []string{"D12"}
	c.SetConstraint("Cons1", Cons1)
	c.Goal = workflow.NewGoal(GoalCondition)
	return c
}

// Problem returns the planning problem of Section 5's experiment: initial
// data D1-D7, the resolution-file goal, and the full catalog.
func Problem() *workflow.Problem {
	return &workflow.Problem{
		Name:    "3DSD",
		Initial: workflow.NewState(InitialData()...),
		Goal:    workflow.NewGoal(GoalCondition),
		Catalog: Catalog(),
	}
}

// Process builds the Figure 10 process description: BEGIN, POD, P3DR1,
// MERGE, POR, FORK, {P3DR2, P3DR3, P3DR4}, JOIN, PSF, CHOICE, END with
// transitions TR1-TR15 and the per-activity data sets of Figure 13.
func Process() *workflow.ProcessDescription {
	p := workflow.NewProcess("PD-3DSD")
	add := func(id, name string, kind workflow.Kind, service string, in, out []string) {
		p.Add(&workflow.Activity{
			ID: id, Name: name, Kind: kind, Service: service,
			Inputs: in, Outputs: out,
		})
	}
	add("A1", "BEGIN", workflow.KindBegin, "", nil, nil)
	add("A2", "POD", workflow.KindEndUser, "POD", []string{"D1", "D7"}, []string{"D8"})
	add("A3", "P3DR1", workflow.KindEndUser, "P3DR", []string{"D2", "D7", "D8"}, []string{"D9"})
	add("A4", "MERGE", workflow.KindMerge, "", nil, nil)
	add("A5", "POR", workflow.KindEndUser, "POR", []string{"D5", "D7", "D8", "D9"}, []string{"D8"})
	add("A6", "FORK", workflow.KindFork, "", nil, nil)
	add("A7", "P3DR2", workflow.KindEndUser, "P3DR", []string{"D3", "D7", "D8"}, []string{"D10"})
	add("A8", "P3DR3", workflow.KindEndUser, "P3DR", []string{"D4", "D7", "D8"}, []string{"D11"})
	add("A9", "P3DR4", workflow.KindEndUser, "P3DR", []string{"D2", "D7", "D8"}, []string{"D9"})
	add("A10", "JOIN", workflow.KindJoin, "", nil, nil)
	add("A11", "PSF", workflow.KindEndUser, "PSF", []string{"D10", "D11"}, []string{"D12"})
	add("A12", "CHOICE", workflow.KindChoice, "", nil, nil)
	add("A13", "END", workflow.KindEnd, "", nil, nil)
	p.Activity("A12").Constraint = Cons1

	connect := func(src, dst, cond string) {
		p.ConnectCond(src, dst, cond)
	}
	connect("A1", "A2", "")     // TR1  BEGIN -> POD
	connect("A2", "A3", "")     // TR2  POD -> P3DR1
	connect("A3", "A4", "")     // TR3  P3DR1 -> MERGE
	connect("A4", "A5", "")     // TR4  MERGE -> POR
	connect("A5", "A6", "")     // TR5  POR -> FORK
	connect("A6", "A7", "")     // TR6  FORK -> P3DR2
	connect("A6", "A8", "")     // TR7  FORK -> P3DR3
	connect("A6", "A9", "")     // TR8  FORK -> P3DR4
	connect("A7", "A10", "")    // TR9  P3DR2 -> JOIN
	connect("A8", "A10", "")    // TR10 P3DR3 -> JOIN
	connect("A9", "A10", "")    // TR11 P3DR4 -> JOIN
	connect("A10", "A11", "")   // TR12 JOIN -> PSF
	connect("A11", "A12", "")   // TR13 PSF -> CHOICE
	connect("A12", "A4", Cons1) // TR14 CHOICE -> MERGE (iterate)
	connect("A12", "A13", "")   // TR15 CHOICE -> END
	return p
}

// PlanTree builds the Figure 11 plan tree corresponding to Process.
func PlanTree() *plantree.Node {
	p3dr1 := plantree.Activity("P3DR")
	p3dr1.Name = "P3DR1"
	p3dr2 := plantree.Activity("P3DR")
	p3dr2.Name = "P3DR2"
	p3dr3 := plantree.Activity("P3DR")
	p3dr3.Name = "P3DR3"
	p3dr4 := plantree.Activity("P3DR")
	p3dr4.Name = "P3DR4"
	loop := plantree.Iter(
		plantree.Activity("POR"),
		plantree.Conc(p3dr2, p3dr3, p3dr4),
		plantree.Activity("PSF"),
	)
	loop.Condition = Cons1
	return plantree.Seq(plantree.Activity("POD"), p3dr1, loop)
}

// Task assembles the full Figure 13 task T1 ("3DSD").
func Task() *workflow.Task {
	return &workflow.Task{
		ID:      "T1",
		Name:    "3DSD",
		Owner:   "UCF",
		Process: Process(),
		Case:    Case(),
	}
}

// ResolutionHook returns a coordination PostProcess hook that models the
// resolution refinement: each PSF pass writes the next value from the
// schedule onto its resolution file, so the Cons1 loop terminates once the
// resolution reaches 8 Angstrom or better.
func ResolutionHook(schedule []float64) func(act *workflow.Activity, produced []*workflow.DataItem, visit int) {
	if len(schedule) == 0 {
		schedule = DefaultResolutionSchedule
	}
	return func(act *workflow.Activity, produced []*workflow.DataItem, visit int) {
		if act.Service != "PSF" {
			return
		}
		idx := visit - 1
		if idx >= len(schedule) {
			idx = len(schedule) - 1
		}
		if idx < 0 {
			idx = 0
		}
		for _, item := range produced {
			if item.Classification() == "Resolution File" {
				item.With(workflow.PropValue, expr.Number(schedule[idx]))
			}
		}
	}
}

// PDLSource is the canonical PDL text of the Figure 10 process description,
// with the Figure 13 data-set bindings. pdl.ParseProcess of this text yields
// a process equivalent to Process().
const PDLSource = `
# Figure 10: 3D reconstruction of virus structures (PD-3DSD).
BEGIN,
  POD(D1, D7 -> D8);
  P3DR1 = P3DR(D2, D7, D8 -> D9);
  {ITERATIVE {COND D12.Classification = "Resolution File" and D12.value > 8}
    {POR(D5, D7, D8, D9 -> D8);
     {FORK
       {P3DR2 = P3DR(D3, D7, D8 -> D10)}
       {P3DR3 = P3DR(D4, D7, D8 -> D11)}
       {P3DR4 = P3DR(D2, D7, D8 -> D9)}
     JOIN};
     PSF(D10, D11 -> D12)}
  },
END
`

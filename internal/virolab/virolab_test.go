package virolab

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/pdl"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

// TestFig10ProcessDescription checks the structure of the Figure 10 graph:
// 7 end-user activities, 6 flow-control activities, 15 transitions.
func TestFig10ProcessDescription(t *testing.T) {
	p := Process()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.CountKind(workflow.KindEndUser); got != 7 {
		t.Errorf("end-user activities = %d, want 7", got)
	}
	flow := len(p.Activities) - p.CountKind(workflow.KindEndUser)
	if flow != 6 {
		t.Errorf("flow-control activities = %d, want 6", flow)
	}
	if len(p.Transitions) != 15 {
		t.Errorf("transitions = %d, want 15", len(p.Transitions))
	}
	// The back edge TR14 goes from the Choice to the Merge, guarded by Cons1.
	var back *workflow.Transition
	for _, tr := range p.Transitions {
		if tr.Source == "A12" && tr.Dest == "A4" {
			back = tr
		}
	}
	if back == nil || back.Condition != Cons1 {
		t.Errorf("back edge = %+v", back)
	}
	// Activity data sets follow Figure 13.
	psf := p.ActivityByName("PSF")
	if psf == nil || strings.Join(psf.Inputs, ",") != "D10,D11" || strings.Join(psf.Outputs, ",") != "D12" {
		t.Errorf("PSF data sets = %+v", psf)
	}
	por := p.ActivityByName("POR")
	if por == nil || strings.Join(por.Outputs, ",") != "D8" {
		t.Errorf("POR outputs = %+v", por)
	}
}

// TestFig11PlanTree checks the plan tree and its correspondence with the
// Figure 10 process description.
func TestFig11PlanTree(t *testing.T) {
	tree := PlanTree()
	if err := tree.Validate(40); err != nil {
		t.Fatal(err)
	}
	want := "(seq POD P3DR (iter POR (conc P3DR P3DR P3DR) PSF))"
	if tree.String() != want {
		t.Errorf("tree = %s, want %s", tree, want)
	}
	if tree.Size() != 10 {
		t.Errorf("size = %d, want 10", tree.Size())
	}
	// Round trip through the graph form preserves the structure.
	pd, err := plantree.ToProcess("3DSD", tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := plantree.FromProcess(pd)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tree) {
		t.Errorf("round trip:\n got %s\nwant %s", back, tree)
	}
	// The hand-built Figure 10 graph also parses back to the same shape.
	fromFig10, err := plantree.FromProcess(Process())
	if err != nil {
		t.Fatal(err)
	}
	if fromFig10.String() != want {
		t.Errorf("Figure 10 parses to %s, want %s", fromFig10, want)
	}
}

func TestCatalogConditions(t *testing.T) {
	cat := Catalog()
	if cat.Len() != 4 {
		t.Fatalf("catalog size = %d, want 4", cat.Len())
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := workflow.NewState(InitialData()...)
	// Only POD is applicable initially.
	if !cat.Get("POD").Applicable(st) {
		t.Error("POD should be applicable initially")
	}
	for _, name := range []string{"P3DR", "POR", "PSF"} {
		if cat.Get(name).Applicable(st) {
			t.Errorf("%s should not be applicable initially", name)
		}
	}
	// After POD -> orientation file, P3DR becomes applicable.
	st2, ok := cat.Get("POD").Apply(st, []string{"D8"}, 0)
	if !ok {
		t.Fatal("POD failed")
	}
	if !cat.Get("P3DR").Applicable(st2) {
		t.Error("P3DR should be applicable after POD")
	}
	// POR needs a 3D model as well.
	if cat.Get("POR").Applicable(st2) {
		t.Error("POR should not be applicable before P3DR")
	}
	st3, _ := cat.Get("P3DR").Apply(st2, []string{"D9"}, 1)
	if !cat.Get("POR").Applicable(st3) {
		t.Error("POR should be applicable after P3DR")
	}
	// PSF needs two distinct models.
	if cat.Get("PSF").Applicable(st3) {
		t.Error("PSF should not be applicable with one model")
	}
	st4, _ := cat.Get("P3DR").Apply(st3, []string{"D10"}, 2)
	if !cat.Get("PSF").Applicable(st4) {
		t.Error("PSF should be applicable with two models")
	}
}

func TestCaseAndTask(t *testing.T) {
	c := Case()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.InitialData) != 7 {
		t.Errorf("initial data = %d, want 7 (D1-D7)", len(c.InitialData))
	}
	if c.Constraints["Cons1"] != Cons1 {
		t.Error("Cons1 not registered")
	}
	task := Task()
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	if task.ID != "T1" || task.Owner != "UCF" {
		t.Errorf("task = %+v", task)
	}
	p := Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResolutionHook(t *testing.T) {
	hook := ResolutionHook(nil)
	psf := Process().ActivityByName("PSF")
	mk := func() []*workflow.DataItem {
		return []*workflow.DataItem{workflow.NewDataItem("D12", "Resolution File")}
	}
	for visit, want := range map[int]float64{1: 12, 2: 9.5, 3: 7.8, 4: 7.8, 0: 12} {
		items := mk()
		hook(psf, items, visit)
		v, ok := items[0].Prop(workflow.PropValue)
		n, _ := v.Num()
		if !ok || n != want {
			t.Errorf("visit %d: value = %v, want %g", visit, v, want)
		}
	}
	// Non-PSF activities untouched.
	items := mk()
	hook(Process().ActivityByName("POD"), items, 1)
	if _, ok := items[0].Prop(workflow.PropValue); ok {
		t.Error("hook touched non-PSF output")
	}
	// Custom schedule respected.
	custom := ResolutionHook([]float64{5})
	items = mk()
	custom(psf, items, 1)
	if v, _ := items[0].Prop(workflow.PropValue); v.Str() != "5" {
		t.Errorf("custom schedule value = %v", v)
	}
}

// TestFig13Instances validates the populated ontology.
func TestFig13Instances(t *testing.T) {
	kb, err := Ontology()
	if err != nil {
		t.Fatal(err)
	}
	classes, instances := kb.Stats()
	if classes != 10 {
		t.Errorf("classes = %d, want 10", classes)
	}
	// 12 data + 4 services + 13 activities + 15 transitions + PD + CD + task = 47.
	if instances != 47 {
		t.Errorf("instances = %d, want 47", instances)
	}
	if got := len(kb.InstancesOf(ontology.ClassData)); got != 12 {
		t.Errorf("data instances = %d, want 12", got)
	}
	if got := len(kb.InstancesOf(ontology.ClassTransition)); got != 15 {
		t.Errorf("transition instances = %d, want 15", got)
	}
	// Task links resolve.
	task := kb.Instance("T1")
	if task == nil {
		t.Fatal("task instance missing")
	}
	if v, _ := task.Get("ProcessDescription"); v.S != "PD-3DSD" {
		t.Errorf("task PD ref = %v", v)
	}
	// Query: all 3D models.
	models := kb.Query(ontology.ClassData, func(in *ontology.Instance) bool {
		return in.Text("Classification") == "3D Model"
	})
	if len(models) != 3 {
		t.Errorf("3D models = %d, want 3 (D9, D10, D11)", len(models))
	}
	// The ontology round-trips through JSON.
	data, err := kb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ontology.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := back.Stats(); n != instances {
		t.Errorf("instances after round trip = %d, want %d", n, instances)
	}
}

func BenchmarkFig13InstanceLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Ontology(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPDLSourceMatchesProcess checks that the canonical PDL text and the
// hand-built Figure 10 graph agree: same plan tree, same activity data
// bindings, and identical enactment-relevant structure.
func TestPDLSourceMatchesProcess(t *testing.T) {
	fromText, err := pdl.ParseProcess("PD-3DSD", PDLSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromText.Validate(); err != nil {
		t.Fatal(err)
	}
	treeText, err := plantree.FromProcess(fromText)
	if err != nil {
		t.Fatal(err)
	}
	treeGraph, err := plantree.FromProcess(Process())
	if err != nil {
		t.Fatal(err)
	}
	// The graph form carries Cons1 on the back edge; the PDL text carries
	// it as the ITERATIVE condition — identical after parsing.
	if !treeText.Equal(treeGraph) {
		t.Errorf("trees differ:\n text: %s\ngraph: %s", treeText, treeGraph)
	}
	// Binding spot checks survive the text form.
	psf := fromText.ActivityByName("PSF")
	if psf == nil || strings.Join(psf.Inputs, ",") != "D10,D11" || strings.Join(psf.Outputs, ",") != "D12" {
		t.Errorf("PSF from text = %+v", psf)
	}
}

package virolab

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/workflow"
)

// Ontology populates the grid ontology shell (Figure 12) with the instances
// of Figure 13: task T1, process description PD-3DSD, case description
// CD-3DSD, the thirteen activities, the fifteen transitions, the data items
// D1-D12 (D8-D12 described with their creators even though they only exist
// after execution), and the four services with conditions C1-C8.
func Ontology() (*ontology.KB, error) {
	kb := ontology.GridShell()

	// Data instances.
	dataSpecs := []struct {
		id, classification, format, creator string
		size                                float64
	}{
		{"D1", "POD-Parameter", "Text", "User", 3e3},
		{"D2", "P3DR-Parameter", "Text", "User", 0},
		{"D3", "P3DR-Parameter", "Text", "User", 0},
		{"D4", "P3DR-Parameter", "Text", "User", 0},
		{"D5", "POR-Parameter", "Text", "User", 0},
		{"D6", "PSF-Parameter", "Text", "User", 0},
		{"D7", "2D Image", "", "User", 1.5e9},
		{"D8", "Orientation File", "", "POD, POR", 0},
		{"D9", "3D Model", "", "P3DR1,P3DR4", 0},
		{"D10", "3D Model", "", "P3DR2", 0},
		{"D11", "3D Model", "", "P3DR3", 0},
		{"D12", "Resolution File", "", "PSF", 0},
	}
	for _, d := range dataSpecs {
		in := ontology.NewInstance(d.id, ontology.ClassData).
			Set("Name", ontology.Str(d.id)).
			Set("Classification", ontology.Str(d.classification)).
			Set("Creator", ontology.Str(d.creator))
		if d.format != "" {
			in.Set("Format", ontology.Str(d.format))
		}
		if d.size > 0 {
			in.Set("Size", ontology.Num(d.size))
		}
		if err := kb.AddInstance(in); err != nil {
			return nil, err
		}
	}

	// Service instances with the C1-C8 conditions.
	svcSpecs := []struct {
		name     string
		inputs   []string
		inCond   string
		outputs  []string
		outCond  string
		baseCost float64
	}{
		{"POD", []string{"A", "B"}, C1, []string{"C"}, C2, 2},
		{"P3DR", []string{"A", "B", "C"}, C3, []string{"D"}, C4, 10},
		{"POR", []string{"A", "B", "C", "D"}, C5, []string{"E"}, C6, 6},
		{"PSF", []string{"A", "B", "C"}, C7, []string{"D"}, C8, 1},
	}
	for _, s := range svcSpecs {
		in := ontology.NewInstance("svc-"+s.name, ontology.ClassService).
			Set("Name", ontology.Str(s.name)).
			Set("Type", ontology.Str("end-user")).
			Set("InputDataSet", ontology.List(s.inputs...)).
			Set("InputCondition", ontology.List(s.inCond)).
			Set("OutputDataSet", ontology.List(s.outputs...)).
			Set("OutputCondition", ontology.List(s.outCond)).
			Set("Cost", ontology.Num(s.baseCost))
		if err := kb.AddInstance(in); err != nil {
			return nil, err
		}
	}

	// Activity and transition instances mirror the Process graph exactly.
	pd := Process()
	for _, a := range pd.Activities {
		in := ontology.NewInstance(a.ID, ontology.ClassActivity).
			Set("ID", ontology.Str(a.ID)).
			Set("Name", ontology.Str(a.Name)).
			Set("TaskID", ontology.Str("T1")).
			Set("Type", ontology.Str(activityTypeName(a.Kind)))
		if a.Service != "" {
			in.Set("ServiceName", ontology.Str(a.Service))
		}
		if len(a.Inputs) > 0 {
			in.Set("InputDataSet", ontology.List(a.Inputs...))
		}
		if len(a.Outputs) > 0 {
			in.Set("OutputDataSet", ontology.List(a.Outputs...))
		}
		if a.Constraint != "" {
			in.Set("Constraint", ontology.Str(a.Constraint))
		}
		var preds, succs []string
		for _, p := range pd.Predecessors(a.ID) {
			preds = append(preds, p.ID)
		}
		for _, s := range pd.Successors(a.ID) {
			succs = append(succs, s.ID)
		}
		if len(preds) > 0 {
			in.Set("DirectPredecessorSet", ontology.List(preds...))
		}
		if len(succs) > 0 {
			in.Set("DirectSuccessorSet", ontology.List(succs...))
		}
		if err := kb.AddInstance(in); err != nil {
			return nil, err
		}
	}
	var activityIDs, transitionIDs []string
	for _, a := range pd.Activities {
		activityIDs = append(activityIDs, a.ID)
	}
	for _, t := range pd.Transitions {
		transitionIDs = append(transitionIDs, t.ID)
		in := ontology.NewInstance(t.ID, ontology.ClassTransition).
			Set("ID", ontology.Str(t.ID)).
			Set("SourceActivity", ontology.Str(t.Source)).
			Set("DestinationActivity", ontology.Str(t.Dest))
		if err := kb.AddInstance(in); err != nil {
			return nil, err
		}
	}

	pdInst := ontology.NewInstance("PD-3DSD", ontology.ClassProcessDescription).
		Set("ID", ontology.Str("PD-3DSD")).
		Set("Name", ontology.Str("PD-3DSD")).
		Set("ActivitySet", ontology.List(activityIDs...)).
		Set("TransitionSet", ontology.List(transitionIDs...)).
		Set("Creator", ontology.Str("User"))
	if err := kb.AddInstance(pdInst); err != nil {
		return nil, err
	}

	cdInst := ontology.NewInstance("CD-3DSD", ontology.ClassCaseDescription).
		Set("ID", ontology.Str("CD-3DSD")).
		Set("Name", ontology.Str("CD-3DSD")).
		Set("InitialDataSet", ontology.List("D1", "D2", "D3", "D4", "D5", "D6", "D7")).
		Set("ResultSet", ontology.List("D12")).
		Set("Constraint", ontology.Str(Cons1)).
		Set("GoalCondition", ontology.Str(GoalCondition))
	if err := kb.AddInstance(cdInst); err != nil {
		return nil, err
	}

	taskInst := ontology.NewInstance("T1", ontology.ClassTask).
		Set("ID", ontology.Str("T1")).
		Set("Name", ontology.Str("3DSD")).
		Set("Owner", ontology.Str("UCF")).
		Set("Status", ontology.Str("Submitted")).
		Set("DataSet", ontology.List("D1", "D2", "D3", "D4", "D5", "D6", "D7")).
		Set("ResultSet", ontology.List("D12")).
		Set("CaseDescription", ontology.Ref("CD-3DSD")).
		Set("ProcessDescription", ontology.Ref("PD-3DSD")).
		Set("NeedPlanning", ontology.Boolean(false))
	if err := kb.AddInstance(taskInst); err != nil {
		return nil, err
	}

	if errs := kb.ValidateRefs(); len(errs) > 0 {
		return nil, fmt.Errorf("virolab: ontology references invalid: %v", errs[0])
	}
	return kb, nil
}

func activityTypeName(k workflow.Kind) string {
	if k == workflow.KindEndUser {
		return "End-user"
	}
	return k.String()
}

package httpapi

import (
	"net/http"
	"strconv"
)

// handleTenants lists per-tenant fair-share configuration and accounting
// (weights, quotas, queue/running depths, admission and outcome counters,
// mean latencies), paginated like the other listings. With ?scope=cluster
// on a clustered environment it instead merges every reachable node's rows.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if s.clusterScope(r) {
		s.handleTenantsCluster(w, r)
		return
	}
	limit, offset, err := parsePage(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	tenants := s.env.Engine.Tenants()
	writeJSON(w, http.StatusOK, page{
		Items:  paginate(tenants, limit, offset),
		Total:  len(tenants),
		Limit:  limit,
		Offset: offset,
	})
}

// handleTenantGet serves one tenant's accounting view; unknown tenants (never
// seen and not configured) answer 404.
func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, ok := s.env.Engine.Tenant(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "not_found", "no tenant %q", id)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// rateLimitHeaders stamps the X-RateLimit-* trio plus Retry-After on a 429.
// For rate-limited rejections the trio describes the tenant's token bucket;
// for queue-quota rejections it describes the queued-task allowance, with
// the engine's backlog-based estimate as the reset horizon.
func (s *Server) rateLimitHeaders(w http.ResponseWriter, tenant string, rate bool) {
	info := s.env.Engine.TenantAdmission(tenant)
	limit, remaining, reset := info.QueueLimit, info.QueueRemaining, s.env.Engine.RetryAfterSeconds()
	if rate {
		limit, remaining, reset = info.RateLimit, info.RateRemaining, info.RateResetSec
		if reset < 1 {
			reset = 1
		}
	}
	h := w.Header()
	h.Set("X-RateLimit-Limit", strconv.Itoa(limit))
	h.Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
	h.Set("X-RateLimit-Reset", strconv.Itoa(reset))
	h.Set("Retry-After", strconv.Itoa(reset))
}

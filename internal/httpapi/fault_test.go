package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/services"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// forkPDL is a short two-stage workflow the fault-API tests submit; its goal
// is reachable without the iterative refinement loop.
const forkPDL = `BEGIN,
  POD(D1, D7 -> D8);
  {FORK
    {P3DR(D2, D7, D8 -> D9)}
    {P3DR(D3, D7, D8 -> D10)}
  JOIN},
END`

func forkSubmission(id string) TaskSubmission {
	sub := TaskSubmission{
		ID:   id,
		Name: "fault-api " + id,
		PDL:  forkPDL,
		Goal: []string{`G.Classification = "3D Model"`},
	}
	for _, d := range virolab.InitialData() {
		sub.InitialData = append(sub.InitialData, DataItemJSON{Name: d.Name, Classification: d.Classification()})
	}
	return sub
}

// settled reports a terminal task status (a task now passes through "queued"
// before "running", so polls wait for an actual outcome).
func settled(s string) bool {
	return s == "succeeded" || s == "failed" || s == "cancelled"
}

func pollStatus(t *testing.T, url string, done func(string) bool) TaskView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view TaskView
		if code := getJSON(t, url, &view); code != 200 {
			t.Fatalf("poll status %d", code)
		}
		if done(view.Status) {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("task stuck in %q", view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitPolicyValidation checks the 400 envelopes for malformed policy
// and fault specs.
func TestSubmitPolicyValidation(t *testing.T) {
	_, ts := testServer(t)
	neg := -1
	negMS := -5.0
	tooHot := 1.5
	cases := []struct {
		name     string
		mod      func(*TaskSubmission)
		wantCode string
	}{
		{"negative retries", func(s *TaskSubmission) {
			s.Policy = &PolicyJSON{MaxRetries: &neg}
		}, "bad_policy"},
		{"negative timeout", func(s *TaskSubmission) {
			s.Policy = &PolicyJSON{ActivityTimeoutMS: &negMS}
		}, "bad_policy"},
		{"negative backoff", func(s *TaskSubmission) {
			s.Policy = &PolicyJSON{BackoffBaseMS: &negMS}
		}, "bad_policy"},
		{"failure rate above 1", func(s *TaskSubmission) {
			s.Faults = &grid.FaultSpec{FailureRate: tooHot}
		}, "bad_faults"},
		{"unknown fault node", func(s *TaskSubmission) {
			s.Faults = &grid.FaultSpec{Nodes: []string{"ghost"}, FailureRate: 0.5}
		}, "bad_faults"},
	}
	for _, c := range cases {
		sub := forkSubmission("T-bad-" + c.name)
		c.mod(&sub)
		data, err := json.Marshal(sub)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/api/v1/tasks", "application/json", strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: not the JSON envelope: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if body.Error.Code != c.wantCode || body.Error.Message == "" || body.RequestID == "" {
			t.Errorf("%s: envelope = %+v, want code %q", c.name, body, c.wantCode)
		}
	}
}

// TestSubmitPolicyEcho submits with an explicit policy and checks the
// resolved echo — wire units are milliseconds, defaults filled in — both in
// the 202 body and in the task view afterwards.
func TestSubmitPolicyEcho(t *testing.T) {
	_, ts := testServer(t)
	five := 5
	base := 2000.0
	seed := int64(7)
	sub := forkSubmission("T-pol")
	sub.Policy = &PolicyJSON{MaxRetries: &five, BackoffBaseMS: &base, Seed: &seed}

	var accepted struct {
		ID     string     `json:"id"`
		Status string     `json:"status"`
		Policy policyView `json:"policy"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/tasks", sub, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if accepted.Policy.MaxRetries != 5 || accepted.Policy.BackoffBaseMS != 2000 || accepted.Policy.Seed != 7 {
		t.Errorf("echoed policy = %+v", accepted.Policy)
	}
	// The default cap (300 simulated seconds) is resolved and echoed in ms.
	if accepted.Policy.BackoffCapMS != 300000 {
		t.Errorf("backoffCapMS = %g, want 300000", accepted.Policy.BackoffCapMS)
	}

	view := pollStatus(t, ts.URL+"/api/v1/tasks/T-pol", settled)
	if view.Status != "succeeded" {
		t.Fatalf("task = %+v", view)
	}
	if view.Policy == nil || *view.Policy != accepted.Policy {
		t.Errorf("task view policy = %+v, want %+v", view.Policy, accepted.Policy)
	}
	if view.Retries != 0 || view.Faults != 0 {
		t.Errorf("healthy run reported retries=%d faults=%d", view.Retries, view.Faults)
	}
}

// TestSubmitWithFaultsReportsRetries injects full failure on one synthetic
// node through the submission body; the run completes on other providers and
// the task view carries the retry counters.
func TestSubmitWithFaultsReportsRetries(t *testing.T) {
	s, ts := testServer(t)
	victim := s.env.Grid.Nodes()[0].ID
	base := 100.0
	sub := forkSubmission("T-faulty")
	sub.Faults = &grid.FaultSpec{Seed: 9, Nodes: []string{victim}, FailureRate: 1}
	sub.Policy = &PolicyJSON{BackoffBaseMS: &base}
	if code := postJSON(t, ts.URL+"/api/v1/tasks", sub, nil); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	view := pollStatus(t, ts.URL+"/api/v1/tasks/T-faulty", settled)
	if view.Status != "succeeded" {
		t.Fatalf("task = %+v", view)
	}
	if spec := s.env.Grid.Faults(); spec == nil || spec.Nodes[0] != victim {
		t.Errorf("fault spec not installed: %+v", spec)
	}
	// The doomed node may or may not be picked by matchmaking; when it is,
	// the counters must surface in the view.
	if view.Failures > 0 && view.Retries == 0 {
		t.Errorf("failures=%d but no retries in view: %+v", view.Failures, view)
	}
}

// TestTaskCancelEndpoint drives DELETE /api/v1/tasks/{id} through its full
// lifecycle: 404 for ghosts, 202 while running, "cancelled" once the
// enactment unwinds, then 409 on a second attempt.
func TestTaskCancelEndpoint(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.PostProcess = func(act *workflow.Activity, produced []*workflow.DataItem, visit int) {
			once.Do(func() {
				close(started)
				<-release
			})
		}
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/tasks/ghost", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE ghost = %d, want 404", resp.StatusCode)
	}

	if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission("T-cxl"), nil); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("task never reached the first activity")
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/tasks/T-cxl", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack["status"] != "cancelling" {
		t.Fatalf("DELETE running task = %d %v", resp.StatusCode, ack)
	}
	close(release)

	view := pollStatus(t, ts.URL+"/api/v1/tasks/T-cxl", settled)
	if view.Status != "cancelled" {
		t.Fatalf("post-cancel view = %+v", view)
	}

	// Cancelling a finished task conflicts.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/tasks/T-cxl", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || body.Error.Code != "task_finished" {
		t.Fatalf("DELETE finished task = %d %+v", resp.StatusCode, body)
	}
}

// TestMonitorEndpoints reads the cluster summary and a single node's health
// record over HTTP.
func TestMonitorEndpoints(t *testing.T) {
	s, ts := testServer(t)
	var cluster services.ClusterHealthReply
	if code := getJSON(t, ts.URL+"/api/v1/monitor", &cluster); code != 200 {
		t.Fatalf("monitor status %d", code)
	}
	nodes := s.env.Grid.Nodes()
	if len(cluster.Nodes) != len(nodes) || cluster.Up != len(nodes) {
		t.Fatalf("cluster = %+v, want all %d nodes up", cluster, len(nodes))
	}

	var health services.NodeHealth
	id := nodes[0].ID
	if code := getJSON(t, ts.URL+"/api/v1/nodes/"+id+"/health", &health); code != 200 {
		t.Fatalf("node health status %d", code)
	}
	if health.Node != id || !health.Known || !health.Up || health.Status != services.HealthHealthy {
		t.Fatalf("health = %+v", health)
	}

	var body errorBody
	if code := getJSON(t, ts.URL+"/api/v1/nodes/ghost/health", &body); code != http.StatusNotFound {
		t.Fatalf("ghost health status %d", code)
	}
	if body.Error.Code != "not_found" {
		t.Fatalf("ghost health envelope = %+v", body)
	}
}

// Satellite conformance sweep: every submission- and lifecycle-path failure
// must answer the uniform {"error":{"code","message"},"requestId"} envelope
// with the request id echoing the X-Request-Id response header. The
// GET-path failures (unknown routes, bad pagination) are covered by
// TestErrorEnvelope in httpapi_test.go; this file sweeps the stateful codes
// that need a primed engine: admission rejections, duplicates, and the
// finished/evicted lifecycle conflicts.
package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workflow"
)

// postRaw posts a raw JSON body and returns the response plus decoded
// envelope (zero-valued when the response is a success).
func postRaw(t *testing.T, url, body string) (*http.Response, errorBody) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envl errorBody
	if resp.StatusCode >= 400 {
		if err := json.NewDecoder(resp.Body).Decode(&envl); err != nil {
			t.Fatalf("POST %s: %d body is not the JSON envelope: %v", url, resp.StatusCode, err)
		}
	}
	return resp, envl
}

func marshalSubmission(t *testing.T, sub TaskSubmission) string {
	t.Helper()
	data, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSubmitErrorEnvelopeConformance runs the admission failure modes in one
// ordered table against a gated single-worker server. Order matters: the
// tenant quota and rate rejections must fire while the global queue still
// has room (Submit checks global capacity first), and the global queue_full
// case runs last once the queue is packed.
func TestSubmitErrorEnvelopeConformance(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	var startOnce, gateOnce sync.Once
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.QueueCapacity = 3
		opts.Tenants = map[string]engine.TenantConfig{
			"quota":   {MaxQueued: 1},
			"limited": {RatePerSec: 0.001, Burst: 1},
		}
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			startOnce.Do(func() { close(started) })
			<-gate
		}
	})
	t.Cleanup(func() { gateOnce.Do(func() { close(gate) }) })
	url := ts.URL + "/api/v1/tasks"

	// Occupy the single worker so later submissions stay queued.
	if code := postJSON(t, url, forkSubmission("ENV-blk"), nil); code != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}

	tenantSub := func(id, tenant string) string {
		sub := forkSubmission(id)
		sub.Tenant = tenant
		return marshalSubmission(t, sub)
	}
	withPDL := func(id, pdl string) string {
		sub := forkSubmission(id)
		sub.PDL = pdl
		return marshalSubmission(t, sub)
	}
	withPriority := func(id, prio string) string {
		sub := forkSubmission(id)
		sub.Priority = prio
		return marshalSubmission(t, sub)
	}

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed json", `{"id": "ENV-x", `, http.StatusBadRequest, "bad_request"},
		{"missing id and goal", `{"name": "nameless"}`, http.StatusBadRequest, "bad_request"},
		{"unparseable pdl", withPDL("ENV-pdl", "BEGIN, POD(D1 ->"), http.StatusBadRequest, "bad_pdl"},
		{"unknown priority", withPriority("ENV-prio", "urgent"), http.StatusBadRequest, "bad_priority"},
		{"duplicate of running task", marshalSubmission(t, forkSubmission("ENV-blk")), http.StatusConflict, "duplicate_task"},
		{"quota tenant first", tenantSub("ENV-q1", "quota"), http.StatusAccepted, ""},
		{"quota tenant over MaxQueued", tenantSub("ENV-q2", "quota"), http.StatusTooManyRequests, "tenant_queue_full"},
		{"limited tenant first", tenantSub("ENV-r1", "limited"), http.StatusAccepted, ""},
		{"limited tenant over rate", tenantSub("ENV-r2", "limited"), http.StatusTooManyRequests, "tenant_rate_limited"},
		{"filler fills global queue", marshalSubmission(t, forkSubmission("ENV-fill")), http.StatusAccepted, ""},
		{"global queue full", marshalSubmission(t, forkSubmission("ENV-over")), http.StatusTooManyRequests, "queue_full"},
	}
	for _, c := range cases {
		resp, envl := postRaw(t, url, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Fatalf("%s: status %d, want %d (envelope %+v)", c.name, resp.StatusCode, c.wantStatus, envl)
		}
		if c.wantCode == "" {
			continue
		}
		if envl.Error.Code != c.wantCode {
			t.Errorf("%s: code %q, want %q", c.name, envl.Error.Code, c.wantCode)
		}
		if envl.Error.Message == "" {
			t.Errorf("%s: empty error message", c.name)
		}
		if envl.RequestID == "" || envl.RequestID != resp.Header.Get("X-Request-Id") {
			t.Errorf("%s: requestId %q vs header %q", c.name, envl.RequestID, resp.Header.Get("X-Request-Id"))
		}
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", c.name)
		}
	}
}

// TestLifecycleErrorEnvelopes covers the terminal-state conflicts: cancelling
// a finished task answers 409 task_finished, and once retention evicts the
// record the task reads back as 404 task_evicted rather than a generic
// not_found.
func TestLifecycleErrorEnvelopes(t *testing.T) {
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.RetainFinished = 1
	})

	if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission("LC-1"), nil); code != http.StatusAccepted {
		t.Fatalf("submit LC-1 status %d", code)
	}
	pollStatus(t, ts.URL+"/api/v1/tasks/LC-1", settled)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/tasks/LC-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envl errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envl); err != nil {
		t.Fatalf("cancel-finished body is not the envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || envl.Error.Code != "task_finished" {
		t.Fatalf("cancel finished = %d %+v, want 409 task_finished", resp.StatusCode, envl)
	}
	if envl.RequestID == "" || envl.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("cancel finished: requestId %q vs header %q", envl.RequestID, resp.Header.Get("X-Request-Id"))
	}

	// A second completion pushes LC-1 out of the size-1 retention window.
	if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission("LC-2"), nil); code != http.StatusAccepted {
		t.Fatalf("submit LC-2 status %d", code)
	}
	pollStatus(t, ts.URL+"/api/v1/tasks/LC-2", settled)

	envl = errorBody{}
	code := getJSON(t, ts.URL+"/api/v1/tasks/LC-1", &envl)
	if code != http.StatusNotFound || envl.Error.Code != "task_evicted" {
		t.Fatalf("evicted read = %d %+v, want 404 task_evicted", code, envl)
	}
	if envl.Error.Message == "" || envl.RequestID == "" {
		t.Fatalf("evicted envelope incomplete: %+v", envl)
	}
}

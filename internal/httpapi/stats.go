package httpapi

// GET /api/v1/stats is the grid-wide rollup a dashboard polls: cluster
// health counts, engine queue/worker state, enactment outcome totals and
// rates derived from the telemetry counters, and the event-bus publication
// counters — one request instead of stitching /monitor, /queue, and
// /metrics together client-side.

import (
	"fmt"
	"net/http"

	"repro/internal/coordination"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/services"
	"repro/internal/store"
)

// StatsView is the GET /api/v1/stats response.
type StatsView struct {
	Nodes   statsNodes           `json:"nodes"`
	Engine  engine.Stats         `json:"engine"`
	Planner planner.ServiceStats `json:"planner"`
	Tasks   statsTasks           `json:"tasks"`
	Events  statsEvents          `json:"events"`
	Store   StoreView            `json:"store"`
}

// statsNodes summarizes cluster health (monitoring's authoritative view).
type statsNodes struct {
	Total       int `json:"total"`
	Up          int `json:"up"`
	Down        int `json:"down"`
	Degraded    int `json:"degraded"`
	Quarantined int `json:"quarantined"`
}

// statsTasks aggregates enactment outcomes from the telemetry counters.
// SuccessRate is completed/(completed+failed), 0 when nothing finished yet.
type statsTasks struct {
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	Cancelled   int64   `json:"cancelled"`
	Retries     int64   `json:"retries"`
	Replans     int64   `json:"replans"`
	SuccessRate float64 `json:"successRate"`
}

// statsEvents reports the event bus counters.
type statsEvents struct {
	Published int64 `json:"published"`
	Dropped   int64 `json:"dropped"`
}

// StoreView is the GET /api/v1/store response (also the "store" block of
// /api/v1/stats): the backend's own snapshot — kind, key/record counts,
// segment footprint, group-commit counters, compactions — plus the two
// derived depths a dashboard wants without walking keys itself: how many
// task journals and checkpoint histories the backend currently holds.
type StoreView struct {
	store.Stats
	// JournalDepth is the number of task journals (journal/* keys) live in
	// the backend; Checkpoints counts tasks with a checkpoint history.
	JournalDepth int `json:"journalDepth"`
	Checkpoints  int `json:"checkpoints"`
}

func (s *Server) storeView() StoreView {
	backend := s.env.Store
	return StoreView{
		Stats:        backend.Stats(),
		JournalDepth: len(backend.Keys(engine.JournalPrefix)),
		Checkpoints:  len(backend.Keys(coordination.CheckpointKey(""))),
	}
}

// handleStore serves the storage backend snapshot.
func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.storeView())
}

// handleStats serves this node's rollup, or — with ?scope=cluster on a
// clustered environment — the scatter-gathered cluster-wide view.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.clusterScope(r) {
		s.handleStatsCluster(w, r)
		return
	}
	out, err := s.buildStats()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// buildStats assembles this node's own StatsView.
func (s *Server) buildStats() (StatsView, error) {
	client, err := s.clientContext()
	if err != nil {
		return StatsView{}, err
	}
	reply, err := client.Call(services.MonitoringName, services.OntMonitoring,
		services.ClusterHealthRequest{}, services.CallTimeout)
	if err != nil {
		return StatsView{}, err
	}
	ch, ok := reply.Content.(services.ClusterHealthReply)
	if !ok {
		return StatsView{}, fmt.Errorf("unexpected monitoring reply %T", reply.Content)
	}

	snap := s.telemetry().Snapshot()
	out := StatsView{
		Nodes: statsNodes{
			Total:       len(ch.Nodes),
			Up:          ch.Up,
			Down:        ch.Down,
			Degraded:    ch.Degraded,
			Quarantined: ch.Quarantined,
		},
		Engine:  s.env.Engine.Stats(),
		Planner: s.env.Planner.Stats(),
		Tasks: statsTasks{
			Completed: snap.Counters["engine.tasks.completed"],
			Failed:    snap.Counters["engine.tasks.failed"],
			Cancelled: snap.Counters["engine.tasks.cancelled"],
			Retries:   snap.Counters["coordination.retries"],
			Replans:   snap.Counters["coordination.replans"],
		},
		Events: statsEvents{
			Published: snap.Counters["telemetry.events.published"],
			Dropped:   snap.Counters["telemetry.events.dropped"],
		},
		Store: s.storeView(),
	}
	if finished := out.Tasks.Completed + out.Tasks.Failed; finished > 0 {
		out.Tasks.SuccessRate = float64(out.Tasks.Completed) / float64(finished)
	}
	return out, nil
}

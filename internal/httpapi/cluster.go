package httpapi

// The HTTP face of the multi-node cluster (internal/cluster). When the
// environment carries a cluster.Node, this server is one member of a
// logical environment spanning N gridenv processes:
//
//   - task and plan requests whose consistent-hash owner is another node
//     are transparently forwarded there over the same /api/v1 surface —
//     the client sees one environment regardless of which node it talks
//     to. Request IDs, tenant headers, and the error envelope ride along
//     unchanged; the response gains an X-Gridenv-Owner header naming the
//     node that actually handled it.
//   - GET /api/v1/cluster exposes membership, ring version, per-node
//     health, and this node's forwarding counters.
//   - GET /api/v1/stats?scope=cluster and /api/v1/tenants?scope=cluster
//     scatter-gather across alive peers with a per-peer timeout and mark
//     the result partial when a peer leg fails.
//
// Forwarding is one hop at most: a forwarded request carries
// X-Gridenv-Forwarded and is always handled locally by the receiver, so
// transiently divergent liveness views degrade to answering from the
// wrong node instead of ping-ponging.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/engine"
)

const (
	// tenantHeader carries the requester's tenant on reads (GET/DELETE
	// have no body); cluster routing keys on it, so a client that submits
	// with a tenant must poll with the same X-Tenant header.
	tenantHeader = "X-Tenant"
	// forwardedHeader marks a request as already forwarded once (the value
	// is the forwarding node's ID); receivers always handle it locally.
	forwardedHeader = "X-Gridenv-Forwarded"
	// ownerHeader names the node that actually handled the request.
	ownerHeader = "X-Gridenv-Owner"
)

// forwardedResponseHeaders are copied from the owner's response onto the
// forwarded one, so envelopes (Location, Retry-After, the X-RateLimit-*
// trio) are identical no matter which node the client talked to.
var forwardedResponseHeaders = []string{
	"Content-Type", "Location", "Retry-After", "Link", "Allow",
	"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset",
}

// requestTenant reads the tenant a read-path request acts for.
func requestTenant(r *http.Request) string { return r.Header.Get(tenantHeader) }

// maybeForward forwards the request to the owning peer when this node does
// not own tenant+id; it reports true when the request was fully handled
// (response written). body is the already-read request body (nil for
// bodyless methods).
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, tenant, id string, body []byte) bool {
	n := s.env.Cluster
	if n == nil || id == "" || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	peer, self := n.Owner(tenant, id)
	if self {
		return false
	}
	s.forwardToPeer(w, r, peer, id, body)
	return true
}

// forwardToPeer relays the request to the peer and copies the response —
// status, envelope headers, body — back verbatim. The X-Request-Id this
// node already stamped is forwarded, and the peer's middleware adopts it,
// so the envelope's requestId matches the header the client sees here.
//
// A forwarded submit (POST with a task ID) additionally opens a "forward"
// span on this node's trace segment for the task and injects its W3C
// traceparent into the forwarded request: the owner's root span parents
// under it, making the two-node trace joinable by trace ID.
func (s *Server) forwardToPeer(w http.ResponseWriter, r *http.Request, peer cluster.Peer, id string, body []byte) {
	n := s.env.Cluster
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		peer.Addr+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		n.NoteForward(err)
		s.writeError(w, r, http.StatusInternalServerError, "internal", "building forward request: %v", err)
		return
	}
	req.Header.Set(forwardedHeader, n.Self().ID)
	req.Header.Set(requestIDHeader, w.Header().Get(requestIDHeader))
	for _, h := range []string{"Content-Type", "Accept", tenantHeader, traceparentHeader} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	endForward := nopForwardEnd
	if r.Method == http.MethodPost && id != "" {
		// Only submits get a span: polling forwards would spam the trace.
		var attrs map[string]string
		if rid := w.Header().Get(requestIDHeader); rid != "" {
			attrs = map[string]string{"request.id": rid}
		}
		sc, end := s.telemetry().TaskTrace(id).StartRoot("forward", peer.ID, r.Header.Get(traceparentHeader), attrs)
		if sc.Valid() {
			req.Header.Set(traceparentHeader, sc.Traceparent())
		}
		endForward = end
	}
	resp, err := n.ForwardClient().Do(req)
	n.NoteForward(err)
	if err != nil {
		endForward("peer unreachable: " + err.Error())
		s.writeError(w, r, http.StatusBadGateway, "peer_unreachable",
			"forwarding to owner %s: %v", peer.ID, err)
		return
	}
	endForward(fmt.Sprintf("owner %s answered %d", peer.ID, resp.StatusCode))
	defer resp.Body.Close()
	h := w.Header()
	for _, name := range forwardedResponseHeaders {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set(ownerHeader, peer.ID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// clusterView is the GET /api/v1/cluster body.
type clusterView struct {
	Enabled bool `json:"enabled"`
	cluster.Status
}

// handleCluster serves this node's cluster view; single-node deployments
// answer {"enabled": false} so probes need no special-casing.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	n := s.env.Cluster
	if n == nil {
		writeJSON(w, http.StatusOK, clusterView{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, clusterView{Enabled: true, Status: n.Status()})
}

// --- scatter-gather aggregation ---------------------------------------------

// clusterScope reports whether the request asks for the cluster-wide view
// (?scope=cluster) on an environment that is actually clustered.
func (s *Server) clusterScope(r *http.Request) bool {
	return s.env.Cluster != nil && r.URL.Query().Get("scope") == "cluster"
}

// peerLeg is one peer's slot in a scatter-gather response: ok with its
// payload, or failed with the error that makes the aggregate partial.
type peerLeg struct {
	Node  string `json:"node"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// gather fans a GET out to every alive peer with the per-peer timeout and
// decodes each body into the value build(node) returns. The self leg is
// not fetched — callers fold their local view in directly.
func (s *Server) gather(path string, decode func(node string, status int, body []byte) error) []peerLeg {
	n := s.env.Cluster
	peers := n.AlivePeers()
	legs := make([]peerLeg, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p cluster.Peer) {
			defer wg.Done()
			legs[i] = peerLeg{Node: p.ID}
			ctx, cancel := context.WithTimeout(context.Background(), n.PeerTimeout())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.Addr+path, nil)
			if err != nil {
				legs[i].Error = err.Error()
				return
			}
			req.Header.Set(forwardedHeader, n.Self().ID)
			resp, err := n.ForwardClient().Do(req)
			if err != nil {
				legs[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err == nil {
				err = decode(p.ID, resp.StatusCode, body)
			}
			if err != nil {
				legs[i].Error = err.Error()
				return
			}
			legs[i].OK = true
		}(i, p)
	}
	wg.Wait()
	return legs
}

// partial reports whether any leg failed.
func partial(legs []peerLeg) bool {
	for _, l := range legs {
		if !l.OK {
			return true
		}
	}
	return false
}

// ClusterStatsView is GET /api/v1/stats?scope=cluster: per-node stats plus
// cluster-wide totals. Partial marks an aggregate missing at least one
// peer's numbers (that peer's leg carries the error).
type ClusterStatsView struct {
	Scope   string               `json:"scope"`
	Partial bool                 `json:"partial"`
	Peers   []peerLeg            `json:"peers"`
	Nodes   map[string]StatsView `json:"nodes"`
	Totals  ClusterTotals        `json:"totals"`
}

// ClusterTotals sums the numeric core of every reachable node's stats.
type ClusterTotals struct {
	GridNodes  statsNodes `json:"gridNodes"`
	QueueDepth int        `json:"queueDepth"`
	Running    int        `json:"running"`
	Workers    int        `json:"workers"`
	Accepted   int64      `json:"accepted"`
	Rejected   int64      `json:"rejected"`
	Tasks      statsTasks `json:"tasks"`
}

// handleStatsCluster scatter-gathers /api/v1/stats across the cluster.
func (s *Server) handleStatsCluster(w http.ResponseWriter, r *http.Request) {
	local, err := s.buildStats()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	var mu sync.Mutex
	byNode := map[string]StatsView{s.env.Cluster.Self().ID: local}
	legs := s.gather("/api/v1/stats", func(node string, status int, body []byte) error {
		if status != http.StatusOK {
			return fmt.Errorf("peer answered %d", status)
		}
		var sv StatsView
		if err := json.Unmarshal(body, &sv); err != nil {
			return err
		}
		mu.Lock()
		byNode[node] = sv
		mu.Unlock()
		return nil
	})
	out := ClusterStatsView{Scope: "cluster", Partial: partial(legs), Peers: legs, Nodes: byNode}
	for _, sv := range byNode {
		out.Totals.GridNodes.Total += sv.Nodes.Total
		out.Totals.GridNodes.Up += sv.Nodes.Up
		out.Totals.GridNodes.Down += sv.Nodes.Down
		out.Totals.GridNodes.Degraded += sv.Nodes.Degraded
		out.Totals.GridNodes.Quarantined += sv.Nodes.Quarantined
		out.Totals.QueueDepth += sv.Engine.Depth
		out.Totals.Running += sv.Engine.Running
		out.Totals.Workers += sv.Engine.Workers
		out.Totals.Accepted += sv.Engine.Accepted
		out.Totals.Rejected += sv.Engine.Rejected
		out.Totals.Tasks.Completed += sv.Tasks.Completed
		out.Totals.Tasks.Failed += sv.Tasks.Failed
		out.Totals.Tasks.Cancelled += sv.Tasks.Cancelled
		out.Totals.Tasks.Retries += sv.Tasks.Retries
		out.Totals.Tasks.Replans += sv.Tasks.Replans
	}
	if finished := out.Totals.Tasks.Completed + out.Totals.Tasks.Failed; finished > 0 {
		out.Totals.Tasks.SuccessRate = float64(out.Totals.Tasks.Completed) / float64(finished)
	}
	writeJSON(w, http.StatusOK, out)
}

// ClusterTenantsView is GET /api/v1/tenants?scope=cluster: every tenant's
// accounting summed across reachable nodes (a tenant's tasks live on
// whichever nodes own them, so only the cluster-wide sum is meaningful).
type ClusterTenantsView struct {
	Scope   string                `json:"scope"`
	Partial bool                  `json:"partial"`
	Peers   []peerLeg             `json:"peers"`
	Items   []engine.TenantStatus `json:"items"`
	Total   int                   `json:"total"`
}

// handleTenantsCluster scatter-gathers /api/v1/tenants across the cluster,
// merging per-tenant rows by summing counters and depths. Config fields
// (weight, quotas) come from whichever node lists the tenant first — they
// are deployment-wide settings, identical across nodes in a well-formed
// cluster. Mean latencies are averaged weighted by each node's sample
// share of the merged accepted count.
func (s *Server) handleTenantsCluster(w http.ResponseWriter, r *http.Request) {
	merged := map[string]*engine.TenantStatus{}
	weights := map[string]int64{} // accepted-weighted latency accumulators
	waitSum := map[string]float64{}
	runSum := map[string]float64{}
	var mu sync.Mutex
	fold := func(rows []engine.TenantStatus) {
		mu.Lock()
		defer mu.Unlock()
		for _, row := range rows {
			t := merged[row.Tenant]
			if t == nil {
				c := row
				merged[row.Tenant] = &c
				weights[row.Tenant] = row.Accepted
				waitSum[row.Tenant] = row.MeanWaitSec * float64(row.Accepted)
				runSum[row.Tenant] = row.MeanRunSec * float64(row.Accepted)
				continue
			}
			t.Queued += row.Queued
			t.Running += row.Running
			t.Accepted += row.Accepted
			t.RejectedQueueFull += row.RejectedQueueFull
			t.RejectedRateLimited += row.RejectedRateLimited
			t.Completed += row.Completed
			t.Failed += row.Failed
			t.Cancelled += row.Cancelled
			t.SpentCost += row.SpentCost
			weights[row.Tenant] += row.Accepted
			waitSum[row.Tenant] += row.MeanWaitSec * float64(row.Accepted)
			runSum[row.Tenant] += row.MeanRunSec * float64(row.Accepted)
		}
	}
	fold(s.env.Engine.Tenants())
	legs := s.gather("/api/v1/tenants", func(node string, status int, body []byte) error {
		if status != http.StatusOK {
			return fmt.Errorf("peer answered %d", status)
		}
		var pg struct {
			Items []engine.TenantStatus `json:"items"`
		}
		if err := json.Unmarshal(body, &pg); err != nil {
			return err
		}
		fold(pg.Items)
		return nil
	})
	out := ClusterTenantsView{Scope: "cluster", Partial: partial(legs), Peers: legs}
	for name, t := range merged {
		if n := weights[name]; n > 0 {
			t.MeanWaitSec = waitSum[name] / float64(n)
			t.MeanRunSec = runSum[name] / float64(n)
		}
		out.Items = append(out.Items, *t)
	}
	sort.Slice(out.Items, func(i, j int) bool { return out.Items[i].Tenant < out.Items[j].Tenant })
	out.Total = len(out.Items)
	writeJSON(w, http.StatusOK, out)
}

package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	return testServerWith(t, nil)
}

// testServerWith is testServer with an environment-options hook applied
// before the environment is built; the fault-tolerance tests use it to
// install blocking post-process hooks.
func testServerWith(t *testing.T, mod func(*core.Options)) (*Server, *httptest.Server) {
	t.Helper()
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	opts := core.Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
	}
	if mod != nil {
		mod(&opts)
	}
	env, err := core.NewEnvironment(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	s := New(env)
	s.Logger = nil
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

// nodesPage decodes the paginated nodes listing.
type nodesPage struct {
	Items  []nodeView `json:"items"`
	Total  int        `json:"total"`
	Limit  int        `json:"limit"`
	Offset int        `json:"offset"`
}

// tasksPage decodes the paginated task listing.
type tasksPage struct {
	Items  []TaskView `json:"items"`
	Total  int        `json:"total"`
	Limit  int        `json:"limit"`
	Offset int        `json:"offset"`
}

func TestGridViews(t *testing.T) {
	_, ts := testServer(t)
	var nodes nodesPage
	if code := getJSON(t, ts.URL+"/api/v1/nodes", &nodes); code != 200 {
		t.Fatalf("nodes status %d", code)
	}
	if len(nodes.Items) == 0 || nodes.Total != len(nodes.Items) {
		t.Fatalf("nodes page = %+v", nodes)
	}
	if !nodes.Items[0].Up || nodes.Items[0].Speed <= 0 {
		t.Errorf("node view = %+v", nodes.Items[0])
	}
	var containers []containerView
	if code := getJSON(t, ts.URL+"/api/v1/containers", &containers); code != 200 || len(containers) == 0 {
		t.Fatalf("containers status %d len %d", code, len(containers))
	}
	var svcs []serviceView
	if code := getJSON(t, ts.URL+"/api/v1/services", &svcs); code != 200 || len(svcs) != 4 {
		t.Fatalf("services status %d len %d", code, len(svcs))
	}
	var classes []any
	if code := getJSON(t, ts.URL+"/api/v1/classes", &classes); code != 200 || len(classes) == 0 {
		t.Fatalf("classes status %d len %d", code, len(classes))
	}
}

// TestRouteTable drives every simple GET route through the v1 surface and
// checks the former /api alias of each answers 410.
func TestRouteTable(t *testing.T) {
	_, ts := testServer(t)
	paths := []string{"/nodes", "/containers", "/services", "/classes", "/tasks", "/plans", "/archive", "/metrics", "/store", "/stats"}
	for _, p := range paths {
		resp, err := http.Get(ts.URL + "/api/v1" + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET /api/v1%s = %d", p, resp.StatusCode)
		}
		if rid := resp.Header.Get("X-Request-Id"); rid == "" {
			t.Errorf("GET /api/v1%s: no X-Request-Id", p)
		}
		if dep := resp.Header.Get("Deprecation"); dep != "" {
			t.Errorf("GET /api/v1%s: v1 wrongly marked deprecated", p)
		}

		resp, err = http.Get(ts.URL + "/api" + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Errorf("GET /api%s = %d, want 410", p, resp.StatusCode)
		}
	}
}

// TestErrorEnvelope checks the uniform error body on every failure shape,
// including the JSON 404/405 fallbacks the stdlib mux would answer in plain
// text.
func TestErrorEnvelope(t *testing.T) {
	_, ts := testServer(t)
	do := func(method, path string) (*http.Response, errorBody) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: body is not the JSON envelope: %v", method, path, err)
		}
		return resp, body
	}
	cases := []struct {
		name, method, path string
		wantStatus         int
		wantCode           string
	}{
		{"unknown path", http.MethodGet, "/nope", http.StatusNotFound, "not_found"},
		{"unknown api path", http.MethodGet, "/api/v1/nope", http.StatusNotFound, "not_found"},
		{"bare version root", http.MethodGet, "/api/v1", http.StatusNotFound, "not_found"},
		{"wrong method", http.MethodDelete, "/api/v1/tasks", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"removed alias", http.MethodPut, "/api/nodes", http.StatusGone, "gone"},
		{"ghost task", http.MethodGet, "/api/v1/tasks/ghost", http.StatusNotFound, "not_found"},
		{"ghost trace", http.MethodGet, "/api/v1/tasks/ghost/trace", http.StatusNotFound, "not_found"},
		{"ghost plan", http.MethodGet, "/api/v1/plans/ghost", http.StatusNotFound, "plan_not_found"},
		{"ghost archive", http.MethodGet, "/api/v1/archive/ghost", http.StatusNotFound, "not_found"},
		{"bad limit", http.MethodGet, "/api/v1/nodes?limit=x", http.StatusBadRequest, "bad_request"},
		{"negative offset", http.MethodGet, "/api/v1/tasks?offset=-1", http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		resp, body := do(c.method, c.path)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.wantStatus)
		}
		if body.Error.Code != c.wantCode {
			t.Errorf("%s: code %q, want %q", c.name, body.Error.Code, c.wantCode)
		}
		if body.Error.Message == "" {
			t.Errorf("%s: empty message", c.name)
		}
		if body.RequestID == "" || body.RequestID != resp.Header.Get("X-Request-Id") {
			t.Errorf("%s: requestId %q vs header %q", c.name, body.RequestID, resp.Header.Get("X-Request-Id"))
		}
	}
	// 405 carries the allowed methods.
	resp, _ := do(http.MethodDelete, "/api/v1/tasks")
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Errorf("Allow = %q, want \"GET, POST\"", allow)
	}
}

// TestPagination exercises limit/offset on both paginated listings,
// including the edge cases. Five real submissions pile up behind a single
// worker whose post-process hook blocks, so the listing is deterministic:
// one running task and four queued ones, in admission order.
func TestPagination(t *testing.T) {
	unblock := make(chan struct{})
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) { <-unblock }
	})
	// LIFO cleanup: release the worker before the server and environment
	// close, or Engine.Close would wait on the blocked enactment forever.
	t.Cleanup(func() { close(unblock) })
	for _, id := range []string{"T-a", "T-b", "T-c", "T-d", "T-e"} {
		if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission(id), nil); code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", id, code)
		}
	}

	var p tasksPage
	if code := getJSON(t, ts.URL+"/api/v1/tasks", &p); code != 200 {
		t.Fatalf("tasks status %d", code)
	}
	if p.Total != 5 || len(p.Items) != 5 || p.Limit != -1 || p.Offset != 0 {
		t.Fatalf("default page = %+v", p)
	}
	// Stable submission order, not map order.
	for i, want := range []string{"T-a", "T-b", "T-c", "T-d", "T-e"} {
		if p.Items[i].ID != want {
			t.Errorf("item %d = %s, want %s", i, p.Items[i].ID, want)
		}
	}

	cases := []struct {
		query     string
		wantIDs   []string
		wantTotal int
	}{
		{"?limit=2", []string{"T-a", "T-b"}, 5},
		{"?limit=2&offset=2", []string{"T-c", "T-d"}, 5},
		{"?limit=0", []string{}, 5},   // explicit empty page
		{"?offset=99", []string{}, 5}, // offset past the end
		{"?limit=99&offset=4", []string{"T-e"}, 5},
	}
	for _, c := range cases {
		var got tasksPage
		if code := getJSON(t, ts.URL+"/api/v1/tasks"+c.query, &got); code != 200 {
			t.Fatalf("%s: status %d", c.query, code)
		}
		if got.Total != c.wantTotal || len(got.Items) != len(c.wantIDs) {
			t.Errorf("%s: page = %+v", c.query, got)
			continue
		}
		for i, want := range c.wantIDs {
			if got.Items[i].ID != want {
				t.Errorf("%s: item %d = %s, want %s", c.query, i, got.Items[i].ID, want)
			}
		}
	}

	// Nodes pagination slices the same way.
	var all nodesPage
	getJSON(t, ts.URL+"/api/v1/nodes", &all)
	var sliced nodesPage
	getJSON(t, ts.URL+"/api/v1/nodes?limit=1&offset=1", &sliced)
	if len(sliced.Items) != 1 || sliced.Total != all.Total || sliced.Items[0].ID != all.Items[1].ID {
		t.Errorf("nodes slice = %+v (all = %+v)", sliced, all)
	}
}

func TestSubmitAndPollTask(t *testing.T) {
	_, ts := testServer(t)
	sub := TaskSubmission{
		ID:   "T-http",
		Name: "virolab over http",
		PDL: `BEGIN,
  POD(D1, D7 -> D8);
  P3DR1 = P3DR(D2, D7, D8 -> D9);
  {ITERATIVE {COND D12.value > 8}
    {POR(D5, D7, D8, D9 -> D8);
     {FORK
       {P3DR2 = P3DR(D3, D7, D8 -> D10)}
       {P3DR3 = P3DR(D4, D7, D8 -> D11)}
       {P3DR4 = P3DR(D2, D7, D8 -> D9)}
     JOIN};
     PSF(D10, D11 -> D12)}
  },
END`,
		Goal: []string{virolab.GoalCondition},
	}
	for _, d := range virolab.InitialData() {
		item := DataItemJSON{Name: d.Name, Classification: d.Classification()}
		sub.InitialData = append(sub.InitialData, item)
	}
	var accepted map[string]any
	if code := postJSON(t, ts.URL+"/api/v1/tasks", sub, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, accepted)
	}
	if accepted["policy"] == nil {
		t.Fatalf("202 body missing resolved policy: %v", accepted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var view TaskView
	for {
		if code := getJSON(t, ts.URL+"/api/v1/tasks/T-http", &view); code != 200 {
			t.Fatalf("poll status %d", code)
		}
		if view.Status != "queued" && view.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != "succeeded" || !view.Completed {
		t.Fatalf("task view = %+v", view)
	}
	if view.Executed != 17 {
		t.Errorf("executed = %d, want 17", view.Executed)
	}
	if view.Submitted.IsZero() {
		t.Error("no submission time")
	}
	found := false
	for _, line := range view.FinalData {
		if strings.HasPrefix(line, "D12{") && strings.Contains(line, "value=7.8") {
			found = true
		}
	}
	if !found {
		t.Errorf("final data missing refined D12: %v", view.FinalData)
	}

	// The list view includes it.
	var list tasksPage
	getJSON(t, ts.URL+"/api/v1/tasks", &list)
	if list.Total != 1 || len(list.Items) != 1 || list.Items[0].ID != "T-http" {
		t.Errorf("list = %+v", list)
	}
	// Duplicate submission conflicts.
	if code := postJSON(t, ts.URL+"/api/v1/tasks", sub, nil); code != http.StatusConflict {
		t.Errorf("duplicate submit status %d", code)
	}
}

// TestQueueBackpressure drives a burst larger than the queue capacity
// through POST /api/v1/tasks: the overflow submission gets 429 queue_full
// with a Retry-After header and the engine.admission.rejected counter moves,
// while every accepted task still completes once the worker unblocks.
func TestQueueBackpressure(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	var startOnce, gateOnce sync.Once
	open := func() { gateOnce.Do(func() { close(gate) }) }
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.QueueCapacity = 2
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			startOnce.Do(func() { close(started) })
			<-gate
		}
	})
	t.Cleanup(open)

	// The blocker occupies the single worker; wait until it actually runs so
	// it no longer counts against queue capacity.
	if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission("T-blk"), nil); code != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}
	for i, id := range []string{"T-q1", "T-q2"} {
		var accepted struct {
			Status        string `json:"status"`
			QueuePosition int    `json:"queuePosition"`
		}
		if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission(id), &accepted); code != http.StatusAccepted {
			t.Fatalf("submit %s status %d", id, code)
		}
		if accepted.Status != "queued" || accepted.QueuePosition != i+1 {
			t.Errorf("submission %s = %+v", id, accepted)
		}
	}

	// The queue is full: the next submission is rejected with Retry-After.
	data, _ := json.Marshal(forkSubmission("T-over"))
	resp, err := http.Post(ts.URL+"/api/v1/tasks", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || body.Error.Code != "queue_full" {
		t.Fatalf("overflow submit = %d %+v, want 429 queue_full", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	var snap telemetry.Snapshot
	getJSON(t, ts.URL+"/api/v1/metrics", &snap)
	if snap.Counters["engine.admission.rejected"] != 1 {
		t.Errorf("rejected counter = %d, want 1", snap.Counters["engine.admission.rejected"])
	}
	var stats struct {
		Capacity int `json:"capacity"`
		Depth    int `json:"depth"`
		Workers  int `json:"workers"`
		Busy     int `json:"busy"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/queue", &stats); code != 200 {
		t.Fatalf("queue status %d", code)
	}
	if stats.Capacity != 2 || stats.Depth != 2 || stats.Workers != 1 || stats.Busy != 1 {
		t.Errorf("queue stats = %+v", stats)
	}

	open()
	for _, id := range []string{"T-blk", "T-q1", "T-q2"} {
		if view := pollStatus(t, ts.URL+"/api/v1/tasks/"+id, settled); view.Status != "succeeded" {
			t.Errorf("task %s = %+v", id, view)
		}
	}
	// The rejected task left no record.
	if code := getJSON(t, ts.URL+"/api/v1/tasks/T-over", nil); code != http.StatusNotFound {
		t.Errorf("rejected task lookup status %d", code)
	}
}

// TestRetentionEvictedOverHTTP bounds finished-task retention through the
// API: once newer tasks displace an old record, its ID answers 404 with the
// task_evicted error code.
func TestRetentionEvictedOverHTTP(t *testing.T) {
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.RetainFinished = 1
	})
	for _, id := range []string{"T-old", "T-new"} {
		if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission(id), nil); code != http.StatusAccepted {
			t.Fatalf("submit %s status %d", id, code)
		}
	}
	// Single worker, admission order: T-new finishing means T-old finished
	// earlier and was evicted by the K=1 retention bound.
	if view := pollStatus(t, ts.URL+"/api/v1/tasks/T-new", settled); view.Status != "succeeded" {
		t.Fatalf("T-new = %+v", view)
	}
	var body errorBody
	if code := getJSON(t, ts.URL+"/api/v1/tasks/T-old", &body); code != http.StatusNotFound {
		t.Fatalf("evicted task status %d, want 404", code)
	}
	if body.Error.Code != "task_evicted" {
		t.Errorf("evicted task code = %q, want task_evicted", body.Error.Code)
	}
}

// TestMetricsAndTrace runs a workflow through the API and then checks that
// the telemetry surface reports it: nonzero enactment/scheduling/http
// counters and an ordered span log.
func TestMetricsAndTrace(t *testing.T) {
	_, ts := testServer(t)
	sub := TaskSubmission{
		ID:   "T-obs",
		Name: "observed",
		// The FORK makes a concurrent batch, so the coordinator consults the
		// scheduling service and the scheduling counters move too.
		PDL: `BEGIN,
  POD(D1, D7 -> D8);
  {FORK
    {P3DR(D2, D7, D8 -> D9)}
    {P3DR(D3, D7, D8 -> D10)}
  JOIN},
END`,
		Goal: []string{`G.Classification = "3D Model"`},
	}
	for _, d := range virolab.InitialData() {
		sub.InitialData = append(sub.InitialData, DataItemJSON{Name: d.Name, Classification: d.Classification()})
	}
	if code := postJSON(t, ts.URL+"/api/v1/tasks", sub, nil); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view TaskView
		getJSON(t, ts.URL+"/api/v1/tasks/T-obs", &view)
		if view.Status == "succeeded" {
			break
		}
		if view.Status == "failed" || time.Now().After(deadline) {
			t.Fatalf("task did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var snap telemetry.Snapshot
	if code := getJSON(t, ts.URL+"/api/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, name := range []string{
		"coordination.activities.fired",
		"coordination.activities.executed",
		"coordination.tasks.completed",
		"matchmaking.requests",
		"scheduling.requests",
		"scheduling.tasks.assigned",
		"http.requests.total",
		"http.responses.2xx",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if h := snap.Histograms["http.request.seconds"]; h.Count <= 0 {
		t.Errorf("http latency histogram = %+v", h)
	}

	var trace traceView
	if code := getJSON(t, ts.URL+"/api/v1/tasks/T-obs/trace", &trace); code != 200 {
		t.Fatalf("trace status %d", code)
	}
	if trace.TaskID != "T-obs" || len(trace.Spans) == 0 {
		t.Fatalf("trace = %+v", trace)
	}
	lastSeq := uint64(0)
	kinds := map[string]int{}
	for _, s := range trace.Spans {
		if s.Seq <= lastSeq {
			t.Fatalf("spans out of order: %d after %d", s.Seq, lastSeq)
		}
		lastSeq = s.Seq
		kinds[s.Kind]++
	}
	for _, k := range []string{"fire", "invoke", "dispatch", "complete", "schedule"} {
		if kinds[k] == 0 {
			t.Errorf("trace missing %q spans; kinds = %v", k, kinds)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no id", TaskSubmission{Goal: []string{"true"}}, http.StatusBadRequest},
		{"no goal", TaskSubmission{ID: "x"}, http.StatusBadRequest},
		{"bad pdl", TaskSubmission{ID: "x", Goal: []string{"true"}, PDL: "NOT PDL"}, http.StatusBadRequest},
		{"bad json", "}{", http.StatusBadRequest},
	}
	for _, c := range cases {
		var code int
		if s, ok := c.body.(string); ok {
			resp, err := http.Post(ts.URL+"/api/v1/tasks", "application/json", strings.NewReader(s))
			if err != nil {
				t.Fatal(err)
			}
			code = resp.StatusCode
			resp.Body.Close()
		} else {
			code = postJSON(t, ts.URL+"/api/v1/tasks", c.body, nil)
		}
		if code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	if code := getJSON(t, ts.URL+"/api/v1/tasks/ghost", nil); code != http.StatusNotFound {
		t.Errorf("ghost task status %d", code)
	}
}

func TestArchiveEndpoint(t *testing.T) {
	s, ts := testServer(t)
	// Plan through the environment, then fetch the archived plan over HTTP.
	if _, _, err := s.env.Plan("http-plan", virolab.Problem()); err != nil {
		t.Fatal(err)
	}
	var names []string
	if code := getJSON(t, ts.URL+"/api/v1/archive", &names); code != 200 || len(names) != 1 {
		t.Fatalf("archive status %d names %v", code, names)
	}
	var plan map[string]any
	if code := getJSON(t, ts.URL+"/api/v1/archive/http-plan", &plan); code != 200 {
		t.Fatalf("archived plan status %d", code)
	}
	if !strings.Contains(plan["pdl"].(string), "BEGIN") {
		t.Errorf("archived plan body = %v", plan)
	}
	if code := getJSON(t, ts.URL+"/api/v1/archive/ghost", nil); code != http.StatusNotFound {
		t.Errorf("ghost archived plan status %d", code)
	}
}

func TestOntologyEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var kb map[string]any
	if code := getJSON(t, ts.URL+"/api/v1/ontology/grid", &kb); code != 200 {
		t.Fatalf("ontology status %d", code)
	}
	classes, ok := kb["classes"].([]any)
	if !ok || len(classes) != 10 {
		t.Errorf("ontology classes = %d", len(classes))
	}
	if code := getJSON(t, ts.URL+"/api/v1/ontology/ghost", nil); code == 200 {
		t.Error("ghost ontology served")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req := services.SimulateRequest{
		Tasks: []services.TaskSpec{
			{ID: "a", Service: "P3DR", BaseTime: 1800, DataMB: 100},
			{ID: "b", Service: "P3DR", BaseTime: 1800, DataMB: 100},
		},
		InterArrival: 5, Retries: 1, Seed: 1,
	}
	var reply services.SimulateReply
	if code := postJSON(t, ts.URL+"/api/v1/simulate", req, &reply); code != 200 {
		t.Fatalf("simulate status %d", code)
	}
	if reply.Completed+reply.Failed != 2 || reply.Makespan <= 0 {
		t.Errorf("reply = %+v", reply)
	}
	resp, err := http.Post(ts.URL+"/api/v1/simulate", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad simulate body status %d", resp.StatusCode)
	}
}

package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/services"
	"repro/internal/virolab"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	env, err := core.NewEnvironment(core.Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	s := New(env)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func TestGridViews(t *testing.T) {
	_, ts := testServer(t)
	var nodes []nodeView
	if code := getJSON(t, ts.URL+"/api/nodes", &nodes); code != 200 {
		t.Fatalf("nodes status %d", code)
	}
	if len(nodes) == 0 {
		t.Fatal("no nodes")
	}
	if !nodes[0].Up || nodes[0].Speed <= 0 {
		t.Errorf("node view = %+v", nodes[0])
	}
	var containers []containerView
	if code := getJSON(t, ts.URL+"/api/containers", &containers); code != 200 || len(containers) == 0 {
		t.Fatalf("containers status %d len %d", code, len(containers))
	}
	var svcs []serviceView
	if code := getJSON(t, ts.URL+"/api/services", &svcs); code != 200 || len(svcs) != 4 {
		t.Fatalf("services status %d len %d", code, len(svcs))
	}
	var classes []any
	if code := getJSON(t, ts.URL+"/api/classes", &classes); code != 200 || len(classes) == 0 {
		t.Fatalf("classes status %d len %d", code, len(classes))
	}
}

func TestSubmitAndPollTask(t *testing.T) {
	_, ts := testServer(t)
	sub := TaskSubmission{
		ID:   "T-http",
		Name: "virolab over http",
		PDL: `BEGIN,
  POD(D1, D7 -> D8);
  P3DR1 = P3DR(D2, D7, D8 -> D9);
  {ITERATIVE {COND D12.value > 8}
    {POR(D5, D7, D8, D9 -> D8);
     {FORK
       {P3DR2 = P3DR(D3, D7, D8 -> D10)}
       {P3DR3 = P3DR(D4, D7, D8 -> D11)}
       {P3DR4 = P3DR(D2, D7, D8 -> D9)}
     JOIN};
     PSF(D10, D11 -> D12)}
  },
END`,
		Goal: []string{virolab.GoalCondition},
	}
	for _, d := range virolab.InitialData() {
		item := DataItemJSON{Name: d.Name, Classification: d.Classification()}
		sub.InitialData = append(sub.InitialData, item)
	}
	var accepted map[string]string
	if code := postJSON(t, ts.URL+"/api/tasks", sub, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, accepted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var view TaskView
	for {
		if code := getJSON(t, ts.URL+"/api/tasks/T-http", &view); code != 200 {
			t.Fatalf("poll status %d", code)
		}
		if view.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != "completed" || !view.Completed {
		t.Fatalf("task view = %+v", view)
	}
	if view.Executed != 17 {
		t.Errorf("executed = %d, want 17", view.Executed)
	}
	found := false
	for _, line := range view.FinalData {
		if strings.HasPrefix(line, "D12{") && strings.Contains(line, "value=7.8") {
			found = true
		}
	}
	if !found {
		t.Errorf("final data missing refined D12: %v", view.FinalData)
	}

	// The list view includes it.
	var list []TaskView
	getJSON(t, ts.URL+"/api/tasks", &list)
	if len(list) != 1 || list[0].ID != "T-http" {
		t.Errorf("list = %+v", list)
	}
	// Duplicate submission conflicts.
	if code := postJSON(t, ts.URL+"/api/tasks", sub, nil); code != http.StatusConflict {
		t.Errorf("duplicate submit status %d", code)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no id", TaskSubmission{Goal: []string{"true"}}, http.StatusBadRequest},
		{"no goal", TaskSubmission{ID: "x"}, http.StatusBadRequest},
		{"bad pdl", TaskSubmission{ID: "x", Goal: []string{"true"}, PDL: "NOT PDL"}, http.StatusBadRequest},
		{"bad json", "}{", http.StatusBadRequest},
	}
	for _, c := range cases {
		var code int
		if s, ok := c.body.(string); ok {
			resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(s))
			if err != nil {
				t.Fatal(err)
			}
			code = resp.StatusCode
			resp.Body.Close()
		} else {
			code = postJSON(t, ts.URL+"/api/tasks", c.body, nil)
		}
		if code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	if code := getJSON(t, ts.URL+"/api/tasks/ghost", nil); code != http.StatusNotFound {
		t.Errorf("ghost task status %d", code)
	}
}

func TestPlansEndpoint(t *testing.T) {
	s, ts := testServer(t)
	// Plan through the environment, then fetch over HTTP.
	if _, _, err := s.env.Plan("http-plan", virolab.Problem()); err != nil {
		t.Fatal(err)
	}
	var names []string
	if code := getJSON(t, ts.URL+"/api/plans", &names); code != 200 || len(names) != 1 {
		t.Fatalf("plans status %d names %v", code, names)
	}
	var plan map[string]any
	if code := getJSON(t, ts.URL+"/api/plans/http-plan", &plan); code != 200 {
		t.Fatalf("plan status %d", code)
	}
	if !strings.Contains(plan["pdl"].(string), "BEGIN") {
		t.Errorf("plan body = %v", plan)
	}
	if code := getJSON(t, ts.URL+"/api/plans/ghost", nil); code != http.StatusNotFound {
		t.Errorf("ghost plan status %d", code)
	}
}

func TestOntologyEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var kb map[string]any
	if code := getJSON(t, ts.URL+"/api/ontology/grid", &kb); code != 200 {
		t.Fatalf("ontology status %d", code)
	}
	classes, ok := kb["classes"].([]any)
	if !ok || len(classes) != 10 {
		t.Errorf("ontology classes = %d", len(classes))
	}
	if code := getJSON(t, ts.URL+"/api/ontology/ghost", nil); code == 200 {
		t.Error("ghost ontology served")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req := services.SimulateRequest{
		Tasks: []services.TaskSpec{
			{ID: "a", Service: "P3DR", BaseTime: 1800, DataMB: 100},
			{ID: "b", Service: "P3DR", BaseTime: 1800, DataMB: 100},
		},
		InterArrival: 5, Retries: 1, Seed: 1,
	}
	var reply services.SimulateReply
	if code := postJSON(t, ts.URL+"/api/simulate", req, &reply); code != 200 {
		t.Fatalf("simulate status %d", code)
	}
	if reply.Completed+reply.Failed != 2 || reply.Makespan <= 0 {
		t.Errorf("reply = %+v", reply)
	}
	resp, err := http.Post(ts.URL+"/api/simulate", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad simulate body status %d", resp.StatusCode)
	}
}

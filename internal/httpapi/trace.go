package httpapi

// GET /api/v1/tasks/{id}/trace: the hierarchical task trace.
//
//   - Default scope serves this node's segment (on a clustered deployment
//     the request is forwarded to the task's owner, whose segment holds the
//     lifecycle spans; the forwarding node keeps only its "forward" span).
//   - ?scope=cluster scatter-gathers every node's segment and merges them
//     into one tree keyed by span parentage — a forwarded submit or a
//     plan-spawned task comes back as a single trace across processes.
//   - ?format=otlp renders either scope as OTLP/JSON (one resourceSpans
//     entry per node) for external tooling; point events become OTLP span
//     events on their parent span.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// traceparentHeader is the W3C trace-context header propagated on submits
// and cluster forwards.
const traceparentHeader = "traceparent"

// nopForwardEnd keeps the forward path free of nil checks when no span was
// opened for the hop.
var nopForwardEnd = func(string) float64 { return 0 }

// traceView is the single-node GET /api/v1/tasks/{id}/trace response.
type traceView struct {
	TaskID  string           `json:"taskId"`
	TraceID string           `json:"traceId,omitempty"`
	Spans   []telemetry.Span `json:"spans"`
	Dropped uint64           `json:"dropped"`
}

// clusterSpan is one span tagged with the node whose segment recorded it.
type clusterSpan struct {
	telemetry.Span
	Node string `json:"node"`
}

// traceTreeNode is one node of the assembled trace tree.
type traceTreeNode struct {
	Span     telemetry.Span   `json:"span"`
	Node     string           `json:"node"`
	Children []*traceTreeNode `json:"children,omitempty"`
}

// clusterTraceView is the ?scope=cluster response: every node's spans plus
// the merged tree.
type clusterTraceView struct {
	Scope   string           `json:"scope"`
	Partial bool             `json:"partial"`
	Peers   []peerLeg        `json:"peers"`
	TaskID  string           `json:"taskId"`
	TraceID string           `json:"traceId,omitempty"`
	Spans   []clusterSpan    `json:"spans"`
	Tree    []*traceTreeNode `json:"tree"`
	Dropped uint64           `json:"dropped"`
}

func (s *Server) handleTaskTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.clusterScope(r) {
		s.handleTaskTraceCluster(w, r, id)
		return
	}
	if s.maybeForward(w, r, requestTenant(r), id, nil) {
		return
	}
	tr := s.telemetry().LookupTrace(id)
	if tr == nil {
		// No local segment: fall back to the engine for the 404 flavor. A
		// forwarding node may hold a trace segment for a task its engine
		// never saw, which is why the trace lookup comes first.
		if _, err := s.env.Engine.Task(id); err != nil {
			if errors.Is(err, engine.ErrEvicted) {
				s.writeError(w, r, http.StatusNotFound, "task_evicted", "task %q finished and its record was evicted", id)
				return
			}
			s.writeError(w, r, http.StatusNotFound, "not_found", "no task %q", id)
			return
		}
	}
	var (
		spans   = []telemetry.Span{}
		traceID string
		dropped uint64
	)
	if tr != nil {
		if got := tr.Spans(); got != nil {
			spans = got
		}
		traceID = tr.Context().TraceID
		dropped = tr.Dropped()
	}
	if r.URL.Query().Get("format") == "otlp" {
		writeJSON(w, http.StatusOK, otlpExport(map[string][]telemetry.Span{s.nodeName(): spans}))
		return
	}
	writeJSON(w, http.StatusOK, traceView{
		TaskID: id, TraceID: traceID, Spans: spans, Dropped: dropped,
	})
}

// nodeName identifies this node in cluster-tagged and OTLP output.
func (s *Server) nodeName() string {
	if n := s.env.Cluster; n != nil {
		return n.Self().ID
	}
	return "gridenv"
}

// handleTaskTraceCluster assembles the distributed trace: this node's
// segment plus every alive peer's, merged into one tree by span parentage.
func (s *Server) handleTaskTraceCluster(w http.ResponseWriter, r *http.Request, id string) {
	var (
		mu      sync.Mutex
		spans   []clusterSpan
		dropped uint64
		traceID string
	)
	add := func(node string, view traceView) {
		mu.Lock()
		defer mu.Unlock()
		for _, sp := range view.Spans {
			spans = append(spans, clusterSpan{Span: sp, Node: node})
		}
		dropped += view.Dropped
		if traceID == "" {
			traceID = view.TraceID
		}
	}
	if tr := s.telemetry().LookupTrace(id); tr != nil {
		add(s.nodeName(), traceView{TraceID: tr.Context().TraceID, Spans: tr.Spans(), Dropped: tr.Dropped()})
	}
	legs := s.gather("/api/v1/tasks/"+url.PathEscape(id)+"/trace", func(node string, status int, body []byte) error {
		if status == http.StatusNotFound {
			return nil // no segment on that node: a valid empty answer
		}
		if status != http.StatusOK {
			return fmt.Errorf("peer answered %d", status)
		}
		var view traceView
		if err := json.Unmarshal(body, &view); err != nil {
			return err
		}
		add(node, view)
		return nil
	})
	if len(spans) == 0 {
		s.writeError(w, r, http.StatusNotFound, "not_found", "no trace for task %q on any reachable node", id)
		return
	}
	// The owner's root span carries the authoritative trace ID; a forwarding
	// node's segment shares it by propagation, so any non-empty one wins.
	if traceID == "" {
		for _, sp := range spans {
			if sp.TraceID != "" {
				traceID = sp.TraceID
				break
			}
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Time.Before(spans[j].Time) })
	if r.URL.Query().Get("format") == "otlp" {
		byNode := map[string][]telemetry.Span{}
		for _, sp := range spans {
			byNode[sp.Node] = append(byNode[sp.Node], sp.Span)
		}
		writeJSON(w, http.StatusOK, otlpExport(byNode))
		return
	}
	writeJSON(w, http.StatusOK, clusterTraceView{
		Scope: "cluster", Partial: partial(legs), Peers: legs,
		TaskID: id, TraceID: traceID, Spans: spans,
		Tree: assembleTree(spans), Dropped: dropped,
	})
}

// assembleTree links spans into trees by ParentID. Duration spans are the
// interior nodes (they own SpanIDs); point events and spans whose parent is
// not in the merged set (a remote parent, or one evicted from a ring)
// surface as roots so nothing is silently dropped — except point events
// whose parent IS present, which nest under it.
func assembleTree(spans []clusterSpan) []*traceTreeNode {
	nodes := make([]*traceTreeNode, len(spans))
	byID := map[string]*traceTreeNode{}
	for i, sp := range spans {
		nodes[i] = &traceTreeNode{Span: sp.Span, Node: sp.Node}
		if sp.SpanID != "" {
			byID[sp.SpanID] = nodes[i]
		}
	}
	var roots []*traceTreeNode
	for _, n := range nodes {
		if parent := byID[n.Span.ParentID]; parent != nil && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// otlpExport renders span segments as OTLP/JSON: one resourceSpans entry
// per node. Duration spans map to OTLP spans; point events map to events on
// their parent span when it is present in the same segment, and to
// zero-duration spans otherwise (write-at-end recording means a mid-run
// export can see events before their parent closes).
func otlpExport(byNode map[string][]telemetry.Span) map[string]any {
	nodes := make([]string, 0, len(byNode))
	for node := range byNode {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	var resourceSpans []map[string]any
	for _, node := range nodes {
		spans := byNode[node]
		present := map[string]bool{}
		for _, sp := range spans {
			if sp.SpanID != "" {
				present[sp.SpanID] = true
			}
		}
		events := map[string][]map[string]any{}
		var otlpSpans []map[string]any
		for _, sp := range spans {
			if sp.SpanID == "" && present[sp.ParentID] {
				events[sp.ParentID] = append(events[sp.ParentID], map[string]any{
					"timeUnixNano": strconv.FormatInt(sp.Time.UnixNano(), 10),
					"name":         sp.Kind,
					"attributes":   otlpSpanAttrs(sp),
				})
			}
		}
		for _, sp := range spans {
			if sp.SpanID == "" && present[sp.ParentID] {
				continue // exported as an event on its parent
			}
			start := sp.Time.UnixNano()
			end := sp.Time.Add(time.Duration(sp.DurationSec * 1e9)).UnixNano()
			spanID := sp.SpanID
			if spanID == "" {
				spanID = telemetry.NewSpanID() // orphan point event: synthesize
			}
			o := map[string]any{
				"traceId":           sp.TraceID,
				"spanId":            spanID,
				"name":              otlpName(sp),
				"kind":              1, // SPAN_KIND_INTERNAL
				"startTimeUnixNano": strconv.FormatInt(start, 10),
				"endTimeUnixNano":   strconv.FormatInt(end, 10),
				"attributes":        otlpSpanAttrs(sp),
			}
			if sp.ParentID != "" {
				o["parentSpanId"] = sp.ParentID
			}
			if evs := events[sp.SpanID]; len(evs) > 0 {
				o["events"] = evs
			}
			otlpSpans = append(otlpSpans, o)
		}
		resourceSpans = append(resourceSpans, map[string]any{
			"resource": map[string]any{
				"attributes": []map[string]any{
					otlpAttr("service.name", "gridenv"),
					otlpAttr("gridenv.node", node),
				},
			},
			"scopeSpans": []map[string]any{{
				"scope": map[string]any{"name": "gridenv/telemetry"},
				"spans": otlpSpans,
			}},
		})
	}
	return map[string]any{"resourceSpans": resourceSpans}
}

func otlpName(sp telemetry.Span) string {
	if sp.Name != "" {
		return sp.Kind + " " + sp.Name
	}
	return sp.Kind
}

func otlpAttr(key, value string) map[string]any {
	return map[string]any{"key": key, "value": map[string]any{"stringValue": value}}
}

func otlpSpanAttrs(sp telemetry.Span) []map[string]any {
	attrs := []map[string]any{}
	if sp.Detail != "" {
		attrs = append(attrs, otlpAttr("detail", sp.Detail))
	}
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		attrs = append(attrs, otlpAttr(k, sp.Attrs[k]))
	}
	return attrs
}

package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workflow"
)

// tenantsPage decodes the paginated tenants listing.
type tenantsPage struct {
	Items []engine.TenantStatus `json:"items"`
	Total int                   `json:"total"`
}

// TestTenantsEndpoints submits tasks under two tenants and checks the
// listing and single-tenant views carry the configuration and accounting.
func TestTenantsEndpoints(t *testing.T) {
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.Tenants = map[string]engine.TenantConfig{
			"alpha": {Weight: 3, MaxQueued: 16},
		}
	})

	for _, c := range []struct{ id, tenant string }{
		{"TT-a1", "alpha"}, {"TT-a2", "alpha"}, {"TT-b1", "beta"},
	} {
		sub := forkSubmission(c.id)
		sub.Tenant = c.tenant
		if code := postJSON(t, ts.URL+"/api/v1/tasks", sub, nil); code != http.StatusAccepted {
			t.Fatalf("submit %s status %d", c.id, code)
		}
	}
	for _, id := range []string{"TT-a1", "TT-a2", "TT-b1"} {
		pollStatus(t, ts.URL+"/api/v1/tasks/"+id, settled)
	}

	var page tenantsPage
	if code := getJSON(t, ts.URL+"/api/v1/tenants", &page); code != 200 {
		t.Fatalf("tenants listing status %d", code)
	}
	if page.Total != 2 || len(page.Items) != 2 {
		t.Fatalf("tenants page = %+v, want alpha and beta", page)
	}
	// Sorted by name: alpha then beta.
	if page.Items[0].Tenant != "alpha" || page.Items[1].Tenant != "beta" {
		t.Fatalf("tenant order = %s, %s", page.Items[0].Tenant, page.Items[1].Tenant)
	}
	alpha := page.Items[0]
	if alpha.Weight != 3 || alpha.MaxQueued != 16 || alpha.Accepted != 2 || alpha.Completed != 2 {
		t.Fatalf("alpha view = %+v", alpha)
	}
	if beta := page.Items[1]; beta.Weight != 1 || beta.Accepted != 1 {
		t.Fatalf("beta view = %+v", beta)
	}

	var one engine.TenantStatus
	if code := getJSON(t, ts.URL+"/api/v1/tenants/alpha", &one); code != 200 || one.Tenant != "alpha" {
		t.Fatalf("tenant get = %d %+v", code, one)
	}
	if one.MeanWaitSec < 0 || one.MeanRunSec <= 0 {
		t.Fatalf("alpha latency accounting = %+v", one)
	}
	var envl errorBody
	if code := getJSON(t, ts.URL+"/api/v1/tenants/ghost", &envl); code != http.StatusNotFound || envl.Error.Code != "not_found" {
		t.Fatalf("unknown tenant = %d %+v", code, envl)
	}
}

// TestTenant429Headers checks both tenant rejections answer 429 with
// Retry-After plus the X-RateLimit-Limit/-Remaining/-Reset trio describing
// the exhausted allowance.
func TestTenant429Headers(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	var startOnce, gateOnce sync.Once
	open := func() { gateOnce.Do(func() { close(gate) }) }
	_, ts := testServerWith(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Tenants = map[string]engine.TenantConfig{
			"quota":   {MaxQueued: 1},
			"limited": {RatePerSec: 0.001, Burst: 1},
		}
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			startOnce.Do(func() { close(started) })
			<-gate
		}
	})
	t.Cleanup(open)

	if code := postJSON(t, ts.URL+"/api/v1/tasks", forkSubmission("T429-blk"), nil); code != http.StatusAccepted {
		t.Fatalf("blocker submit status %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}

	post := func(id, tenant string) *http.Response {
		sub := forkSubmission(id)
		sub.Tenant = tenant
		data, _ := json.Marshal(sub)
		resp, err := http.Post(ts.URL+"/api/v1/tasks", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	trio := func(resp *http.Response) (limit, remaining, reset int) {
		t.Helper()
		for _, h := range []string{"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset", "Retry-After"} {
			if resp.Header.Get(h) == "" {
				t.Fatalf("missing %s header", h)
			}
		}
		limit, _ = strconv.Atoi(resp.Header.Get("X-RateLimit-Limit"))
		remaining, _ = strconv.Atoi(resp.Header.Get("X-RateLimit-Remaining"))
		reset, _ = strconv.Atoi(resp.Header.Get("X-RateLimit-Reset"))
		return limit, remaining, reset
	}

	if resp := post("T429-q1", "quota"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first quota submit status %d", resp.StatusCode)
	}
	resp := post("T429-q2", "quota")
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || body.Error.Code != "tenant_queue_full" {
		t.Fatalf("quota overflow = %d %+v, want 429 tenant_queue_full", resp.StatusCode, body)
	}
	if limit, remaining, reset := trio(resp); limit != 1 || remaining != 0 || reset < 1 {
		t.Fatalf("quota trio = %d/%d/%d, want 1/0/>=1", limit, remaining, reset)
	}

	if resp := post("T429-r1", "limited"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first limited submit status %d", resp.StatusCode)
	}
	resp = post("T429-r2", "limited")
	body = errorBody{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || body.Error.Code != "tenant_rate_limited" {
		t.Fatalf("rate overflow = %d %+v, want 429 tenant_rate_limited", resp.StatusCode, body)
	}
	if limit, remaining, reset := trio(resp); limit != 1 || remaining != 0 || reset < 1 {
		t.Fatalf("rate trio = %d/%d/%d, want 1/0/>=1", limit, remaining, reset)
	}
	if body.RequestID == "" || body.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("request id echo = %q vs header %q", body.RequestID, resp.Header.Get("X-Request-Id"))
	}
}

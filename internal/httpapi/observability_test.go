package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/virolab"
)

// submitObserved posts a small two-stage task (with a FORK so scheduling
// fires too) and returns its ID.
func submitObserved(t *testing.T, ts string, id string) string {
	t.Helper()
	sub := TaskSubmission{
		ID:   id,
		Name: "observed",
		PDL: `BEGIN,
  POD(D1, D7 -> D8);
  {FORK
    {P3DR(D2, D7, D8 -> D9)}
    {P3DR(D3, D7, D8 -> D10)}
  JOIN},
END`,
		Goal: []string{`G.Classification = "3D Model"`},
	}
	for _, d := range virolab.InitialData() {
		sub.InitialData = append(sub.InitialData, DataItemJSON{Name: d.Name, Classification: d.Classification()})
	}
	if code := postJSON(t, ts+"/api/v1/tasks", sub, nil); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	return id
}

// TestEventsSSELive opens the live event stream, then enacts a task, and
// asserts the stream delivers its queue, attempt, and complete spans as
// Server-Sent Events while the task runs.
func TestEventsSSELive(t *testing.T) {
	_, ts := testServer(t)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/events?task=T-sse", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The handler flushes its opening comment before any event can flow, so
	// once Do returned the subscription is live and nothing below is missed.
	submitObserved(t, ts.URL, "T-sse")

	want := map[string]bool{"queue": false, "attempt": false, "complete": false}
	got := []string{}
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		kind, ok := strings.CutPrefix(line, "event: ")
		if !ok {
			continue
		}
		got = append(got, kind)
		if _, tracked := want[kind]; tracked {
			want[kind] = true
		}
		done := true
		for _, seen := range want {
			done = done && seen
		}
		if done {
			return
		}
	}
	t.Fatalf("stream ended before all span kinds arrived: want queue/attempt/complete, got %v (scan err %v, ctx err %v)",
		got, scanner.Err(), ctx.Err())
}

// TestEventsSSEKindFilter asserts the kind filter drops everything else.
func TestEventsSSEKindFilter(t *testing.T) {
	_, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/api/v1/events?task=T-ssef&kind=complete", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	submitObserved(t, ts.URL, "T-ssef")
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		kind, ok := strings.CutPrefix(scanner.Text(), "event: ")
		if !ok {
			continue
		}
		if kind != "complete" {
			t.Fatalf("kind filter leaked event %q", kind)
		}
		return // first matching event proves delivery; leak check above proves filtering
	}
	t.Fatalf("no complete event arrived (scan err %v, ctx err %v)", scanner.Err(), ctx.Err())
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed exposition sample line.
type promSample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar string // OpenMetrics exemplar suffix, if any
}

var promExemplarRe = regexp.MustCompile(`^\{trace_id="[0-9a-f]{32}"\} [0-9.eE+-]+$`)

// parsePromLine splits `name{k="v",...} value [# {exemplar} value]`
// (labels and exemplar optional).
func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	if body, ex, ok := strings.Cut(line, " # "); ok {
		if !promExemplarRe.MatchString(ex) {
			t.Fatalf("malformed exemplar %q on %q", ex, line)
		}
		line, s.exemplar = body, ex
	}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("unbalanced braces: %q", line)
		}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) {
				t.Fatalf("bad label %q in %q", pair, line)
			}
			s.labels[k] = strings.Trim(v, `"`)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("no value on sample line %q", line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value on %q: %v", line, err)
	}
	s.value = v
	return s
}

// TestMetricsPrometheusFormat round-trips /api/v1/metrics?format=prometheus
// through a line-level parser: every metric has HELP and TYPE lines, names
// are legal, histogram buckets are cumulative and monotone with a +Inf
// bucket matching _count, and every instrument of the JSON snapshot appears.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := testServer(t)
	submitObserved(t, ts.URL, "T-prom")
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view TaskView
		getJSON(t, ts.URL+"/api/v1/tasks/T-prom", &view)
		if view.Status == "succeeded" || view.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("task stuck in %q", view.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var snap telemetry.Snapshot
	getJSON(t, ts.URL+"/api/v1/metrics", &snap)

	resp, err := http.Get(ts.URL + "/api/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Fatalf("content type %q", ct)
	}

	typeOf := map[string]string{} // metric name -> TYPE
	helped := map[string]bool{}   // metric name -> HELP seen
	samples := map[string][]promSample{}
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			helped[fields[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typeOf[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line %q", line)
		default:
			s := parsePromLine(t, line)
			base := s.name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if trimmed, ok := strings.CutSuffix(s.name, suffix); ok && typeOf[trimmed] == "histogram" {
					base = trimmed
				}
			}
			samples[base] = append(samples[base], s)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	for name, typ := range typeOf {
		if !promNameRe.MatchString(name) {
			t.Errorf("illegal metric name %q", name)
		}
		if !helped[name] {
			t.Errorf("metric %s has TYPE but no HELP", name)
		}
		if len(samples[name]) == 0 {
			t.Errorf("metric %s has no samples", name)
		}
		if typ != "histogram" {
			continue
		}
		// Cumulative, monotone buckets ending at +Inf == _count.
		var buckets []promSample
		var count float64
		hasCount := false
		for _, s := range samples[name] {
			switch s.name {
			case name + "_bucket":
				buckets = append(buckets, s)
			case name + "_count":
				count, hasCount = s.value, true
			}
		}
		if !hasCount || len(buckets) == 0 {
			t.Errorf("histogram %s missing _count or _bucket samples", name)
			continue
		}
		sort.Slice(buckets, func(i, j int) bool {
			return leValue(t, buckets[i].labels["le"]) < leValue(t, buckets[j].labels["le"])
		})
		prev := -1.0
		for _, b := range buckets {
			if b.value < prev {
				t.Errorf("histogram %s buckets not monotone: le=%s count %v < %v",
					name, b.labels["le"], b.value, prev)
			}
			prev = b.value
		}
		last := buckets[len(buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Errorf("histogram %s final bucket le=%q, want +Inf", name, last.labels["le"])
		}
		if last.value != count {
			t.Errorf("histogram %s +Inf bucket %v != count %v", name, last.value, count)
		}
	}

	// Every instrument of the JSON snapshot must appear, sanitized, with the
	// right TYPE.
	check := func(dotted, wantType string) {
		name := telemetry.PrometheusName(dotted)
		if typeOf[name] != wantType {
			t.Errorf("instrument %s: exposition has TYPE %q for %s, want %s",
				dotted, typeOf[name], name, wantType)
		}
	}
	for name := range snap.Counters {
		check(name, "counter")
	}
	for name := range snap.Gauges {
		check(name, "gauge")
	}
	for name := range snap.Histograms {
		check(name, "histogram")
	}
}

// leValue orders bucket bounds numerically with +Inf last.
func leValue(t *testing.T, le string) float64 {
	t.Helper()
	if le == "+Inf" {
		return float64(1 << 62)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", le, err)
	}
	return v
}

// TestMetricsBadFormat rejects unknown format values.
func TestMetricsBadFormat(t *testing.T) {
	_, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/api/v1/metrics?format=xml", nil); code != http.StatusBadRequest {
		t.Fatalf("format=xml status %d, want 400", code)
	}
}

// TestRemovedAliasConformance walks the complete route table and asserts
// every removed unversioned /api alias — each path pattern, with its real
// method and with a wrong one — answers 410, carries the "gone" error code
// in the envelope, and names its exact /api/v1 successor in the Link header.
// The v1 mount itself must carry no Link or Deprecation headers.
func TestRemovedAliasConformance(t *testing.T) {
	s, ts := testServer(t)
	fill := strings.NewReplacer("{id}", "x", "{name}", "x")
	seen := map[string]bool{}
	for _, rt := range s.routes() {
		path := fill.Replace(rt.path)
		for _, method := range []string{rt.method, http.MethodPatch} {
			key := method + " " + path
			if seen[key] {
				continue
			}
			seen[key] = true
			req, err := http.NewRequest(method, ts.URL+"/api"+path, strings.NewReader(""))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var body errorBody
			decodeErr := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusGone {
				t.Errorf("%s /api%s = %d, want 410", method, path, resp.StatusCode)
				continue
			}
			if decodeErr != nil {
				t.Errorf("%s /api%s: body is not the JSON envelope: %v", method, path, decodeErr)
				continue
			}
			if body.Error.Code != "gone" {
				t.Errorf("%s /api%s: code %q, want gone", method, path, body.Error.Code)
			}
			want := `</api/v1` + path + `>; rel="successor-version"`
			if got := resp.Header.Get("Link"); got != want {
				t.Errorf("%s /api%s: Link %q, want %q", method, path, got, want)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/api/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Deprecation"); got != "" {
		t.Errorf("versioned route has Deprecation header %q", got)
	}
	if got := resp.Header.Get("Link"); got != "" {
		t.Errorf("versioned route has Link header %q", got)
	}
}

// TestStatsEndpoint exercises the grid-wide rollup.
func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	submitObserved(t, ts.URL, "T-stats")
	deadline := time.Now().Add(30 * time.Second)
	for {
		var view TaskView
		getJSON(t, ts.URL+"/api/v1/tasks/T-stats", &view)
		if view.Status == "succeeded" {
			break
		}
		if view.Status == "failed" || time.Now().After(deadline) {
			t.Fatalf("task ended %q", view.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var stats StatsView
	if code := getJSON(t, ts.URL+"/api/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Nodes.Total == 0 || stats.Nodes.Up == 0 {
		t.Errorf("no nodes in rollup: %+v", stats.Nodes)
	}
	if stats.Engine.Workers == 0 || stats.Engine.Accepted == 0 {
		t.Errorf("engine rollup empty: %+v", stats.Engine)
	}
	if stats.Tasks.Completed == 0 {
		t.Errorf("completed task not counted: %+v", stats.Tasks)
	}
	if stats.Tasks.SuccessRate <= 0 || stats.Tasks.SuccessRate > 1 {
		t.Errorf("success rate %v out of range", stats.Tasks.SuccessRate)
	}
	if stats.Events.Published == 0 {
		t.Errorf("event bus published counter still zero")
	}
}

// TestProbes exercises /healthz and /readyz.
func TestProbes(t *testing.T) {
	s, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	s.env.Engine.Close()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after engine close status %d, want 503", code)
	}
}

// TestPprofGating asserts the profiling handlers are absent by default and
// present when EnablePprof is set.
func TestPprofGating(t *testing.T) {
	_, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: status %d", code)
	}

	// EnablePprof is consulted when Handler is built, so remount.
	s2, _ := testServer(t)
	s2.EnablePprof = true
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	resp, err := http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with opt-in: status %d", resp.StatusCode)
	}
}

package httpapi

// The asynchronous plan resource: POST /api/v1/plans submits a planning
// case to the environment's planner.Service and answers immediately with a
// plan handle (202 Accepted + Location), or — when the plan cache already
// holds the canonical case — with the finished plan (201 Created). The
// handle is polled via GET /api/v1/plans/{id} through the same
// queued|running|succeeded|failed|cancelled lifecycle tasks use, and
// DELETE cancels, mirroring DELETE /api/v1/tasks/{id}.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/expr"
	"repro/internal/planner"
	"repro/internal/workflow"
)

// PlanSubmission is the POST /api/v1/plans body.
type PlanSubmission struct {
	// ID names the plan; empty means the service assigns one.
	ID string `json:"id,omitempty"`
	// InitialData seeds the case, as in task submissions.
	InitialData []DataItemJSON `json:"initialData"`
	// Goal lists the case's goal conditions (required).
	Goal []string `json:"goal"`
	// Constraints are additional case constraints; they distinguish cache
	// entries (a different constraint set is a different case).
	Constraints []string `json:"constraints,omitempty"`
	// Excluded removes services from the planning catalog for this case.
	Excluded []string `json:"excluded,omitempty"`
	// NoCache bypasses the plan cache for this request.
	NoCache bool `json:"noCache,omitempty"`
}

// PlanView is the plan-resource wire shape.
type PlanView struct {
	ID          string     `json:"id"`
	Status      string     `json:"status"`
	Submitted   time.Time  `json:"submittedAt"`
	Started     *time.Time `json:"startedAt,omitempty"`
	Finished    *time.Time `json:"finishedAt,omitempty"`
	CacheHit    bool       `json:"cacheHit,omitempty"`
	Incremental bool       `json:"incremental,omitempty"`
	Error       string     `json:"error,omitempty"`

	PDL         string              `json:"pdl,omitempty"`
	Tree        string              `json:"tree,omitempty"`
	Eval        *planner.Evaluation `json:"eval,omitempty"`
	Evaluations int                 `json:"evaluations,omitempty"`
	Generations int                 `json:"generations,omitempty"`
	Excluded    []string            `json:"excluded,omitempty"`
}

func viewPlan(st planner.PlanStatus) PlanView {
	v := PlanView{
		ID:          st.ID,
		Status:      string(st.Status),
		Submitted:   st.Submitted,
		CacheHit:    st.CacheHit,
		Incremental: st.Incremental,
		Error:       st.Error,
		PDL:         st.PDL,
		Tree:        st.Tree,
		Evaluations: st.Evaluations,
		Generations: st.Generations,
		Excluded:    st.Excluded,
	}
	if !st.Started.IsZero() {
		t := st.Started
		v.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		v.Finished = &t
	}
	if st.Status == planner.StatusSucceeded {
		e := st.Eval
		v.Eval = &e
	}
	return v
}

// handlePlanSubmit creates a plan: 202 Accepted with a Location header
// while the plan computes, or 201 Created when the plan cache answered the
// canonical case synchronously.
func (s *Server) handlePlanSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "plan_invalid", "reading plan submission: %v", err)
		return
	}
	var sub PlanSubmission
	if err := json.Unmarshal(body, &sub); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "plan_invalid", "bad plan submission: %v", err)
		return
	}
	if len(sub.Goal) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "plan_invalid", "goal is required")
		return
	}
	if n := s.env.Cluster; n != nil && sub.ID == "" {
		// Service-assigned plan names are a per-node sequence; across a
		// cluster those collide, so the API layer names the plan first —
		// node-scoped, hence cluster-unique — and routes by that name.
		sub.ID = fmt.Sprintf("p-%s-%d", n.Self().ID, s.planSeq.Add(1))
		if body, err = json.Marshal(sub); err != nil {
			s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
	}
	if s.maybeForward(w, r, requestTenant(r), sub.ID, body) {
		return
	}
	items := make([]*workflow.DataItem, 0, len(sub.InitialData))
	for _, d := range sub.InitialData {
		item := workflow.NewDataItem(d.Name, d.Classification)
		for k, v := range d.Props {
			item.With(k, expr.Number(v))
		}
		for k, v := range d.TextProps {
			item.With(k, expr.String(v))
		}
		items = append(items, item)
	}
	st, err := s.env.Planner.Submit(r.Context(), planner.PlanSpec{
		ID:          sub.ID,
		Initial:     items,
		Goal:        sub.Goal,
		Constraints: sub.Constraints,
		Excluded:    sub.Excluded,
		NoCache:     sub.NoCache,
	})
	switch {
	case errors.Is(err, planner.ErrInvalidSpec):
		s.writeError(w, r, http.StatusBadRequest, "plan_invalid", "%v", err)
		return
	case errors.Is(err, planner.ErrDuplicatePlan):
		s.writeError(w, r, http.StatusConflict, "duplicate_plan", "plan %q already submitted", sub.ID)
		return
	case errors.Is(err, planner.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, http.StatusTooManyRequests, "queue_full", "%v", err)
		return
	case errors.Is(err, planner.ErrServiceClosed):
		s.writeError(w, r, http.StatusServiceUnavailable, "unavailable", "%v", err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/plans/"+st.ID)
	code := http.StatusAccepted
	if st.Status.Terminal() {
		code = http.StatusCreated
	}
	writeJSON(w, code, viewPlan(st))
}

// handlePlanList lists retained plans in submission order (paginated).
func (s *Server) handlePlanList(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	all := s.env.Planner.List()
	out := make([]PlanView, 0, len(all))
	for _, st := range all {
		out = append(out, viewPlan(st))
	}
	writeJSON(w, http.StatusOK, page{
		Items: paginate(out, limit, offset), Total: len(out), Limit: limit, Offset: offset,
	})
}

// handlePlanStatus serves one plan's status (and, once succeeded, the plan
// itself — warm handles answer straight from memory).
func (s *Server) handlePlanStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.maybeForward(w, r, requestTenant(r), id, nil) {
		return
	}
	st, err := s.env.Planner.Get(id)
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, "plan_not_found", "no plan %q", id)
		return
	}
	writeJSON(w, http.StatusOK, viewPlan(st))
}

// handlePlanCancel stops a plan. Queued plans cancel immediately (200);
// running ones are signalled and finish cancelling asynchronously (202);
// already-cancelled and finished plans answer 409 with plan_cancelled /
// plan_finished — the same shape DELETE /api/v1/tasks/{id} uses.
func (s *Server) handlePlanCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.maybeForward(w, r, requestTenant(r), id, nil) {
		return
	}
	st, err := s.env.Planner.Cancel(id)
	switch {
	case errors.Is(err, planner.ErrUnknownPlan):
		s.writeError(w, r, http.StatusNotFound, "plan_not_found", "no plan %q", id)
		return
	case errors.Is(err, planner.ErrPlanCancelled):
		s.writeError(w, r, http.StatusConflict, "plan_cancelled", "plan %q is already cancelled", id)
		return
	case errors.Is(err, planner.ErrPlanFinished):
		s.writeError(w, r, http.StatusConflict, "plan_finished", "plan %q already finished (%s)", id, st.Status)
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	code := http.StatusAccepted
	status := "cancelling"
	if st.Status.Terminal() {
		code = http.StatusOK
		status = string(st.Status)
	}
	writeJSON(w, code, map[string]string{"id": id, "status": status})
}

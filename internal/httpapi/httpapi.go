// Package httpapi is the User Interface of Figure 1: an HTTP/JSON facade
// over a core.Environment through which end users submit tasks, watch their
// progress, browse the grid and the service offerings, fetch ontologies,
// and run what-if simulations.
//
// Endpoints:
//
//	GET  /api/nodes                     grid nodes with live status
//	GET  /api/containers                application containers
//	GET  /api/services                  the end-user service catalog
//	GET  /api/classes                   resource equivalence classes
//	POST /api/tasks                     submit a task (async); returns its ID
//	GET  /api/tasks                     list submitted tasks
//	GET  /api/tasks/{id}                task status / final report
//	GET  /api/plans                     archived plan names
//	GET  /api/plans/{name}              latest archived revision (PDL text)
//	GET  /api/ontology/{name}           knowledge base JSON
//	POST /api/simulate                  run the simulation service
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/agent"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/pdl"
	"repro/internal/services"
	"repro/internal/workflow"
)

// Server wraps an environment. Create with New, mount via Handler.
type Server struct {
	env *core.Environment

	mu     sync.Mutex
	tasks  map[string]*taskRecord
	client *agent.Context // the UI's own agent, registered lazily
}

type taskRecord struct {
	ID     string
	Status string // "running", "completed", "failed"
	Error  string
	Report *coordination.Report
}

// New builds a server over the environment.
func New(env *core.Environment) *Server {
	return &Server{env: env, tasks: make(map[string]*taskRecord)}
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/nodes", s.handleNodes)
	mux.HandleFunc("GET /api/containers", s.handleContainers)
	mux.HandleFunc("GET /api/services", s.handleServices)
	mux.HandleFunc("GET /api/classes", s.handleClasses)
	mux.HandleFunc("POST /api/tasks", s.handleSubmit)
	mux.HandleFunc("GET /api/tasks", s.handleTaskList)
	mux.HandleFunc("GET /api/tasks/{id}", s.handleTaskGet)
	mux.HandleFunc("GET /api/plans", s.handlePlans)
	mux.HandleFunc("GET /api/plans/{name}", s.handlePlanGet)
	mux.HandleFunc("GET /api/ontology/{name}", s.handleOntology)
	mux.HandleFunc("POST /api/simulate", s.handleSimulate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- read-only grid views --------------------------------------------------

type nodeView struct {
	ID       string   `json:"id"`
	Domain   string   `json:"domain"`
	Type     string   `json:"type"`
	Speed    float64  `json:"speed"`
	Cost     float64  `json:"costPerSec"`
	Up       bool     `json:"up"`
	Software []string `json:"software,omitempty"`
}

func (s *Server) handleNodes(w http.ResponseWriter, _ *http.Request) {
	var out []nodeView
	for _, n := range s.env.Grid.Nodes() {
		var sw []string
		for _, pkg := range n.Software {
			sw = append(sw, pkg.Name)
		}
		out = append(out, nodeView{
			ID: n.ID, Domain: n.Domain, Type: n.Hardware.Type,
			Speed: n.Hardware.Speed, Cost: n.CostPerSec, Up: n.Up(), Software: sw,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type containerView struct {
	ID       string   `json:"id"`
	Node     string   `json:"node"`
	Services []string `json:"services"`
}

func (s *Server) handleContainers(w http.ResponseWriter, _ *http.Request) {
	var out []containerView
	for _, c := range s.env.Grid.Containers() {
		out = append(out, containerView{ID: c.ID, Node: c.NodeID, Services: c.Services})
	}
	writeJSON(w, http.StatusOK, out)
}

type serviceView struct {
	Name     string   `json:"name"`
	Inputs   []string `json:"inputs"`
	Outputs  []string `json:"outputs"`
	BaseTime float64  `json:"baseTime"`
	Cost     float64  `json:"cost"`
}

func (s *Server) handleServices(w http.ResponseWriter, _ *http.Request) {
	var out []serviceView
	for _, svc := range s.env.Catalog.Services() {
		v := serviceView{Name: svc.Name, BaseTime: svc.BaseTime, Cost: svc.Cost}
		for _, in := range svc.Inputs {
			v.Inputs = append(v.Inputs, in.Condition)
		}
		for _, o := range svc.Outputs {
			v.Outputs = append(v.Outputs, o.Name)
		}
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleClasses(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.env.Grid.EquivalenceClasses())
}

// --- task submission ---------------------------------------------------------

// TaskSubmission is the POST /api/tasks body.
type TaskSubmission struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// PDL is the process description text; empty means NeedPlanning.
	PDL string `json:"pdl,omitempty"`
	// InitialData seeds the case (property map values are strings or
	// numbers).
	InitialData []DataItemJSON `json:"initialData"`
	// Goal lists the case's goal conditions.
	Goal []string `json:"goal"`
	// Deadline is a soft wall-clock deadline in simulated seconds (0 = none).
	Deadline float64 `json:"deadline,omitempty"`
}

// DataItemJSON is one initial data item.
type DataItemJSON struct {
	Name           string             `json:"name"`
	Classification string             `json:"classification"`
	Props          map[string]float64 `json:"props,omitempty"`
	TextProps      map[string]string  `json:"textProps,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub TaskSubmission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeErr(w, http.StatusBadRequest, "bad submission: %v", err)
		return
	}
	if sub.ID == "" || len(sub.Goal) == 0 {
		writeErr(w, http.StatusBadRequest, "id and goal are required")
		return
	}
	caseDesc := workflow.NewCase(sub.ID, sub.Name)
	for _, d := range sub.InitialData {
		item := workflow.NewDataItem(d.Name, d.Classification)
		for k, v := range d.Props {
			item.With(k, expr.Number(v))
		}
		for k, v := range d.TextProps {
			item.With(k, expr.String(v))
		}
		caseDesc.AddData(item)
	}
	caseDesc.Goal = workflow.NewGoal(sub.Goal...)
	caseDesc.Deadline = sub.Deadline
	task := &workflow.Task{ID: sub.ID, Name: sub.Name, Case: caseDesc}
	if sub.PDL == "" {
		task.NeedPlanning = true
	} else {
		p, err := pdl.ParseProcess(sub.ID, sub.PDL)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad PDL: %v", err)
			return
		}
		task.Process = p
	}
	if err := task.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid task: %v", err)
		return
	}

	s.mu.Lock()
	if _, dup := s.tasks[sub.ID]; dup {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "task %q already submitted", sub.ID)
		return
	}
	rec := &taskRecord{ID: sub.ID, Status: "running"}
	s.tasks[sub.ID] = rec
	s.mu.Unlock()

	go func() {
		report, err := s.env.Submit(task)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			rec.Status = "failed"
			rec.Error = err.Error()
			rec.Report = report
			return
		}
		rec.Status = "completed"
		rec.Report = report
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": sub.ID, "status": "running"})
}

// TaskView is the GET /api/tasks/{id} response.
type TaskView struct {
	ID          string   `json:"id"`
	Status      string   `json:"status"`
	Error       string   `json:"error,omitempty"`
	Completed   bool     `json:"completed,omitempty"`
	GoalFitness float64  `json:"goalFitness,omitempty"`
	Executed    int      `json:"executed,omitempty"`
	Failures    int      `json:"failures,omitempty"`
	Replans     int      `json:"replans,omitempty"`
	Deadline    bool     `json:"deadlineMissed,omitempty"`
	Wall        float64  `json:"wallClockTime,omitempty"`
	Time        float64  `json:"simulatedTime,omitempty"`
	Cost        float64  `json:"totalCost,omitempty"`
	FinalData   []string `json:"finalData,omitempty"`
}

func (s *Server) view(rec *taskRecord) TaskView {
	v := TaskView{ID: rec.ID, Status: rec.Status, Error: rec.Error}
	if r := rec.Report; r != nil {
		v.Completed = r.Completed
		v.GoalFitness = r.GoalFitness
		v.Executed = r.Executed
		v.Failures = r.Failures
		v.Replans = r.Replans
		v.Deadline = r.DeadlineMissed
		v.Wall = r.WallClockTime
		v.Time = r.SimulatedTime
		v.Cost = r.TotalCost
		if r.FinalState != nil {
			for _, item := range r.FinalState.Items() {
				v.FinalData = append(v.FinalData, item.String())
			}
		}
	}
	return v
}

func (s *Server) handleTaskList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TaskView, 0, len(s.tasks))
	for _, rec := range s.tasks {
		out = append(out, s.view(rec))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTaskGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec := s.tasks[id]
	s.mu.Unlock()
	if rec == nil {
		writeErr(w, http.StatusNotFound, "no task %q", id)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.view(rec))
}

// --- plans and ontology ------------------------------------------------------

func (s *Server) handlePlans(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.env.Archive.Names(""))
}

func (s *Server) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, entry, err := s.env.Archive.Get(name, 0)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": entry.Name, "version": entry.Version,
		"creator": entry.Creator, "pdl": entry.PDL,
	})
}

func (s *Server) handleOntology(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Fetch through the ontology service agent for faithfulness.
	client, err := s.clientContext()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	reply, err := client.Call(services.OntologyName, services.OntOntology,
		services.KBRequest{Name: name}, services.CallTimeout)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	kr, ok := reply.Content.(services.KBReply)
	if !ok {
		writeErr(w, http.StatusNotFound, "no ontology %q", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(kr.JSON)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req services.SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.env.Services.Simulation.Simulate(req))
}

// clientContext lazily registers the UI's own agent on the platform.
func (s *Server) clientContext() (*agent.Context, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client == nil {
		c, err := s.env.Platform.Register("user-interface",
			agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
		if err != nil {
			return nil, err
		}
		s.client = c
	}
	return s.client, nil
}

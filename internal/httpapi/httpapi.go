// Package httpapi is the User Interface of Figure 1: an HTTP/JSON facade
// over a core.Environment through which end users submit tasks, watch their
// progress, browse the grid and the service offerings, fetch ontologies,
// inspect telemetry, and run what-if simulations.
//
// The API is versioned under /api/v1. The unversioned /api/... paths were
// deprecated aliases for one release and are now removed: every former
// alias answers 410 gone (code "gone" in the error envelope) with a Link
// header naming the /api/v1 successor route, so stale clients get a
// machine-readable pointer instead of a silent 404.
//
// Endpoints (all under /api/v1):
//
//	GET  /api/v1/nodes                  grid nodes with live status (paginated)
//	GET  /api/v1/nodes/{id}/health      monitoring's health record of one node
//	GET  /api/v1/monitor                cluster health summary
//	GET  /api/v1/containers             application containers
//	GET  /api/v1/services               the end-user service catalog
//	GET  /api/v1/classes                resource equivalence classes
//	POST /api/v1/tasks                  submit a task to the enactment engine
//	GET  /api/v1/tasks                  list tasks, admission order (paginated)
//	GET  /api/v1/tasks/{id}             task status / final report
//	DELETE /api/v1/tasks/{id}           cancel a queued or running task
//	GET  /api/v1/tasks/{id}/trace       the task's telemetry span log
//	GET  /api/v1/queue                  enactment engine queue / worker stats
//	POST /api/v1/plans                  submit a planning case (202 + handle,
//	                                    or 201 when the plan cache answers)
//	GET  /api/v1/plans                  list plan handles (paginated)
//	GET  /api/v1/plans/{id}             plan status / finished plan
//	DELETE /api/v1/plans/{id}           cancel a queued or running plan
//	GET  /api/v1/archive                archived plan names
//	GET  /api/v1/archive/{name}         latest archived revision (PDL text)
//	GET  /api/v1/ontology/{name}        knowledge base JSON
//	GET  /api/v1/metrics                telemetry registry snapshot (JSON, or
//	                                    Prometheus text with ?format=prometheus)
//	GET  /api/v1/events                 live SSE stream of task spans and
//	                                    node-health transitions (?task=, ?kind=)
//	GET  /api/v1/stats                  grid-wide rollup: nodes, queue, rates
//	                                    (?scope=cluster aggregates every node)
//	GET  /api/v1/cluster                cluster membership, ring version, and
//	                                    per-node health (enabled=false standalone)
//	GET  /api/v1/store                  storage backend snapshot: kind, journal
//	                                    depth, group-commit and compaction counters
//	POST /api/v1/simulate               run the simulation service
//
// When the environment carries a cluster node (gridenv -peers), task and
// plan requests whose consistent-hash owner is another node are forwarded
// there transparently; see internal/httpapi/cluster.go for the protocol
// (X-Tenant routing on reads, X-Gridenv-Forwarded one-hop guard,
// X-Gridenv-Owner on forwarded responses).
//
// Outside the versioned prefix the server answers the operational probes
// GET /healthz (process liveness) and GET /readyz (enactment engine
// accepting work), and — only when EnablePprof is set — the net/http/pprof
// profiling handlers under /debug/pprof/.
//
// Paginated endpoints accept limit and offset query parameters and wrap the
// result as {"items": [...], "total": N, "limit": L, "offset": O}; limit -1
// (the default) means unlimited.
//
// Task submissions go through the durable enactment engine: they are
// journaled, queued (per-priority FIFO), and enacted by the engine's worker
// pool. A full queue answers 429 queue_full with a Retry-After header;
// finished records eventually age out of retention and answer 404
// task_evicted.
//
// /api/v1/tasks and /api/v1/plans share one asynchronous-resource
// convention: POST answers 202 Accepted (or 201 Created when the result
// already exists) with a Location header naming the resource, GET polls a
// status from the shared lifecycle queued|running|succeeded|failed|
// cancelled, and DELETE cancels (200 when already terminal work settled
// synchronously, 202 while cancellation propagates, 409 when the resource
// finished or was already cancelled).
//
// Every response carries an X-Request-Id header. Errors share one envelope:
// {"error": {"code": "...", "message": "..."}, "requestId": "..."} — also
// for unknown paths (404) and wrong methods (405), which stdlib muxes would
// otherwise answer in plain text.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/grid"
	"repro/internal/pdl"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Server wraps an environment. Create with New, mount via Handler.
type Server struct {
	env *core.Environment

	// Logger receives one structured record per request (method, path,
	// status, duration, request ID). Defaults to the environment's root
	// logger scoped to component=httpapi; replace before Handler is mounted
	// to redirect it, or set nil to silence request logging.
	Logger *slog.Logger

	// EnablePprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/ (gridenv's -pprof flag). Off by default: profiling
	// endpoints expose internals and cost CPU, so they are opt-in.
	EnablePprof bool

	reqSeq  atomic.Int64 // request ID counter
	planSeq atomic.Int64 // cluster-unique service-assigned plan names

	mu     sync.Mutex
	client *agent.Context // the UI's own agent, registered lazily
}

// New builds a server over the environment.
func New(env *core.Environment) *Server {
	return &Server{env: env, Logger: telemetry.ComponentLogger(env.Logger, "httpapi")}
}

// --- routing ---------------------------------------------------------------

// route is one row of the route table: a method, a path pattern relative to
// the version prefix, and its handler. The table is mounted under /api/v1;
// the same patterns are mounted under the removed /api prefix answering 410.
type route struct {
	method  string
	path    string
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{http.MethodGet, "/nodes", s.handleNodes},
		{http.MethodGet, "/nodes/{id}/health", s.handleNodeHealth},
		{http.MethodGet, "/monitor", s.handleMonitor},
		{http.MethodGet, "/containers", s.handleContainers},
		{http.MethodGet, "/services", s.handleServices},
		{http.MethodGet, "/classes", s.handleClasses},
		{http.MethodPost, "/tasks", s.handleSubmit},
		{http.MethodGet, "/tasks", s.handleTaskList},
		{http.MethodGet, "/tasks/{id}", s.handleTaskGet},
		{http.MethodDelete, "/tasks/{id}", s.handleTaskCancel},
		{http.MethodGet, "/tasks/{id}/trace", s.handleTaskTrace},
		{http.MethodGet, "/queue", s.handleQueue},
		{http.MethodGet, "/tenants", s.handleTenants},
		{http.MethodGet, "/tenants/{id}", s.handleTenantGet},
		{http.MethodPost, "/plans", s.handlePlanSubmit},
		{http.MethodGet, "/plans", s.handlePlanList},
		{http.MethodGet, "/plans/{id}", s.handlePlanStatus},
		{http.MethodDelete, "/plans/{id}", s.handlePlanCancel},
		{http.MethodGet, "/archive", s.handleArchive},
		{http.MethodGet, "/archive/{name}", s.handleArchiveGet},
		{http.MethodGet, "/ontology/{name}", s.handleOntology},
		{http.MethodGet, "/metrics", s.handleMetrics},
		{http.MethodGet, "/events", s.handleEvents},
		{http.MethodGet, "/stats", s.handleStats},
		{http.MethodGet, "/cluster", s.handleCluster},
		{http.MethodGet, "/store", s.handleStore},
		{http.MethodPost, "/simulate", s.handleSimulate},
	}
}

// Handler returns the HTTP handler: the route table mounted under /api/v1,
// the removed /api alias patterns answering 410 gone with the successor
// Link, behind the request-ID/logging/metrics middleware, with JSON 404/405
// fallbacks.
func (s *Server) Handler() http.Handler {
	byPath := map[string]map[string]http.HandlerFunc{}
	for _, rt := range s.routes() {
		if byPath[rt.path] == nil {
			byPath[rt.path] = map[string]http.HandlerFunc{}
		}
		byPath[rt.path][rt.method] = rt.handler
	}
	mux := http.NewServeMux()
	for path, methods := range byPath {
		mux.Handle("/api/v1"+path, s.dispatch(methods))
		mux.Handle("/api"+path, s.gone())
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, r, http.StatusNotFound, "not_found", "no route %s", r.URL.Path)
	})
	return s.middleware(mux)
}

// dispatch selects the handler by method, answering JSON 405 (with Allow)
// otherwise.
func (s *Server) dispatch(methods map[string]http.HandlerFunc) http.Handler {
	var allow []string
	for m := range methods {
		allow = append(allow, m)
	}
	sort.Strings(allow)
	allowHeader := strings.Join(allow, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, ok := methods[r.Method]
		if !ok {
			w.Header().Set("Allow", allowHeader)
			s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed",
				"method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allowHeader)
			return
		}
		h(w, r)
	})
}

// gone answers a removed unversioned /api alias: 410 with the error code
// "gone" and a Link header naming the /api/v1 successor route, regardless of
// method — the route no longer exists, so method dispatch does not apply.
func (s *Server) gone() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		successor := "/api/v1" + strings.TrimPrefix(r.URL.Path, "/api")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		s.writeError(w, r, http.StatusGone, "gone",
			"the unversioned API was removed; use %s", successor)
	})
}

// --- middleware ------------------------------------------------------------

// requestIDHeader carries the per-request ID on every response.
const requestIDHeader = "X-Request-Id"

// middleware assigns the request ID, records http.* metrics, and logs the
// request line.
func (s *Server) middleware(next http.Handler) http.Handler {
	tel := s.telemetry()
	latency := tel.Histogram("http.request.seconds",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// An inbound X-Request-Id (a request forwarded by a cluster peer, or
		// a client threading its own correlation ID) is adopted; otherwise
		// one is generated — so one logical request keeps one ID across
		// every node that touches it.
		rid := r.Header.Get(requestIDHeader)
		if rid == "" {
			rid = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set(requestIDHeader, rid)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		tel.Counter("http.requests.total").Inc()
		tel.Counter(fmt.Sprintf("http.responses.%dxx", rec.status/100)).Inc()
		latency.Observe(elapsed.Seconds())
		if s.Logger != nil {
			s.Logger.Info("request served",
				slog.String("method", r.Method), slog.String("path", r.URL.Path),
				slog.Int("status", rec.status), slog.Float64("durMs", float64(elapsed)/float64(time.Millisecond)),
				slog.String("requestId", rid))
		}
	})
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (SSE) keep
// working behind the middleware's wrapper.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) telemetry() *telemetry.Registry {
	if s.env == nil {
		return nil
	}
	return s.env.Telemetry
}

// --- response helpers ------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	RequestID string `json:"requestId"`
}

// writeError emits the error envelope; the request ID is the one the
// middleware stamped on the response header.
func (s *Server) writeError(w http.ResponseWriter, _ *http.Request, status int, code, format string, args ...any) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = fmt.Sprintf(format, args...)
	body.RequestID = w.Header().Get(requestIDHeader)
	writeJSON(w, status, body)
}

// page wraps a paginated listing.
type page struct {
	Items  any `json:"items"`
	Total  int `json:"total"`
	Limit  int `json:"limit"` // -1 = unlimited
	Offset int `json:"offset"`
}

// parsePage reads limit/offset query parameters. Missing limit means
// unlimited (-1); limit=0 is a valid empty page; negatives and non-integers
// are errors.
func parsePage(r *http.Request) (limit, offset int, err error) {
	limit = -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("limit must be a non-negative integer, got %q", v)
		}
		limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("offset must be a non-negative integer, got %q", v)
		}
		offset = n
	}
	return limit, offset, nil
}

// paginate applies offset/limit to items; limit -1 means all from offset.
func paginate[T any](items []T, limit, offset int) []T {
	if offset >= len(items) {
		return []T{}
	}
	items = items[offset:]
	if limit >= 0 && limit < len(items) {
		items = items[:limit]
	}
	return items
}

// --- read-only grid views --------------------------------------------------

type nodeView struct {
	ID       string   `json:"id"`
	Domain   string   `json:"domain"`
	Type     string   `json:"type"`
	Speed    float64  `json:"speed"`
	Cost     float64  `json:"costPerSec"`
	Up       bool     `json:"up"`
	Software []string `json:"software,omitempty"`
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	out := []nodeView{}
	for _, n := range s.env.Grid.Nodes() {
		var sw []string
		for _, pkg := range n.Software {
			sw = append(sw, pkg.Name)
		}
		out = append(out, nodeView{
			ID: n.ID, Domain: n.Domain, Type: n.Hardware.Type,
			Speed: n.Hardware.Speed, Cost: n.CostPerSec, Up: n.Up(), Software: sw,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, page{
		Items: paginate(out, limit, offset), Total: len(out), Limit: limit, Offset: offset,
	})
}

// handleNodeHealth serves monitoring's health record of one node, fetched
// through the monitoring agent so the answer is the authoritative live view.
func (s *Server) handleNodeHealth(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	client, err := s.clientContext()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	reply, err := client.Call(services.MonitoringName, services.OntMonitoring,
		services.NodeHealthRequest{Node: id}, services.CallTimeout)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	hr, ok := reply.Content.(services.NodeHealthReply)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "unexpected monitoring reply %T", reply.Content)
		return
	}
	if !hr.Health.Known {
		s.writeError(w, r, http.StatusNotFound, "not_found", "no node %q", id)
		return
	}
	writeJSON(w, http.StatusOK, hr.Health)
}

// handleMonitor serves the cluster-wide health summary.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	client, err := s.clientContext()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	reply, err := client.Call(services.MonitoringName, services.OntMonitoring,
		services.ClusterHealthRequest{}, services.CallTimeout)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	ch, ok := reply.Content.(services.ClusterHealthReply)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "unexpected monitoring reply %T", reply.Content)
		return
	}
	writeJSON(w, http.StatusOK, ch)
}

type containerView struct {
	ID       string   `json:"id"`
	Node     string   `json:"node"`
	Services []string `json:"services"`
}

func (s *Server) handleContainers(w http.ResponseWriter, _ *http.Request) {
	var out []containerView
	for _, c := range s.env.Grid.Containers() {
		out = append(out, containerView{ID: c.ID, Node: c.NodeID, Services: c.Services})
	}
	writeJSON(w, http.StatusOK, out)
}

type serviceView struct {
	Name     string   `json:"name"`
	Inputs   []string `json:"inputs"`
	Outputs  []string `json:"outputs"`
	BaseTime float64  `json:"baseTime"`
	Cost     float64  `json:"cost"`
}

func (s *Server) handleServices(w http.ResponseWriter, _ *http.Request) {
	var out []serviceView
	for _, svc := range s.env.Catalog.Services() {
		v := serviceView{Name: svc.Name, BaseTime: svc.BaseTime, Cost: svc.Cost}
		for i := range svc.Inputs {
			v.Inputs = append(v.Inputs, svc.Inputs[i].Condition)
		}
		for _, o := range svc.Outputs {
			v.Outputs = append(v.Outputs, o.Name)
		}
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleClasses(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.env.Grid.EquivalenceClasses())
}

// --- task submission ---------------------------------------------------------

// TaskSubmission is the POST /api/v1/tasks body.
type TaskSubmission struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// PDL is the process description text; empty means NeedPlanning.
	PDL string `json:"pdl,omitempty"`
	// InitialData seeds the case (property map values are strings or
	// numbers).
	InitialData []DataItemJSON `json:"initialData"`
	// Goal lists the case's goal conditions.
	Goal []string `json:"goal"`
	// Deadline is a soft wall-clock deadline in simulated seconds (0 = none).
	Deadline float64 `json:"deadline,omitempty"`
	// Budget caps the case's accumulated simulated spend in currency units
	// (0 = unlimited). Validated as 400 bad_constraints when negative or
	// non-finite.
	Budget float64 `json:"budget,omitempty"`
	// HardDeadline upgrades Deadline from advisory (report-only) to an
	// enforced constraint: the scheduler prefers nodes that keep the case
	// inside the deadline and the case terminates deadline_missed when it is
	// blown. Requires Deadline > 0.
	HardDeadline bool `json:"hardDeadline,omitempty"`
	// Priority is the admission class: "high", "normal" (default), or "low".
	Priority string `json:"priority,omitempty"`
	// Tenant attributes the task to a submitting principal (accounting).
	Tenant string `json:"tenant,omitempty"`
	// Policy overrides the fault-tolerance policy for this task; omitted
	// fields keep the coordinator's defaults.
	Policy *PolicyJSON `json:"policy,omitempty"`
	// Faults installs a deterministic fault-injection spec on the grid
	// before the task runs (chaos testing over the API).
	Faults *grid.FaultSpec `json:"faults,omitempty"`
}

// PolicyJSON is the wire form of coordination.Policy: durations in
// milliseconds, pointers so absent fields fall back to defaults.
type PolicyJSON struct {
	MaxRetries        *int     `json:"maxRetries,omitempty"`
	ActivityTimeoutMS *float64 `json:"activityTimeoutMS,omitempty"`
	BackoffBaseMS     *float64 `json:"backoffBaseMS,omitempty"`
	BackoffCapMS      *float64 `json:"backoffCapMS,omitempty"`
	DeadlineMS        *float64 `json:"deadlineMS,omitempty"`
	Seed              *int64   `json:"seed,omitempty"`
}

// toPolicy converts the wire form; nil yields nil (defaults).
func (pj *PolicyJSON) toPolicy() *coordination.Policy {
	if pj == nil {
		return nil
	}
	p := &coordination.Policy{}
	if pj.MaxRetries != nil {
		p.MaxRetries = *pj.MaxRetries
	}
	if pj.ActivityTimeoutMS != nil {
		p.ActivityTimeout = *pj.ActivityTimeoutMS / 1000
	}
	if pj.BackoffBaseMS != nil {
		p.BackoffBase = *pj.BackoffBaseMS / 1000
	}
	if pj.BackoffCapMS != nil {
		p.BackoffCap = *pj.BackoffCapMS / 1000
	}
	if pj.DeadlineMS != nil {
		p.Deadline = time.Duration(*pj.DeadlineMS * float64(time.Millisecond))
	}
	if pj.Seed != nil {
		p.Seed = *pj.Seed
	}
	return p
}

// policyView echoes a resolved policy back in wire units.
type policyView struct {
	MaxRetries        int     `json:"maxRetries"`
	ActivityTimeoutMS float64 `json:"activityTimeoutMS"`
	BackoffBaseMS     float64 `json:"backoffBaseMS"`
	BackoffCapMS      float64 `json:"backoffCapMS"`
	DeadlineMS        float64 `json:"deadlineMS"`
	Seed              int64   `json:"seed"`
}

func viewPolicy(p coordination.Policy) policyView {
	return policyView{
		MaxRetries:        p.MaxRetries,
		ActivityTimeoutMS: p.ActivityTimeout * 1000,
		BackoffBaseMS:     p.BackoffBase * 1000,
		BackoffCapMS:      p.BackoffCap * 1000,
		DeadlineMS:        float64(p.Deadline) / float64(time.Millisecond),
		Seed:              p.Seed,
	}
}

// DataItemJSON is one initial data item.
type DataItemJSON struct {
	Name           string             `json:"name"`
	Classification string             `json:"classification"`
	Props          map[string]float64 `json:"props,omitempty"`
	TextProps      map[string]string  `json:"textProps,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "reading submission: %v", err)
		return
	}
	var sub TaskSubmission
	if err := json.Unmarshal(body, &sub); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "bad submission: %v", err)
		return
	}
	if sub.ID == "" || len(sub.Goal) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "id and goal are required")
		return
	}
	if sub.Tenant == "" {
		// Tenant may also ride the X-Tenant header (the read-path spelling);
		// adopting it here keeps the routing key and the engine's accounting
		// on the same tenant.
		sub.Tenant = requestTenant(r)
	}
	if s.maybeForward(w, r, sub.Tenant, sub.ID, body) {
		return
	}
	caseDesc := workflow.NewCase(sub.ID, sub.Name)
	for _, d := range sub.InitialData {
		item := workflow.NewDataItem(d.Name, d.Classification)
		for k, v := range d.Props {
			item.With(k, expr.Number(v))
		}
		for k, v := range d.TextProps {
			item.With(k, expr.String(v))
		}
		caseDesc.AddData(item)
	}
	caseDesc.Goal = workflow.NewGoal(sub.Goal...)
	caseDesc.Deadline = sub.Deadline
	caseDesc.Budget = sub.Budget
	caseDesc.HardDeadline = sub.HardDeadline
	if err := caseDesc.ValidateConstraints(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_constraints", "bad constraints: %v", err)
		return
	}
	task := &workflow.Task{ID: sub.ID, Name: sub.Name, Case: caseDesc}
	if sub.PDL == "" {
		task.NeedPlanning = true
	} else {
		p, err := pdl.ParseProcess(sub.ID, sub.PDL)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_pdl", "bad PDL: %v", err)
			return
		}
		task.Process = p
	}
	if err := task.Validate(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "invalid_task", "invalid task: %v", err)
		return
	}
	pol := sub.Policy.toPolicy()
	if err := pol.Validate(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_policy", "bad policy: %v", err)
		return
	}
	prio, err := engine.ParsePriority(sub.Priority)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_priority", "%v", err)
		return
	}
	if sub.Faults != nil {
		if err := s.env.Grid.SetFaults(sub.Faults); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_faults", "bad fault spec: %v", err)
			return
		}
	}

	status, err := s.env.Engine.Submit(engine.Submission{
		Task: task, Policy: pol, Priority: prio, Tenant: sub.Tenant,
		Traceparent: r.Header.Get(traceparentHeader),
		RequestID:   w.Header().Get(requestIDHeader),
	})
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.env.Engine.RetryAfterSeconds()))
		s.writeError(w, r, http.StatusTooManyRequests, "queue_full", "%v", err)
		return
	case errors.Is(err, engine.ErrTenantQueueFull):
		s.rateLimitHeaders(w, sub.Tenant, false)
		s.writeError(w, r, http.StatusTooManyRequests, "tenant_queue_full", "%v", err)
		return
	case errors.Is(err, engine.ErrTenantRateLimited):
		s.rateLimitHeaders(w, sub.Tenant, true)
		s.writeError(w, r, http.StatusTooManyRequests, "tenant_rate_limited", "%v", err)
		return
	case errors.Is(err, engine.ErrDuplicate):
		s.writeError(w, r, http.StatusConflict, "duplicate_task", "task %q already submitted", sub.ID)
		return
	case err != nil:
		s.writeError(w, r, http.StatusBadRequest, "invalid_task", "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/tasks/"+sub.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":            sub.ID,
		"status":        lifecycle(status.Status),
		"queuePosition": status.QueuePosition,
		"priority":      status.Priority.String(),
		"policy":        viewPolicy(status.Policy),
	})
}

// lifecycle maps the engine's internal status spelling onto the uniform
// async-resource lifecycle (queued|running|succeeded|failed|cancelled)
// shared by /api/v1/tasks and /api/v1/plans. The engine keeps "completed"
// internally — persisted journal records replay against it — so the
// translation lives at the API boundary only.
func lifecycle(status string) string {
	if status == engine.StatusCompleted {
		return "succeeded"
	}
	return status
}

// handleTaskCancel stops a task through the engine. Queued tasks are
// cancelled immediately; running ones get their context cancelled and the
// record transitions to "cancelled" once the enactment unwinds (202).
// Finished tasks answer 409.
func (s *Server) handleTaskCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.maybeForward(w, r, requestTenant(r), id, nil) {
		return
	}
	result, err := s.env.Engine.Cancel(id)
	switch {
	case errors.Is(err, engine.ErrEvicted):
		s.writeError(w, r, http.StatusNotFound, "task_evicted", "task %q finished and its record was evicted", id)
		return
	case errors.Is(err, engine.ErrUnknownTask):
		s.writeError(w, r, http.StatusNotFound, "not_found", "no task %q", id)
		return
	case errors.Is(err, engine.ErrFinished):
		s.writeError(w, r, http.StatusConflict, "task_finished", "%v", err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	code := http.StatusAccepted
	if result == engine.StatusCancelled {
		code = http.StatusOK
	}
	writeJSON(w, code, map[string]string{"id": id, "status": lifecycle(result)})
}

// handleQueue serves the enactment engine's queue and worker-pool snapshot.
func (s *Server) handleQueue(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.env.Engine.Stats())
}

// TaskView is the GET /api/v1/tasks/{id} response.
type TaskView struct {
	ID        string    `json:"id"`
	Status    string    `json:"status"`
	Submitted time.Time `json:"submittedAt"`
	// QueuePosition is the 1-based drain position while the task is queued.
	QueuePosition int `json:"queuePosition,omitempty"`
	// Attempt counts execution attempts (recovery re-runs increment it).
	Attempt     int      `json:"attempt,omitempty"`
	Priority    string   `json:"priority,omitempty"`
	Tenant      string   `json:"tenant,omitempty"`
	Error       string   `json:"error,omitempty"`
	Completed   bool     `json:"completed,omitempty"`
	GoalFitness float64  `json:"goalFitness,omitempty"`
	Executed    int      `json:"executed,omitempty"`
	Failures    int      `json:"failures,omitempty"`
	Retries     int      `json:"retries,omitempty"`
	Faults      int      `json:"faults,omitempty"`
	Replans     int      `json:"replans,omitempty"`
	BackoffWait float64  `json:"backoffWait,omitempty"`
	Deadline    bool     `json:"deadlineMissed,omitempty"`
	Wall        float64  `json:"wallClockTime,omitempty"`
	Time        float64  `json:"simulatedTime,omitempty"`
	Cost        float64  `json:"totalCost,omitempty"`
	FinalData   []string `json:"finalData,omitempty"`
	// Reason refines a terminal status (budget_exceeded, deadline_missed).
	Reason string `json:"reason,omitempty"`
	// Budget echoes the submitted spend cap; Spent is the case's accumulated
	// simulated cost against it (same as totalCost, surfaced here so budget
	// accounting reads as a pair).
	Budget float64 `json:"budget,omitempty"`
	Spent  float64 `json:"spent,omitempty"`
	// DeadlineSec echoes the submitted deadline; HardDeadline says whether it
	// is enforced; DeadlineSlackSec is deadline minus simulated time so far
	// (negative once blown).
	DeadlineSec      float64  `json:"deadlineSec,omitempty"`
	HardDeadline     bool     `json:"hardDeadline,omitempty"`
	DeadlineSlackSec *float64 `json:"deadlineSlackSec,omitempty"`
	// Policy echoes the resolved fault-tolerance policy, when known.
	Policy *policyView `json:"policy,omitempty"`
}

func viewTask(rec engine.TaskStatus) TaskView {
	v := TaskView{
		ID: rec.ID, Status: lifecycle(rec.Status), Submitted: rec.Submitted,
		QueuePosition: rec.QueuePosition, Attempt: rec.Attempt,
		Priority: rec.Priority.String(), Tenant: rec.Tenant, Error: rec.Error,
		Reason: rec.Reason, Budget: rec.Budget,
		DeadlineSec: rec.Deadline, HardDeadline: rec.HardDeadline,
	}
	pv := viewPolicy(rec.Policy)
	v.Policy = &pv
	if r := rec.Report; r != nil {
		v.Completed = r.Completed
		v.GoalFitness = r.GoalFitness
		v.Executed = r.Executed
		v.Failures = r.Failures
		v.Retries = r.Retries
		v.Faults = r.Faults
		v.Replans = r.Replans
		v.BackoffWait = r.BackoffWait
		v.Deadline = r.DeadlineMissed
		v.Wall = r.WallClockTime
		v.Time = r.SimulatedTime
		v.Cost = r.TotalCost
		v.Spent = r.TotalCost
		if rec.Deadline > 0 {
			slack := rec.Deadline - r.SimulatedTime
			v.DeadlineSlackSec = &slack
		}
		if r.FinalState != nil {
			for _, item := range r.FinalState.Items() {
				v.FinalData = append(v.FinalData, item.String())
			}
		}
	}
	return v
}

func (s *Server) handleTaskList(w http.ResponseWriter, r *http.Request) {
	limit, offset, err := parsePage(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	recs := s.env.Engine.Tasks()
	out := make([]TaskView, 0, len(recs))
	for _, rec := range recs {
		out = append(out, viewTask(rec))
	}
	writeJSON(w, http.StatusOK, page{
		Items: paginate(out, limit, offset), Total: len(out), Limit: limit, Offset: offset,
	})
}

func (s *Server) handleTaskGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.maybeForward(w, r, requestTenant(r), id, nil) {
		return
	}
	rec, err := s.env.Engine.Task(id)
	switch {
	case errors.Is(err, engine.ErrEvicted):
		s.writeError(w, r, http.StatusNotFound, "task_evicted", "task %q finished and its record was evicted", id)
		return
	case err != nil:
		s.writeError(w, r, http.StatusNotFound, "not_found", "no task %q", id)
		return
	}
	writeJSON(w, http.StatusOK, viewTask(rec))
}

// --- telemetry -------------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.telemetry().Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, snap)
	case "prometheus":
		w.Header().Set("Content-Type", telemetry.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = telemetry.WritePrometheus(w, snap)
	default:
		s.writeError(w, r, http.StatusBadRequest, "bad_request",
			"unknown format %q (want json or prometheus)", format)
	}
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only while the enactment engine
// is started and accepting work, 503 otherwise (so load balancers drain the
// instance during startup and shutdown). A clustered node replaying a
// failed-over partition also answers 503, with reason cluster_rebalancing,
// until the replay settles and its partition is consistent.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.env == nil || s.env.Engine == nil || !s.env.Engine.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready"})
		return
	}
	if s.env.Cluster != nil && s.env.Cluster.Rebalancing() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "reason": "cluster_rebalancing",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// --- plan archive and ontology ----------------------------------------------

// handleArchive lists the archived (named, versioned) plans. The live
// asynchronous plan resource lives at /api/v1/plans; the archive is the
// knowledge-base shelf Plan() writes finished named plans to.
func (s *Server) handleArchive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.env.Archive.Names(""))
}

func (s *Server) handleArchiveGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, entry, err := s.env.Archive.Get(name, 0)
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": entry.Name, "version": entry.Version,
		"creator": entry.Creator, "pdl": entry.PDL,
	})
}

func (s *Server) handleOntology(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Fetch through the ontology service agent for faithfulness.
	client, err := s.clientContext()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	reply, err := client.Call(services.OntologyName, services.OntOntology,
		services.KBRequest{Name: name}, services.CallTimeout)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	kr, ok := reply.Content.(services.KBReply)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "not_found", "no ontology %q", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(kr.JSON)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req services.SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "bad request: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.env.Services.Simulation.Simulate(req))
}

// clientContext lazily registers the UI's own agent on the platform.
func (s *Server) clientContext() (*agent.Context, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client == nil {
		c, err := s.env.Platform.Register("user-interface",
			agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
		if err != nil {
			return nil, err
		}
		s.client = c
	}
	return s.client, nil
}

package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestTaskTraceHierarchy submits a task carrying a client traceparent and an
// X-Request-Id and checks the single-node trace is a proper tree: the task
// root joins the client's trace, every stage span (queue_wait, enact,
// journal_commit) hangs off the root with a measured duration, and point
// events are parented rather than floating.
func TestTaskTraceHierarchy(t *testing.T) {
	_, ts := testServer(t)
	client := telemetry.SpanContext{TraceID: telemetry.NewTraceID(), SpanID: telemetry.NewSpanID()}

	sub := podSubmission("T-hier")
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/tasks", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", client.Traceparent())
	req.Header.Set("X-Request-Id", "req-hier-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	pollTerminal(t, ts.URL+"/api/v1/tasks/T-hier")

	var view traceView
	if code := getJSON(t, ts.URL+"/api/v1/tasks/T-hier/trace", &view); code != 200 {
		t.Fatalf("trace status %d", code)
	}
	if view.TraceID != client.TraceID {
		t.Fatalf("trace ID %q, want the client's %q", view.TraceID, client.TraceID)
	}

	var root *telemetry.Span
	durations := map[string]int{}
	ids := map[string]bool{}
	for i := range view.Spans {
		s := &view.Spans[i]
		if s.SpanID != "" {
			ids[s.SpanID] = true
			durations[s.Kind]++
			if s.DurationSec < 0 {
				t.Errorf("%s span has negative duration %v", s.Kind, s.DurationSec)
			}
		}
		if s.Kind == "task" {
			root = s
		}
		if s.TraceID != client.TraceID {
			t.Errorf("%s span trace %q, want %q", s.Kind, s.TraceID, client.TraceID)
		}
	}
	if root == nil {
		t.Fatal("no task root span recorded")
	}
	if root.ParentID != client.SpanID {
		t.Errorf("root ParentID %q, want the client span %q", root.ParentID, client.SpanID)
	}
	if root.Attrs["request.id"] != "req-hier-1" {
		t.Errorf("root request.id attr = %q, want req-hier-1", root.Attrs["request.id"])
	}
	if root.DurationSec <= 0 {
		t.Errorf("root DurationSec = %v, want > 0", root.DurationSec)
	}
	for _, kind := range []string{"queue_wait", "enact", "journal_commit"} {
		if durations[kind] == 0 {
			t.Errorf("no %s duration span; kinds = %v", kind, durations)
		}
	}
	// Every span is linked: parents resolve within the trace (the root's
	// parent is the client's remote span, by construction).
	for _, s := range view.Spans {
		if s.SpanID == root.SpanID {
			continue
		}
		if s.ParentID == "" || !(ids[s.ParentID] || s.ParentID == client.SpanID) {
			t.Errorf("span kind=%s name=%s has unresolvable parent %q", s.Kind, s.Name, s.ParentID)
		}
	}

	// The OTLP rendering carries the same spans under one resource.
	var otlp struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/tasks/T-hier/trace?format=otlp", &otlp); code != 200 {
		t.Fatalf("otlp trace status %d", code)
	}
	if len(otlp.ResourceSpans) != 1 || len(otlp.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("otlp shape = %+v", otlp)
	}
	for _, s := range otlp.ResourceSpans[0].ScopeSpans[0].Spans {
		if s.TraceID != client.TraceID {
			t.Fatalf("otlp span trace %q, want %q", s.TraceID, client.TraceID)
		}
	}
}

// TestClusterTwoNodeJoinableTrace forwards a submission and checks the two
// nodes' segments join into one trace: the forwarding node's "forward" span
// and the owner's "task" root share a trace ID, and the root's parent IS the
// forward span — the cross-process link a trace viewer follows.
func TestClusterTwoNodeJoinableTrace(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	entry := nodes[0]
	id := idOwnedElsewhere(t, entry.node(), "", "trace-join")

	resp, body := doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/tasks", podSubmission(id))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded POST = %d (%v)", resp.StatusCode, body)
	}
	pollTerminal(t, entry.ts.URL+"/api/v1/tasks/"+id)

	var view clusterTraceView
	if code := getJSON(t, entry.ts.URL+"/api/v1/tasks/"+id+"/trace?scope=cluster", &view); code != 200 {
		t.Fatalf("cluster trace status %d", code)
	}
	var forward, root *clusterSpan
	for i := range view.Spans {
		s := &view.Spans[i]
		switch s.Kind {
		case "forward":
			forward = s
		case "task":
			root = s
		}
	}
	if forward == nil || root == nil {
		t.Fatalf("missing forward or task span in %d spans", len(view.Spans))
	}
	if forward.Node != "n0" {
		t.Errorf("forward span recorded on %q, want the entry node n0", forward.Node)
	}
	if root.Node != "n1" {
		t.Errorf("task root recorded on %q, want the owner n1", root.Node)
	}
	if root.TraceID != forward.TraceID {
		t.Errorf("trace IDs diverge: root %q, forward %q", root.TraceID, forward.TraceID)
	}
	if root.ParentID != forward.SpanID {
		t.Errorf("root ParentID %q, want the forward span %q", root.ParentID, forward.SpanID)
	}
	if view.TraceID != forward.TraceID {
		t.Errorf("view trace ID %q, want %q", view.TraceID, forward.TraceID)
	}
}

// TestClusterTraceAssembly is the acceptance scenario: on a 3-node cluster a
// forwarded task yields ONE assembled trace tree under ?scope=cluster —
// rooted at the forward span, spanning two processes — whose stage-span
// durations agree with the owner's latency histograms, and which exports as
// multi-resource OTLP.
func TestClusterTraceAssembly(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	entry := nodes[0]
	id := idOwnedElsewhere(t, entry.node(), "", "trace-asm")

	resp, body := doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/tasks", podSubmission(id))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded POST = %d (%v)", resp.StatusCode, body)
	}
	pollTerminal(t, entry.ts.URL+"/api/v1/tasks/"+id)

	// Any node can assemble the cluster view, including one that neither
	// accepted nor owns the task.
	var view clusterTraceView
	if code := getJSON(t, nodes[2].ts.URL+"/api/v1/tasks/"+id+"/trace?scope=cluster", &view); code != 200 {
		t.Fatalf("cluster trace status %d", code)
	}
	if view.Scope != "cluster" || view.Partial {
		t.Fatalf("scope=%q partial=%v, want a complete cluster view", view.Scope, view.Partial)
	}
	byNode := map[string]int{}
	for _, s := range view.Spans {
		byNode[s.Node]++
		if s.TraceID != view.TraceID {
			t.Errorf("span %s on %s has trace %q, want %q", s.Kind, s.Node, s.TraceID, view.TraceID)
		}
	}
	if len(byNode) < 2 {
		t.Fatalf("spans from %v, want at least forwarder + owner", byNode)
	}
	if len(view.Tree) != 1 {
		t.Fatalf("assembled %d trees, want exactly 1 (roots: %+v)", len(view.Tree), view.Tree)
	}
	if view.Tree[0].Span.Kind != "forward" {
		t.Errorf("tree root kind %q, want the forward span", view.Tree[0].Span.Kind)
	}

	// The stage durations in the tree agree with the owner node's stage
	// histograms: for each stage, the histogram observed at least this
	// task's spans and its sum is no smaller than any single span duration.
	stageSpans := map[string][]float64{}
	var walk func(n *traceTreeNode)
	walk = func(n *traceTreeNode) {
		if n.Span.SpanID != "" {
			stageSpans[n.Span.Kind] = append(stageSpans[n.Span.Kind], n.Span.DurationSec)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, root := range view.Tree {
		walk(root)
	}
	owner := nodes[1]
	if byNode["n1"] == 0 { // the ring picked n2 as owner instead
		owner = nodes[2]
	}
	snap := owner.srv.env.Telemetry.Snapshot()
	for stage, hist := range map[string]string{
		"queue_wait":     "trace.stage.queue_wait.seconds",
		"enact":          "trace.stage.enact.seconds",
		"journal_commit": "trace.stage.journal_commit.seconds",
	} {
		durs := stageSpans[stage]
		if len(durs) == 0 {
			t.Errorf("assembled tree has no %s span", stage)
			continue
		}
		h := snap.Histograms[hist]
		if h.Count < int64(len(durs)) {
			t.Errorf("%s: histogram count %d < %d spans in the trace", hist, h.Count, len(durs))
		}
		for _, d := range durs {
			if d > h.Sum+1e-9 {
				t.Errorf("%s: span duration %v exceeds histogram sum %v", hist, d, h.Sum)
			}
		}
	}

	// Cluster OTLP export: one resource per contributing node.
	var otlp struct {
		ResourceSpans []json.RawMessage `json:"resourceSpans"`
	}
	if code := getJSON(t, nodes[2].ts.URL+"/api/v1/tasks/"+id+"/trace?scope=cluster&format=otlp", &otlp); code != 200 {
		t.Fatalf("cluster otlp status %d", code)
	}
	if len(otlp.ResourceSpans) != len(byNode) {
		t.Errorf("otlp has %d resources, want %d contributing nodes", len(otlp.ResourceSpans), len(byNode))
	}
}

// TestEventsSSEResume reconnects with Last-Event-ID and checks the handler
// replays the retained events published while the client was away, without
// duplicating what it already saw.
func TestEventsSSEResume(t *testing.T) {
	_, ts := testServer(t)

	// First connection: latches the replay ring and reads a few events.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/events?task=T-resume", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	submitObserved(t, ts.URL, "T-resume")
	lastID := ""
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if id, ok := strings.CutPrefix(scanner.Text(), "id: "); ok {
			lastID = id
			break // disconnect after the first event
		}
	}
	cancel()
	resp.Body.Close()
	if lastID == "" {
		t.Fatal("no event id arrived on the first connection")
	}

	// Let the task finish while nobody is connected, then resume.
	pollTerminal(t, ts.URL+"/api/v1/tasks/T-resume")

	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	req2, err := http.NewRequestWithContext(ctx2, http.MethodGet, ts.URL+"/api/v1/events?task=T-resume", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", lastID)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d", resp2.StatusCode)
	}

	// The task already completed: its complete event must arrive from the
	// replay ring, with a strictly increasing id and no duplicates.
	prev := mustUint(t, lastID)
	sawComplete := false
	scanner2 := bufio.NewScanner(resp2.Body)
	for scanner2.Scan() {
		line := scanner2.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			seq := mustUint(t, id)
			if seq <= prev {
				t.Fatalf("replayed id %d not after %d", seq, prev)
			}
			prev = seq
		}
		if kind, ok := strings.CutPrefix(line, "event: "); ok && kind == "complete" {
			sawComplete = true
			break
		}
	}
	if !sawComplete {
		t.Fatalf("resumed stream never replayed the complete event (scan err %v)", scanner2.Err())
	}
}

// TestEventsSSEBadLastEventID rejects a non-numeric cursor up front.
func TestEventsSSEBadLastEventID(t *testing.T) {
	_, ts := testServer(t)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func mustUint(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("bad uint %q: %v", s, err)
	}
	return v
}

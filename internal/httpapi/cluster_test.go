package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// clusterTestNode is one member of an in-process test cluster.
type clusterTestNode struct {
	id  string
	srv *Server
	ts  *httptest.Server
}

func (n *clusterTestNode) node() *cluster.Node { return n.srv.env.Cluster }

// newTestCluster builds n independent environments, serves each, and wires
// them into one cluster (heartbeats not started — liveness stays the
// optimistic default, which is what forwarding tests want).
func newTestCluster(t *testing.T, n int, mod func(*core.Options)) []*clusterTestNode {
	t.Helper()
	nodes := make([]*clusterTestNode, n)
	for i := range nodes {
		srv, ts := testServerWith(t, mod)
		srv.Logger = nil
		nodes[i] = &clusterTestNode{id: fmt.Sprintf("n%d", i), srv: srv, ts: ts}
	}
	peers := make([]cluster.Peer, n)
	for i, tn := range nodes {
		peers[i] = cluster.Peer{ID: tn.id, Addr: tn.ts.URL}
	}
	for _, tn := range nodes {
		node, err := cluster.New(cluster.Config{
			NodeID:    tn.id,
			Peers:     peers,
			Engine:    tn.srv.env.Engine,
			Telemetry: tn.srv.env.Telemetry,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.env.AttachCluster(node)
	}
	return nodes
}

// idOwnedElsewhere generates task IDs until one is owned by a peer of n —
// submitting it through n exercises the forwarding path.
func idOwnedElsewhere(t *testing.T, n *cluster.Node, tenant, prefix string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if _, self := n.Owner(tenant, id); !self {
			return id
		}
	}
	t.Fatal("no peer-owned ID found; ring is degenerate")
	return ""
}

// virolabItemsFull serializes the virolab initial data with every property,
// so explicit-PDL submissions (which skip planning) run to completion.
func virolabItemsFull() []DataItemJSON {
	var items []DataItemJSON
	for _, d := range virolab.InitialData() {
		it := DataItemJSON{Name: d.Name, Classification: d.Classification()}
		for k, v := range d.Props {
			if k == workflow.PropClassification {
				continue
			}
			if num, ok := v.Num(); ok {
				if it.Props == nil {
					it.Props = map[string]float64{}
				}
				it.Props[k] = num
			} else {
				if it.TextProps == nil {
					it.TextProps = map[string]string{}
				}
				it.TextProps[k] = v.Str()
			}
		}
		items = append(items, it)
	}
	return items
}

// podSubmission is a fast explicit-PDL task (no planning involved).
func podSubmission(id string) TaskSubmission {
	return TaskSubmission{
		ID:          id,
		Name:        "cluster " + id,
		PDL:         `BEGIN, POD(D1, D7 -> D8), END`,
		InitialData: virolabItemsFull(),
		Goal:        []string{`G.Classification = "Density Map"`},
	}
}

func TestClusterEndpointStandalone(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Enabled bool `json:"enabled"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/cluster", &out); code != http.StatusOK {
		t.Fatalf("GET /api/v1/cluster = %d, want 200", code)
	}
	if out.Enabled {
		t.Error("standalone server claims to be clustered")
	}
}

func TestClusterEndpointMembership(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	var out struct {
		Enabled     bool   `json:"enabled"`
		NodeID      string `json:"nodeId"`
		RingVersion string `json:"ringVersion"`
		Members     []struct {
			ID    string `json:"id"`
			Alive bool   `json:"alive"`
			Self  bool   `json:"self"`
		} `json:"members"`
	}
	if code := getJSON(t, nodes[0].ts.URL+"/api/v1/cluster", &out); code != http.StatusOK {
		t.Fatalf("GET /api/v1/cluster = %d, want 200", code)
	}
	if !out.Enabled || out.NodeID != "n0" || out.RingVersion == "" {
		t.Fatalf("bad cluster view: %+v", out)
	}
	if len(out.Members) != 2 {
		t.Fatalf("got %d members, want 2", len(out.Members))
	}
	for _, m := range out.Members {
		if !m.Alive {
			t.Errorf("member %s not alive in a fresh cluster", m.ID)
		}
		if m.Self != (m.ID == "n0") {
			t.Errorf("member %s self flag wrong", m.ID)
		}
	}
	// Ring versions agree across nodes — the operator's drift check.
	var other struct {
		RingVersion string `json:"ringVersion"`
	}
	getJSON(t, nodes[1].ts.URL+"/api/v1/cluster", &other)
	if other.RingVersion != out.RingVersion {
		t.Errorf("ring version differs: %s vs %s", out.RingVersion, other.RingVersion)
	}
}

// TestClusterForwardsTaskLifecycle drives a task whose owner is the OTHER
// node entirely through one node: submit, poll, trace, and post-terminal
// cancel all forward transparently, and the response names the owner.
func TestClusterForwardsTaskLifecycle(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	entry := nodes[0]
	id := idOwnedElsewhere(t, entry.node(), "", "fwd")

	resp, body := doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/tasks", podSubmission(id))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded POST = %d (%v), want 202", resp.StatusCode, body)
	}
	if owner := resp.Header.Get("X-Gridenv-Owner"); owner != "n1" {
		t.Errorf("X-Gridenv-Owner = %q, want n1", owner)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/tasks/"+id {
		t.Errorf("forwarded Location = %q", loc)
	}

	// The task lives on the owner's engine, not the entry node's.
	if _, err := nodes[1].srv.env.Engine.Task(id); err != nil {
		t.Errorf("owner does not track forwarded task: %v", err)
	}
	if _, err := entry.srv.env.Engine.Task(id); err == nil {
		t.Error("entry node tracks a task it forwarded away")
	}

	final := pollTerminal(t, entry.ts.URL+"/api/v1/tasks/"+id)
	if status, _ := final["status"].(string); status != "succeeded" {
		t.Fatalf("forwarded task finished %q (%v)", status, final)
	}

	// Post-terminal DELETE forwards too and keeps the envelope code.
	resp, errBody := doRequest(t, http.MethodDelete, entry.ts.URL+"/api/v1/tasks/"+id, nil)
	if resp.StatusCode != http.StatusConflict || errCode(errBody) != "task_finished" {
		t.Errorf("forwarded post-terminal DELETE = %d code %q, want 409 task_finished",
			resp.StatusCode, errCode(errBody))
	}
	if owner := resp.Header.Get("X-Gridenv-Owner"); owner != "n1" {
		t.Errorf("DELETE X-Gridenv-Owner = %q, want n1", owner)
	}
}

// TestClusterForwardPreservesRequestID checks one logical request keeps
// one ID across nodes: a client-supplied X-Request-Id survives forwarding
// into both the response header and the error envelope.
func TestClusterForwardPreservesRequestID(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	entry := nodes[0]
	id := idOwnedElsewhere(t, entry.node(), "", "rid")

	req, err := http.NewRequest(http.MethodGet, entry.ts.URL+"/api/v1/tasks/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "rid-threaded-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown forwarded task = %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "rid-threaded-42" {
		t.Errorf("X-Request-Id = %q, want the client's rid-threaded-42", got)
	}
	var envl struct {
		RequestID string `json:"requestId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envl); err != nil {
		t.Fatal(err)
	}
	if envl.RequestID != "rid-threaded-42" {
		t.Errorf("envelope requestId = %q, want rid-threaded-42", envl.RequestID)
	}
}

// TestClusterForwardsRateLimitHeaders rejects a forwarded submission on
// the owner's tenant quota and checks the X-RateLimit-* trio and
// Retry-After survive the hop back.
func TestClusterForwardsRateLimitHeaders(t *testing.T) {
	nodes := newTestCluster(t, 2, func(o *core.Options) {
		o.TenantDefaults.RatePerSec = 0.0001
		o.TenantDefaults.Burst = 1
	})
	entry := nodes[0]
	const tenant = "limited"
	first := idOwnedElsewhere(t, entry.node(), tenant, "rl-a")
	sub := podSubmission(first)
	sub.Tenant = tenant
	resp, body := doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/tasks", sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d (%v), want 202", resp.StatusCode, body)
	}

	second := idOwnedElsewhere(t, entry.node(), tenant, "rl-b")
	sub = podSubmission(second)
	sub.Tenant = tenant
	resp, body = doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/tasks", sub)
	if resp.StatusCode != http.StatusTooManyRequests || errCode(body) != "tenant_rate_limited" {
		t.Fatalf("second submit = %d code %q, want 429 tenant_rate_limited", resp.StatusCode, errCode(body))
	}
	for _, h := range []string{"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset", "Retry-After"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("forwarded 429 is missing %s", h)
		}
	}
	if owner := resp.Header.Get("X-Gridenv-Owner"); owner == "" {
		t.Error("forwarded 429 does not name the owner")
	}
}

// TestClusterScatterGatherStats exercises /api/v1/stats?scope=cluster:
// per-node blocks for every member, summed totals, and partial marking
// when a peer is unreachable.
func TestClusterScatterGatherStats(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	var out ClusterStatsView
	if code := getJSON(t, nodes[0].ts.URL+"/api/v1/stats?scope=cluster", &out); code != http.StatusOK {
		t.Fatalf("scope=cluster stats = %d, want 200", code)
	}
	if out.Scope != "cluster" || out.Partial {
		t.Fatalf("bad aggregate header: %+v", out)
	}
	if len(out.Nodes) != 2 {
		t.Fatalf("aggregate covers %d nodes, want 2", len(out.Nodes))
	}
	wantWorkers := 0
	for _, sv := range out.Nodes {
		wantWorkers += sv.Engine.Workers
	}
	if out.Totals.Workers != wantWorkers || out.Totals.Workers == 0 {
		t.Errorf("totals.workers = %d, want %d (>0)", out.Totals.Workers, wantWorkers)
	}

	// Kill the peer's server: its leg fails and the aggregate says so.
	nodes[1].ts.Close()
	var degraded ClusterStatsView
	if code := getJSON(t, nodes[0].ts.URL+"/api/v1/stats?scope=cluster", &degraded); code != http.StatusOK {
		t.Fatalf("degraded scope=cluster stats = %d, want 200", code)
	}
	if !degraded.Partial {
		t.Error("aggregate with a dead peer not marked partial")
	}
	if len(degraded.Nodes) != 1 {
		t.Errorf("degraded aggregate covers %d nodes, want 1", len(degraded.Nodes))
	}
	failed := 0
	for _, leg := range degraded.Peers {
		if !leg.OK && leg.Error != "" {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("%d failed peer legs, want 1", failed)
	}
}

// TestClusterScatterGatherTenants checks the cluster-wide tenant merge:
// one tenant's tasks land on both nodes, and the merged row sums them.
func TestClusterScatterGatherTenants(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	entry := nodes[0]
	const tenant = "alpha"
	// One task per node: an ID this node owns and one a peer owns.
	var local string
	for i := 0; ; i++ {
		local = fmt.Sprintf("sg-local-%d", i)
		if _, self := entry.node().Owner(tenant, local); self {
			break
		}
	}
	remote := idOwnedElsewhere(t, entry.node(), tenant, "sg-remote")
	for _, id := range []string{local, remote} {
		sub := podSubmission(id)
		sub.Tenant = tenant
		if resp, body := doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/tasks", sub); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s = %d (%v)", id, resp.StatusCode, body)
		}
	}
	var out ClusterTenantsView
	if code := getJSON(t, entry.ts.URL+"/api/v1/tenants?scope=cluster", &out); code != http.StatusOK {
		t.Fatalf("scope=cluster tenants = %d, want 200", code)
	}
	if out.Partial {
		t.Fatal("healthy cluster marked partial")
	}
	for _, row := range out.Items {
		if row.Tenant != tenant {
			continue
		}
		if row.Accepted != 2 {
			t.Errorf("merged accepted = %d, want 2 (one per node)", row.Accepted)
		}
		return
	}
	t.Fatalf("tenant %s missing from the merged view: %+v", tenant, out.Items)
}

// TestClusterForwardsPlans checks the plan resource rides the same
// forwarding: a plan whose ID hashes to the peer is created there, and a
// service-assigned ID is synthesized node-uniquely before routing.
func TestClusterForwardsPlans(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	entry := nodes[0]
	id := idOwnedElsewhere(t, entry.node(), "", "plan")
	sub := PlanSubmission{ID: id, InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}}
	resp, body := doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/plans", sub)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
		t.Fatalf("forwarded plan POST = %d (%v)", resp.StatusCode, body)
	}
	if owner := resp.Header.Get("X-Gridenv-Owner"); owner != "n1" {
		t.Errorf("plan X-Gridenv-Owner = %q, want n1", owner)
	}
	if _, err := nodes[1].srv.env.Planner.Get(id); err != nil {
		t.Errorf("owner does not hold the forwarded plan: %v", err)
	}
	final := pollTerminal(t, entry.ts.URL+"/api/v1/plans/"+id)
	if status, _ := final["status"].(string); status != "succeeded" {
		t.Fatalf("forwarded plan finished %q", status)
	}

	// Empty ID: the entry node assigns a cluster-unique name first.
	resp, body = doRequest(t, http.MethodPost, entry.ts.URL+"/api/v1/plans",
		PlanSubmission{InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}, NoCache: true})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
		t.Fatalf("anonymous plan POST = %d (%v)", resp.StatusCode, body)
	}
	assigned, _ := body["id"].(string)
	if !strings.HasPrefix(assigned, "p-n0-") {
		t.Errorf("assigned plan ID %q does not carry the entry node's name", assigned)
	}
}

// TestReadyzClusterRebalancing: a node replaying a failed-over partition
// answers 503 cluster_rebalancing so load balancers hold traffic.
func TestReadyzClusterRebalancing(t *testing.T) {
	nodes := newTestCluster(t, 1, nil)
	ts := nodes[0].ts
	var out map[string]string
	if code := getJSON(t, ts.URL+"/readyz", &out); code != http.StatusOK {
		t.Fatalf("readyz = %d before rebalance, want 200", code)
	}
	leave := nodes[0].node().EnterRebalance()
	if code := getJSON(t, ts.URL+"/readyz", &out); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d during rebalance, want 503", code)
	}
	if out["reason"] != "cluster_rebalancing" {
		t.Errorf("readyz reason = %q, want cluster_rebalancing", out["reason"])
	}
	leave()
	if code := getJSON(t, ts.URL+"/readyz", &out); code != http.StatusOK {
		t.Fatalf("readyz = %d after rebalance, want 200", code)
	}
}

package httpapi

// GET /api/v1/events streams the telemetry event bus as Server-Sent Events:
// every task span and node-health transition, live, as it is recorded.
// Clients filter with ?task=<id> (exact match) and ?kind=<kind> (repeatable;
// any listed kind matches). The stream runs until the client disconnects;
// a comment keepalive goes out while the bus is quiet so idle proxies keep
// the connection open. The subscription is bounded — a client that stops
// reading loses events rather than stalling enactments (see the bus contract
// in internal/telemetry).
//
// Resume: each event's SSE id is its bus sequence number. A reconnecting
// client sends Last-Event-ID (the standard EventSource behavior) and the
// stream replays the retained events it missed before going live. The
// replay ring is bounded (telemetry.DefaultReplayCap); events that aged
// out of it are gone, and the stream says so with one "gap" event carrying
// the count of permanently missed events, so consumers know their view has
// a hole instead of silently losing it. Events published before the bus
// ever had a subscriber carry no sequence number and are outside the
// resume space entirely — a resuming client necessarily subscribed before
// anything it could have seen was published.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// keepaliveInterval is how often an idle event stream emits an SSE comment.
const keepaliveInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	tel := s.telemetry()
	if tel == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "no_telemetry", "telemetry registry disabled")
		return
	}
	q := r.URL.Query()
	taskFilter := q.Get("task")
	kindFilter := map[string]bool{}
	for _, k := range q["kind"] {
		kindFilter[k] = true
	}

	resume := false
	after := uint64(0)
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		parsed, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", "Last-Event-ID must be a sequence number: %v", err)
			return
		}
		resume, after = true, parsed
	}

	sub := tel.Subscribe(0)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	// The opening comment both primes proxies and guarantees the client's
	// request has returned only after the subscription is live, so events
	// caused by anything the client does next are never missed.
	fmt.Fprint(w, ": stream opened\n\n")
	flusher.Flush()

	emit := func(ev telemetry.Event) bool {
		if taskFilter != "" && ev.Task != taskFilter {
			return false
		}
		if len(kindFilter) > 0 && !kindFilter[ev.Kind] {
			return false
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
		return true
	}

	// Replay the gap since the client's Last-Event-ID (subscription first,
	// replay second: anything published in between arrives on the live
	// channel and is deduplicated by sequence number below).
	lastSeq := uint64(0)
	if resume {
		missed, missedCount := tel.EventsSince(after)
		if missedCount > 0 {
			fmt.Fprintf(w, "event: gap\ndata: {\"missed\": %d, \"after\": %d}\n\n", missedCount, after)
		}
		lastSeq = after
		for _, ev := range missed {
			emit(ev)
			lastSeq = ev.Seq
		}
		flusher.Flush()
	}

	keepalive := time.NewTicker(keepaliveInterval)
	defer keepalive.Stop()
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			if s.Logger != nil {
				s.Logger.Debug("event stream closed",
					slog.Int("sent", sent), slog.Uint64("dropped", sub.Dropped()))
			}
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case ev := <-sub.Events():
			if ev.Seq <= lastSeq {
				continue // already delivered during replay
			}
			lastSeq = ev.Seq
			if emit(ev) {
				flusher.Flush()
				sent++
			}
		}
	}
}

package httpapi

// GET /api/v1/events streams the telemetry event bus as Server-Sent Events:
// every task span and node-health transition, live, as it is recorded.
// Clients filter with ?task=<id> (exact match) and ?kind=<kind> (repeatable;
// any listed kind matches). The stream runs until the client disconnects;
// a comment keepalive goes out while the bus is quiet so idle proxies keep
// the connection open. The subscription is bounded — a client that stops
// reading loses events rather than stalling enactments (see the bus contract
// in internal/telemetry).

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// keepaliveInterval is how often an idle event stream emits an SSE comment.
const keepaliveInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	tel := s.telemetry()
	if tel == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "no_telemetry", "telemetry registry disabled")
		return
	}
	q := r.URL.Query()
	taskFilter := q.Get("task")
	kindFilter := map[string]bool{}
	for _, k := range q["kind"] {
		kindFilter[k] = true
	}

	sub := tel.Subscribe(0)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	// The opening comment both primes proxies and guarantees the client's
	// request has returned only after the subscription is live, so events
	// caused by anything the client does next are never missed.
	fmt.Fprint(w, ": stream opened\n\n")
	flusher.Flush()

	keepalive := time.NewTicker(keepaliveInterval)
	defer keepalive.Stop()
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			if s.Logger != nil {
				s.Logger.Debug("event stream closed",
					slog.Int("sent", sent), slog.Uint64("dropped", sub.Dropped()))
			}
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case ev := <-sub.Events():
			if taskFilter != "" && ev.Task != taskFilter {
				continue
			}
			if len(kindFilter) > 0 && !kindFilter[ev.Kind] {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			flusher.Flush()
			sent++
		}
	}
}

package httpapi

// The async-resource conformance sweep: /api/v1/plans and /api/v1/tasks
// promise one convention — POST answers 201/202 with a Location header,
// GET polls a status drawn from the shared lifecycle enum, DELETE cancels,
// and post-terminal DELETE conflicts with a resource-specific 409 code.
// This test drives both resources through the same checklist so the two
// surfaces cannot drift apart silently.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/virolab"
)

// lifecycleStatuses is the shared async-resource status enum.
var lifecycleStatuses = map[string]bool{
	"queued": true, "running": true, "succeeded": true, "failed": true, "cancelled": true,
}

func terminalStatus(s string) bool {
	return s == "succeeded" || s == "failed" || s == "cancelled"
}

// doRequest issues a method/path/body and returns the response with its
// decoded JSON body (as a generic map; nil out skips decoding).
func doRequest(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// pollTerminal polls GET url until the status field is terminal, checking
// every observed status stays inside the shared lifecycle enum.
func pollTerminal(t *testing.T, url string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := doRequest(t, http.MethodGet, url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d (%v)", url, resp.StatusCode, body)
		}
		status, _ := body["status"].(string)
		if !lifecycleStatuses[status] {
			t.Fatalf("GET %s: status %q outside the shared lifecycle enum", url, status)
		}
		if terminalStatus(status) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: still %q after deadline", url, status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func virolabItems() []DataItemJSON {
	var items []DataItemJSON
	for _, d := range virolab.InitialData() {
		items = append(items, DataItemJSON{Name: d.Name, Classification: d.Classification()})
	}
	return items
}

func TestAsyncResourceConformance(t *testing.T) {
	_, ts := testServer(t)

	type resource struct {
		name         string
		collection   string
		submit       any
		wantPostCode []int  // acceptable creation codes
		notFoundCode string // GET {collection}/ghost error code
		conflictCode string // DELETE after terminal error code
	}
	resources := []resource{
		{
			name:       "plans",
			collection: "/api/v1/plans",
			submit: PlanSubmission{
				ID:          "conf-plan",
				InitialData: virolabItems(),
				Goal:        []string{virolab.GoalCondition},
			},
			wantPostCode: []int{http.StatusAccepted, http.StatusCreated},
			notFoundCode: "plan_not_found",
			conflictCode: "plan_finished",
		},
		{
			name:       "tasks",
			collection: "/api/v1/tasks",
			submit: TaskSubmission{
				ID:          "conf-task",
				Name:        "conformance",
				InitialData: virolabItems(),
				Goal:        []string{virolab.GoalCondition},
			},
			wantPostCode: []int{http.StatusAccepted},
			notFoundCode: "not_found",
			conflictCode: "task_finished",
		},
	}

	for _, rc := range resources {
		t.Run(rc.name, func(t *testing.T) {
			// POST creates asynchronously: 202 (or 201 when the result already
			// exists) with a Location header naming the new resource.
			resp, body := doRequest(t, http.MethodPost, ts.URL+rc.collection, rc.submit)
			okCode := false
			for _, c := range rc.wantPostCode {
				okCode = okCode || resp.StatusCode == c
			}
			if !okCode {
				t.Fatalf("POST %s = %d (%v), want one of %v", rc.collection, resp.StatusCode, body, rc.wantPostCode)
			}
			loc := resp.Header.Get("Location")
			id, _ := body["id"].(string)
			if loc == "" || !strings.HasPrefix(loc, rc.collection+"/") || id == "" || loc != rc.collection+"/"+id {
				t.Fatalf("POST %s: Location %q / id %q do not agree", rc.collection, loc, id)
			}
			if status, _ := body["status"].(string); !lifecycleStatuses[status] {
				t.Fatalf("POST %s: status %q outside the shared lifecycle enum", rc.collection, status)
			}

			// GET polls through the shared lifecycle to a terminal status.
			final := pollTerminal(t, ts.URL+loc)
			if status, _ := final["status"].(string); status != "succeeded" {
				t.Fatalf("%s %s finished %q (%v), want succeeded", rc.name, id, status, final)
			}

			// DELETE after terminal conflicts with the resource's 409 code.
			resp, errBody := doRequest(t, http.MethodDelete, ts.URL+loc, nil)
			if resp.StatusCode != http.StatusConflict {
				t.Fatalf("DELETE %s after terminal = %d, want 409", loc, resp.StatusCode)
			}
			if code := errCode(errBody); code != rc.conflictCode {
				t.Errorf("DELETE %s: code %q, want %q", loc, code, rc.conflictCode)
			}

			// GET of an unknown resource answers 404 with the advertised code.
			resp, errBody = doRequest(t, http.MethodGet, ts.URL+rc.collection+"/ghost", nil)
			if resp.StatusCode != http.StatusNotFound || errCode(errBody) != rc.notFoundCode {
				t.Errorf("GET %s/ghost = %d code %q, want 404 %q",
					rc.collection, resp.StatusCode, errCode(errBody), rc.notFoundCode)
			}
		})
	}

	// Constraint validation rides the same conventions: malformed budget/
	// deadline constraints answer 400 with the bad_constraints envelope (the
	// client's X-Request-Id threaded through header and body), and accepted
	// constraints are echoed in the task view from admission to terminal.
	t.Run("task-constraints", func(t *testing.T) {
		badSubs := []TaskSubmission{
			{ID: "conf-neg-budget", InitialData: virolabItems(),
				Goal: []string{virolab.GoalCondition}, Budget: -5},
			{ID: "conf-neg-deadline", InitialData: virolabItems(),
				Goal: []string{virolab.GoalCondition}, Deadline: -1},
			{ID: "conf-hard-no-deadline", InitialData: virolabItems(),
				Goal: []string{virolab.GoalCondition}, HardDeadline: true},
		}
		for _, sub := range badSubs {
			data, err := json.Marshal(sub)
			if err != nil {
				t.Fatal(err)
			}
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/tasks", bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			const rid = "conf-constraints-rid"
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Request-Id", rid)
			raw, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var body map[string]any
			_ = json.NewDecoder(raw.Body).Decode(&body)
			raw.Body.Close()
			if raw.StatusCode != http.StatusBadRequest || errCode(body) != "bad_constraints" {
				t.Fatalf("POST %s = %d code %q, want 400 bad_constraints (%v)",
					sub.ID, raw.StatusCode, errCode(body), body)
			}
			env, _ := body["error"].(map[string]any)
			if msg, _ := env["message"].(string); msg == "" {
				t.Errorf("POST %s: bad_constraints envelope has no message", sub.ID)
			}
			if got := raw.Header.Get("X-Request-Id"); got != rid {
				t.Errorf("POST %s: X-Request-Id header %q, want %q", sub.ID, got, rid)
			}
			if got, _ := body["requestId"].(string); got != rid {
				t.Errorf("POST %s: envelope requestId %q, want %q", sub.ID, got, rid)
			}
		}

		// A well-constrained task is accepted, echoes its constraints while
		// queued/running, and reports spend + deadline slack once terminal.
		sub := TaskSubmission{
			ID: "conf-constrained", Name: "conformance constrained",
			InitialData: virolabItems(), Goal: []string{virolab.GoalCondition},
			Budget: 10000, Deadline: 50000, HardDeadline: true,
		}
		resp, body := doRequest(t, http.MethodPost, ts.URL+"/api/v1/tasks", sub)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("constrained POST = %d (%v), want 202", resp.StatusCode, body)
		}
		_, view := doRequest(t, http.MethodGet, ts.URL+"/api/v1/tasks/conf-constrained", nil)
		if got, _ := view["budget"].(float64); got != sub.Budget {
			t.Errorf("task view budget = %v, want %v", view["budget"], sub.Budget)
		}
		if got, _ := view["deadlineSec"].(float64); got != sub.Deadline {
			t.Errorf("task view deadlineSec = %v, want %v", view["deadlineSec"], sub.Deadline)
		}
		if hard, _ := view["hardDeadline"].(bool); !hard {
			t.Errorf("task view hardDeadline = %v, want true", view["hardDeadline"])
		}
		final := pollTerminal(t, ts.URL+"/api/v1/tasks/conf-constrained")
		if status, _ := final["status"].(string); status != "succeeded" {
			t.Fatalf("constrained task finished %q (%v), want succeeded", status, final)
		}
		if got, _ := final["budget"].(float64); got != sub.Budget {
			t.Errorf("terminal view budget = %v, want %v", final["budget"], sub.Budget)
		}
		spent, ok := final["spent"].(float64)
		if !ok || spent <= 0 {
			t.Errorf("terminal view spent = %v, want > 0", final["spent"])
		}
		if cost, _ := final["totalCost"].(float64); cost != spent {
			t.Errorf("spent %v disagrees with totalCost %v", spent, final["totalCost"])
		}
		slack, ok := final["deadlineSlackSec"].(float64)
		if !ok {
			t.Errorf("terminal view has no deadlineSlackSec: %v", final)
		} else if slack <= 0 {
			t.Errorf("deadlineSlackSec = %v, want > 0 for a met deadline", slack)
		}
		if reason, present := final["reason"]; present {
			t.Errorf("succeeded task carries terminal reason %v", reason)
		}
	})
}

// TestForwardedRequestConformance re-runs the async-resource checklist
// through a cluster node that does NOT own the resource, so every request
// crosses the forwarding hop. The contract: a forwarded exchange is
// indistinguishable from a local one — same status codes, Location
// agreement, lifecycle enum, error-envelope codes, and the client's
// X-Request-Id threaded through both the response header and the envelope
// — except that X-Gridenv-Owner names the node that actually handled it.
func TestForwardedRequestConformance(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	entry := nodes[0]

	type resource struct {
		name         string
		collection   string
		submit       func(id string) any
		notFoundCode string
		conflictCode string
	}
	resources := []resource{
		{
			name:       "tasks",
			collection: "/api/v1/tasks",
			submit: func(id string) any {
				sub := podSubmission(id)
				return sub
			},
			notFoundCode: "not_found",
			conflictCode: "task_finished",
		},
		{
			name:       "plans",
			collection: "/api/v1/plans",
			submit: func(id string) any {
				return PlanSubmission{ID: id, InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}, NoCache: true}
			},
			notFoundCode: "plan_not_found",
			conflictCode: "plan_finished",
		},
	}

	for _, rc := range resources {
		t.Run(rc.name, func(t *testing.T) {
			id := idOwnedElsewhere(t, entry.node(), "", "conf-fwd-"+rc.name)

			// Forwarded POST keeps the creation convention and names the owner.
			resp, body := doRequest(t, http.MethodPost, entry.ts.URL+rc.collection, rc.submit(id))
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
				t.Fatalf("forwarded POST %s = %d (%v)", rc.collection, resp.StatusCode, body)
			}
			if loc := resp.Header.Get("Location"); loc != rc.collection+"/"+id {
				t.Fatalf("forwarded POST %s: Location %q, want %s/%s", rc.collection, loc, rc.collection, id)
			}
			if owner := resp.Header.Get("X-Gridenv-Owner"); owner != nodes[1].id {
				t.Errorf("forwarded POST %s: X-Gridenv-Owner %q, want %s", rc.collection, owner, nodes[1].id)
			}
			if rid := resp.Header.Get("X-Request-Id"); rid == "" {
				t.Errorf("forwarded POST %s carries no X-Request-Id", rc.collection)
			}
			if status, _ := body["status"].(string); !lifecycleStatuses[status] {
				t.Errorf("forwarded POST %s: status %q outside the lifecycle enum", rc.collection, status)
			}

			// Forwarded polling walks the same lifecycle to success.
			final := pollTerminal(t, entry.ts.URL+rc.collection+"/"+id)
			if status, _ := final["status"].(string); status != "succeeded" {
				t.Fatalf("forwarded %s %s finished %q (%v)", rc.name, id, status, final)
			}

			// Forwarded post-terminal DELETE keeps the resource's 409 code.
			resp, errBody := doRequest(t, http.MethodDelete, entry.ts.URL+rc.collection+"/"+id, nil)
			if resp.StatusCode != http.StatusConflict || errCode(errBody) != rc.conflictCode {
				t.Errorf("forwarded DELETE %s = %d code %q, want 409 %q",
					rc.collection, resp.StatusCode, errCode(errBody), rc.conflictCode)
			}

			// A client-supplied X-Request-Id survives the hop into a forwarded
			// error envelope: header and body agree on the caller's ID.
			ghost := idOwnedElsewhere(t, entry.node(), "", "conf-ghost-"+rc.name)
			req, err := http.NewRequest(http.MethodGet, entry.ts.URL+rc.collection+"/"+ghost, nil)
			if err != nil {
				t.Fatal(err)
			}
			const rid = "conf-rid-7"
			req.Header.Set("X-Request-Id", rid)
			raw, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var ghostBody map[string]any
			_ = json.NewDecoder(raw.Body).Decode(&ghostBody)
			raw.Body.Close()
			if raw.StatusCode != http.StatusNotFound || errCode(ghostBody) != rc.notFoundCode {
				t.Errorf("forwarded GET ghost = %d code %q, want 404 %q", raw.StatusCode, errCode(ghostBody), rc.notFoundCode)
			}
			if got := raw.Header.Get("X-Request-Id"); got != rid {
				t.Errorf("forwarded error lost the client request ID: header %q, want %q", got, rid)
			}
			if got, _ := ghostBody["requestId"].(string); got != rid {
				t.Errorf("forwarded envelope requestId = %q, want %q", got, rid)
			}
		})
	}
}

// errCode digs the code out of the shared error envelope.
func errCode(body map[string]any) string {
	e, _ := body["error"].(map[string]any)
	code, _ := e["code"].(string)
	return code
}

// TestPlanResourceLifecycle exercises the plan-specific parts of the
// convention: validation errors, the synchronous cache hit (201 Created),
// and cancellation of in-flight plans.
func TestPlanResourceLifecycle(t *testing.T) {
	_, ts := testServer(t)

	// Missing goal is a 400 plan_invalid.
	resp, body := doRequest(t, http.MethodPost, ts.URL+"/api/v1/plans", PlanSubmission{InitialData: virolabItems()})
	if resp.StatusCode != http.StatusBadRequest || errCode(body) != "plan_invalid" {
		t.Fatalf("goalless POST = %d code %q, want 400 plan_invalid", resp.StatusCode, errCode(body))
	}

	// A cold plan computes asynchronously.
	sub := PlanSubmission{InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}}
	resp, body = doRequest(t, http.MethodPost, ts.URL+"/api/v1/plans", sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold POST = %d (%v), want 202", resp.StatusCode, body)
	}
	first := pollTerminal(t, ts.URL+resp.Header.Get("Location"))
	if status, _ := first["status"].(string); status != "succeeded" {
		t.Fatalf("cold plan finished %q: %v", status, first)
	}
	pdl, _ := first["pdl"].(string)
	if pdl == "" {
		t.Fatal("succeeded plan carries no PDL")
	}

	// The identical case answers synchronously from the plan cache: 201
	// Created, cacheHit set, same plan bytes.
	resp, body = doRequest(t, http.MethodPost, ts.URL+"/api/v1/plans", sub)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("warm POST = %d (%v), want 201", resp.StatusCode, body)
	}
	if hit, _ := body["cacheHit"].(bool); !hit {
		t.Errorf("warm POST not marked cacheHit: %v", body)
	}
	if got, _ := body["pdl"].(string); got != pdl {
		t.Errorf("warm plan differs from cold plan:\n%s\nvs\n%s", got, pdl)
	}

	// Duplicate IDs conflict.
	resp, body = doRequest(t, http.MethodPost, ts.URL+"/api/v1/plans",
		PlanSubmission{ID: "dup", InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}, NoCache: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dup POST = %d, want 202", resp.StatusCode)
	}
	resp, body = doRequest(t, http.MethodPost, ts.URL+"/api/v1/plans",
		PlanSubmission{ID: "dup", InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}, NoCache: true})
	if resp.StatusCode != http.StatusConflict || errCode(body) != "duplicate_plan" {
		t.Fatalf("duplicate POST = %d code %q, want 409 duplicate_plan", resp.StatusCode, errCode(body))
	}

	// Cancel a fresh plan: 200 when it was still queued, 202 while a running
	// one unwinds; either way it settles as cancelled and a second DELETE
	// answers 409 plan_cancelled.
	resp, _ = doRequest(t, http.MethodPost, ts.URL+"/api/v1/plans",
		PlanSubmission{ID: "doomed", InitialData: virolabItems(), Goal: []string{virolab.GoalCondition}, NoCache: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("doomed POST = %d, want 202", resp.StatusCode)
	}
	resp, body = doRequest(t, http.MethodDelete, ts.URL+"/api/v1/plans/doomed", nil)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE doomed = %d (%v), want 200 or 202", resp.StatusCode, body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := doRequest(t, http.MethodGet, ts.URL+"/api/v1/plans/doomed", nil)
		if status, _ := st["status"].(string); status == "cancelled" {
			break
		} else if terminalStatus(status) {
			t.Fatalf("doomed plan settled %q, want cancelled", status)
		}
		if time.Now().After(deadline) {
			t.Fatal("doomed plan never settled cancelled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, body = doRequest(t, http.MethodDelete, ts.URL+"/api/v1/plans/doomed", nil)
	if resp.StatusCode != http.StatusConflict || errCode(body) != "plan_cancelled" {
		t.Fatalf("second DELETE = %d code %q, want 409 plan_cancelled", resp.StatusCode, errCode(body))
	}

	// The plan listing pages the handles in submission order.
	var listing struct {
		Items []PlanView `json:"items"`
		Total int        `json:"total"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/plans", &listing); code != 200 {
		t.Fatalf("plan list status %d", code)
	}
	if listing.Total < 3 || len(listing.Items) != listing.Total {
		t.Fatalf("plan list = %+v", listing)
	}

	// The stats rollup carries the planner block.
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/api/v1/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	pl, ok := stats["planner"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing planner block: %v", stats)
	}
	if hits, _ := pl["cacheHits"].(float64); hits < 1 {
		t.Errorf("planner stats cacheHits = %v, want >= 1 (%v)", pl["cacheHits"], pl)
	}
}

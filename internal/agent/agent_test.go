package agent

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandler replies to every request with its own content.
func echoHandler() Handler {
	return HandlerFunc(func(ctx *Context, msg Message) {
		if msg.Performative == Request {
			_ = ctx.Reply(msg, Inform, msg.Content)
		}
	})
}

func TestRegisterAndCall(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("echo", echoHandler())
	caller := p.MustRegister("caller", HandlerFunc(func(*Context, Message) {}))

	reply, err := caller.Call("echo", "test", "hello", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != Inform || reply.Content != "hello" {
		t.Errorf("reply = %+v", reply)
	}
	if reply.Sender != "echo" || reply.Receiver != "caller" {
		t.Errorf("routing = %s -> %s", reply.Sender, reply.Receiver)
	}
}

func TestAsyncSend(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	got := make(chan Message, 1)
	p.MustRegister("sink", HandlerFunc(func(_ *Context, msg Message) { got <- msg }))
	sender := p.MustRegister("sender", HandlerFunc(func(*Context, Message) {}))

	if err := sender.Send("sink", Inform, "news", 42); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg.Content != 42 || msg.Performative != Inform || msg.Ontology != "news" {
			t.Errorf("msg = %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestUnknownAgent(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	c := p.MustRegister("a", HandlerFunc(func(*Context, Message) {}))
	if err := c.Send("ghost", Inform, "", nil); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("Send to ghost = %v", err)
	}
	if _, err := c.Call("ghost", "", nil, time.Second); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("Call to ghost = %v", err)
	}
}

func TestDuplicateAndEmptyNames(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("a", echoHandler())
	if _, err := p.Register("a", echoHandler()); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := p.Register("", echoHandler()); err == nil {
		t.Error("empty name accepted")
	}
}

func TestCallTimeout(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	block := make(chan struct{})
	p.MustRegister("slow", HandlerFunc(func(ctx *Context, msg Message) {
		<-block
		_ = ctx.Reply(msg, Inform, "late")
	}))
	c := p.MustRegister("c", HandlerFunc(func(*Context, Message) {}))
	_, err := c.Call("slow", "", nil, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
	close(block)
}

func TestNoReplyYieldsFailure(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("mute", HandlerFunc(func(*Context, Message) {}))
	c := p.MustRegister("c", HandlerFunc(func(*Context, Message) {}))
	reply, err := c.Call("mute", "", nil, time.Second)
	if !errors.Is(err, ErrNoReply) {
		t.Errorf("err = %v, want ErrNoReply", err)
	}
	if reply.Performative != Failure {
		t.Errorf("performative = %v, want Failure", reply.Performative)
	}
}

func TestRefuseAndFailureReplies(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("picky", HandlerFunc(func(ctx *Context, msg Message) {
		_ = ctx.Reply(msg, Refuse, "not today")
	}))
	c := p.MustRegister("c", HandlerFunc(func(*Context, Message) {}))
	reply, err := c.Call("picky", "", nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != Refuse || reply.Content != "not today" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestInOrderDelivery(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	const n = 500
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	p.MustRegister("sink", HandlerFunc(func(_ *Context, msg Message) {
		mu.Lock()
		got = append(got, msg.Content.(int))
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	}))
	s := p.MustRegister("s", HandlerFunc(func(*Context, Message) {}))
	for i := 0; i < n; i++ {
		if err := s.Send("sink", Inform, "", i); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestChainedCalls(t *testing.T) {
	// coordination -> planning -> information, mirroring Figure 2/3 nesting.
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("information", HandlerFunc(func(ctx *Context, msg Message) {
		_ = ctx.Reply(msg, Inform, "brokerage-1")
	}))
	p.MustRegister("planning", HandlerFunc(func(ctx *Context, msg Message) {
		r, err := ctx.Call("information", "lookup", "brokerage?", time.Second)
		if err != nil {
			_ = ctx.Reply(msg, Failure, err)
			return
		}
		_ = ctx.Reply(msg, Inform, "plan-via-"+r.Content.(string))
	}))
	c := p.MustRegister("coordination", HandlerFunc(func(*Context, Message) {}))
	reply, err := c.Call("planning", "plan", "task", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Content != "plan-via-brokerage-1" {
		t.Errorf("content = %v", reply.Content)
	}
}

func TestDeregister(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	var handled atomic.Int32
	p.MustRegister("x", HandlerFunc(func(*Context, Message) { handled.Add(1) }))
	c := p.MustRegister("c", HandlerFunc(func(*Context, Message) {}))
	_ = c.Send("x", Inform, "", nil)
	if err := p.Deregister("x"); err != nil {
		t.Fatal(err)
	}
	if handled.Load() != 1 {
		t.Errorf("mailbox not drained before stop: handled=%d", handled.Load())
	}
	if err := p.Deregister("x"); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("second deregister = %v", err)
	}
	if p.Has("x") {
		t.Error("Has(x) after deregister")
	}
}

func TestAgentsListingAndShutdown(t *testing.T) {
	p := NewPlatform()
	p.MustRegister("b", echoHandler())
	p.MustRegister("a", echoHandler())
	names := p.Agents()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Agents = %v", names)
	}
	p.Shutdown()
	p.Shutdown() // idempotent
	if len(p.Agents()) != 0 {
		t.Error("agents survive shutdown")
	}
	if _, err := p.Register("late", echoHandler()); !errors.Is(err, ErrStopped) {
		t.Errorf("register after shutdown = %v", err)
	}
	c := &Context{platform: p, self: "ghost"}
	if err := c.Send("a", Inform, "", nil); !errors.Is(err, ErrStopped) {
		t.Errorf("send after shutdown = %v", err)
	}
}

func TestTraceSeesRequestAndReply(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	var mu sync.Mutex
	var seen []string
	p.SetTrace(func(m Message) {
		mu.Lock()
		seen = append(seen, m.Sender+"->"+m.Receiver+":"+m.Performative.String())
		mu.Unlock()
	})
	p.MustRegister("echo", echoHandler())
	c := p.MustRegister("c", HandlerFunc(func(*Context, Message) {}))
	if _, err := c.Call("echo", "t", "x", time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(seen, " ")
	if !strings.Contains(joined, "c->echo:request") || !strings.Contains(joined, "echo->c:inform") {
		t.Errorf("trace = %v", seen)
	}
}

func TestContextAccessors(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	c := p.MustRegister("me", echoHandler())
	if c.Name() != "me" || c.Platform() != p {
		t.Error("accessors broken")
	}
}

func TestPerformativeStrings(t *testing.T) {
	for _, perf := range []Performative{Request, Inform, Agree, Refuse, Failure, QueryRef, Subscribe, Cancel, Performative(99)} {
		if perf.String() == "" {
			t.Errorf("Performative(%d).String() empty", perf)
		}
	}
}

func TestConcurrentCallers(t *testing.T) {
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("echo", echoHandler())
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		name := "caller" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		c := p.MustRegister(name, HandlerFunc(func(*Context, Message) {}))
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				reply, err := c.Call("echo", "t", i*1000+j, time.Second)
				if err != nil {
					errs <- err
					return
				}
				if reply.Content != i*1000+j {
					errs <- errors.New("cross-talk between conversations")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func BenchmarkCallRoundTrip(b *testing.B) {
	p := NewPlatform()
	defer p.Shutdown()
	p.MustRegister("echo", echoHandler())
	c := p.MustRegister("c", HandlerFunc(func(*Context, Message) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", "bench", i, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// Package agent is an in-process multi-agent platform standing in for the
// Jade framework the paper builds on. Agents are named mailboxes served by
// one goroutine each; they exchange ACL-style messages (performative +
// content) asynchronously, with a synchronous request/reply convenience for
// the service interactions of Figures 2 and 3.
//
// The platform is deliberately small: a registry (white pages), reliable
// in-order point-to-point delivery, and conversation tracking. Yellow-page
// service discovery is itself an agent (the information service in package
// services), matching the paper's architecture where all end-user services
// and core services register their offerings with the information service.
package agent

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Performative classifies a message, following the FIPA ACL set the paper's
// Jade agents use.
type Performative int

// The performatives used by the core services.
const (
	Request Performative = iota
	Inform
	Agree
	Refuse
	Failure
	QueryRef
	Subscribe
	Cancel
)

func (p Performative) String() string {
	switch p {
	case Request:
		return "request"
	case Inform:
		return "inform"
	case Agree:
		return "agree"
	case Refuse:
		return "refuse"
	case Failure:
		return "failure"
	case QueryRef:
		return "query-ref"
	case Subscribe:
		return "subscribe"
	case Cancel:
		return "cancel"
	}
	return fmt.Sprintf("Performative(%d)", int(p))
}

// Message is one ACL message.
type Message struct {
	ID             uint64
	ConversationID uint64
	Performative   Performative
	Sender         string
	Receiver       string
	// Ontology names the vocabulary of Content (e.g. "grid-planning").
	Ontology string
	// Content is the payload; services define typed structs.
	Content any

	replyCh chan Message // set for synchronous calls
	// deferred, when set true via DeferReply, tells the agent runtime the
	// handler hands the reply to another goroutine, suppressing the
	// terminated-without-replying fallback.
	deferred *atomic.Bool
}

// DeferReply marks a synchronous request as answered asynchronously: the
// handler returns without replying and some other goroutine calls Reply
// later. Must be called on the handler goroutine, before HandleMessage
// returns. A no-op for messages that are not synchronous calls.
func (m Message) DeferReply() {
	if m.deferred != nil {
		m.deferred.Store(true)
	}
}

// Errors returned by platform operations.
var (
	ErrUnknownAgent = errors.New("agent: unknown agent")
	ErrStopped      = errors.New("agent: platform stopped")
	ErrTimeout      = errors.New("agent: call timed out")
	ErrNoReply      = errors.New("agent: agent terminated without replying")
)

// Handler is the behaviour of an agent: it receives each incoming message
// with a Context for sending and replying. A handler runs on the agent's
// single goroutine; blocking in it delays only that agent's mailbox.
type Handler interface {
	HandleMessage(ctx *Context, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Context, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(ctx *Context, msg Message) { f(ctx, msg) }

// Platform hosts agents and routes messages between them.
type Platform struct {
	mu      sync.RWMutex
	agents  map[string]*runtime
	stopped bool

	nextID     atomic.Uint64
	nextConv   atomic.Uint64
	trace      func(Message)
	mailboxCap int

	wg sync.WaitGroup
}

type runtime struct {
	name    string
	mailbox chan Message
	ctx     *Context
	done    chan struct{}
}

// NewPlatform returns an empty platform. Mailboxes are buffered (capacity
// 256) so bursts between services do not deadlock.
func NewPlatform() *Platform {
	return &Platform{agents: make(map[string]*runtime), mailboxCap: 256}
}

// SetTrace installs a callback invoked for every delivered message, used by
// the figure-flow tests to assert the message sequences of Figures 2 and 3.
func (p *Platform) SetTrace(fn func(Message)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = fn
}

// Register starts an agent with the given unique name and behaviour.
func (p *Platform) Register(name string, h Handler) (*Context, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return nil, ErrStopped
	}
	if name == "" {
		return nil, fmt.Errorf("agent: empty agent name")
	}
	if _, dup := p.agents[name]; dup {
		return nil, fmt.Errorf("agent: agent %q already registered", name)
	}
	rt := &runtime{
		name:    name,
		mailbox: make(chan Message, p.mailboxCap),
		done:    make(chan struct{}),
	}
	rt.ctx = &Context{platform: p, self: name}
	p.agents[name] = rt
	p.wg.Add(1)
	go p.serve(rt, h)
	return rt.ctx, nil
}

// MustRegister is Register that panics on error, for wiring fixed service
// topologies.
func (p *Platform) MustRegister(name string, h Handler) *Context {
	ctx, err := p.Register(name, h)
	if err != nil {
		panic(err)
	}
	return ctx
}

func (p *Platform) serve(rt *runtime, h Handler) {
	defer p.wg.Done()
	defer close(rt.done)
	for msg := range rt.mailbox {
		h.HandleMessage(rt.ctx, msg)
		if msg.replyCh != nil && !msg.deferred.Load() {
			// If the handler never replied (and did not defer the reply to
			// another goroutine), release the caller.
			select {
			case msg.replyCh <- Message{Performative: Failure, Sender: rt.name, Content: ErrNoReply}:
			default:
			}
		}
	}
}

// Deregister stops the named agent, draining its mailbox first.
func (p *Platform) Deregister(name string) error {
	p.mu.Lock()
	rt, ok := p.agents[name]
	if ok {
		delete(p.agents, name)
	}
	p.mu.Unlock()
	if !ok {
		return ErrUnknownAgent
	}
	close(rt.mailbox)
	<-rt.done
	return nil
}

// Agents returns the registered agent names, sorted.
func (p *Platform) Agents() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.agents))
	for n := range p.agents {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Has reports whether the named agent is registered.
func (p *Platform) Has(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.agents[name]
	return ok
}

// Shutdown stops every agent and waits for their goroutines to finish.
func (p *Platform) Shutdown() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	agents := p.agents
	p.agents = make(map[string]*runtime)
	p.mu.Unlock()
	for _, rt := range agents {
		close(rt.mailbox)
	}
	p.wg.Wait()
}

// deliver routes a message to its receiver's mailbox.
func (p *Platform) deliver(msg Message) error {
	p.mu.RLock()
	rt, ok := p.agents[msg.Receiver]
	trace := p.trace
	stopped := p.stopped
	p.mu.RUnlock()
	if stopped {
		return ErrStopped
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAgent, msg.Receiver)
	}
	if trace != nil {
		trace(msg)
	}
	rt.mailbox <- msg
	return nil
}

// Context is an agent's handle on the platform.
type Context struct {
	platform *Platform
	self     string
}

// Name returns the agent's own name.
func (c *Context) Name() string { return c.self }

// Platform returns the hosting platform.
func (c *Context) Platform() *Platform { return c.platform }

// Send delivers an asynchronous message to the named agent.
func (c *Context) Send(receiver string, perf Performative, ontology string, content any) error {
	msg := Message{
		ID:             c.platform.nextID.Add(1),
		ConversationID: c.platform.nextConv.Add(1),
		Performative:   perf,
		Sender:         c.self,
		Receiver:       receiver,
		Ontology:       ontology,
		Content:        content,
	}
	return c.platform.deliver(msg)
}

// Call sends a Request and blocks for the reply, up to timeout (zero means
// 10 seconds). The reply is whatever message the receiver passes to Reply.
func (c *Context) Call(receiver, ontology string, content any, timeout time.Duration) (Message, error) {
	return c.CallContext(context.Background(), receiver, ontology, content, timeout)
}

// CallContext is Call with cancellation: it additionally aborts the wait
// when ctx is done, returning ctx's error. The request is still delivered
// (the receiver may process it), only the caller stops waiting — the
// at-most-once reply is dropped on the floor, as with a timeout. A nil ctx
// behaves like Call.
func (c *Context) CallContext(ctx context.Context, receiver, ontology string, content any, timeout time.Duration) (Message, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	replyCh := make(chan Message, 1)
	msg := Message{
		deferred:       new(atomic.Bool),
		ID:             c.platform.nextID.Add(1),
		ConversationID: c.platform.nextConv.Add(1),
		Performative:   Request,
		Sender:         c.self,
		Receiver:       receiver,
		Ontology:       ontology,
		Content:        content,
		replyCh:        replyCh,
	}
	if err := c.platform.deliver(msg); err != nil {
		return Message{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-replyCh:
		if reply.Performative == Failure {
			if err, ok := reply.Content.(error); ok {
				return reply, err
			}
		}
		return reply, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	case <-timer.C:
		return Message{}, fmt.Errorf("%w: %s -> %s (%s)", ErrTimeout, c.self, receiver, ontology)
	}
}

// Reply answers a message received by this agent. For synchronous calls the
// reply goes straight to the waiting caller; otherwise it is delivered as a
// normal message.
func (c *Context) Reply(to Message, perf Performative, content any) error {
	reply := Message{
		ID:             c.platform.nextID.Add(1),
		ConversationID: to.ConversationID,
		Performative:   perf,
		Sender:         c.self,
		Receiver:       to.Sender,
		Ontology:       to.Ontology,
		Content:        content,
	}
	if to.replyCh != nil {
		p := c.platform
		p.mu.RLock()
		trace := p.trace
		p.mu.RUnlock()
		if trace != nil {
			trace(reply)
		}
		select {
		case to.replyCh <- reply:
			return nil
		default:
			return fmt.Errorf("agent: duplicate reply to conversation %d", to.ConversationID)
		}
	}
	return c.platform.deliver(reply)
}

package fairq

import "math"

// TokenBucket is a classic token-bucket rate limiter with an explicit clock:
// every method takes the current time as seconds since an arbitrary epoch,
// so callers decide whether that is wall time (the engine) or virtual time
// (the load simulator). Not concurrency-safe; callers provide locking.
type TokenBucket struct {
	rate   float64 // tokens added per second
	burst  float64
	tokens float64
	last   float64
}

// NewTokenBucket builds a bucket that refills at rate tokens per second up
// to burst. A non-positive burst defaults to max(1, ceil(rate)). The bucket
// starts full. Returns nil when rate is non-positive (no limiting).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &TokenBucket{rate: rate, burst: b, tokens: b}
}

func (b *TokenBucket) advance(now float64) {
	if now > b.last {
		b.tokens = math.Min(b.burst, b.tokens+(now-b.last)*b.rate)
		b.last = now
	}
}

// Allow consumes one token if available and reports whether it did.
func (b *TokenBucket) Allow(now float64) bool {
	b.advance(now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Limit returns the bucket's burst capacity in whole tokens.
func (b *TokenBucket) Limit() int { return int(b.burst) }

// Remaining returns the number of whole tokens available at now, without
// consuming any.
func (b *TokenBucket) Remaining(now float64) int {
	b.advance(now)
	return int(b.tokens)
}

// RetryAfter returns how many seconds until the next token is available at
// now; zero when one is available already.
func (b *TokenBucket) RetryAfter(now float64) float64 {
	b.advance(now)
	if b.tokens >= 1 {
		return 0
	}
	return (1 - b.tokens) / b.rate
}

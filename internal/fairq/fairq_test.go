package fairq

import (
	"math"
	"testing"
)

func weights(m map[string]int) func(string) int {
	return func(t string) int { return m[t] }
}

func drainOrder(q *Queue[string], eligible func(string) bool) []string {
	var out []string
	for {
		it, ok := q.Pop(eligible)
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestSingleTenantFIFO(t *testing.T) {
	q := New[int](3, nil)
	for i := 0; i < 10; i++ {
		q.Push(1, "", i)
	}
	for i := 0; i < 10; i++ {
		got, ok := q.Pop(nil)
		if !ok || got != i {
			t.Fatalf("pop %d: got %d ok=%v", i, got, ok)
		}
	}
	if _, ok := q.Pop(nil); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

func TestClassPriority(t *testing.T) {
	q := New[string](3, nil)
	q.Push(2, "a", "low")
	q.Push(0, "a", "high")
	q.Push(1, "a", "normal")
	got := drainOrder(q, nil)
	want := []string{"high", "normal", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestWeightedDrainShares(t *testing.T) {
	// Tenants a:3, b:1, c:1 all backlogged: any window of 5 consecutive
	// pops must contain 3 a's, 1 b, 1 c.
	q := New[string](1, weights(map[string]int{"a": 3, "b": 1, "c": 1}))
	for i := 0; i < 30; i++ {
		q.Push(0, "a", "a")
	}
	for i := 0; i < 10; i++ {
		q.Push(0, "b", "b")
		q.Push(0, "c", "c")
	}
	order := drainOrder(q, nil)
	if len(order) != 50 {
		t.Fatalf("drained %d items, want 50", len(order))
	}
	counts := map[string]int{}
	for i, tenant := range order[:50] {
		counts[tenant]++
		if (i+1)%5 == 0 {
			if counts["a"] != 3 || counts["b"] != 1 || counts["c"] != 1 {
				t.Fatalf("window ending at %d: counts %v, want a:3 b:1 c:1", i, counts)
			}
			counts = map[string]int{}
		}
	}
}

func TestEqualWeightsRoundRobin(t *testing.T) {
	q := New[string](1, nil)
	for i := 0; i < 3; i++ {
		q.Push(0, "x", "x")
		q.Push(0, "y", "y")
	}
	got := drainOrder(q, nil)
	want := []string{"x", "y", "x", "y", "x", "y"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestIneligibleTenantSkipped(t *testing.T) {
	q := New[string](1, nil)
	q.Push(0, "busy", "busy-1")
	q.Push(0, "idle", "idle-1")
	q.Push(0, "busy", "busy-2")

	eligible := func(tenant string) bool { return tenant != "busy" }
	it, ok := q.Pop(eligible)
	if !ok || it != "idle-1" {
		t.Fatalf("pop skipping busy: got %q ok=%v", it, ok)
	}
	if _, ok := q.Pop(eligible); ok {
		t.Fatal("pop returned an item from an ineligible tenant")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	// Once eligible again, busy's items drain in FIFO order.
	it, _ = q.Pop(nil)
	if it != "busy-1" {
		t.Fatalf("got %q, want busy-1", it)
	}
}

func TestRemove(t *testing.T) {
	q := New[int](2, nil)
	for i := 0; i < 4; i++ {
		q.Push(1, "t", i)
	}
	if !q.Remove(1, "t", func(v int) bool { return v == 2 }) {
		t.Fatal("Remove failed to find item")
	}
	if q.Remove(1, "t", func(v int) bool { return v == 99 }) {
		t.Fatal("Remove matched a missing item")
	}
	got := drainOrder2(q)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	// Removing the last item of a tenant must drop its flow entirely.
	q.Push(0, "t", 7)
	if !q.Remove(0, "t", func(v int) bool { return v == 7 }) {
		t.Fatal("Remove failed on single-item flow")
	}
	if q.Len() != 0 || q.TenantLen("t") != 0 {
		t.Fatalf("queue not empty after removals: len=%d", q.Len())
	}
}

func drainOrder2(q *Queue[int]) []int {
	var out []int
	for {
		it, ok := q.Pop(nil)
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestPositionSingleTenant(t *testing.T) {
	q := New[int](3, nil)
	q.Push(0, "", 100) // one high-priority item ahead
	for i := 0; i < 5; i++ {
		q.Push(1, "", i)
	}
	for i := 0; i < 5; i++ {
		want := 2 + i // behind the high item and earlier normal items
		got := q.Position(1, "", func(v int) bool { return v == i })
		if got != want {
			t.Fatalf("position of %d = %d, want %d", i, got, want)
		}
	}
	if got := q.Position(1, "", func(v int) bool { return v == 42 }); got != 0 {
		t.Fatalf("position of missing item = %d, want 0", got)
	}
}

func TestDepthAccounting(t *testing.T) {
	q := New[int](2, nil)
	q.Push(0, "a", 1)
	q.Push(1, "a", 2)
	q.Push(1, "b", 3)
	if q.Len() != 3 || q.ClassLen(0) != 1 || q.ClassLen(1) != 2 {
		t.Fatalf("len=%d class0=%d class1=%d", q.Len(), q.ClassLen(0), q.ClassLen(1))
	}
	if q.TenantLen("a") != 2 || q.TenantLen("b") != 1 || q.TenantLen("zzz") != 0 {
		t.Fatalf("tenant depths a=%d b=%d", q.TenantLen("a"), q.TenantLen("b"))
	}
	d := q.DepthByTenant()
	if d["a"] != 2 || d["b"] != 1 {
		t.Fatalf("DepthByTenant = %v", d)
	}
	got := q.Drain()
	if len(got) != 3 || q.Len() != 0 {
		t.Fatalf("drain returned %d items, len now %d", len(got), q.Len())
	}
}

func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(2, 2) // 2/s, burst 2, starts full
	if !b.Allow(0) || !b.Allow(0) {
		t.Fatal("burst of 2 not allowed at t=0")
	}
	if b.Allow(0) {
		t.Fatal("third immediate request allowed")
	}
	if ra := b.RetryAfter(0); math.Abs(ra-0.5) > 1e-9 {
		t.Fatalf("RetryAfter = %v, want 0.5", ra)
	}
	if !b.Allow(0.5) {
		t.Fatal("request after refill window rejected")
	}
	// Tokens cap at burst even after a long idle period.
	b.advance(100)
	if b.Remaining(100) != 2 {
		t.Fatalf("remaining after idle = %d, want 2", b.Remaining(100))
	}
	if b.Limit() != 2 {
		t.Fatalf("limit = %d, want 2", b.Limit())
	}
	if NewTokenBucket(0, 5) != nil {
		t.Fatal("zero rate should disable limiting")
	}
	if db := NewTokenBucket(2.5, 0); db.Limit() != 3 {
		t.Fatalf("default burst = %d, want ceil(rate) = 3", db.Limit())
	}
}

// TestDeterministicReplay pins down the full drain sequence for a mixed
// workload: the simulator's byte-identical reports depend on this order
// never changing across refactors.
func TestDeterministicReplay(t *testing.T) {
	build := func() *Queue[string] {
		q := New[string](2, weights(map[string]int{"a": 2, "b": 1}))
		for i := 0; i < 4; i++ {
			q.Push(1, "a", "a")
			q.Push(1, "b", "b")
		}
		q.Push(0, "b", "B")
		return q
	}
	first := drainOrder(build(), nil)
	second := drainOrder(build(), nil)
	want := []string{"B", "a", "a", "b", "a", "a", "b", "b", "b"}
	if len(first) != len(want) {
		t.Fatalf("drained %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] || second[i] != want[i] {
			t.Fatalf("drain order %v / %v, want %v", first, second, want)
		}
	}
}

// Package fairq implements the scheduling primitives behind the engine's
// multi-tenant admission queue: a multi-class weighted fair queue (deficit
// round-robin across tenants within each priority class) and a token bucket
// for per-tenant submit-rate limiting.
//
// Both structures are pure and deterministic: the queue's drain order is a
// function of the push/pop sequence alone, and the bucket takes its clock as
// an explicit argument. That is what lets the load generator (internal/load)
// drive the exact same code synchronously under a virtual clock and produce
// byte-identical reports from a fixed seed, while the engine drives it from
// real goroutines and wall time.
package fairq

// Queue is a bounded-class weighted fair queue. Items are pushed into a
// (class, tenant) pair; Pop drains the highest non-empty class, and within a
// class serves tenants by deficit round-robin: each time the rotor reaches a
// tenant its credit is replenished to its weight, and it may drain one item
// per credit before the rotor moves on. Over any interval in which a set of
// tenants stays backlogged, each receives service proportional to its
// weight.
//
// Queue is not concurrency-safe; the caller provides locking (the engine
// holds its own mutex around every operation).
type Queue[T any] struct {
	classes []class[T]
	weight  func(tenant string) int
	size    int
}

type class[T any] struct {
	ring     []*flow[T] // active (non-empty) tenant flows in rotor order
	byTenant map[string]*flow[T]
	cursor   int
	size     int
}

type flow[T any] struct {
	tenant string
	items  []T
	credit int
}

// New builds a queue with the given number of priority classes (class 0
// drains first). weight maps a tenant to its fair-share weight; nil or
// non-positive results mean weight 1. The function is consulted on every
// credit replenishment, so weight changes take effect at the next rotor
// visit.
func New[T any](classes int, weight func(tenant string) int) *Queue[T] {
	if classes < 1 {
		classes = 1
	}
	q := &Queue[T]{classes: make([]class[T], classes), weight: weight}
	for i := range q.classes {
		q.classes[i].byTenant = make(map[string]*flow[T])
	}
	return q
}

func (q *Queue[T]) weightOf(tenant string) int {
	if q.weight == nil {
		return 1
	}
	if w := q.weight(tenant); w > 0 {
		return w
	}
	return 1
}

// Push appends an item to the tenant's FIFO in the given class.
func (q *Queue[T]) Push(cls int, tenant string, item T) {
	c := &q.classes[cls]
	f := c.byTenant[tenant]
	if f == nil {
		f = &flow[T]{tenant: tenant}
		c.byTenant[tenant] = f
		c.ring = append(c.ring, f)
	}
	f.items = append(f.items, item)
	c.size++
	q.size++
}

// Pop removes and returns the next item: highest non-empty class first, then
// deficit round-robin across that class's tenants. Tenants for which
// eligible returns false are skipped without losing their rotor position or
// credit (the engine uses this for per-tenant in-flight caps); nil means all
// tenants are eligible. Returns false when every queued item belongs to an
// ineligible tenant or the queue is empty.
func (q *Queue[T]) Pop(eligible func(tenant string) bool) (T, bool) {
	for i := range q.classes {
		if item, ok := q.classes[i].pop(q.weightOf, eligible); ok {
			q.size--
			return item, true
		}
	}
	var zero T
	return zero, false
}

func (c *class[T]) pop(weight func(string) int, eligible func(string) bool) (T, bool) {
	var zero T
	for scanned, n := 0, len(c.ring); scanned < n; scanned++ {
		if c.cursor >= len(c.ring) {
			c.cursor = 0
		}
		f := c.ring[c.cursor]
		if eligible != nil && !eligible(f.tenant) {
			c.cursor++
			continue
		}
		if f.credit <= 0 {
			f.credit = weight(f.tenant)
		}
		item := f.items[0]
		f.items[0] = zero // release the reference
		f.items = f.items[1:]
		f.credit--
		c.size--
		if len(f.items) == 0 {
			c.removeFlow(c.cursor)
		} else if f.credit == 0 {
			c.cursor++
		}
		return item, true
	}
	return zero, false
}

// removeFlow drops the (drained) flow at ring index i, keeping the cursor on
// the flow that followed it.
func (c *class[T]) removeFlow(i int) {
	f := c.ring[i]
	f.credit = 0
	delete(c.byTenant, f.tenant)
	c.ring = append(c.ring[:i], c.ring[i+1:]...)
	if c.cursor > i {
		c.cursor--
	}
}

// Remove deletes the first item in the tenant's FIFO of the given class for
// which match returns true. Reports whether an item was removed.
func (q *Queue[T]) Remove(cls int, tenant string, match func(T) bool) bool {
	c := &q.classes[cls]
	f := c.byTenant[tenant]
	if f == nil {
		return false
	}
	for i, it := range f.items {
		if !match(it) {
			continue
		}
		var zero T
		f.items[i] = zero
		f.items = append(f.items[:i], f.items[i+1:]...)
		c.size--
		q.size--
		if len(f.items) == 0 {
			for ri, rf := range c.ring {
				if rf == f {
					c.removeFlow(ri)
					break
				}
			}
		}
		return true
	}
	return false
}

// Drain empties the queue and returns every item, classes in priority order
// and per-tenant FIFOs interleaved by the fair drain order.
func (q *Queue[T]) Drain() []T {
	out := make([]T, 0, q.size)
	for {
		item, ok := q.Pop(nil)
		if !ok {
			return out
		}
		out = append(out, item)
	}
}

// Len returns the total number of queued items.
func (q *Queue[T]) Len() int { return q.size }

// ClassLen returns the number of items queued in one class.
func (q *Queue[T]) ClassLen(cls int) int { return q.classes[cls].size }

// TenantLen returns the number of items the tenant has queued across all
// classes.
func (q *Queue[T]) TenantLen(tenant string) int {
	n := 0
	for i := range q.classes {
		if f := q.classes[i].byTenant[tenant]; f != nil {
			n += len(f.items)
		}
	}
	return n
}

// DepthByTenant returns the queued-item count per tenant across all classes.
func (q *Queue[T]) DepthByTenant() map[string]int {
	out := make(map[string]int)
	for i := range q.classes {
		for tenant, f := range q.classes[i].byTenant {
			out[tenant] += len(f.items)
		}
	}
	return out
}

// Position estimates the 1-based drain position of the first item in the
// (class, tenant) FIFO matching match: every item in higher classes drains
// first, and within the item's class the per-tenant FIFOs are assumed to
// interleave one item per rotor visit (weights are ignored, so positions for
// weighted tenants are an upper bound). With a single active tenant this is
// the exact FIFO position. Returns 0 when no item matches.
func (q *Queue[T]) Position(cls int, tenant string, match func(T) bool) int {
	c := &q.classes[cls]
	f := c.byTenant[tenant]
	if f == nil {
		return 0
	}
	idx := -1
	for i, it := range f.items {
		if match(it) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	pos := 0
	for i := 0; i < cls; i++ {
		pos += q.classes[i].size
	}
	// Rotor distance decides who is served first at equal FIFO depth.
	order := func(g *flow[T]) int {
		for i, rf := range c.ring {
			if rf == g {
				return (i - c.cursor + len(c.ring)) % len(c.ring)
			}
		}
		return 0
	}
	mine := order(f)
	for _, g := range c.ring {
		if g == f {
			pos += idx
			continue
		}
		ahead := idx
		if order(g) < mine {
			ahead++
		}
		if ahead > len(g.items) {
			ahead = len(g.items)
		}
		pos += ahead
	}
	return pos + 1
}

package load

import (
	"container/heap"
	"math"
	"math/rand"

	"repro/internal/fairq"
)

// simTask is one simulated task flowing through the fair queue.
type simTask struct {
	tenant  int // index into spec.Tenants
	arrival float64
	service float64
}

// simEvent is a point on the virtual clock: a task arrival or a worker
// finishing. seq breaks time ties deterministically.
type simEvent struct {
	at   float64
	seq  int64
	task simTask
	done bool // completion event (task left a worker)
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) add(e simEvent) { heap.Push(h, e) }
func (h *eventHeap) next() simEvent { return heap.Pop(h).(simEvent) }

// RunSim replays the spec's workload against the real fair-queue scheduling
// code (internal/fairq — the same deficit-round-robin queue the enactment
// engine drains) under a virtual clock: Workers simulated servers pull from
// the queue, service times are exponential draws, and every random draw
// comes from the spec's seed. The returned report is a pure function of the
// spec, so marshaling it yields byte-identical JSON run after run.
func RunSim(spec Spec) (*Report, error) {
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	report := &Report{Spec: spec, Tenants: make([]TenantReport, len(spec.Tenants))}
	latencies := make([][]float64, len(spec.Tenants))
	for i, t := range spec.Tenants {
		report.Tenants[i] = TenantReport{ID: t.ID, Weight: t.Weight}
	}

	weightOf := func(tenant string) int {
		for _, t := range spec.Tenants {
			if t.ID == tenant {
				return t.Weight
			}
		}
		return 1
	}
	fq := fairq.New[simTask](1, weightOf)

	// exp draws an exponential variate with the given mean.
	exp := func(mean float64) float64 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return -mean * math.Log(u)
	}

	var events eventHeap
	var seq int64
	push := func(at float64, t simTask, done bool) {
		seq++
		events.add(simEvent{at: at, seq: seq, task: t, done: done})
	}

	// shares resolves the open-loop tenant mix: explicit Share when set,
	// weight-proportional otherwise, then normalized to a CDF.
	cdf := make([]float64, len(spec.Tenants))
	{
		total := 0.0
		for i, t := range spec.Tenants {
			s := t.Share
			if s <= 0 {
				w := t.Weight
				if w <= 0 {
					w = 1
				}
				s = float64(w)
			}
			cdf[i] = s
			total += s
		}
		acc := 0.0
		for i := range cdf {
			acc += cdf[i] / total
			cdf[i] = acc
		}
	}
	pickTenant := func() int {
		u := rng.Float64()
		for i, c := range cdf {
			if u <= c {
				return i
			}
		}
		return len(cdf) - 1
	}

	target := spec.Arrivals
	switch spec.Mode {
	case "open":
		// All arrivals are pre-drawn, so later completion-time draws cannot
		// perturb the arrival process.
		t := 0.0
		for i := 0; i < target; i++ {
			t += exp(1 / spec.RatePerSec)
			push(t, simTask{tenant: pickTenant(), arrival: t}, false)
		}
	case "closed":
		for ti := range spec.Tenants {
			for k := 0; k < spec.Outstanding; k++ {
				push(0, simTask{tenant: ti}, false)
			}
		}
	}

	busy := 0
	now := 0.0
	admit := func(t simTask) {
		tr := &report.Tenants[t.tenant]
		tr.Submitted++
		report.Submitted++
		if fq.Len() >= spec.QueueCapacity {
			tr.Rejected++
			report.Rejected++
			return
		}
		tr.Accepted++
		report.Accepted++
		fq.Push(0, spec.Tenants[t.tenant].ID, t)
	}
	dispatch := func() {
		for busy < spec.Workers {
			t, ok := fq.Pop(nil)
			if !ok {
				return
			}
			busy++
			t.service = exp(spec.ServiceMeanSec)
			push(now+t.service, t, true)
		}
	}

	for events.Len() > 0 && report.Completed < target {
		ev := events.next()
		now = ev.at
		if !ev.done {
			ev.task.arrival = now
			admit(ev.task)
			dispatch()
			continue
		}
		busy--
		report.Completed++
		tr := &report.Tenants[ev.task.tenant]
		tr.Completed++
		latencies[ev.task.tenant] = append(latencies[ev.task.tenant], now-ev.task.arrival)
		if spec.Mode == "closed" {
			// The tenant immediately replaces its finished task, keeping
			// its window full until the completion target is reached.
			push(now, simTask{tenant: ev.task.tenant}, false)
		}
		dispatch()
	}

	report.DurationSec = now
	for i := range report.Tenants {
		report.Tenants[i].Latency = latencyStats(latencies[i])
	}
	report.finalize()
	return report, nil
}

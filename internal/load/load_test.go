package load

import (
	"bytes"
	"encoding/json"
	"testing"
)

func spec311() Spec {
	return Spec{
		Seed: 42,
		Mode: "closed",
		Tenants: []TenantSpec{
			{ID: "alpha", Weight: 3},
			{ID: "beta", Weight: 1},
			{ID: "gamma", Weight: 1},
		},
		Arrivals: 1000,
	}
}

// TestSimDeterministic is the reproducibility acceptance check: the same
// seed and spec must marshal to byte-identical JSON reports, and a different
// seed must not.
func TestSimDeterministic(t *testing.T) {
	marshal := func(s Spec) []byte {
		r, err := RunSim(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := marshal(spec311())
	second := marshal(spec311())
	if !bytes.Equal(first, second) {
		t.Fatal("same seed produced different reports")
	}
	other := spec311()
	other.Seed = 43
	if bytes.Equal(first, marshal(other)) {
		t.Fatal("different seed produced an identical report (rng unused?)")
	}
}

// TestSimClosedLoopFairness saturates the simulated queue with tenants
// weighted 3:1:1 and checks the goodput shares track the weight shares.
func TestSimClosedLoopFairness(t *testing.T) {
	r, err := RunSim(spec311())
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 1000 {
		t.Fatalf("completed %d, want 1000", r.Completed)
	}
	if r.MaxWeightDeviation > 0.10 {
		t.Fatalf("max weight deviation %.3f > 0.10; tenants: %+v", r.MaxWeightDeviation, r.Tenants)
	}
	if r.JainFairnessIndex < 0.98 {
		t.Fatalf("Jain index %.4f < 0.98", r.JainFairnessIndex)
	}
	for _, tr := range r.Tenants {
		if tr.Latency.Count == 0 || tr.Latency.MeanSec <= 0 || tr.Latency.MaxSec < tr.Latency.P99Sec {
			t.Fatalf("tenant %s latency stats look wrong: %+v", tr.ID, tr.Latency)
		}
	}
}

// TestSimOpenLoop sanity-checks the Poisson arrival path: all arrivals are
// accounted for and the tenant mix roughly follows the configured shares.
func TestSimOpenLoop(t *testing.T) {
	s := Spec{
		Seed: 7,
		Mode: "open",
		Tenants: []TenantSpec{
			{ID: "a", Weight: 1, Share: 0.8},
			{ID: "b", Weight: 1, Share: 0.2},
		},
		Arrivals:   2000,
		RatePerSec: 1000,
		Workers:    8,
	}
	r, err := RunSim(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Submitted != 2000 || r.Accepted+r.Rejected != 2000 {
		t.Fatalf("submitted %d accepted %d rejected %d", r.Submitted, r.Accepted, r.Rejected)
	}
	frac := float64(r.Tenants[0].Submitted) / float64(r.Submitted)
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("tenant a got %.2f of arrivals, want ~0.8", frac)
	}
	if r.DurationSec <= 0 {
		t.Fatal("duration not recorded")
	}
}

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("alpha:3, beta:1:0.25,gamma:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantSpec{{ID: "alpha", Weight: 3}, {ID: "beta", Weight: 1, Share: 0.25}, {ID: "gamma", Weight: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "alpha", "alpha:x", "a:0", "a:1:-2", "a:1:2:3"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := spec311().Defaults()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mod := range map[string]func(*Spec){
		"bad mode":     func(s *Spec) { s.Mode = "burst" },
		"no tenants":   func(s *Spec) { s.Tenants = nil },
		"dup tenant":   func(s *Spec) { s.Tenants = append(s.Tenants, s.Tenants[0]) },
		"empty tenant": func(s *Spec) { s.Tenants[0].ID = "" },
		"neg weight":   func(s *Spec) { s.Tenants[0].Weight = -1 },
		"no arrivals":  func(s *Spec) { s.Arrivals = -5 },
	} {
		s := spec311().Defaults()
		mod(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// BodyFactory builds the n-th synthetic POST /api/v1/tasks body for a
// tenant, returning the task ID it named inside. IDs must be unique across
// the run; the runner passes a monotonically increasing n per tenant.
type BodyFactory func(tenant string, n int) (id string, body []byte, err error)

// HTTPRunner drives one or more gridenv nodes over their HTTP API with the
// spec's arrival pattern and measures wall-clock goodput and latency —
// the cluster-scale counterpart of EngineRunner. Submissions round-robin
// across Endpoints, so on a multi-node cluster a share of them lands on a
// non-owner and rides the forwarding path; the report therefore reflects
// whole-cluster goodput including forwarding overhead. Each task is polled
// on the endpoint that accepted it.
type HTTPRunner struct {
	// Endpoints are the nodes' base URLs (no trailing slash); required.
	Endpoints []string
	// NewBody builds the submitted task bodies; required.
	NewBody BodyFactory
	// Client is the HTTP client; nil means a 10s-timeout default.
	Client *http.Client
	// Poll is the completion-poll interval; 0 means 2ms.
	Poll time.Duration
	// Timeout aborts a stuck run; 0 means 120s.
	Timeout time.Duration
	// Traceparent makes every submission carry a fresh W3C traceparent
	// header, so the server's task root span joins a client-originated
	// trace (visible in GET /tasks/{id}/trace as the root's parentId).
	Traceparent bool
}

// httpTask tracks one outstanding submission.
type httpTask struct {
	tenant   int // index into spec.Tenants
	endpoint string
	tenantID string
}

// Run executes the spec; the modes mirror EngineRunner.Run.
func (r *HTTPRunner) Run(spec Spec) (*Report, error) {
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(r.Endpoints) == 0 || r.NewBody == nil {
		return nil, fmt.Errorf("load: HTTPRunner needs Endpoints and NewBody")
	}
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	poll := r.Poll
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}

	report := &Report{Spec: spec, Tenants: make([]TenantReport, len(spec.Tenants))}
	latencies := make([][]float64, len(spec.Tenants))
	counters := make([]int, len(spec.Tenants))
	outstanding := map[string]httpTask{} // task ID → tracking
	submitted := map[string]time.Time{}  // task ID → accept time
	rr := 0                              // round-robin endpoint cursor
	for i, t := range spec.Tenants {
		report.Tenants[i] = TenantReport{ID: t.ID, Weight: t.Weight}
	}

	submit := func(ti int) error {
		counters[ti]++
		tenant := spec.Tenants[ti].ID
		id, body, err := r.NewBody(tenant, counters[ti])
		if err != nil {
			return err
		}
		endpoint := r.Endpoints[rr%len(r.Endpoints)]
		rr++
		tr := &report.Tenants[ti]
		tr.Submitted++
		report.Submitted++
		req, err := http.NewRequest(http.MethodPost, endpoint+"/api/v1/tasks", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		if r.Traceparent {
			sc := telemetry.SpanContext{TraceID: telemetry.NewTraceID(), SpanID: telemetry.NewSpanID()}
			req.Header.Set("traceparent", sc.Traceparent())
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("load: submit for tenant %s: %w", tenant, err)
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			tr.Accepted++
			report.Accepted++
			outstanding[id] = httpTask{tenant: ti, endpoint: endpoint, tenantID: tenant}
			submitted[id] = time.Now()
		case resp.StatusCode == http.StatusTooManyRequests:
			tr.Rejected++
			report.Rejected++
		default:
			return fmt.Errorf("load: submit for tenant %s: unexpected status %d", tenant, resp.StatusCode)
		}
		return nil
	}

	// reap polls every outstanding task where it was accepted; returns how
	// many reached a terminal state.
	reap := func() (int, error) {
		done := 0
		for id, ht := range outstanding {
			req, err := http.NewRequest(http.MethodGet, ht.endpoint+"/api/v1/tasks/"+id, nil)
			if err != nil {
				return done, err
			}
			req.Header.Set("X-Tenant", ht.tenantID)
			resp, err := client.Do(req)
			if err != nil {
				return done, fmt.Errorf("load: poll %s: %w", id, err)
			}
			if resp.StatusCode == http.StatusNotFound {
				// Retention evicted the record before we polled it; count the
				// completion but lose the latency sample.
				resp.Body.Close()
				delete(outstanding, id)
				delete(submitted, id)
				report.Tenants[ht.tenant].Completed++
				report.Completed++
				done++
				continue
			}
			var view struct {
				Status string `json:"status"`
			}
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if err != nil {
				return done, fmt.Errorf("load: poll %s: %w", id, err)
			}
			switch view.Status {
			case "succeeded", "failed", "cancelled":
				delete(outstanding, id)
				done++
				if view.Status == "succeeded" {
					report.Tenants[ht.tenant].Completed++
					report.Completed++
					latencies[ht.tenant] = append(latencies[ht.tenant],
						time.Since(submitted[id]).Seconds())
				}
				delete(submitted, id)
			}
		}
		return done, nil
	}

	start := time.Now()
	deadline := start.Add(timeout)
	switch spec.Mode {
	case "closed":
		for ti := range spec.Tenants {
			for k := 0; k < spec.Outstanding; k++ {
				if err := submit(ti); err != nil {
					return nil, err
				}
			}
		}
		for report.Completed < spec.Arrivals {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("load: closed-loop run timed out at %d/%d completions", report.Completed, spec.Arrivals)
			}
			if _, err := reap(); err != nil {
				return nil, err
			}
			for ti := range spec.Tenants {
				have := 0
				for _, ht := range outstanding {
					if ht.tenant == ti {
						have++
					}
				}
				for ; have < spec.Outstanding && report.Completed < spec.Arrivals; have++ {
					if err := submit(ti); err != nil {
						return nil, err
					}
				}
			}
			time.Sleep(poll)
		}
	case "open":
		rng := rand.New(rand.NewSource(spec.Seed))
		for i := 0; i < spec.Arrivals; i++ {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			time.Sleep(time.Duration(-math.Log(u) / spec.RatePerSec * float64(time.Second)))
			if err := submit(i % len(spec.Tenants)); err != nil {
				return nil, err
			}
			if _, err := reap(); err != nil {
				return nil, err
			}
		}
		for len(outstanding) > 0 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("load: open-loop drain timed out with %d tasks outstanding", len(outstanding))
			}
			if _, err := reap(); err != nil {
				return nil, err
			}
			time.Sleep(poll)
		}
	}

	report.DurationSec = time.Since(start).Seconds()
	for i := range report.Tenants {
		report.Tenants[i].Latency = latencyStats(latencies[i])
	}
	report.finalize()
	return report, nil
}

package load

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCostMixSLOs is the cost-mix acceptance test: under the seeded virtual
// clock, the cheap/patient tenant finishes inside its budget and the
// expensive/urgent tenant meets (at least 95% of) its deadlines — both SLOs
// from one run of the production scorer. Runs under -race in CI like every
// test in this package.
func TestCostMixSLOs(t *testing.T) {
	report, err := RunCostMix(CostMixSpec{Seed: 42})
	if err != nil {
		t.Fatalf("RunCostMix: %v", err)
	}
	if len(report.Tenants) != 2 {
		t.Fatalf("want 2 tenant profiles, got %d", len(report.Tenants))
	}
	byID := map[string]CostMixTenantReport{}
	for _, tr := range report.Tenants {
		byID[tr.ID] = tr
	}
	batch, rush := byID["batch"], byID["rush"]

	if batch.Urgent {
		t.Error("batch tenant must not be urgent")
	}
	if !batch.SLOMet || batch.Spent > batch.Budget {
		t.Errorf("batch SLO blown: spent %.2f of budget %.2f (sloMet=%v)",
			batch.Spent, batch.Budget, batch.SLOMet)
	}
	if !rush.Urgent {
		t.Error("rush tenant must be urgent")
	}
	if !rush.SLOMet || rush.DeadlineMetRate < 0.95 {
		t.Errorf("rush SLO blown: deadline-met rate %.3f (sloMet=%v)",
			rush.DeadlineMetRate, rush.SLOMet)
	}
	if !report.AllSLOsMet {
		t.Error("AllSLOsMet should be true when both tenant SLOs hold")
	}

	// The rush tenant pays for speed: its mean per-task spend must exceed
	// the batch tenant's, or the urgent ranking did nothing.
	if rush.MeanCost <= batch.MeanCost {
		t.Errorf("rush mean cost %.3f should exceed batch mean cost %.3f",
			rush.MeanCost, batch.MeanCost)
	}
}

// TestCostMixDeterminism asserts the report is a pure function of the spec:
// same seed, byte-identical JSON.
func TestCostMixDeterminism(t *testing.T) {
	spec := CostMixSpec{Seed: 7, Tasks: 64, Nodes: 12}
	var serialized [][]byte
	for i := 0; i < 3; i++ {
		report, err := RunCostMix(spec)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		raw, err := json.Marshal(report)
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		serialized = append(serialized, raw)
	}
	for i := 1; i < len(serialized); i++ {
		if !bytes.Equal(serialized[0], serialized[i]) {
			t.Fatalf("run %d JSON differs from run 0:\n%s\nvs\n%s",
				i, serialized[i], serialized[0])
		}
	}
	// A different seed must actually change the outcome (the rng is wired).
	other, err := RunCostMix(CostMixSpec{Seed: 8, Tasks: 64, Nodes: 12})
	if err != nil {
		t.Fatalf("other seed: %v", err)
	}
	raw, _ := json.Marshal(other)
	if bytes.Equal(serialized[0], raw) {
		t.Error("different seeds produced identical reports")
	}
}

// TestCostMixValidate covers the spec guardrails.
func TestCostMixValidate(t *testing.T) {
	if err := (CostMixSpec{Tasks: -1, Nodes: 4}).Validate(); err == nil {
		t.Error("negative task count should fail validation")
	}
	if _, err := RunCostMix(CostMixSpec{Tasks: 10, Nodes: 1}); err == nil {
		t.Error("single-node fleet should fail validation")
	}
}

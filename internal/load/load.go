// Package load is the deterministic load-generation harness behind
// cmd/gridload and the engine's fairness soak tests. A Spec describes a
// seeded multi-tenant workload — open-loop (Poisson arrivals at a fixed
// aggregate rate) or closed-loop (a fixed number of outstanding tasks per
// tenant, the saturation shape used for fairness assertions) — and produces
// a Report with per-tenant goodput shares, latency statistics, and fairness
// indices.
//
// Two drivers consume a Spec: RunSim (sim.go) replays the workload against
// the real fair-queue scheduling code under a virtual clock, so the same
// seed always yields a byte-identical JSON report; EngineRunner (live.go)
// drives a real enactment engine and measures wall-clock behavior.
package load

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is one workload description. The zero value is not runnable; use
// Defaults or fill the fields and call Validate.
type Spec struct {
	// Seed drives every random draw (arrival spacing, tenant mix, service
	// times). Same seed, same spec → same simulated report, byte for byte.
	Seed int64 `json:"seed"`
	// Mode is "closed" (Outstanding tasks per tenant kept in flight until
	// Arrivals completions — saturates the queue) or "open" (Poisson
	// arrivals at RatePerSec until Arrivals submissions).
	Mode string `json:"mode"`
	// Tenants is the per-tenant mix; at least one is required.
	Tenants []TenantSpec `json:"tenants"`
	// Arrivals is the total task count: submissions generated in open mode,
	// completions targeted in closed mode.
	Arrivals int `json:"arrivals"`
	// RatePerSec is the aggregate open-loop arrival rate.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Outstanding is the closed-loop in-flight window per tenant.
	Outstanding int `json:"outstanding,omitempty"`
	// Workers is the service-capacity knob: simulated workers in sim mode;
	// informational in live mode (the engine's own pool applies).
	Workers int `json:"workers"`
	// QueueCapacity bounds the simulated admission queue (sim mode).
	QueueCapacity int `json:"queueCapacity"`
	// ServiceMeanSec is the simulated per-task service time mean
	// (exponentially distributed); sim mode only.
	ServiceMeanSec float64 `json:"serviceMeanSec"`
}

// TenantSpec is one tenant's slice of the workload.
type TenantSpec struct {
	ID string `json:"id"`
	// Weight is the fair-share weight the scheduler grants the tenant.
	Weight int `json:"weight"`
	// Share is the tenant's fraction of open-loop arrivals; 0 means
	// weight-proportional.
	Share float64 `json:"share,omitempty"`
}

// Defaults fills a runnable closed-loop baseline: 4 simulated workers,
// saturation window 8 per tenant, 1000 completions, 50 ms mean service.
func (s Spec) Defaults() Spec {
	if s.Mode == "" {
		s.Mode = "closed"
	}
	if s.Arrivals <= 0 {
		s.Arrivals = 1000
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Outstanding <= 0 {
		s.Outstanding = 8
	}
	if s.RatePerSec <= 0 {
		s.RatePerSec = 100
	}
	if s.ServiceMeanSec <= 0 {
		s.ServiceMeanSec = 0.05
	}
	if s.QueueCapacity <= 0 {
		// Closed loops must never hit the cap (a rejected replacement would
		// shrink the tenant's window for good), so size it to the windows.
		s.QueueCapacity = 256
		if n := len(s.Tenants) * s.Outstanding * 2; n > s.QueueCapacity {
			s.QueueCapacity = n
		}
	}
	return s
}

// Validate rejects specs the drivers cannot run.
func (s Spec) Validate() error {
	if s.Mode != "open" && s.Mode != "closed" {
		return fmt.Errorf("load: mode must be open or closed, got %q", s.Mode)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("load: at least one tenant is required")
	}
	seen := map[string]bool{}
	for _, t := range s.Tenants {
		if t.ID == "" {
			return fmt.Errorf("load: tenant with empty ID")
		}
		if seen[t.ID] {
			return fmt.Errorf("load: duplicate tenant %q", t.ID)
		}
		seen[t.ID] = true
		if t.Weight < 0 || t.Share < 0 {
			return fmt.Errorf("load: tenant %q has negative weight or share", t.ID)
		}
	}
	if s.Arrivals <= 0 {
		return fmt.Errorf("load: arrivals must be positive")
	}
	if s.Mode == "open" && s.RatePerSec <= 0 {
		return fmt.Errorf("load: open mode needs ratePerSec > 0")
	}
	if s.Mode == "closed" && s.Outstanding <= 0 {
		return fmt.Errorf("load: closed mode needs outstanding > 0")
	}
	return nil
}

// ParseTenants parses the -tenants CLI syntax: a comma-separated list of
// id:weight or id:weight:share entries, e.g. "alpha:3,beta:1,gamma:1".
func ParseTenants(s string) ([]TenantSpec, error) {
	var out []TenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("load: tenant %q: want id:weight[:share]", part)
		}
		w, err := strconv.Atoi(fields[1])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("load: tenant %q: bad weight %q", part, fields[1])
		}
		t := TenantSpec{ID: fields[0], Weight: w}
		if len(fields) == 3 {
			sh, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || sh < 0 {
				return nil, fmt.Errorf("load: tenant %q: bad share %q", part, fields[2])
			}
			t.Share = sh
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: no tenants in %q", s)
	}
	return out, nil
}

// Report is the harness output: totals, per-tenant goodput and latency, and
// fairness indices over completed work.
type Report struct {
	Spec        Spec    `json:"spec"`
	DurationSec float64 `json:"durationSec"`

	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`

	Tenants []TenantReport `json:"tenants"`

	// JainFairnessIndex is Jain's index over per-tenant weight-normalized
	// goodput (completed/weight): 1.0 is perfectly weight-proportional,
	// 1/n is maximally unfair.
	JainFairnessIndex float64 `json:"jainFairnessIndex"`
	// MaxWeightDeviation is the worst relative deviation of any tenant's
	// goodput share from its weight share.
	MaxWeightDeviation float64 `json:"maxWeightDeviation"`
}

// TenantReport is one tenant's slice of the outcome.
type TenantReport struct {
	ID        string `json:"id"`
	Weight    int    `json:"weight"`
	Submitted int    `json:"submitted"`
	Accepted  int    `json:"accepted"`
	Rejected  int    `json:"rejected"`
	Completed int    `json:"completed"`

	// GoodputShare is completed / total completed; WeightShare is
	// weight / total weight; Deviation is their relative difference.
	GoodputShare float64 `json:"goodputShare"`
	WeightShare  float64 `json:"weightShare"`
	Deviation    float64 `json:"deviation"`

	Latency LatencyStats `json:"latency"`
}

// LatencyStats summarizes per-task sojourn times (submission to completion)
// in seconds.
type LatencyStats struct {
	Count   int     `json:"count"`
	MeanSec float64 `json:"meanSec"`
	P50Sec  float64 `json:"p50Sec"`
	P95Sec  float64 `json:"p95Sec"`
	P99Sec  float64 `json:"p99Sec"`
	MaxSec  float64 `json:"maxSec"`
}

// latencyStats computes nearest-rank percentiles; mutates (sorts) samples.
func latencyStats(samples []float64) LatencyStats {
	s := LatencyStats{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sort.Float64s(samples)
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	rank := func(p float64) float64 {
		i := int(p*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	s.MeanSec = sum / float64(len(samples))
	s.P50Sec = rank(0.50)
	s.P95Sec = rank(0.95)
	s.P99Sec = rank(0.99)
	s.MaxSec = samples[len(samples)-1]
	return s
}

// finalize fills the derived fields (shares, deviations, fairness indices)
// from the per-tenant raw counts already present.
func (r *Report) finalize() {
	totalWeight, totalCompleted := 0, 0
	for _, t := range r.Tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
		totalCompleted += t.Completed
	}
	sumX, sumX2 := 0.0, 0.0
	for i := range r.Tenants {
		t := &r.Tenants[i]
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		t.WeightShare = float64(w) / float64(totalWeight)
		if totalCompleted > 0 {
			t.GoodputShare = float64(t.Completed) / float64(totalCompleted)
		}
		t.Deviation = (t.GoodputShare - t.WeightShare) / t.WeightShare
		x := float64(t.Completed) / float64(w)
		sumX += x
		sumX2 += x * x
		dev := t.Deviation
		if dev < 0 {
			dev = -dev
		}
		if dev > r.MaxWeightDeviation {
			r.MaxWeightDeviation = dev
		}
	}
	if sumX2 > 0 {
		n := float64(len(r.Tenants))
		r.JainFairnessIndex = (sumX * sumX) / (n * sumX2)
	}
}

package load

import (
	"fmt"
	"math/rand"

	"repro/internal/services"
)

// Cost-mix scenario: two tenant profiles with opposite constraints share one
// heterogeneous fleet and every dispatch decision goes through the real
// cost-aware scorer (services.ScoreCandidates + services.RankCostAware — the
// same code the coordinator runs). The "batch" tenant is cheap and patient:
// generous deadlines, a tight budget, non-urgent ranking (cheapest feasible
// node wins). The "rush" tenant is expensive and urgent: tight deadlines, a
// generous budget, urgent ranking (fastest feasible node wins). The report is
// a pure function of the spec — same seed, byte-identical JSON — and carries
// one SLO verdict per tenant: the batch tenant must finish inside its budget,
// the rush tenant must meet (nearly) all of its deadlines.

// CostMixSpec describes one cost-mix run. The zero value is not runnable;
// use Defaults.
type CostMixSpec struct {
	// Seed drives every draw: fleet hardware, task base times, input data
	// sizes and locations.
	Seed int64 `json:"seed"`
	// Tasks is the number of tasks each tenant dispatches.
	Tasks int `json:"tasks"`
	// Nodes is the fleet size; half cheap/slow, half fast/expensive.
	Nodes int `json:"nodes"`
}

// Defaults fills a runnable baseline: 200 tasks per tenant over a 16-node
// fleet.
func (s CostMixSpec) Defaults() CostMixSpec {
	if s.Tasks <= 0 {
		s.Tasks = 200
	}
	if s.Nodes <= 0 {
		s.Nodes = 16
	}
	return s
}

// Validate rejects specs the driver cannot run.
func (s CostMixSpec) Validate() error {
	if s.Tasks <= 0 {
		return fmt.Errorf("load: costmix tasks must be positive")
	}
	if s.Nodes < 2 {
		return fmt.Errorf("load: costmix needs at least 2 nodes")
	}
	return nil
}

// CostMixReport is the cost-mix outcome.
type CostMixReport struct {
	Spec        CostMixSpec           `json:"spec"`
	DurationSec float64               `json:"durationSec"` // max tenant virtual time
	Tenants     []CostMixTenantReport `json:"tenants"`
	// AllSLOsMet is the run verdict: every tenant's SLO held.
	AllSLOsMet bool `json:"allSLOsMet"`
}

// CostMixTenantReport is one tenant profile's slice of the outcome.
type CostMixTenantReport struct {
	ID     string `json:"id"`
	Urgent bool   `json:"urgent"`
	Tasks  int    `json:"tasks"`

	// Budget is the tenant's total spend cap; Spent is what the chosen
	// candidates cost (sum of EstCost).
	Budget float64 `json:"budget"`
	Spent  float64 `json:"spent"`

	// DeadlineMet counts tasks whose chosen candidate's ETA fit the
	// per-task deadline; DeadlineMetRate is the fraction.
	DeadlineMet     int     `json:"deadlineMet"`
	DeadlineMetRate float64 `json:"deadlineMetRate"`

	MeanCost float64 `json:"meanCost"`
	MeanETA  float64 `json:"meanETASec"`

	// SLO is the tenant's service-level objective spelled out; SLOMet says
	// whether it held.
	SLO    string `json:"slo"`
	SLOMet bool   `json:"sloMet"`
}

// costMixFleet draws the heterogeneous fleet: the first half is cheap and
// slow (low speed, low cost-per-second, modest bandwidth), the second half
// fast and expensive.
func costMixFleet(rng *rand.Rand, n int) []services.Candidate {
	fleet := make([]services.Candidate, n)
	for i := range fleet {
		node := fmt.Sprintf("cm-node-%02d", i)
		c := services.Candidate{
			Container: fmt.Sprintf("cm-cont-%02d", i),
			Node:      node,
			Domain:    fmt.Sprintf("dom-%d", i%4),
			LatencyUs: 100 + rng.Float64()*900,
		}
		if i < n/2 {
			c.Speed = 0.5 + rng.Float64()*0.7 // slow
			c.Cost = 0.5 + rng.Float64()      // cheap
			c.BandwidthMbps = 200 + rng.Float64()*300
		} else {
			c.Speed = 2 + rng.Float64()*2 // fast
			c.Cost = 4 + rng.Float64()*6  // expensive
			c.BandwidthMbps = 800 + rng.Float64()*1200
		}
		fleet[i] = c
	}
	return fleet
}

// RunCostMix replays the cost-mix workload. Every dispatch is scored by the
// production scorer; the tenant's virtual clock advances by the chosen
// candidate's ETA, so the report is fully deterministic under the seed.
func RunCostMix(spec CostMixSpec) (*CostMixReport, error) {
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	fleet := costMixFleet(rng, spec.Nodes)
	locations := make([]string, 0, len(fleet)+1)
	locations = append(locations, "") // unknown location: treated as local
	for _, c := range fleet {
		locations = append(locations, c.Node)
	}

	type profile struct {
		id          string
		urgent      bool
		deadlineMul float64 // per-task deadline as a multiple of baseTime
		budgetPer   float64 // budget allowance per task (currency units)
		slo         string
	}
	profiles := []profile{
		// Patient but poor: deadlines 8× nominal, budget 2.5 units/task —
		// enough for cheap-slow nodes, blown if fast-expensive ones are
		// picked (so the SLO actually checks cheapest-feasible ranking).
		{"batch", false, 8, 2.5, "spent <= budget"},
		// Rich but rushed: deadlines 1× nominal. Slow nodes (speed < 1)
		// cannot ever fit, so only the fast-expensive half is feasible;
		// budget 60 units/task absorbs their rates.
		{"rush", true, 1, 60, "deadlineMetRate >= 0.95"},
	}

	report := &CostMixReport{Spec: spec}
	for _, p := range profiles {
		tr := CostMixTenantReport{
			ID:     p.id,
			Urgent: p.urgent,
			Tasks:  spec.Tasks,
			Budget: p.budgetPer * float64(spec.Tasks),
			SLO:    p.slo,
		}
		clock := 0.0
		for i := 0; i < spec.Tasks; i++ {
			baseTime := 0.5 + rng.Float64()*2.5
			// Fuzz the bound-condition data refs: 0-2 inputs, sizes up to
			// 48 MB, locations drawn from the fleet (or unknown).
			inputs := make([]services.DataRef, rng.Intn(3))
			for j := range inputs {
				inputs[j] = services.DataRef{
					SizeMB:   rng.Float64() * 48,
					Location: locations[rng.Intn(len(locations))],
				}
			}
			deadline := baseTime * p.deadlineMul
			scored := services.ScoreCandidates(fleet, baseTime, inputs, nil, deadline)
			ranked := services.RankCostAware(scored, p.urgent)
			pick := ranked[0]
			tr.Spent += pick.EstCost
			tr.MeanCost += pick.EstCost
			tr.MeanETA += pick.ETA
			clock += pick.ETA
			if pick.ETA <= deadline {
				tr.DeadlineMet++
			}
		}
		tr.MeanCost /= float64(spec.Tasks)
		tr.MeanETA /= float64(spec.Tasks)
		tr.DeadlineMetRate = float64(tr.DeadlineMet) / float64(spec.Tasks)
		if p.urgent {
			tr.SLOMet = tr.DeadlineMetRate >= 0.95
		} else {
			tr.SLOMet = tr.Spent <= tr.Budget
		}
		if clock > report.DurationSec {
			report.DurationSec = clock
		}
		report.Tenants = append(report.Tenants, tr)
	}
	report.AllSLOsMet = true
	for _, tr := range report.Tenants {
		if !tr.SLOMet {
			report.AllSLOsMet = false
		}
	}
	return report, nil
}

package load

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/workflow"
)

// TaskFactory builds the n-th synthetic task for a tenant. IDs must be
// unique across the run; the runner passes a monotonically increasing n per
// tenant.
type TaskFactory func(tenant string, n int) (*workflow.Task, error)

// EngineRunner drives a real enactment engine with the spec's arrival
// pattern and measures wall-clock goodput and latency. Unlike RunSim, the
// report depends on real scheduling and service times, so it is not
// byte-reproducible — use it for soak tests with tolerance bounds.
type EngineRunner struct {
	Engine *engine.Engine
	// NewTask builds the submitted tasks; required.
	NewTask TaskFactory
	// Priority applies to every submission (default high-less normal).
	Priority engine.Priority
	// Poll is the completion-poll interval; 0 means 2ms.
	Poll time.Duration
	// Timeout aborts a stuck run; 0 means 120s.
	Timeout time.Duration
}

// Run executes the spec. Closed mode keeps spec.Outstanding tasks in flight
// per tenant until spec.Arrivals tasks have completed; open mode submits
// spec.Arrivals tasks at the spec's Poisson rate and then drains.
func (r *EngineRunner) Run(spec Spec) (*Report, error) {
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if r.Engine == nil || r.NewTask == nil {
		return nil, fmt.Errorf("load: EngineRunner needs Engine and NewTask")
	}
	poll := r.Poll
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}

	report := &Report{Spec: spec, Tenants: make([]TenantReport, len(spec.Tenants))}
	latencies := make([][]float64, len(spec.Tenants))
	counters := make([]int, len(spec.Tenants)) // per-tenant task numbering
	outstanding := map[string]int{}            // task ID → tenant index
	for i, t := range spec.Tenants {
		report.Tenants[i] = TenantReport{ID: t.ID, Weight: t.Weight}
	}

	submit := func(ti int) error {
		counters[ti]++
		task, err := r.NewTask(spec.Tenants[ti].ID, counters[ti])
		if err != nil {
			return err
		}
		tr := &report.Tenants[ti]
		tr.Submitted++
		report.Submitted++
		_, err = r.Engine.Submit(engine.Submission{
			Task: task, Priority: r.Priority, Tenant: spec.Tenants[ti].ID,
		})
		switch {
		case err == nil:
			tr.Accepted++
			report.Accepted++
			outstanding[task.ID] = ti
		case errors.Is(err, engine.ErrQueueFull),
			errors.Is(err, engine.ErrTenantQueueFull),
			errors.Is(err, engine.ErrTenantRateLimited):
			tr.Rejected++
			report.Rejected++
		default:
			return fmt.Errorf("load: submit for tenant %s: %w", spec.Tenants[ti].ID, err)
		}
		return nil
	}

	// reap records finished outstanding tasks; returns how many completed.
	reap := func() (int, error) {
		done := 0
		for id, ti := range outstanding {
			st, err := r.Engine.Task(id)
			if errors.Is(err, engine.ErrEvicted) {
				// Retention dropped the record before we polled it; count
				// the completion but lose the latency sample.
				delete(outstanding, id)
				report.Tenants[ti].Completed++
				report.Completed++
				done++
				continue
			}
			if err != nil {
				return done, fmt.Errorf("load: poll %s: %w", id, err)
			}
			switch st.Status {
			case engine.StatusCompleted, engine.StatusFailed, engine.StatusCancelled:
				delete(outstanding, id)
				done++
				if st.Status == engine.StatusCompleted {
					report.Tenants[ti].Completed++
					report.Completed++
					latencies[ti] = append(latencies[ti], st.Finished.Sub(st.Submitted).Seconds())
				}
			}
		}
		return done, nil
	}

	start := time.Now()
	deadline := start.Add(timeout)
	switch spec.Mode {
	case "closed":
		for ti := range spec.Tenants {
			for k := 0; k < spec.Outstanding; k++ {
				if err := submit(ti); err != nil {
					return nil, err
				}
			}
		}
		for report.Completed < spec.Arrivals {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("load: closed-loop run timed out at %d/%d completions", report.Completed, spec.Arrivals)
			}
			if _, err := reap(); err != nil {
				return nil, err
			}
			// Refill every tenant's window (a rejection or failure shrank it).
			for ti := range spec.Tenants {
				have := 0
				for _, oti := range outstanding {
					if oti == ti {
						have++
					}
				}
				for ; have < spec.Outstanding && report.Completed < spec.Arrivals; have++ {
					if err := submit(ti); err != nil {
						return nil, err
					}
				}
			}
			time.Sleep(poll)
		}
	case "open":
		rng := rand.New(rand.NewSource(spec.Seed))
		for i := 0; i < spec.Arrivals; i++ {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			time.Sleep(time.Duration(-math.Log(u) / spec.RatePerSec * float64(time.Second)))
			ti := i % len(spec.Tenants)
			if err := submit(ti); err != nil {
				return nil, err
			}
			if _, err := reap(); err != nil {
				return nil, err
			}
		}
		for len(outstanding) > 0 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("load: open-loop drain timed out with %d tasks outstanding", len(outstanding))
			}
			if _, err := reap(); err != nil {
				return nil, err
			}
			time.Sleep(poll)
		}
	}

	report.DurationSec = time.Since(start).Seconds()
	for i := range report.Tenants {
		report.Tenants[i].Latency = latencyStats(latencies[i])
	}
	report.finalize()
	return report, nil
}

// Soak test: the load harness drives a real core.Environment at saturation
// and asserts the engine's weighted fair queue delivers goodput in
// proportion to tenant weights. External test package so it can build the
// full environment (core wires the engine).
package load_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/load"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// soakPDL is a minimal one-activity case so each task costs microseconds and
// the soak stays fast even at hundreds of completions.
const soakPDL = `BEGIN, POD(D1, D7 -> D8), END`

func soakTask(tenant string, n int) (*workflow.Task, error) {
	id := tenant + "-" + itoa(n)
	p, err := pdl.ParseProcess(id, soakPDL)
	if err != nil {
		return nil, err
	}
	c := workflow.NewCase(id, "soak "+id)
	for _, d := range virolab.InitialData() {
		c.AddData(d)
	}
	c.Goal = workflow.NewGoal(`G.Classification = "Density Map"`)
	return &workflow.Task{ID: id, Name: c.Name, Case: c, Process: p}, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestEngineSoakFairness keeps three tenants weighted 3:1:1 saturated
// (closed loop, window 8 each) against a 2-worker engine until 300 tasks
// complete, then checks every tenant's completed share lands within ±10%
// of its weight share — the ISSUE's fairness acceptance bound.
func TestEngineSoakFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	env, err := core.NewEnvironment(core.Options{
		Catalog: virolab.Catalog(),
		Planner: params,
		Workers: 2,
		// Slow each activity enough that service time dominates the
		// runner's refill poll; otherwise the heavy tenant's window drains
		// between polls and fairness is bounded by the harness, not the
		// scheduler.
		PostProcess: func(*workflow.Activity, []*workflow.DataItem, int) {
			time.Sleep(3 * time.Millisecond)
		},
		Tenants: map[string]engine.TenantConfig{
			"alpha": {Weight: 3},
			"beta":  {Weight: 1},
			"gamma": {Weight: 1},
		},
		// Retention must outlast the run so the poller never loses a
		// completion's latency sample.
		RetainFinished: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	runner := &load.EngineRunner{
		Engine:   env.Engine,
		NewTask:  soakTask,
		Priority: engine.PriorityNormal,
	}
	report, err := runner.Run(load.Spec{
		Seed: 1,
		Mode: "closed",
		Tenants: []load.TenantSpec{
			{ID: "alpha", Weight: 3},
			{ID: "beta", Weight: 1},
			{ID: "gamma", Weight: 1},
		},
		Arrivals:    300,
		Outstanding: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed < 300 {
		t.Fatalf("completed %d, want >= 300", report.Completed)
	}
	if report.Rejected != 0 {
		t.Fatalf("unexpected rejections: %d", report.Rejected)
	}
	if report.MaxWeightDeviation > 0.10 {
		t.Fatalf("fairness violated: max weight deviation %.3f > 0.10\n%+v",
			report.MaxWeightDeviation, report.Tenants)
	}
	for _, tr := range report.Tenants {
		if tr.Latency.Count == 0 || tr.Latency.MeanSec <= 0 {
			t.Fatalf("tenant %s has no latency samples: %+v", tr.ID, tr)
		}
	}

	// The engine's own per-tenant accounting must agree with the harness.
	for _, tr := range report.Tenants {
		st, ok := env.Engine.Tenant(tr.ID)
		if !ok {
			t.Fatalf("engine lost tenant %s", tr.ID)
		}
		if st.Completed < int64(tr.Completed) {
			t.Fatalf("engine counts %d completions for %s, harness saw %d", st.Completed, tr.ID, tr.Completed)
		}
		if st.Weight != tr.Weight {
			t.Fatalf("engine weight %d for %s, want %d", st.Weight, tr.ID, tr.Weight)
		}
	}
}

package atn

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func TestHandBuiltNetwork(t *testing.T) {
	a := New("s0")
	for _, s := range []*State{
		{Name: "s0"},
		{Name: "s1"},
		{Name: "end", Kind: Final},
	} {
		if err := a.AddState(s); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := a.AddArc(&Arc{From: "s0", To: "s1", Act: func(*Registers) error { count++; return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddArc(&Arc{From: "s1", To: "end"}); err != nil {
		t.Fatal(err)
	}
	var tr Trace
	r := NewRegisters(nil)
	if err := a.Run(r, 100, &tr); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("arc action ran %d times", count)
	}
	if got := strings.Join(tr.Fired, ","); got != "s0,s1,end" {
		t.Errorf("trace = %s", got)
	}
	if r.Visits["s1"] != 1 {
		t.Errorf("visits = %v", r.Visits)
	}
}

func TestNetworkValidation(t *testing.T) {
	a := New("s0")
	if err := a.AddState(&State{Name: ""}); err == nil {
		t.Error("empty state name accepted")
	}
	_ = a.AddState(&State{Name: "s0"})
	if err := a.AddState(&State{Name: "s0"}); err == nil {
		t.Error("duplicate state accepted")
	}
	if err := a.AddArc(&Arc{From: "s0", To: "ghost"}); err == nil {
		t.Error("arc to ghost accepted")
	}
	if err := a.AddArc(&Arc{From: "ghost", To: "s0"}); err == nil {
		t.Error("arc from ghost accepted")
	}
	if got := a.States(); len(got) != 1 || got[0] != "s0" {
		t.Errorf("States = %v", got)
	}
	// Run with missing start or stuck token.
	bad := New("nowhere")
	if err := bad.Run(NewRegisters(nil), 10, nil); err == nil {
		t.Error("missing start accepted")
	}
	stuck := New("s0")
	_ = stuck.AddState(&State{Name: "s0"}) // non-final, no out arcs
	if err := stuck.Run(NewRegisters(nil), 10, nil); err == nil {
		t.Error("stuck token not reported")
	}
}

func TestConditionalArcsAndFallback(t *testing.T) {
	a := New("s0")
	_ = a.AddState(&State{Name: "s0"})
	_ = a.AddState(&State{Name: "yes", Kind: Final})
	_ = a.AddState(&State{Name: "no", Kind: Final})
	cond := expr.MustParse(`x.v > 5`)
	_ = a.AddArc(&Arc{From: "s0", To: "yes", Test: func(r *Registers) (bool, error) {
		return cond.Eval(r.State), nil
	}})
	_ = a.AddArc(&Arc{From: "s0", To: "no"})

	run := func(v float64) string {
		st := workflow.NewState(workflow.NewDataItem("x", "t").With("v", expr.Number(v)))
		var tr Trace
		if err := a.Run(NewRegisters(st), 10, &tr); err != nil {
			t.Fatal(err)
		}
		return tr.Fired[len(tr.Fired)-1]
	}
	if got := run(9); got != "yes" {
		t.Errorf("v=9 ended at %s", got)
	}
	if got := run(1); got != "no" {
		t.Errorf("v=1 ended at %s", got)
	}
}

func TestCompileFig10DryRun(t *testing.T) {
	pd := virolab.Process()
	catalog := virolab.Catalog()
	// Wrap the metadata executor with the resolution-refinement model: each
	// PSF pass writes the next value from the schedule so Cons1 eventually
	// releases the loop (the same steering hook the coordinator uses).
	inner := MetadataExecutor(catalog)
	schedule := virolab.DefaultResolutionSchedule
	exec := func(act *workflow.Activity, r *Registers) error {
		if err := inner(act, r); err != nil {
			return err
		}
		if act.Service == "PSF" {
			idx := r.Visits[act.ID] - 1
			if idx >= len(schedule) {
				idx = len(schedule) - 1
			}
			r.State.Get("D12").With(workflow.PropValue, expr.Number(schedule[idx]))
		}
		return nil
	}
	a, err := Compile(pd, exec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.States()) != 13 {
		t.Errorf("states = %d, want 13", len(a.States()))
	}
	st := workflow.NewState(virolab.InitialData()...)
	r := NewRegisters(st)
	var tr Trace
	if err := a.Run(r, 1000, &tr); err != nil {
		t.Fatalf("dry run failed: %v (fired %v)", err, tr.Fired)
	}
	// Three refinement passes (12 -> 9.5 -> 7.8), then the loop exits.
	if r.Visits["A11"] != 3 {
		t.Errorf("PSF fired %d times, want 3: %v", r.Visits["A11"], r.Visits)
	}
	if tr.Fired[len(tr.Fired)-1] != "A13" {
		t.Errorf("did not end at END: %v", tr.Fired)
	}
	d12 := r.State.Get("D12")
	if d12 == nil {
		t.Fatal("D12 not produced")
	}
	if v, _ := d12.Prop(workflow.PropValue); v.Str() != "7.8" {
		t.Errorf("final resolution = %v, want 7.8", v)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(workflow.NewProcess("empty"), nil); err == nil {
		t.Error("invalid process compiled")
	}
	pd := virolab.Process()
	pd.Transitions[3].Condition = "((("
	if _, err := Compile(pd, nil); err == nil {
		t.Error("bad condition compiled")
	}
}

func TestMetadataExecutorErrors(t *testing.T) {
	catalog := virolab.Catalog()
	exec := MetadataExecutor(catalog)
	r := NewRegisters(workflow.NewState()) // empty state: preconditions unmet
	act := &workflow.Activity{ID: "a", Name: "POD", Kind: workflow.KindEndUser, Service: "POD"}
	if err := exec(act, r); err == nil {
		t.Error("unmet preconditions accepted")
	}
	ghost := &workflow.Activity{ID: "g", Name: "G", Kind: workflow.KindEndUser, Service: "GHOST"}
	if err := exec(ghost, r); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestMaxSteps(t *testing.T) {
	// A two-state cycle with no final state must hit the step bound.
	a := New("s0")
	_ = a.AddState(&State{Name: "s0"})
	_ = a.AddState(&State{Name: "s1"})
	_ = a.AddArc(&Arc{From: "s0", To: "s1"})
	_ = a.AddArc(&Arc{From: "s1", To: "s0"})
	if err := a.Run(NewRegisters(nil), 50, nil); err == nil {
		t.Error("infinite cycle not bounded")
	}
}

func TestForkJoinTokens(t *testing.T) {
	a := New("begin")
	_ = a.AddState(&State{Name: "begin"})
	_ = a.AddState(&State{Name: "fork", Kind: AllOut})
	_ = a.AddState(&State{Name: "x"})
	_ = a.AddState(&State{Name: "y"})
	_ = a.AddState(&State{Name: "join", Kind: WaitAll})
	_ = a.AddState(&State{Name: "end", Kind: Final})
	_ = a.AddArc(&Arc{From: "begin", To: "fork"})
	_ = a.AddArc(&Arc{From: "fork", To: "x"})
	_ = a.AddArc(&Arc{From: "fork", To: "y"})
	_ = a.AddArc(&Arc{From: "x", To: "join"})
	_ = a.AddArc(&Arc{From: "y", To: "join"})
	_ = a.AddArc(&Arc{From: "join", To: "end"})
	r := NewRegisters(nil)
	var tr Trace
	if err := a.Run(r, 100, &tr); err != nil {
		t.Fatal(err)
	}
	if r.Visits["join"] != 1 {
		t.Errorf("join fired %d times, want 1 (waits for both tokens)", r.Visits["join"])
	}
	if r.Visits["x"] != 1 || r.Visits["y"] != 1 {
		t.Errorf("branch visits = %v", r.Visits)
	}
}

func BenchmarkCompileAndRunFig10(b *testing.B) {
	pd := virolab.Process()
	catalog := virolab.Catalog()
	schedule := virolab.DefaultResolutionSchedule
	for i := 0; i < b.N; i++ {
		inner := MetadataExecutor(catalog)
		exec := func(act *workflow.Activity, r *Registers) error {
			if err := inner(act, r); err != nil {
				return err
			}
			if act.Service == "PSF" {
				idx := r.Visits[act.ID] - 1
				if idx >= len(schedule) {
					idx = len(schedule) - 1
				}
				r.State.Get("D12").With(workflow.PropValue, expr.Number(schedule[idx]))
			}
			return nil
		}
		a, err := Compile(pd, exec)
		if err != nil {
			b.Fatal(err)
		}
		st := workflow.NewState(virolab.InitialData()...)
		if err := a.Run(NewRegisters(st), 1000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package atn

import "fmt"

// Push is the state kind that gives ATNs their power beyond finite-state
// machines: entering a Push state suspends the current network, runs a named
// subnetwork to completion on the same registers (the push-down stack), and
// then resumes along the state's outgoing arcs. Hierarchical workflows —
// composite activities whose body is itself a process description — compile
// to Push states.
const Push StateKind = 100

// Subnet names the subnetwork a Push state invokes (set on the State).
// It is resolved against the networks registered with AddSubnet.

// AddSubnet registers a named subnetwork.
func (a *ATN) AddSubnet(name string, sub *ATN) error {
	if name == "" {
		return fmt.Errorf("atn: subnetwork with empty name")
	}
	if a.subnets == nil {
		a.subnets = make(map[string]*ATN)
	}
	if _, dup := a.subnets[name]; dup {
		return fmt.Errorf("atn: subnetwork %q already registered", name)
	}
	a.subnets[name] = sub
	return nil
}

// Subnet returns the named subnetwork, or nil.
func (a *ATN) Subnet(name string) *ATN { return a.subnets[name] }

// maxPushDepth bounds subnetwork recursion (a subnetwork may push into
// further subnetworks, but self-recursive workflows must bottom out).
const maxPushDepth = 64

// runPush executes the subnetwork for a Push state on shared registers.
func (a *ATN) runPush(st *State, r *Registers, maxSteps int, trace *Trace, depth int) error {
	if depth >= maxPushDepth {
		return fmt.Errorf("atn: push depth exceeded at state %q", st.Name)
	}
	sub := a.subnets[st.Subnet]
	if sub == nil {
		return fmt.Errorf("atn: state %q pushes into unknown subnetwork %q", st.Name, st.Subnet)
	}
	// Subnetworks inherit the parent's registry so nested pushes resolve.
	if sub.subnets == nil {
		sub.subnets = a.subnets
	}
	return sub.run(r, maxSteps, trace, depth+1)
}

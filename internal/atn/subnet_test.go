package atn

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/workflow"
)

// linearNet builds start -> mids... -> final, tagging each fired state.
func linearNet(t *testing.T, prefix string, n int) *ATN {
	t.Helper()
	a := New(prefix + "0")
	for i := 0; i <= n; i++ {
		kind := Plain
		if i == n {
			kind = Final
		}
		name := prefix + string(rune('0'+i))
		if err := a.AddState(&State{Name: name, Kind: kind}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := a.AddArc(&Arc{
			From: prefix + string(rune('0'+i)),
			To:   prefix + string(rune('0'+i+1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestPushRunsSubnetwork(t *testing.T) {
	main := New("begin")
	_ = main.AddState(&State{Name: "begin"})
	_ = main.AddState(&State{Name: "call", Kind: Push, Subnet: "inner"})
	_ = main.AddState(&State{Name: "end", Kind: Final})
	_ = main.AddArc(&Arc{From: "begin", To: "call"})
	_ = main.AddArc(&Arc{From: "call", To: "end"})
	if err := main.AddSubnet("inner", linearNet(t, "s", 2)); err != nil {
		t.Fatal(err)
	}

	r := NewRegisters(nil)
	var tr Trace
	if err := main.Run(r, 100, &tr); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(tr.Fired, ",")
	want := "begin,call,s0,s1,s2,end"
	if got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
	// Subnetwork states share the registers.
	if r.Visits["s1"] != 1 || r.Visits["end"] != 1 {
		t.Errorf("visits = %v", r.Visits)
	}
}

func TestNestedPush(t *testing.T) {
	// main pushes into mid, which pushes into leaf.
	leaf := linearNet(t, "l", 1)
	mid := New("m0")
	_ = mid.AddState(&State{Name: "m0", Kind: Push, Subnet: "leaf"})
	_ = mid.AddState(&State{Name: "m1", Kind: Final})
	_ = mid.AddArc(&Arc{From: "m0", To: "m1"})

	main := New("a")
	_ = main.AddState(&State{Name: "a", Kind: Push, Subnet: "mid"})
	_ = main.AddState(&State{Name: "z", Kind: Final})
	_ = main.AddArc(&Arc{From: "a", To: "z"})
	_ = main.AddSubnet("mid", mid)
	_ = main.AddSubnet("leaf", leaf)

	r := NewRegisters(nil)
	var tr Trace
	if err := main.Run(r, 100, &tr); err != nil {
		t.Fatal(err)
	}
	want := "a,m0,l0,l1,m1,z"
	if got := strings.Join(tr.Fired, ","); got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

func TestPushUnknownSubnet(t *testing.T) {
	main := New("a")
	_ = main.AddState(&State{Name: "a", Kind: Push, Subnet: "ghost"})
	_ = main.AddState(&State{Name: "z", Kind: Final})
	_ = main.AddArc(&Arc{From: "a", To: "z"})
	if err := main.Run(NewRegisters(nil), 100, nil); err == nil {
		t.Error("unknown subnetwork accepted")
	}
}

func TestPushDepthBounded(t *testing.T) {
	// A self-recursive subnetwork must be cut off at maxPushDepth.
	rec := New("r0")
	_ = rec.AddState(&State{Name: "r0", Kind: Push, Subnet: "rec"})
	_ = rec.AddState(&State{Name: "r1", Kind: Final})
	_ = rec.AddArc(&Arc{From: "r0", To: "r1"})
	_ = rec.AddSubnet("rec", rec)
	err := rec.Run(NewRegisters(nil), 1<<20, nil)
	if err == nil || !strings.Contains(err.Error(), "push depth") {
		t.Errorf("err = %v, want push-depth error", err)
	}
}

func TestSubnetRegistration(t *testing.T) {
	a := New("s")
	sub := linearNet(t, "x", 1)
	if err := a.AddSubnet("", sub); err == nil {
		t.Error("empty subnet name accepted")
	}
	if err := a.AddSubnet("s1", sub); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSubnet("s1", sub); err == nil {
		t.Error("duplicate subnet accepted")
	}
	if a.Subnet("s1") != sub || a.Subnet("nope") != nil {
		t.Error("Subnet lookup broken")
	}
}

// TestCompositeWorkflow runs a hierarchical workflow: a parent process whose
// "reconstruct" step is a whole child process description, compiled to an
// ATN with a Push state.
func TestCompositeWorkflow(t *testing.T) {
	catalog := workflow.NewCatalog(
		&workflow.Service{
			Name:   "prep",
			Inputs: []workflow.ParamSpec{{Name: "A", Condition: `A.Classification = "raw"`}},
			Outputs: []workflow.OutputSpec{{Name: "B",
				Props: map[string]expr.Value{workflow.PropClassification: expr.String("ready")}}},
		},
		&workflow.Service{
			Name:   "work",
			Inputs: []workflow.ParamSpec{{Name: "A", Condition: `A.Classification = "ready"`}},
			Outputs: []workflow.OutputSpec{{Name: "B",
				Props: map[string]expr.Value{workflow.PropClassification: expr.String("done")}}},
		},
	)

	// Child: BEGIN -> work -> END, compiled as a subnetwork.
	child := workflow.NewProcess("child")
	child.Add(&workflow.Activity{ID: "cb", Kind: workflow.KindBegin, Name: "BEGIN"})
	child.Add(&workflow.Activity{ID: "cw", Kind: workflow.KindEndUser, Name: "work", Service: "work"})
	child.Add(&workflow.Activity{ID: "ce", Kind: workflow.KindEnd, Name: "END"})
	child.Connect("cb", "cw")
	child.Connect("cw", "ce")
	exec := MetadataExecutor(catalog)
	childNet, err := Compile(child, exec)
	if err != nil {
		t.Fatal(err)
	}

	// Parent: begin -> prep -> [push child] -> end, hand-assembled.
	parent := New("begin")
	_ = parent.AddState(&State{Name: "begin"})
	prep := &workflow.Activity{ID: "p", Kind: workflow.KindEndUser, Name: "prep", Service: "prep"}
	_ = parent.AddState(&State{Name: "prep", Enter: func(r *Registers) error { return exec(prep, r) }})
	_ = parent.AddState(&State{Name: "sub", Kind: Push, Subnet: "child"})
	_ = parent.AddState(&State{Name: "end", Kind: Final})
	_ = parent.AddArc(&Arc{From: "begin", To: "prep"})
	_ = parent.AddArc(&Arc{From: "prep", To: "sub"})
	_ = parent.AddArc(&Arc{From: "sub", To: "end"})
	_ = parent.AddSubnet("child", childNet)

	st := workflow.NewState(workflow.NewDataItem("in", "raw"))
	r := NewRegisters(st)
	if err := parent.Run(r, 100, nil); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, item := range r.State.Items() {
		if item.Classification() == "done" {
			found = true
		}
	}
	if !found {
		t.Errorf("composite workflow did not produce 'done': %v", r.State)
	}
}

// Package atn implements the Augmented Transition Network formalism the
// paper uses for process descriptions ("we use a formalism similar to the
// one provided by Augmented Transition Networks"; "the coordination service
// implements an abstract ATN machine").
//
// An ATN here is a set of named states connected by arcs; each arc carries
// an optional Test (a predicate over the machine's registers) and an
// optional Action (a register update). Registers hold the case data state.
// The machine supports multiple simultaneously active states, which models
// the Fork/Join concurrency of process descriptions, with join states that
// wait for all inbound tokens.
//
// Compile translates a workflow.ProcessDescription into an ATN whose
// end-user activities invoke a caller-supplied executor, giving a dry-run
// (or fully simulated) interpretation of a plan independent of the agent
// fabric.
package atn

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/workflow"
)

// Registers is the machine's mutable store: the case data state plus
// scratch counters.
type Registers struct {
	State  *workflow.State
	Visits map[string]int
}

// NewRegisters builds registers over a data state.
func NewRegisters(st *workflow.State) *Registers {
	if st == nil {
		st = workflow.NewState()
	}
	return &Registers{State: st, Visits: make(map[string]int)}
}

// Arc connects two states.
type Arc struct {
	From, To string
	// Test guards the arc; nil means always enabled.
	Test func(r *Registers) (bool, error)
	// Act runs when the arc is taken; nil means no action.
	Act func(r *Registers) error
	// Label is diagnostic (e.g. the transition ID or condition source).
	Label string
}

// StateKind classifies states for token semantics.
type StateKind int

// State kinds: Plain states forward a token along the first enabled arc;
// AllOut states forward along every arc (Fork); WaitAll states require a
// token from each inbound arc before firing (Join); Final states absorb.
const (
	Plain StateKind = iota
	AllOut
	WaitAll
	Final
)

// State is one ATN state.
type State struct {
	Name string
	Kind StateKind
	// Enter runs when a token arrives and the state fires; nil is a no-op.
	// For end-user activities this is the execution hook.
	Enter func(r *Registers) error
	// Subnet names the subnetwork a Push state invokes.
	Subnet string
}

// ATN is the network.
type ATN struct {
	Start   string
	states  map[string]*State
	out     map[string][]*Arc
	in      map[string]int // inbound arc counts (for WaitAll)
	subnets map[string]*ATN
}

// New returns an empty network with the given start state name.
func New(start string) *ATN {
	return &ATN{Start: start, states: map[string]*State{}, out: map[string][]*Arc{}, in: map[string]int{}}
}

// AddState registers a state.
func (a *ATN) AddState(s *State) error {
	if s.Name == "" {
		return fmt.Errorf("atn: state with empty name")
	}
	if _, dup := a.states[s.Name]; dup {
		return fmt.Errorf("atn: state %q already defined", s.Name)
	}
	a.states[s.Name] = s
	return nil
}

// AddArc registers an arc; both endpoints must exist.
func (a *ATN) AddArc(arc *Arc) error {
	if a.states[arc.From] == nil {
		return fmt.Errorf("atn: arc from unknown state %q", arc.From)
	}
	if a.states[arc.To] == nil {
		return fmt.Errorf("atn: arc to unknown state %q", arc.To)
	}
	a.out[arc.From] = append(a.out[arc.From], arc)
	a.in[arc.To]++
	return nil
}

// States returns the state names sorted.
func (a *ATN) States() []string {
	names := make([]string, 0, len(a.states))
	for n := range a.states {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Trace records fired states in order.
type Trace struct {
	Fired []string
}

// Run executes the token game from Start until every token is absorbed in
// Final states (returning nil) or no progress is possible. maxSteps bounds
// total firings.
func (a *ATN) Run(r *Registers, maxSteps int, trace *Trace) error {
	return a.run(r, maxSteps, trace, 0)
}

func (a *ATN) run(r *Registers, maxSteps int, trace *Trace, depth int) error {
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	start := a.states[a.Start]
	if start == nil {
		return fmt.Errorf("atn: unknown start state %q", a.Start)
	}
	tokens := []string{a.Start}
	waiting := map[string]int{}
	steps := 0
	finals := 0
	for len(tokens) > 0 {
		if steps++; steps > maxSteps {
			return fmt.Errorf("atn: exceeded %d steps", maxSteps)
		}
		name := tokens[0]
		tokens = tokens[1:]
		st := a.states[name]
		if st == nil {
			return fmt.Errorf("atn: token at unknown state %q", name)
		}
		if st.Kind == WaitAll {
			waiting[name]++
			if waiting[name] < a.in[name] {
				continue
			}
			waiting[name] = 0
		}
		r.Visits[name]++
		if trace != nil {
			trace.Fired = append(trace.Fired, name)
		}
		if st.Enter != nil {
			if err := st.Enter(r); err != nil {
				return fmt.Errorf("atn: state %s: %w", name, err)
			}
		}
		if st.Kind == Push {
			if err := a.runPush(st, r, maxSteps, trace, depth); err != nil {
				return err
			}
		}
		if st.Kind == Final {
			finals++
			continue
		}
		arcs := a.out[name]
		if len(arcs) == 0 {
			return fmt.Errorf("atn: token stuck at non-final state %q", name)
		}
		if st.Kind == AllOut {
			for _, arc := range arcs {
				if err := a.take(arc, r, &tokens); err != nil {
					return err
				}
			}
			continue
		}
		taken := false
		var fallback *Arc
		for _, arc := range arcs {
			if arc.Test == nil {
				if fallback == nil {
					fallback = arc
				}
				continue
			}
			ok, err := arc.Test(r)
			if err != nil {
				return fmt.Errorf("atn: arc %s->%s: %w", arc.From, arc.To, err)
			}
			if ok {
				if err := a.take(arc, r, &tokens); err != nil {
					return err
				}
				taken = true
				break
			}
		}
		if !taken {
			if fallback == nil {
				fallback = arcs[len(arcs)-1]
			}
			if err := a.take(fallback, r, &tokens); err != nil {
				return err
			}
		}
	}
	if finals == 0 {
		return fmt.Errorf("atn: run ended without reaching a final state")
	}
	return nil
}

func (a *ATN) take(arc *Arc, r *Registers, tokens *[]string) error {
	if arc.Act != nil {
		if err := arc.Act(r); err != nil {
			return fmt.Errorf("atn: arc %s->%s action: %w", arc.From, arc.To, err)
		}
	}
	*tokens = append(*tokens, arc.To)
	return nil
}

// Executor runs one end-user activity during an ATN interpretation: it
// receives the activity and the registers, and updates the data state.
type Executor func(act *workflow.Activity, r *Registers) error

// MetadataExecutor returns an Executor that applies the activity's service
// pre/postconditions from the catalog to the data state — a pure dry run of
// the plan, equivalent to one flow of the planner's fitness simulation.
func MetadataExecutor(catalog *workflow.Catalog) Executor {
	seq := 0
	return func(act *workflow.Activity, r *Registers) error {
		svc := catalog.Get(act.Service)
		if svc == nil {
			return fmt.Errorf("unknown service %q", act.Service)
		}
		seq++
		next, ok := svc.Apply(r.State, act.Outputs, seq)
		if !ok {
			return fmt.Errorf("preconditions of %s unmet", act.Service)
		}
		*r.State = *next
		return nil
	}
}

// Compile translates a process description into an ATN: activities become
// states (Fork is AllOut, Join is WaitAll, End is Final), transitions become
// arcs whose Tests evaluate the transition conditions against the data
// state, and end-user states invoke exec on entry.
func Compile(p *workflow.ProcessDescription, exec Executor) (*ATN, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	begin := p.Begin()
	a := New(begin.ID)
	for _, act := range p.Activities {
		act := act
		st := &State{Name: act.ID}
		switch act.Kind {
		case workflow.KindFork:
			st.Kind = AllOut
		case workflow.KindJoin:
			st.Kind = WaitAll
		case workflow.KindEnd:
			st.Kind = Final
		case workflow.KindEndUser:
			if exec != nil {
				st.Enter = func(r *Registers) error { return exec(act, r) }
			}
		}
		if err := a.AddState(st); err != nil {
			return nil, err
		}
	}
	for _, t := range p.Transitions {
		arc := &Arc{From: t.Source, To: t.Dest, Label: t.ID}
		if t.Condition != "" {
			node, err := expr.Parse(t.Condition)
			if err != nil {
				return nil, fmt.Errorf("atn: transition %s: %w", t.ID, err)
			}
			arc.Test = func(r *Registers) (bool, error) { return node.Eval(r.State), nil }
		}
		if err := a.AddArc(arc); err != nil {
			return nil, err
		}
	}
	return a, nil
}

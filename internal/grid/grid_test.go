package grid

import (
	"strings"
	"testing"
)

func twoNodeGrid(t *testing.T) *Grid {
	t.Helper()
	g := New(1)
	if err := g.AddNode(&Node{
		ID: "n1", Domain: "a.edu",
		Hardware:   Hardware{Type: "PC-cluster", Speed: 1, BandwidthMbps: 100, LatencyUs: 100},
		CostPerSec: 0.01,
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{
		ID: "n2", Domain: "b.gov",
		Hardware:   Hardware{Type: "SMP", Speed: 2, BandwidthMbps: 1000, LatencyUs: 10},
		CostPerSec: 0.05,
		Software:   []Software{{Name: "P3DR", Version: "2"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainer(&Container{ID: "c1", NodeID: "n1", Services: []string{"POD", "PSF"}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainer(&Container{ID: "c2", NodeID: "n2", Services: []string{"P3DR", "POR"}}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegistration(t *testing.T) {
	g := twoNodeGrid(t)
	if g.Node("n1") == nil || g.Container("c2") == nil {
		t.Fatal("lookups failed")
	}
	if g.Node("nx") != nil || g.Container("cx") != nil {
		t.Fatal("phantom lookups")
	}
	for _, err := range []error{
		g.AddNode(&Node{ID: "n1", Hardware: Hardware{Speed: 1}}),
		g.AddNode(&Node{ID: "", Hardware: Hardware{Speed: 1}}),
		g.AddNode(&Node{ID: "n3"}), // zero speed
		g.AddContainer(&Container{ID: "c1", NodeID: "n1"}),
		g.AddContainer(&Container{ID: "", NodeID: "n1"}),
		g.AddContainer(&Container{ID: "c3", NodeID: "ghost"}),
	} {
		if err == nil {
			t.Error("invalid registration accepted")
		}
	}
	if len(g.Nodes()) != 2 || len(g.Containers()) != 2 {
		t.Error("listing sizes wrong")
	}
	if g.Nodes()[0].ID != "n1" || g.Containers()[1].ID != "c2" {
		t.Error("listings not sorted")
	}
}

func TestNodeHelpers(t *testing.T) {
	g := twoNodeGrid(t)
	n2 := g.Node("n2")
	if !n2.HasSoftware("P3DR") || n2.HasSoftware("POD") {
		t.Error("HasSoftware mismatch")
	}
	if !n2.Up() {
		t.Error("new node should be up")
	}
	c2 := g.Container("c2")
	if !c2.Provides("P3DR") || c2.Provides("PSF") {
		t.Error("Provides mismatch")
	}
}

func TestContainersForAndFailures(t *testing.T) {
	g := twoNodeGrid(t)
	if cs := g.ContainersFor("P3DR"); len(cs) != 1 || cs[0].ID != "c2" {
		t.Fatalf("ContainersFor(P3DR) = %v", cs)
	}
	if err := g.SetNodeUp("n2", false); err != nil {
		t.Fatal(err)
	}
	if cs := g.ContainersFor("P3DR"); len(cs) != 0 {
		t.Errorf("failed node still offers services: %v", cs)
	}
	if err := g.SetNodeUp("n2", true); err != nil {
		t.Fatal(err)
	}
	if cs := g.ContainersFor("P3DR"); len(cs) != 1 {
		t.Error("repair did not restore services")
	}
	if err := g.SetNodeUp("ghost", true); err == nil {
		t.Error("SetNodeUp on ghost accepted")
	}
	if cs := g.ContainersFor("NOPE"); len(cs) != 0 {
		t.Errorf("unknown service has providers: %v", cs)
	}
}

func TestExecTimeModel(t *testing.T) {
	slow := &Node{Hardware: Hardware{Speed: 1, BandwidthMbps: 100, LatencyUs: 100}}
	fast := &Node{Hardware: Hardware{Speed: 4, BandwidthMbps: 10000, LatencyUs: 1}}
	tSlow := ExecTime(100, 1000, slow)
	tFast := ExecTime(100, 1000, fast)
	if tFast >= tSlow {
		t.Errorf("fast node slower: %g >= %g", tFast, tSlow)
	}
	// 100s compute + 1000MB over 100Mbps = 80s transfer.
	if tSlow < 179 || tSlow > 181 {
		t.Errorf("tSlow = %g, want ~180", tSlow)
	}
	// Zero-bandwidth nodes pay no modelled transfer cost.
	if got := ExecTime(10, 100, &Node{Hardware: Hardware{Speed: 2}}); got != 5 {
		t.Errorf("no-network ExecTime = %g, want 5", got)
	}
}

func TestExecute(t *testing.T) {
	g := twoNodeGrid(t)
	ex, err := g.Execute("c2", "P3DR", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Node != "n2" || ex.Service != "P3DR" || !ex.OK {
		t.Errorf("execution = %+v", ex)
	}
	// Duration: ~100/2=50s within +/-10% jitter plus small transfer.
	if ex.Duration < 44 || ex.Duration > 56 {
		t.Errorf("duration = %g, want ~50", ex.Duration)
	}
	if ex.Cost <= 0 {
		t.Error("cost not accounted")
	}
	if g.BusyTime() <= 0 {
		t.Error("busy time not accumulated")
	}
	if len(g.History()) != 1 {
		t.Error("history not recorded")
	}

	if _, err := g.Execute("cx", "P3DR", 1, 0); err == nil {
		t.Error("unknown container accepted")
	}
	if _, err := g.Execute("c2", "PSF", 1, 0); err == nil {
		t.Error("unprovided service accepted")
	}
	_ = g.SetNodeUp("n2", false)
	if _, err := g.Execute("c2", "P3DR", 1, 0); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("down-node execute = %v", err)
	}
}

func TestExecuteFailureSampling(t *testing.T) {
	g := New(7)
	_ = g.AddNode(&Node{ID: "flaky", Hardware: Hardware{Speed: 1}, FailureRate: 0.5})
	_ = g.AddContainer(&Container{ID: "c", NodeID: "flaky", Services: []string{"S"}})
	fails := 0
	for i := 0; i < 200; i++ {
		if _, err := g.Execute("c", "S", 1, 0); err != nil {
			fails++
		}
	}
	if fails < 60 || fails > 140 {
		t.Errorf("failures = %d/200, want ~100 at rate 0.5", fails)
	}
	// History keeps failed executions too.
	if len(g.History()) != 200 {
		t.Errorf("history = %d, want 200", len(g.History()))
	}
}

func TestEquivalenceClasses(t *testing.T) {
	g := twoNodeGrid(t)
	_ = g.AddNode(&Node{ID: "n3", Hardware: Hardware{Type: "PC-cluster", Speed: 1.4}})
	classes := g.EquivalenceClasses()
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	if classes[0].Key != "PC-cluster/speed=1" || len(classes[0].Nodes) != 2 {
		t.Errorf("first class = %+v", classes[0])
	}
	_ = g.SetNodeUp("n3", false)
	classes = g.EquivalenceClasses()
	if len(classes[0].Nodes) != 1 {
		t.Error("down node still grouped")
	}
}

func TestSynthetic(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	g := Synthetic(cfg)
	wantNodes := cfg.Clusters + cfg.SMPs + cfg.Supercomputers
	if len(g.Nodes()) != wantNodes {
		t.Fatalf("nodes = %d, want %d", len(g.Nodes()), wantNodes)
	}
	if len(g.Containers()) != wantNodes {
		t.Fatalf("containers = %d, want %d", len(g.Containers()), wantNodes)
	}
	// Every service must be available somewhere.
	for _, s := range cfg.Services {
		if len(g.ContainersFor(s)) == 0 {
			t.Errorf("service %s has no providers", s)
		}
	}
	// Heterogeneity: more than one hardware type present.
	types := map[string]bool{}
	for _, n := range g.Nodes() {
		types[n.Hardware.Type] = true
	}
	if len(types) < 3 {
		t.Errorf("hardware types = %v, want 3", types)
	}
	// Determinism.
	g2 := Synthetic(cfg)
	if len(g2.Nodes()) != len(g.Nodes()) || g2.Nodes()[0].Hardware.Speed != g.Nodes()[0].Hardware.Speed {
		t.Error("synthetic grid not deterministic")
	}
}

func BenchmarkExecute(b *testing.B) {
	g := Synthetic(DefaultSyntheticConfig())
	cs := g.ContainersFor("P3DR")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Execute(cs[i%len(cs)].ID, "P3DR", 100, 10)
	}
}

package grid

import (
	"fmt"
	"math/rand"
)

// SyntheticConfig parameterizes the synthetic grid generator.
type SyntheticConfig struct {
	Clusters       int      // PC clusters (high latency, low bandwidth switches)
	SMPs           int      // shared-memory machines
	Supercomputers int      // fast, reliable, expensive nodes
	Services       []string // end-user services spread across containers
	FailureRate    float64  // baseline per-execution failure probability
	Seed           int64
}

// DefaultSyntheticConfig is a medium-sized heterogeneous grid hosting the
// case-study services.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Clusters:       6,
		SMPs:           3,
		Supercomputers: 1,
		Services:       []string{"POD", "P3DR", "POR", "PSF"},
		FailureRate:    0.02,
		Seed:           1,
	}
}

// Synthetic builds a heterogeneous grid in the spirit of Section 1: PC
// clusters with slow interconnects, SMPs, and a supercomputer, spread over
// administrative domains, each with an application container offering a
// subset of the services. Every service is guaranteed to be offered by at
// least one container.
func Synthetic(cfg SyntheticConfig) *Grid {
	g := New(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	domains := []string{"ucf.edu", "purdue.edu", "anl.gov", "ncsa.edu"}
	idx := 0
	add := func(kind string, hw Hardware, cost float64, failMul float64) *Node {
		idx++
		n := &Node{
			ID:          fmt.Sprintf("%s-%02d", kind, idx),
			Domain:      domains[idx%len(domains)],
			Hardware:    hw,
			CostPerSec:  cost,
			FailureRate: cfg.FailureRate * failMul,
		}
		for _, s := range cfg.Services {
			n.Software = append(n.Software, Software{Name: s, Type: "application", Version: "1.0"})
		}
		if err := g.AddNode(n); err != nil {
			panic(err)
		}
		return n
	}

	var nodes []*Node
	for i := 0; i < cfg.Clusters; i++ {
		nodes = append(nodes, add("cluster", Hardware{
			Type:          "PC-cluster",
			Speed:         1.0 + rng.Float64(), // 1.0 - 2.0
			Cores:         16 + 16*rng.Intn(4),
			MemoryMB:      4096,
			BandwidthMbps: 100, // slow switch
			LatencyUs:     100, // high latency
		}, 0.01, 1.5))
	}
	for i := 0; i < cfg.SMPs; i++ {
		nodes = append(nodes, add("smp", Hardware{
			Type:          "SMP",
			Speed:         2.0 + rng.Float64(), // 2.0 - 3.0
			Cores:         8,
			MemoryMB:      16384,
			BandwidthMbps: 1000,
			LatencyUs:     10,
		}, 0.05, 1.0))
	}
	for i := 0; i < cfg.Supercomputers; i++ {
		nodes = append(nodes, add("super", Hardware{
			Type:          "supercomputer",
			Speed:         4.0,
			Cores:         512,
			MemoryMB:      262144,
			BandwidthMbps: 10000,
			LatencyUs:     1,
		}, 0.25, 0.2))
	}

	// One container per node, each offering a rotating subset of services;
	// ensure global coverage by giving the first container everything.
	for i, n := range nodes {
		svcs := cfg.Services
		if i > 0 && len(cfg.Services) > 1 {
			k := 1 + rng.Intn(len(cfg.Services))
			perm := rng.Perm(len(cfg.Services))[:k]
			svcs = make([]string, 0, k)
			for _, j := range perm {
				svcs = append(svcs, cfg.Services[j])
			}
		}
		if err := g.AddContainer(&Container{
			ID:       fmt.Sprintf("ac-%02d", i+1),
			NodeID:   n.ID,
			Services: svcs,
		}); err != nil {
			panic(err)
		}
	}
	return g
}

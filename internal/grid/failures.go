package grid

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// FailurePlan schedules stochastic node failures and repairs on a
// discrete-event engine: each node alternates exponentially distributed
// up-times (mean MTBF) and down-times (mean MTTR), the classic availability
// model. Events toggle the node's status in the grid, so monitoring,
// matchmaking, and the simulation service all observe the churn.
type FailurePlan struct {
	MTBF    float64 // mean time between failures, simulated seconds
	MTTR    float64 // mean time to repair
	Horizon float64 // stop scheduling past this time (0 = engine horizon)

	// Transitions records the injected events for inspection.
	Transitions []Transition
}

// Transition is one injected status change.
type Transition struct {
	Time float64
	Node string
	Up   bool
}

// Inject schedules the failure/repair processes for every current node of g
// onto eng. Returns the plan for inspection after the run.
func (g *Grid) Inject(eng *sim.Engine, mtbf, mttr, horizon float64) (*FailurePlan, error) {
	if mtbf <= 0 || mttr <= 0 {
		return nil, fmt.Errorf("grid: MTBF and MTTR must be positive (got %g, %g)", mtbf, mttr)
	}
	plan := &FailurePlan{MTBF: mtbf, MTTR: mttr, Horizon: horizon}
	rng := eng.Rand()
	for _, n := range g.Nodes() {
		g.scheduleFailure(eng, rng, plan, n.ID)
	}
	return plan, nil
}

func (g *Grid) scheduleFailure(eng *sim.Engine, rng *rand.Rand, plan *FailurePlan, node string) {
	delay := rng.ExpFloat64() * plan.MTBF
	if plan.Horizon > 0 && eng.Now()+delay > plan.Horizon {
		return
	}
	eng.Schedule(delay, "fail:"+node, func() {
		_ = g.SetNodeUp(node, false)
		plan.Transitions = append(plan.Transitions, Transition{Time: eng.Now(), Node: node, Up: false})
		g.scheduleRepair(eng, rng, plan, node)
	})
}

func (g *Grid) scheduleRepair(eng *sim.Engine, rng *rand.Rand, plan *FailurePlan, node string) {
	delay := rng.ExpFloat64() * plan.MTTR
	if plan.Horizon > 0 && eng.Now()+delay > plan.Horizon {
		return
	}
	eng.Schedule(delay, "repair:"+node, func() {
		_ = g.SetNodeUp(node, true)
		plan.Transitions = append(plan.Transitions, Transition{Time: eng.Now(), Node: node, Up: true})
		g.scheduleFailure(eng, rng, plan, node)
	})
}

// Availability returns the fraction of the horizon each node was up under
// the recorded transitions (assuming all nodes start up at time 0).
func (p *FailurePlan) Availability(horizon float64) map[string]float64 {
	if horizon <= 0 {
		return nil
	}
	up := map[string]float64{}
	lastChange := map[string]float64{}
	state := map[string]bool{}
	for _, tr := range p.Transitions {
		prevUp, seen := state[tr.Node]
		if !seen {
			prevUp = true
		}
		if prevUp {
			up[tr.Node] += tr.Time - lastChange[tr.Node]
		}
		state[tr.Node] = tr.Up
		lastChange[tr.Node] = tr.Time
	}
	out := map[string]float64{}
	for node, last := range lastChange {
		total := up[node]
		if state[node] {
			total += horizon - last
		}
		out[node] = total / horizon
	}
	return out
}

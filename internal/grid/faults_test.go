package grid

import (
	"strings"
	"testing"
)

// faultGrid builds a two-node grid with zero advertised failure rates, so
// every failure observed in these tests is an injected one.
func faultGrid(t *testing.T) *Grid {
	t.Helper()
	g := New(42)
	for _, id := range []string{"n1", "n2"} {
		if err := g.AddNode(&Node{
			ID: id, Domain: "test",
			Hardware:   Hardware{Type: "PC-cluster", Speed: 1, BandwidthMbps: 1000},
			CostPerSec: 0.01,
		}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddContainer(&Container{ID: "ac-" + id, NodeID: id, Services: []string{"S"}}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFaultSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec *FaultSpec
		ok   bool
	}{
		{"nil is valid", nil, true},
		{"zero value", &FaultSpec{}, true},
		{"full rates", &FaultSpec{FailureRate: 1, CrashRate: 1, SlowFactor: 2}, true},
		{"negative failure rate", &FaultSpec{FailureRate: -0.1}, false},
		{"failure rate above 1", &FaultSpec{FailureRate: 1.1}, false},
		{"crash rate above 1", &FaultSpec{CrashRate: 2}, false},
		{"slow factor below 1", &FaultSpec{SlowFactor: 0.5}, false},
		{"slow factor zero ok", &FaultSpec{SlowFactor: 0}, true},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSetFaultsRejectsUnknownNode(t *testing.T) {
	g := faultGrid(t)
	err := g.SetFaults(&FaultSpec{Nodes: []string{"nope"}, FailureRate: 0.5})
	if err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("SetFaults with unknown node: %v", err)
	}
	if err := g.SetFaults(&FaultSpec{Nodes: []string{"n1"}, FailureRate: 0.5}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	got := g.Faults()
	if got == nil || got.FailureRate != 0.5 || len(got.Nodes) != 1 || got.Nodes[0] != "n1" {
		t.Fatalf("Faults() = %+v", got)
	}
	if err := g.SetFaults(nil); err != nil {
		t.Fatalf("clear faults: %v", err)
	}
	if g.Faults() != nil {
		t.Fatal("faults not cleared")
	}
}

// TestFaultInjectionDeterministic runs the same execution sequence on two
// grids with the same seeds and expects identical outcomes, and on a third
// grid with a different fault seed expects a different failure pattern.
func TestFaultInjectionDeterministic(t *testing.T) {
	outcomes := func(faultSeed int64) string {
		g := faultGrid(t)
		if err := g.SetFaults(&FaultSpec{Seed: faultSeed, FailureRate: 0.4}); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			_, err := g.Execute("ac-n1", "S", 10, 0)
			if err != nil {
				sb.WriteByte('F')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	a, b := outcomes(7), outcomes(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "F") || !strings.Contains(a, ".") {
		t.Fatalf("outcome pattern not mixed at rate 0.4: %s", a)
	}
	if c := outcomes(8); c == a {
		t.Fatalf("different fault seed produced identical pattern: %s", c)
	}
}

// TestFaultStreamsPerNode checks that injection on one node is independent
// of traffic on another: interleaving executions on n2 must not change n1's
// injected outcome sequence.
func TestFaultStreamsPerNode(t *testing.T) {
	run := func(interleave bool) string {
		g := faultGrid(t)
		if err := g.SetFaults(&FaultSpec{Seed: 11, FailureRate: 0.5}); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < 30; i++ {
			if interleave {
				_, _ = g.Execute("ac-n2", "S", 10, 0)
			}
			if _, err := g.Execute("ac-n1", "S", 10, 0); err != nil {
				sb.WriteByte('F')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	if plain, mixed := run(false), run(true); plain != mixed {
		t.Fatalf("n1 outcomes depend on n2 traffic:\n%s\n%s", plain, mixed)
	}
}

func TestFaultSlowFactor(t *testing.T) {
	base := faultGrid(t)
	ex1, err := base.Execute("ac-n1", "S", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow := faultGrid(t)
	if err := slow.SetFaults(&FaultSpec{Seed: 1, SlowFactor: 3}); err != nil {
		t.Fatal(err)
	}
	ex2, err := slow.Execute("ac-n1", "S", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex2.Duration, ex1.Duration*3; got < want*0.999 || got > want*1.001 {
		t.Fatalf("slow duration = %g, want %g", got, want)
	}
}

// TestFaultCrashTakesNodeDown drives executions at FailureRate 1 and
// CrashRate 1: the very first execution must fail as a fault, crash the
// node, record the crash, and leave the node down for later calls.
func TestFaultCrashTakesNodeDown(t *testing.T) {
	g := faultGrid(t)
	if err := g.SetFaults(&FaultSpec{Seed: 3, Nodes: []string{"n1"}, FailureRate: 1, CrashRate: 1}); err != nil {
		t.Fatal(err)
	}
	ex, err := g.Execute("ac-n1", "S", 10, 0)
	if err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("want crash error, got %v", err)
	}
	if ex.OK || !ex.Fault {
		t.Fatalf("execution record = %+v, want failed fault", ex)
	}
	if g.Node("n1").Up() {
		t.Fatal("node still up after crash")
	}
	crashes := g.Crashes()
	if len(crashes) != 1 || crashes[0].Node != "n1" {
		t.Fatalf("crashes = %+v", crashes)
	}
	// Further executions fail fast on the downed node, no new crash records.
	if _, err := g.Execute("ac-n1", "S", 10, 0); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("want node-down error, got %v", err)
	}
	if len(g.Crashes()) != 1 {
		t.Fatal("crash recorded twice")
	}
	// The untargeted node is unaffected.
	if _, err := g.Execute("ac-n2", "S", 10, 0); err != nil {
		t.Fatalf("n2 execution failed: %v", err)
	}
}

package grid

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// FaultSpec configures deterministic fault injection on a grid: an extra
// seeded per-node failure probability, a chance that an injected failure
// crashes the whole node (taking every container on it down, as in Figure 3),
// and a slow-node mode that stretches execution times. Injection draws come
// from per-node streams derived from Seed, so the k-th execution on a node
// has the same injected outcome regardless of what other nodes do — which is
// what makes chaos runs reproducible under concurrent dispatch.
type FaultSpec struct {
	// Seed drives the injection streams; the same seed over the same
	// per-node execution sequence reproduces the same faults.
	Seed int64 `json:"seed"`
	// Nodes restricts injection to the named nodes; empty means all nodes.
	Nodes []string `json:"nodes,omitempty"`
	// FailureRate is the injected per-execution failure probability on
	// matching nodes, on top of the node's advertised FailureRate.
	FailureRate float64 `json:"failureRate,omitempty"`
	// CrashRate is the probability that an injected failure crashes the node
	// (it goes down mid-execution and stays down until repaired).
	CrashRate float64 `json:"crashRate,omitempty"`
	// SlowFactor >= 1 multiplies execution durations on matching nodes
	// (degraded-node mode); 0 leaves durations unchanged.
	SlowFactor float64 `json:"slowFactor,omitempty"`
}

// Validate checks the spec's ranges.
func (f *FaultSpec) Validate() error {
	if f == nil {
		return nil
	}
	if f.FailureRate < 0 || f.FailureRate > 1 {
		return fmt.Errorf("grid: fault failureRate %g outside [0,1]", f.FailureRate)
	}
	if f.CrashRate < 0 || f.CrashRate > 1 {
		return fmt.Errorf("grid: fault crashRate %g outside [0,1]", f.CrashRate)
	}
	if f.SlowFactor != 0 && f.SlowFactor < 1 {
		return fmt.Errorf("grid: fault slowFactor %g must be >= 1 (or 0 for none)", f.SlowFactor)
	}
	return nil
}

// applies reports whether the spec targets the named node.
func (f *FaultSpec) applies(node string) bool {
	if f == nil {
		return false
	}
	if len(f.Nodes) == 0 {
		return true
	}
	for _, n := range f.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Crash records one injected node crash.
type Crash struct {
	Node  string  `json:"node"`
	Clock float64 `json:"clock"` // grid busy-time when the crash happened
}

// SetFaults installs (or, with nil, clears) a fault-injection spec. The
// spec is copied; per-node injection streams are re-seeded, so installing
// the same spec twice reproduces the same fault sequence. Named nodes must
// exist.
func (g *Grid) SetFaults(f *FaultSpec) error {
	if err := f.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f == nil {
		g.faults = nil
		g.faultStreams = nil
		return nil
	}
	for _, n := range f.Nodes {
		if _, ok := g.nodes[n]; !ok {
			return fmt.Errorf("grid: fault spec names unknown node %q", n)
		}
	}
	spec := *f
	spec.Nodes = append([]string(nil), f.Nodes...)
	g.faults = &spec
	g.faultStreams = make(map[string]*rand.Rand, len(g.nodes))
	for id := range g.nodes {
		g.faultStreams[id] = nodeStream(spec.Seed, id, 0x9e3779b97f4a7c15)
	}
	return nil
}

// Faults returns a copy of the installed fault spec, or nil.
func (g *Grid) Faults() *FaultSpec {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.faults == nil {
		return nil
	}
	spec := *g.faults
	spec.Nodes = append([]string(nil), g.faults.Nodes...)
	return &spec
}

// Crashes returns the injected node crashes recorded so far.
func (g *Grid) Crashes() []Crash {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]Crash(nil), g.crashes...)
}

// nodeStream derives a deterministic per-node random stream from a base seed
// and the node ID, so streams are independent of node registration order and
// of activity on other nodes.
func nodeStream(seed int64, node string, salt uint64) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64()^salt)))
}

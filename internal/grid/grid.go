// Package grid simulates the heterogeneous, resource-rich, non-cooperative
// environment of the paper's Section 1: nodes in different administrative
// domains with hardware/software descriptions, application containers
// hosting end-user services, spot-market costs, and node failures. The
// coordination and matchmaking services operate purely on this metadata, so
// the simulation preserves the decision problems the paper studies (resource
// matching, hot-spot contention, failure-driven re-planning) without real
// hardware.
package grid

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Hardware mirrors the Hardware ontology class (Figure 12).
type Hardware struct {
	Type          string  // e.g. "PC-cluster", "SMP", "supercomputer"
	Speed         float64 // relative CPU speed; 1.0 is the reference node
	Cores         int
	MemoryMB      float64
	BandwidthMbps float64 // interconnect bandwidth
	LatencyUs     float64 // interconnect latency, microseconds
	Manufacturer  string
	Model         string
}

// Software mirrors the Software ontology class.
type Software struct {
	Name    string
	Type    string
	Version string
}

// Node is one autonomous resource on the grid.
type Node struct {
	ID          string
	Domain      string // administrative domain
	Hardware    Hardware
	Software    []Software
	CostPerSec  float64 // spot-market cost of one second of computation
	FailureRate float64 // probability that a single execution fails on this node

	up bool
}

// Up reports whether the node is currently available.
func (n *Node) Up() bool { return n.up }

// HasSoftware reports whether the named package is installed.
func (n *Node) HasSoftware(name string) bool {
	for _, s := range n.Software {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Container is an Application Container: the runtime that hosts end-user
// services on a node (Figure 1).
type Container struct {
	ID       string
	NodeID   string
	Services []string // end-user service names this container can execute
}

// Provides reports whether the container can execute the named service.
func (c *Container) Provides(service string) bool {
	for _, s := range c.Services {
		if s == service {
			return true
		}
	}
	return false
}

// Execution records one completed (or failed) service execution, feeding the
// brokerage service's past-performance data base.
type Execution struct {
	Service   string
	Container string
	Node      string
	Duration  float64 // simulated seconds
	Cost      float64
	OK        bool
	// Fault marks a failure caused by the injected fault spec rather than
	// the node's advertised failure rate.
	Fault bool
}

// Grid is the simulated environment. All methods are safe for concurrent
// use; the coordination and monitoring agents query it from different
// goroutines.
type Grid struct {
	mu         sync.RWMutex
	nodes      map[string]*Node
	containers map[string]*Container
	seed       int64
	// streams holds one jitter/failure random stream per node, derived from
	// the grid seed and the node ID. Per-node streams keep executions on one
	// node deterministic regardless of concurrent activity on other nodes.
	streams      map[string]*rand.Rand
	faults       *FaultSpec
	faultStreams map[string]*rand.Rand
	crashes      []Crash
	history      []Execution
	clock        float64 // accumulated busy time, advanced by Execute
}

// New returns an empty grid with deterministic per-node failure/jitter
// streams derived from seed.
func New(seed int64) *Grid {
	return &Grid{
		nodes:      make(map[string]*Node),
		containers: make(map[string]*Container),
		seed:       seed,
		streams:    make(map[string]*rand.Rand),
	}
}

// AddNode registers a node; new nodes start up.
func (g *Grid) AddNode(n *Node) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n.ID == "" {
		return fmt.Errorf("grid: node with empty ID")
	}
	if _, dup := g.nodes[n.ID]; dup {
		return fmt.Errorf("grid: node %q already registered", n.ID)
	}
	if n.Hardware.Speed <= 0 {
		return fmt.Errorf("grid: node %q has non-positive speed", n.ID)
	}
	n.up = true
	g.nodes[n.ID] = n
	g.streams[n.ID] = nodeStream(g.seed, n.ID, 0)
	if g.faults != nil {
		g.faultStreams[n.ID] = nodeStream(g.faults.Seed, n.ID, 0x9e3779b97f4a7c15)
	}
	return nil
}

// AddContainer registers an application container on an existing node.
func (g *Grid) AddContainer(c *Container) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c.ID == "" {
		return fmt.Errorf("grid: container with empty ID")
	}
	if _, dup := g.containers[c.ID]; dup {
		return fmt.Errorf("grid: container %q already registered", c.ID)
	}
	if _, ok := g.nodes[c.NodeID]; !ok {
		return fmt.Errorf("grid: container %q references unknown node %q", c.ID, c.NodeID)
	}
	g.containers[c.ID] = c
	return nil
}

// Node returns the named node, or nil.
func (g *Grid) Node(id string) *Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[id]
}

// Container returns the named container, or nil.
func (g *Grid) Container(id string) *Container {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.containers[id]
}

// Nodes returns all nodes sorted by ID.
func (g *Grid) Nodes() []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// Containers returns all containers sorted by ID.
func (g *Grid) Containers() []*Container {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]string, 0, len(g.containers))
	for id := range g.containers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Container, len(ids))
	for i, id := range ids {
		out[i] = g.containers[id]
	}
	return out
}

// ContainersFor returns the containers that provide the named service and
// whose node is up, sorted by ID.
func (g *Grid) ContainersFor(service string) []*Container {
	var out []*Container
	for _, c := range g.Containers() {
		if !c.Provides(service) {
			continue
		}
		if n := g.Node(c.NodeID); n == nil || !n.Up() {
			continue
		}
		out = append(out, c)
	}
	return out
}

// SetNodeUp marks a node available or failed. Failing a node makes every
// container on it unusable until repair, which is what drives the
// re-planning flow of Figure 3.
func (g *Grid) SetNodeUp(id string, up bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[id]
	if n == nil {
		return fmt.Errorf("grid: unknown node %q", id)
	}
	n.up = up
	return nil
}

// ExecTime returns the simulated duration of running a service with the
// given nominal time (seconds on the reference node) on node n, including a
// crude communication term: moving dataMB across the node's interconnect.
func ExecTime(baseTime float64, dataMB float64, n *Node) float64 {
	compute := baseTime / n.Hardware.Speed
	transfer := 0.0
	if n.Hardware.BandwidthMbps > 0 {
		transfer = dataMB * 8 / n.Hardware.BandwidthMbps
	}
	latency := n.Hardware.LatencyUs / 1e6
	return compute + transfer + latency
}

// Execute simulates one run of service on the container: it computes the
// duration from the node's hardware, samples the node's failure rate (plus
// any injected fault spec), and records the execution in the history.
// baseTime is the service's nominal duration, dataMB the input volume. It
// fails when the container does not provide the service or its node is down;
// an injected crash additionally takes the node down mid-execution.
func (g *Grid) Execute(containerID, service string, baseTime, dataMB float64) (Execution, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.containers[containerID]
	if c == nil {
		return Execution{}, fmt.Errorf("grid: unknown container %q", containerID)
	}
	n := g.nodes[c.NodeID]
	if n == nil || !n.up {
		return Execution{}, fmt.Errorf("grid: container %q node is down", containerID)
	}
	if !c.Provides(service) {
		return Execution{}, fmt.Errorf("grid: container %q does not provide %q", containerID, service)
	}
	injecting := g.faults.applies(n.ID)
	dur := ExecTime(baseTime, dataMB, n)
	if injecting && g.faults.SlowFactor > 1 {
		dur *= g.faults.SlowFactor
	}
	// Execution-time jitter of +/-10% keeps the history realistic for the
	// brokerage's performance statistics.
	st := g.streams[n.ID]
	dur *= 0.9 + 0.2*st.Float64()
	ok := st.Float64() >= n.FailureRate
	fault, crashed := false, false
	if injecting && g.faults.FailureRate > 0 {
		fs := g.faultStreams[n.ID]
		if fs.Float64() < g.faults.FailureRate {
			ok, fault = false, true
			if g.faults.CrashRate > 0 && fs.Float64() < g.faults.CrashRate {
				crashed = true
			}
		}
	}
	ex := Execution{
		Service:   service,
		Container: containerID,
		Node:      n.ID,
		Duration:  dur,
		Cost:      dur * n.CostPerSec,
		OK:        ok,
		Fault:     fault,
	}
	g.history = append(g.history, ex)
	g.clock += dur
	if crashed {
		n.up = false
		g.crashes = append(g.crashes, Crash{Node: n.ID, Clock: g.clock})
		return ex, fmt.Errorf("grid: node %q crashed during execution of %q", n.ID, service)
	}
	if !ok {
		return ex, fmt.Errorf("grid: execution of %q on %q failed", service, n.ID)
	}
	return ex, nil
}

// History returns a copy of the execution log.
func (g *Grid) History() []Execution {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]Execution(nil), g.history...)
}

// BusyTime returns the total simulated compute seconds consumed so far.
func (g *Grid) BusyTime() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.clock
}

// EquivalenceClass is a group of nodes with similar characteristics; the
// paper's brokers "group them in multiple equivalence classes based upon
// different sets of properties".
type EquivalenceClass struct {
	Key   string
	Nodes []string
}

// EquivalenceClasses groups up nodes by hardware type and coarse speed band
// (floor of speed), sorted by key.
func (g *Grid) EquivalenceClasses() []EquivalenceClass {
	groups := make(map[string][]string)
	for _, n := range g.Nodes() {
		if !n.Up() {
			continue
		}
		key := fmt.Sprintf("%s/speed=%d", n.Hardware.Type, int(n.Hardware.Speed))
		groups[key] = append(groups[key], n.ID)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]EquivalenceClass, len(keys))
	for i, k := range keys {
		out[i] = EquivalenceClass{Key: k, Nodes: groups[k]}
	}
	return out
}

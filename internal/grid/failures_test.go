package grid

import (
	"testing"

	"repro/internal/sim"
)

func TestInjectFailuresTogglesNodes(t *testing.T) {
	g := New(1)
	for _, id := range []string{"a", "b", "c"} {
		if err := g.AddNode(&Node{ID: id, Hardware: Hardware{Speed: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	eng := sim.NewEngine(42)
	const horizon = 100000.0
	plan, err := g.Inject(eng, 1000, 100, horizon)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(horizon)

	if len(plan.Transitions) == 0 {
		t.Fatal("no failures injected over a long horizon")
	}
	// Transitions alternate per node: fail, repair, fail, ...
	lastUp := map[string]bool{}
	for _, tr := range plan.Transitions {
		prev, seen := lastUp[tr.Node]
		if !seen {
			prev = true
		}
		if tr.Up == prev {
			t.Fatalf("non-alternating transition for %s at %g", tr.Node, tr.Time)
		}
		lastUp[tr.Node] = tr.Up
	}
	// Availability near MTBF/(MTBF+MTTR) = 1000/1100 ~ 0.909.
	avail := plan.Availability(horizon)
	for node, a := range avail {
		if a < 0.8 || a > 0.98 {
			t.Errorf("node %s availability %.3f, want ~0.91", node, a)
		}
	}
	if len(avail) != 3 {
		t.Errorf("availability for %d nodes, want 3", len(avail))
	}
}

func TestInjectValidation(t *testing.T) {
	g := New(1)
	eng := sim.NewEngine(1)
	if _, err := g.Inject(eng, 0, 10, 100); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := g.Inject(eng, 10, -1, 100); err == nil {
		t.Error("negative MTTR accepted")
	}
}

func TestInjectDeterministic(t *testing.T) {
	run := func() int {
		g := New(1)
		_ = g.AddNode(&Node{ID: "n", Hardware: Hardware{Speed: 1}})
		eng := sim.NewEngine(7)
		plan, _ := g.Inject(eng, 500, 50, 50000)
		eng.Run(50000)
		return len(plan.Transitions)
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("runs differ: %d vs %d", a, b)
	}
}

func TestAvailabilityEmptyHorizon(t *testing.T) {
	p := &FailurePlan{}
	if p.Availability(0) != nil {
		t.Error("zero horizon should yield nil")
	}
}

// Package planning implements the planning service agent of Sections 3.3:
// it accepts planning requests from the coordination service, generates
// process descriptions with the GP planner (package planner), and handles
// re-planning by first checking, through the information service, the
// brokerage service, and the application containers, which activities are
// still executable (the eight-step flow of Figure 3).
package planning

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/planner"
	"repro/internal/plantree"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// PlanRequest asks the planning service for a process description
// (Figure 2: "planning task specification").
type PlanRequest struct {
	// TaskID, when set, names the task this plan is for; the planning
	// service then records GP progress spans into the task's telemetry
	// trace.
	TaskID string
	// Initial is the set of initial data available to the end user.
	Initial []*workflow.DataItem
	// Goal is the goal of planning, expressed as conditions on the results.
	Goal []string
	// NonExecutable lists activities (service names) reported by the
	// coordination service as not executable; set on re-planning. The
	// planning service independently verifies executability through the
	// brokerage unless TrustCaller is set (the paper's "first method" of
	// acquiring the knowledge directly from the coordination service).
	NonExecutable []string
	TrustCaller   bool

	// Failed, when set on a re-plan, is the process description whose
	// enactment failed. Planning then runs incrementally: the new
	// population is seeded from the failed plan's neighborhood under the
	// reduced Incremental() budget instead of ramped-random from scratch.
	Failed *workflow.ProcessDescription

	// MaxCost and MaxTime carry the case's remaining budget and deadline
	// into the plan fitness (Figure 3 re-planning with the constraint
	// folded in); 0 means unconstrained. See planner.Params.MaxCost.
	MaxCost float64
	MaxTime float64

	// Traceparent carries the caller's W3C trace context (the task's enact
	// span) so the plan span and its GP generations join the task's
	// distributed trace.
	Traceparent string
}

// PlanReply returns the new plan.
type PlanReply struct {
	PDL      string // process description, PDL text
	Tree     string // plan tree rendering (diagnostic)
	Eval     planner.Evaluation
	Excluded []string // services excluded as non-executable
}

// Service is the planning service agent.
type Service struct {
	Catalog *workflow.Catalog
	Params  planner.Params

	// Trace, when set, receives a line per step of the re-planning flow, so
	// tests can assert the Figure 3 sequence.
	Trace func(step string)

	// Telemetry, when set, receives planner metrics and per-task GP
	// generation spans (see OBSERVABILITY.md).
	Telemetry *telemetry.Registry

	// DisableReuse turns plan reuse off (every request starts from a fresh
	// random population). By default the service seeds each run with its
	// most recent successful plans, adapted to the current exclusions.
	DisableReuse bool

	// Planner is the planning backend every request runs through — the
	// worker pool and plan cache live there. core.NewEnvironment wires the
	// environment-wide instance; when unset, one is created lazily on the
	// first request.
	Planner *planner.Service

	mu      sync.Mutex
	history []*plantree.Node // most recent first, bounded
}

// historyCap bounds how many past plans seed future populations.
const historyCap = 8

// remember stores a successful plan for reuse.
func (s *Service) remember(tree *plantree.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = append([]*plantree.Node{tree.Clone()}, s.history...)
	if len(s.history) > historyCap {
		s.history = s.history[:historyCap]
	}
}

// seeds returns the remembered plans adapted to the current exclusions:
// leaves naming an excluded service are rewritten to a usable one, which is
// exactly the "adapt an existing process description to new conditions"
// behaviour of Section 3.3.
func (s *Service) seeds(excluded map[string]bool, usable []string, seed int64) []*plantree.Node {
	if s.DisableReuse || len(usable) == 0 {
		return nil
	}
	s.mu.Lock()
	history := append([]*plantree.Node(nil), s.history...)
	s.mu.Unlock()
	if len(history) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*plantree.Node, 0, len(history))
	for _, t := range history {
		c := t.Clone()
		for _, leaf := range c.Leaves() {
			if excluded[leaf.Service] {
				leaf.Service = usable[rng.Intn(len(usable))]
				leaf.Name = ""
			}
		}
		out = append(out, c)
	}
	return out
}

// New builds a planning service over the full set T of end-user services.
func New(catalog *workflow.Catalog, params planner.Params) *Service {
	return &Service{Catalog: catalog, Params: params}
}

func (s *Service) trace(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(fmt.Sprintf(format, args...))
	}
}

// planner returns the planning backend, creating a private one on first
// use when core did not wire a shared instance.
func (s *Service) planner() (*planner.Service, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Planner == nil {
		ps, err := planner.NewService(planner.ServiceConfig{
			Catalog:   s.Catalog,
			Params:    s.Params,
			Telemetry: s.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		s.Planner = ps
	}
	return s.Planner, nil
}

// HandleMessage implements agent.Handler.
func (s *Service) HandleMessage(ctx *agent.Context, msg agent.Message) {
	req, ok := msg.Content.(PlanRequest)
	if !ok {
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("planning: unsupported content %T", msg.Content))
		return
	}
	reply, err := s.Plan(ctx, req)
	if err != nil {
		_ = ctx.Reply(msg, agent.Failure, err)
		return
	}
	_ = ctx.Reply(msg, agent.Inform, reply)
}

// Plan produces a process description for the request. When the request
// carries NonExecutable hints without TrustCaller, each hinted service is
// verified through brokerage and containers before being excluded.
func (s *Service) Plan(ctx *agent.Context, req PlanRequest) (PlanReply, error) {
	s.Telemetry.Counter("planning.requests").Inc()
	if len(req.NonExecutable) > 0 {
		s.Telemetry.Counter("planning.replan.requests").Inc()
	}
	excluded := map[string]bool{}
	for _, name := range req.NonExecutable {
		if req.TrustCaller || ctx == nil {
			excluded[name] = true
			continue
		}
		ok, err := s.verifyExecutable(ctx, name)
		if err != nil {
			return PlanReply{}, err
		}
		if !ok {
			excluded[name] = true
		}
	}

	exList := make([]string, 0, len(excluded))
	usable := make([]string, 0, s.Catalog.Len())
	for _, name := range s.Catalog.Names() {
		if excluded[name] {
			exList = append(exList, name)
		} else {
			usable = append(usable, name)
		}
	}
	sort.Strings(exList)
	if len(usable) == 0 {
		return PlanReply{}, fmt.Errorf("planning: no executable services remain")
	}

	ps, err := s.planner()
	if err != nil {
		return PlanReply{}, err
	}
	// A verified-dead service invalidates every cached plan that uses it:
	// a stale cache hit would send enactment straight back to the fault.
	for _, name := range exList {
		ps.InvalidateService(name)
	}

	params := s.Params
	if req.MaxCost > 0 {
		params.MaxCost = req.MaxCost
	}
	if req.MaxTime > 0 {
		params.MaxTime = req.MaxTime
	}
	var failedTree *plantree.Node
	if req.Failed != nil {
		if t, convErr := plantree.FromProcess(req.Failed); convErr == nil {
			failedTree = t
			params = params.Incremental()
		}
	}
	seeds := s.seeds(excluded, usable, params.Seed)
	if (len(seeds) > 0 || failedTree != nil) && params.Elites == 0 {
		// A reused plan is only useful if evolution cannot destroy the last
		// copy of it; reserve one elite slot when seeding.
		params.Elites = 1
	}

	st, err := ps.Submit(context.Background(), planner.PlanSpec{
		Initial:     req.Initial,
		Goal:        req.Goal,
		Excluded:    exList,
		Seeds:       seeds,
		Failed:      failedTree,
		Params:      &params,
		TaskID:      req.TaskID,
		Traceparent: req.Traceparent,
	})
	if err != nil {
		return PlanReply{}, fmt.Errorf("planning: %w", err)
	}
	st, err = ps.Wait(context.Background(), st.ID)
	if err != nil {
		return PlanReply{}, fmt.Errorf("planning: %w", err)
	}
	if st.Status != planner.StatusSucceeded {
		return PlanReply{}, fmt.Errorf("planning: plan %s %s: %s", st.ID, st.Status, st.Error)
	}
	if st.Result != nil {
		if e := st.Result.Best.Eval; e.FV >= 1 && e.FG >= 1 {
			s.remember(st.Result.Best.Tree.Normalize())
		}
	}
	return PlanReply{PDL: st.PDL, Tree: st.Tree, Eval: st.Eval, Excluded: exList}, nil
}

// verifyExecutable performs the Figure 3 interaction: find a brokerage via
// the information service (steps 2-3), get candidate containers (steps 4-5),
// and probe each for availability (steps 6-7).
func (s *Service) verifyExecutable(ctx *agent.Context, service string) (bool, error) {
	s.trace("information: brokerage service?")
	offers, err := services.Lookup(ctx, "brokerage")
	if err != nil || len(offers) == 0 {
		return false, fmt.Errorf("planning: no brokerage service found: %v", err)
	}
	broker := offers[0].Name
	s.trace("information: brokerage service found (%s)", broker)

	s.trace("brokerage: application containers for %s?", service)
	reply, err := ctx.Call(broker, services.OntBrokerage,
		services.ContainersRequest{Service: service}, 10*time.Second)
	if err != nil {
		return false, err
	}
	cr, ok := reply.Content.(services.ContainersReply)
	if !ok {
		return false, fmt.Errorf("planning: unexpected brokerage reply %T", reply.Content)
	}
	s.trace("brokerage: %d containers found", len(cr.Containers))

	for _, containerID := range cr.Containers {
		s.trace("%s: activity %s executable?", containerID, service)
		probe, err := ctx.Call(containerID, services.OntExecution,
			services.AvailabilityRequest{Service: service}, 10*time.Second)
		if err != nil {
			continue // container agent gone: treat as not executable there
		}
		if ar, ok := probe.Content.(services.AvailabilityReply); ok && ar.Executable {
			s.trace("%s: executable", containerID)
			return true, nil
		}
		s.trace("%s: not executable", containerID)
	}
	return false, nil
}

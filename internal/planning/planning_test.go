package planning

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/services"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func smallParams() planner.Params {
	p := planner.DefaultParams()
	p.PopulationSize = 120
	p.Generations = 15
	p.Seed = 3
	return p
}

func TestPlanAbInitio(t *testing.T) {
	s := New(virolab.Catalog(), smallParams())
	req := PlanRequest{
		Initial: virolab.InitialData(),
		Goal:    []string{virolab.GoalCondition},
	}
	reply, err := s.Plan(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Eval.FV < 1 || reply.Eval.FG < 1 {
		t.Errorf("plan quality fv=%g fg=%g (tree %s)", reply.Eval.FV, reply.Eval.FG, reply.Tree)
	}
	// The PDL must parse back into a valid process description.
	p, err := pdl.ParseProcess("check", reply.PDL)
	if err != nil {
		t.Fatalf("planned PDL invalid: %v\n%s", err, reply.PDL)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanTrustCallerExclusion(t *testing.T) {
	catalog := virolab.Catalog()
	p3dr := catalog.Get("P3DR")
	catalog.Add(&workflow.Service{
		Name: "P3DRALT", Inputs: p3dr.Inputs, Outputs: p3dr.Outputs, BaseTime: p3dr.BaseTime,
	})
	s := New(catalog, smallParams())
	reply, err := s.Plan(nil, PlanRequest{
		Initial:       virolab.InitialData(),
		Goal:          []string{virolab.GoalCondition},
		NonExecutable: []string{"P3DR"},
		TrustCaller:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Excluded) != 1 || reply.Excluded[0] != "P3DR" {
		t.Errorf("excluded = %v", reply.Excluded)
	}
	if strings.Contains(reply.Tree, "P3DR ") || strings.HasSuffix(reply.Tree, "P3DR)") {
		// P3DRALT contains "P3DR" as a prefix, so check leaf-precisely.
		tree, err := pdl.Parse(reply.PDL)
		if err != nil {
			t.Fatal(err)
		}
		for _, svc := range tree.Services() {
			if svc == "P3DR" {
				t.Errorf("excluded service still planned: %s", reply.Tree)
			}
		}
	}
	if reply.Eval.FG < 1 {
		t.Errorf("plan without P3DR should still reach the goal via P3DRALT: fg=%g", reply.Eval.FG)
	}
}

func TestPlanAllExcludedFails(t *testing.T) {
	s := New(virolab.Catalog(), smallParams())
	_, err := s.Plan(nil, PlanRequest{
		Initial:       virolab.InitialData(),
		Goal:          []string{virolab.GoalCondition},
		NonExecutable: []string{"POD", "P3DR", "POR", "PSF"},
		TrustCaller:   true,
	})
	if err == nil {
		t.Error("empty catalog accepted")
	}
}

// TestVerifyExecutableFlow exercises the Figure 3 interaction over a real
// platform: information -> brokerage -> container probes.
func TestVerifyExecutableFlow(t *testing.T) {
	g := grid.New(1)
	if err := g.AddNode(&grid.Node{ID: "n1", Hardware: grid.Hardware{Speed: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddContainer(&grid.Container{ID: "ac-1", NodeID: "n1", Services: []string{"POD"}}); err != nil {
		t.Fatal(err)
	}
	p := agent.NewPlatform()
	defer p.Shutdown()
	if _, err := services.Bootstrap(p, g); err != nil {
		t.Fatal(err)
	}
	svc := New(virolab.Catalog(), smallParams())
	var steps []string
	svc.Trace = func(s string) { steps = append(steps, s) }
	if _, err := p.Register(services.PlanningName, svc); err != nil {
		t.Fatal(err)
	}
	client := p.MustRegister("client", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))

	// POD is executable: it must NOT be excluded despite the hint.
	reply, err := client.Call(services.PlanningName, services.OntPlanning, PlanRequest{
		Initial:       virolab.InitialData(),
		Goal:          []string{`G.Classification = "Orientation File"`},
		NonExecutable: []string{"POD"},
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := reply.Content.(PlanReply)
	if !ok {
		t.Fatalf("reply = %T: %v", reply.Content, reply.Content)
	}
	if len(pr.Excluded) != 0 {
		t.Errorf("POD wrongly excluded: %v", pr.Excluded)
	}
	joined := strings.Join(steps, " | ")
	for _, want := range []string{"brokerage service?", "containers for POD?", "ac-1: executable"} {
		if !strings.Contains(joined, want) {
			t.Errorf("step %q missing in trace: %s", want, joined)
		}
	}

	// Take the node down and refresh the brokerage: now POD verifies as
	// non-executable and is excluded; with no other way to make an
	// orientation file the planning fails cleanly.
	_ = g.SetNodeUp("n1", false)
	_, _ = client.Call(services.BrokerageName, services.OntBrokerage, services.RefreshRequest{}, time.Second)
	steps = nil
	reply, err = client.Call(services.PlanningName, services.OntPlanning, PlanRequest{
		Initial:       virolab.InitialData(),
		Goal:          []string{`G.Classification = "Orientation File"`},
		NonExecutable: []string{"POD"},
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative == agent.Inform {
		pr := reply.Content.(PlanReply)
		if len(pr.Excluded) != 1 {
			t.Errorf("POD not excluded after node failure: %+v", pr)
		}
	}
	// With a stale brokerage snapshot instead (no refresh), the container
	// probe still reports non-executable; covered by the steps trace.
}

func TestHandleRejectsJunk(t *testing.T) {
	p := agent.NewPlatform()
	defer p.Shutdown()
	if _, err := p.Register(services.PlanningName, New(virolab.Catalog(), smallParams())); err != nil {
		t.Fatal(err)
	}
	client := p.MustRegister("client", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
	reply, err := client.Call(services.PlanningName, services.OntPlanning, "junk", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != agent.Refuse {
		t.Errorf("performative = %v", reply.Performative)
	}
}

func TestPlanReuseAcrossRequests(t *testing.T) {
	// First request at normal scale remembers its plan; a second request at
	// a tiny budget still succeeds because the remembered plan seeds it.
	s := New(virolab.Catalog(), smallParams())
	req := PlanRequest{Initial: virolab.InitialData(), Goal: []string{virolab.GoalCondition}}
	first, err := s.Plan(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Eval.FG < 1 {
		t.Fatal("first plan missed the goal")
	}

	tiny := smallParams()
	tiny.PopulationSize = 10
	tiny.Generations = 1
	s.Params = tiny
	second, err := s.Plan(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Eval.FG < 1 {
		t.Errorf("reused plan lost the goal: fg=%g tree=%s", second.Eval.FG, second.Tree)
	}

	// With reuse disabled the same tiny budget is on its own (it may still
	// get lucky, so only assert it runs).
	s.DisableReuse = true
	if _, err := s.Plan(nil, req); err != nil {
		t.Fatal(err)
	}
}

func TestPlanReuseAdaptsToExclusions(t *testing.T) {
	catalog := virolab.Catalog()
	p3dr := catalog.Get("P3DR")
	catalog.Add(&workflow.Service{
		Name: "P3DRALT", Inputs: p3dr.Inputs, Outputs: p3dr.Outputs, BaseTime: p3dr.BaseTime,
	})
	s := New(catalog, smallParams())
	req := PlanRequest{Initial: virolab.InitialData(), Goal: []string{virolab.GoalCondition}}
	if _, err := s.Plan(nil, req); err != nil {
		t.Fatal(err)
	}
	// Now exclude P3DR: remembered plans get their P3DR leaves rewritten,
	// and even a small budget finds a valid alternative plan.
	tiny := smallParams()
	tiny.PopulationSize = 40
	tiny.Generations = 5
	s.Params = tiny
	reply, err := s.Plan(nil, PlanRequest{
		Initial:       virolab.InitialData(),
		Goal:          []string{virolab.GoalCondition},
		NonExecutable: []string{"P3DR"},
		TrustCaller:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Eval.FG < 1 {
		t.Errorf("adapted plan missed goal: %s", reply.Tree)
	}
	tree, err := pdl.Parse(reply.PDL)
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range tree.Services() {
		if svc == "P3DR" {
			t.Errorf("excluded service survived adaptation: %s", reply.Tree)
		}
	}
}

package core

import (
	"testing"

	"repro/internal/planner"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func testEnv(t *testing.T) *Environment {
	t.Helper()
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	params.Seed = 9
	env, err := NewEnvironment(Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestNewEnvironmentDefaults(t *testing.T) {
	env := testEnv(t)
	if env.Grid == nil || len(env.Grid.Nodes()) == 0 {
		t.Fatal("no synthetic grid")
	}
	// Core services and container agents registered.
	if !env.Platform.Has("coordination") || !env.Platform.Has("planning") || !env.Platform.Has("matchmaking") {
		t.Errorf("agents = %v", env.Platform.Agents())
	}
	for _, s := range env.Catalog.Names() {
		if len(env.Grid.ContainersFor(s)) == 0 {
			t.Errorf("service %s has no containers", s)
		}
	}
}

func TestNewEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(Options{}); err == nil {
		t.Error("missing catalog accepted")
	}
	bad := planner.DefaultParams()
	bad.WV = 0.9
	if _, err := NewEnvironment(Options{Catalog: virolab.Catalog(), Planner: bad}); err == nil {
		t.Error("bad planner params accepted")
	}
}

func TestSubmitFig10Task(t *testing.T) {
	env := testEnv(t)
	report, err := env.Submit(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("report = %+v", report)
	}
	if report.Executed < 7 {
		t.Errorf("executed = %d, want >= 7", report.Executed)
	}
	d12 := report.FinalState.Get("D12")
	if d12 == nil || d12.Classification() != "Resolution File" {
		t.Errorf("final D12 = %v", d12)
	}
}

func TestPlanArchivesAndReturns(t *testing.T) {
	env := testEnv(t)
	pd, reply, err := env.Plan("auto-3dsd", virolab.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if reply.Eval.FG < 1 {
		t.Errorf("plan goal fitness = %g", reply.Eval.FG)
	}
	if err := pd.Validate(); err != nil {
		t.Fatal(err)
	}
	if env.Archive.Versions("auto-3dsd") != 1 {
		t.Error("plan not archived")
	}
	// And the planned PD is enactable end to end.
	task := &workflow.Task{ID: "TP", Name: "planned", Process: pd, Case: virolab.Case()}
	report, err := env.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Errorf("planned task not completed: %+v", report.Trace)
	}
	// Invalid problems are rejected.
	if _, _, err := env.Plan("bad", &workflow.Problem{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

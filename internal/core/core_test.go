package core

import (
	"context"
	"testing"

	"repro/internal/planner"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func testEnv(t *testing.T) *Environment {
	t.Helper()
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	params.Seed = 9
	env, err := NewEnvironment(Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestNewEnvironmentDefaults(t *testing.T) {
	env := testEnv(t)
	if env.Grid == nil || len(env.Grid.Nodes()) == 0 {
		t.Fatal("no synthetic grid")
	}
	// Core services and container agents registered.
	if !env.Platform.Has("coordination") || !env.Platform.Has("planning") || !env.Platform.Has("matchmaking") {
		t.Errorf("agents = %v", env.Platform.Agents())
	}
	for _, s := range env.Catalog.Names() {
		if len(env.Grid.ContainersFor(s)) == 0 {
			t.Errorf("service %s has no containers", s)
		}
	}
}

func TestNewEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(Options{}); err == nil {
		t.Error("missing catalog accepted")
	}
	bad := planner.DefaultParams()
	bad.WV = 0.9
	if _, err := NewEnvironment(Options{Catalog: virolab.Catalog(), Planner: bad}); err == nil {
		t.Error("bad planner params accepted")
	}
}

func TestSubmitFig10Task(t *testing.T) {
	env := testEnv(t)
	report, err := env.SubmitContext(context.Background(), virolab.Task(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("report = %+v", report)
	}
	if report.Executed < 7 {
		t.Errorf("executed = %d, want >= 7", report.Executed)
	}
	d12 := report.FinalState.Get("D12")
	if d12 == nil || d12.Classification() != "Resolution File" {
		t.Errorf("final D12 = %v", d12)
	}
}

func TestPlanArchivesAndReturns(t *testing.T) {
	env := testEnv(t)
	pd, reply, err := env.Plan("auto-3dsd", virolab.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if reply.Eval.FG < 1 {
		t.Errorf("plan goal fitness = %g", reply.Eval.FG)
	}
	if err := pd.Validate(); err != nil {
		t.Fatal(err)
	}
	if env.Archive.Versions("auto-3dsd") != 1 {
		t.Error("plan not archived")
	}
	// And the planned PD is enactable end to end.
	task := &workflow.Task{ID: "TP", Name: "planned", Process: pd, Case: virolab.Case()}
	report, err := env.SubmitContext(context.Background(), task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Errorf("planned task not completed: %+v", report.Trace)
	}
	// Invalid problems are rejected.
	if _, _, err := env.Plan("bad", &workflow.Problem{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestTelemetryWiring(t *testing.T) {
	env := testEnv(t) // checkpointing on
	if env.Telemetry == nil {
		t.Fatal("environment has no telemetry registry")
	}
	task := &workflow.Task{ID: "T-tel", Name: "telemetry probe",
		NeedPlanning: true, Case: virolab.Case()}
	report, err := env.SubmitContext(context.Background(), task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("report = %+v", report)
	}

	snap := env.Telemetry.Snapshot()
	for _, name := range []string{
		"coordination.activities.fired",
		"coordination.activities.executed",
		"coordination.tasks.completed",
		"coordination.checkpoints.written",
		"coordination.batches",
		"planning.requests",
		"planner.generations",
		"planner.runs",
		"matchmaking.requests",
		"matchmaking.hits",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if got := snap.Counters["coordination.activities.executed"]; got != int64(report.Executed) {
		t.Errorf("executed counter = %d, report says %d", got, report.Executed)
	}
	if h := snap.Histograms["coordination.enact.real.seconds"]; h.Count != 1 {
		t.Errorf("enact histogram count = %d, want 1", h.Count)
	}
	if h := snap.Histograms["coordination.checkpoint.bytes"]; h.Count <= 0 || h.Sum <= 0 {
		t.Errorf("checkpoint bytes histogram = %+v", h)
	}

	// The task trace holds an ordered span log covering planning and
	// enactment.
	tr := env.Telemetry.LookupTrace("T-tel")
	if tr == nil {
		t.Fatal("no trace for T-tel")
	}
	spans := tr.Spans()
	kinds := map[string]int{}
	lastSeq := uint64(0)
	for _, s := range spans {
		if s.Seq <= lastSeq {
			t.Fatalf("spans out of order: %d after %d", s.Seq, lastSeq)
		}
		lastSeq = s.Seq
		kinds[s.Kind]++
	}
	for _, k := range []string{"plan-request", "gp-generation", "plan-received", "fire", "invoke", "dispatch", "complete", "checkpoint"} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %q span; kinds = %v", k, kinds)
		}
	}
}

func TestNoTelemetry(t *testing.T) {
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	env, err := NewEnvironment(Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
		NoTelemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	if env.Telemetry != nil {
		t.Fatal("NoTelemetry still built a registry")
	}
	report, err := env.SubmitContext(context.Background(), virolab.Task(), nil)
	if err != nil || !report.Completed {
		t.Fatalf("bare environment cannot enact: %v %+v", err, report)
	}
}

// Package core assembles the intelligent grid environment of Figure 1: the
// agent platform, the simulated grid with its application containers, the
// core services (information, brokerage, matchmaking, monitoring,
// scheduling, storage, authentication, simulation, ontology), the planning
// service, and the coordination service — behind one Environment value with
// a small API: Plan a problem, Submit a task, Archive plans.
//
// This is the facade example applications and command-line tools build on;
// everything underneath is reachable for scenarios that need to inject
// failures or inspect service state.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/coordination"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/kb"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/planning"
	"repro/internal/services"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Options configures an Environment. The zero value is completed with
// defaults: a synthetic heterogeneous grid and Table 1 planner settings; the
// service catalog is required.
type Options struct {
	// Grid to run on; nil builds grid.Synthetic(GridConfig).
	Grid *grid.Grid
	// GridConfig is used only when Grid is nil.
	GridConfig *grid.SyntheticConfig

	// Catalog of end-user services; required.
	Catalog *workflow.Catalog

	// Planner holds the GP settings; the zero value means
	// planner.DefaultParams (the paper's Table 1).
	Planner planner.Params

	// PlanWorkers sizes the planning service's worker pool — the cap on
	// concurrently computed plans. 0 means GOMAXPROCS.
	PlanWorkers int

	// PlanCacheSize bounds the plan cache (finished plans memoized by
	// canonical case). 0 means the planner default (4096).
	PlanCacheSize int

	// PostProcess is the coordination steering hook (see coordination.Config).
	PostProcess func(act *workflow.Activity, produced []*workflow.DataItem, visit int)

	// Checkpoint enables per-activity checkpoints to the storage service.
	Checkpoint bool

	// StoreDSN selects the storage backend behind the storage service and the
	// engine's journal: "mem:" (volatile map), "file:DIR" (append-only
	// segmented log), or "bolt:PATH" (embedded single-file KV). Empty means
	// "mem:". Ignored when Store is set.
	StoreDSN string

	// StoreFlush tunes group commit on durable backends: batch bound and
	// optional linger interval (see store.FlushConfig).
	StoreFlush store.FlushConfig

	// Store injects an already opened backend instead of StoreDSN. The
	// environment takes ownership and closes it on Close.
	Store store.Store

	// UseContractNet acquires resources by container bidding instead of
	// matchmaking rankings (see coordination.Config).
	UseContractNet bool

	// CallTimeout bounds service interactions; zero uses the default.
	CallTimeout time.Duration

	// Workers sizes the enactment engine's coordinator worker pool — the cap
	// on concurrent case enactments. 0 means GOMAXPROCS.
	Workers int

	// QueueCapacity bounds the engine's admission queue; submissions beyond
	// it fail with engine.ErrQueueFull. 0 means engine.DefaultQueueCapacity.
	QueueCapacity int

	// RetainFinished bounds how many finished task records the engine keeps
	// queryable before evicting the oldest. 0 means
	// engine.DefaultRetainFinished.
	RetainFinished int

	// Tenants sets the engine's per-tenant fair-share weights and admission
	// quotas (max queued, max in-flight, submit rate), keyed by tenant ID.
	Tenants map[string]engine.TenantConfig

	// TenantDefaults applies to tenants absent from Tenants. The zero value
	// means weight 1 and no quotas.
	TenantDefaults engine.TenantConfig

	// Telemetry is the metrics registry threaded through the coordination,
	// planning, and core services; nil builds a fresh one (so every
	// environment is observable by default). Set NoTelemetry to run bare.
	Telemetry *telemetry.Registry

	// Logger is the root structured logger; each layer gets a
	// component-scoped child (component=engine, coordination, scheduling,
	// monitoring, httpapi). Nil means silent.
	Logger *slog.Logger

	// NoTelemetry disables instrumentation entirely — the hot paths then pay
	// only a nil check per record site. Used by overhead benchmarks.
	NoTelemetry bool

	// TraceSpanCap and TraceMaxTasks bound trace retention: spans kept per
	// task and distinct task traces kept before the oldest is evicted.
	// Zero means the telemetry defaults.
	TraceSpanCap  int
	TraceMaxTasks int
}

// Environment is a fully wired grid environment.
type Environment struct {
	Platform *agent.Platform
	Grid     *grid.Grid
	Services *services.Core
	Planning *planning.Service
	// Planner is the asynchronous planning backend (worker pool + plan
	// cache) the planning agent and the /api/v1/plans resource share.
	Planner     *planner.Service
	Coordinator *coordination.Coordinator
	// Engine is the durable enactment engine: bounded admission queue,
	// coordinator worker pool, write-ahead task journal, crash recovery.
	Engine *engine.Engine
	// Store is the storage backend behind Services.Storage and the engine's
	// journal (selected by Options.StoreDSN); the environment closes it.
	Store store.Store
	// Cluster is this process's view of the multi-node cluster, attached
	// after construction (the node needs the engine, which needs the
	// environment). Nil for single-node deployments; when set, the HTTP
	// layer forwards non-owned requests to the owning peer and Close stops
	// the heartbeat loop.
	Cluster *cluster.Node
	Archive *kb.Archive
	Catalog *workflow.Catalog
	// Telemetry is the monitoring registry every layer records into; nil
	// only when Options.NoTelemetry was set.
	Telemetry *telemetry.Registry
	// Logger is the root structured logger (never nil; a no-op logger when
	// Options.Logger was nil).
	Logger *slog.Logger
}

// NewEnvironment builds and starts an environment.
func NewEnvironment(opts Options) (*Environment, error) {
	if opts.Catalog == nil || opts.Catalog.Len() == 0 {
		return nil, fmt.Errorf("core: a service catalog is required")
	}
	g := opts.Grid
	if g == nil {
		cfg := grid.DefaultSyntheticConfig()
		if opts.GridConfig != nil {
			cfg = *opts.GridConfig
		}
		cfg.Services = opts.Catalog.Names()
		g = grid.Synthetic(cfg)
	}
	params := opts.Planner
	if params.PopulationSize == 0 {
		params = planner.DefaultParams()
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	tel := opts.Telemetry
	if tel == nil && !opts.NoTelemetry {
		tel = telemetry.New()
	}
	tel.SetTraceCapacity(opts.TraceSpanCap, opts.TraceMaxTasks)
	logger := opts.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}

	backend := opts.Store
	if backend == nil {
		dsn := opts.StoreDSN
		if dsn == "" {
			dsn = "mem:"
		}
		var err error
		backend, err = store.Open(dsn, store.Options{Flush: opts.StoreFlush, Telemetry: tel})
		if err != nil {
			return nil, err
		}
	}

	platform := agent.NewPlatform()
	coreSvcs, err := services.BootstrapWithStore(platform, g, backend)
	if err != nil {
		platform.Shutdown()
		backend.Close()
		return nil, err
	}
	// Instrument the core services. Safe before any traffic: the services
	// only touch the registry while handling messages, which start flowing
	// after NewEnvironment returns.
	coreSvcs.Brokerage.Telemetry = tel
	coreSvcs.Matchmaking.Telemetry = tel
	coreSvcs.Scheduling.Telemetry = tel
	coreSvcs.Monitoring.Telemetry = tel
	coreSvcs.Scheduling.Logger = telemetry.ComponentLogger(logger, "scheduling")
	coreSvcs.Monitoring.Logger = telemetry.ComponentLogger(logger, "monitoring")
	plannerSvc, err := planner.NewService(planner.ServiceConfig{
		Catalog:   opts.Catalog,
		Params:    params,
		Workers:   opts.PlanWorkers,
		CacheSize: opts.PlanCacheSize,
		Telemetry: tel,
	})
	if err != nil {
		platform.Shutdown()
		backend.Close()
		return nil, err
	}
	plansvc := planning.New(opts.Catalog, params)
	plansvc.Telemetry = tel
	plansvc.Planner = plannerSvc
	if _, err := platform.Register(services.PlanningName, plansvc); err != nil {
		plannerSvc.Close()
		platform.Shutdown()
		backend.Close()
		return nil, err
	}
	coord, err := coordination.New(coordination.Config{
		Platform:       platform,
		Catalog:        opts.Catalog,
		PostProcess:    opts.PostProcess,
		Checkpoint:     opts.Checkpoint,
		CallTimeout:    opts.CallTimeout,
		UseContractNet: opts.UseContractNet,
		Telemetry:      tel,
		Logger:         telemetry.ComponentLogger(logger, "coordination"),
	})
	if err != nil {
		platform.Shutdown()
		backend.Close()
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		Coordinator:    coord,
		Storage:        coreSvcs.Storage,
		Telemetry:      tel,
		Logger:         telemetry.ComponentLogger(logger, "engine"),
		Workers:        opts.Workers,
		QueueCapacity:  opts.QueueCapacity,
		RetainFinished: opts.RetainFinished,
		Tenants:        opts.Tenants,
		TenantDefaults: opts.TenantDefaults,
	})
	if err != nil {
		platform.Shutdown()
		backend.Close()
		return nil, err
	}
	// The engine journals coordinator checkpoints so recovery knows how far
	// each enactment got.
	coord.SetCheckpointHook(eng.NoteCheckpoint)
	eng.Start()
	return &Environment{
		Platform:    platform,
		Grid:        g,
		Services:    coreSvcs,
		Planning:    plansvc,
		Planner:     plannerSvc,
		Coordinator: coord,
		Engine:      eng,
		Store:       backend,
		Archive:     kb.NewArchive(),
		Catalog:     opts.Catalog,
		Telemetry:   tel,
		Logger:      logger,
	}, nil
}

// AttachCluster installs the node and makes the environment part of a
// multi-node cluster: httpapi starts forwarding non-owned requests, and
// Close stops the node's heartbeat loop before tearing the engine down.
func (e *Environment) AttachCluster(n *cluster.Node) { e.Cluster = n }

// Close stops the cluster heartbeat loop (if any), the enactment engine
// (cancelling in-flight work), the planning service (cancelling in-flight
// plans), shuts the agent platform down, and closes the storage backend
// (flushing any pending group-commit batch).
func (e *Environment) Close() {
	if e.Cluster != nil {
		e.Cluster.Stop()
	}
	e.Engine.Close()
	if e.Planner != nil {
		e.Planner.Close()
	}
	e.Platform.Shutdown()
	if e.Store != nil {
		_ = e.Store.Close()
	}
}

// Submit enacts a task through the coordination service with the default
// policy and no cancellation.
//
// Deprecated: use SubmitContext.
func (e *Environment) Submit(task *workflow.Task) (*coordination.Report, error) {
	return e.Coordinator.RunTaskContext(context.Background(), task, nil)
}

// SubmitContext enacts a task through the coordination service under the
// given fault-tolerance policy (nil means defaults), aborting when ctx is
// cancelled.
func (e *Environment) SubmitContext(ctx context.Context, task *workflow.Task, pol *coordination.Policy) (*coordination.Report, error) {
	return e.Coordinator.RunTaskContext(ctx, task, pol)
}

// Plan asks the planning service for a process description solving the
// problem, archives it, and returns it together with the planner's own
// evaluation of the plan.
func (e *Environment) Plan(name string, problem *workflow.Problem) (*workflow.ProcessDescription, planning.PlanReply, error) {
	if err := problem.Validate(); err != nil {
		return nil, planning.PlanReply{}, err
	}
	reply, err := e.Planning.Plan(nil, planning.PlanRequest{
		Initial: problem.Initial.Items(),
		Goal:    problem.Goal.Conditions,
	})
	if err != nil {
		return nil, planning.PlanReply{}, err
	}
	p, err := pdl.ParseProcess(name, reply.PDL)
	if err != nil {
		return nil, planning.PlanReply{}, err
	}
	if _, err := e.Archive.Put(name, "planning-service", reply.Tree, p); err != nil {
		return nil, planning.PlanReply{}, err
	}
	return p, reply, nil
}

package core

import (
	"path/filepath"
	"testing"

	"repro/internal/coordination"
	"repro/internal/planner"
	"repro/internal/virolab"
)

// TestRestartSurvivability is the full durability story: an environment runs
// the case study with checkpointing, saves the persistent storage to disk,
// and is shut down. A brand-new environment (fresh platform, fresh agents,
// fresh coordinator) loads the storage file and resumes the task from an
// intermediate checkpoint to completion — the "persistent and reliable"
// core-services promise of Section 2 made concrete.
func TestRestartSurvivability(t *testing.T) {
	if testing.Short() {
		t.Skip("full restart cycle in -short mode")
	}
	store := filepath.Join(t.TempDir(), "state.json")
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15

	// First life: run, checkpoint, archive a plan, save, die.
	env1, err := NewEnvironment(Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	report1, err := env1.Submit(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if !report1.Completed {
		t.Fatal("first life did not complete")
	}
	if err := env1.Services.Storage.Save(store); err != nil {
		t.Fatal(err)
	}
	env1.Close()

	// Second life: fresh everything, restore the disk state.
	env2, err := NewEnvironment(Options{
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env2.Close()
	if err := env2.Services.Storage.Load(store); err != nil {
		t.Fatal(err)
	}

	// The checkpoints survived the restart; pick a mid-run snapshot and
	// resume it on the brand-new coordinator.
	snap, err := coordination.LoadCheckpointVersion(env2.Services.Storage, "T1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Executed >= report1.Executed {
		t.Fatalf("snapshot v4 executed=%d not intermediate (total %d)", snap.Executed, report1.Executed)
	}
	report2, err := env2.Coordinator.Resume(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !report2.Completed {
		t.Fatalf("resumed task did not complete after restart: %+v", report2.Trace)
	}
	if report2.Executed != report1.Executed {
		t.Errorf("resumed total executions = %d, want %d", report2.Executed, report1.Executed)
	}
	d12 := report2.FinalState.Get("D12")
	if d12 == nil || d12.Classification() != "Resolution File" {
		t.Errorf("restarted final state missing D12: %v", d12)
	}
}

// Package plantree implements the plan-tree representation of Section 3.4.1:
// the nonlinear encoding the genetic planner evolves. A plan tree consists
// of terminal nodes (end-user activities) and controller nodes (sequential,
// concurrent, selective, iterative), and converts to and from the
// process-description graph form (Figures 4-7, 10-11).
package plantree

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind classifies plan-tree nodes.
type Kind int

// Node kinds. KindActivity is the terminal kind; the other four are the
// controller kinds of the paper.
const (
	KindActivity Kind = iota
	KindSequential
	KindConcurrent
	KindSelective
	KindIterative
)

// String returns the lowercase spelling used in the figures.
func (k Kind) String() string {
	switch k {
	case KindActivity:
		return "activity"
	case KindSequential:
		return "seq"
	case KindConcurrent:
		return "conc"
	case KindSelective:
		return "sel"
	case KindIterative:
		return "iter"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsController reports whether k is one of the four controller kinds.
func (k Kind) IsController() bool { return k != KindActivity }

// Node is one node of a plan tree.
type Node struct {
	Kind Kind

	// Service names the end-user service for terminal nodes.
	Service string

	// Name optionally labels the activity distinctly from its service (the
	// P3DR1..P3DR4 of Figure 10 all run service P3DR). Empty means the
	// activity is labelled by its service name.
	Name string

	// Inputs and Outputs optionally bind case-level data names to the
	// activity (the Input/Output Data Sets of Figure 13); conditions that
	// reference data by name (Cons1's D12) rely on output bindings.
	Inputs  []string
	Outputs []string

	// Children are the ordered child nodes of a controller node; terminal
	// nodes have none. For a sequential node the order is the execution
	// order (leftmost first).
	Children []*Node

	// Condition optionally carries a condition-expression source: on an
	// iterative node it is the loop-continue condition; on a child of a
	// selective node it guards that alternative.
	Condition string
}

// Activity returns a terminal node for the named service.
func Activity(service string) *Node { return &Node{Kind: KindActivity, Service: service} }

// Seq returns a sequential controller over the children.
func Seq(children ...*Node) *Node { return &Node{Kind: KindSequential, Children: children} }

// Conc returns a concurrent controller over the children.
func Conc(children ...*Node) *Node { return &Node{Kind: KindConcurrent, Children: children} }

// Sel returns a selective controller over the children.
func Sel(children ...*Node) *Node { return &Node{Kind: KindSelective, Children: children} }

// Iter returns an iterative controller over the children.
func Iter(children ...*Node) *Node { return &Node{Kind: KindIterative, Children: children} }

// Size returns the number of nodes in the tree (Section 3.4.1's tree size,
// bounded by Smax during evolution).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	size := 1
	for _, c := range n.Children {
		size += c.Size()
	}
	return size
}

// Depth returns the height of the tree (a single node has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Leaves returns the terminal (activity) nodes in left-to-right order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.walk(func(node, _ *Node, _ int) {
		if node.Kind == KindActivity {
			out = append(out, node)
		}
	})
	return out
}

// Services returns the service names of the leaves, left to right.
func (n *Node) Services() []string {
	leaves := n.Leaves()
	out := make([]string, len(leaves))
	for i, l := range leaves {
		out[i] = l.Service
	}
	return out
}

// Clone returns a deep copy of the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Service: n.Service, Name: n.Name, Condition: n.Condition}
	c.Inputs = append([]string(nil), n.Inputs...)
	c.Outputs = append([]string(nil), n.Outputs...)
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports structural equality.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Service != m.Service || n.Name != m.Name || n.Condition != m.Condition ||
		len(n.Children) != len(m.Children) ||
		!equalStrings(n.Inputs, m.Inputs) || !equalStrings(n.Outputs, m.Outputs) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walk visits every node in pre-order with its parent and child index
// (parent nil, idx -1 for the root).
func (n *Node) walk(fn func(node, parent *Node, idx int)) {
	var rec func(node, parent *Node, idx int)
	rec = func(node, parent *Node, idx int) {
		fn(node, parent, idx)
		for i, c := range node.Children {
			rec(c, node, i)
		}
	}
	rec(n, nil, -1)
}

// Located identifies a node within a tree together with its parent link, as
// needed by the genetic operators to splice subtrees.
type Located struct {
	Node   *Node
	Parent *Node
	Index  int // child index within Parent; -1 for the root
}

// Nodes returns every node in pre-order with parent links.
func (n *Node) Nodes() []Located {
	out := make([]Located, 0, n.Size())
	n.walk(func(node, parent *Node, idx int) {
		out = append(out, Located{Node: node, Parent: parent, Index: idx})
	})
	return out
}

// At returns the i-th node in pre-order.
func (n *Node) At(i int) Located {
	nodes := n.Nodes()
	return nodes[i]
}

// Validate checks the structural invariants of plan trees: controller nodes
// have at least one child, terminal nodes have a service and no children,
// and the total size does not exceed smax (pass smax <= 0 to skip the size
// check).
func (n *Node) Validate(smax int) error {
	if n == nil {
		return fmt.Errorf("plantree: nil tree")
	}
	if smax > 0 && n.Size() > smax {
		return fmt.Errorf("plantree: size %d exceeds Smax %d", n.Size(), smax)
	}
	var err error
	n.walk(func(node, _ *Node, _ int) {
		if err != nil {
			return
		}
		switch {
		case node.Kind == KindActivity && len(node.Children) > 0:
			err = fmt.Errorf("plantree: activity node %q has children", node.Service)
		case node.Kind == KindActivity && node.Service == "":
			err = fmt.Errorf("plantree: activity node with empty service")
		case node.Kind.IsController() && len(node.Children) == 0:
			err = fmt.Errorf("plantree: %s controller with no children", node.Kind)
		}
	})
	return err
}

// String renders the tree as an s-expression, e.g.
// (seq POD P3DR (iter POR (conc P3DR P3DR P3DR) PSF)).
func (n *Node) String() string {
	if n == nil {
		return "()"
	}
	if n.Kind == KindActivity {
		return n.Service
	}
	parts := make([]string, 0, len(n.Children)+1)
	parts = append(parts, n.Kind.String())
	for _, c := range n.Children {
		parts = append(parts, c.String())
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Normalize simplifies the tree without changing its semantics: nested
// sequential nodes are flattened into their sequential parents, and
// single-child sequential/concurrent/selective controllers are replaced by
// their child. It returns the (possibly new) root. Iterative nodes are kept
// even with one child, because iteration changes semantics.
func (n *Node) Normalize() *Node {
	if n == nil || n.Kind == KindActivity {
		return n
	}
	kids := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		c = c.Normalize()
		// An iterative node already executes its children in sequence, so a
		// sequential child under a sequential or iterative parent is
		// redundant structure.
		flattenable := n.Kind == KindSequential || n.Kind == KindIterative
		if flattenable && c.Kind == KindSequential && c.Condition == "" {
			kids = append(kids, c.Children...)
			continue
		}
		kids = append(kids, c)
	}
	n.Children = kids
	if len(kids) == 1 && n.Kind != KindIterative && n.Condition == "" {
		return kids[0]
	}
	return n
}

// controllerKinds are the kinds random generation draws internal nodes from
// (Section 3.4.2: "randomly selected from four controller nodes").
var controllerKinds = []Kind{KindSequential, KindConcurrent, KindSelective, KindIterative}

// Random generates a random plan tree with size at most maxSize, whose
// terminals are drawn uniformly from services. It follows the paper's
// two-step initialization: first an arbitrary tree structure of bounded
// size, then instantiation of every node. maxSize must be >= 1 and services
// non-empty.
func Random(rng *rand.Rand, services []string, maxSize int) *Node {
	if len(services) == 0 {
		panic("plantree: Random with empty service set")
	}
	if maxSize < 1 {
		maxSize = 1
	}
	target := 1 + rng.Intn(maxSize)
	return randomWithSize(rng, services, target)
}

// randomWithSize builds a tree of exactly size nodes when size >= 1.
func randomWithSize(rng *rand.Rand, services []string, size int) *Node {
	if size <= 1 {
		return Activity(services[rng.Intn(len(services))])
	}
	kind := controllerKinds[rng.Intn(len(controllerKinds))]
	budget := size - 1 // nodes available for children subtrees
	maxKids := budget
	if maxKids > 4 {
		maxKids = 4
	}
	k := 1 + rng.Intn(maxKids)
	// Split budget into k parts, each >= 1.
	parts := make([]int, k)
	for i := range parts {
		parts[i] = 1
	}
	for extra := budget - k; extra > 0; extra-- {
		parts[rng.Intn(k)]++
	}
	node := &Node{Kind: kind, Children: make([]*Node, k)}
	for i, p := range parts {
		node.Children[i] = randomWithSize(rng, services, p)
	}
	return node
}

// Fuzz bridge between the PDL text form and the plan-tree form. External
// test package: pdl imports plantree for its AST, so an in-package fuzz
// could not call the parser without an import cycle.
package plantree_test

import (
	"testing"
	"unicode/utf8"

	"repro/internal/pdl"
	"repro/internal/plantree"
)

// FuzzPDLPlanTreeRoundTrip parses arbitrary PDL text and, for every accepted
// input, pushes the resulting plan tree through the process-description
// graph and back: FromProcess(ToProcess(tree)) must equal the normalized
// tree. This crosses the package boundary the unit tests exercise only with
// hand-built or Random trees — the fuzzer supplies trees with the parser's
// shapes: named activities, data bindings, guarded alternatives, loop
// conditions. Explore with `go test -fuzz=FuzzPDLPlanTreeRoundTrip
// ./internal/plantree`.
func FuzzPDLPlanTreeRoundTrip(f *testing.F) {
	seeds := []string{
		// The four controller figures (4-7): sequence, concurrency,
		// selection, iteration, in the case study's service vocabulary.
		`BEGIN, POD(D1, D7 -> D8); P3DR(D2, D7, D8 -> D9), END`,
		`BEGIN, {FORK {P3DR1 = P3DR(D2 -> D9)} {P3DR2 = P3DR(D3 -> D10)} JOIN}, END`,
		`BEGIN, {CHOICE {COND D12.Resolution > 10} {PSF(D10, D11 -> D12)} {PA(D9 -> D13)} MERGE}, END`,
		`BEGIN, {ITERATIVE {COND D12.Resolution > 10} {POD(D1 -> D8); PSF(D8 -> D12)}}, END`,
		// Nesting across kinds.
		`BEGIN, A; {FORK {B; {CHOICE {C} {D} MERGE}} {E} JOIN}; F, END`,
		`BEGIN, {ITERATIVE {COND x.v > 0} {{FORK {A} {B} JOIN}}}, END`,
		// The sentinel collision the fuzz body must skip.
		`BEGIN, {ITERATIVE {COND false} {A}}, END`,
		// Broken inputs to steer the mutator.
		`BEGIN, {FORK {A} JOIN}, END`,
		`BEGIN, A = , END`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) || len(src) > 1<<12 {
			return
		}
		tree, err := pdl.Parse(src)
		if err != nil {
			return
		}
		// ToProcess spells an unguarded loop's continue condition as the
		// literal "false" (run the body exactly once) and FromProcess
		// inverts that spelling back to empty — so a tree whose source
		// really wrote `COND false` cannot round-trip. Skip the collision.
		for _, loc := range tree.Nodes() {
			if loc.Node.Kind == plantree.KindIterative && loc.Node.Condition == "false" {
				return
			}
		}
		p, err := plantree.ToProcess("fuzz", tree)
		if err != nil {
			t.Fatalf("parser accepted %q but ToProcess failed: %v", src, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated process for %q does not validate: %v", src, err)
		}
		back, err := plantree.FromProcess(p)
		if err != nil {
			t.Fatalf("graph of %q does not parse back to a tree: %v\n%s", src, err, p)
		}
		want := tree.Clone().Normalize()
		if !back.Equal(want) {
			t.Fatalf("round trip changed the tree:\n src  %q\n norm %s\n back %s", src, want, back)
		}
	})
}

package plantree

import (
	"fmt"

	"repro/internal/workflow"
)

// builder tracks ID allocation while emitting a process description.
type builder struct {
	p    *workflow.ProcessDescription
	next int
}

func (b *builder) fresh(name string, kind workflow.Kind, service string) *workflow.Activity {
	b.next++
	a := &workflow.Activity{
		ID:      fmt.Sprintf("A%d", b.next),
		Name:    name,
		Kind:    kind,
		Service: service,
	}
	b.p.Add(a)
	return a
}

// ToProcess converts a plan tree to the equivalent process description,
// applying the correspondences of Figures 4-7:
//
//   - a sequential node becomes a chain of its children;
//   - a concurrent node becomes a Fork/Join pair around its children;
//   - a selective node becomes a Choice/Merge pair around its children;
//   - an iterative node becomes a loop: a Merge heading the body and a
//     Choice at the end with a back transition to the Merge.
//
// Single-child concurrent and selective nodes are inlined (a Fork with one
// branch is not a legal process description). The resulting process always
// validates.
func ToProcess(name string, root *Node) (*workflow.ProcessDescription, error) {
	if err := root.Validate(0); err != nil {
		return nil, err
	}
	b := &builder{p: workflow.NewProcess(name)}
	begin := b.fresh("BEGIN", workflow.KindBegin, "")
	end := b.fresh("END", workflow.KindEnd, "")
	entry, exit, err := b.emit(root)
	if err != nil {
		return nil, err
	}
	b.p.Connect(begin.ID, entry)
	b.p.Connect(exit, end.ID)
	if err := b.p.Validate(); err != nil {
		return nil, fmt.Errorf("plantree: generated process invalid: %w", err)
	}
	return b.p, nil
}

// emit writes the subgraph for node n and returns its entry and exit
// activity IDs.
func (b *builder) emit(n *Node) (entry, exit string, err error) {
	switch n.Kind {
	case KindActivity:
		name := n.Name
		if name == "" {
			name = n.Service
		}
		a := b.fresh(name, workflow.KindEndUser, n.Service)
		a.Inputs = append([]string(nil), n.Inputs...)
		a.Outputs = append([]string(nil), n.Outputs...)
		return a.ID, a.ID, nil

	case KindSequential:
		var first, last string
		for _, c := range n.Children {
			e, x, err := b.emit(c)
			if err != nil {
				return "", "", err
			}
			if first == "" {
				first = e
			} else {
				b.p.Connect(last, e)
			}
			last = x
		}
		return first, last, nil

	case KindConcurrent:
		if len(n.Children) == 1 {
			return b.emit(n.Children[0])
		}
		fork := b.fresh("FORK", workflow.KindFork, "")
		join := b.fresh("JOIN", workflow.KindJoin, "")
		for _, c := range n.Children {
			e, x, err := b.emit(c)
			if err != nil {
				return "", "", err
			}
			b.p.Connect(fork.ID, e)
			b.p.Connect(x, join.ID)
		}
		return fork.ID, join.ID, nil

	case KindSelective:
		if len(n.Children) == 1 {
			return b.emit(n.Children[0])
		}
		choice := b.fresh("CHOICE", workflow.KindChoice, "")
		merge := b.fresh("MERGE", workflow.KindMerge, "")
		for _, c := range n.Children {
			e, x, err := b.emit(c)
			if err != nil {
				return "", "", err
			}
			// On an iterative child, Condition is its loop condition, not a
			// guard; such an alternative is unguarded unless wrapped in a
			// sequential carrying the guard.
			guard := c.Condition
			if c.Kind == KindIterative {
				guard = ""
			}
			b.p.ConnectCond(choice.ID, e, guard)
			b.p.Connect(x, merge.ID)
		}
		return choice.ID, merge.ID, nil

	case KindIterative:
		merge := b.fresh("MERGE", workflow.KindMerge, "")
		choice := b.fresh("CHOICE", workflow.KindChoice, "")
		var bodyEntry, last string
		for _, c := range n.Children {
			e, x, err := b.emit(c)
			if err != nil {
				return "", "", err
			}
			if bodyEntry == "" {
				bodyEntry = e
			} else {
				b.p.Connect(last, e)
			}
			last = x
		}
		b.p.Connect(merge.ID, bodyEntry)
		b.p.Connect(last, choice.ID)
		// The back transition repeats the loop while the continue condition
		// holds; the forward transition exits. A condition-less iterative
		// node gets the literal "false" so enactment runs the body exactly
		// once instead of looping forever.
		cond := n.Condition
		if cond == "" {
			cond = "false"
		}
		b.p.ConnectCond(choice.ID, merge.ID, cond)
		return merge.ID, choice.ID, nil
	}
	return "", "", fmt.Errorf("plantree: unknown node kind %v", n.Kind)
}

// FromProcess converts a well-structured process description back into a
// plan tree, inverting ToProcess. The process must be structured in the
// paper's sense: Fork paired with Join, Choice with Merge, loops formed by a
// Merge header and a Choice with a back transition. Non-structured graphs
// return an error.
func FromProcess(p *workflow.ProcessDescription) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	begin := p.Begin()
	end := p.End()
	pr := &parser{p: p}
	nodes, stop, err := pr.parseSeq(onlySucc(p, begin.ID), end.ID)
	if err != nil {
		return nil, err
	}
	if stop != end.ID {
		return nil, fmt.Errorf("plantree: parse stopped at %s, not END", stop)
	}
	tree := Seq(nodes...)
	return tree.Normalize(), nil
}

type parser struct {
	p     *workflow.ProcessDescription
	steps int
	dom   map[string]map[string]bool
}

const maxParseSteps = 1 << 16

func onlySucc(p *workflow.ProcessDescription, id string) string {
	out := p.Out(id)
	if len(out) == 1 {
		return out[0].Dest
	}
	return ""
}

// parseSeq consumes activities from cur until reaching stop (exclusive) and
// returns the parsed nodes plus the ID where parsing stopped.
func (pr *parser) parseSeq(cur, stop string) ([]*Node, string, error) {
	var nodes []*Node
	for cur != stop && cur != "" {
		pr.steps++
		if pr.steps > maxParseSteps {
			return nil, "", fmt.Errorf("plantree: process not structured (parse did not terminate)")
		}
		a := pr.p.Activity(cur)
		if a == nil {
			return nil, "", fmt.Errorf("plantree: dangling activity reference %q", cur)
		}
		switch a.Kind {
		case workflow.KindEndUser:
			node := Activity(a.Service)
			if a.Name != "" && a.Name != a.Service {
				node.Name = a.Name
			}
			node.Inputs = append([]string(nil), a.Inputs...)
			node.Outputs = append([]string(nil), a.Outputs...)
			nodes = append(nodes, node)
			cur = onlySucc(pr.p, cur)

		case workflow.KindFork:
			node, next, err := pr.parseFork(a)
			if err != nil {
				return nil, "", err
			}
			nodes = append(nodes, node)
			cur = next

		case workflow.KindChoice:
			node, next, err := pr.parseChoice(a)
			if err != nil {
				return nil, "", err
			}
			nodes = append(nodes, node)
			cur = next

		case workflow.KindMerge:
			node, next, err := pr.parseLoop(a)
			if err != nil {
				return nil, "", err
			}
			nodes = append(nodes, node)
			cur = next

		case workflow.KindJoin:
			// A Join reached outside parseFork means the graph is not
			// structured (or we've hit the branch stop without knowing it).
			return nil, "", fmt.Errorf("plantree: unmatched Join %s", a.ID)

		default:
			return nil, "", fmt.Errorf("plantree: unexpected %s activity %s", a.Kind, a.ID)
		}
	}
	if cur == "" {
		return nil, "", fmt.Errorf("plantree: flow ended before reaching stop activity")
	}
	return nodes, cur, nil
}

// parseFork parses FORK branches up to the matching JOIN and returns the
// concurrent node and the JOIN's successor.
func (pr *parser) parseFork(fork *workflow.Activity) (*Node, string, error) {
	join, err := pr.findMatching(fork.ID, workflow.KindFork, workflow.KindJoin)
	if err != nil {
		return nil, "", err
	}
	node := &Node{Kind: KindConcurrent}
	for _, t := range pr.p.Out(fork.ID) {
		branch, stopped, err := pr.parseSeq(t.Dest, join)
		if err != nil {
			return nil, "", err
		}
		if stopped != join {
			return nil, "", fmt.Errorf("plantree: fork %s branch does not reach join %s", fork.ID, join)
		}
		node.Children = append(node.Children, seqOrSingle(branch))
	}
	return node, onlySucc(pr.p, join), nil
}

// parseChoice parses a selective block: CHOICE branches converging at the
// matching MERGE.
func (pr *parser) parseChoice(choice *workflow.Activity) (*Node, string, error) {
	merge, err := pr.findMatching(choice.ID, workflow.KindChoice, workflow.KindMerge)
	if err != nil {
		return nil, "", err
	}
	node := &Node{Kind: KindSelective}
	for _, t := range pr.p.Out(choice.ID) {
		if t.Dest == merge {
			// Empty alternative: Choice connected directly to Merge.
			child := Seq()
			child.Condition = t.Condition
			// Represent the empty branch as a zero-activity sequential; it
			// is normalized away only if the whole selective collapses, so
			// keep a placeholder terminal-free node. Simplest faithful
			// representation: skip empty branches entirely.
			continue
		}
		branch, stopped, err := pr.parseSeq(t.Dest, merge)
		if err != nil {
			return nil, "", err
		}
		if stopped != merge {
			return nil, "", fmt.Errorf("plantree: choice %s branch does not reach merge %s", choice.ID, merge)
		}
		child := seqOrSingle(branch)
		// Guards live on the alternative node; if the alternative is an
		// iterative node its Condition slot is taken by the loop condition,
		// so wrap it.
		if t.Condition != "" {
			if child.Kind == KindIterative || child.Condition != "" {
				child = Seq(child)
			}
			child.Condition = t.Condition
		}
		node.Children = append(node.Children, child)
	}
	if len(node.Children) == 0 {
		return nil, "", fmt.Errorf("plantree: choice %s has no non-empty branches", choice.ID)
	}
	return node, onlySucc(pr.p, merge), nil
}

// loopChoice returns the Choice activity that closes the loop headed by
// merge, or nil if merge is not a loop header. A transition Choice -> Merge
// is a loop back edge precisely when the Merge dominates the Choice (every
// path from Begin to the Choice passes through the Merge); this cleanly
// separates loop headers from the Merges that close selective blocks, even
// when selectives and loops nest inside each other.
func (pr *parser) loopChoice(mergeID string) *workflow.Activity {
	dom := pr.dominators()
	for _, t := range pr.p.In(mergeID) {
		src := pr.p.Activity(t.Source)
		if src == nil || src.Kind != workflow.KindChoice {
			continue
		}
		if dom[src.ID][mergeID] {
			return src
		}
	}
	return nil
}

// dominators computes, for every activity, the set of activities that
// dominate it (standard iterative dataflow from Begin). Cached per parse.
func (pr *parser) dominators() map[string]map[string]bool {
	if pr.dom != nil {
		return pr.dom
	}
	begin := pr.p.Begin()
	all := make(map[string]bool, len(pr.p.Activities))
	for _, a := range pr.p.Activities {
		all[a.ID] = true
	}
	dom := make(map[string]map[string]bool, len(all))
	for id := range all {
		if id == begin.ID {
			dom[id] = map[string]bool{id: true}
			continue
		}
		full := make(map[string]bool, len(all))
		for other := range all {
			full[other] = true
		}
		dom[id] = full
	}
	for changed := true; changed; {
		changed = false
		for _, a := range pr.p.Activities {
			if a.ID == begin.ID {
				continue
			}
			preds := pr.p.In(a.ID)
			var inter map[string]bool
			for _, t := range preds {
				pd := dom[t.Source]
				if inter == nil {
					inter = make(map[string]bool, len(pd))
					for k := range pd {
						inter[k] = true
					}
					continue
				}
				for k := range inter {
					if !pd[k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = make(map[string]bool)
			}
			inter[a.ID] = true
			if len(inter) != len(dom[a.ID]) {
				dom[a.ID] = inter
				changed = true
			}
		}
	}
	pr.dom = dom
	return dom
}

// parseLoop parses an iterative block headed by a MERGE: the body runs until
// a CHOICE with a back transition to the MERGE; the other transition exits.
func (pr *parser) parseLoop(merge *workflow.Activity) (*Node, string, error) {
	backChoice := pr.loopChoice(merge.ID)
	if backChoice == nil {
		return nil, "", fmt.Errorf("plantree: merge %s is not a loop header and not inside a choice", merge.ID)
	}
	body, stopped, err := pr.parseSeq(onlySucc(pr.p, merge.ID), backChoice.ID)
	if err != nil {
		return nil, "", err
	}
	if stopped != backChoice.ID {
		return nil, "", fmt.Errorf("plantree: loop body of %s does not reach its choice", merge.ID)
	}
	if len(body) == 0 {
		return nil, "", fmt.Errorf("plantree: loop at %s has an empty body", merge.ID)
	}
	node := &Node{Kind: KindIterative, Children: []*Node{seqOrSingle(body)}}
	if n := node.Children[0]; n.Kind == KindSequential {
		node.Children = n.Children
	}
	// Exit is the choice successor that is not the back edge; record the
	// back-edge condition as the loop condition.
	exit := ""
	for _, t := range pr.p.Out(backChoice.ID) {
		if t.Dest == merge.ID {
			if t.Condition != "false" { // inverse of the ToProcess sentinel
				node.Condition = t.Condition
			}
			continue
		}
		if exit != "" {
			return nil, "", fmt.Errorf("plantree: loop choice %s has multiple exits", backChoice.ID)
		}
		exit = t.Dest
	}
	if exit == "" {
		return nil, "", fmt.Errorf("plantree: loop choice %s has no exit", backChoice.ID)
	}
	// Pick up the constraint attached to the choice (e.g. Cons1).
	if backChoice.Constraint != "" && node.Condition == "" {
		node.Condition = backChoice.Constraint
	}
	return node, exit, nil
}

// findMatching walks forward from open's successors to find the matching
// close activity, tracking nesting of open/close kinds along one path.
func (pr *parser) findMatching(openID string, openKind, closeKind workflow.Kind) (string, error) {
	depth := 0
	cur := pr.p.Out(openID)[0].Dest
	for steps := 0; steps < maxParseSteps; steps++ {
		a := pr.p.Activity(cur)
		if a == nil {
			return "", fmt.Errorf("plantree: dangling reference %q while matching %s", cur, openID)
		}
		// A Merge that heads a loop is transparent for matching: jump to
		// the loop's exit so the loop-internal Choice and back edge cannot
		// confuse either Choice/Merge or Fork/Join pairing.
		if a.Kind == workflow.KindMerge {
			if bc := pr.loopChoice(a.ID); bc != nil {
				exit := ""
				for _, t := range pr.p.Out(bc.ID) {
					if t.Dest != a.ID {
						exit = t.Dest
						break
					}
				}
				if exit == "" {
					return "", fmt.Errorf("plantree: loop at %s has no exit", a.ID)
				}
				cur = exit
				continue
			}
		}
		switch a.Kind {
		case openKind:
			depth++
		case closeKind:
			if depth == 0 {
				return a.ID, nil
			}
			depth--
		case workflow.KindEnd:
			return "", fmt.Errorf("plantree: no matching %v for %s", closeKind, openID)
		}
		next := pr.p.Out(cur)
		if len(next) == 0 {
			return "", fmt.Errorf("plantree: no matching %v for %s", closeKind, openID)
		}
		cur = next[0].Dest
	}
	return "", fmt.Errorf("plantree: matching for %s did not terminate", openID)
}

// seqOrSingle wraps nodes in a sequential controller unless there is exactly
// one.
func seqOrSingle(nodes []*Node) *Node {
	if len(nodes) == 1 {
		return nodes[0]
	}
	return Seq(nodes...)
}

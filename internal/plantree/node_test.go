package plantree

import (
	"math/rand"
	"strings"
	"testing"
)

var services = []string{"POD", "P3DR", "POR", "PSF"}

// fig11 builds the plan tree of Figure 11: the tree corresponding to the 3D
// reconstruction process description.
func fig11() *Node {
	return Seq(
		Activity("POD"),
		Activity("P3DR"),
		Iter(
			Activity("POR"),
			Conc(Activity("P3DR"), Activity("P3DR"), Activity("P3DR")),
			Activity("PSF"),
		),
	)
}

func TestSizeDepthLeaves(t *testing.T) {
	tr := fig11()
	if got := tr.Size(); got != 10 {
		t.Errorf("Size = %d, want 10", got)
	}
	if got := tr.Depth(); got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	leaves := tr.Services()
	want := []string{"POD", "P3DR", "POR", "P3DR", "P3DR", "P3DR", "PSF"}
	if len(leaves) != len(want) {
		t.Fatalf("Services = %v, want %v", leaves, want)
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("Services = %v, want %v", leaves, want)
		}
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 {
		t.Error("nil node size/depth should be 0")
	}
	if Activity("X").Depth() != 1 {
		t.Error("single node depth should be 1")
	}
}

func TestCloneEqual(t *testing.T) {
	tr := fig11()
	cl := tr.Clone()
	if !tr.Equal(cl) {
		t.Fatal("clone not equal to original")
	}
	cl.Children[0].Service = "MUTATED"
	if tr.Equal(cl) {
		t.Fatal("Equal missed a mutation")
	}
	if tr.Children[0].Service == "MUTATED" {
		t.Fatal("Clone is shallow")
	}
	if !(*Node)(nil).Equal(nil) {
		t.Error("nil.Equal(nil) should be true")
	}
	if tr.Equal(nil) {
		t.Error("tree.Equal(nil) should be false")
	}
	if Seq(Activity("A")).Equal(Conc(Activity("A"))) {
		t.Error("different kinds should not be equal")
	}
	a := Activity("A")
	b := Activity("A")
	b.Condition = "x.y = 1"
	if a.Equal(b) {
		t.Error("different conditions should not be equal")
	}
}

func TestValidate(t *testing.T) {
	if err := fig11().Validate(40); err != nil {
		t.Errorf("fig11: %v", err)
	}
	if err := fig11().Validate(5); err == nil {
		t.Error("Smax=5 should reject the 9-node tree")
	}
	if err := (&Node{Kind: KindActivity, Service: "A", Children: []*Node{Activity("B")}}).Validate(0); err == nil {
		t.Error("activity with children should be invalid")
	}
	if err := Activity("").Validate(0); err == nil {
		t.Error("activity with empty service should be invalid")
	}
	if err := Seq().Validate(0); err == nil {
		t.Error("empty controller should be invalid")
	}
	if err := (*Node)(nil).Validate(0); err == nil {
		t.Error("nil tree should be invalid")
	}
}

func TestString(t *testing.T) {
	got := fig11().String()
	want := "(seq POD P3DR (iter POR (conc P3DR P3DR P3DR) PSF))"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (*Node)(nil).String() != "()" {
		t.Error("nil String mismatch")
	}
	for _, k := range []Kind{KindActivity, KindSequential, KindConcurrent, KindSelective, KindIterative, Kind(9)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
	if KindActivity.IsController() || !KindIterative.IsController() {
		t.Error("IsController mismatch")
	}
}

func TestNodesAndAt(t *testing.T) {
	tr := fig11()
	nodes := tr.Nodes()
	if len(nodes) != tr.Size() {
		t.Fatalf("Nodes len = %d, want %d", len(nodes), tr.Size())
	}
	if nodes[0].Node != tr || nodes[0].Parent != nil || nodes[0].Index != -1 {
		t.Error("root location wrong")
	}
	// Pre-order: root, POD, P3DR, iter, POR, conc, P3DR x3, PSF.
	if nodes[1].Node.Service != "POD" || nodes[1].Parent != tr || nodes[1].Index != 0 {
		t.Errorf("nodes[1] = %+v", nodes[1])
	}
	if at := tr.At(3); at.Node.Kind != KindIterative {
		t.Errorf("At(3).Kind = %v, want iterative", at.Node.Kind)
	}
	// Every non-root node's parent link must be consistent.
	for _, loc := range nodes[1:] {
		if loc.Parent.Children[loc.Index] != loc.Node {
			t.Fatalf("inconsistent parent link at %+v", loc)
		}
	}
}

func TestNormalize(t *testing.T) {
	// seq(seq(A,B),C) flattens to seq(A,B,C).
	tr := Seq(Seq(Activity("A"), Activity("B")), Activity("C"))
	n := tr.Normalize()
	if n.String() != "(seq A B C)" {
		t.Errorf("Normalize = %s", n)
	}
	// Single-child controllers collapse (except iterative).
	if got := Conc(Activity("A")).Normalize().String(); got != "A" {
		t.Errorf("conc(A) normalized to %s", got)
	}
	if got := Sel(Activity("A")).Normalize().String(); got != "A" {
		t.Errorf("sel(A) normalized to %s", got)
	}
	if got := Iter(Activity("A")).Normalize().String(); got != "(iter A)" {
		t.Errorf("iter(A) normalized to %s", got)
	}
	// Conditioned children must not be flattened away.
	cond := Seq(Activity("A"))
	cond.Condition = "x.v = 1"
	if got := Sel(cond, Activity("B")).Normalize(); len(got.Children) != 2 {
		t.Errorf("conditioned child lost: %s", got)
	}
	// Activities are untouched.
	if got := Activity("A").Normalize().String(); got != "A" {
		t.Errorf("activity normalized to %s", got)
	}
}

func TestRandomRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		maxSize := 1 + rng.Intn(40)
		tr := Random(rng, services, maxSize)
		if err := tr.Validate(maxSize); err != nil {
			t.Fatalf("random tree invalid (maxSize=%d): %v\n%s", maxSize, err, tr)
		}
		for _, leaf := range tr.Leaves() {
			found := false
			for _, s := range services {
				if leaf.Service == s {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("leaf service %q not in service set", leaf.Service)
			}
		}
	}
}

func TestRandomCoversAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[Kind]bool{}
	for i := 0; i < 200; i++ {
		tr := Random(rng, services, 20)
		tr.walk(func(n, _ *Node, _ int) { seen[n.Kind] = true })
	}
	for _, k := range []Kind{KindActivity, KindSequential, KindConcurrent, KindSelective, KindIterative} {
		if !seen[k] {
			t.Errorf("random generation never produced %v nodes", k)
		}
	}
}

func TestRandomPanicsOnEmptyServices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Random(rand.New(rand.NewSource(1)), nil, 10)
}

func TestRandomMinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Random(rng, services, 0) // clamped to 1
	if tr.Size() != 1 || tr.Kind != KindActivity {
		t.Errorf("maxSize 0 tree = %s", tr)
	}
}

func TestStringContainsAllLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		tr := Random(rng, services, 15)
		s := tr.String()
		for _, svc := range tr.Services() {
			if !strings.Contains(s, svc) {
				t.Fatalf("String %q missing leaf %q", s, svc)
			}
		}
	}
}

package plantree

import (
	"math/rand"
	"testing"

	"repro/internal/workflow"
)

// TestFig4SequentialConversion reproduces Figure 4: a sequence of activities
// maps to a tree with a sequential root.
func TestFig4SequentialConversion(t *testing.T) {
	tr := Seq(Activity("A"), Activity("B"), Activity("C"))
	p, err := ToProcess("fig4", tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CountKind(workflow.KindEndUser); got != 3 {
		t.Errorf("end-user activities = %d, want 3", got)
	}
	if got := p.CountKind(workflow.KindFork) + p.CountKind(workflow.KindChoice); got != 0 {
		t.Errorf("sequential process has %d fork/choice activities", got)
	}
	back, err := FromProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != "(seq A B C)" {
		t.Errorf("round trip = %s", back)
	}
}

// TestFig5ConcurrentConversion reproduces Figure 5: concurrent activities
// map to a Fork/Join pair and back to a concurrent node.
func TestFig5ConcurrentConversion(t *testing.T) {
	tr := Conc(Activity("A"), Activity("B"))
	p, err := ToProcess("fig5", tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountKind(workflow.KindFork) != 1 || p.CountKind(workflow.KindJoin) != 1 {
		t.Errorf("want exactly one Fork and one Join:\n%s", p)
	}
	back, err := FromProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != "(conc A B)" {
		t.Errorf("round trip = %s", back)
	}
}

// TestFig6SelectiveConversion reproduces Figure 6: selective activities map
// to a Choice/Merge pair.
func TestFig6SelectiveConversion(t *testing.T) {
	a := Activity("A")
	a.Condition = "x.v > 0"
	b := Activity("B")
	b.Condition = "x.v <= 0"
	tr := Sel(a, b)
	p, err := ToProcess("fig6", tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountKind(workflow.KindChoice) != 1 || p.CountKind(workflow.KindMerge) != 1 {
		t.Errorf("want exactly one Choice and one Merge:\n%s", p)
	}
	// Conditions must land on the choice's outgoing transitions.
	choiceID := ""
	for _, act := range p.Activities {
		if act.Kind == workflow.KindChoice {
			choiceID = act.ID
		}
	}
	conds := map[string]bool{}
	for _, tr := range p.Out(choiceID) {
		conds[tr.Condition] = true
	}
	if !conds["x.v > 0"] || !conds["x.v <= 0"] {
		t.Errorf("choice conditions = %v", conds)
	}
	back, err := FromProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != "(sel A B)" {
		t.Errorf("round trip = %s", back)
	}
	if back.Children[0].Condition != "x.v > 0" {
		t.Errorf("branch condition lost: %q", back.Children[0].Condition)
	}
}

// TestFig7IterativeConversion reproduces Figure 7: a loop maps to a Merge
// header plus a Choice with a back transition, and back to an iterative
// node.
func TestFig7IterativeConversion(t *testing.T) {
	it := Iter(Activity("A"), Activity("B"))
	it.Condition = "r.v > 8"
	p, err := ToProcess("fig7", it)
	if err != nil {
		t.Fatal(err)
	}
	if p.CountKind(workflow.KindChoice) != 1 || p.CountKind(workflow.KindMerge) != 1 {
		t.Errorf("want one Choice and one Merge:\n%s", p)
	}
	back, err := FromProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != "(iter A B)" {
		t.Errorf("round trip = %s", back)
	}
	if back.Condition != "r.v > 8" {
		t.Errorf("loop condition lost: %q", back.Condition)
	}
}

// TestFig11RoundTrip converts the Figure 11 plan tree to the Figure 10
// process description and back.
func TestFig11RoundTrip(t *testing.T) {
	tr := fig11()
	p, err := ToProcess("3DSD", tr)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 10: 7 end-user activities and 6 flow-control activities.
	if got := p.CountKind(workflow.KindEndUser); got != 7 {
		t.Errorf("end-user activities = %d, want 7", got)
	}
	flow := 0
	for _, k := range []workflow.Kind{workflow.KindBegin, workflow.KindEnd,
		workflow.KindChoice, workflow.KindFork, workflow.KindJoin, workflow.KindMerge} {
		flow += p.CountKind(k)
	}
	if flow != 6 {
		t.Errorf("flow-control activities = %d, want 6", flow)
	}
	back, err := FromProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tr) {
		t.Errorf("round trip:\n got %s\nwant %s", back, tr)
	}
}

func TestNestedStructuresRoundTrip(t *testing.T) {
	trees := []*Node{
		Seq(Activity("A"), Conc(Seq(Activity("B"), Activity("C")), Activity("D")), Activity("E")),
		Conc(Sel(Activity("A"), Activity("B")), Activity("C")),
		Sel(Iter(Activity("A")), Activity("B")),
		Iter(Conc(Activity("A"), Activity("B"))),
		Iter(Sel(Activity("A"), Activity("B")), Activity("C")),
		Seq(Iter(Activity("A")), Iter(Activity("B"))),
		Conc(Iter(Activity("A")), Seq(Activity("B"), Activity("C")), Sel(Activity("D"), Activity("E"))),
		Sel(Seq(Activity("A"), Activity("B")), Conc(Activity("C"), Activity("D"))),
		Iter(Iter(Activity("A"))),
	}
	for _, tr := range trees {
		p, err := ToProcess("nested", tr)
		if err != nil {
			t.Errorf("%s: ToProcess: %v", tr, err)
			continue
		}
		back, err := FromProcess(p)
		if err != nil {
			t.Errorf("%s: FromProcess: %v\n%s", tr, err, p)
			continue
		}
		want := tr.Clone().Normalize()
		if !back.Equal(want) {
			t.Errorf("round trip:\n got %s\nwant %s", back, want)
		}
	}
}

func TestSingleChildControllersInline(t *testing.T) {
	// conc(A) and sel(A) cannot be expressed as Fork/Choice with one branch;
	// ToProcess inlines them.
	for _, tr := range []*Node{Conc(Activity("A")), Sel(Activity("A"))} {
		p, err := ToProcess("single", tr)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if got := p.CountKind(workflow.KindFork) + p.CountKind(workflow.KindChoice); got != 0 {
			t.Errorf("%s: produced %d fork/choice activities", tr, got)
		}
	}
}

func TestToProcessRejectsInvalidTrees(t *testing.T) {
	for _, tr := range []*Node{nil, Seq(), Activity("")} {
		if _, err := ToProcess("bad", tr); err == nil {
			t.Errorf("ToProcess(%s) succeeded, want error", tr)
		}
	}
}

func TestFromProcessRejectsUnstructured(t *testing.T) {
	// A Join without a Fork.
	p := workflow.NewProcess("unstructured")
	p.Add(&workflow.Activity{ID: "begin", Kind: workflow.KindBegin, Name: "BEGIN"})
	p.Add(&workflow.Activity{ID: "a", Kind: workflow.KindEndUser, Name: "A", Service: "A"})
	p.Add(&workflow.Activity{ID: "b", Kind: workflow.KindEndUser, Name: "B", Service: "B"})
	p.Add(&workflow.Activity{ID: "join", Kind: workflow.KindJoin, Name: "JOIN"})
	p.Add(&workflow.Activity{ID: "fork", Kind: workflow.KindFork, Name: "FORK"})
	p.Add(&workflow.Activity{ID: "end", Kind: workflow.KindEnd, Name: "END"})
	// begin -> fork -> {a, b}; a -> join (premature), b -> join; join -> end.
	// This IS structured; to break it, cross the pairs: use choice/join mix.
	p.Connect("begin", "fork")
	p.Connect("fork", "a")
	p.Connect("fork", "b")
	p.Connect("a", "join")
	p.Connect("b", "join")
	p.Connect("join", "end")
	if _, err := FromProcess(p); err != nil {
		t.Errorf("structured fork/join rejected: %v", err)
	}

	// Choice whose branches end at a Join (mismatched pairing).
	q := workflow.NewProcess("mismatched")
	q.Add(&workflow.Activity{ID: "begin", Kind: workflow.KindBegin, Name: "BEGIN"})
	q.Add(&workflow.Activity{ID: "choice", Kind: workflow.KindChoice, Name: "CHOICE"})
	q.Add(&workflow.Activity{ID: "a", Kind: workflow.KindEndUser, Name: "A", Service: "A"})
	q.Add(&workflow.Activity{ID: "b", Kind: workflow.KindEndUser, Name: "B", Service: "B"})
	q.Add(&workflow.Activity{ID: "join", Kind: workflow.KindJoin, Name: "JOIN"})
	q.Add(&workflow.Activity{ID: "end", Kind: workflow.KindEnd, Name: "END"})
	q.Connect("begin", "choice")
	q.Connect("choice", "a")
	q.Connect("choice", "b")
	q.Connect("a", "join")
	q.Connect("b", "join")
	q.Connect("join", "end")
	if _, err := FromProcess(q); err == nil {
		t.Error("choice paired with join accepted")
	}

	// Invalid process fails fast.
	bad := workflow.NewProcess("invalid")
	if _, err := FromProcess(bad); err == nil {
		t.Error("invalid process accepted")
	}
}

// Property-style: every random tree round-trips through the process
// description form, modulo normalization.
func TestRandomTreesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		tr := Random(rng, services, 25)
		p, err := ToProcess("rand", tr)
		if err != nil {
			t.Fatalf("tree %s: ToProcess: %v", tr, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("tree %s: generated process invalid: %v", tr, err)
		}
		back, err := FromProcess(p)
		if err != nil {
			t.Fatalf("tree %s: FromProcess: %v\n%s", tr, err, p)
		}
		want := tr.Clone().Normalize()
		if !back.Equal(want) {
			t.Fatalf("round trip mismatch:\n tree %s\n norm %s\n back %s\n%s", tr, want, back, p)
		}
	}
}

func BenchmarkToProcess(b *testing.B) {
	tr := fig11()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ToProcess("bench", tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromProcess(b *testing.B) {
	p, err := ToProcess("bench", fig11())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromProcess(p); err != nil {
			b.Fatal(err)
		}
	}
}

package plantree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Normalize is idempotent and preserves the leaf sequence.
func TestQuickNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64, sizeRaw uint8) bool {
		local := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw)%30
		tree := Random(local, services, size)
		leavesBefore := tree.Services()
		once := tree.Clone().Normalize()
		twice := once.Clone().Normalize()
		if !once.Equal(twice) {
			return false
		}
		leavesAfter := once.Services()
		if len(leavesBefore) != len(leavesAfter) {
			return false
		}
		for i := range leavesBefore {
			if leavesBefore[i] != leavesAfter[i] {
				return false
			}
		}
		return once.Size() <= tree.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Clone produces an equal tree whose mutation does not affect the
// original.
func TestQuickCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		tree := Random(local, services, 20)
		clone := tree.Clone()
		if !tree.Equal(clone) {
			return false
		}
		for _, leaf := range clone.Leaves() {
			leaf.Service = "MUTATED"
		}
		for _, leaf := range tree.Leaves() {
			if leaf.Service == "MUTATED" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: every node reported by Nodes() is reachable through its parent
// chain from the root, and pre-order positions are stable.
func TestQuickNodesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		tree := Random(local, services, 25)
		nodes := tree.Nodes()
		if len(nodes) != tree.Size() {
			return false
		}
		for i, loc := range nodes {
			if tree.At(i).Node != loc.Node {
				return false
			}
			if loc.Parent == nil {
				if loc.Node != tree {
					return false
				}
				continue
			}
			if loc.Parent.Children[loc.Index] != loc.Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: ToProcess output always validates and has exactly one Begin and
// one End, with flow-control pairing counts matching the tree's controller
// census.
func TestQuickToProcessStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		tree := Random(local, services, 20)
		p, err := ToProcess("q", tree)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		// Count controllers that actually emit pairs (>= 2 children for
		// conc/sel; iter always emits).
		forks, sels, iters := 0, 0, 0
		for _, loc := range tree.Nodes() {
			switch loc.Node.Kind {
			case KindConcurrent:
				if len(loc.Node.Children) > 1 {
					forks++
				}
			case KindSelective:
				if len(loc.Node.Children) > 1 {
					sels++
				}
			case KindIterative:
				iters++
			}
		}
		join := 0
		choice := 0
		merge := 0
		for _, a := range p.Activities {
			switch a.Kind.String() {
			case "Join":
				join++
			case "Choice":
				choice++
			case "Merge":
				merge++
			}
		}
		return join == forks && choice == sels+iters && merge == sels+iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

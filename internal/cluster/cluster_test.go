package cluster

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// listenAt rebinds the host:port of a base URL, for resurrecting a peer at
// its configured address.
func listenAt(url string) (net.Listener, error) {
	return net.Listen("tcp", strings.TrimPrefix(url, "http://"))
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080/ ,c=http://h3:8080=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{ID: "a", Addr: "http://h1:8080"},
		{ID: "b", Addr: "http://h2:8080"},
		{ID: "c", Addr: "http://h3:8080", Weight: 3},
	}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers, want %d", len(peers), len(want))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Errorf("peer %d = %+v, want %+v", i, peers[i], want[i])
		}
	}
	for _, bad := range []string{"", "a", "a=", "=addr", "a=addr=zero", "a=addr=-1"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	peers := []Peer{{ID: "a", Addr: "http://h1"}, {ID: "b", Addr: "http://h2"}}
	if _, err := New(Config{NodeID: "", Peers: peers}); err == nil {
		t.Error("missing NodeID accepted")
	}
	if _, err := New(Config{NodeID: "ghost", Peers: peers}); err == nil {
		t.Error("NodeID outside the peer list accepted")
	}
	if _, err := New(Config{NodeID: "a", Peers: []Peer{{ID: "a", Addr: "http://h1"}, {ID: "b"}}}); err == nil {
		t.Error("remote peer without address accepted")
	}
	n, err := New(Config{NodeID: "a", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if n.Self().ID != "a" {
		t.Errorf("Self = %s, want a", n.Self().ID)
	}
	if !n.Alive("b") {
		t.Error("peers should start optimistically alive")
	}
}

// TestOwnerFailsOverToSuccessor checks the liveness-aware owner walk: keys
// owned by a dead member resolve to their first alive successor, and come
// back once the member rejoins.
func TestOwnerFailsOverToSuccessor(t *testing.T) {
	n, err := New(Config{NodeID: "a", Peers: []Peer{
		{ID: "a", Addr: "http://h1"}, {ID: "b", Addr: "http://h2"}, {ID: "c", Addr: "http://h3"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	// Find a key b owns.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("task-%d", i)
		if n.Ring().Owner(Key("", key)) == "b" {
			break
		}
	}
	if _, self := n.Owner("", key); self {
		t.Fatal("key owned by b resolved to self while b is alive")
	}

	n.mu.Lock()
	n.peers["b"].alive = false
	n.mu.Unlock()
	peer, self := n.Owner("", key)
	if !self && peer.ID == "b" {
		t.Errorf("dead member still owns %s", key)
	}
	// The replacement is the ring successor, deterministically.
	succ := n.Ring().Successors(Key("", key))
	if want := succ[1]; (self && want != "a") || (!self && peer.ID != want) {
		t.Errorf("failover owner = %v/self=%v, want successor %s", peer.ID, self, want)
	}

	n.mu.Lock()
	n.peers["b"].alive = true
	n.mu.Unlock()
	if peer, self := n.Owner("", key); self || peer.ID != "b" {
		t.Errorf("rejoined member did not get its partition back (owner %s/self=%v)", peer.ID, self)
	}
}

// TestHeartbeatDeclaresDeath runs a real heartbeat loop against one live
// and one dead HTTP endpoint and checks the overlay converges: the live
// peer stays alive, the dead one crosses the miss threshold and is
// declared dead, then rejoins when its endpoint comes back.
func TestHeartbeatDeclaresDeath(t *testing.T) {
	healthz := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	live := httptest.NewServer(healthz)
	defer live.Close()
	dead := httptest.NewServer(healthz)
	deadAddr := dead.URL
	dead.Close() // connection refused from the start

	n, err := New(Config{
		NodeID: "self",
		Peers: []Peer{
			{ID: "self", Addr: "http://ignored"},
			{ID: "live", Addr: live.URL},
			{ID: "dead", Addr: deadAddr},
		},
		Telemetry:         telemetry.New(),
		HeartbeatInterval: 20 * time.Millisecond,
		MissThreshold:     2,
		PeerTimeout:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for n.Alive("dead") {
		if time.Now().After(deadline) {
			t.Fatal("dead peer never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !n.Alive("live") {
		t.Error("live peer was declared dead")
	}
	st := n.Status()
	if st.HeartbeatMisses == 0 {
		t.Error("heartbeat misses not counted")
	}
	if st.Failovers == 0 {
		t.Error("death did not trigger a failover")
	}

	// Resurrect the endpoint at the same address and wait for the rejoin.
	ln, err := listenAt(deadAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	resurrected := &http.Server{Handler: healthz}
	go func() { _ = resurrected.Serve(ln) }()
	defer resurrected.Close()
	for !n.Alive("dead") {
		if time.Now().After(deadline) {
			t.Fatal("resurrected peer never rejoined")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEnterRebalance(t *testing.T) {
	n, err := New(Config{NodeID: "a", Peers: []Peer{{ID: "a", Addr: "http://h1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if n.Rebalancing() {
		t.Fatal("fresh node reports rebalancing")
	}
	leave1 := n.EnterRebalance()
	leave2 := n.EnterRebalance()
	if !n.Rebalancing() {
		t.Fatal("EnterRebalance not reflected")
	}
	leave1()
	leave1() // idempotent
	if !n.Rebalancing() {
		t.Fatal("rebalancing cleared while a second replay is still running")
	}
	leave2()
	if n.Rebalancing() {
		t.Fatal("rebalancing stuck after every replay left")
	}
}

func TestStatusView(t *testing.T) {
	n, err := New(Config{NodeID: "b", Peers: []Peer{
		{ID: "a", Addr: "http://h1"}, {ID: "b", Addr: "http://h2", Weight: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	st := n.Status()
	if st.NodeID != "b" || st.RingVersion == "" {
		t.Fatalf("bad status identity: %+v", st)
	}
	if len(st.Members) != 2 || st.Members[0].ID != "a" || st.Members[1].ID != "b" {
		t.Fatalf("members not sorted by ID: %+v", st.Members)
	}
	if !st.Members[1].Self || st.Members[1].Weight != 2 {
		t.Errorf("self row wrong: %+v", st.Members[1])
	}
}

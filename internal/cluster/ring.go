// Package cluster turns N gridenv processes into one logical grid
// environment — the decentralized-enactment end of Yu & Buyya's design
// space, and the peer-engine topology of Costan et al.'s workflow-platform
// model. Each process runs a cluster.Node over a static peer list:
//
//   - task and plan ownership is partitioned by consistent-hashing
//     tenant+ID over a weighted hash ring (ring.go), so every node computes
//     the same owner for the same resource without coordination;
//   - requests that arrive at a non-owner are transparently forwarded to
//     the owning peer over the existing /api/v1 HTTP surface (the
//     forwarding itself lives in internal/httpapi, which consults Node);
//   - peer liveness comes from a lightweight heartbeat loop probing each
//     peer's /healthz; a peer that misses MissThreshold consecutive probes
//     is declared dead and its ring partition fails over to the next alive
//     successor;
//   - failover replays the dead peer's task journals from the shared (or
//     replicated) store onto the surviving new owner — the checkpoint-exact
//     crash-recovery machinery of the enactment engine does the hard part
//     (engine.RecoverOwned with an ownership filter).
//
// The ring is static (configured membership); liveness is an overlay. A
// dead peer that comes back is probed alive again and resumes ownership of
// its partition for new work; work that already failed over stays where it
// ran (records are never migrated back).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Member is one weighted ring member.
type Member struct {
	// ID is the node identity (gridenv -node-id).
	ID string
	// Weight scales the member's share of the key space; non-positive
	// means 1. A node with weight 2 owns roughly twice the keys of a
	// weight-1 node.
	Weight int
}

// vnodesPerWeight is how many virtual points one weight unit contributes.
// 64 keeps the per-member share within a few percent of its weight share
// for small clusters while the ring stays tiny (4 nodes × weight 1 = 256
// points).
const vnodesPerWeight = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	id   string
}

// Ring is a weighted consistent-hash ring. It is immutable after New; all
// methods are safe for concurrent use.
type Ring struct {
	points  []point
	ids     []string // distinct member IDs, sorted
	version string
}

// NewRing builds the ring. Every node of a cluster must build it from the
// same member list (order-insensitive) to compute identical ownership.
func NewRing(members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, m := range members {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: ring member with empty ID")
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m.ID)
		}
		seen[m.ID] = true
		r.ids = append(r.ids, m.ID)
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		for v := 0; v < w*vnodesPerWeight; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", m.ID, v)), id: m.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	sort.Strings(r.ids)
	// The version fingerprints the membership (IDs and weights via the
	// point multiset); nodes expose it so operators can spot ring drift.
	h := fnv.New64a()
	for _, p := range r.points {
		fmt.Fprintf(h, "%016x:%s;", p.hash, p.id)
	}
	r.version = fmt.Sprintf("%016x", h.Sum64())
	return r, nil
}

// Members returns the distinct member IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Version is the membership fingerprint; equal rings have equal versions.
func (r *Ring) Version() string { return r.version }

// Owner returns the key's primary owner: the member whose virtual point is
// the first at or after the key's hash, wrapping around.
func (r *Ring) Owner(key string) string {
	return r.points[r.successor(key)].id
}

// Successors returns the distinct members in ring order starting at the
// key's primary owner. The first entry is Owner(key); the rest are the
// failover order of the key's partition.
func (r *Ring) Successors(key string) []string {
	out := make([]string, 0, len(r.ids))
	seen := map[string]bool{}
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// successor finds the index of the first point at or after the key's hash.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is the ring's hash: FNV-1a with a 64-bit avalanche finalizer,
// stable across processes and platforms. Raw FNV-1a is not enough here:
// keys differing only in a trailing counter ("t/task-1", "t/task-2", ...)
// leave the top bits almost unchanged — the final xor-multiply moves them
// by small multiples of the prime (~2^40) — so sequential IDs would pile
// onto one arc of the ring. The finalizer (murmur3's fmix64) spreads every
// input bit across the whole word.
func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Key builds the ownership key of a resource: tenant+ID, with the empty
// tenant canonicalized so that routing agrees with the engine's accounting
// (engine.DefaultTenant). Both tasks and plans are keyed this way.
func Key(tenant, id string) string {
	if tenant == "" {
		tenant = "default"
	}
	return tenant + "/" + id
}

package cluster

import (
	"fmt"
	"testing"
)

func ringOf(t *testing.T, members ...Member) *Ring {
	t.Helper()
	r, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]Member{{ID: ""}}); err == nil {
		t.Error("empty member ID accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate member ID accepted")
	}
}

func TestRingOwnerDeterministic(t *testing.T) {
	r1 := ringOf(t, Member{ID: "a"}, Member{ID: "b"}, Member{ID: "c"})
	// Same membership in a different order builds the same ring.
	r2 := ringOf(t, Member{ID: "c"}, Member{ID: "a"}, Member{ID: "b"})
	if r1.Version() != r2.Version() {
		t.Fatalf("ring version depends on member order: %s vs %s", r1.Version(), r2.Version())
	}
	for i := 0; i < 200; i++ {
		key := Key("tenant", fmt.Sprintf("task-%d", i))
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner of %s differs between equal rings: %s vs %s", key, o1, o2)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := ringOf(t, Member{ID: "a"}, Member{ID: "b"}, Member{ID: "c"})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(Key("", fmt.Sprintf("task-%d", i)))]++
	}
	for id, c := range counts {
		// Even split would be n/3; accept a generous band — the point is
		// that no member is starved or hot-spotted.
		if c < n/6 || c > n/2 {
			t.Errorf("member %s owns %d of %d keys, outside [%d, %d]", id, c, n, n/6, n/2)
		}
	}
}

func TestRingWeights(t *testing.T) {
	r := ringOf(t, Member{ID: "heavy", Weight: 3}, Member{ID: "light", Weight: 1})
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(Key("", fmt.Sprintf("task-%d", i)))]++
	}
	if counts["heavy"] <= counts["light"] {
		t.Errorf("weight ignored: heavy owns %d, light owns %d", counts["heavy"], counts["light"])
	}
}

func TestRingSuccessors(t *testing.T) {
	r := ringOf(t, Member{ID: "a"}, Member{ID: "b"}, Member{ID: "c"})
	succ := r.Successors(Key("t", "x"))
	if len(succ) != 3 {
		t.Fatalf("Successors returned %d members, want 3", len(succ))
	}
	seen := map[string]bool{}
	for _, id := range succ {
		if seen[id] {
			t.Fatalf("Successors repeats member %s: %v", id, succ)
		}
		seen[id] = true
	}
	if succ[0] != r.Owner(Key("t", "x")) {
		t.Errorf("Successors[0] = %s, Owner = %s", succ[0], r.Owner(Key("t", "x")))
	}
}

func TestRingVersionTracksMembership(t *testing.T) {
	r1 := ringOf(t, Member{ID: "a"}, Member{ID: "b"})
	r2 := ringOf(t, Member{ID: "a"}, Member{ID: "b"}, Member{ID: "c"})
	r3 := ringOf(t, Member{ID: "a"}, Member{ID: "b", Weight: 2})
	if r1.Version() == r2.Version() {
		t.Error("adding a member kept the ring version")
	}
	if r1.Version() == r3.Version() {
		t.Error("changing a weight kept the ring version")
	}
}

func TestKeyCanonicalizesTenant(t *testing.T) {
	// The empty tenant and the engine's explicit default must route the
	// same, or a task submitted without a tenant and polled with the
	// default one would land on different nodes.
	if Key("", "t1") != Key("default", "t1") {
		t.Errorf("Key(%q) != Key(%q)", Key("", "t1"), Key("default", "t1"))
	}
	if Key("alpha", "t1") == Key("beta", "t1") {
		t.Error("tenant does not separate the key space")
	}
}

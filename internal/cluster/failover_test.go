package cluster_test

// The headline cluster test: three in-process gridenv nodes over one
// shared store, a batch of tasks spread across them by consistent-hash
// ownership, and a kill -9 of one node mid-batch. The kill is simulated
// exactly (store.Fenced cuts the victim's store handle before its HTTP
// server goes away, so not one more byte reaches the journal), the
// survivors' heartbeats declare the victim dead, and journal-replay
// failover moves its partition onto them. Afterwards every task must be
// terminal and tracked by exactly one survivor — nothing lost, nothing
// enacted by two engines.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/httpapi"
	"repro/internal/store"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// testNode is one in-process cluster member.
type testNode struct {
	id    string
	env   *core.Environment
	ts    *httptest.Server
	node  *cluster.Node
	fence *store.Fenced
}

// startCluster builds n nodes over one shared in-memory store, each with
// its own fenced handle, HTTP server, and started heartbeat loop.
func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	backend, err := store.Open("mem:", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = backend.Close() })

	nodes := make([]*testNode, n)
	for i := range nodes {
		fence := store.NewFenced(backend)
		env, err := core.NewEnvironment(core.Options{
			Catalog:        virolab.Catalog(),
			Checkpoint:     true,
			Store:          fence,
			RetainFinished: 10_000,
			// Per-activity latency keeps the batch in flight long enough to
			// kill a node mid-enactment.
			PostProcess: func(*workflow.Activity, []*workflow.DataItem, int) {
				time.Sleep(10 * time.Millisecond)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(env.Close)
		srv := httpapi.New(env)
		srv.Logger = nil
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{id: fmt.Sprintf("n%d", i), env: env, ts: ts, fence: fence}
	}
	peers := make([]cluster.Peer, n)
	for i, tn := range nodes {
		peers[i] = cluster.Peer{ID: tn.id, Addr: tn.ts.URL}
	}
	for _, tn := range nodes {
		node, err := cluster.New(cluster.Config{
			NodeID:            tn.id,
			Peers:             peers,
			Engine:            tn.env.Engine,
			Telemetry:         tn.env.Telemetry,
			HeartbeatInterval: 25 * time.Millisecond,
			MissThreshold:     2,
			PeerTimeout:       time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.env.AttachCluster(node)
		node.Start()
	}
	return nodes
}

// submitTask POSTs one explicit-PDL task through the given node; the
// cluster forwards it to its owner.
func submitTask(t *testing.T, base, id string) {
	t.Helper()
	type dataItem struct {
		Name           string             `json:"name"`
		Classification string             `json:"classification"`
		Props          map[string]float64 `json:"props,omitempty"`
		TextProps      map[string]string  `json:"textProps,omitempty"`
	}
	var items []dataItem
	for _, d := range virolab.InitialData() {
		it := dataItem{Name: d.Name, Classification: d.Classification()}
		for k, v := range d.Props {
			if k == workflow.PropClassification {
				continue
			}
			if num, ok := v.Num(); ok {
				if it.Props == nil {
					it.Props = map[string]float64{}
				}
				it.Props[k] = num
			} else {
				if it.TextProps == nil {
					it.TextProps = map[string]string{}
				}
				it.TextProps[k] = v.Str()
			}
		}
		items = append(items, it)
	}
	body, err := json.Marshal(map[string]any{
		"id":          id,
		"name":        "failover " + id,
		"pdl":         `BEGIN, POD(D1, D7 -> D8), END`,
		"initialData": items,
		"goal":        []string{`G.Classification = "Density Map"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		t.Fatalf("POST %s = %d (%v), want 202", id, resp.StatusCode, out)
	}
}

// TestClusterFailoverNoLossNoDoubleEnactment is the 3-node kill test. Run
// under -race in CI.
func TestClusterFailoverNoLossNoDoubleEnactment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node failover test is slow")
	}
	nodes := startCluster(t, 3)
	const batch = 30
	ids := make([]string, batch)
	for i := range ids {
		ids[i] = fmt.Sprintf("fo-task-%d", i)
		// Everything enters through node 0; ownership spreads the batch.
		submitTask(t, nodes[0].ts.URL, ids[i])
	}

	// Every engine should own a share — otherwise killing one node proves
	// nothing.
	victim := nodes[2]
	owned := 0
	for _, id := range ids {
		if _, err := victim.env.Engine.Task(id); err == nil {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("victim owns no tasks; ring distribution broke")
	}
	t.Logf("victim %s owns %d/%d tasks at kill time", victim.id, owned, batch)

	// Kill -9: the store handle is fenced FIRST, so anything the zombie
	// engine still tries to journal (completions, cancellations) is lost,
	// exactly as if the process had died; then the HTTP server vanishes
	// and heartbeats start missing.
	victim.fence.Fence()
	victim.ts.Close()

	// Survivors declare the victim dead, replay its partition, and finish
	// the batch. Polls ride node 0 and tolerate the convergence window
	// (forwards to the dead node 502 until it is declared dead; replayed
	// tasks 404 until the journal replay lands them).
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("task %s never reached a terminal state after failover", id)
			}
			var view struct {
				Status string `json:"status"`
			}
			resp, err := http.Get(nodes[0].ts.URL + "/api/v1/tasks/" + id)
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&view)
				resp.Body.Close()
				if err == nil && resp.StatusCode == http.StatusOK && view.Status == "succeeded" {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// No double-enactment: exactly one survivor tracks each task. (The
	// zombie victim still has its in-memory records; they are cut off from
	// the store and not counted.)
	survivors := []*testNode{nodes[0], nodes[1]}
	for _, id := range ids {
		tracking := 0
		for _, s := range survivors {
			if st, err := s.env.Engine.Task(id); err == nil {
				tracking++
				if st.Status != engine.StatusCompleted {
					t.Errorf("task %s on %s is %s, want completed", id, s.id, st.Status)
				}
			}
		}
		if tracking != 1 {
			t.Errorf("task %s tracked by %d survivors, want exactly 1", id, tracking)
		}
	}

	// The survivors noticed the death and ran failover; readiness came back
	// once the replay settled.
	sawFailover := false
	for _, s := range survivors {
		st := s.node.Status()
		if st.Failovers > 0 {
			sawFailover = true
		}
		if st.Rebalancing {
			t.Errorf("%s still rebalancing after the batch settled", s.id)
		}
	}
	if !sawFailover {
		t.Error("no survivor recorded a failover")
	}
}

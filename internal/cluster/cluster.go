package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// Peer is one configured cluster member: identity, HTTP base address, and
// ring weight.
type Peer struct {
	ID string `json:"id"`
	// Addr is the peer's HTTP base URL (scheme://host:port, no trailing
	// slash); requests are forwarded to Addr + the original path.
	Addr string `json:"addr"`
	// Weight is the peer's ring weight; non-positive means 1.
	Weight int `json:"weight,omitempty"`
}

// Defaults for Config.
const (
	DefaultHeartbeatInterval = 500 * time.Millisecond
	DefaultMissThreshold     = 3
	DefaultForwardTimeout    = 10 * time.Second
	DefaultPeerTimeout       = 2 * time.Second
)

// Config wires a Node.
type Config struct {
	// NodeID is this process's identity; it must appear in Peers.
	NodeID string
	// Peers is the full static membership, including this node.
	Peers []Peer
	// Engine, when set, is replayed on failover: the dead peer's journals
	// (read from the shared store) re-enter this node's queue via
	// engine.RecoverOwned under the ring's ownership filter.
	Engine *engine.Engine
	// Telemetry receives the cluster.* counters; nil disables.
	Telemetry *telemetry.Registry
	// Logger receives membership transitions and failover reports; nil
	// means silent.
	Logger *slog.Logger
	// HeartbeatInterval is the probe period (default 500ms).
	HeartbeatInterval time.Duration
	// MissThreshold is how many consecutive probe failures declare a peer
	// dead (default 3).
	MissThreshold int
	// PeerTimeout bounds one heartbeat probe and one scatter-gather leg
	// (default 2s).
	PeerTimeout time.Duration
	// ForwardTimeout bounds one forwarded request (default 10s).
	ForwardTimeout time.Duration
}

// peerState is the liveness overlay of one remote peer.
type peerState struct {
	peer     Peer
	alive    bool
	misses   int
	lastSeen time.Time
	lastErr  string
}

// Node is this process's view of the cluster: the static ring plus the
// live peer health overlay. Create with New, Start the heartbeat loop,
// Stop on shutdown.
type Node struct {
	cfg  Config
	self Peer
	ring *Ring

	probe   *http.Client // heartbeats and scatter-gather
	forward *http.Client // forwarded user requests

	mu    sync.Mutex
	peers map[string]*peerState // remote peers only

	rebalancing atomic.Int32
	stop        chan struct{}
	stopped     sync.Once
	wg          sync.WaitGroup

	mForwarded, mForwardErrors   *telemetry.Counter
	mHeartbeatMisses, mFailovers *telemetry.Counter
}

// New validates the membership and builds the node. Peer liveness starts
// optimistic (everyone alive) so forwarding works before the first probe
// round; Start launches the heartbeat loop that maintains it.
func New(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID is required")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = DefaultMissThreshold
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.NopLogger()
	}
	members := make([]Member, 0, len(cfg.Peers))
	var self *Peer
	for i := range cfg.Peers {
		p := cfg.Peers[i]
		members = append(members, Member{ID: p.ID, Weight: p.Weight})
		if p.ID == cfg.NodeID {
			self = &cfg.Peers[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: node %q is not in the peer list", cfg.NodeID)
	}
	ring, err := NewRing(members)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		self:    *self,
		ring:    ring,
		probe:   &http.Client{Timeout: cfg.PeerTimeout},
		forward: &http.Client{Timeout: cfg.ForwardTimeout},
		peers:   make(map[string]*peerState),
		stop:    make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p.ID == cfg.NodeID {
			continue
		}
		if p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer %q has no address", p.ID)
		}
		n.peers[p.ID] = &peerState{peer: p, alive: true}
	}
	tel := cfg.Telemetry
	n.mForwarded = tel.Counter("cluster.forwarded")
	n.mForwardErrors = tel.Counter("cluster.forward_errors")
	n.mHeartbeatMisses = tel.Counter("cluster.heartbeat_misses")
	n.mFailovers = tel.Counter("cluster.failovers")
	return n, nil
}

// Self returns this node's own peer entry.
func (n *Node) Self() Peer { return n.self }

// Ring returns the static ownership ring.
func (n *Node) Ring() *Ring { return n.ring }

// ForwardClient is the HTTP client forwarded requests ride on.
func (n *Node) ForwardClient() *http.Client { return n.forward }

// Start launches the heartbeat loop. Idempotent per node (a second Start
// adds nothing); Stop ends it.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(n.cfg.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				n.probeAll()
			}
		}
	}()
}

// Stop ends the heartbeat loop and waits for in-flight failovers spawned by
// it to settle. Safe to call more than once, or without Start.
func (n *Node) Stop() {
	n.stopped.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// probeAll runs one heartbeat round over every remote peer.
func (n *Node) probeAll() {
	n.mu.Lock()
	targets := make([]*peerState, 0, len(n.peers))
	for _, ps := range n.peers {
		targets = append(targets, ps)
	}
	n.mu.Unlock()
	for _, ps := range targets {
		n.probeOne(ps)
	}
}

// probeOne probes one peer's liveness endpoint and folds the outcome into
// the overlay; a peer crossing the miss threshold triggers failover.
func (n *Node) probeOne(ps *peerState) {
	ok, errText := n.ping(ps.peer)
	n.mu.Lock()
	if ok {
		wasDead := !ps.alive
		ps.alive = true
		ps.misses = 0
		ps.lastSeen = time.Now()
		ps.lastErr = ""
		n.mu.Unlock()
		if wasDead {
			n.cfg.Logger.Info("peer rejoined", slog.String("peer", ps.peer.ID))
		}
		return
	}
	ps.misses++
	ps.lastErr = errText
	died := ps.alive && ps.misses >= n.cfg.MissThreshold
	if died {
		ps.alive = false
	}
	n.mu.Unlock()
	n.mHeartbeatMisses.Inc()
	if died {
		n.cfg.Logger.Warn("peer declared dead",
			slog.String("peer", ps.peer.ID), slog.Int("misses", ps.misses),
			slog.String("lastError", errText))
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.Failover(ps.peer.ID)
		}()
	}
}

// ping probes one peer's /healthz.
func (n *Node) ping(p Peer) (bool, string) {
	resp, err := n.probe.Get(strings.TrimSuffix(p.Addr, "/") + "/healthz")
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("healthz answered %d", resp.StatusCode)
	}
	return true, ""
}

// Alive reports whether the member is currently considered alive (this
// node itself always is).
func (n *Node) Alive(id string) bool {
	if id == n.cfg.NodeID {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.peers[id]
	return ok && ps.alive
}

// Owner resolves the live owner of a resource: the key's primary ring
// owner, or — while that member is dead — the first alive successor. The
// bool reports whether this node is the owner (handle locally).
func (n *Node) Owner(tenant, id string) (Peer, bool) {
	for _, member := range n.ring.Successors(Key(tenant, id)) {
		if member == n.cfg.NodeID {
			return n.self, true
		}
		n.mu.Lock()
		ps, ok := n.peers[member]
		alive := ok && ps.alive
		peer := Peer{}
		if ok {
			peer = ps.peer
		}
		n.mu.Unlock()
		if alive {
			return peer, false
		}
	}
	// Every configured member is dead but this one is still serving:
	// claim the key rather than fail the request.
	return n.self, true
}

// Failover claims the dead peer's share of the key space: it replays every
// journaled task whose live owner is now this node (engine.RecoverOwned
// skips tasks the engine already tracks, so only the dead peer's partition
// actually moves). While the replay runs the node reports itself
// rebalancing and /readyz answers 503, so load balancers hold traffic
// until the partition is consistent. Also invoked by operational tooling
// to force a partition sweep.
func (n *Node) Failover(deadID string) {
	n.mFailovers.Inc()
	if n.cfg.Engine == nil {
		return
	}
	leave := n.EnterRebalance()
	defer leave()
	report, err := n.cfg.Engine.RecoverOwned(func(tenant, taskID string) bool {
		_, mine := n.Owner(tenant, taskID)
		return mine
	})
	if err != nil {
		n.cfg.Logger.Error("failover replay failed",
			slog.String("deadPeer", deadID), slog.String("error", err.Error()))
		return
	}
	n.cfg.Logger.Info("failover replay finished",
		slog.String("deadPeer", deadID),
		slog.Int("requeued", len(report.Requeued)),
		slog.Int("resumed", len(report.Resumed)),
		slog.Int("restarted", len(report.Restarted)),
		slog.Int("terminal", report.Terminal))
}

// EnterRebalance marks the node as rebalancing until the returned leave
// function runs. Failover wraps its replay in it; manual partition moves
// can use it to drain a node behind /readyz first.
func (n *Node) EnterRebalance() (leave func()) {
	n.rebalancing.Add(1)
	var once sync.Once
	return func() { once.Do(func() { n.rebalancing.Add(-1) }) }
}

// Rebalancing reports whether a failed-over partition is still replaying;
// /readyz answers 503 cluster_rebalancing while it is.
func (n *Node) Rebalancing() bool { return n.rebalancing.Load() > 0 }

// PeerHealth is one row of the /api/v1/cluster membership view.
type PeerHealth struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Weight int    `json:"weight"`
	Self   bool   `json:"self,omitempty"`
	Alive  bool   `json:"alive"`
	// Misses is the current consecutive probe-failure count (0 for self).
	Misses   int       `json:"misses,omitempty"`
	LastSeen time.Time `json:"lastSeen,omitzero"`
	LastErr  string    `json:"lastError,omitempty"`
}

// Status is the GET /api/v1/cluster body: identity, ring version, and the
// per-member health overlay, plus this node's forwarding counters.
type Status struct {
	NodeID      string       `json:"nodeId"`
	RingVersion string       `json:"ringVersion"`
	Rebalancing bool         `json:"rebalancing"`
	Members     []PeerHealth `json:"members"`
	// Forwarded / ForwardErrors / HeartbeatMisses / Failovers are this
	// node's cluster.* counters.
	Forwarded       int64 `json:"forwarded"`
	ForwardErrors   int64 `json:"forwardErrors"`
	HeartbeatMisses int64 `json:"heartbeatMisses"`
	Failovers       int64 `json:"failovers"`
}

// Status snapshots the node's cluster view.
func (n *Node) Status() Status {
	st := Status{
		NodeID:      n.cfg.NodeID,
		RingVersion: n.ring.Version(),
		Rebalancing: n.Rebalancing(),
		Forwarded:   n.mForwarded.Value(),
	}
	st.ForwardErrors = n.mForwardErrors.Value()
	st.HeartbeatMisses = n.mHeartbeatMisses.Value()
	st.Failovers = n.mFailovers.Value()
	w := n.self.Weight
	if w <= 0 {
		w = 1
	}
	st.Members = append(st.Members, PeerHealth{
		ID: n.self.ID, Addr: n.self.Addr, Weight: w, Self: true, Alive: true,
	})
	n.mu.Lock()
	for _, ps := range n.peers {
		w := ps.peer.Weight
		if w <= 0 {
			w = 1
		}
		st.Members = append(st.Members, PeerHealth{
			ID: ps.peer.ID, Addr: ps.peer.Addr, Weight: w,
			Alive: ps.alive, Misses: ps.misses,
			LastSeen: ps.lastSeen, LastErr: ps.lastErr,
		})
	}
	n.mu.Unlock()
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].ID < st.Members[j].ID })
	return st
}

// AlivePeers returns the remote peers currently considered alive, sorted
// by ID — the scatter-gather fan-out set.
func (n *Node) AlivePeers() []Peer {
	n.mu.Lock()
	out := make([]Peer, 0, len(n.peers))
	for _, ps := range n.peers {
		if ps.alive {
			out = append(out, ps.peer)
		}
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PeerTimeout is the per-peer scatter-gather budget.
func (n *Node) PeerTimeout() time.Duration { return n.cfg.PeerTimeout }

// NoteForward records one forwarded request (and, when err is non-nil, one
// forwarding failure). The HTTP layer calls it.
func (n *Node) NoteForward(err error) {
	n.mForwarded.Inc()
	if err != nil {
		n.mForwardErrors.Inc()
	}
}

// ParsePeers parses the gridenv -peers flag: a comma-separated list of
// id=addr or id=addr=weight entries, e.g.
// "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080=2".
func ParsePeers(s string) ([]Peer, error) {
	var out []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, "=", 3)
		if len(fields) < 2 || fields[0] == "" || fields[1] == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=addr or id=addr=weight)", part)
		}
		p := Peer{ID: fields[0], Addr: strings.TrimSuffix(fields[1], "/")}
		if len(fields) == 3 {
			var w int
			if _, err := fmt.Sscanf(fields[2], "%d", &w); err != nil || w <= 0 {
				return nil, fmt.Errorf("cluster: bad weight in peer %q", part)
			}
			p.Weight = w
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return out, nil
}

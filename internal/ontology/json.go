package ontology

import (
	"encoding/json"
	"fmt"
	"sort"
)

// jsonKB is the interchange form.
type jsonKB struct {
	Classes   []jsonClass    `json:"classes"`
	Instances []jsonInstance `json:"instances,omitempty"`
}

type jsonClass struct {
	Name   string     `json:"name"`
	Parent string     `json:"parent,omitempty"`
	Doc    string     `json:"doc,omitempty"`
	Slots  []jsonSlot `json:"slots"`
}

type jsonSlot struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	Required bool     `json:"required,omitempty"`
	Allowed  []string `json:"allowed,omitempty"`
	RefClass string   `json:"refClass,omitempty"`
}

type jsonInstance struct {
	ID     string               `json:"id"`
	Class  string               `json:"class"`
	Values map[string]jsonValue `json:"values"`
}

type jsonValue struct {
	Kind string   `json:"kind"`
	S    string   `json:"s,omitempty"`
	N    float64  `json:"n,omitempty"`
	B    bool     `json:"b,omitempty"`
	L    []string `json:"l,omitempty"`
}

func kindName(k ValueKind) string { return k.String() }

func parseKind(s string) (ValueKind, error) {
	for _, k := range []ValueKind{KindString, KindNumber, KindBool, KindRef, KindList} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("ontology: unknown value kind %q", s)
}

// MarshalJSON serializes the knowledge base (classes in definition order,
// instances sorted by ID).
func (kb *KB) MarshalJSON() ([]byte, error) {
	out := jsonKB{}
	for _, c := range kb.Classes() {
		jc := jsonClass{Name: c.Name, Parent: c.Parent, Doc: c.Doc}
		for _, s := range c.Slots {
			jc.Slots = append(jc.Slots, jsonSlot{
				Name: s.Name, Kind: kindName(s.Kind), Required: s.Required,
				Allowed: s.Allowed, RefClass: s.RefClass,
			})
		}
		out.Classes = append(out.Classes, jc)
	}
	for _, in := range kb.Instances() {
		ji := jsonInstance{ID: in.ID, Class: in.Class, Values: map[string]jsonValue{}}
		names := make([]string, 0, len(in.Values))
		for n := range in.Values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := in.Values[n]
			ji.Values[n] = jsonValue{Kind: kindName(v.Kind), S: v.S, N: v.N, B: v.B, L: v.L}
		}
		out.Instances = append(out.Instances, ji)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON loads classes and instances, validating as it goes.
func (kb *KB) UnmarshalJSON(data []byte) error {
	var in jsonKB
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if kb.classes == nil {
		kb.classes = make(map[string]*Class)
	}
	if kb.instances == nil {
		kb.instances = make(map[string]*Instance)
	}
	for _, jc := range in.Classes {
		c := &Class{Name: jc.Name, Parent: jc.Parent, Doc: jc.Doc}
		for _, js := range jc.Slots {
			k, err := parseKind(js.Kind)
			if err != nil {
				return err
			}
			c.Slots = append(c.Slots, Slot{
				Name: js.Name, Kind: k, Required: js.Required,
				Allowed: js.Allowed, RefClass: js.RefClass,
			})
		}
		if err := kb.AddClass(c); err != nil {
			return err
		}
	}
	for _, ji := range in.Instances {
		inst := NewInstance(ji.ID, ji.Class)
		for n, jv := range ji.Values {
			k, err := parseKind(jv.Kind)
			if err != nil {
				return err
			}
			inst.Values[n] = Value{Kind: k, S: jv.S, N: jv.N, B: jv.B, L: jv.L}
		}
		if err := kb.AddInstance(inst); err != nil {
			return err
		}
	}
	return nil
}

// Decode builds a KB from JSON produced by MarshalJSON.
func Decode(data []byte) (*KB, error) {
	kb := NewKB()
	if err := kb.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return kb, nil
}

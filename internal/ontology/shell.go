package ontology

// Class names of the grid ontology shell (Figure 12).
const (
	ClassTask               = "Task"
	ClassProcessDescription = "ProcessDescription"
	ClassCaseDescription    = "CaseDescription"
	ClassActivity           = "Activity"
	ClassTransition         = "Transition"
	ClassData               = "Data"
	ClassService            = "Service"
	ClassResource           = "Resource"
	ClassHardware           = "Hardware"
	ClassSoftware           = "Software"
)

// GridShell builds the ontology shell of Figure 12: the ten classes (Task,
// ProcessDescription, CaseDescription, Activity, Transition, Data, Service,
// Resource, Hardware, Software) with the slots shown in the figure.
func GridShell() *KB {
	kb := NewKB()

	kb.MustAddClass(&Class{
		Name: ClassHardware,
		Doc:  "Hardware characteristics of a resource.",
		Slots: []Slot{
			{Name: "Type", Kind: KindString},
			{Name: "Speed", Kind: KindNumber},
			{Name: "Size", Kind: KindNumber},
			{Name: "Bandwidth", Kind: KindNumber},
			{Name: "Latency", Kind: KindNumber},
			{Name: "Manufacturer", Kind: KindString},
			{Name: "Model", Kind: KindString},
			{Name: "Comment", Kind: KindString},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassSoftware,
		Doc:  "A software package installed on a resource.",
		Slots: []Slot{
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "Type", Kind: KindString},
			{Name: "Manufacturer", Kind: KindString},
			{Name: "Version", Kind: KindString},
			{Name: "Distribution", Kind: KindString},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassResource,
		Doc:  "A computing resource (node, cluster) available on the grid.",
		Slots: []Slot{
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "Type", Kind: KindString},
			{Name: "Location", Kind: KindString},
			{Name: "NumberOfNodes", Kind: KindNumber},
			{Name: "AdministrationDomain", Kind: KindString},
			{Name: "Hardware", Kind: KindRef, RefClass: ClassHardware},
			{Name: "Software", Kind: KindList, RefClass: ClassSoftware},
			{Name: "AccessSet", Kind: KindList},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassData,
		Doc:  "A data item known to the environment, described by metadata.",
		Slots: []Slot{
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "Location", Kind: KindString},
			{Name: "TimeStamp", Kind: KindString},
			{Name: "Value", Kind: KindNumber},
			{Name: "Category", Kind: KindString},
			{Name: "Format", Kind: KindString},
			{Name: "Owner", Kind: KindString},
			{Name: "Creator", Kind: KindString},
			{Name: "Size", Kind: KindNumber},
			{Name: "CreationDate", Kind: KindString},
			{Name: "Description", Kind: KindString},
			{Name: "LatestModifiedDate", Kind: KindString},
			{Name: "Classification", Kind: KindString},
			{Name: "Type", Kind: KindString},
			{Name: "AccessRight", Kind: KindString},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassService,
		Doc:  "An end-user computing service registered with the environment.",
		Slots: []Slot{
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "Type", Kind: KindString},
			{Name: "TimeStamp", Kind: KindString},
			{Name: "UserSet", Kind: KindList},
			{Name: "Location", Kind: KindString},
			{Name: "CreationDate", Kind: KindString},
			{Name: "Version", Kind: KindString},
			{Name: "Description", Kind: KindString},
			{Name: "CommandHistory", Kind: KindList},
			{Name: "InputCondition", Kind: KindList},
			{Name: "OutputCondition", Kind: KindList},
			{Name: "InputDataSet", Kind: KindList},
			{Name: "OutputDataSet", Kind: KindList},
			{Name: "InputDataOrder", Kind: KindList},
			{Name: "OutputDataOrder", Kind: KindList},
			{Name: "Cost", Kind: KindNumber},
			{Name: "Resource", Kind: KindRef, RefClass: ClassResource},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassTransition,
		Doc:  "A directed edge between two activities of a process description.",
		Slots: []Slot{
			{Name: "ID", Kind: KindString, Required: true},
			{Name: "SourceActivity", Kind: KindString, Required: true},
			{Name: "DestinationActivity", Kind: KindString, Required: true},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassActivity,
		Doc:  "One activity of a process description (end-user or flow control).",
		Slots: []Slot{
			{Name: "ID", Kind: KindString, Required: true},
			{Name: "Name", Kind: KindString},
			{Name: "TaskID", Kind: KindString},
			{Name: "Owner", Kind: KindString},
			{Name: "ServiceName", Kind: KindString},
			{Name: "Type", Kind: KindString, Required: true, Allowed: []string{
				"Begin", "End", "End-user", "Choice", "Fork", "Join", "Merge"}},
			{Name: "ExecutionLocation", Kind: KindString},
			{Name: "InputDataSet", Kind: KindList},
			{Name: "OutputDataSet", Kind: KindList},
			{Name: "InputDataOrder", Kind: KindList},
			{Name: "OutputDataOrder", Kind: KindList},
			{Name: "Status", Kind: KindString},
			{Name: "Constraint", Kind: KindString},
			{Name: "WorkDirectory", Kind: KindString},
			{Name: "DirectPredecessorSet", Kind: KindList},
			{Name: "DirectSuccessorSet", Kind: KindList},
			{Name: "RetryCount", Kind: KindNumber},
			{Name: "DispatchedBy", Kind: KindString},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassProcessDescription,
		Doc:  "The formal description of a complex problem: activities plus transitions.",
		Slots: []Slot{
			{Name: "ID", Kind: KindString},
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "Location", Kind: KindString},
			{Name: "ActivitySet", Kind: KindList, RefClass: ClassActivity},
			{Name: "TransitionSet", Kind: KindList, RefClass: ClassTransition},
			{Name: "Creator", Kind: KindString},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassCaseDescription,
		Doc:  "Bindings for one instance of a process: initial data, results, goal.",
		Slots: []Slot{
			{Name: "ID", Kind: KindString},
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "InitialDataSet", Kind: KindList, RefClass: ClassData},
			{Name: "ResultSet", Kind: KindList, RefClass: ClassData},
			{Name: "Constraint", Kind: KindString},
			{Name: "GoalCondition", Kind: KindString},
		},
	})

	kb.MustAddClass(&Class{
		Name: ClassTask,
		Doc:  "A submitted computing task: process description plus case description.",
		Slots: []Slot{
			{Name: "ID", Kind: KindString, Required: true},
			{Name: "Name", Kind: KindString},
			{Name: "Owner", Kind: KindString},
			{Name: "SubmitLocation", Kind: KindString},
			{Name: "Status", Kind: KindString, Allowed: []string{
				"Submitted", "Planning", "Running", "Suspended", "Completed", "Failed"}},
			{Name: "DataSet", Kind: KindList, RefClass: ClassData},
			{Name: "ResultSet", Kind: KindList, RefClass: ClassData},
			{Name: "CaseDescription", Kind: KindRef, RefClass: ClassCaseDescription},
			{Name: "ProcessDescription", Kind: KindRef, RefClass: ClassProcessDescription},
			{Name: "NeedPlanning", Kind: KindBool},
		},
	})

	return kb
}

// Package ontology implements the frame-based metainformation store the
// paper builds with Protégé (Section 6, Figures 12-13): classes with typed
// slots, single inheritance, and instances validated against their class.
// The ontology service distributes "ontology shells" (classes and slots
// without instances) as well as populated ontologies; this package models
// both, with JSON as the interchange form.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// ValueKind discriminates slot value types.
type ValueKind int

// Slot value kinds. KindRef holds the ID of another instance; KindList holds
// an ordered list of strings or instance IDs (the paper's "Set" and "Order"
// slots).
const (
	KindString ValueKind = iota
	KindNumber
	KindBool
	KindRef
	KindList
)

func (k ValueKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	case KindRef:
		return "ref"
	case KindList:
		return "list"
	}
	return fmt.Sprintf("ValueKind(%d)", int(k))
}

// Value is a slot value.
type Value struct {
	Kind ValueKind
	S    string   // KindString payload, or KindRef instance ID
	N    float64  // KindNumber payload
	B    bool     // KindBool payload
	L    []string // KindList payload
}

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Num returns a numeric Value.
func Num(n float64) Value { return Value{Kind: KindNumber, N: n} }

// Boolean returns a boolean Value.
func Boolean(b bool) Value { return Value{Kind: KindBool, B: b} }

// Ref returns a reference Value pointing at the instance with the given ID.
func Ref(id string) Value { return Value{Kind: KindRef, S: id} }

// List returns a list Value.
func List(items ...string) Value { return Value{Kind: KindList, L: items} }

// Text renders the value for display.
func (v Value) Text() string {
	switch v.Kind {
	case KindString, KindRef:
		return v.S
	case KindNumber:
		return fmt.Sprintf("%g", v.N)
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	case KindList:
		return "{" + strings.Join(v.L, ", ") + "}"
	}
	return ""
}

// Equal reports value equality.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindString, KindRef:
		return v.S == w.S
	case KindNumber:
		return v.N == w.N
	case KindBool:
		return v.B == w.B
	case KindList:
		if len(v.L) != len(w.L) {
			return false
		}
		for i := range v.L {
			if v.L[i] != w.L[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Slot describes one property of a class: its value type and facets.
type Slot struct {
	Name     string
	Kind     ValueKind
	Required bool

	// Allowed restricts string slots to an enumerated set (a Protégé
	// "allowed values" facet). Empty means unrestricted.
	Allowed []string

	// RefClass names the class a KindRef slot (or the elements of a
	// KindList slot holding instance IDs) must point to. Empty means
	// untyped references / plain string lists.
	RefClass string
}

// Class is a frame: a named set of slots, optionally inheriting from a
// parent class.
type Class struct {
	Name   string
	Parent string // empty for root classes
	Doc    string
	Slots  []Slot
}

// Slot returns the class's own slot with the given name, or nil.
func (c *Class) Slot(name string) *Slot {
	for i := range c.Slots {
		if c.Slots[i].Name == name {
			return &c.Slots[i]
		}
	}
	return nil
}

// Instance is a populated frame.
type Instance struct {
	ID     string
	Class  string
	Values map[string]Value
}

// NewInstance builds an empty instance of the given class.
func NewInstance(id, class string) *Instance {
	return &Instance{ID: id, Class: class, Values: make(map[string]Value)}
}

// Set assigns a slot value and returns the instance for chaining.
func (in *Instance) Set(slot string, v Value) *Instance {
	if in.Values == nil {
		in.Values = make(map[string]Value)
	}
	in.Values[slot] = v
	return in
}

// Get returns the slot value and whether it is set.
func (in *Instance) Get(slot string) (Value, bool) {
	v, ok := in.Values[slot]
	return v, ok
}

// Text returns the slot's display text, or "" when unset.
func (in *Instance) Text(slot string) string {
	if v, ok := in.Values[slot]; ok {
		return v.Text()
	}
	return ""
}

// KB is a knowledge base: a set of classes (the shell) plus instances.
type KB struct {
	classes   map[string]*Class
	instances map[string]*Instance
	order     []string // class insertion order, for deterministic dumps
}

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{
		classes:   make(map[string]*Class),
		instances: make(map[string]*Instance),
	}
}

// AddClass registers a class. The parent, if named, must already exist;
// redefinition is an error.
func (kb *KB) AddClass(c *Class) error {
	if c.Name == "" {
		return fmt.Errorf("ontology: class with empty name")
	}
	if _, dup := kb.classes[c.Name]; dup {
		return fmt.Errorf("ontology: class %q already defined", c.Name)
	}
	if c.Parent != "" {
		if _, ok := kb.classes[c.Parent]; !ok {
			return fmt.Errorf("ontology: class %q has unknown parent %q", c.Name, c.Parent)
		}
	}
	seen := map[string]bool{}
	for _, s := range c.Slots {
		if s.Name == "" {
			return fmt.Errorf("ontology: class %q has a slot with empty name", c.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("ontology: class %q redeclares slot %q", c.Name, s.Name)
		}
		seen[s.Name] = true
	}
	kb.classes[c.Name] = c
	kb.order = append(kb.order, c.Name)
	return nil
}

// MustAddClass is AddClass that panics on error, for building shells.
func (kb *KB) MustAddClass(c *Class) {
	if err := kb.AddClass(c); err != nil {
		panic(err)
	}
}

// Class returns the named class, or nil.
func (kb *KB) Class(name string) *Class { return kb.classes[name] }

// Classes returns the classes in definition order.
func (kb *KB) Classes() []*Class {
	out := make([]*Class, 0, len(kb.order))
	for _, n := range kb.order {
		out = append(out, kb.classes[n])
	}
	return out
}

// IsSubclass reports whether class sub equals or transitively inherits from
// super.
func (kb *KB) IsSubclass(sub, super string) bool {
	for cur := sub; cur != ""; {
		if cur == super {
			return true
		}
		c := kb.classes[cur]
		if c == nil {
			return false
		}
		cur = c.Parent
	}
	return false
}

// EffectiveSlots returns the slots of the class including inherited ones
// (parent slots first); a slot redefined in a subclass overrides the
// inherited definition.
func (kb *KB) EffectiveSlots(class string) []Slot {
	var chain []*Class
	for cur := class; cur != ""; {
		c := kb.classes[cur]
		if c == nil {
			break
		}
		chain = append(chain, c)
		cur = c.Parent
	}
	var out []Slot
	seen := map[string]int{}
	for i := len(chain) - 1; i >= 0; i-- {
		for _, s := range chain[i].Slots {
			if at, ok := seen[s.Name]; ok {
				out[at] = s
				continue
			}
			seen[s.Name] = len(out)
			out = append(out, s)
		}
	}
	return out
}

// effectiveSlot returns the effective slot named name for class, or nil.
func (kb *KB) effectiveSlot(class, name string) *Slot {
	slots := kb.EffectiveSlots(class)
	for i := range slots {
		if slots[i].Name == name {
			return &slots[i]
		}
	}
	return nil
}

// AddInstance validates and stores an instance. Reference targets are NOT
// required to exist yet (ontologies are populated incrementally); call
// ValidateRefs once the KB is complete.
func (kb *KB) AddInstance(in *Instance) error {
	if in.ID == "" {
		return fmt.Errorf("ontology: instance with empty ID")
	}
	if _, dup := kb.instances[in.ID]; dup {
		return fmt.Errorf("ontology: instance %q already defined", in.ID)
	}
	if err := kb.checkInstance(in); err != nil {
		return err
	}
	kb.instances[in.ID] = in
	return nil
}

// MustAddInstance is AddInstance that panics on error.
func (kb *KB) MustAddInstance(in *Instance) {
	if err := kb.AddInstance(in); err != nil {
		panic(err)
	}
}

// checkInstance validates slots against the class definition.
func (kb *KB) checkInstance(in *Instance) error {
	cls := kb.classes[in.Class]
	if cls == nil {
		return fmt.Errorf("ontology: instance %q of unknown class %q", in.ID, in.Class)
	}
	slots := kb.EffectiveSlots(in.Class)
	byName := make(map[string]*Slot, len(slots))
	for i := range slots {
		byName[slots[i].Name] = &slots[i]
	}
	names := make([]string, 0, len(in.Values))
	for n := range in.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := in.Values[n]
		s := byName[n]
		if s == nil {
			return fmt.Errorf("ontology: instance %q sets unknown slot %q of class %q", in.ID, n, in.Class)
		}
		if v.Kind != s.Kind {
			return fmt.Errorf("ontology: instance %q slot %q: value kind %v, want %v", in.ID, n, v.Kind, s.Kind)
		}
		if s.Kind == KindString && len(s.Allowed) > 0 {
			ok := false
			for _, a := range s.Allowed {
				if v.S == a {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("ontology: instance %q slot %q: %q not in allowed values %v", in.ID, n, v.S, s.Allowed)
			}
		}
	}
	for _, s := range slots {
		if s.Required {
			if _, ok := in.Values[s.Name]; !ok {
				return fmt.Errorf("ontology: instance %q missing required slot %q", in.ID, s.Name)
			}
		}
	}
	return nil
}

// Instance returns the instance with the given ID, or nil.
func (kb *KB) Instance(id string) *Instance { return kb.instances[id] }

// Instances returns every instance sorted by ID.
func (kb *KB) Instances() []*Instance {
	ids := make([]string, 0, len(kb.instances))
	for id := range kb.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Instance, len(ids))
	for i, id := range ids {
		out[i] = kb.instances[id]
	}
	return out
}

// InstancesOf returns the instances whose class is (a subclass of) class,
// sorted by ID.
func (kb *KB) InstancesOf(class string) []*Instance {
	var out []*Instance
	for _, in := range kb.Instances() {
		if kb.IsSubclass(in.Class, class) {
			out = append(out, in)
		}
	}
	return out
}

// Query returns the instances of class (or its subclasses) for which pred
// returns true, sorted by ID.
func (kb *KB) Query(class string, pred func(*Instance) bool) []*Instance {
	var out []*Instance
	for _, in := range kb.InstancesOf(class) {
		if pred == nil || pred(in) {
			out = append(out, in)
		}
	}
	return out
}

// ValidateRefs checks that every KindRef value and every element of a
// KindList slot with a RefClass facet points at an existing instance of the
// right class. It returns all problems found.
func (kb *KB) ValidateRefs() []error {
	var errs []error
	for _, in := range kb.Instances() {
		slots := kb.EffectiveSlots(in.Class)
		for _, s := range slots {
			v, ok := in.Values[s.Name]
			if !ok {
				continue
			}
			check := func(id string) {
				target := kb.instances[id]
				if target == nil {
					errs = append(errs, fmt.Errorf("ontology: %s.%s references missing instance %q", in.ID, s.Name, id))
					return
				}
				if s.RefClass != "" && !kb.IsSubclass(target.Class, s.RefClass) {
					errs = append(errs, fmt.Errorf("ontology: %s.%s references %q of class %q, want %q",
						in.ID, s.Name, id, target.Class, s.RefClass))
				}
			}
			switch {
			case v.Kind == KindRef:
				check(v.S)
			case v.Kind == KindList && s.RefClass != "":
				for _, id := range v.L {
					check(id)
				}
			}
		}
	}
	return errs
}

// Shell returns a copy of the KB containing only the class definitions (an
// "ontology shell" in the paper's terms).
func (kb *KB) Shell() *KB {
	out := NewKB()
	for _, c := range kb.Classes() {
		cc := *c
		cc.Slots = append([]Slot(nil), c.Slots...)
		out.MustAddClass(&cc)
	}
	return out
}

// Stats returns the number of classes and instances.
func (kb *KB) Stats() (classes, instances int) {
	return len(kb.classes), len(kb.instances)
}

package ontology

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomKB builds a grid-shell KB populated with random Data and Hardware
// instances.
func randomKB(rng *rand.Rand) *KB {
	kb := GridShell()
	classes := []string{"2D Image", "3D Model", "Orientation File", "Text"}
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		in := NewInstance(fmt.Sprintf("d%03d", i), ClassData).
			Set("Name", Str(fmt.Sprintf("d%03d", i))).
			Set("Classification", Str(classes[rng.Intn(len(classes))]))
		if rng.Intn(2) == 0 {
			in.Set("Size", Num(float64(rng.Intn(1<<20))))
		}
		kb.MustAddInstance(in)
	}
	m := rng.Intn(5)
	for i := 0; i < m; i++ {
		kb.MustAddInstance(NewInstance(fmt.Sprintf("hw%02d", i), ClassHardware).
			Set("Speed", Num(1+rng.Float64()*3)).
			Set("Type", Str("CPU")))
	}
	return kb
}

// Property: JSON round trip preserves the instance census and every value.
func TestQuickKBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		kb := randomKB(local)
		data, err := kb.MarshalJSON()
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		c1, i1 := kb.Stats()
		c2, i2 := back.Stats()
		if c1 != c2 || i1 != i2 {
			return false
		}
		for _, in := range kb.Instances() {
			other := back.Instance(in.ID)
			if other == nil || other.Class != in.Class || len(other.Values) != len(in.Values) {
				return false
			}
			for slot, v := range in.Values {
				w, ok := other.Get(slot)
				if !ok || !v.Equal(w) {
					return false
				}
			}
		}
		// Second marshal is byte-identical.
		data2, err := back.MarshalJSON()
		return err == nil && string(data) == string(data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Query(class, pred) returns exactly the instances of the class
// satisfying pred, sorted by ID.
func TestQuickQuerySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		kb := randomKB(local)
		pred := func(in *Instance) bool { return in.Text("Classification") == "3D Model" }
		got := kb.Query(ClassData, pred)
		count := 0
		for _, in := range kb.InstancesOf(ClassData) {
			if pred(in) {
				count++
			}
		}
		if len(got) != count {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].ID >= got[i].ID {
				return false
			}
		}
		for _, in := range got {
			if !pred(in) || in.Class != ClassData {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Shell() strips every instance and never shares slot storage.
func TestQuickShellPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		kb := randomKB(local)
		shell := kb.Shell()
		cs, is := shell.Stats()
		co, _ := kb.Stats()
		if cs != co || is != 0 {
			return false
		}
		for _, c := range shell.Classes() {
			if len(c.Slots) > 0 {
				c.Slots[0].Name = "MUTATED"
			}
		}
		for _, c := range kb.Classes() {
			if len(c.Slots) > 0 && c.Slots[0].Name == "MUTATED" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

package ontology

import (
	"strings"
	"testing"
)

func animalKB(t *testing.T) *KB {
	t.Helper()
	kb := NewKB()
	kb.MustAddClass(&Class{
		Name: "Animal",
		Slots: []Slot{
			{Name: "Name", Kind: KindString, Required: true},
			{Name: "Legs", Kind: KindNumber},
		},
	})
	kb.MustAddClass(&Class{
		Name:   "Dog",
		Parent: "Animal",
		Slots: []Slot{
			{Name: "Breed", Kind: KindString, Allowed: []string{"lab", "pug"}},
			{Name: "Legs", Kind: KindNumber, Required: true}, // override: required
		},
	})
	return kb
}

func TestClassRegistration(t *testing.T) {
	kb := animalKB(t)
	if kb.Class("Animal") == nil || kb.Class("Dog") == nil {
		t.Fatal("classes missing")
	}
	if kb.Class("Cat") != nil {
		t.Fatal("phantom class")
	}
	if err := kb.AddClass(&Class{Name: "Animal"}); err == nil {
		t.Error("duplicate class accepted")
	}
	if err := kb.AddClass(&Class{Name: "Cat", Parent: "Feline"}); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := kb.AddClass(&Class{Name: ""}); err == nil {
		t.Error("empty class name accepted")
	}
	if err := kb.AddClass(&Class{Name: "X", Slots: []Slot{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Error("duplicate slot accepted")
	}
	if err := kb.AddClass(&Class{Name: "Y", Slots: []Slot{{Name: ""}}}); err == nil {
		t.Error("empty slot name accepted")
	}
}

func TestInheritance(t *testing.T) {
	kb := animalKB(t)
	if !kb.IsSubclass("Dog", "Animal") || !kb.IsSubclass("Dog", "Dog") {
		t.Error("IsSubclass false negatives")
	}
	if kb.IsSubclass("Animal", "Dog") || kb.IsSubclass("Nope", "Animal") {
		t.Error("IsSubclass false positives")
	}
	slots := kb.EffectiveSlots("Dog")
	names := map[string]Slot{}
	for _, s := range slots {
		names[s.Name] = s
	}
	if len(slots) != 3 {
		t.Fatalf("effective slots = %d (%v), want 3", len(slots), names)
	}
	if !names["Legs"].Required {
		t.Error("subclass override of Legs.Required lost")
	}
	if _, ok := names["Breed"]; !ok {
		t.Error("own slot missing")
	}
}

func TestInstanceValidation(t *testing.T) {
	kb := animalKB(t)
	good := NewInstance("rex", "Dog").
		Set("Name", Str("Rex")).
		Set("Legs", Num(4)).
		Set("Breed", Str("lab"))
	if err := kb.AddInstance(good); err != nil {
		t.Fatalf("good instance rejected: %v", err)
	}
	cases := []struct {
		name string
		in   *Instance
		want string
	}{
		{"dup", NewInstance("rex", "Dog").Set("Name", Str("x")).Set("Legs", Num(4)), "already defined"},
		{"empty id", NewInstance("", "Dog"), "empty ID"},
		{"unknown class", NewInstance("x1", "Cat"), "unknown class"},
		{"unknown slot", NewInstance("x2", "Dog").Set("Name", Str("a")).Set("Legs", Num(4)).Set("Tail", Str("y")), "unknown slot"},
		{"wrong kind", NewInstance("x3", "Dog").Set("Name", Num(3)).Set("Legs", Num(4)), "kind"},
		{"missing required", NewInstance("x4", "Dog").Set("Name", Str("a")), "required"},
		{"bad enum", NewInstance("x5", "Dog").Set("Name", Str("a")).Set("Legs", Num(4)).Set("Breed", Str("wolf")), "allowed"},
	}
	for _, c := range cases {
		err := kb.AddInstance(c.in)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestQueries(t *testing.T) {
	kb := animalKB(t)
	kb.MustAddInstance(NewInstance("a1", "Animal").Set("Name", Str("Generic")))
	kb.MustAddInstance(NewInstance("d1", "Dog").Set("Name", Str("Rex")).Set("Legs", Num(4)))
	kb.MustAddInstance(NewInstance("d2", "Dog").Set("Name", Str("Fido")).Set("Legs", Num(3)))

	if got := len(kb.InstancesOf("Animal")); got != 3 {
		t.Errorf("InstancesOf(Animal) = %d, want 3 (includes Dogs)", got)
	}
	if got := len(kb.InstancesOf("Dog")); got != 2 {
		t.Errorf("InstancesOf(Dog) = %d, want 2", got)
	}
	threeLegged := kb.Query("Dog", func(in *Instance) bool {
		v, _ := in.Get("Legs")
		return v.N == 3
	})
	if len(threeLegged) != 1 || threeLegged[0].ID != "d2" {
		t.Errorf("Query = %v", threeLegged)
	}
	all := kb.Query("Animal", nil)
	if len(all) != 3 {
		t.Errorf("nil-pred Query = %d", len(all))
	}
	if kb.Instance("d1") == nil || kb.Instance("zzz") != nil {
		t.Error("Instance lookup broken")
	}
	c, i := kb.Stats()
	if c != 2 || i != 3 {
		t.Errorf("Stats = %d,%d", c, i)
	}
}

func TestValidateRefs(t *testing.T) {
	kb := NewKB()
	kb.MustAddClass(&Class{Name: "Team", Slots: []Slot{
		{Name: "Lead", Kind: KindRef, RefClass: "Person"},
		{Name: "Members", Kind: KindList, RefClass: "Person"},
		{Name: "Tags", Kind: KindList}, // untyped list: not checked
	}})
	kb.MustAddClass(&Class{Name: "Person", Slots: []Slot{{Name: "Name", Kind: KindString}}})
	kb.MustAddInstance(NewInstance("p1", "Person").Set("Name", Str("Ann")))
	kb.MustAddInstance(NewInstance("t1", "Team").
		Set("Lead", Ref("p1")).
		Set("Members", List("p1", "ghost")).
		Set("Tags", List("not-an-instance")))
	kb.MustAddInstance(NewInstance("t2", "Team").Set("Lead", Ref("t1"))) // wrong class

	errs := kb.ValidateRefs()
	if len(errs) != 2 {
		t.Fatalf("ValidateRefs = %d errors (%v), want 2", len(errs), errs)
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	if !strings.Contains(joined, "ghost") || !strings.Contains(joined, "want \"Person\"") {
		t.Errorf("errors = %s", joined)
	}
}

func TestValueHelpers(t *testing.T) {
	if Str("a").Text() != "a" || Num(2.5).Text() != "2.5" || Boolean(true).Text() != "true" {
		t.Error("Text mismatch")
	}
	if Ref("i1").Kind != KindRef || Ref("i1").Text() != "i1" {
		t.Error("Ref mismatch")
	}
	if List("a", "b").Text() != "{a, b}" {
		t.Errorf("List Text = %q", List("a", "b").Text())
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) || Str("a").Equal(Num(1)) {
		t.Error("Equal strings")
	}
	if !List("a").Equal(List("a")) || List("a").Equal(List("a", "b")) || List("a").Equal(List("b")) {
		t.Error("Equal lists")
	}
	if !Num(1).Equal(Num(1)) || !Boolean(true).Equal(Boolean(true)) || Boolean(true).Equal(Boolean(false)) {
		t.Error("Equal scalars")
	}
	for _, k := range []ValueKind{KindString, KindNumber, KindBool, KindRef, KindList, ValueKind(42)} {
		if k.String() == "" {
			t.Errorf("ValueKind(%d).String() empty", k)
		}
	}
}

func TestInstanceHelpers(t *testing.T) {
	in := &Instance{ID: "x", Class: "C"}
	in.Set("a", Str("v"))
	if v, ok := in.Get("a"); !ok || v.S != "v" {
		t.Error("Set/Get on zero-map instance")
	}
	if in.Text("a") != "v" || in.Text("missing") != "" {
		t.Error("Text mismatch")
	}
	c := &Class{Name: "C", Slots: []Slot{{Name: "a"}, {Name: "b"}}}
	if c.Slot("b") == nil || c.Slot("zz") != nil {
		t.Error("Class.Slot lookup")
	}
}

func TestGridShell(t *testing.T) {
	kb := GridShell()
	classes, instances := kb.Stats()
	if classes != 10 {
		t.Errorf("grid shell classes = %d, want 10 (Figure 12)", classes)
	}
	if instances != 0 {
		t.Errorf("shell has %d instances, want 0", instances)
	}
	// Spot-check figure slots.
	checks := map[string][]string{
		ClassTask:               {"ID", "Name", "Owner", "Status", "CaseDescription", "ProcessDescription", "NeedPlanning"},
		ClassActivity:           {"ID", "ServiceName", "Type", "InputDataSet", "DirectPredecessorSet", "RetryCount"},
		ClassData:               {"Name", "Classification", "Size", "Format", "AccessRight"},
		ClassService:            {"Name", "InputCondition", "OutputCondition", "Cost", "Resource"},
		ClassResource:           {"Name", "NumberOfNodes", "Hardware", "Software"},
		ClassHardware:           {"Speed", "Bandwidth", "Latency"},
		ClassSoftware:           {"Name", "Version"},
		ClassTransition:         {"ID", "SourceActivity", "DestinationActivity"},
		ClassCaseDescription:    {"InitialDataSet", "ResultSet", "GoalCondition"},
		ClassProcessDescription: {"ActivitySet", "TransitionSet", "Creator"},
	}
	for class, slots := range checks {
		c := kb.Class(class)
		if c == nil {
			t.Errorf("class %s missing", class)
			continue
		}
		for _, s := range slots {
			if c.Slot(s) == nil {
				t.Errorf("class %s missing slot %s", class, s)
			}
		}
	}
	// Activity.Type enumerates the seven kinds.
	typ := kb.Class(ClassActivity).Slot("Type")
	if len(typ.Allowed) != 7 {
		t.Errorf("Activity.Type allowed = %v", typ.Allowed)
	}
}

func TestShellCopyIsIndependent(t *testing.T) {
	kb := GridShell()
	kb.MustAddInstance(NewInstance("hw1", ClassHardware).Set("Speed", Num(2)))
	shell := kb.Shell()
	if _, i := shell.Stats(); i != 0 {
		t.Error("Shell() carried instances")
	}
	shell.Class(ClassHardware).Slots[0].Name = "Mutated"
	if kb.Class(ClassHardware).Slots[0].Name == "Mutated" {
		t.Error("Shell() shares slot storage")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	kb := GridShell()
	kb.MustAddInstance(NewInstance("hw1", ClassHardware).
		Set("Speed", Num(2.5)).Set("Type", Str("CPU")))
	kb.MustAddInstance(NewInstance("sw1", ClassSoftware).
		Set("Name", Str("P3DR")).Set("Version", Str("2.1")))
	kb.MustAddInstance(NewInstance("r1", ClassResource).
		Set("Name", Str("cluster-a")).
		Set("Hardware", Ref("hw1")).
		Set("Software", List("sw1")).
		Set("NumberOfNodes", Num(64)))

	data, err := kb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v\n%s", err, data)
	}
	c1, i1 := kb.Stats()
	c2, i2 := back.Stats()
	if c1 != c2 || i1 != i2 {
		t.Fatalf("round trip stats %d/%d vs %d/%d", c1, i1, c2, i2)
	}
	r1 := back.Instance("r1")
	if v, _ := r1.Get("Hardware"); v.S != "hw1" {
		t.Errorf("r1.Hardware = %v", v)
	}
	if v, _ := r1.Get("NumberOfNodes"); v.N != 64 {
		t.Errorf("r1.NumberOfNodes = %v", v)
	}
	if errs := back.ValidateRefs(); len(errs) != 0 {
		t.Errorf("refs after round trip: %v", errs)
	}
	// Second marshal is byte-identical (determinism).
	data2, err := back.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("marshal not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, src := range []string{
		`{`,
		`{"classes":[{"name":"A","slots":[{"name":"s","kind":"weird"}]}]}`,
		`{"classes":[{"name":"A","slots":[]},{"name":"A","slots":[]}]}`,
		`{"classes":[{"name":"A","slots":[]}],"instances":[{"id":"i","class":"B","values":{}}]}`,
		`{"classes":[{"name":"A","slots":[{"name":"s","kind":"string"}]}],"instances":[{"id":"i","class":"A","values":{"s":{"kind":"weird"}}}]}`,
	} {
		if _, err := Decode([]byte(src)); err == nil {
			t.Errorf("Decode(%q) succeeded", src)
		}
	}
}

func BenchmarkShellBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GridShell()
	}
}

func BenchmarkQuery(b *testing.B) {
	kb := animalKB(&testing.T{})
	for i := 0; i < 500; i++ {
		kb.MustAddInstance(NewInstance(
			"d"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+i/676)),
			"Dog").Set("Name", Str("x")).Set("Legs", Num(float64(i%5))))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kb.Query("Dog", func(in *Instance) bool {
			v, _ := in.Get("Legs")
			return v.N == 3
		})
	}
}

package pdl

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse checks the PDL parser never panics, and that accepted inputs
// survive the Format/Parse round trip structurally. Explore with
// `go test -fuzz=FuzzParse ./internal/pdl`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`BEGIN, A, END`,
		`BEGIN, A; B; C, END`,
		`BEGIN, {FORK {A} {B} JOIN}, END`,
		`BEGIN, {CHOICE {COND x.v > 0} {A} {B} MERGE}, END`,
		`BEGIN, {ITERATIVE {COND x.v > 0} {A; B}}, END`,
		`BEGIN, PSF(D10, D11 -> D12), END`,
		`BEGIN, P3DR1 = P3DR(D2 -> D9), END`,
		fig10Source,
		fig10Bound,
		`BEGIN`,
		`BEGIN, {FORK`,
		`BEGIN, A(->, END`,
		`BEGIN, , END`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) || len(src) > 1<<12 {
			return
		}
		tree, err := Parse(src)
		if err != nil {
			return
		}
		text, err := Format(tree)
		if err != nil {
			t.Fatalf("accepted %q but Format failed: %v", src, err)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\n%s\nerr: %v", text, err)
		}
		if !back.Equal(tree.Normalize()) {
			t.Fatalf("round trip changed the tree:\n src %q\n got %s", src, back)
		}
	})
}

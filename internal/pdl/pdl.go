// Package pdl implements the textual process description language of the
// paper's Section 2 BNF. A process description is a BEGIN..END block whose
// body composes activities with the three structured constructs:
//
//	process     := "BEGIN" "," body "," "END"
//	body        := element { ";" element }
//	element     := activity | concurrent | selective | iterative
//	activity    := Ident [ "=" Ident ] [ "(" names [ "->" names ] ")" ]
//	names       := Ident { "," Ident } | ""      // input / output data sets
//	concurrent  := "{" "FORK"   branch branch+ "JOIN" "}"
//	selective   := "{" "CHOICE" guarded guarded+ "MERGE" "}"
//	iterative   := "{" "ITERATIVE" "{" "COND" condition "}" branch "}"
//	branch      := "{" body "}"
//	guarded     := [ "{" "COND" condition "}" ] branch
//	condition   := condition-expression (see package expr)
//
// An example corresponding to Figure 10:
//
//	BEGIN,
//	  POD;
//	  P3DR1 = P3DR;
//	  {ITERATIVE {COND D10.value > 8}
//	    {POR;
//	     {FORK {P3DR2 = P3DR} {P3DR3 = P3DR} {P3DR4 = P3DR} JOIN};
//	     PSF}
//	  },
//	END
//
// Parsing produces a plan tree (package plantree), which converts losslessly
// to the graph-form process description (package workflow) via
// plantree.ToProcess; Format inverts Parse.
package pdl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/expr"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

// Error describes a PDL parse failure with line/column position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("pdl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type tkind int

const (
	tEOF tkind = iota
	tIdent
	tLBrace
	tRBrace
	tSemi
	tComma
	tEquals
	tLParen
	tRParen
	tArrow
	tCondText // raw condition text captured after COND
)

type tok struct {
	kind      tkind
	text      string
	line, col int
}

type scanner struct {
	src       string
	pos       int
	line, col int
}

func newScanner(src string) *scanner { return &scanner{src: src, line: 1, col: 1} }

func (s *scanner) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (s *scanner) advance(r rune, size int) {
	s.pos += size
	if r == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
}

func (s *scanner) skipSpaceAndComments() {
	for s.pos < len(s.src) {
		r, size := utf8.DecodeRuneInString(s.src[s.pos:])
		if unicode.IsSpace(r) {
			s.advance(r, size)
			continue
		}
		// Line comments: #... or //...
		if r == '#' || (r == '/' && strings.HasPrefix(s.src[s.pos:], "//")) {
			for s.pos < len(s.src) {
				r, size = utf8.DecodeRuneInString(s.src[s.pos:])
				s.advance(r, size)
				if r == '\n' {
					break
				}
			}
			continue
		}
		return
	}
}

func (s *scanner) next() (tok, error) {
	s.skipSpaceAndComments()
	line, col := s.line, s.col
	if s.pos >= len(s.src) {
		return tok{kind: tEOF, line: line, col: col}, nil
	}
	r, size := utf8.DecodeRuneInString(s.src[s.pos:])
	switch r {
	case '{':
		s.advance(r, size)
		return tok{kind: tLBrace, text: "{", line: line, col: col}, nil
	case '}':
		s.advance(r, size)
		return tok{kind: tRBrace, text: "}", line: line, col: col}, nil
	case ';':
		s.advance(r, size)
		return tok{kind: tSemi, text: ";", line: line, col: col}, nil
	case ',':
		s.advance(r, size)
		return tok{kind: tComma, text: ",", line: line, col: col}, nil
	case '=':
		s.advance(r, size)
		return tok{kind: tEquals, text: "=", line: line, col: col}, nil
	case '(':
		s.advance(r, size)
		return tok{kind: tLParen, text: "(", line: line, col: col}, nil
	case ')':
		s.advance(r, size)
		return tok{kind: tRParen, text: ")", line: line, col: col}, nil
	case '-':
		s.advance(r, size)
		if s.pos < len(s.src) && s.src[s.pos] == '>' {
			s.advance('>', 1)
			return tok{kind: tArrow, text: "->", line: line, col: col}, nil
		}
		return tok{}, s.errf(line, col, "expected '->' after '-'")
	}
	if unicode.IsLetter(r) || r == '_' {
		start := s.pos
		for s.pos < len(s.src) {
			r, size = utf8.DecodeRuneInString(s.src[s.pos:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
				break
			}
			s.advance(r, size)
		}
		return tok{kind: tIdent, text: s.src[start:s.pos], line: line, col: col}, nil
	}
	return tok{}, s.errf(line, col, "unexpected character %q", r)
}

// condText captures raw text until the next unmatched '}' (conditions never
// contain braces), leaving the '}' unconsumed.
func (s *scanner) condText() (string, error) {
	start := s.pos
	for s.pos < len(s.src) {
		r, size := utf8.DecodeRuneInString(s.src[s.pos:])
		if r == '}' {
			return strings.TrimSpace(s.src[start:s.pos]), nil
		}
		if r == '{' {
			return "", s.errf(s.line, s.col, "'{' not allowed inside a condition")
		}
		s.advance(r, size)
	}
	return "", s.errf(s.line, s.col, "unterminated condition")
}

type parser struct {
	s   *scanner
	tok tok
}

func (p *parser) advance() error {
	t, err := p.s.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return p.s.errf(p.tok.line, p.tok.col, format, args...)
}

func (p *parser) expect(kind tkind, what string) error {
	if p.tok.kind != kind {
		return p.errf("expected %s, found %q", what, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tIdent || !strings.EqualFold(p.tok.text, kw) {
		return p.errf("expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tIdent && strings.EqualFold(p.tok.text, kw)
}

// Parse parses PDL source into a plan tree.
func Parse(src string) (*plantree.Node, error) {
	p := &parser{s: newScanner(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	if err := p.expect(tComma, "','"); err != nil {
		return nil, err
	}
	body, err := p.parseBody(func() bool { return p.tok.kind == tComma })
	if err != nil {
		return nil, err
	}
	if err := p.expect(tComma, "','"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("unexpected %q after END", p.tok.text)
	}
	root := plantree.Seq(body...).Normalize()
	if err := root.Validate(0); err != nil {
		return nil, err
	}
	return root, nil
}

// parseBody parses element {";" element} until stop() reports the body is
// done (at a ',' before END or at a closing '}').
func (p *parser) parseBody(stop func() bool) ([]*plantree.Node, error) {
	var nodes []*plantree.Node
	for {
		n, err := p.parseElement()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
		if p.tok.kind == tSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if stop() || p.tok.kind == tRBrace {
			return nodes, nil
		}
		return nil, p.errf("expected ';', found %q", p.tok.text)
	}
}

func (p *parser) parseElement() (*plantree.Node, error) {
	if p.tok.kind == tLBrace {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.atKeyword("FORK"):
			return p.parseFork()
		case p.atKeyword("CHOICE"):
			return p.parseChoice()
		case p.atKeyword("ITERATIVE"):
			return p.parseIterative()
		default:
			return nil, p.errf("expected FORK, CHOICE, or ITERATIVE, found %q", p.tok.text)
		}
	}
	if p.tok.kind != tIdent {
		return nil, p.errf("expected activity name, found %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	service := name
	if p.tok.kind == tEquals {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tIdent {
			return nil, p.errf("expected service name after '=', found %q", p.tok.text)
		}
		service = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	a := plantree.Activity(service)
	if name != service {
		a.Name = name
	}
	if p.tok.kind == tLParen {
		inputs, outputs, err := p.parseBindings()
		if err != nil {
			return nil, err
		}
		a.Inputs = inputs
		a.Outputs = outputs
	}
	return a, nil
}

// parseBindings parses "(" names ["->" names] ")".
func (p *parser) parseBindings() (inputs, outputs []string, err error) {
	if err := p.advance(); err != nil { // consume '('
		return nil, nil, err
	}
	readNames := func() ([]string, error) {
		var names []string
		for p.tok.kind == tIdent {
			names = append(names, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return names, nil
	}
	inputs, err = readNames()
	if err != nil {
		return nil, nil, err
	}
	if p.tok.kind == tArrow {
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		outputs, err = readNames()
		if err != nil {
			return nil, nil, err
		}
	}
	if p.tok.kind != tRParen {
		return nil, nil, p.errf("expected ')' after data bindings, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, nil, err
	}
	return inputs, outputs, nil
}

// parseBranch parses "{" body "}" and returns a single node (wrapping
// multi-element bodies in a sequential).
func (p *parser) parseBranch() (*plantree.Node, error) {
	if err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	body, err := p.parseBody(func() bool { return false })
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, "'}'"); err != nil {
		return nil, err
	}
	if len(body) == 1 {
		return body[0], nil
	}
	return plantree.Seq(body...), nil
}

// parseCond parses "{" "COND" text "}" and returns the validated condition.
// The condition text is captured raw from the scanner (it is a different
// language, handled by package expr), so it may contain characters the PDL
// tokenizer does not know.
func (p *parser) parseCond() (string, error) {
	if err := p.expect(tLBrace, "'{'"); err != nil {
		return "", err
	}
	if !p.atKeyword("COND") {
		return "", p.errf("expected COND, found %q", p.tok.text)
	}
	// Capture everything between COND and the closing brace without
	// tokenizing it.
	cond, err := p.s.condText()
	if err != nil {
		return "", err
	}
	if _, err := expr.Parse(cond); err != nil {
		return "", p.errf("bad condition %q: %v", cond, err)
	}
	// Re-prime the token stream: the next token is the closing brace.
	if err := p.advance(); err != nil {
		return "", err
	}
	if err := p.expect(tRBrace, "'}' after condition"); err != nil {
		return "", err
	}
	return cond, nil
}

func (p *parser) parseFork() (*plantree.Node, error) {
	if err := p.advance(); err != nil { // consume FORK
		return nil, err
	}
	node := plantree.Conc()
	for p.tok.kind == tLBrace {
		br, err := p.parseBranch()
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, br)
	}
	if err := p.expectKeyword("JOIN"); err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, "'}'"); err != nil {
		return nil, err
	}
	if len(node.Children) < 2 {
		return nil, p.errf("FORK needs at least two branches, has %d", len(node.Children))
	}
	return node, nil
}

func (p *parser) parseChoice() (*plantree.Node, error) {
	if err := p.advance(); err != nil { // consume CHOICE
		return nil, err
	}
	node := plantree.Sel()
	for p.tok.kind == tLBrace {
		// Peek: a brace group starting with COND is a guard for the next
		// branch; otherwise it is an unguarded branch.
		cond := ""
		save := *p.s
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("COND") {
			*p.s = save
			p.tok = saveTok
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			cond = c
			if p.tok.kind != tLBrace {
				return nil, p.errf("expected branch after condition, found %q", p.tok.text)
			}
		} else {
			*p.s = save
			p.tok = saveTok
		}
		br, err := p.parseBranch()
		if err != nil {
			return nil, err
		}
		if cond != "" {
			// An iterative alternative keeps its loop condition; its guard
			// goes on a sequential wrapper (same convention as plantree).
			if br.Kind == plantree.KindIterative || br.Condition != "" {
				br = plantree.Seq(br)
			}
			br.Condition = cond
		}
		node.Children = append(node.Children, br)
	}
	if err := p.expectKeyword("MERGE"); err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, "'}'"); err != nil {
		return nil, err
	}
	if len(node.Children) < 2 {
		return nil, p.errf("CHOICE needs at least two alternatives, has %d", len(node.Children))
	}
	return node, nil
}

func (p *parser) parseIterative() (*plantree.Node, error) {
	if err := p.advance(); err != nil { // consume ITERATIVE
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBranch()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, "'}'"); err != nil {
		return nil, err
	}
	node := plantree.Iter(body)
	if body.Kind == plantree.KindSequential && body.Condition == "" {
		node.Children = body.Children
	}
	node.Condition = cond
	return node, nil
}

// ParseProcess parses PDL source and converts it to a graph-form process
// description with the given name.
func ParseProcess(name, src string) (*workflow.ProcessDescription, error) {
	tree, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return plantree.ToProcess(name, tree)
}

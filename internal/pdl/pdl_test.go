package pdl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/plantree"
	"repro/internal/workflow"
)

// fig10Source is the PDL text for the Figure 10 process description.
const fig10Source = `
# 3D reconstruction of virus structures (Figure 10).
BEGIN,
  POD;
  P3DR1 = P3DR;
  {ITERATIVE {COND D10.value > 8}
    {POR;
     {FORK {P3DR2 = P3DR} {P3DR3 = P3DR} {P3DR4 = P3DR} JOIN};
     PSF}
  },
END
`

func TestParseFig10(t *testing.T) {
	tree, err := Parse(fig10Source)
	if err != nil {
		t.Fatal(err)
	}
	want := "(seq POD P3DR (iter POR (conc P3DR P3DR P3DR) PSF))"
	if tree.String() != want {
		t.Errorf("tree = %s, want %s", tree, want)
	}
	if tree.Size() != 10 {
		t.Errorf("Size = %d, want 10 (Figure 11)", tree.Size())
	}
	// Named activities keep their display names.
	leaves := tree.Leaves()
	if leaves[1].Name != "P3DR1" {
		t.Errorf("second leaf Name = %q, want P3DR1", leaves[1].Name)
	}
	iter := tree.Children[2]
	if iter.Kind != plantree.KindIterative || iter.Condition != "D10.value > 8" {
		t.Errorf("iterative node = %+v", iter)
	}
}

func TestParseProcessFig10(t *testing.T) {
	p, err := ParseProcess("3DSD", fig10Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 10: 7 end-user + 6 flow-control activities.
	if got := p.CountKind(workflow.KindEndUser); got != 7 {
		t.Errorf("end-user = %d, want 7", got)
	}
	if got := len(p.Activities); got != 13 {
		t.Errorf("total activities = %d, want 13", got)
	}
	if a := p.ActivityByName("P3DR3"); a == nil || a.Service != "P3DR" {
		t.Errorf("P3DR3 = %+v", a)
	}
}

func TestParseConstructs(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{`BEGIN, A, END`, "A"},
		{`BEGIN, A; B; C, END`, "(seq A B C)"},
		{`BEGIN, {FORK {A} {B} JOIN}, END`, "(conc A B)"},
		{`BEGIN, {CHOICE {COND x.v > 0} {A} {COND x.v <= 0} {B} MERGE}, END`, "(sel A B)"},
		{`BEGIN, {CHOICE {A} {B; C} MERGE}, END`, "(sel A (seq B C))"},
		{`BEGIN, {ITERATIVE {COND x.v > 0} {A; B}}, END`, "(iter A B)"},
		{`BEGIN, A; {FORK {B; C} {D} JOIN}; E, END`, "(seq A (conc (seq B C) D) E)"},
		{`BEGIN, {ITERATIVE {COND true} {{FORK {A} {B} JOIN}}}, END`, "(iter (conc A B))"},
		{`BEGIN, {CHOICE {COND a.b = 1} {{ITERATIVE {COND c.d = 2} {X}}} {Y} MERGE}, END`,
			"(sel (seq (iter X)) Y)"},
	}
	for _, tt := range tests {
		tree, err := Parse(tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if tree.String() != tt.want {
			t.Errorf("Parse(%q) = %s, want %s", tt.src, tree, tt.want)
		}
	}
}

func TestGuardedIterativeKeepsBothConditions(t *testing.T) {
	src := `BEGIN, {CHOICE {COND a.b = 1} {{ITERATIVE {COND c.d = 2} {X}}} {Y} MERGE}, END`
	tree, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	alt := tree.Children[0]
	if alt.Condition != "a.b = 1" {
		t.Errorf("guard = %q, want a.b = 1", alt.Condition)
	}
	inner := alt.Children[0]
	if inner.Kind != plantree.KindIterative || inner.Condition != "c.d = 2" {
		t.Errorf("inner = kind %v cond %q", inner.Kind, inner.Condition)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`BEGIN`,
		`BEGIN, END`,
		`BEGIN, A`,
		`BEGIN, A, ENDD`,
		`BEGIN, A, END extra`,
		`BEGIN, A B, END`,
		`BEGIN, {FORK {A} JOIN}, END`,           // one branch
		`BEGIN, {CHOICE {A} MERGE}, END`,        // one alternative
		`BEGIN, {FORK {A} {B} MERGE}, END`,      // wrong closer
		`BEGIN, {CHOICE {A} {B} JOIN}, END`,     // wrong closer
		`BEGIN, {ITERATIVE {A}}, END`,           // missing COND
		`BEGIN, {ITERATIVE {COND ((} {A}}, END`, // bad condition
		`BEGIN, {WHILE {A} {B}}, END`,           // unknown construct
		`BEGIN, A = , END`,                      // missing service
		`BEGIN, {ITERATIVE {COND x.y = {}} {A}}, END`,       // brace in condition
		`BEGIN, {CHOICE {COND x.v = 1} MERGE {A} {B}}, END`, // guard without branch
		`BEGIN, A; ; B, END`,
		`BEGIN, @, END`,
	}
	for _, src := range bad {
		if tree, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %s, want error", src, tree)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("BEGIN,\n  A B,\nEND")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "pdl: 2:") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestComments(t *testing.T) {
	src := `
// Leading comment.
BEGIN,
  A;   # trailing comment
  B,
END`
	tree, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if tree.String() != "(seq A B)" {
		t.Errorf("tree = %s", tree)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		fig10Source,
		`BEGIN, A, END`,
		`BEGIN, A; B; C, END`,
		`BEGIN, {FORK {A} {B; C} JOIN}, END`,
		`BEGIN, {CHOICE {COND x.v > 0} {A} {B} MERGE}, END`,
		`BEGIN, {ITERATIVE {COND x.v > 0} {A}}, END`,
		`BEGIN, {CHOICE {COND a.b = 1} {{ITERATIVE {COND c.d = 2} {X}}} {Y} MERGE}, END`,
	}
	for _, src := range srcs {
		tree, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text, err := Format(tree)
		if err != nil {
			t.Fatalf("Format(%s): %v", tree, err)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("re-Parse of\n%s\nerror: %v", text, err)
		}
		if !back.Equal(tree) {
			t.Errorf("round trip:\nsource %q\nprinted\n%s\n got %s\nwant %s", src, text, back, tree)
		}
	}
}

func TestFormatRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	services := []string{"POD", "P3DR", "POR", "PSF"}
	for i := 0; i < 200; i++ {
		tree := plantree.Random(rng, services, 20).Normalize()
		text, err := Format(tree)
		if err != nil {
			t.Fatalf("Format(%s): %v", tree, err)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("re-Parse of %s:\n%s\nerror: %v", tree, text, err)
		}
		if !back.Equal(tree) {
			t.Fatalf("round trip:\n want %s\n got %s\ntext:\n%s", tree, back, text)
		}
	}
}

func TestFormatProcess(t *testing.T) {
	p, err := ParseProcess("3DSD", fig10Source)
	if err != nil {
		t.Fatal(err)
	}
	text, err := FormatProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProcess("3DSD", text)
	if err != nil {
		t.Fatalf("re-parse:\n%s\nerror: %v", text, err)
	}
	if got, want := len(back.Activities), len(p.Activities); got != want {
		t.Errorf("activities after round trip = %d, want %d", got, want)
	}
	// Invalid processes are rejected.
	if _, err := FormatProcess(workflow.NewProcess("empty")); err == nil {
		t.Error("FormatProcess of empty process should fail")
	}
}

func TestFormatRejectsInvalidTree(t *testing.T) {
	if _, err := Format(plantree.Seq()); err == nil {
		t.Error("Format of empty controller should fail")
	}
}

func BenchmarkParseFig10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(fig10Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatFig10(b *testing.B) {
	tree, err := Parse(fig10Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Format(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// fig10Bound is the Figure 10 workflow with the full Figure 13 data-set
// bindings, so conditions that reference data by name (Cons1's D12) work
// when the parsed workflow is enacted.
const fig10Bound = `
BEGIN,
  POD(D1, D7 -> D8);
  P3DR1 = P3DR(D2, D7, D8 -> D9);
  {ITERATIVE {COND D12.value > 8}
    {POR(D5, D7, D8, D9 -> D8);
     {FORK
       {P3DR2 = P3DR(D3, D7, D8 -> D10)}
       {P3DR3 = P3DR(D4, D7, D8 -> D11)}
       {P3DR4 = P3DR(D2, D7, D8 -> D9)}
     JOIN};
     PSF(D10, D11 -> D12)}
  },
END
`

func TestDataBindings(t *testing.T) {
	tree, err := Parse(fig10Bound)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	pod := leaves[0]
	if strings.Join(pod.Inputs, ",") != "D1,D7" || strings.Join(pod.Outputs, ",") != "D8" {
		t.Errorf("POD bindings = %v -> %v", pod.Inputs, pod.Outputs)
	}
	psf := leaves[len(leaves)-1]
	if strings.Join(psf.Inputs, ",") != "D10,D11" || strings.Join(psf.Outputs, ",") != "D12" {
		t.Errorf("PSF bindings = %v -> %v", psf.Inputs, psf.Outputs)
	}
	// The graph form carries them too.
	p, err := ParseProcess("bound", fig10Bound)
	if err != nil {
		t.Fatal(err)
	}
	act := p.ActivityByName("PSF")
	if act == nil || strings.Join(act.Outputs, ",") != "D12" {
		t.Errorf("graph PSF = %+v", act)
	}
	// Round trip preserves bindings.
	text, err := Format(tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse:\n%s\n%v", text, err)
	}
	if !back.Equal(tree) {
		t.Errorf("binding round trip:\n%s\nvs\n%s\ntext:\n%s", tree, back, text)
	}
}

func TestBindingSyntaxErrors(t *testing.T) {
	bad := []string{
		`BEGIN, A(D1, END`,       // unterminated
		`BEGIN, A(D1 -> , END`,   // unterminated after arrow
		`BEGIN, A(D1 - D2), END`, // bare dash
		`BEGIN, A(D1 D2), END`,   // missing comma
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	// Output-only and empty bindings are fine.
	for _, src := range []string{
		`BEGIN, A(-> D1), END`,
		`BEGIN, A(), END`,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

package pdl

import (
	"fmt"
	"strings"

	"repro/internal/plantree"
	"repro/internal/workflow"
)

// Format renders a plan tree as PDL source text that Parse accepts and that
// parses back to an equivalent (normalized) tree.
func Format(root *plantree.Node) (string, error) {
	if err := root.Validate(0); err != nil {
		return "", err
	}
	root = root.Clone().Normalize()
	var sb strings.Builder
	sb.WriteString("BEGIN,\n")
	f := &formatter{sb: &sb}
	if root.Kind == plantree.KindSequential && root.Condition == "" {
		f.writeBody(root.Children, 1)
	} else {
		f.writeBody([]*plantree.Node{root}, 1)
	}
	sb.WriteString(",\nEND\n")
	return sb.String(), nil
}

type formatter struct {
	sb *strings.Builder
}

func (f *formatter) indent(depth int) {
	for i := 0; i < depth; i++ {
		f.sb.WriteString("  ")
	}
}

func (f *formatter) writeBody(nodes []*plantree.Node, depth int) {
	for i, n := range nodes {
		if i > 0 {
			f.sb.WriteString(";\n")
		}
		f.indent(depth)
		f.writeNode(n, depth)
	}
}

func (f *formatter) writeNode(n *plantree.Node, depth int) {
	switch n.Kind {
	case plantree.KindActivity:
		if n.Name != "" && n.Name != n.Service {
			fmt.Fprintf(f.sb, "%s = %s", n.Name, n.Service)
		} else {
			f.sb.WriteString(n.Service)
		}
		if len(n.Inputs) > 0 || len(n.Outputs) > 0 {
			f.sb.WriteString("(")
			f.sb.WriteString(strings.Join(n.Inputs, ", "))
			if len(n.Outputs) > 0 {
				f.sb.WriteString(" -> ")
				f.sb.WriteString(strings.Join(n.Outputs, ", "))
			}
			f.sb.WriteString(")")
		}

	case plantree.KindSequential:
		// A sequential in element position writes its children inline,
		// separated by ';' (the body syntax).
		for i, c := range n.Children {
			if i > 0 {
				f.sb.WriteString(";\n")
				f.indent(depth)
			}
			f.writeNode(c, depth)
		}

	case plantree.KindConcurrent:
		f.sb.WriteString("{FORK\n")
		for _, c := range n.Children {
			f.writeBranch(c, depth+1)
		}
		f.indent(depth)
		f.sb.WriteString("JOIN}")

	case plantree.KindSelective:
		f.sb.WriteString("{CHOICE\n")
		for _, c := range n.Children {
			if c.Condition != "" {
				f.indent(depth + 1)
				fmt.Fprintf(f.sb, "{COND %s}\n", c.Condition)
			}
			f.writeBranch(c, depth+1)
		}
		f.indent(depth)
		f.sb.WriteString("MERGE}")

	case plantree.KindIterative:
		fmt.Fprintf(f.sb, "{ITERATIVE {COND %s}\n", n.Condition)
		f.writeSeqBranch(n.Children, depth+1)
		f.indent(depth)
		f.sb.WriteString("}")
	}
}

// writeBranch writes one child as a braced branch.
func (f *formatter) writeBranch(n *plantree.Node, depth int) {
	if n.Kind == plantree.KindSequential {
		f.writeSeqBranch(n.Children, depth)
		return
	}
	f.indent(depth)
	f.sb.WriteString("{")
	f.writeNode(stripCondition(n), depth)
	f.sb.WriteString("}\n")
}

// writeSeqBranch writes a braced branch holding a sequence of nodes.
func (f *formatter) writeSeqBranch(nodes []*plantree.Node, depth int) {
	f.indent(depth)
	f.sb.WriteString("{\n")
	f.writeBody(nodes, depth+1)
	f.sb.WriteString("\n")
	f.indent(depth)
	f.sb.WriteString("}\n")
}

// stripCondition returns n without its guard condition (the guard is printed
// separately as {COND ...}); the original node is not modified.
func stripCondition(n *plantree.Node) *plantree.Node {
	if n.Condition == "" || n.Kind == plantree.KindIterative {
		return n
	}
	c := *n
	c.Condition = ""
	return &c
}

// FormatProcess renders a graph-form process description as PDL text by
// first recovering its plan tree; it fails if the process is not
// well-structured.
func FormatProcess(p *workflow.ProcessDescription) (string, error) {
	tree, err := plantree.FromProcess(p)
	if err != nil {
		return "", err
	}
	return Format(tree)
}

package planner

// Service is the planning production surface: an asynchronous
// Submit/Get/Wait/Cancel resource over a pool of plan workers, fronted by
// the case-keyed PlanCache. It is the single entry point for planning —
// the HTTP /api/v1/plans resource, the planning agent, and the CLI
// protocols (RunManyContext) all go through it — so parallelism, caching,
// incremental re-planning, and per-plan telemetry live in one place.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/pdl"
	"repro/internal/plantree"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Status is the plan lifecycle: queued → running → one of the terminal
// states. The same enum (and JSON spelling) is shared by the /api/v1
// async-resource convention.
type Status string

// Plan lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// Service errors, mapped onto the HTTP error envelope by the API layer.
var (
	ErrInvalidSpec   = errors.New("planner: invalid plan spec")
	ErrUnknownPlan   = errors.New("planner: unknown plan")
	ErrDuplicatePlan = errors.New("planner: duplicate plan id")
	ErrPlanFinished  = errors.New("planner: plan already finished")
	ErrPlanCancelled = errors.New("planner: plan already cancelled")
	ErrQueueFull     = errors.New("planner: plan queue full")
	ErrServiceClosed = errors.New("planner: service closed")
)

// PlanSpec describes one planning case to solve.
type PlanSpec struct {
	// ID names the plan; empty means the service assigns one.
	ID string
	// Initial is the data available at the start of the case.
	Initial []*workflow.DataItem
	// Goal is the non-empty set of goal conditions (expression sources).
	Goal []string
	// Constraints are additional case constraints; they key the cache (a
	// different constraint set is a different case) and must parse.
	Constraints []string
	// Excluded removes services from the planning catalog (the verified
	// non-executable set of a Figure-3 re-plan).
	Excluded []string
	// Seeds inject existing plan trees into the initial population (plan
	// reuse). Execution hints: not part of the cache key.
	Seeds []*plantree.Node
	// Failed, when set, makes the plan incremental: the population is
	// seeded from this failed plan's neighborhood (the adapted tree plus
	// mutants) and, unless Params overrides it, the reduced Incremental()
	// budget applies. Not part of the cache key.
	Failed *plantree.Node
	// Params overrides the service defaults for this plan.
	Params *Params
	// NoCache bypasses the plan cache (both lookup and fill).
	NoCache bool
	// TreeOnly skips the PDL conversion of the best tree (protocol runs
	// that only need Result). TreeOnly plans are never cached.
	TreeOnly bool
	// TaskID, when set, routes the per-generation GP spans to that task's
	// telemetry trace instead of the plan's own.
	TaskID string
	// Traceparent carries the submitting task's W3C trace context; the plan
	// span then joins that trace as a child of the caller's span (plan→task
	// causality survives the agent-message hop).
	Traceparent string
}

// PlanStatus is the observable state of a plan.
type PlanStatus struct {
	ID        string    `json:"id"`
	Status    Status    `json:"status"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`

	// CacheHit marks a plan answered from the plan cache (terminal at
	// submit time); Incremental marks a neighborhood-seeded re-plan.
	CacheHit    bool `json:"cacheHit,omitempty"`
	Incremental bool `json:"incremental,omitempty"`

	Error string `json:"error,omitempty"`

	PDL         string     `json:"pdl,omitempty"`
	Tree        string     `json:"tree,omitempty"`
	Eval        Evaluation `json:"eval"`
	Evaluations int        `json:"evaluations"`
	Generations int        `json:"generations"`
	Excluded    []string   `json:"excluded,omitempty"`

	// Key is the canonical case key the cache used.
	Key string `json:"key,omitempty"`

	// Result carries the full GP result for in-process callers; it is
	// nil for cache hits and non-succeeded plans.
	Result *Result `json:"-"`
}

// ServiceConfig configures NewService.
type ServiceConfig struct {
	// Catalog is the full service catalog plans draw from (required).
	Catalog *workflow.Catalog
	// Params are the default GP parameters; the zero value means
	// DefaultParams().
	Params Params
	// Workers sizes the plan worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueCapacity bounds the backlog of queued plans; 0 means 256.
	QueueCapacity int
	// CacheSize bounds the plan cache; 0 means the default (4096).
	CacheSize int
	// RetainFinished bounds how many terminal plans stay queryable; 0
	// means 1024. The oldest are evicted first.
	RetainFinished int
	// Telemetry, when set, receives planner.* metrics and per-plan spans.
	Telemetry *telemetry.Registry
}

// Service is the asynchronous planning service. Create with NewService,
// stop with Close.
type Service struct {
	cfg     ServiceConfig
	workers int
	retain  int
	cache   *PlanCache
	tel     *telemetry.Registry
	queue   chan *planJob
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	records  map[string]*planJob
	order    []string // submission order (for List)
	finished []string // finalization order (for retention eviction)
	seq      int64
	inFlight int

	submitted, succeeded, failed, cancelled int64
	latencies                               [512]float64
	latPos, latCount                        int
}

type planJob struct {
	spec   PlanSpec
	params Params
	status PlanStatus
	cancel context.CancelFunc
	done   chan struct{}
}

// NewService starts the worker pool and returns the service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Catalog == nil || cfg.Catalog.Len() == 0 {
		return nil, fmt.Errorf("%w: empty catalog", ErrInvalidSpec)
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capacity := cfg.QueueCapacity
	if capacity <= 0 {
		capacity = 256
	}
	retain := cfg.RetainFinished
	if retain <= 0 {
		retain = 1024
	}
	s := &Service{
		cfg:     cfg,
		workers: workers,
		retain:  retain,
		cache:   NewPlanCache(cfg.CacheSize),
		tel:     cfg.Telemetry,
		queue:   make(chan *planJob, capacity),
		records: make(map[string]*planJob),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Workers reports the plan worker pool size.
func (s *Service) Workers() int { return s.workers }

// validateSpec rejects malformed cases up front, so the caller gets a
// synchronous ErrInvalidSpec instead of an async failed plan.
func (s *Service) validateSpec(spec *PlanSpec, params Params) error {
	if len(spec.Goal) == 0 {
		return fmt.Errorf("%w: no goal conditions", ErrInvalidSpec)
	}
	for _, g := range spec.Goal {
		if _, err := expr.Parse(g); err != nil {
			return fmt.Errorf("%w: goal %q: %v", ErrInvalidSpec, g, err)
		}
	}
	for _, c := range spec.Constraints {
		if _, err := expr.Parse(c); err != nil {
			return fmt.Errorf("%w: constraint %q: %v", ErrInvalidSpec, c, err)
		}
	}
	if err := params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	excluded := make(map[string]bool, len(spec.Excluded))
	for _, n := range spec.Excluded {
		excluded[n] = true
	}
	usable := 0
	for _, name := range s.cfg.Catalog.Names() {
		if !excluded[name] {
			usable++
		}
	}
	if usable == 0 {
		return fmt.Errorf("%w: no executable services remain", ErrInvalidSpec)
	}
	return nil
}

// resolveParams picks the effective GP parameters for a spec: the override
// if present, else the service defaults reduced to the Incremental()
// budget for neighborhood-seeded re-plans; an unset EvalWorkers becomes
// this worker's fair share of GOMAXPROCS, so concurrent plans do not
// oversubscribe the cores.
func (s *Service) resolveParams(spec *PlanSpec) Params {
	var p Params
	switch {
	case spec.Params != nil:
		p = *spec.Params
	case spec.Failed != nil:
		p = s.cfg.Params.Incremental()
	default:
		p = s.cfg.Params
	}
	if p.EvalWorkers == 0 {
		p.EvalWorkers = max(1, runtime.GOMAXPROCS(0)/s.workers)
	}
	return p
}

// Submit enqueues a plan and returns its status snapshot: queued, or
// already terminal on a cache hit (the warm path answers synchronously in
// well under a millisecond). The plan itself runs on the service pool
// under the service's lifetime, not the caller's context; cancel it with
// Cancel.
func (s *Service) Submit(ctx context.Context, spec PlanSpec) (PlanStatus, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return PlanStatus{}, err
		}
	}
	params := s.resolveParams(&spec)
	if err := s.validateSpec(&spec, params); err != nil {
		return PlanStatus{}, err
	}
	key := CanonicalKey(spec.Initial, spec.Goal, spec.Constraints, spec.Excluded, params)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return PlanStatus{}, ErrServiceClosed
	}
	if spec.ID == "" {
		s.seq++
		spec.ID = fmt.Sprintf("plan-%06d", s.seq)
	}
	if _, ok := s.records[spec.ID]; ok {
		return PlanStatus{}, fmt.Errorf("%w: %s", ErrDuplicatePlan, spec.ID)
	}
	j := &planJob{
		spec:   spec,
		params: params,
		done:   make(chan struct{}),
		status: PlanStatus{
			ID:          spec.ID,
			Status:      StatusQueued,
			Submitted:   time.Now(),
			Incremental: spec.Failed != nil,
			Excluded:    append([]string(nil), spec.Excluded...),
			Key:         key,
		},
	}

	if !spec.NoCache && !spec.TreeOnly {
		if hit, ok := s.cache.Get(key); ok {
			s.tel.Counter("planner.plan_cache.hits").Inc()
			j.status.Status = StatusSucceeded
			j.status.CacheHit = true
			j.status.PDL = hit.PDL
			j.status.Tree = hit.Tree
			j.status.Eval = hit.Eval
			s.records[spec.ID] = j
			s.order = append(s.order, spec.ID)
			s.submitted++
			s.tel.Counter("planner.service.submitted").Inc()
			s.finalizeLocked(j, StatusSucceeded, "")
			return j.status, nil
		}
		s.tel.Counter("planner.plan_cache.misses").Inc()
	}

	select {
	case s.queue <- j:
	default:
		return PlanStatus{}, ErrQueueFull
	}
	s.records[spec.ID] = j
	s.order = append(s.order, spec.ID)
	s.submitted++
	s.tel.Counter("planner.service.submitted").Inc()
	return j.status, nil
}

// Get returns the plan's status snapshot.
func (s *Service) Get(id string) (PlanStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.records[id]
	if j == nil {
		return PlanStatus{}, ErrUnknownPlan
	}
	return j.status, nil
}

// Wait blocks until the plan reaches a terminal status or the context
// ends, then returns the final status.
func (s *Service) Wait(ctx context.Context, id string) (PlanStatus, error) {
	s.mu.Lock()
	j := s.records[id]
	s.mu.Unlock()
	if j == nil {
		return PlanStatus{}, ErrUnknownPlan
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return s.Get(id)
	case <-ctx.Done():
		return PlanStatus{}, ctx.Err()
	}
}

// Cancel stops a plan: a queued plan finalizes as cancelled immediately; a
// running plan is signalled and finalizes as cancelled when its current
// generation notices. Terminal plans return ErrPlanCancelled or
// ErrPlanFinished alongside the unchanged status.
func (s *Service) Cancel(id string) (PlanStatus, error) {
	s.mu.Lock()
	j := s.records[id]
	if j == nil {
		s.mu.Unlock()
		return PlanStatus{}, ErrUnknownPlan
	}
	switch j.status.Status {
	case StatusQueued:
		s.finalizeLocked(j, StatusCancelled, "cancelled before start")
		st := j.status
		s.mu.Unlock()
		return st, nil
	case StatusRunning:
		cancel := j.cancel
		st := j.status
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return st, nil
	case StatusCancelled:
		st := j.status
		s.mu.Unlock()
		return st, ErrPlanCancelled
	default:
		st := j.status
		s.mu.Unlock()
		return st, ErrPlanFinished
	}
}

// List returns all retained plans in submission order.
func (s *Service) List() []PlanStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlanStatus, 0, len(s.order))
	for _, id := range s.order {
		if j := s.records[id]; j != nil {
			out = append(out, j.status)
		}
	}
	return out
}

// InvalidateService drops cached plans using the named service (see
// PlanCache.InvalidateService) and returns the count.
func (s *Service) InvalidateService(name string) int {
	n := s.cache.InvalidateService(name)
	if n > 0 {
		s.tel.Counter("planner.plan_cache.invalidations").Add(int64(n))
	}
	return n
}

// InvalidateCache empties the plan cache and returns the evicted count.
func (s *Service) InvalidateCache() int {
	n := s.cache.InvalidateAll()
	if n > 0 {
		s.tel.Counter("planner.plan_cache.invalidations").Add(int64(n))
	}
	return n
}

// Close stops accepting plans, cancels running ones, drains the queue
// (queued plans finalize as cancelled), and waits for the workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	var cancels []context.CancelFunc
	for _, j := range s.records {
		if j.status.Status == StatusRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	s.wg.Wait()
}

// ServiceStats is the planner block of /api/v1/stats.
type ServiceStats struct {
	Workers  int `json:"workers"`
	Queued   int `json:"queued"`
	InFlight int `json:"inFlight"`

	Submitted int64 `json:"submitted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	CacheHits          int64 `json:"cacheHits"`
	CacheMisses        int64 `json:"cacheMisses"`
	CacheInvalidations int64 `json:"cacheInvalidations"`
	CacheEntries       int   `json:"cacheEntries"`

	P50PlanSeconds float64 `json:"p50PlanSeconds"`
	P99PlanSeconds float64 `json:"p99PlanSeconds"`
}

// Stats snapshots the service counters and plan-latency quantiles (over a
// sliding window of the most recent plans).
func (s *Service) Stats() ServiceStats {
	hits, misses, invalidations := s.cache.Counters()
	s.mu.Lock()
	st := ServiceStats{
		Workers:            s.workers,
		Queued:             len(s.queue),
		InFlight:           s.inFlight,
		Submitted:          s.submitted,
		Succeeded:          s.succeeded,
		Failed:             s.failed,
		Cancelled:          s.cancelled,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheInvalidations: invalidations,
	}
	window := make([]float64, 0, s.latCount)
	window = append(window, s.latencies[:s.latCount]...)
	s.mu.Unlock()
	st.CacheEntries = s.cache.Len()
	if len(window) > 0 {
		sort.Float64s(window)
		st.P50PlanSeconds = window[len(window)/2]
		st.P99PlanSeconds = window[min(len(window)-1, len(window)*99/100)]
	}
	return st
}

// finalizeLocked moves a job to a terminal state, records latency, and
// applies the retention bound. Callers hold s.mu.
func (s *Service) finalizeLocked(j *planJob, status Status, errMsg string) {
	j.status.Status = status
	j.status.Error = errMsg
	j.status.Finished = time.Now()
	close(j.done)
	switch status {
	case StatusSucceeded:
		s.succeeded++
		s.tel.Counter("planner.service.succeeded").Inc()
	case StatusFailed:
		s.failed++
		s.tel.Counter("planner.service.failed").Inc()
	case StatusCancelled:
		s.cancelled++
		s.tel.Counter("planner.service.cancelled").Inc()
	}
	latency := j.status.Finished.Sub(j.status.Submitted).Seconds()
	s.latencies[s.latPos] = latency
	s.latPos = (s.latPos + 1) % len(s.latencies)
	if s.latCount < len(s.latencies) {
		s.latCount++
	}
	s.tel.Histogram("planner.service.plan_seconds",
		[]float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10}).Observe(latency)

	s.finished = append(s.finished, j.status.ID)
	for len(s.finished) > s.retain {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.records, evict)
		for i, id := range s.order {
			if id == evict {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// worker consumes queued plans until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one plan end to end.
func (s *Service) run(j *planJob) {
	s.mu.Lock()
	if j.status.Status != StatusQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	if s.closed {
		s.finalizeLocked(j, StatusCancelled, ErrServiceClosed.Error())
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.status.Status = StatusRunning
	j.status.Started = time.Now()
	s.inFlight++
	s.tel.Gauge("planner.service.in_flight").Set(float64(s.inFlight))
	s.mu.Unlock()
	defer cancel()

	res, pdlText, tree, err := s.compute(ctx, j)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.inFlight--
	s.tel.Gauge("planner.service.in_flight").Set(float64(s.inFlight))
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		s.finalizeLocked(j, StatusCancelled, "cancelled while running")
	case err != nil:
		s.finalizeLocked(j, StatusFailed, err.Error())
	default:
		j.status.PDL = pdlText
		j.status.Tree = tree.String()
		j.status.Eval = res.Best.Eval
		j.status.Evaluations = res.Evaluations
		j.status.Generations = len(res.History)
		j.status.Result = res
		if !j.spec.NoCache && !j.spec.TreeOnly {
			s.cache.Put(j.status.Key, PlanResult{
				PDL:      pdlText,
				Tree:     tree.String(),
				Eval:     res.Best.Eval,
				Services: tree.Services(),
			})
		}
		s.finalizeLocked(j, StatusSucceeded, "")
	}
}

// compute runs the GP for one job: catalog minus exclusions, neighborhood
// seeds for incremental re-plans, then RunContext, and (unless TreeOnly)
// the PDL conversion of the normalized best tree.
func (s *Service) compute(ctx context.Context, j *planJob) (*Result, string, *plantree.Node, error) {
	excluded := make(map[string]bool, len(j.spec.Excluded))
	for _, n := range j.spec.Excluded {
		excluded[n] = true
	}
	catalog := s.cfg.Catalog
	if len(excluded) > 0 {
		catalog = workflow.NewCatalog()
		for _, svc := range s.cfg.Catalog.Services() {
			if !excluded[svc.Name] {
				catalog.Add(svc)
			}
		}
	}
	problem := &workflow.Problem{
		Name:    "plan-" + j.status.ID,
		Initial: workflow.NewState(j.spec.Initial...),
		Goal:    workflow.NewGoal(j.spec.Goal...),
		Catalog: catalog,
	}
	gp, err := New(problem, j.params)
	if err != nil {
		return nil, "", nil, err
	}
	gp.SetTelemetry(s.tel)
	traceID := j.spec.TaskID
	if traceID == "" {
		traceID = j.status.ID
	}
	tr := s.tel.TaskTrace(traceID)
	gp.SetTrace(tr)
	// The plan span joins the caller's trace (via the propagated traceparent)
	// or the task trace's root; GP generation events nest under it.
	var planParent telemetry.SpanContext
	if sc, ok := telemetry.ParseTraceparent(j.spec.Traceparent); ok {
		planParent = sc
	}
	planSpan, endPlan := tr.Begin(planParent, "plan", j.status.ID)
	gp.SetTraceContext(planSpan)
	if j.spec.Failed != nil {
		// The neighborhood rng is derived from (not equal to) the run seed
		// so seeding does not replay the same stream the evolution uses.
		nrng := rand.New(rand.NewSource(j.params.Seed ^ 0x5eedf00d))
		k := max(1, j.params.PopulationSize/2)
		gp.Seed(Neighborhood(nrng, j.spec.Failed, excluded, s.cfg.Catalog, k, j.params.Smax)...)
	}
	gp.Seed(j.spec.Seeds...)
	res, err := gp.RunContext(ctx)
	if err != nil {
		endPlan("failed: " + err.Error())
		return nil, "", nil, err
	}
	endPlan(fmt.Sprintf("%d evaluations over %d generations", res.Evaluations, len(res.History)))
	tree := res.Best.Tree.Normalize()
	if j.spec.TreeOnly {
		return res, "", tree, nil
	}
	pd, err := plantree.ToProcess("planned", tree)
	if err != nil {
		return nil, "", nil, fmt.Errorf("planner: best tree does not convert: %w", err)
	}
	text, err := pdl.FormatProcess(pd)
	if err != nil {
		return nil, "", nil, err
	}
	return res, text, tree, nil
}

package planner

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workflow"
)

// caseInputs is one randomizable case description for the key-invariance
// property test.
func caseInputs() ([]*workflow.DataItem, []string, []string, []string) {
	initial := []*workflow.DataItem{
		workflow.NewDataItem("D1", "POD-Parameter"),
		workflow.NewDataItem("D2", "P3DR-Parameter"),
		workflow.NewDataItem("D5", "POR-Parameter"),
		workflow.NewDataItem("D7", "2D Image"),
	}
	goal := []string{
		`G.Classification = "Resolution File"`,
		`G.value > 8`,
	}
	constraints := []string{`C.cost < 100`, `C.time < 50`}
	excluded := []string{"POR", "PSF"}
	return initial, goal, constraints, excluded
}

// TestCanonicalKeyOrderInvariant is the cache-key property test: any
// permutation of the goal conditions, initial data items, constraints, or
// excluded services keys the same cache entry.
func TestCanonicalKeyOrderInvariant(t *testing.T) {
	p := DefaultParams()
	initial, goal, constraints, excluded := caseInputs()
	want := CanonicalKey(initial, goal, constraints, excluded, p)

	rng := rand.New(rand.NewSource(42))
	shuffle := func(n int, swap func(i, j int)) { rng.Shuffle(n, swap) }
	for trial := 0; trial < 50; trial++ {
		si, sg, sc, sx := caseInputs()
		shuffle(len(si), func(i, j int) { si[i], si[j] = si[j], si[i] })
		shuffle(len(sg), func(i, j int) { sg[i], sg[j] = sg[j], sg[i] })
		shuffle(len(sc), func(i, j int) { sc[i], sc[j] = sc[j], sc[i] })
		shuffle(len(sx), func(i, j int) { sx[i], sx[j] = sx[j], sx[i] })
		if got := CanonicalKey(si, sg, sc, sx, p); got != want {
			t.Fatalf("trial %d: permuted case keyed %s, want %s", trial, got, want)
		}
	}
}

// TestCanonicalKeyDistinguishesCases checks every semantic change to the
// case — or to a result-affecting parameter — produces a distinct key,
// while the execution-only EvalWorkers knob does not.
func TestCanonicalKeyDistinguishesCases(t *testing.T) {
	p := DefaultParams()
	initial, goal, constraints, excluded := caseInputs()
	base := CanonicalKey(initial, goal, constraints, excluded, p)

	variants := map[string]string{
		"dropped constraint": CanonicalKey(initial, goal, constraints[:1], excluded, p),
		"extra constraint":   CanonicalKey(initial, goal, append([]string{`C.mem < 4`}, constraints...), excluded, p),
		"different goal":     CanonicalKey(initial, []string{`G.Classification = "3D Model"`}, constraints, excluded, p),
		"fewer data items":   CanonicalKey(initial[:2], goal, constraints, excluded, p),
		"different excluded": CanonicalKey(initial, goal, constraints, []string{"POD"}, p),
		"no excluded":        CanonicalKey(initial, goal, constraints, nil, p),
	}
	seen := map[string]string{base: "base"}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}

	// Result-affecting parameters key fresh plans.
	seeded := p
	seeded.Seed = 99
	if CanonicalKey(initial, goal, constraints, excluded, seeded) == base {
		t.Error("changed Seed did not change the key")
	}
	bigger := p
	bigger.PopulationSize *= 2
	if CanonicalKey(initial, goal, constraints, excluded, bigger) == base {
		t.Error("changed PopulationSize did not change the key")
	}

	// EvalWorkers is execution-only: the planned result is bit-identical at
	// any worker count, so it must share the entry.
	par := p
	par.EvalWorkers = 8
	if CanonicalKey(initial, goal, constraints, excluded, par) != base {
		t.Error("EvalWorkers leaked into the cache key")
	}
}

func planFor(services ...string) PlanResult {
	return PlanResult{PDL: "BEGIN, X, END", Services: services}
}

func TestPlanCacheHitMissCounters(t *testing.T) {
	c := NewPlanCache(0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", planFor("POD"))
	if r, ok := c.Get("a"); !ok || r.PDL == "" {
		t.Fatalf("cached entry lost: %v %v", r, ok)
	}
	hits, misses, _ := c.Counters()
	if hits != 1 || misses != 1 {
		t.Errorf("counters = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestPlanCacheBounded(t *testing.T) {
	c := NewPlanCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%03d", i), planFor("POD"))
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("cache grew to %d entries past its limit of 8", n)
	}
	// The most recent entry survives the oldest-half trims.
	if _, ok := c.Get("k099"); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestPlanCacheInvalidateService(t *testing.T) {
	c := NewPlanCache(0)
	c.Put("uses-pod", planFor("POD", "PSF"))
	c.Put("uses-p3dr", planFor("P3DR", "PSF"))
	c.Put("uses-both", planFor("POD", "P3DR"))

	if n := c.InvalidateService("POD"); n != 2 {
		t.Fatalf("invalidated %d plans, want 2", n)
	}
	if _, ok := c.Get("uses-p3dr"); !ok {
		t.Error("unrelated plan dropped")
	}
	if _, ok := c.Get("uses-pod"); ok {
		t.Error("stale plan survived invalidation")
	}
	if n := c.InvalidateService("GHOST"); n != 0 {
		t.Errorf("ghost service invalidated %d plans", n)
	}
	if n := c.InvalidateAll(); n != 1 {
		t.Errorf("InvalidateAll dropped %d, want 1", n)
	}
	if c.Len() != 0 {
		t.Errorf("cache not empty after InvalidateAll: %d", c.Len())
	}
	_, _, invalidations := c.Counters()
	if invalidations != 3 {
		t.Errorf("invalidation counter = %d, want 3", invalidations)
	}
}

package planner

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plantree"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Individual is one member of the GP population.
type Individual struct {
	Tree *plantree.Node
	Eval Evaluation
}

// GenStats summarizes one generation for the experiment harness.
type GenStats struct {
	Generation  int
	BestFitness float64
	MeanFitness float64
	BestFV      float64
	BestFG      float64
	BestSize    int
}

// Result is the outcome of one GP run.
type Result struct {
	Best        Individual
	History     []GenStats
	Evaluations int // fitness evaluations actually computed (cache misses)

	// Stopped is set when StopOnPerfect ended the run before the full
	// generation budget; History then ends at the stopping generation.
	Stopped bool
}

// GP is the genetic planner. Create with New, run with RunContext.
type GP struct {
	problem  *workflow.Problem
	params   Params
	rng      *rand.Rand
	eval     *Evaluator
	services []string
	seeds    []*plantree.Node
	tel      *telemetry.Registry
	trace    *telemetry.TaskTrace
	traceCtx telemetry.SpanContext
}

// SetTelemetry wires a metrics registry: Run then counts generations,
// evaluations, and size-limit rejections, and gauges the latest best/mean
// fitness (see OBSERVABILITY.md). Call before Run; nil is a no-op.
func (gp *GP) SetTelemetry(r *telemetry.Registry) { gp.tel = r }

// SetTrace attaches a per-plan span trace: RunContext then records one
// "gp-generation" span per generation with the best/mean fitness and the
// evaluation count so far. Call before Run; nil is a no-op.
func (gp *GP) SetTrace(t *telemetry.TaskTrace) { gp.trace = t }

// SetTraceContext parents the gp-generation spans under the given span
// (typically the planner service's "plan" span), so GP progress nests
// correctly in the task's distributed trace. Call before Run.
func (gp *GP) SetTraceContext(sc telemetry.SpanContext) { gp.traceCtx = sc }

// Seed injects existing plan trees into the initial population (plan reuse:
// re-planning "adapts an existing process description to new conditions").
// Seeds larger than Smax or structurally invalid are ignored. Call before
// Run.
func (gp *GP) Seed(trees ...*plantree.Node) {
	for _, t := range trees {
		if t == nil || t.Validate(gp.params.Smax) != nil {
			continue
		}
		gp.seeds = append(gp.seeds, t.Clone())
	}
}

// New builds a GP planner for the problem.
func New(problem *workflow.Problem, params Params) (*GP, error) {
	ev, err := NewEvaluator(problem, params)
	if err != nil {
		return nil, err
	}
	return &GP{
		problem:  problem,
		params:   params,
		rng:      rand.New(rand.NewSource(params.Seed)),
		eval:     ev,
		services: problem.Catalog.Names(),
	}, nil
}

// Run executes the full GP procedure without cancellation support.
//
// Deprecated: use RunContext. Run survives as a thin wrapper for the
// experiment harness and older call sites.
func (gp *GP) Run() (*Result, error) { return gp.RunContext(context.Background()) }

// RunContext executes the procedure of Section 3.4.6: initialize, then for
// each generation evaluate, select, cross over, and mutate; finally return
// the highest-fitness plan seen in the last evaluated population. The
// context is checked between generations (and inside the evaluation
// fan-out), so a cancelled plan stops within one generation's work.
func (gp *GP) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pop := make([]Individual, gp.params.PopulationSize)
	for i := range pop {
		if i < len(gp.seeds) {
			pop[i].Tree = gp.seeds[i].Clone()
			continue
		}
		pop[i].Tree = plantree.Random(gp.rng, gp.services, gp.params.Smax)
	}

	res := &Result{}
	for gen := 0; gen <= gp.params.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		genStart := time.Now()
		gp.evaluateAll(ctx, pop)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats := summarize(gen, pop)
		res.History = append(res.History, stats)
		if tel := gp.tel; tel != nil {
			tel.Counter("planner.generations").Inc()
			tel.Gauge("planner.last.best_fitness").Set(stats.BestFitness)
			tel.Gauge("planner.last.mean_fitness").Set(stats.MeanFitness)
			tel.Histogram("planner.generation.best_fitness",
				[]float64{0.2, 0.4, 0.6, 0.8, 0.9, 1}).Observe(stats.BestFitness)
		}
		if gp.trace != nil {
			gp.trace.SpanUnder(gp.traceCtx, "gp-generation", fmt.Sprintf("gen-%d", gen),
				fmt.Sprintf("best=%.4f mean=%.4f size=%d evals=%d in %s",
					stats.BestFitness, stats.MeanFitness, stats.BestSize,
					gp.eval.Evaluations, time.Since(genStart).Round(time.Microsecond)))
		}
		if gp.params.StopOnPerfect && stats.BestFV >= 1 && stats.BestFG >= 1 {
			res.Stopped = gen < gp.params.Generations
			break
		}
		if gen == gp.params.Generations {
			break
		}
		elites := gp.takeElites(pop)
		pop = gp.selectPop(pop)
		gp.crossoverPop(pop)
		gp.mutatePop(pop)
		// Elites overwrite the tail slots, untouched by the operators.
		for i, e := range elites {
			pop[len(pop)-1-i] = e
		}
	}

	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.Eval.Fitness > best.Eval.Fitness {
			best = ind
		}
	}
	best.Tree = best.Tree.Clone()
	res.Best = best
	res.Evaluations = gp.eval.Evaluations
	if tel := gp.tel; tel != nil {
		tel.Counter("planner.runs").Inc()
		tel.Counter("planner.evaluations").Add(int64(res.Evaluations))
	}
	return res, nil
}

// evaluateAll scores the population, computing each distinct tree once and
// fanning the cache misses out over the available cores. Results are
// independent of evaluation order, so parallelism does not affect
// determinism.
// takeElites clones the top-k individuals of the evaluated population.
func (gp *GP) takeElites(pop []Individual) []Individual {
	k := gp.params.Elites
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return pop[idx[a]].Eval.Fitness > pop[idx[b]].Eval.Fitness
	})
	elites := make([]Individual, 0, k)
	for _, i := range idx[:k] {
		elites = append(elites, Individual{Tree: pop[i].Tree.Clone(), Eval: pop[i].Eval})
	}
	return elites
}

func (gp *GP) evaluateAll(ctx context.Context, pop []Individual) {
	keys := make([]string, len(pop))
	misses := make(map[string]*plantree.Node)
	var missKeys []string
	for i := range pop {
		k := pop[i].Tree.String()
		keys[i] = k
		if _, ok := gp.eval.cache[k]; ok {
			continue
		}
		if _, ok := misses[k]; !ok {
			misses[k] = pop[i].Tree
			missKeys = append(missKeys, k)
		}
	}

	results := make([]Evaluation, len(missKeys))
	workers := gp.evalWorkers(len(missKeys))
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(missKeys) {
						return
					}
					results[i] = gp.eval.evaluateOnly(misses[missKeys[i]])
				}
			}()
		}
		wg.Wait()
	} else {
		for i, k := range missKeys {
			if ctx.Err() != nil {
				break
			}
			results[i] = gp.eval.evaluateOnly(misses[k])
		}
	}
	if ctx.Err() != nil {
		// Cancelled mid-generation: results are partial; the caller returns
		// ctx.Err() before reading them, so skip the cache fill entirely.
		return
	}
	gp.eval.Evaluations += len(missKeys)
	for i, k := range missKeys {
		gp.eval.cacheAdd(k, results[i])
	}
	for i := range pop {
		e, ok := gp.eval.cache[keys[i]]
		if !ok {
			// Only possible right after a cache trim evicted a prior hit.
			e = gp.eval.Evaluate(pop[i].Tree)
		}
		pop[i].Eval = e
	}
}

// evalWorkers sizes the evaluation pool: the explicit Params.EvalWorkers
// if set, otherwise GOMAXPROCS, clamped to the number of cache misses.
func (gp *GP) evalWorkers(n int) int {
	w := gp.params.EvalWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return max(w, 1)
}

func summarize(gen int, pop []Individual) GenStats {
	best := pop[0]
	sum := 0.0
	for _, ind := range pop {
		sum += ind.Eval.Fitness
		if ind.Eval.Fitness > best.Eval.Fitness {
			best = ind
		}
	}
	return GenStats{
		Generation:  gen,
		BestFitness: best.Eval.Fitness,
		MeanFitness: sum / float64(len(pop)),
		BestFV:      best.Eval.FV,
		BestFG:      best.Eval.FG,
		BestSize:    best.Eval.Size,
	}
}

// selectPop forms the next generation (Section 3.4.5).
func (gp *GP) selectPop(pop []Individual) []Individual {
	next := make([]Individual, len(pop))
	switch gp.params.Selection {
	case SelectRoulette:
		total := 0.0
		for _, ind := range pop {
			total += ind.Eval.Fitness
		}
		for i := range next {
			pick := pop[len(pop)-1]
			if total > 0 {
				r := gp.rng.Float64() * total
				acc := 0.0
				for _, ind := range pop {
					acc += ind.Eval.Fitness
					if acc >= r {
						pick = ind
						break
					}
				}
			} else {
				pick = pop[gp.rng.Intn(len(pop))]
			}
			next[i] = Individual{Tree: pick.Tree.Clone(), Eval: pick.Eval}
		}
	default: // tournament
		k := gp.params.TournamentSize
		for i := range next {
			winner := pop[gp.rng.Intn(len(pop))]
			for j := 1; j < k; j++ {
				challenger := pop[gp.rng.Intn(len(pop))]
				if challenger.Eval.Fitness > winner.Eval.Fitness {
					winner = challenger
				}
			}
			next[i] = Individual{Tree: winner.Tree.Clone(), Eval: winner.Eval}
		}
	}
	return next
}

func (gp *GP) crossoverPop(pop []Individual) {
	for i := 0; i+1 < len(pop); i += 2 {
		if gp.rng.Float64() >= gp.params.CrossoverRate {
			continue
		}
		if !Crossover(gp.rng, pop[i].Tree, pop[i+1].Tree, gp.params.Smax) {
			gp.tel.Counter("planner.crossover.size_rejections").Inc()
		}
	}
}

func (gp *GP) mutatePop(pop []Individual) {
	for i := range pop {
		Mutate(gp.rng, pop[i].Tree, gp.services, gp.params.MutationRate, gp.params.Smax)
	}
}

// Crossover performs the subtree exchange of Figure 8 on two trees in
// place: a random node is chosen in each parent and the subtrees rooted
// there are swapped. If either offspring would exceed smax the crossover
// fails and both parents are left unchanged. It reports whether the swap
// happened.
//
// If a chosen node is a root, the root's content is swapped in place (the
// caller keeps stable tree pointers).
func Crossover(rng *rand.Rand, a, b *plantree.Node, smax int) bool {
	locA := a.At(rng.Intn(a.Size()))
	locB := b.At(rng.Intn(b.Size()))
	sizeA, sizeB := locA.Node.Size(), locB.Node.Size()
	newASize := a.Size() - sizeA + sizeB
	newBSize := b.Size() - sizeB + sizeA
	if newASize > smax || newBSize > smax {
		return false
	}
	swapContent(locA.Node, locB.Node)
	return true
}

// swapContent exchanges the payload of two nodes (kind, service, children,
// condition), which swaps the subtrees while keeping the two node addresses
// stable — this uniformly handles root selection.
func swapContent(x, y *plantree.Node) {
	*x, *y = *y, *x
}

// Mutate performs the mutation of Figure 9 in place: every node is selected
// with probability rate; a selected node's subtree is replaced by a freshly
// generated random tree. A replacement that would push the tree past smax
// is skipped. It returns the number of mutations applied.
func Mutate(rng *rand.Rand, tree *plantree.Node, services []string, rate float64, smax int) int {
	if rate <= 0 {
		return 0
	}
	applied := 0
	// Collect nodes first; mutating while walking would visit fresh nodes.
	for _, loc := range tree.Nodes() {
		if rng.Float64() >= rate {
			continue
		}
		budget := smax - (tree.Size() - loc.Node.Size())
		if budget < 1 {
			continue
		}
		repl := plantree.Random(rng, services, budget)
		*loc.Node = *repl
		applied++
	}
	return applied
}

// serviceSignature renders a service's pre/postconditions order-invariantly
// so drop-in replacements (same contract, different provider) compare equal.
func serviceSignature(s *workflow.Service) string {
	ins := make([]string, len(s.Inputs))
	for i := range s.Inputs {
		ins[i] = s.Inputs[i].Name + ":" + s.Inputs[i].Condition
	}
	sort.Strings(ins)
	outs := make([]string, len(s.Outputs))
	for i, out := range s.Outputs {
		props := make([]string, 0, len(out.Props))
		for k, v := range out.Props {
			props = append(props, k+"="+v.Str())
		}
		sort.Strings(props)
		outs[i] = out.Name + "{" + strings.Join(props, ",") + "}"
	}
	sort.Strings(outs)
	return strings.Join(ins, ";") + "|" + strings.Join(outs, ";")
}

// Neighborhood derives population seeds from a failed plan for incremental
// re-planning (Figure 3): the failed tree with excluded leaves rewritten —
// preferring a drop-in replacement with the same pre/postconditions (the
// paper's "adapt an existing process description to new conditions"),
// falling back to a random usable service — plus mutated variants of the
// adapted tree, up to k seeds. The catalog is the full service set; the
// excluded services' signatures are looked up there. The returned trees all
// validate against smax; nil when no usable adaptation exists.
func Neighborhood(rng *rand.Rand, failed *plantree.Node, excluded map[string]bool, catalog *workflow.Catalog, k, smax int) []*plantree.Node {
	if failed == nil || catalog == nil || k < 1 {
		return nil
	}
	var usable []string
	for _, name := range catalog.Names() {
		if !excluded[name] {
			usable = append(usable, name)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	// One replacement per excluded service, so every leaf that ran it is
	// rewritten coherently.
	replacement := map[string]string{}
	replaceFor := func(name string) string {
		if r, ok := replacement[name]; ok {
			return r
		}
		r := ""
		if dead := catalog.Get(name); dead != nil {
			want := serviceSignature(dead)
			for _, cand := range usable {
				if svc := catalog.Get(cand); svc != nil && serviceSignature(svc) == want {
					r = cand
					break
				}
			}
		}
		if r == "" {
			r = usable[rng.Intn(len(usable))]
		}
		replacement[name] = r
		return r
	}
	base := failed.Clone()
	for _, leaf := range base.Leaves() {
		if excluded[leaf.Service] {
			leaf.Service = replaceFor(leaf.Service)
			leaf.Name = ""
		}
	}
	if base.Validate(smax) != nil {
		return nil
	}
	seeds := []*plantree.Node{base}
	// The variants explore around the adapted plan at a heavier mutation
	// rate than evolution uses, so the seeded population is diverse enough
	// to escape a locally-broken structure.
	const neighborRate = 0.15
	for len(seeds) < k {
		m := base.Clone()
		Mutate(rng, m, usable, neighborRate, smax)
		seeds = append(seeds, m)
	}
	return seeds
}

// RunMany performs n independent GP runs with seeds seed, seed+1, ... and
// returns the per-run results, reproducing the paper's 10-run protocol.
//
// Deprecated: use RunManyContext, which runs the same protocol through the
// planning service (parallel across runs) and supports cancellation.
func RunMany(problem *workflow.Problem, params Params, n int) ([]*Result, error) {
	return RunManyContext(context.Background(), problem, params, n)
}

// RunManyContext performs n independent GP runs with seeds seed, seed+1,
// ... through an ephemeral planning service, so independent runs execute
// across the service worker pool, and returns the per-run results in run
// order. Plan caching is disabled: every run is a cold plan.
func RunManyContext(ctx context.Context, problem *workflow.Problem, params Params, n int) ([]*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("planner: RunMany with n=%d", n)
	}
	if err := problem.Validate(); err != nil {
		return nil, err
	}
	svc, err := NewService(ServiceConfig{Catalog: problem.Catalog, Params: params})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	ids := make([]string, n)
	for i := range ids {
		p := params
		p.Seed = params.Seed + int64(i)
		st, err := svc.Submit(ctx, PlanSpec{
			ID:       fmt.Sprintf("run-%d", i),
			Initial:  problem.Initial.Items(),
			Goal:     problem.Goal.Conditions,
			Params:   &p,
			NoCache:  true,
			TreeOnly: true,
		})
		if err != nil {
			return nil, err
		}
		ids[i] = st.ID
	}
	results := make([]*Result, n)
	for i, id := range ids {
		st, err := svc.Wait(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Status != StatusSucceeded || st.Result == nil {
			return nil, fmt.Errorf("planner: run %d %s: %s", i, st.Status, st.Error)
		}
		results[i] = st.Result
	}
	return results, nil
}

// Summary aggregates the best solutions of multiple runs: the averages
// reported in Table 2.
type Summary struct {
	Runs            int
	AvgFitness      float64
	AvgValidity     float64 // fv
	AvgGoalFitness  float64 // fg
	AvgSize         float64
	MinFitness      float64
	MaxFitness      float64
	PerfectValidity int // runs reaching fv = 1
	PerfectGoal     int // runs reaching fg = 1
}

// Summarize computes the Table 2 aggregate over run results.
func Summarize(results []*Result) Summary {
	s := Summary{Runs: len(results)}
	if len(results) == 0 {
		return s
	}
	fits := make([]float64, len(results))
	for i, r := range results {
		e := r.Best.Eval
		fits[i] = e.Fitness
		s.AvgFitness += e.Fitness
		s.AvgValidity += e.FV
		s.AvgGoalFitness += e.FG
		s.AvgSize += float64(e.Size)
		if e.FV >= 1 {
			s.PerfectValidity++
		}
		if e.FG >= 1 {
			s.PerfectGoal++
		}
	}
	n := float64(len(results))
	s.AvgFitness /= n
	s.AvgValidity /= n
	s.AvgGoalFitness /= n
	s.AvgSize /= n
	sort.Float64s(fits)
	s.MinFitness = fits[0]
	s.MaxFitness = fits[len(fits)-1]
	return s
}

package planner

import (
	"context"
	"testing"

	"repro/internal/plantree"
)

// seqOfSize returns a distinct tree per n (a sequence of n POD activities),
// so each has a unique cache key.
func seqOfSize(n int) *plantree.Node {
	children := make([]*plantree.Node, n)
	for i := range children {
		children[i] = plantree.Activity("POD")
	}
	return plantree.Seq(children...)
}

// TestEvaluateCacheTrimKeepsRecent pins the eviction policy on the Evaluate
// path: overflowing the cache drops the oldest half, so a recently scored
// tree is still a hit afterwards. The old behavior wiped the whole map,
// turning every post-overflow lookup into a recomputation.
func TestEvaluateCacheTrimKeepsRecent(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	ev.cacheLimit = 4

	for i := 1; i <= 5; i++ {
		ev.Evaluate(seqOfSize(i))
	}
	if ev.Evaluations != 5 {
		t.Fatalf("Evaluations = %d after 5 distinct trees, want 5", ev.Evaluations)
	}
	if len(ev.cache) > ev.cacheLimit {
		t.Fatalf("cache size %d exceeds limit %d after trim", len(ev.cache), ev.cacheLimit)
	}
	if len(ev.cache) != len(ev.order) {
		t.Fatalf("cache size %d != order length %d", len(ev.cache), len(ev.order))
	}

	// The newest tree survived the trim; the oldest was evicted.
	ev.Evaluate(seqOfSize(5))
	if ev.Evaluations != 5 {
		t.Errorf("recent tree recomputed: Evaluations = %d, want 5", ev.Evaluations)
	}
	ev.Evaluate(seqOfSize(1))
	if ev.Evaluations != 6 {
		t.Errorf("evicted tree not recomputed: Evaluations = %d, want 6", ev.Evaluations)
	}
}

// TestEvaluateAllCacheTrimKeepsWorkingSet is the generation-scale regression
// for the same bug on the batch path: once the cache outgrows the limit
// mid-generation, re-scoring the very same population must be free — the
// current working set survives the trim. Before the fix the overflow wiped
// the map mid-batch, so the repeat call re-evaluated most of the population.
func TestEvaluateAllCacheTrimKeepsWorkingSet(t *testing.T) {
	gp, err := New(testProblem(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gp.eval.cacheLimit = 16

	pop := func(lo, hi int) []Individual {
		var out []Individual
		for i := lo; i <= hi; i++ {
			out = append(out, Individual{Tree: seqOfSize(i)})
		}
		return out
	}

	gp.evaluateAll(context.Background(), pop(1, 10))
	if gp.eval.Evaluations != 10 {
		t.Fatalf("Evaluations = %d after first generation, want 10", gp.eval.Evaluations)
	}

	// The second generation pushes the cache past the limit (20 distinct
	// trees against a limit of 16), forcing a trim mid-batch.
	second := pop(11, 20)
	gp.evaluateAll(context.Background(), second)
	if gp.eval.Evaluations != 20 {
		t.Fatalf("Evaluations = %d after second generation, want 20", gp.eval.Evaluations)
	}
	if len(gp.eval.cache) > gp.eval.cacheLimit {
		t.Fatalf("cache size %d exceeds limit %d", len(gp.eval.cache), gp.eval.cacheLimit)
	}

	// Re-scoring the identical population: every tree was added after the
	// trim, so the repeat must be all cache hits.
	gp.evaluateAll(context.Background(), second)
	if gp.eval.Evaluations != 20 {
		t.Errorf("repeat evaluateAll recomputed trees: Evaluations = %d, want 20", gp.eval.Evaluations)
	}
}

package planner

import (
	"repro/internal/expr"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

// Evaluation is the fitness breakdown of one plan (Section 3.4.4).
type Evaluation struct {
	Fitness float64 // f  = wv*fv + wg*fg + wr*fr     (Equation 4)
	FV      float64 // fv = valid / executed          (Equation 1)
	FG      float64 // fg = goals met / goals, flow-averaged (Equation 2)
	FR      float64 // fr = 1 - size/Smax             (Equation 3)
	Size    int
	Flows   int // number of execution flows enumerated

	// Cost and Time are the flow-averaged nominal resource cost and run
	// time of the plan's valid activities, the quantities the MaxCost /
	// MaxTime constraint caps compare against.
	Cost float64
	Time float64
}

// defaultCacheLimit bounds the evaluation cache across long sweeps; past it,
// the oldest half of the entries is evicted.
const defaultCacheLimit = 1 << 17

// Evaluator scores plan trees against a planning problem. It caches
// per-tree results (selection duplicates individuals heavily) and
// pre-compiles the goal conditions.
type Evaluator struct {
	problem *workflow.Problem
	params  Params
	goals   []expr.Node
	cache   map[string]Evaluation
	// order lists the cached keys in insertion order, so trimming can evict
	// the oldest half instead of wiping the whole cache (a full wipe forces
	// the next generation to re-evaluate its entire population).
	order      []string
	cacheLimit int

	// Evaluations counts cache-missing evaluations performed.
	Evaluations int
}

// NewEvaluator builds an evaluator for the problem.
func NewEvaluator(problem *workflow.Problem, params Params) (*Evaluator, error) {
	if err := problem.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ev := &Evaluator{
		problem:    problem,
		params:     params,
		cache:      make(map[string]Evaluation),
		cacheLimit: defaultCacheLimit,
	}
	for _, c := range problem.Goal.Conditions {
		n, err := expr.Parse(c)
		if err != nil {
			return nil, err
		}
		ev.goals = append(ev.goals, n)
	}
	return ev, nil
}

// decisionPoint is one selective or iterative node, whose flow choice is
// enumerated.
type decisionPoint struct {
	node   *plantree.Node
	domain int // selective: child count; iterative: MaxLoopUnroll
}

// Evaluate scores the tree.
func (ev *Evaluator) Evaluate(tree *plantree.Node) Evaluation {
	key := tree.String()
	if e, ok := ev.cache[key]; ok {
		return e
	}
	e := ev.evaluateOnly(tree)
	ev.Evaluations++
	ev.cacheAdd(key, e)
	return e
}

// cacheAdd stores one result and trims the cache if it outgrew the limit.
func (ev *Evaluator) cacheAdd(key string, e Evaluation) {
	if _, dup := ev.cache[key]; !dup {
		ev.order = append(ev.order, key)
	}
	ev.cache[key] = e
	ev.trimCache()
}

// trimCache evicts the oldest half of the cache once it exceeds the limit,
// keeping the entries most likely to repeat (selection duplicates recent
// individuals, not ancient ones).
func (ev *Evaluator) trimCache() {
	if len(ev.cache) <= ev.cacheLimit {
		return
	}
	drop := len(ev.order) / 2
	for _, k := range ev.order[:drop] {
		delete(ev.cache, k)
	}
	n := copy(ev.order, ev.order[drop:])
	ev.order = ev.order[:n]
}

// evaluateOnly computes the fitness without touching the cache or the
// evaluation counter; it is safe to call from multiple goroutines
// concurrently (the problem and params are read-only).
func (ev *Evaluator) evaluateOnly(tree *plantree.Node) Evaluation {
	size := tree.Size()
	fr := 1 - float64(size)/float64(ev.params.Smax)
	if fr < 0 {
		fr = 0
	}

	// Collect decision points in pre-order.
	var points []decisionPoint
	for _, loc := range tree.Nodes() {
		switch loc.Node.Kind {
		case plantree.KindSelective:
			if len(loc.Node.Children) > 1 {
				points = append(points, decisionPoint{loc.Node, len(loc.Node.Children)})
			}
		case plantree.KindIterative:
			if ev.params.MaxLoopUnroll > 1 {
				points = append(points, decisionPoint{loc.Node, ev.params.MaxLoopUnroll})
			}
		case plantree.KindConcurrent:
			// Concurrent children may run in any order; enumerating the
			// forward and reverse orders catches most order dependencies.
			if ev.params.StrictConcurrency && len(loc.Node.Children) > 1 {
				points = append(points, decisionPoint{loc.Node, 2})
			}
		}
	}

	decisions := make(map[*plantree.Node]int, len(points))
	odometer := make([]int, len(points))
	totalValid, totalExecuted := 0, 0
	goalSum, costSum, timeSum := 0.0, 0.0, 0.0
	flows := 0
	initial := workflow.ItemList(ev.problem.Initial.Items())
	for {
		for i, p := range points {
			decisions[p.node] = odometer[i]
		}
		sim := flowSim{ev: ev, decisions: decisions}
		items := sim.run(tree, initial)
		totalValid += sim.valid
		totalExecuted += sim.executed
		goalSum += ev.goalFitness(items)
		costSum += sim.cost
		timeSum += sim.time
		flows++
		if flows >= ev.params.MaxFlows || !advance(odometer, points) {
			break
		}
	}

	fv := 1.0
	if totalExecuted > 0 {
		fv = float64(totalValid) / float64(totalExecuted)
	}
	fg := goalSum / float64(flows)
	cost := costSum / float64(flows)
	nomTime := timeSum / float64(flows)
	// Budget/deadline constraints scale only the resource-preference slice
	// (wr*fr) of the fitness: over-cap plans lose preference proportionally
	// to how far they overshoot, but the validity and goal terms are never
	// discounted — a constraint must steer the search among enactable plans,
	// not make an invalid plan outrank a valid one.
	penalty := 1.0
	if ev.params.MaxCost > 0 && cost > ev.params.MaxCost {
		penalty *= ev.params.MaxCost / cost
	}
	if ev.params.MaxTime > 0 && nomTime > ev.params.MaxTime {
		penalty *= ev.params.MaxTime / nomTime
	}
	f := ev.params.WV*fv + ev.params.WG*fg + ev.params.WR*fr*penalty
	return Evaluation{Fitness: f, FV: fv, FG: fg, FR: fr, Size: size, Flows: flows, Cost: cost, Time: nomTime}
}

// advance increments the odometer; it reports false on wrap-around.
func advance(odometer []int, points []decisionPoint) bool {
	for i := len(odometer) - 1; i >= 0; i-- {
		odometer[i]++
		if odometer[i] < points[i].domain {
			return true
		}
		odometer[i] = 0
	}
	return false
}

// goalFitness evaluates Equation 2 with the pre-compiled goal conditions: a
// condition is met if some data item, bound to the formal object G,
// satisfies it.
func (ev *Evaluator) goalFitness(items workflow.ItemList) float64 {
	if len(ev.goals) == 0 {
		return 1
	}
	met := 0
	formals := map[string]*workflow.DataItem{}
	b := workflow.Binding{Formals: formals, Base: items}
	for _, g := range ev.goals {
		for _, it := range items {
			formals["G"] = it
			if g.Eval(b) {
				met++
				break
			}
		}
	}
	return float64(met) / float64(len(ev.goals))
}

// flowSim simulates one execution flow of a plan (the validity simulation of
// Section 3.4.4): activities apply their service's pre- and postconditions
// to the metadata state; invalid activities count against fv and leave the
// state unchanged. The state is an append-only item list, so flows are
// cheap: no cloning, only appends.
type flowSim struct {
	ev        *Evaluator
	decisions map[*plantree.Node]int
	valid     int
	executed  int
	seq       int
	cost      float64 // nominal resource cost of valid activities
	time      float64 // nominal run time of valid activities
}

func (fs *flowSim) run(n *plantree.Node, items workflow.ItemList) workflow.ItemList {
	switch n.Kind {
	case plantree.KindActivity:
		fs.executed++
		svc := fs.ev.problem.Catalog.Get(n.Service)
		if svc == nil {
			return items // unknown service: invalid activity
		}
		if _, ok := svc.BindItems(items); !ok {
			return items
		}
		fs.valid++
		fs.seq++
		fs.cost += svc.Cost
		fs.time += svc.BaseTime
		return append(items, svc.Produce(nil, fs.seq)...)

	case plantree.KindSequential:
		for _, c := range n.Children {
			items = fs.run(c, items)
		}
		return items

	case plantree.KindConcurrent:
		// Decision 0 runs the children left to right, decision 1 right to
		// left (StrictConcurrency); without strict mode only order 0 exists.
		if fs.decisions[n] == 1 {
			for i := len(n.Children) - 1; i >= 0; i-- {
				items = fs.run(n.Children[i], items)
			}
			return items
		}
		for _, c := range n.Children {
			items = fs.run(c, items)
		}
		return items

	case plantree.KindSelective:
		if len(n.Children) == 0 {
			return items
		}
		pick := fs.decisions[n]
		if pick >= len(n.Children) {
			pick = 0
		}
		return fs.run(n.Children[pick], items)

	case plantree.KindIterative:
		iters := fs.decisions[n] + 1 // decision d means d+1 iterations
		for i := 0; i < iters; i++ {
			for _, c := range n.Children {
				items = fs.run(c, items)
			}
		}
		return items
	}
	return items
}

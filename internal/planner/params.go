// Package planner implements the paper's planning service: the GP-based
// planner of Section 3.4 (tree-encoded plans, subtree crossover and
// mutation, tournament selection, and the three-part fitness of Equations
// 1-4), plus the deterministic baselines used for comparison benches
// (forward state-space search and random search).
package planner

import "fmt"

// SelectionScheme picks how the next generation is formed.
type SelectionScheme int

// Selection schemes. The paper uses binary tournament; roulette is kept for
// the ablation benches.
const (
	SelectTournament SelectionScheme = iota
	SelectRoulette
)

func (s SelectionScheme) String() string {
	switch s {
	case SelectTournament:
		return "tournament"
	case SelectRoulette:
		return "roulette"
	}
	return fmt.Sprintf("SelectionScheme(%d)", int(s))
}

// Params are the GP settings. DefaultParams returns the paper's Table 1.
type Params struct {
	PopulationSize int
	Generations    int
	CrossoverRate  float64
	MutationRate   float64 // per-node probability
	Smax           int     // plan-tree size limit
	WV, WG, WR     float64 // fitness weights (wv + wg + wr = 1)

	// MaxCost and MaxTime fold enactment constraints into the plan fitness
	// (budget- and deadline-constrained re-planning): a plan whose nominal
	// resource cost (sum of service Cost over valid activities) or nominal
	// run time (sum of BaseTime) exceeds the cap has its fitness scaled by
	// cap/actual, so cheaper/shorter plans dominate the population. 0 means
	// unconstrained.
	MaxCost float64
	MaxTime float64

	// TournamentSize is the number of individuals compared per selection
	// (the paper uses 2).
	TournamentSize int
	Selection      SelectionScheme

	// Elites preserves the top-k individuals unchanged into the next
	// generation (0 reproduces the paper exactly: selection only, so even
	// the best plan can be destroyed by crossover or mutation). The
	// planning service benefits from 1 when reusing seeded plans.
	Elites int

	// MaxLoopUnroll bounds how many iterations of an iterative node the
	// fitness simulation enumerates (the paper enumerates "each possible
	// flow"; loops make that unbounded, so we consider 1..MaxLoopUnroll
	// iterations).
	MaxLoopUnroll int
	// MaxFlows caps the number of enumerated execution flows per plan; the
	// enumeration is truncated in lexicographic decision order beyond it.
	MaxFlows int

	// StrictConcurrency makes the simulation enumerate both the forward and
	// the reverse child order of every concurrent node, so a plan whose
	// "concurrent" activities only work in one order is penalized (the
	// paper's concurrent blocks may execute in any order). Disabling it
	// simulates only the canonical left-to-right order.
	StrictConcurrency bool

	Seed int64

	// EvalWorkers caps the fitness-evaluation worker pool used per
	// generation (population members are independent, so they score in
	// parallel). 0 sizes the pool from GOMAXPROCS — or from the planning
	// service's fair share of it when the run goes through planner.Service.
	// Execution-only: the planned result is bit-identical at any worker
	// count, so EvalWorkers is excluded from the plan-cache key.
	EvalWorkers int

	// StopOnPerfect ends a run as soon as the generation's best individual
	// reaches perfect validity and goal fitness (fv = fg = 1) — there is
	// nothing left for later generations to improve except resource cost.
	// Incremental re-planning budgets rely on it.
	StopOnPerfect bool
}

// DefaultParams returns the settings of Table 1: population 200, 20
// generations, crossover 0.7, mutation 0.001, Smax 40, wv 0.2, wg 0.5 (and
// therefore wr 0.3).
func DefaultParams() Params {
	return Params{
		PopulationSize:    200,
		Generations:       20,
		CrossoverRate:     0.7,
		MutationRate:      0.001,
		Smax:              40,
		WV:                0.2,
		WG:                0.5,
		WR:                0.3,
		TournamentSize:    2,
		Selection:         SelectTournament,
		MaxLoopUnroll:     2,
		MaxFlows:          32,
		StrictConcurrency: true,
		Seed:              1,
	}
}

// Incremental derives the reduced re-planning budget from p: a quarter of
// the population (floor 16) for a quarter of the generations (floor 3),
// at least one elite slot so the adapted failed plan survives selection,
// and early stop on the first perfect plan. Re-plans seeded from the
// failed plan's neighborhood start close to a solution, so they converge
// in a fraction of the cold-plan budget (the <10%-of-cold target).
func (p Params) Incremental() Params {
	p.PopulationSize = max(16, p.PopulationSize/4)
	p.Generations = max(3, p.Generations/4)
	if p.Elites < 1 || p.Elites >= p.PopulationSize {
		p.Elites = 1
	}
	p.StopOnPerfect = true
	return p
}

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.PopulationSize < 2 {
		return fmt.Errorf("planner: population size %d < 2", p.PopulationSize)
	}
	if p.Generations < 1 {
		return fmt.Errorf("planner: generations %d < 1", p.Generations)
	}
	if p.CrossoverRate < 0 || p.CrossoverRate > 1 {
		return fmt.Errorf("planner: crossover rate %g out of [0,1]", p.CrossoverRate)
	}
	if p.MutationRate < 0 || p.MutationRate > 1 {
		return fmt.Errorf("planner: mutation rate %g out of [0,1]", p.MutationRate)
	}
	if p.Smax < 1 {
		return fmt.Errorf("planner: Smax %d < 1", p.Smax)
	}
	if w := p.WV + p.WG + p.WR; w < 0.999 || w > 1.001 {
		return fmt.Errorf("planner: fitness weights sum to %g, want 1", w)
	}
	if p.TournamentSize < 1 {
		return fmt.Errorf("planner: tournament size %d < 1", p.TournamentSize)
	}
	if p.Elites < 0 || p.Elites >= p.PopulationSize {
		return fmt.Errorf("planner: elites %d out of [0, population)", p.Elites)
	}
	if p.MaxLoopUnroll < 1 {
		return fmt.Errorf("planner: loop unroll %d < 1", p.MaxLoopUnroll)
	}
	if p.MaxFlows < 1 {
		return fmt.Errorf("planner: max flows %d < 1", p.MaxFlows)
	}
	if p.EvalWorkers < 0 {
		return fmt.Errorf("planner: eval workers %d < 0", p.EvalWorkers)
	}
	if p.MaxCost < 0 || p.MaxTime < 0 {
		return fmt.Errorf("planner: negative constraint caps (maxCost %g, maxTime %g)", p.MaxCost, p.MaxTime)
	}
	return nil
}

package planner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

// testProblem builds the case-study planning problem: initial parameters
// plus a 2D image; the goal is a resolution file. The minimal plan is
// POD; P3DR; P3DR; PSF (PSF correlates two distinct 3D models).
func testProblem() *workflow.Problem {
	pod := &workflow.Service{
		Name: "POD",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "POD-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
		},
		Outputs: []workflow.OutputSpec{
			{Name: "C", Props: map[string]expr.Value{workflow.PropClassification: expr.String("Orientation File")}},
		},
	}
	p3dr := &workflow.Service{
		Name: "P3DR",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "P3DR-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
			{Name: "C", Condition: `C.Classification = "Orientation File"`},
		},
		Outputs: []workflow.OutputSpec{
			{Name: "D", Props: map[string]expr.Value{workflow.PropClassification: expr.String("3D Model")}},
		},
	}
	por := &workflow.Service{
		Name: "POR",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "POR-Parameter"`},
			{Name: "B", Condition: `B.Classification = "2D Image"`},
			{Name: "C", Condition: `C.Classification = "Orientation File"`},
			{Name: "D", Condition: `D.Classification = "3D Model"`},
		},
		Outputs: []workflow.OutputSpec{
			{Name: "E", Props: map[string]expr.Value{workflow.PropClassification: expr.String("Orientation File")}},
		},
	}
	psf := &workflow.Service{
		Name: "PSF",
		Inputs: []workflow.ParamSpec{
			{Name: "A", Condition: `A.Classification = "PSF-Parameter"`},
			{Name: "B", Condition: `B.Classification = "3D Model"`},
			{Name: "C", Condition: `C.Classification = "3D Model"`},
		},
		Outputs: []workflow.OutputSpec{
			{Name: "D", Props: map[string]expr.Value{workflow.PropClassification: expr.String("Resolution File")}},
		},
	}
	return &workflow.Problem{
		Name: "3DSD",
		Initial: workflow.NewState(
			workflow.NewDataItem("D1", "POD-Parameter"),
			workflow.NewDataItem("D2", "P3DR-Parameter"),
			workflow.NewDataItem("D5", "POR-Parameter"),
			workflow.NewDataItem("D6", "PSF-Parameter"),
			workflow.NewDataItem("D7", "2D Image"),
		),
		Goal:    workflow.NewGoal(`G.Classification = "Resolution File"`),
		Catalog: workflow.NewCatalog(pod, p3dr, por, psf),
	}
}

func perfectPlan() *plantree.Node {
	return plantree.Seq(
		plantree.Activity("POD"),
		plantree.Activity("P3DR"),
		plantree.Activity("P3DR"),
		plantree.Activity("PSF"),
	)
}

func mustEvaluator(t *testing.T, p Params) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(testProblem(), p)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.PopulationSize != 200 || p.Generations != 20 || p.CrossoverRate != 0.7 ||
		p.MutationRate != 0.001 || p.Smax != 40 || p.WV != 0.2 || p.WG != 0.5 || p.WR != 0.3 {
		t.Errorf("DefaultParams = %+v, want Table 1 settings", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.PopulationSize = 1 },
		func(p *Params) { p.Generations = 0 },
		func(p *Params) { p.CrossoverRate = 1.5 },
		func(p *Params) { p.MutationRate = -1 },
		func(p *Params) { p.Smax = 0 },
		func(p *Params) { p.WV = 0.9 },
		func(p *Params) { p.TournamentSize = 0 },
		func(p *Params) { p.MaxLoopUnroll = 0 },
		func(p *Params) { p.MaxFlows = 0 },
	}
	for i, m := range mutations {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEvaluatePerfectPlan(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	e := ev.Evaluate(perfectPlan())
	if e.FV != 1 || e.FG != 1 {
		t.Fatalf("perfect plan: fv=%g fg=%g, want 1,1", e.FV, e.FG)
	}
	if e.Size != 5 {
		t.Fatalf("size = %d, want 5", e.Size)
	}
	wantFR := 1 - 5.0/40
	if !almost(e.FR, wantFR) {
		t.Errorf("fr = %g, want %g", e.FR, wantFR)
	}
	want := 0.2*1 + 0.5*1 + 0.3*wantFR
	if !almost(e.Fitness, want) {
		t.Errorf("fitness = %g, want %g", e.Fitness, want)
	}
	if e.Flows != 1 {
		t.Errorf("flows = %d, want 1 (no decision points)", e.Flows)
	}
}

func TestEvaluateInvalidPlan(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	// PSF alone: preconditions unmet, goal unmet.
	e := ev.Evaluate(plantree.Activity("PSF"))
	if e.FV != 0 || e.FG != 0 {
		t.Errorf("fv=%g fg=%g, want 0,0", e.FV, e.FG)
	}
	// POD;P3DR: half-way plan, all valid but goal unmet.
	e2 := ev.Evaluate(plantree.Seq(plantree.Activity("POD"), plantree.Activity("P3DR")))
	if e2.FV != 1 || e2.FG != 0 {
		t.Errorf("fv=%g fg=%g, want 1,0", e2.FV, e2.FG)
	}
	// Unknown service counts as invalid.
	e3 := ev.Evaluate(plantree.Activity("NOPE"))
	if e3.FV != 0 {
		t.Errorf("unknown service fv = %g, want 0", e3.FV)
	}
}

func TestEvaluateOrderMatters(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	// P3DR before POD: P3DR invalid (no orientation file yet), then POD
	// valid; 1 of 2 executions valid.
	e := ev.Evaluate(plantree.Seq(plantree.Activity("P3DR"), plantree.Activity("POD")))
	if !almost(e.FV, 0.5) {
		t.Errorf("fv = %g, want 0.5", e.FV)
	}
}

func TestEvaluateSelectiveEnumeratesFlows(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	// sel(POD, PSF): flow 1 runs POD (valid), flow 2 runs PSF (invalid).
	tree := plantree.Sel(plantree.Activity("POD"), plantree.Activity("PSF"))
	e := ev.Evaluate(tree)
	if e.Flows != 2 {
		t.Fatalf("flows = %d, want 2", e.Flows)
	}
	if !almost(e.FV, 0.5) {
		t.Errorf("fv = %g, want 0.5 (1 valid of 2 executed)", e.FV)
	}
}

func TestEvaluateIterativeUnroll(t *testing.T) {
	p := DefaultParams()
	p.MaxLoopUnroll = 3
	ev := mustEvaluator(t, p)
	// iter(POD): flows with 1, 2, 3 iterations. POD is valid every time
	// (parameters are not consumed), so fv=1; executions 1+2+3=6.
	tree := plantree.Iter(plantree.Activity("POD"))
	e := ev.Evaluate(tree)
	if e.Flows != 3 {
		t.Fatalf("flows = %d, want 3", e.Flows)
	}
	if e.FV != 1 {
		t.Errorf("fv = %g", e.FV)
	}
}

func TestEvaluateFlowCap(t *testing.T) {
	p := DefaultParams()
	p.MaxFlows = 4
	ev := mustEvaluator(t, p)
	// Three selectives of 2 children each = 8 flows, capped at 4.
	tree := plantree.Seq(
		plantree.Sel(plantree.Activity("POD"), plantree.Activity("POD")),
		plantree.Sel(plantree.Activity("POD"), plantree.Activity("POD")),
		plantree.Sel(plantree.Activity("POD"), plantree.Activity("POD")),
	)
	e := ev.Evaluate(tree)
	if e.Flows != 4 {
		t.Errorf("flows = %d, want 4 (capped)", e.Flows)
	}
}

func TestEvaluatorCache(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	tree := perfectPlan()
	_ = ev.Evaluate(tree)
	n := ev.Evaluations
	_ = ev.Evaluate(tree.Clone())
	if ev.Evaluations != n {
		t.Errorf("cache miss on identical tree: %d -> %d", n, ev.Evaluations)
	}
}

func TestEvaluateConcurrentSemantics(t *testing.T) {
	ev := mustEvaluator(t, DefaultParams())
	// conc(P3DR, P3DR) after POD: both valid (canonical order), two models
	// produced, so PSF afterwards is valid and the goal is met.
	tree := plantree.Seq(
		plantree.Activity("POD"),
		plantree.Conc(plantree.Activity("P3DR"), plantree.Activity("P3DR")),
		plantree.Activity("PSF"),
	)
	e := ev.Evaluate(tree)
	if e.FV != 1 || e.FG != 1 {
		t.Errorf("fv=%g fg=%g, want 1,1", e.FV, e.FG)
	}
}

// TestFig8Crossover verifies the subtree exchange of Figure 8.
func TestFig8Crossover(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := plantree.Seq(plantree.Activity("A"), plantree.Activity("B"))
	b := plantree.Seq(plantree.Activity("C"), plantree.Activity("D"))
	leavesBefore := map[string]bool{}
	for _, s := range append(a.Services(), b.Services()...) {
		leavesBefore[s] = true
	}
	swapped := false
	for i := 0; i < 50 && !swapped; i++ {
		swapped = Crossover(rng, a, b, 40)
	}
	if !swapped {
		t.Fatal("crossover never succeeded")
	}
	// The union of leaves is preserved.
	leavesAfter := map[string]bool{}
	for _, s := range append(a.Services(), b.Services()...) {
		leavesAfter[s] = true
	}
	for s := range leavesBefore {
		if !leavesAfter[s] {
			t.Errorf("leaf %s lost in crossover", s)
		}
	}
	if err := a.Validate(0); err != nil {
		t.Errorf("offspring a invalid: %v", err)
	}
	if err := b.Validate(0); err != nil {
		t.Errorf("offspring b invalid: %v", err)
	}
}

func TestCrossoverRespectsSmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := plantree.Seq(
		plantree.Activity("A"), plantree.Activity("B"), plantree.Activity("C"),
		plantree.Activity("D"), plantree.Activity("E"),
	)
	small := plantree.Activity("X")
	for i := 0; i < 200; i++ {
		a, b := big.Clone(), small.Clone()
		Crossover(rng, a, b, 6)
		if a.Size() > 6 || b.Size() > 6 {
			t.Fatalf("offspring exceeds Smax: %d / %d", a.Size(), b.Size())
		}
	}
}

// TestFig9Mutation verifies the subtree replacement of Figure 9.
func TestFig9Mutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	services := []string{"POD", "P3DR"}
	tree := perfectPlan()
	total := 0
	for i := 0; i < 100; i++ {
		total += Mutate(rng, tree, services, 0.3, 40)
		if err := tree.Validate(40); err != nil {
			t.Fatalf("mutated tree invalid: %v", err)
		}
	}
	if total == 0 {
		t.Error("mutation never applied at rate 0.3")
	}
	if Mutate(rng, tree, services, 0, 40) != 0 {
		t.Error("rate 0 mutated")
	}
}

func TestGPFindsValidPlan(t *testing.T) {
	p := DefaultParams()
	p.PopulationSize = 120
	p.Generations = 15
	p.Seed = 7
	gp, err := New(testProblem(), p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gp.Run()
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Eval
	if best.FV < 1 || best.FG < 1 {
		t.Errorf("best fv=%g fg=%g (tree %s), want 1,1", best.FV, best.FG, res.Best.Tree)
	}
	if len(res.History) != p.Generations+1 {
		t.Errorf("history length = %d, want %d", len(res.History), p.Generations+1)
	}
	// Fitness trajectory: final best no worse than initial best.
	if res.History[len(res.History)-1].BestFitness < res.History[0].BestFitness {
		t.Error("evolution decreased best fitness")
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestGPDeterministicBySeed(t *testing.T) {
	p := DefaultParams()
	p.PopulationSize = 40
	p.Generations = 5
	p.Seed = 11
	run := func() string {
		gp, err := New(testProblem(), p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Tree.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different best plans:\n%s\n%s", a, b)
	}
}

func TestGPRouletteSelection(t *testing.T) {
	p := DefaultParams()
	p.PopulationSize = 60
	p.Generations = 8
	p.Selection = SelectRoulette
	gp, err := New(testProblem(), p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Eval.Fitness <= 0 {
		t.Error("roulette run produced zero fitness")
	}
	if SelectRoulette.String() != "roulette" || SelectTournament.String() != "tournament" ||
		SelectionScheme(9).String() == "" {
		t.Error("SelectionScheme strings")
	}
}

func TestRunManyAndSummarize(t *testing.T) {
	p := DefaultParams()
	p.PopulationSize = 60
	p.Generations = 10
	results, err := RunMany(testProblem(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.Runs != 3 {
		t.Errorf("Runs = %d", s.Runs)
	}
	if s.AvgFitness <= 0 || s.AvgSize <= 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.MinFitness > s.MaxFitness {
		t.Error("min > max")
	}
	if _, err := RunMany(testProblem(), p, 0); err == nil {
		t.Error("RunMany(0) accepted")
	}
	empty := Summarize(nil)
	if empty.Runs != 0 {
		t.Error("empty summary")
	}
}

func TestForwardSearchBaseline(t *testing.T) {
	plan, err := ForwardSearch(testProblem(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The minimal plan has 4 activities: POD, P3DR, P3DR, PSF.
	leaves := plan.Services()
	if len(leaves) != 4 {
		t.Fatalf("plan = %s, want 4 activities", plan)
	}
	ev := mustEvaluator(t, DefaultParams())
	e := ev.Evaluate(plan)
	if e.FV != 1 || e.FG != 1 {
		t.Errorf("forward-search plan fv=%g fg=%g", e.FV, e.FG)
	}
	// Depth too small: no plan.
	if _, err := ForwardSearch(testProblem(), 2); err == nil {
		t.Error("depth-2 search should fail")
	}
	// Trivial goal: error.
	trivial := testProblem()
	trivial.Goal = workflow.NewGoal(`G.Classification = "2D Image"`)
	if _, err := ForwardSearch(trivial, 5); err == nil {
		t.Error("already-satisfied goal should be reported")
	}
}

func TestRandomSearchBaseline(t *testing.T) {
	p := DefaultParams()
	p.Seed = 5
	res, err := RandomSearch(testProblem(), p, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Tree == nil {
		t.Fatal("no best tree")
	}
	if res.Best.Eval.Fitness <= 0 {
		t.Error("zero fitness best")
	}
	if res.Evaluations == 0 || res.Evaluations > 500 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
}

// TestTable2Reproduction runs the full Table 2 protocol (10 runs at Table 1
// settings) and checks the paper's headline results: every run reaches
// perfect validity and goal fitness, and the average solution stays small.
func TestTable2Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 protocol in -short mode")
	}
	results, err := RunMany(testProblem(), DefaultParams(), 10)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.PerfectValidity != 10 {
		t.Errorf("runs with fv=1: %d/10 (paper: 10/10)", s.PerfectValidity)
	}
	if s.PerfectGoal != 10 {
		t.Errorf("runs with fg=1: %d/10 (paper: 10/10)", s.PerfectGoal)
	}
	// Paper: average size 9.7, average fitness 0.928. Allow slack: the
	// qualitative claim is small plans with near-maximal fitness.
	if s.AvgSize < 4 || s.AvgSize > 15 {
		t.Errorf("avg size = %g, want within [4,15] (paper 9.7)", s.AvgSize)
	}
	if s.AvgFitness < 0.9 {
		t.Errorf("avg fitness = %g, want >= 0.9 (paper 0.928)", s.AvgFitness)
	}
}

func BenchmarkEvaluatePerfectPlan(b *testing.B) {
	ev, err := NewEvaluator(testProblem(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	tree := perfectPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.cache = map[string]Evaluation{} // force real evaluation
		ev.Evaluate(tree)
	}
}

func BenchmarkGPGeneration(b *testing.B) {
	p := DefaultParams()
	p.PopulationSize = 50
	p.Generations = 1
	for i := 0; i < b.N; i++ {
		gp, err := New(testProblem(), p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStrictConcurrencyPenalizesOrderDependence(t *testing.T) {
	// conc(POD, P3DR) only works when POD runs first: strict mode must see
	// the reverse order fail, lenient mode must not.
	tree := plantree.Conc(plantree.Activity("POD"), plantree.Activity("P3DR"))

	strict := DefaultParams()
	strict.StrictConcurrency = true
	evStrict := mustEvaluator(t, strict)
	e := evStrict.Evaluate(tree)
	if e.Flows != 2 {
		t.Fatalf("strict flows = %d, want 2", e.Flows)
	}
	// Forward: POD ok, P3DR ok (2 valid). Reverse: P3DR fails, POD ok.
	if !almost(e.FV, 3.0/4) {
		t.Errorf("strict fv = %g, want 0.75", e.FV)
	}

	lenient := DefaultParams()
	lenient.StrictConcurrency = false
	evLenient := mustEvaluator(t, lenient)
	e2 := evLenient.Evaluate(tree)
	if e2.Flows != 1 || e2.FV != 1 {
		t.Errorf("lenient flows=%d fv=%g, want 1, 1", e2.Flows, e2.FV)
	}

	// Genuinely order-independent concurrency is not penalized: after POD,
	// two P3DR runs commute.
	indep := plantree.Seq(
		plantree.Activity("POD"),
		plantree.Conc(plantree.Activity("P3DR"), plantree.Activity("P3DR")),
		plantree.Activity("PSF"),
	)
	e3 := evStrict.Evaluate(indep)
	if e3.FV != 1 || e3.FG != 1 {
		t.Errorf("independent conc fv=%g fg=%g, want 1,1", e3.FV, e3.FG)
	}
}

func TestGPSeeding(t *testing.T) {
	p := DefaultParams()
	p.PopulationSize = 20
	p.Generations = 1
	p.Seed = 13
	gp, err := New(testProblem(), p)
	if err != nil {
		t.Fatal(err)
	}
	gp.Seed(perfectPlan())
	res, err := gp.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The seeded perfect plan dominates generation 0 immediately.
	ev := mustEvaluator(t, p)
	want := ev.Evaluate(perfectPlan()).Fitness
	if res.History[0].BestFitness < want {
		t.Errorf("gen-0 best = %g, want >= %g (seed should be present)",
			res.History[0].BestFitness, want)
	}
	// Invalid or oversized seeds are ignored, not fatal.
	gp2, _ := New(testProblem(), p)
	big := plantree.Seq()
	for i := 0; i < p.Smax+5; i++ {
		big.Children = append(big.Children, plantree.Activity("POD"))
	}
	gp2.Seed(nil, plantree.Seq(), big)
	if len(gp2.seeds) != 0 {
		t.Errorf("bad seeds accepted: %d", len(gp2.seeds))
	}
}

func TestGPSeedingAccelerates(t *testing.T) {
	// With a near-perfect seed, even a tiny run finds the goal; without it,
	// the same tiny budget usually does not (seed 17 chosen accordingly).
	p := DefaultParams()
	p.PopulationSize = 10
	p.Generations = 2
	p.Seed = 17
	seeded, err := New(testProblem(), p)
	if err != nil {
		t.Fatal(err)
	}
	seeded.Seed(perfectPlan())
	rs, err := seeded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Best.Eval.FG < 1 {
		t.Errorf("seeded tiny run missed the goal: fg=%g", rs.Best.Eval.FG)
	}
}

func TestElitismPreservesBest(t *testing.T) {
	p := DefaultParams()
	p.PopulationSize = 20
	p.Generations = 10
	p.Elites = 1
	p.MutationRate = 0.2 // aggressive: without elitism the best often degrades
	p.Seed = 23
	gp, err := New(testProblem(), p)
	if err != nil {
		t.Fatal(err)
	}
	gp.Seed(perfectPlan())
	res, err := gp.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With the perfect plan seeded and one elite slot, best fitness is
	// monotone non-decreasing across generations.
	prev := 0.0
	for _, g := range res.History {
		if g.BestFitness+1e-12 < prev {
			t.Fatalf("best fitness dropped at gen %d: %g -> %g", g.Generation, prev, g.BestFitness)
		}
		prev = g.BestFitness
	}
	if res.Best.Eval.FG < 1 {
		t.Errorf("elite seeded run lost the goal: %g", res.Best.Eval.FG)
	}
	// Parameter validation.
	bad := DefaultParams()
	bad.Elites = -1
	if bad.Validate() == nil {
		t.Error("negative elites accepted")
	}
	bad.Elites = bad.PopulationSize
	if bad.Validate() == nil {
		t.Error("elites >= population accepted")
	}
}

package planner

// The plan cache generalizes the per-run fitness cache one level up: where
// the Evaluator memoizes tree → fitness within a run, the PlanCache
// memoizes case → finished plan across runs. A "case" is canonicalized so
// that requests differing only in the order of their goal conditions,
// initial data items, or constraints share one entry, while any change to
// the constraint set — or to a result-affecting GP parameter — keys a
// fresh plan.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/workflow"
)

// defaultPlanCacheLimit bounds the plan cache; past it the oldest half is
// dropped (same policy as the fitness cache). Plans are small (a PDL string
// and an evaluation), so the default is generous.
const defaultPlanCacheLimit = 4096

// CanonicalKey derives the plan-cache key from a case description: the
// sorted goal set, sorted initial data items (rendered with sorted
// properties), sorted constraints, sorted excluded services, and the
// result-affecting GP parameters. Population seeds and the failed plan of
// an incremental re-plan are deliberately excluded — they are hints that
// change how fast a plan is found, and a cached plan for the same case is
// exactly the answer a re-plan wants when it is still executable.
// EvalWorkers is also excluded: the planned result is bit-identical at any
// worker count.
func CanonicalKey(initial []*workflow.DataItem, goal, constraints, excluded []string, p Params) string {
	h := sha256.New()
	section := func(name string, vals []string) {
		sorted := append([]string(nil), vals...)
		sort.Strings(sorted)
		fmt.Fprintf(h, "%s/%d\n", name, len(sorted))
		for _, v := range sorted {
			fmt.Fprintf(h, "%q\n", v)
		}
	}
	items := make([]string, 0, len(initial))
	for _, it := range initial {
		if it != nil {
			items = append(items, it.String())
		}
	}
	section("initial", items)
	section("goal", goal)
	section("constraints", constraints)
	section("excluded", excluded)
	fmt.Fprintf(h, "params/%d/%d/%g/%g/%d/%g/%g/%g/%d/%s/%d/%d/%d/%t/%t/%d/%g/%g\n",
		p.PopulationSize, p.Generations, p.CrossoverRate, p.MutationRate,
		p.Smax, p.WV, p.WG, p.WR, p.TournamentSize, p.Selection, p.Elites,
		p.MaxLoopUnroll, p.MaxFlows, p.StrictConcurrency, p.StopOnPerfect,
		p.Seed, p.MaxCost, p.MaxTime)
	return "case:" + hex.EncodeToString(h.Sum(nil))
}

// PlanResult is a finished plan as the cache stores it: the formatted PDL,
// the canonical tree rendering, its evaluation, and the services the plan
// uses (the invalidation index).
type PlanResult struct {
	PDL      string
	Tree     string
	Eval     Evaluation
	Services []string
}

// PlanCache is a bounded, invalidatable case → plan memo shared by all
// workers of a planning service. All methods are goroutine-safe.
type PlanCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]PlanResult
	order   []string // insertion order for oldest-half trims

	hits          int64
	misses        int64
	invalidations int64
}

// NewPlanCache builds a cache bounded to limit entries (0 means the
// default).
func NewPlanCache(limit int) *PlanCache {
	if limit <= 0 {
		limit = defaultPlanCacheLimit
	}
	return &PlanCache{limit: limit, entries: make(map[string]PlanResult)}
}

// Get looks the key up, counting the hit or miss.
func (c *PlanCache) Get(key string) (PlanResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// Put stores a finished plan, trimming the oldest half when full.
func (c *PlanCache) Put(key string, r PlanResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.order = append(c.order, key)
	}
	c.entries[key] = r
	if len(c.entries) <= c.limit {
		return
	}
	keep := c.order[len(c.order)/2:]
	for _, k := range c.order[:len(c.order)/2] {
		delete(c.entries, k)
	}
	c.order = append([]string(nil), keep...)
}

// InvalidateService drops every cached plan that uses the named service
// and returns how many were dropped — the hook the planning agent calls
// when brokerage verifies a service is non-executable (Figure 3), so stale
// plans never short-circuit a re-plan onto a dead service.
func (c *PlanCache) InvalidateService(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key, r := range c.entries {
		for _, svc := range r.Services {
			if svc == name {
				delete(c.entries, key)
				dropped++
				break
			}
		}
	}
	if dropped > 0 {
		c.invalidations += int64(dropped)
		keep := c.order[:0]
		for _, k := range c.order {
			if _, ok := c.entries[k]; ok {
				keep = append(keep, k)
			}
		}
		c.order = keep
	}
	return dropped
}

// InvalidateAll empties the cache and returns how many entries it held.
func (c *PlanCache) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]PlanResult)
	c.order = nil
	c.invalidations += int64(n)
	return n
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters reports lifetime hits, misses, and invalidated entries.
func (c *PlanCache) Counters() (hits, misses, invalidations int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations
}

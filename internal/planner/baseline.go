package planner

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/plantree"
	"repro/internal/workflow"
)

// ForwardSearch is the deterministic baseline planner: breadth-first search
// through the metadata state space, applying one service per step, until the
// goal conditions hold. It returns a purely sequential plan (the kind a
// hand-written coordination script encodes), or an error when no plan exists
// within maxDepth steps.
//
// This is the comparison point for the paper's argument that scripts handle
// well-defined tasks but GP planning copes with a wider solution space: the
// forward search cannot produce concurrent or iterative structure.
func ForwardSearch(problem *workflow.Problem, maxDepth int) (*plantree.Node, error) {
	if err := problem.Validate(); err != nil {
		return nil, err
	}
	if maxDepth < 1 {
		maxDepth = 16
	}
	type entry struct {
		state *workflow.State
		plan  []string
	}
	start := problem.Initial.Clone()
	if problem.Goal.Fitness(start) >= 1 {
		return nil, fmt.Errorf("planner: goal already satisfied by the initial state")
	}
	queue := []entry{{state: start}}
	visited := map[string]bool{stateKey(start): true}
	services := problem.Catalog.Services()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.plan) >= maxDepth {
			continue
		}
		for _, svc := range services {
			next, ok := svc.Apply(cur.state, nil, len(cur.plan))
			if !ok {
				continue
			}
			key := stateKey(next)
			if visited[key] {
				continue
			}
			visited[key] = true
			plan := append(append([]string(nil), cur.plan...), svc.Name)
			if problem.Goal.Fitness(next) >= 1 {
				nodes := make([]*plantree.Node, len(plan))
				for i, s := range plan {
					nodes[i] = plantree.Activity(s)
				}
				if len(nodes) == 1 {
					return nodes[0], nil
				}
				return plantree.Seq(nodes...), nil
			}
			queue = append(queue, entry{state: next, plan: plan})
		}
	}
	return nil, fmt.Errorf("planner: forward search found no plan within depth %d", maxDepth)
}

// stateKey canonicalizes a state as the sorted multiset of item
// classifications — the property-level signature the services' conditions
// actually read.
func stateKey(st *workflow.State) string {
	var parts []string
	for _, it := range st.Items() {
		parts = append(parts, it.Classification())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// RandomSearch evaluates n random trees and returns the best, giving the
// no-evolution baseline with the same evaluation budget as a GP run.
func RandomSearch(problem *workflow.Problem, params Params, n int) (*Result, error) {
	ev, err := NewEvaluator(problem, params)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		n = params.PopulationSize * (params.Generations + 1)
	}
	rng := rand.New(rand.NewSource(params.Seed))
	services := problem.Catalog.Names()
	res := &Result{}
	for i := 0; i < n; i++ {
		tree := plantree.Random(rng, services, params.Smax)
		e := ev.Evaluate(tree)
		if res.Best.Tree == nil || e.Fitness > res.Best.Eval.Fitness {
			res.Best = Individual{Tree: tree, Eval: e}
		}
	}
	res.Evaluations = ev.Evaluations
	res.History = []GenStats{{
		Generation:  0,
		BestFitness: res.Best.Eval.Fitness,
		BestFV:      res.Best.Eval.FV,
		BestFG:      res.Best.Eval.FG,
		BestSize:    res.Best.Eval.Size,
	}}
	return res, nil
}

package planner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/plantree"
)

// fastParams converges on the test problem in well under a second.
func fastParams() Params {
	p := DefaultParams()
	p.PopulationSize = 120
	p.Generations = 15
	p.Seed = 7
	return p
}

func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = testProblem().Catalog
	}
	if cfg.Params == (Params{}) {
		cfg.Params = fastParams()
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// testSpec is the case-study problem as a PlanSpec.
func testSpec(id string) PlanSpec {
	pr := testProblem()
	return PlanSpec{ID: id, Initial: pr.Initial.Items(), Goal: pr.Goal.Conditions}
}

func TestServiceLifecycle(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 2})
	ctx := context.Background()

	st, err := s.Submit(ctx, testSpec("p1"))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "p1" || st.Status.Terminal() {
		t.Fatalf("fresh submit = %+v", st)
	}
	final, err := s.Wait(ctx, "p1")
	if err != nil || final.Status != StatusSucceeded {
		t.Fatalf("wait = %+v, %v", final, err)
	}
	if final.PDL == "" || !strings.Contains(final.PDL, "BEGIN") {
		t.Errorf("succeeded plan has no PDL: %q", final.PDL)
	}
	if final.Eval.FV < 1 || final.Eval.FG < 1 {
		t.Errorf("plan not perfect: fv=%g fg=%g", final.Eval.FV, final.Eval.FG)
	}
	if final.Evaluations == 0 || final.Generations == 0 || final.Started.IsZero() || final.Finished.IsZero() {
		t.Errorf("missing run accounting: %+v", final)
	}

	if got, err := s.Get("p1"); err != nil || got.Status != StatusSucceeded {
		t.Errorf("get = %+v, %v", got, err)
	}
	if _, err := s.Get("ghost"); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("ghost get err = %v", err)
	}
	if list := s.List(); len(list) != 1 || list[0].ID != "p1" {
		t.Errorf("list = %+v", list)
	}
	if _, err := s.Cancel("p1"); !errors.Is(err, ErrPlanFinished) {
		t.Errorf("cancel finished err = %v", err)
	}

	// Malformed cases fail synchronously.
	bad := testSpec("p2")
	bad.Goal = nil
	if _, err := s.Submit(ctx, bad); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("goalless submit err = %v", err)
	}
	bad = testSpec("p3")
	bad.Goal = []string{"not ) an expression ("}
	if _, err := s.Submit(ctx, bad); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("unparsable goal err = %v", err)
	}
	bad = testSpec("p4")
	bad.Excluded = []string{"POD", "P3DR", "POR", "PSF"}
	if _, err := s.Submit(ctx, bad); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("all-excluded submit err = %v", err)
	}
	if _, err := s.Submit(ctx, testSpec("p1")); !errors.Is(err, ErrDuplicatePlan) {
		t.Errorf("duplicate submit err = %v", err)
	}
}

func TestServiceCacheHitIsSynchronousAndFast(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 1})
	ctx := context.Background()

	if _, err := s.Submit(ctx, testSpec("cold")); err != nil {
		t.Fatal(err)
	}
	cold, err := s.Wait(ctx, "cold")
	if err != nil || cold.Status != StatusSucceeded {
		t.Fatalf("cold plan = %+v, %v", cold, err)
	}

	// The identical case answers terminally at submit time with the same
	// plan bytes — and fast: 100 warm submits in well under 100ms is the
	// <1ms-per-hit target with slack for a loaded test machine.
	start := time.Now()
	for i := 0; i < 100; i++ {
		warm, err := s.Submit(ctx, testSpec(fmt.Sprintf("warm-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !warm.CacheHit || warm.Status != StatusSucceeded {
			t.Fatalf("warm submit %d not a terminal cache hit: %+v", i, warm)
		}
		if warm.PDL != cold.PDL || warm.Tree != cold.Tree {
			t.Fatalf("warm plan differs from cold plan:\n%s\nvs\n%s", warm.PDL, cold.PDL)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("100 warm submits took %s, want < 100ms total", elapsed)
	}

	stats := s.Stats()
	if stats.CacheHits != 100 || stats.CacheMisses != 1 {
		t.Errorf("stats = %d hits %d misses, want 100/1", stats.CacheHits, stats.CacheMisses)
	}

	// NoCache bypasses the memo even for a known case.
	st, err := s.Submit(ctx, func() PlanSpec { sp := testSpec("nocache"); sp.NoCache = true; return sp }())
	if err != nil || st.CacheHit {
		t.Fatalf("NoCache submit hit the cache: %+v, %v", st, err)
	}
}

// TestServiceDeterministicAcrossWorkers plans one seeded case at several
// service and evaluation worker counts: parallelism must not change the
// planned result.
func TestServiceDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, w := range []struct{ service, eval int }{{1, 1}, {2, 2}, {4, 4}} {
		s := newTestService(t, ServiceConfig{Workers: w.service})
		p := fastParams()
		p.EvalWorkers = w.eval
		sp := testSpec("det")
		sp.Params = &p
		sp.NoCache = true
		if _, err := s.Submit(context.Background(), sp); err != nil {
			t.Fatal(err)
		}
		st, err := s.Wait(context.Background(), "det")
		if err != nil || st.Status != StatusSucceeded {
			t.Fatalf("workers %+v: %+v, %v", w, st, err)
		}
		if want == "" {
			want = st.Tree
		} else if st.Tree != want {
			t.Errorf("workers %+v planned a different tree:\n%s\nvs\n%s", w, st.Tree, want)
		}
		s.Close()
	}
}

func TestServiceCancel(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 1})
	ctx := context.Background()

	// A big budget keeps the first plan running long enough to cancel; the
	// second sits queued behind it on the single worker.
	big := DefaultParams()
	big.PopulationSize = 400
	big.Generations = 500
	long := testSpec("long")
	long.Params = &big
	long.NoCache = true
	if _, err := s.Submit(ctx, long); err != nil {
		t.Fatal(err)
	}
	queued := testSpec("queued")
	queued.Params = &big
	queued.NoCache = true
	if _, err := s.Submit(ctx, queued); err != nil {
		t.Fatal(err)
	}

	// Cancelling the queued plan settles synchronously.
	st, err := s.Cancel("queued")
	if err != nil || st.Status != StatusCancelled {
		t.Fatalf("cancel queued = %+v, %v", st, err)
	}
	if _, err := s.Cancel("queued"); !errors.Is(err, ErrPlanCancelled) {
		t.Errorf("second cancel err = %v", err)
	}

	// Cancelling the running plan interrupts the GP between generations.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ = s.Get("long")
		if st.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long plan never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Cancel("long"); err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(ctx, "long")
	if err != nil || final.Status != StatusCancelled {
		t.Fatalf("cancelled plan = %+v, %v", final, err)
	}

	stats := s.Stats()
	if stats.Cancelled != 2 {
		t.Errorf("stats.Cancelled = %d, want 2", stats.Cancelled)
	}
}

// TestServiceIncrementalReplan reproduces Figure 3's re-planning loop: a
// verified-unexecutable service invalidates cached plans, and the re-plan
// seeds from the failed plan's neighborhood under the reduced Incremental
// budget — converging on a repaired plan in under 10% of the cold-plan
// evaluation count.
func TestServiceIncrementalReplan(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 1})
	ctx := context.Background()

	if _, err := s.Submit(ctx, testSpec("cold")); err != nil {
		t.Fatal(err)
	}
	cold, err := s.Wait(ctx, "cold")
	if err != nil || cold.Status != StatusSucceeded {
		t.Fatalf("cold plan = %+v, %v", cold, err)
	}

	// The enacted plan failed at POR (brokerage verified it unexecutable):
	// drop poisoned cache entries, then re-plan around the failure.
	s.InvalidateService("POR")
	failed := plantree.Seq(
		plantree.Activity("POD"),
		plantree.Activity("P3DR"),
		plantree.Activity("POR"),
		plantree.Activity("P3DR"),
		plantree.Activity("PSF"),
	)
	replan := testSpec("replan")
	replan.Excluded = []string{"POR"}
	replan.Failed = failed
	if _, err := s.Submit(ctx, replan); err != nil {
		t.Fatal(err)
	}
	inc, err := s.Wait(ctx, "replan")
	if err != nil || inc.Status != StatusSucceeded {
		t.Fatalf("re-plan = %+v, %v", inc, err)
	}
	if !inc.Incremental {
		t.Error("re-plan not marked incremental")
	}
	if inc.Eval.FV < 1 || inc.Eval.FG < 1 {
		t.Errorf("re-plan not perfect: fv=%g fg=%g (tree %s)", inc.Eval.FV, inc.Eval.FG, inc.Tree)
	}
	if strings.Contains(inc.Tree, "POR") {
		t.Errorf("re-plan still uses the excluded service: %s", inc.Tree)
	}
	if 10*inc.Evaluations >= cold.Evaluations {
		t.Errorf("re-plan cost %d evaluations vs %d cold — not under 10%%",
			inc.Evaluations, cold.Evaluations)
	}
	t.Logf("cold=%d evaluations, incremental=%d (%.1f%%)",
		cold.Evaluations, inc.Evaluations, 100*float64(inc.Evaluations)/float64(cold.Evaluations))
}

// TestServiceConcurrentSubmitCancel hammers Submit/Get/Cancel/Stats from
// many goroutines; run under -race this is the service's thread-safety
// proof.
func TestServiceConcurrentSubmitCancel(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 4, QueueCapacity: 128})
	small := DefaultParams()
	small.PopulationSize = 16
	small.Generations = 2

	const plans = 24
	var wg sync.WaitGroup
	for i := 0; i < plans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := small
			p.Seed = int64(i + 1)
			sp := testSpec(fmt.Sprintf("c-%d", i))
			sp.Params = &p
			sp.NoCache = true
			if _, err := s.Submit(context.Background(), sp); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			rng := rand.New(rand.NewSource(int64(i)))
			if rng.Intn(2) == 0 {
				s.Cancel(sp.ID) // racing the worker is the point
			}
			s.Get(sp.ID)
			s.Stats()
			if st, err := s.Wait(context.Background(), sp.ID); err != nil || !st.Status.Terminal() {
				t.Errorf("plan %d settled %+v, %v", i, st, err)
			}
		}(i)
	}
	wg.Wait()

	stats := s.Stats()
	if stats.Submitted != plans || stats.Succeeded+stats.Failed+stats.Cancelled != plans {
		t.Errorf("stats don't add up: %+v", stats)
	}
}

func TestServiceCloseCancelsPending(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 1})
	big := DefaultParams()
	big.PopulationSize = 400
	big.Generations = 500
	var ids []string
	for i := 0; i < 3; i++ {
		p := big
		sp := testSpec(fmt.Sprintf("pending-%d", i))
		sp.Params = &p
		sp.NoCache = true
		if _, err := s.Submit(context.Background(), sp); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sp.ID)
	}
	s.Close()
	for _, id := range ids {
		st, err := s.Get(id)
		if err != nil || st.Status != StatusCancelled {
			t.Errorf("plan %s after close = %+v, %v", id, st, err)
		}
	}
	if _, err := s.Submit(context.Background(), testSpec("late")); !errors.Is(err, ErrServiceClosed) {
		t.Errorf("submit after close err = %v", err)
	}
}

// TestServiceRetention bounds the finished-plan records.
func TestServiceRetention(t *testing.T) {
	s := newTestService(t, ServiceConfig{Workers: 1, RetainFinished: 4})
	ctx := context.Background()
	if _, err := s.Submit(ctx, testSpec("seed")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx, "seed"); err != nil {
		t.Fatal(err)
	}
	// Warm hits finalize synchronously, so each submit adds one finished
	// record; the oldest fall off past the retention bound.
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(ctx, testSpec(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.List()); n != 4 {
		t.Errorf("retained %d records, want 4", n)
	}
	if _, err := s.Get("seed"); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("evicted plan still queryable: %v", err)
	}
}

package store

import (
	"errors"
	"sync/atomic"
)

// ErrFenced rejects mutations on a fenced store handle.
var ErrFenced = errors.New("store: handle is fenced")

// Fenced wraps a backend with a write fence, the standard failover guard
// against split-brain: once the cluster declares a node dead and moves its
// partition, that node's storage handle is fenced so a zombie process (a
// network-partitioned peer that is still running) can no longer mutate the
// shared store underneath the new owner. Reads stay allowed — they are
// harmless and keep the zombie's diagnostics working.
//
// Fenced also lets several in-process environments share one backend: each
// gets its own handle, Close fences the handle without closing the shared
// backend (unless OwnsBackend is set), and tests can Fence a handle to
// simulate a kill -9 whose victim never gets another byte to disk.
type Fenced struct {
	inner Store
	// OwnsBackend makes Close close the wrapped backend too. Leave false
	// when several handles share it; close the backend once, separately.
	OwnsBackend bool

	fenced atomic.Bool
}

// NewFenced wraps a backend with a write fence (initially open).
func NewFenced(inner Store) *Fenced { return &Fenced{inner: inner} }

// Fence cuts the handle off: every subsequent mutation fails with
// ErrFenced. Irreversible by design — a fenced node rejoins by reopening
// its store, not by un-fencing a handle whose writes may have raced the
// failover.
func (f *Fenced) Fence() { f.fenced.Store(true) }

// IsFenced reports whether the fence has dropped.
func (f *Fenced) IsFenced() bool { return f.fenced.Load() }

func (f *Fenced) guard() error {
	if f.fenced.Load() {
		return ErrFenced
	}
	return nil
}

// Kind names the wrapped backend.
func (f *Fenced) Kind() string { return f.inner.Kind() }

// Put appends through the fence.
func (f *Fenced) Put(key string, value []byte) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.inner.Put(key, value)
}

// PutAsync appends through the fence without the durability wait.
func (f *Fenced) PutAsync(key string, value []byte) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.inner.PutAsync(key, value)
}

// Replace compacts through the fence.
func (f *Fenced) Replace(key string, value []byte) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.inner.Replace(key, value)
}

// Get reads; reads are never fenced.
func (f *Fenced) Get(key string, version int) ([]byte, int, bool, error) {
	return f.inner.Get(key, version)
}

// Keys lists; reads are never fenced.
func (f *Fenced) Keys(prefix string) []string { return f.inner.Keys(prefix) }

// Delete removes through the fence.
func (f *Fenced) Delete(key string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

// Sync flushes through the fence (a fenced handle has nothing durable to
// promise).
func (f *Fenced) Sync() error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Stats snapshots the wrapped backend.
func (f *Fenced) Stats() Stats { return f.inner.Stats() }

// Close fences the handle; the wrapped backend is closed only when
// OwnsBackend is set.
func (f *Fenced) Close() error {
	f.Fence()
	if f.OwnsBackend {
		return f.inner.Close()
	}
	return nil
}

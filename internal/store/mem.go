package store

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// errClosed rejects operations on a closed store.
var errClosed = errors.New("store: closed")

// Memory is the volatile backend: the versioned map the storage service has
// always kept, now behind the Store interface. Mutations are immediate and
// never fail; durability comes only from explicit dumps (services.Storage
// Save/Load) — a crash loses everything since the last dump.
type Memory struct {
	stats *counters

	mu     sync.RWMutex
	data   map[string][][]byte
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory(opts Options) *Memory {
	return &Memory{
		stats: newCounters(opts.Telemetry),
		data:  make(map[string][][]byte),
	}
}

// Kind implements Store.
func (m *Memory) Kind() string { return "mem" }

// Put implements Store.
func (m *Memory) Put(key string, value []byte) (int, error) {
	cp := append([]byte(nil), value...)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, errClosed
	}
	m.data[key] = append(m.data[key], cp)
	m.stats.appends.Add(1)
	m.stats.mAppends.Inc()
	return len(m.data[key]), nil
}

// PutAsync implements Store; memory writes are immediate, so it is Put.
func (m *Memory) PutAsync(key string, value []byte) (int, error) {
	return m.Put(key, value)
}

// Replace implements Store: drop every version of key and write value as
// version 1 in one step.
func (m *Memory) Replace(key string, value []byte) (int, error) {
	cp := append([]byte(nil), value...)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, errClosed
	}
	m.data[key] = [][]byte{cp}
	m.stats.appends.Add(1)
	m.stats.mAppends.Inc()
	return 1, nil
}

// Get implements Store.
func (m *Memory) Get(key string, version int) ([]byte, int, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	versions := m.data[key]
	if len(versions) == 0 {
		return nil, 0, false, nil
	}
	if version == 0 {
		version = len(versions)
	}
	if version < 1 || version > len(versions) {
		return nil, 0, false, nil
	}
	return append([]byte(nil), versions[version-1]...), version, true, nil
}

// Keys implements Store.
func (m *Memory) Keys(prefix string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var keys []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if _, ok := m.data[key]; ok {
		delete(m.data, key)
		m.stats.appends.Add(1)
		m.stats.mAppends.Inc()
	}
	return nil
}

// Sync implements Store; memory writes are immediate.
func (m *Memory) Sync() error { return nil }

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.RLock()
	records := 0
	for _, vs := range m.data {
		records += len(vs)
	}
	s := Stats{Backend: "mem", Keys: len(m.data), Records: records}
	m.mu.RUnlock()
	m.stats.fill(&s)
	return s
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

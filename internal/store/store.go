// Package store is the pluggable persistence layer behind the storage
// service and the enactment engine's write-ahead journal. It separates the
// execution layer from a replaceable storage/metadata layer (Costan et al.'s
// architectural model): everything above speaks the Store interface, and the
// backend is selected at startup by a DSN —
//
//	mem:            volatile in-memory map (fast, durability only via dumps)
//	file:DIR        append-only segmented log with rotation and compaction
//	bolt:PATH.db    embedded single-file KV (binary records, CRC-checked,
//	                offset-indexed values read from disk on demand)
//
// The data model is the versioned key-value store the system has always
// used: Put appends a new version of a key (1-based), Get addresses a
// specific version (0 = latest), Delete drops a key with all its versions.
// The enactment journal is a key per task whose versions are the append-only
// lifecycle log, so journal appends are Puts.
//
// Durable backends write through a group commit: mutations coalesce into
// batches and each batch costs one fsync, so N concurrent admissions share
// one durability round-trip. A mutation only returns once the batch holding
// it is on disk — callers never observe an acknowledged write that a crash
// can undo. FlushConfig tunes the batch bound and the optional linger
// interval.
package store

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Store is the redesigned storage API: a versioned key-value store with
// durability semantics per backend. Implementations are safe for concurrent
// use. Mutations on durable backends return only after the write is fsynced
// (group-committed); reads never block on the committer.
type Store interface {
	// Kind names the backend ("mem", "file", "bolt").
	Kind() string
	// Put appends a new version of key and returns its 1-based number.
	Put(key string, value []byte) (int, error)
	// PutAsync appends a new version of key without waiting for its
	// group-commit batch to reach disk. Ordering against other mutations is
	// still fixed at the call (the record joins the log in call order); only
	// the durability wait is skipped, so use it for records whose loss a
	// crash already tolerates. A flush failure surfaces on the next
	// synchronous mutation or Sync.
	PutAsync(key string, value []byte) (int, error)
	// Replace atomically discards every version of key and writes value as
	// version 1 — one log record, one group-commit slot, so a crash can
	// never observe the discard without the write (unlike a Delete+Put
	// pair, whose batches may fsync separately). Log compaction of
	// journal-style keys is the intended use.
	Replace(key string, value []byte) (int, error)
	// Get returns the given version of key (0 = latest).
	Get(key string, version int) (value []byte, ver int, found bool, err error)
	// Keys returns all live keys with the prefix, sorted.
	Keys(prefix string) []string
	// Delete removes a key and all its versions. Deleting an absent key is
	// not an error.
	Delete(key string) error
	// Sync blocks until every previously accepted mutation is durable.
	Sync() error
	// Stats snapshots backend counters for the operational surface.
	Stats() Stats
	// Close flushes pending writes and releases the backend's resources.
	Close() error
}

// DurableCopier is implemented by disk-backed stores. CopyDurable clones
// exactly the bytes guaranteed on disk — the image a kill -9 would leave
// behind — into dst (a directory for file stores, a file path for bolt).
// Crash-recovery tests and backup tooling use it; in-flight batches that
// have not been fsynced are deliberately excluded.
type DurableCopier interface {
	CopyDurable(dst string) error
}

// Stats is a point-in-time snapshot of one backend, served by
// GET /api/v1/store and folded into /api/v1/stats.
type Stats struct {
	// Backend is the kind string ("mem", "file", "bolt").
	Backend string `json:"backend"`
	// Keys is the number of live keys; Records counts live versions.
	Keys    int `json:"keys"`
	Records int `json:"records"`
	// Segments counts on-disk segment files (file backend; 1 for bolt,
	// 0 for mem). Bytes is the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Appends counts accepted mutations (puts + deletes); Batched counts
	// mutations that shared their fsync with at least one other; Flushes
	// counts fsync rounds. Batched/Appends is the group-commit hit rate.
	Appends int64 `json:"appends"`
	Batched int64 `json:"batched"`
	Flushes int64 `json:"flushes"`
	// PendingFlush is how many accepted mutations are waiting on the next
	// fsync right now.
	PendingFlush int `json:"pendingFlush"`
	// Compactions counts log compactions; LastCompaction is the wall time of
	// the most recent one (zero when none ran).
	Compactions    int64     `json:"compactions"`
	LastCompaction time.Time `json:"lastCompaction,omitzero"`
}

// FlushConfig tunes the group commit of durable backends.
type FlushConfig struct {
	// MaxBatch bounds how many mutations one fsync may carry. 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// Interval is how long the flusher lingers after the first mutation of a
	// batch to let more join. 0 (the default) means flush as soon as the
	// flusher is free — batches then form naturally while an fsync is in
	// flight, adding no latency under low load.
	Interval time.Duration
}

// DefaultMaxBatch is the group-commit batch bound when FlushConfig.MaxBatch
// is zero.
const DefaultMaxBatch = 256

func (fc FlushConfig) maxBatch() int {
	if fc.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return fc.MaxBatch
}

// Options configures Open.
type Options struct {
	// Flush tunes group commit on durable backends.
	Flush FlushConfig
	// Telemetry, when set, records store.* metrics (appends, flushes, batch
	// sizes, flush latency, segment counts, compactions).
	Telemetry *telemetry.Registry
	// SegmentMaxBytes rotates the file backend's active segment beyond this
	// size. 0 means DefaultSegmentMaxBytes.
	SegmentMaxBytes int64
	// CompactAfterSegments folds sealed segments into a snapshot once their
	// count reaches this bound (file backend). 0 means
	// DefaultCompactAfterSegments.
	CompactAfterSegments int
}

// Defaults for the file backend's segment lifecycle.
const (
	DefaultSegmentMaxBytes      = 4 << 20
	DefaultCompactAfterSegments = 4
)

// Open builds a backend from its DSN. Supported forms: "mem:",
// "file:DIR", "bolt:PATH". The path part may be empty only for mem.
func Open(dsn string, opts Options) (Store, error) {
	scheme, path, ok := strings.Cut(dsn, ":")
	if !ok {
		return nil, fmt.Errorf("store: DSN %q has no scheme (want mem:, file:DIR, or bolt:PATH)", dsn)
	}
	switch scheme {
	case "mem":
		if path != "" {
			return nil, fmt.Errorf("store: mem: takes no path, got %q", path)
		}
		return NewMemory(opts), nil
	case "file":
		if path == "" {
			return nil, fmt.Errorf("store: file: needs a directory, e.g. file:/var/lib/gridenv")
		}
		return OpenFile(path, opts)
	case "bolt":
		if path == "" {
			return nil, fmt.Errorf("store: bolt: needs a file path, e.g. bolt:/var/lib/gridenv.db")
		}
		return OpenBolt(path, opts)
	}
	return nil, fmt.Errorf("store: unknown backend %q (want mem, file, or bolt)", scheme)
}

// counters aggregates the commit-path accounting shared by all backends.
type counters struct {
	appends     atomic.Int64
	batched     atomic.Int64
	flushes     atomic.Int64
	compactions atomic.Int64
	lastCompact atomic.Int64 // unix nanos

	mAppends, mBatched, mFlushes, mCompactions *telemetry.Counter
	hBatch, hFlush                             *telemetry.Histogram
	gSegments, gPending                        *telemetry.Gauge
}

func newCounters(tel *telemetry.Registry) *counters {
	c := &counters{}
	c.mAppends = tel.Counter("store.appends")
	c.mBatched = tel.Counter("store.appends.batched")
	c.mFlushes = tel.Counter("store.flushes")
	c.mCompactions = tel.Counter("store.compactions")
	c.hBatch = tel.Histogram("store.batch.size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	c.hFlush = tel.Histogram("store.flush.seconds", []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1})
	c.gSegments = tel.Gauge("store.segments")
	c.gPending = tel.Gauge("store.flush.pending")
	return c
}

// noteFlush records one fsync round carrying n mutations over elapsed.
func (c *counters) noteFlush(n int, elapsed time.Duration) {
	c.flushes.Add(1)
	c.mFlushes.Inc()
	if n > 1 {
		c.batched.Add(int64(n))
		c.mBatched.Add(int64(n))
	}
	c.hBatch.Observe(float64(n))
	c.hFlush.Observe(elapsed.Seconds())
}

func (c *counters) noteCompaction() {
	c.compactions.Add(1)
	c.mCompactions.Inc()
	c.lastCompact.Store(time.Now().UnixNano())
}

// fill copies the counter values into a Stats snapshot.
func (c *counters) fill(s *Stats) {
	s.Appends = c.appends.Load()
	s.Batched = c.batched.Load()
	s.Flushes = c.flushes.Load()
	s.Compactions = c.compactions.Load()
	if ns := c.lastCompact.Load(); ns > 0 {
		s.LastCompaction = time.Unix(0, ns)
	}
}

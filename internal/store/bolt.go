package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Bolt is the embedded single-file KV backend. One log file holds binary
// records; an in-memory index maps every live version of a key to its value's
// offset, and Get reads values back with a pread — values never live in
// memory, which is the point of this backend versus file (large checkpoints,
// small heap). Writes go through the same group committer; the flusher
// assigns offsets, appends the batch with one fsync, and only then publishes
// the new index entries, so a reader can never be handed an offset that a
// crash could invalidate.
//
// The record frame is
//
//	[u32 crc][u8 op][u16 klen][u32 vlen][key][value]
//
// with the CRC covering everything after itself. On open the log is replayed
// front to back; the first record that fails its CRC (or runs past EOF) marks
// the torn tail a kill left behind and the file is truncated there.
//
// When the log grows past SegmentMaxBytes×CompactAfterSegments with less
// than half of it live, the flusher stops the world and rewrites the file
// with only live records.
type Bolt struct {
	path  string
	opts  Options
	stats *counters
	c     *committer

	mu        sync.RWMutex
	index     map[string][]valueRef // durable versions only
	verNext   map[string]int        // version accounting, including pending puts
	liveBytes int64                 // record bytes still referenced by the index
	closed    bool

	fileMu  sync.Mutex
	f       *os.File
	size    int64
	durable int64

	// bw is the flusher's buffered writer, reused across batches so group
	// commit does not allocate a fresh 64 KiB buffer per fsync.
	bw *bufio.Writer
}

// valueRef locates one durable version's value inside the log file.
type valueRef struct {
	off  int64 // value offset
	size int64 // value length
	rec  int64 // full record length, for live-bytes accounting
}

const (
	boltOpPut byte = 1
	boltOpDel byte = 2
	boltOpRep byte = 3 // replace: drop all versions, write value as v1

	boltHeader = 4 + 1 + 2 + 4 // crc + op + klen + vlen
)

// OpenBolt opens (or initializes) the single-file KV at path.
func OpenBolt(path string, opts Options) (*Bolt, error) {
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if opts.CompactAfterSegments <= 0 {
		opts.CompactAfterSegments = DefaultCompactAfterSegments
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: bolt backend: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: bolt backend: %w", err)
	}
	b := &Bolt{
		path:    path,
		opts:    opts,
		stats:   newCounters(opts.Telemetry),
		index:   make(map[string][]valueRef),
		verNext: make(map[string]int),
		f:       f,
	}
	if err := b.load(); err != nil {
		f.Close()
		return nil, err
	}
	b.c = newCommitter(opts.Flush, b.stats, b.flushBatch)
	b.stats.gSegments.Set(1)
	return b, nil
}

// load replays the log into the index, truncating the torn tail.
func (b *Bolt) load() error {
	r := bufio.NewReaderSize(io.NewSectionReader(b.f, 0, 1<<62), 1<<16)
	var offset int64
	hdr := make([]byte, boltHeader)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				break
			}
			// A partial header is a torn tail.
			if err == io.ErrUnexpectedEOF {
				break
			}
			return fmt.Errorf("store: reading %s at offset %d: %w", b.path, offset, err)
		}
		want := binary.LittleEndian.Uint32(hdr[0:])
		op := hdr[4]
		klen := int(binary.LittleEndian.Uint16(hdr[5:]))
		vlen := int(binary.LittleEndian.Uint32(hdr[7:]))
		body := make([]byte, klen+vlen)
		if _, err := io.ReadFull(r, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn record body
			}
			return fmt.Errorf("store: reading %s at offset %d: %w", b.path, offset, err)
		}
		crc := crc32.ChecksumIEEE(hdr[4:])
		crc = crc32.Update(crc, crc32.IEEETable, body)
		if crc != want {
			break // torn or corrupt tail: everything past it is unreachable
		}
		if op != boltOpPut && op != boltOpDel && op != boltOpRep {
			break // unknown op code: treat as corrupt tail
		}
		rec := int64(boltHeader + klen + vlen)
		key := string(body[:klen])
		switch op {
		case boltOpPut:
			ref := valueRef{off: offset + boltHeader + int64(klen), size: int64(vlen), rec: rec}
			b.index[key] = append(b.index[key], ref)
			b.liveBytes += rec
		case boltOpRep:
			for _, old := range b.index[key] {
				b.liveBytes -= old.rec
			}
			ref := valueRef{off: offset + boltHeader + int64(klen), size: int64(vlen), rec: rec}
			b.index[key] = []valueRef{ref}
			b.liveBytes += rec
		case boltOpDel:
			for _, old := range b.index[key] {
				b.liveBytes -= old.rec
			}
			delete(b.index, key)
		}
		offset += rec
	}
	if err := b.f.Truncate(offset); err != nil {
		return fmt.Errorf("store: truncating torn tail of %s: %w", b.path, err)
	}
	if _, err := b.f.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	b.size = offset
	b.durable = offset
	for k, refs := range b.index {
		b.verNext[k] = len(refs)
	}
	return nil
}

// encodeRecord frames one mutation.
func encodeRecord(op byte, key string, val []byte) ([]byte, error) {
	if key == "" {
		return nil, fmt.Errorf("store: empty key")
	}
	if len(key) > 1<<16-1 {
		return nil, fmt.Errorf("store: key longer than 64KiB")
	}
	buf := make([]byte, boltHeader+len(key)+len(val))
	buf[4] = op
	binary.LittleEndian.PutUint16(buf[5:], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[7:], uint32(len(val)))
	copy(buf[boltHeader:], key)
	copy(buf[boltHeader+len(key):], val)
	binary.LittleEndian.PutUint32(buf[0:], crc32.ChecksumIEEE(buf[4:]))
	return buf, nil
}

// Kind implements Store.
func (b *Bolt) Kind() string { return "bolt" }

// Put implements Store. The version is assigned at enqueue time under the
// ordering mutex — batch order equals version order — and the call returns
// once the record's batch is fsynced and indexed.
func (b *Bolt) Put(key string, value []byte) (int, error) {
	enc, err := encodeRecord(boltOpPut, key, value)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, errClosed
	}
	ver := b.verNext[key] + 1
	b.verNext[key] = ver
	bat, err := b.c.enqueue(enc)
	b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := b.c.wait(bat); err != nil {
		return 0, err
	}
	b.stats.appends.Add(1)
	b.stats.mAppends.Inc()
	return ver, nil
}

// PutAsync implements Store: the version is assigned and the record joins
// the log in call order, but the call returns without waiting for the fsync
// (the index entry is still published only after the batch is durable).
func (b *Bolt) PutAsync(key string, value []byte) (int, error) {
	enc, err := encodeRecord(boltOpPut, key, value)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, errClosed
	}
	ver := b.verNext[key] + 1
	b.verNext[key] = ver
	_, err = b.c.enqueue(enc)
	b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	b.stats.appends.Add(1)
	b.stats.mAppends.Inc()
	return ver, nil
}

// Replace implements Store: one "rep" record discards the key's history and
// writes value as version 1 — the discard and the write share a single fsync.
func (b *Bolt) Replace(key string, value []byte) (int, error) {
	enc, err := encodeRecord(boltOpRep, key, value)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, errClosed
	}
	b.verNext[key] = 1
	bat, err := b.c.enqueue(enc)
	b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := b.c.wait(bat); err != nil {
		return 0, err
	}
	b.stats.appends.Add(1)
	b.stats.mAppends.Inc()
	return 1, nil
}

// Get implements Store: resolve the version in the index, pread the value.
func (b *Bolt) Get(key string, version int) ([]byte, int, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	refs := b.index[key]
	if len(refs) == 0 {
		return nil, 0, false, nil
	}
	if version == 0 {
		version = len(refs)
	}
	if version < 1 || version > len(refs) {
		return nil, 0, false, nil
	}
	ref := refs[version-1]
	val := make([]byte, ref.size)
	if _, err := b.f.ReadAt(val, ref.off); err != nil && !(err == io.EOF && ref.size == 0) {
		return nil, 0, false, fmt.Errorf("store: reading %s at offset %d: %w", b.path, ref.off, err)
	}
	return val, version, true, nil
}

// Keys implements Store.
func (b *Bolt) Keys(prefix string) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var keys []string
	for k := range b.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete implements Store. Deleting an absent key writes nothing.
func (b *Bolt) Delete(key string) error {
	enc, err := encodeRecord(boltOpDel, key, nil)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	if b.verNext[key] == 0 {
		b.mu.Unlock()
		return nil
	}
	delete(b.verNext, key)
	bat, err := b.c.enqueue(enc)
	b.mu.Unlock()
	if err != nil {
		return err
	}
	if err := b.c.wait(bat); err != nil {
		return err
	}
	b.stats.appends.Add(1)
	b.stats.mAppends.Inc()
	return nil
}

// Sync implements Store.
func (b *Bolt) Sync() error { return b.c.sync() }

// Stats implements Store.
func (b *Bolt) Stats() Stats {
	b.mu.RLock()
	records := 0
	for _, refs := range b.index {
		records += len(refs)
	}
	s := Stats{Backend: "bolt", Keys: len(b.index), Records: records, Segments: 1}
	b.mu.RUnlock()
	b.fileMu.Lock()
	s.Bytes = b.size
	b.fileMu.Unlock()
	b.stats.fill(&s)
	s.PendingFlush = b.c.pendingCount()
	return s
}

// Close implements Store: drain the committer, then close the log file.
func (b *Bolt) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	err := b.c.close()
	b.fileMu.Lock()
	defer b.fileMu.Unlock()
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CopyDurable implements DurableCopier: dst receives the fsynced prefix of
// the log — the exact image a kill -9 is guaranteed to leave behind.
func (b *Bolt) CopyDurable(dst string) error {
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b.fileMu.Lock()
	defer b.fileMu.Unlock()
	return copyPrefix(b.path, dst, b.durable)
}

// --- flusher side -----------------------------------------------------------

// flushBatch persists one group-commit batch, then publishes the batch's
// index updates; runs on the committer goroutine only.
func (b *Bolt) flushBatch(ops [][]byte) error {
	b.fileMu.Lock()
	defer b.fileMu.Unlock()
	if b.bw == nil {
		b.bw = bufio.NewWriterSize(b.f, 1<<16)
	} else {
		b.bw.Reset(b.f)
	}
	w := b.bw
	offset := b.size
	for _, rec := range ops {
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := b.f.Sync(); err != nil {
		return err
	}

	// The bytes are durable: publish the index entries.
	b.mu.Lock()
	for _, rec := range ops {
		op := rec[4]
		klen := int(binary.LittleEndian.Uint16(rec[5:]))
		vlen := int(binary.LittleEndian.Uint32(rec[7:]))
		key := string(rec[boltHeader : boltHeader+klen])
		switch op {
		case boltOpPut:
			ref := valueRef{off: offset + boltHeader + int64(klen), size: int64(vlen), rec: int64(len(rec))}
			b.index[key] = append(b.index[key], ref)
			b.liveBytes += ref.rec
		case boltOpRep:
			for _, old := range b.index[key] {
				b.liveBytes -= old.rec
			}
			ref := valueRef{off: offset + boltHeader + int64(klen), size: int64(vlen), rec: int64(len(rec))}
			b.index[key] = []valueRef{ref}
			b.liveBytes += ref.rec
		case boltOpDel:
			for _, old := range b.index[key] {
				b.liveBytes -= old.rec
			}
			delete(b.index, key)
		}
		offset += int64(len(rec))
	}
	live := b.liveBytes
	b.mu.Unlock()
	b.size = offset
	b.durable = offset

	limit := b.opts.SegmentMaxBytes * int64(b.opts.CompactAfterSegments)
	if b.size >= limit && live*2 < b.size {
		if err := b.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked rewrites the log with only live records. It holds both the
// file mutex (caller) and the index mutex — stop-the-world — so no reader
// can observe the offset swap mid-flight. The rename is the commit point.
func (b *Bolt) compactLocked() error {
	b.mu.Lock()
	defer b.mu.Unlock()

	tmp, err := os.CreateTemp(filepath.Dir(b.path), ".bolt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	keys := make([]string, 0, len(b.index))
	for k := range b.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	newIndex := make(map[string][]valueRef, len(b.index))
	var offset, live int64
	for _, k := range keys {
		for _, ref := range b.index[k] {
			val := make([]byte, ref.size)
			if _, err := b.f.ReadAt(val, ref.off); err != nil && !(err == io.EOF && ref.size == 0) {
				return fail(fmt.Errorf("store: compaction reading %s: %w", b.path, err))
			}
			rec, err := encodeRecord(boltOpPut, k, val)
			if err != nil {
				return fail(err)
			}
			if _, err := w.Write(rec); err != nil {
				return fail(err)
			}
			nref := valueRef{off: offset + boltHeader + int64(len(k)), size: ref.size, rec: int64(len(rec))}
			newIndex[k] = append(newIndex[k], nref)
			offset += int64(len(rec))
			live += int64(len(rec))
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, b.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := syncDir(filepath.Dir(b.path)); err != nil {
		return err
	}
	nf, err := os.OpenFile(b.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(offset, io.SeekStart); err != nil {
		nf.Close()
		return err
	}
	b.f.Close()
	b.f = nf
	b.index = newIndex
	b.liveBytes = live
	b.size = offset
	b.durable = offset
	b.stats.noteCompaction()
	return nil
}

package store

import (
	"sync"
	"time"
)

// batch is one group-commit round: the encoded mutations it carries and the
// completion signal its waiters block on.
type batch struct {
	ops  [][]byte
	done chan struct{}
	err  error
}

// committer is the group-commit engine shared by the durable backends. A
// single flusher goroutine drains batches: it hands each batch's bytes to
// the backend's flush function (write + fsync + post-processing such as
// segment rotation), then releases every waiter at once. While a flush is in
// flight new mutations pile into the next batch, so concurrent writers share
// fsyncs without any of them observing a non-durable acknowledgement.
type committer struct {
	cfg   FlushConfig
	stats *counters

	// flush persists one batch of encoded records; it runs on the flusher
	// goroutine only and must return once the bytes are on disk.
	flush func(ops [][]byte) error

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*batch // open + full batches, oldest first
	pending int      // mutations accepted but not yet durable
	closed  bool
	failed  error // sticky: first flush error poisons the store

	wg sync.WaitGroup
}

func newCommitter(cfg FlushConfig, stats *counters, flush func([][]byte) error) *committer {
	c := &committer{cfg: cfg, stats: stats, flush: flush}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(1)
	go c.run()
	return c
}

// commit enqueues one encoded mutation and blocks until the batch holding it
// is durable. The caller must NOT hold the backend mutex used to order
// mutations while waiting — enqueue under it, then release it before the
// wait (enqueue order is batch order, so versions stay consistent).
func (c *committer) commit(enc []byte) error {
	b, err := c.enqueue(enc)
	if err != nil {
		return err
	}
	return c.wait(b)
}

// enqueue is the first half of commit: it adds the mutation to the open
// batch and returns immediately. Backends call it while holding their
// ordering mutex so batch order matches version order, then release that
// mutex and wait. Lock order is backend mutex → c.mu, never the reverse.
func (c *committer) enqueue(enc []byte) (*batch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClosed
	}
	if c.failed != nil {
		return nil, c.failed
	}
	b := c.tail()
	b.ops = append(b.ops, enc)
	c.pending++
	c.stats.gPending.Set(float64(c.pending))
	c.cond.Broadcast()
	return b, nil
}

// wait blocks until the batch is durable.
func (c *committer) wait(b *batch) error {
	<-b.done
	return b.err
}

// tail returns the open batch, starting a new one when none is open or the
// last is full; caller holds c.mu.
func (c *committer) tail() *batch {
	if n := len(c.queue); n > 0 && len(c.queue[n-1].ops) < c.cfg.maxBatch() {
		return c.queue[n-1]
	}
	b := &batch{done: make(chan struct{})}
	c.queue = append(c.queue, b)
	return b
}

// sync blocks until everything accepted so far is durable.
func (c *committer) sync() error {
	c.mu.Lock()
	for c.pending > 0 && c.failed == nil && !c.closed {
		c.cond.Wait()
	}
	err := c.failed
	c.mu.Unlock()
	return err
}

// pendingCount reports mutations awaiting fsync.
func (c *committer) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// close drains the queue and stops the flusher.
func (c *committer) close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	err := c.failed
	c.mu.Unlock()
	return err
}

// run is the flusher goroutine.
func (c *committer) run() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.closed {
			c.mu.Unlock()
			return
		}
		b := c.queue[0]
		if c.cfg.Interval > 0 && len(b.ops) < c.cfg.maxBatch() && !c.closed {
			// Linger: let more mutations join this batch. Re-check under the
			// lock after sleeping — the batch may have filled meanwhile.
			c.mu.Unlock()
			time.Sleep(c.cfg.Interval)
			c.mu.Lock()
			b = c.queue[0]
		}
		c.queue = c.queue[1:]
		c.mu.Unlock()

		start := time.Now()
		err := c.flush(b.ops)
		c.stats.noteFlush(len(b.ops), time.Since(start))

		c.mu.Lock()
		c.pending -= len(b.ops)
		c.stats.gPending.Set(float64(c.pending))
		if err != nil && c.failed == nil {
			c.failed = err
		}
		c.cond.Broadcast()
		c.mu.Unlock()

		b.err = err
		close(b.done)
	}
}

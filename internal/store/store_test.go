package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// openBackend builds a backend of the given kind rooted in dir.
func openBackend(t *testing.T, kind, dir string, opts Options) Store {
	t.Helper()
	s, err := Open(dsnFor(kind, dir), opts)
	if err != nil {
		t.Fatalf("open %s: %v", kind, err)
	}
	return s
}

func dsnFor(kind, dir string) string {
	switch kind {
	case "mem":
		return "mem:"
	case "file":
		return "file:" + filepath.Join(dir, "segs")
	case "bolt":
		return "bolt:" + filepath.Join(dir, "kv.db")
	}
	panic("unknown kind " + kind)
}

var backends = []string{"mem", "file", "bolt"}

func TestRoundTrip(t *testing.T) {
	for _, kind := range backends {
		t.Run(kind, func(t *testing.T) {
			s := openBackend(t, kind, t.TempDir(), Options{})
			defer s.Close()
			if s.Kind() != kind {
				t.Fatalf("Kind() = %q, want %q", s.Kind(), kind)
			}

			v1, err := s.Put("a", []byte("one"))
			if err != nil || v1 != 1 {
				t.Fatalf("Put = (%d, %v), want (1, nil)", v1, err)
			}
			v2, err := s.Put("a", []byte("two"))
			if err != nil || v2 != 2 {
				t.Fatalf("Put = (%d, %v), want (2, nil)", v2, err)
			}
			if _, err := s.Put("b/x", []byte("bee")); err != nil {
				t.Fatal(err)
			}

			val, ver, found, err := s.Get("a", 0)
			if err != nil || !found || ver != 2 || string(val) != "two" {
				t.Fatalf("Get latest = (%q, %d, %v, %v)", val, ver, found, err)
			}
			val, ver, found, err = s.Get("a", 1)
			if err != nil || !found || ver != 1 || string(val) != "one" {
				t.Fatalf("Get v1 = (%q, %d, %v, %v)", val, ver, found, err)
			}
			if _, _, found, _ := s.Get("a", 3); found {
				t.Fatal("Get beyond last version reported found")
			}
			if _, _, found, _ := s.Get("nope", 0); found {
				t.Fatal("Get of absent key reported found")
			}

			if keys := s.Keys(""); !reflect.DeepEqual(keys, []string{"a", "b/x"}) {
				t.Fatalf("Keys(\"\") = %v", keys)
			}
			if keys := s.Keys("b/"); !reflect.DeepEqual(keys, []string{"b/x"}) {
				t.Fatalf("Keys(\"b/\") = %v", keys)
			}

			if err := s.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if _, _, found, _ := s.Get("a", 0); found {
				t.Fatal("Get after Delete reported found")
			}
			// Versions restart at 1 after a delete.
			if v, err := s.Put("a", []byte("again")); err != nil || v != 1 {
				t.Fatalf("Put after Delete = (%d, %v), want (1, nil)", v, err)
			}
			// Deleting an absent key is a no-op, not an error.
			if err := s.Delete("ghost"); err != nil {
				t.Fatal(err)
			}

			st := s.Stats()
			if st.Backend != kind {
				t.Fatalf("Stats backend = %q", st.Backend)
			}
			if st.Keys != 2 || st.Records != 2 {
				t.Fatalf("Stats keys/records = %d/%d, want 2/2", st.Keys, st.Records)
			}
		})
	}
}

// TestReplace exercises the atomic discard-and-write: history collapses to a
// single version 1 on every backend, including across a reopen of the
// durable pair (the "rep" record must replay correctly).
func TestReplace(t *testing.T) {
	for _, kind := range backends {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			s := openBackend(t, kind, dir, Options{})
			for i := 0; i < 5; i++ {
				if _, err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			ver, err := s.Replace("k", []byte("snap"))
			if err != nil || ver != 1 {
				t.Fatalf("Replace = (%d, %v), want (1, nil)", ver, err)
			}
			// Replacing an absent key is a plain write of version 1.
			if v, err := s.Replace("fresh", []byte("first")); err != nil || v != 1 {
				t.Fatalf("Replace absent = (%d, %v), want (1, nil)", v, err)
			}
			check := func(s Store, when string) {
				val, v, found, err := s.Get("k", 0)
				if err != nil || !found || v != 1 || string(val) != "snap" {
					t.Fatalf("%s: Get latest = (%q, %d, %v, %v), want (snap, 1, true, nil)", when, val, v, found, err)
				}
				if _, _, found, _ := s.Get("k", 2); found {
					t.Fatalf("%s: pre-replace version survived", when)
				}
				// Appends continue from the collapsed history.
				if v, err := s.Put("k", []byte("after")); err != nil || v != 2 {
					t.Fatalf("%s: Put after Replace = (%d, %v), want (2, nil)", when, v, err)
				}
				if err := s.Delete("k"); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Replace("k", []byte("snap")); err != nil {
					t.Fatal(err)
				}
			}
			check(s, "live")
			if kind == "mem" {
				s.Close()
				return
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openBackend(t, kind, dir, Options{})
			defer s2.Close()
			check(s2, "reopened")
		})
	}
}

// TestPutAsync pins the PutAsync contract on every backend: versions are
// assigned in call order interleaved with synchronous mutations, the record
// is durable once a later Sync (or Close) returns, and it survives reopen.
// Read-your-writes timing deliberately stays unpinned — the file backend
// updates its live map at enqueue while bolt publishes after the fsync — so
// reads here only happen after a Sync barrier.
func TestPutAsync(t *testing.T) {
	for _, kind := range backends {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			s := openBackend(t, kind, dir, Options{})
			if v, err := s.Put("k", []byte("v1")); err != nil || v != 1 {
				t.Fatalf("Put = (%d, %v), want (1, nil)", v, err)
			}
			// Async appends claim the next versions in call order...
			if v, err := s.PutAsync("k", []byte("v2")); err != nil || v != 2 {
				t.Fatalf("PutAsync = (%d, %v), want (2, nil)", v, err)
			}
			if v, err := s.PutAsync("k", []byte("v3")); err != nil || v != 3 {
				t.Fatalf("PutAsync = (%d, %v), want (3, nil)", v, err)
			}
			// ...and a later synchronous append lands after them.
			if v, err := s.Put("k", []byte("v4")); err != nil || v != 4 {
				t.Fatalf("Put after async = (%d, %v), want (4, nil)", v, err)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			for v := 1; v <= 4; v++ {
				val, _, found, err := s.Get("k", v)
				if err != nil || !found || string(val) != fmt.Sprintf("v%d", v) {
					t.Fatalf("Get v%d = (%q, %v, %v)", v, val, found, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if kind == "mem" {
				return
			}
			s2 := openBackend(t, kind, dir, Options{})
			defer s2.Close()
			val, ver, found, err := s2.Get("k", 0)
			if err != nil || !found || ver != 4 || string(val) != "v4" {
				t.Fatalf("reopened Get latest = (%q, %d, %v, %v), want (v4, 4, true, nil)", val, ver, found, err)
			}
			if val, _, found, _ := s2.Get("k", 3); !found || string(val) != "v3" {
				t.Fatalf("async append lost across reopen: (%q, %v)", val, found)
			}
		})
	}
}

func TestDurableReopen(t *testing.T) {
	for _, kind := range []string{"file", "bolt"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			s := openBackend(t, kind, dir, Options{})
			for i := 0; i < 10; i++ {
				if _, err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Put("other", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("other"); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2 := openBackend(t, kind, dir, Options{})
			defer s2.Close()
			val, ver, found, err := s2.Get("k", 0)
			if err != nil || !found || ver != 10 || string(val) != "v9" {
				t.Fatalf("after reopen Get = (%q, %d, %v, %v)", val, ver, found, err)
			}
			if _, _, found, _ := s2.Get("other", 0); found {
				t.Fatal("deleted key survived reopen")
			}
			if _, _, found, _ := s2.Get("k", 3); !found {
				t.Fatal("old version lost on reopen")
			}
		})
	}
}

func TestFileRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentMaxBytes: 512, CompactAfterSegments: 2}
	s, err := OpenFile(filepath.Join(dir, "segs"), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Enough churn on one key to force several rotations and at least one
	// compaction fold.
	payload := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 100; i++ {
		if _, err := s.Put("hot", payload); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 && i < 90 {
			if err := s.Delete("hot"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Put("cold", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran (segments=%d bytes=%d)", st.Segments, st.Bytes)
	}
	if st.LastCompaction.IsZero() {
		t.Fatal("compaction ran but LastCompaction is zero")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(filepath.Join(dir, "segs"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	val, ver, found, err := s2.Get("hot", 0)
	if err != nil || !found || ver != 10 || string(val) != string(payload) {
		t.Fatalf("after compaction+reopen Get hot = (len %d, %d, %v, %v)", len(val), ver, found, err)
	}
	if _, _, found, _ := s2.Get("cold", 0); !found {
		t.Fatal("cold key lost through compaction")
	}
}

func TestBoltCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentMaxBytes: 256, CompactAfterSegments: 2}
	s, err := OpenBolt(filepath.Join(dir, "kv.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 64)
	for i := 0; i < 100; i++ {
		if _, err := s.Put("hot", payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("hot"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put("keep", []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("no compaction ran")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenBolt(filepath.Join(dir, "kv.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	val, _, found, err := s2.Get("keep", 0)
	if err != nil || !found || string(val) != "survivor" {
		t.Fatalf("after compaction+reopen Get keep = (%q, %v, %v)", val, found, err)
	}
	if _, _, found, _ := s2.Get("hot", 0); found {
		t.Fatal("deleted key resurrected by compaction")
	}
}

func TestFileTornTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	s, err := OpenFile(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("a", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append half a record to the active segment.
	seg := filepath.Join(dir, "seg-00000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","key":"torn","va`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFile(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if _, _, found, _ := s2.Get("a", 0); !found {
		t.Fatal("intact record lost with the torn tail")
	}
	if _, _, found, _ := s2.Get("torn", 0); found {
		t.Fatal("torn record survived")
	}
	// The truncated store accepts writes again.
	if _, err := s2.Put("b", []byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestBoltTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	s, err := OpenBolt(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("a", []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := encodeRecord(boltOpPut, "torn", []byte("partial-value"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenBolt(path, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if _, _, found, _ := s2.Get("a", 0); !found {
		t.Fatal("intact record lost with the torn tail")
	}
	if _, _, found, _ := s2.Get("torn", 0); found {
		t.Fatal("torn record survived")
	}
	if _, err := s2.Put("b", []byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	// Many concurrent writers against the file backend must need far fewer
	// fsyncs than writes: batches form while a flush is in flight.
	s, err := OpenFile(filepath.Join(t.TempDir(), "segs"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, per = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.Put(fmt.Sprintf("w%d", w), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*per)
	}
	if st.Flushes >= st.Appends {
		t.Fatalf("group commit ineffective: %d flushes for %d appends", st.Flushes, st.Appends)
	}
	if st.Batched == 0 {
		t.Fatal("no append ever shared a batch")
	}
	if st.PendingFlush != 0 {
		t.Fatalf("pendingFlush = %d after all writes acked", st.PendingFlush)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	for _, kind := range backends {
		t.Run(kind, func(t *testing.T) {
			s := openBackend(t, kind, t.TempDir(), Options{})
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Put("k", []byte("v")); err == nil {
				t.Fatal("Put on closed store succeeded")
			}
			// Close is idempotent.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOpenDSN(t *testing.T) {
	for _, bad := range []string{"", "mem", "mem:extra", "file:", "bolt:", "redis:host"} {
		if s, err := Open(bad, Options{}); err == nil {
			s.Close()
			t.Fatalf("Open(%q) succeeded", bad)
		}
	}
}

// TestBackendEquivalence drives all three backends through the same random
// op sequence — including reopens of the durable pair — and requires
// observationally identical results throughout, with Memory as the reference
// semantics.
func TestBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	dirs := map[string]string{"file": t.TempDir(), "bolt": t.TempDir()}
	ref := NewMemory(Options{})
	defer ref.Close()
	opts := Options{SegmentMaxBytes: 1024, CompactAfterSegments: 2}
	stores := map[string]Store{
		"file": openBackend(t, "file", dirs["file"], opts),
		"bolt": openBackend(t, "bolt", dirs["bolt"], opts),
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	reopen := func(kind string) {
		if err := stores[kind].Close(); err != nil {
			t.Fatalf("close %s: %v", kind, err)
		}
		stores[kind] = openBackend(t, kind, dirs[kind], opts)
	}

	keys := []string{"journal/T-1", "journal/T-2", "checkpoint/T-1", "meta", "x"}
	for step := 0; step < 400; step++ {
		key := keys[rng.Intn(len(keys))]
		switch op := rng.Intn(11); {
		case op < 5: // put
			val := []byte(fmt.Sprintf("s%d-%d", step, rng.Int63()))
			wantVer, err := ref.Put(key, val)
			if err != nil {
				t.Fatal(err)
			}
			for kind, s := range stores {
				ver, err := s.Put(key, val)
				if err != nil || ver != wantVer {
					t.Fatalf("step %d: %s Put(%q) = (%d, %v), want (%d, nil)", step, kind, key, ver, err, wantVer)
				}
			}
		case op < 7: // get random version (0 = latest)
			_, maxVer, _, _ := ref.Get(key, 0)
			ver := 0
			if maxVer > 0 && rng.Intn(2) == 0 {
				ver = 1 + rng.Intn(maxVer)
			}
			wantVal, wantVer, wantFound, _ := ref.Get(key, ver)
			for kind, s := range stores {
				val, gv, found, err := s.Get(key, ver)
				if err != nil {
					t.Fatalf("step %d: %s Get: %v", step, kind, err)
				}
				if found != wantFound || gv != wantVer || !bytes.Equal(val, wantVal) {
					t.Fatalf("step %d: %s Get(%q, %d) = (%q, %d, %v), want (%q, %d, %v)",
						step, kind, key, ver, val, gv, found, wantVal, wantVer, wantFound)
				}
			}
		case op < 8: // delete
			if err := ref.Delete(key); err != nil {
				t.Fatal(err)
			}
			for kind, s := range stores {
				if err := s.Delete(key); err != nil {
					t.Fatalf("step %d: %s Delete: %v", step, kind, err)
				}
			}
		case op < 9: // replace: history collapses to a single version 1
			val := []byte(fmt.Sprintf("r%d-%d", step, rng.Int63()))
			wantVer, err := ref.Replace(key, val)
			if err != nil {
				t.Fatal(err)
			}
			for kind, s := range stores {
				ver, err := s.Replace(key, val)
				if err != nil || ver != wantVer {
					t.Fatalf("step %d: %s Replace(%q) = (%d, %v), want (%d, nil)", step, kind, key, ver, err, wantVer)
				}
			}
		case op < 10: // list
			want := ref.Keys("journal/")
			for kind, s := range stores {
				if got := s.Keys("journal/"); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: %s Keys = %v, want %v", step, kind, got, want)
				}
			}
		default: // reopen a durable backend: state must survive
			kind := []string{"file", "bolt"}[rng.Intn(2)]
			reopen(kind)
		}
	}
	// Final full-state comparison.
	for _, key := range keys {
		_, maxVer, _, _ := ref.Get(key, 0)
		for v := 1; v <= maxVer; v++ {
			wantVal, _, _, _ := ref.Get(key, v)
			for kind, s := range stores {
				val, _, found, err := s.Get(key, v)
				if err != nil || !found || !bytes.Equal(val, wantVal) {
					t.Fatalf("final: %s Get(%q, %d) = (%q, %v, %v), want %q", kind, key, v, val, found, err, wantVal)
				}
			}
		}
	}
}

// TestCopyDurableIsConsistent asserts the clone a mid-write CopyDurable
// produces always opens cleanly and contains every acknowledged write.
func TestCopyDurableIsConsistent(t *testing.T) {
	for _, kind := range []string{"file", "bolt"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			s := openBackend(t, kind, dir, Options{SegmentMaxBytes: 512, CompactAfterSegments: 2})
			defer s.Close()

			var acked sync.Map
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						key := fmt.Sprintf("w%d-%d", w, i)
						if _, err := s.Put(key, []byte("payload")); err != nil {
							return
						}
						acked.Store(key, true)
					}
				}(w)
			}

			// Take crash images while writes are in flight.
			clone := filepath.Join(t.TempDir(), "clone")
			for i := 0; i < 5; i++ {
				target := fmt.Sprintf("%s-%d", clone, i)
				if err := s.(DurableCopier).CopyDurable(target); err != nil {
					t.Errorf("CopyDurable: %v", err)
				}
			}
			close(stop)
			wg.Wait()

			// The final image (taken after all writes are acked) must hold
			// every acknowledged key.
			final := clone + "-final"
			if err := s.(DurableCopier).CopyDurable(final); err != nil {
				t.Fatal(err)
			}
			var c Store
			var err error
			if kind == "file" {
				c, err = OpenFile(final, Options{})
			} else {
				c, err = OpenBolt(final, Options{})
			}
			if err != nil {
				t.Fatalf("open crash image: %v", err)
			}
			defer c.Close()
			acked.Range(func(k, _ any) bool {
				if _, _, found, _ := c.Get(k.(string), 0); !found {
					t.Errorf("acked key %s missing from crash image", k)
					return false
				}
				return true
			})

			// Mid-flight images must at least open and replay cleanly.
			for i := 0; i < 5; i++ {
				target := fmt.Sprintf("%s-%d", clone, i)
				var mid Store
				if kind == "file" {
					mid, err = OpenFile(target, Options{})
				} else {
					mid, err = OpenBolt(target, Options{})
				}
				if err != nil {
					t.Fatalf("open mid-flight image %d: %v", i, err)
				}
				mid.Close()
			}
		})
	}
}

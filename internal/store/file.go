package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the append-only segmented backend. Every mutation is one JSON line
// appended to the active segment through the group committer; the live state
// is kept in memory (reads never touch the disk), so the segments are purely
// the durability log:
//
//	dir/seg-00000003.log    sealed segments (immutable, fully fsynced)
//	dir/seg-00000004.log    the active segment (append + group fsync)
//	dir/snap-00000002.log   at most one snapshot: the fold of every segment
//	                        with index <= 2, written by compaction
//
// The active segment rotates once it outgrows SegmentMaxBytes; when enough
// sealed segments accumulate, compaction folds them (and the previous
// snapshot) into a fresh snapshot and deletes them. Compaction reads only
// sealed files — never the live map — so it cannot observe a mutation whose
// fsync is still in flight, and a crash at any point leaves either the old
// or the new snapshot intact.
//
// On open, a torn final line in the active segment (the half-written batch a
// kill left behind) is truncated away; corruption anywhere else is an error.
type File struct {
	dir   string
	opts  Options
	stats *counters
	c     *committer

	mu     sync.RWMutex // guards data and closed
	data   map[string][][]byte
	closed bool

	fileMu  sync.Mutex // guards the segment metadata below
	sealed  []segment  // sealed segments, ascending index
	snap    *segment   // current snapshot, nil when none
	active  *os.File
	actIdx  int
	actSize int64 // bytes written to the active segment
	durable int64 // bytes of the active segment known fsynced

	// bw is the flusher's buffered writer, reused across batches (reset to
	// the active segment each flush) so group commit does not allocate a
	// fresh 64 KiB buffer per fsync.
	bw *bufio.Writer
}

// segment is one immutable on-disk file.
type segment struct {
	path string
	idx  int
	size int64
}

// fileOp is the JSON-line record format.
type fileOp struct {
	Op  string `json:"op"` // "put", "rep", or "del"
	Key string `json:"key"`
	Val []byte `json:"val,omitempty"`
}

// OpenFile opens (or initializes) a segmented file store rooted at dir.
func OpenFile(dir string, opts Options) (*File, error) {
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if opts.CompactAfterSegments <= 0 {
		opts.CompactAfterSegments = DefaultCompactAfterSegments
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: file backend: %w", err)
	}
	f := &File{
		dir:   dir,
		opts:  opts,
		stats: newCounters(opts.Telemetry),
		data:  make(map[string][][]byte),
	}
	if err := f.load(); err != nil {
		return nil, err
	}
	f.c = newCommitter(opts.Flush, f.stats, f.flushBatch)
	f.stats.gSegments.Set(float64(f.segmentCount()))
	return f, nil
}

// load scans dir, prunes files superseded by the newest snapshot, replays
// the snapshot and the remaining segments into the live map, and opens the
// active segment.
func (f *File) load() error {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return fmt.Errorf("store: file backend: %w", err)
	}
	var segs []segment
	var snaps []segment
	for _, e := range entries {
		name := e.Name()
		var idx int
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "seg-%08d.log", &idx); err != nil {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return err
			}
			segs = append(segs, segment{path: filepath.Join(f.dir, name), idx: idx, size: info.Size()})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "snap-%08d.log", &idx); err != nil {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return err
			}
			snaps = append(snaps, segment{path: filepath.Join(f.dir, name), idx: idx, size: info.Size()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].idx < snaps[j].idx })

	// Keep only the newest snapshot; older snapshots and any segment it
	// already folded are leftovers of a crash mid-compaction-cleanup.
	if n := len(snaps); n > 0 {
		f.snap = &snaps[n-1]
		for _, s := range snaps[:n-1] {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
		kept := segs[:0]
		for _, s := range segs {
			if s.idx <= f.snap.idx {
				if err := os.Remove(s.path); err != nil {
					return err
				}
				continue
			}
			kept = append(kept, s)
		}
		segs = kept
	}

	if f.snap != nil {
		if err := f.replayFile(f.snap.path, false, nil); err != nil {
			return err
		}
	}
	for i, s := range segs {
		last := i == len(segs)-1
		if err := f.replayFile(s.path, last, &segs[i].size); err != nil {
			return err
		}
	}

	// The highest segment becomes the active one; with none, start fresh
	// after the snapshot.
	if n := len(segs); n > 0 {
		f.actIdx = segs[n-1].idx
		f.actSize = segs[n-1].size
		f.sealed = segs[:n-1]
	} else {
		f.actIdx = 1
		if f.snap != nil {
			f.actIdx = f.snap.idx + 1
		}
	}
	active, err := os.OpenFile(f.segPath(f.actIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	f.active = active
	f.durable = f.actSize
	return nil
}

// replayFile applies one segment's ops to the live map. When tolerateTail is
// set (the active segment), a torn final record is truncated away and size
// is updated; anywhere else corruption is an error naming the offset.
func (f *File) replayFile(path string, tolerateTail bool, size *int64) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 1<<16)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF && len(line) == 0 {
			return nil
		}
		torn := err == io.EOF // unterminated final line
		if err != nil && err != io.EOF {
			return fmt.Errorf("store: reading %s at offset %d: %w", path, offset, err)
		}
		var op fileOp
		if uerr := json.Unmarshal(line, &op); uerr != nil || op.Key == "" {
			if tolerateTail {
				return f.truncateTail(path, offset, size)
			}
			return fmt.Errorf("store: corrupt record in %s at offset %d", path, offset)
		}
		if torn {
			// A parseable but unterminated line: the newline is part of the
			// record frame, so treat it as torn too.
			if tolerateTail {
				return f.truncateTail(path, offset, size)
			}
			return fmt.Errorf("store: torn record in %s at offset %d", path, offset)
		}
		f.apply(op)
		offset += int64(len(line))
	}
}

// truncateTail drops the torn batch tail a crash left in the active segment.
func (f *File) truncateTail(path string, offset int64, size *int64) error {
	if err := os.Truncate(path, offset); err != nil {
		return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
	}
	if size != nil {
		*size = offset
	}
	return nil
}

// apply folds one op into the live map (open/compaction replay only).
func (f *File) apply(op fileOp) {
	switch op.Op {
	case "put":
		f.data[op.Key] = append(f.data[op.Key], op.Val)
	case "rep":
		f.data[op.Key] = [][]byte{op.Val}
	case "del":
		delete(f.data, op.Key)
	}
}

func (f *File) segPath(idx int) string {
	return filepath.Join(f.dir, fmt.Sprintf("seg-%08d.log", idx))
}

func (f *File) snapPath(idx int) string {
	return filepath.Join(f.dir, fmt.Sprintf("snap-%08d.log", idx))
}

// Kind implements Store.
func (f *File) Kind() string { return "file" }

// Put implements Store: apply to the live map, enqueue the record, and
// return once its batch is fsynced.
func (f *File) Put(key string, value []byte) (int, error) {
	if key == "" {
		return 0, fmt.Errorf("store: empty key")
	}
	cp := append([]byte(nil), value...)
	enc, err := encodeOp(fileOp{Op: "put", Key: key, Val: cp})
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, errClosed
	}
	f.data[key] = append(f.data[key], cp)
	ver := len(f.data[key])
	b, err := f.c.enqueue(enc)
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := f.c.wait(b); err != nil {
		return 0, err
	}
	f.stats.appends.Add(1)
	f.stats.mAppends.Inc()
	return ver, nil
}

// PutAsync implements Store: the record joins the log (and the live map) in
// call order, but the call returns without waiting for the fsync.
func (f *File) PutAsync(key string, value []byte) (int, error) {
	if key == "" {
		return 0, fmt.Errorf("store: empty key")
	}
	cp := append([]byte(nil), value...)
	enc, err := encodeOp(fileOp{Op: "put", Key: key, Val: cp})
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, errClosed
	}
	f.data[key] = append(f.data[key], cp)
	ver := len(f.data[key])
	_, err = f.c.enqueue(enc)
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	f.stats.appends.Add(1)
	f.stats.mAppends.Inc()
	return ver, nil
}

// Replace implements Store: a single "rep" record both discards the key's
// history and writes value as version 1, so the discard and the write share
// one fsync and cannot be torn apart by a crash.
func (f *File) Replace(key string, value []byte) (int, error) {
	if key == "" {
		return 0, fmt.Errorf("store: empty key")
	}
	cp := append([]byte(nil), value...)
	enc, err := encodeOp(fileOp{Op: "rep", Key: key, Val: cp})
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, errClosed
	}
	f.data[key] = [][]byte{cp}
	b, err := f.c.enqueue(enc)
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := f.c.wait(b); err != nil {
		return 0, err
	}
	f.stats.appends.Add(1)
	f.stats.mAppends.Inc()
	return 1, nil
}

// Get implements Store; reads are served from the live map.
func (f *File) Get(key string, version int) ([]byte, int, bool, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	versions := f.data[key]
	if len(versions) == 0 {
		return nil, 0, false, nil
	}
	if version == 0 {
		version = len(versions)
	}
	if version < 1 || version > len(versions) {
		return nil, 0, false, nil
	}
	return append([]byte(nil), versions[version-1]...), version, true, nil
}

// Keys implements Store.
func (f *File) Keys(prefix string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var keys []string
	for k := range f.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete implements Store. Deleting an absent key writes nothing.
func (f *File) Delete(key string) error {
	enc, err := encodeOp(fileOp{Op: "del", Key: key})
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errClosed
	}
	if _, ok := f.data[key]; !ok {
		f.mu.Unlock()
		return nil
	}
	delete(f.data, key)
	b, err := f.c.enqueue(enc)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	if err := f.c.wait(b); err != nil {
		return err
	}
	f.stats.appends.Add(1)
	f.stats.mAppends.Inc()
	return nil
}

// Sync implements Store.
func (f *File) Sync() error { return f.c.sync() }

// Stats implements Store.
func (f *File) Stats() Stats {
	f.mu.RLock()
	records := 0
	for _, vs := range f.data {
		records += len(vs)
	}
	s := Stats{Backend: "file", Keys: len(f.data), Records: records}
	f.mu.RUnlock()

	f.fileMu.Lock()
	s.Segments = f.segmentCountLocked()
	s.Bytes = f.actSize
	for _, seg := range f.sealed {
		s.Bytes += seg.size
	}
	if f.snap != nil {
		s.Bytes += f.snap.size
	}
	f.fileMu.Unlock()

	f.stats.fill(&s)
	s.PendingFlush = f.c.pendingCount()
	return s
}

func (f *File) segmentCount() int {
	f.fileMu.Lock()
	defer f.fileMu.Unlock()
	return f.segmentCountLocked()
}

func (f *File) segmentCountLocked() int {
	n := len(f.sealed) + 1 // + active
	if f.snap != nil {
		n++
	}
	return n
}

// Close implements Store: drain the committer, then close the active file.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	err := f.c.close()
	f.fileMu.Lock()
	defer f.fileMu.Unlock()
	if cerr := f.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// CopyDurable implements DurableCopier: dst receives the snapshot, every
// sealed segment, and the fsynced prefix of the active segment — exactly the
// state a kill -9 is guaranteed to leave behind.
func (f *File) CopyDurable(dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	f.fileMu.Lock()
	defer f.fileMu.Unlock()
	type job struct {
		src, dst string
		bytes    int64
	}
	var jobs []job
	if f.snap != nil {
		jobs = append(jobs, job{f.snap.path, filepath.Join(dst, filepath.Base(f.snap.path)), f.snap.size})
	}
	for _, seg := range f.sealed {
		jobs = append(jobs, job{seg.path, filepath.Join(dst, filepath.Base(seg.path)), seg.size})
	}
	jobs = append(jobs, job{f.segPath(f.actIdx), filepath.Join(dst, filepath.Base(f.segPath(f.actIdx))), f.durable})
	for _, j := range jobs {
		if err := copyPrefix(j.src, j.dst, j.bytes); err != nil {
			return err
		}
	}
	return nil
}

// copyPrefix copies the first n bytes of src to dst.
func copyPrefix(src, dst string, n int64) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.CopyN(out, in, n); err != nil && err != io.EOF {
		out.Close()
		return err
	}
	return out.Close()
}

// --- flusher side -----------------------------------------------------------

// flushBatch persists one group-commit batch: buffered write, one fsync,
// then rotation and compaction bookkeeping. Runs on the committer goroutine.
func (f *File) flushBatch(ops [][]byte) error {
	f.fileMu.Lock()
	defer f.fileMu.Unlock()
	if f.bw == nil {
		f.bw = bufio.NewWriterSize(f.active, 1<<16)
	} else {
		f.bw.Reset(f.active)
	}
	w := f.bw
	var n int64
	for _, op := range ops {
		m, err := w.Write(op)
		if err != nil {
			return err
		}
		n += int64(m)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.active.Sync(); err != nil {
		return err
	}
	f.actSize += n
	f.durable = f.actSize

	if f.actSize >= f.opts.SegmentMaxBytes {
		if err := f.rotateLocked(); err != nil {
			return err
		}
		if len(f.sealed) >= f.opts.CompactAfterSegments {
			if err := f.compactLocked(); err != nil {
				return err
			}
		}
		f.stats.gSegments.Set(float64(f.segmentCountLocked()))
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (f *File) rotateLocked() error {
	if err := f.active.Close(); err != nil {
		return err
	}
	f.sealed = append(f.sealed, segment{path: f.segPath(f.actIdx), idx: f.actIdx, size: f.actSize})
	f.actIdx++
	next, err := os.OpenFile(f.segPath(f.actIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	f.active = next
	f.actSize = 0
	f.durable = 0
	return nil
}

// compactLocked folds the snapshot and every sealed segment into a fresh
// snapshot and deletes them. It reads only immutable, fully fsynced files,
// so the fold can never include a mutation whose fsync is pending.
func (f *File) compactLocked() error {
	fold := make(map[string][][]byte)
	applyInto := func(path string) error {
		file, err := os.Open(path)
		if err != nil {
			return err
		}
		defer file.Close()
		r := bufio.NewReaderSize(file, 1<<16)
		for {
			line, err := r.ReadBytes('\n')
			if err == io.EOF && len(line) == 0 {
				return nil
			}
			if err != nil {
				return fmt.Errorf("store: compaction reading %s: %w", path, err)
			}
			var op fileOp
			if err := json.Unmarshal(line, &op); err != nil {
				return fmt.Errorf("store: compaction: corrupt record in %s: %w", path, err)
			}
			switch op.Op {
			case "put":
				fold[op.Key] = append(fold[op.Key], op.Val)
			case "rep":
				fold[op.Key] = [][]byte{op.Val}
			case "del":
				delete(fold, op.Key)
			}
		}
	}
	var folded []string
	if f.snap != nil {
		if err := applyInto(f.snap.path); err != nil {
			return err
		}
		folded = append(folded, f.snap.path)
	}
	maxIdx := 0
	for _, seg := range f.sealed {
		if err := applyInto(seg.path); err != nil {
			return err
		}
		folded = append(folded, seg.path)
		if seg.idx > maxIdx {
			maxIdx = seg.idx
		}
	}

	tmp, err := os.CreateTemp(f.dir, ".snap-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	w := bufio.NewWriterSize(tmp, 1<<16)
	var size int64
	keys := make([]string, 0, len(fold))
	for k := range fold {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range fold[k] {
			enc, err := encodeOp(fileOp{Op: "put", Key: k, Val: v})
			if err != nil {
				tmp.Close()
				os.Remove(tmpName)
				return err
			}
			m, err := w.Write(enc)
			if err != nil {
				tmp.Close()
				os.Remove(tmpName)
				return err
			}
			size += int64(m)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	snapPath := f.snapPath(maxIdx)
	if err := os.Rename(tmpName, snapPath); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := syncDir(f.dir); err != nil {
		return err
	}
	// The rename is the commit point; the folded files are now garbage.
	for _, path := range folded {
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	f.snap = &segment{path: snapPath, idx: maxIdx, size: size}
	f.sealed = nil
	f.stats.noteCompaction()
	return nil
}

// syncDir fsyncs a directory so renames and removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// encodeOp renders one JSON-line record.
func encodeOp(op fileOp) ([]byte, error) {
	enc, err := json.Marshal(op)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	return append(enc, '\n'), nil
}

package services

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/agent"
)

// PutRequest stores a value under a key; each put creates a new version.
type PutRequest struct {
	Key   string
	Value []byte
}

// PutReply reports the stored version (1-based).
type PutReply struct{ Version int }

// GetRequest retrieves a key; Version 0 means latest.
type GetRequest struct {
	Key     string
	Version int
}

// GetReply carries the value.
type GetReply struct {
	Found   bool
	Version int
	Value   []byte
}

// ListRequest lists keys with a prefix.
type ListRequest struct{ Prefix string }

// ListReply lists matching keys sorted.
type ListReply struct{ Keys []string }

// DeleteRequest removes a key and all its versions.
type DeleteRequest struct{ Key string }

// Storage is the persistent storage service agent: a versioned key-value
// store. It backs checkpointing of long-lasting tasks and the archive of
// process descriptions (the system knowledge base).
type Storage struct {
	mu   sync.Mutex
	data map[string][][]byte
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{data: make(map[string][][]byte)}
}

// Put stores a new version and returns its number.
func (s *Storage) Put(key string, value []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := append([]byte(nil), value...)
	s.data[key] = append(s.data[key], cp)
	return len(s.data[key])
}

// Get returns the given version (0 = latest).
func (s *Storage) Get(key string, version int) (value []byte, ver int, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.data[key]
	if len(versions) == 0 {
		return nil, 0, false
	}
	if version == 0 {
		version = len(versions)
	}
	if version < 1 || version > len(versions) {
		return nil, 0, false
	}
	return append([]byte(nil), versions[version-1]...), version, true
}

// Keys returns the keys with the prefix, sorted.
func (s *Storage) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete removes a key.
func (s *Storage) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// HandleMessage implements agent.Handler.
func (s *Storage) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case PutRequest:
		_ = ctx.Reply(msg, agent.Inform, PutReply{Version: s.Put(req.Key, req.Value)})
	case GetRequest:
		value, ver, found := s.Get(req.Key, req.Version)
		_ = ctx.Reply(msg, agent.Inform, GetReply{Found: found, Version: ver, Value: value})
	case ListRequest:
		_ = ctx.Reply(msg, agent.Inform, ListReply{Keys: s.Keys(req.Prefix)})
	case DeleteRequest:
		s.Delete(req.Key)
		_ = ctx.Reply(msg, agent.Agree, nil)
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("storage: unsupported content %T", msg.Content))
	}
}

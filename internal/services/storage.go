package services

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/store"
)

// PutRequest stores a value under a key; each put creates a new version.
type PutRequest struct {
	Key   string
	Value []byte
}

// PutReply reports the stored version (1-based).
type PutReply struct{ Version int }

// GetRequest retrieves a key; Version 0 means latest.
type GetRequest struct {
	Key     string
	Version int
}

// GetReply carries the value.
type GetReply struct {
	Found   bool
	Version int
	Value   []byte
}

// ListRequest lists keys with a prefix.
type ListRequest struct{ Prefix string }

// ListReply lists matching keys sorted.
type ListReply struct{ Keys []string }

// DeleteRequest removes a key and all its versions.
type DeleteRequest struct{ Key string }

// Storage is the persistent storage service agent: a versioned key-value
// store backing checkpoints of long-lasting tasks, the enactment engine's
// write-ahead journal, and the archive of process descriptions. Since the
// Store extraction it is a thin agent facade over a pluggable backend
// (store.Open's mem:, file:, bolt: DSNs) — durability semantics, group
// commit, and compaction all live in internal/store.
type Storage struct {
	store.Store
}

// NewStorage returns a storage service over a fresh in-memory backend.
func NewStorage() *Storage {
	return NewStorageWith(store.NewMemory(store.Options{}))
}

// NewStorageWith wraps an opened backend. The caller keeps ownership of the
// backend's lifecycle (core closes it when the environment shuts down).
func NewStorageWith(backend store.Store) *Storage {
	return &Storage{Store: backend}
}

// HandleMessage implements agent.Handler. Mutations (put, delete) are
// answered from a goroutine: on durable backends they block until their
// group-commit batch is fsynced, and parking that wait off the mailbox
// goroutine lets concurrent writers coalesce into one batch instead of
// serializing one fsync per message. Per-caller ordering is preserved
// because writers use Call and wait for the reply.
func (s *Storage) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case PutRequest:
		msg.DeferReply()
		go func() {
			ver, err := s.Put(req.Key, req.Value)
			if err != nil {
				_ = ctx.Reply(msg, agent.Failure, fmt.Sprintf("storage: put %s: %v", req.Key, err))
				return
			}
			_ = ctx.Reply(msg, agent.Inform, PutReply{Version: ver})
		}()
	case GetRequest:
		value, ver, found, err := s.Get(req.Key, req.Version)
		if err != nil {
			_ = ctx.Reply(msg, agent.Failure, fmt.Sprintf("storage: get %s: %v", req.Key, err))
			return
		}
		_ = ctx.Reply(msg, agent.Inform, GetReply{Found: found, Version: ver, Value: value})
	case ListRequest:
		_ = ctx.Reply(msg, agent.Inform, ListReply{Keys: s.Keys(req.Prefix)})
	case DeleteRequest:
		msg.DeferReply()
		go func() {
			if err := s.Delete(req.Key); err != nil {
				_ = ctx.Reply(msg, agent.Failure, fmt.Sprintf("storage: delete %s: %v", req.Key, err))
				return
			}
			_ = ctx.Reply(msg, agent.Agree, nil)
		}()
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("storage: unsupported content %T", msg.Content))
	}
}

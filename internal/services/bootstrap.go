package services

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/store"
)

// Core bundles the concrete service instances registered by Bootstrap, for
// scenarios that need direct access (forcing a brokerage refresh, reading
// checkpoints out of storage, adding authentication principals).
type Core struct {
	Information *Information
	Brokerage   *Brokerage
	Matchmaking *Matchmaking
	Monitoring  *Monitoring
	Scheduling  *Scheduling
	Storage     *Storage
	Auth        *Authentication
	Simulation  *Simulation
	Ontology    *OntologyService
}

// Bootstrap registers the standard core services plus one agent per grid
// application container on the platform, and registers everything with the
// information service. The storage service runs on a fresh in-memory
// backend; use BootstrapWithStore to plug in a durable one.
func Bootstrap(p *agent.Platform, g *grid.Grid) (*Core, error) {
	return BootstrapWithStore(p, g, nil)
}

// BootstrapWithStore is Bootstrap with an explicit storage backend (opened
// via store.Open); nil means a fresh in-memory store. The caller keeps
// ownership of the backend's lifecycle.
func BootstrapWithStore(p *agent.Platform, g *grid.Grid, backend store.Store) (*Core, error) {
	storage := NewStorage()
	if backend != nil {
		storage = NewStorageWith(backend)
	}
	core := &Core{
		Information: NewInformation(),
		Brokerage:   NewBrokerage(g),
		Matchmaking: &Matchmaking{Grid: g},
		Monitoring:  &Monitoring{Grid: g},
		Scheduling:  &Scheduling{Grid: g},
		Storage:     storage,
		Auth:        NewAuthentication("bootstrap-signing-key"),
		Simulation:  &Simulation{Grid: g},
		Ontology:    NewOntologyService(),
	}
	for name, h := range map[string]agent.Handler{
		InformationName:    core.Information,
		BrokerageName:      core.Brokerage,
		MatchmakingName:    core.Matchmaking,
		MonitoringName:     core.Monitoring,
		SchedulingName:     core.Scheduling,
		StorageName:        core.Storage,
		AuthenticationName: core.Auth,
		SimulationName:     core.Simulation,
		OntologyName:       core.Ontology,
	} {
		if _, err := p.Register(name, h); err != nil {
			return nil, err
		}
	}

	// A registrar agent announces the core services and containers to the
	// information service, mirroring "all end-user services and other core
	// services register their offerings with the information services".
	registrar, err := p.Register("bootstrap-registrar", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
	if err != nil {
		return nil, err
	}
	offerTypes := map[string]string{
		BrokerageName:      "brokerage",
		MatchmakingName:    "matchmaking",
		MonitoringName:     "monitoring",
		SchedulingName:     "scheduling",
		StorageName:        "persistent-storage",
		AuthenticationName: "authentication",
		SimulationName:     "simulation",
		OntologyName:       "ontology",
	}
	for name, typ := range offerTypes {
		if err := registrar.Send(InformationName, agent.Inform, OntInformation,
			Offer{Name: name, Type: typ, Location: "core"}); err != nil {
			return nil, err
		}
	}
	for _, c := range g.Containers() {
		ca := &ContainerAgent{Grid: g, Container: c.ID}
		if _, err := p.Register(c.ID, ca); err != nil {
			return nil, fmt.Errorf("services: registering container %s: %w", c.ID, err)
		}
		for _, svc := range c.Services {
			if err := registrar.Send(InformationName, agent.Inform, OntInformation,
				Offer{Name: c.ID, Type: "end-user:" + svc, Location: c.NodeID}); err != nil {
				return nil, err
			}
		}
	}
	return core, nil
}

package services

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/sim"
)

// SimulateRequest asks the simulation service to study a workload before
// actually running it ("useful for end-users to simulate an experiment
// before actually conducting it"): tasks arrive with the given inter-arrival
// time and are dispatched to the fastest free provider; failed executions
// are retried up to Retries times on the next candidate.
type SimulateRequest struct {
	Tasks        []TaskSpec
	InterArrival float64 // simulated seconds between task arrivals
	Retries      int
	Seed         int64
}

// SimulateReply reports the predicted outcome.
type SimulateReply struct {
	Makespan    float64
	Completed   int
	Failed      int
	Retried     int
	BusySeconds float64 // total compute seconds across containers
	Utilization float64 // busy seconds / (makespan * containers)
}

// Simulation is the simulation service agent: a discrete-event what-if model
// over the grid's metadata. It never touches the real (well, simulated-real)
// grid state; executions are modelled on the DES clock only.
type Simulation struct{ Grid *grid.Grid }

// Simulate runs the what-if model.
func (s *Simulation) Simulate(req SimulateRequest) SimulateReply {
	eng := sim.NewEngine(req.Seed)
	rng := eng.Rand()
	free := make(map[string]bool) // container -> idle?
	var queues []TaskSpec
	reply := SimulateReply{}
	containers := s.Grid.Containers()
	for _, c := range containers {
		free[c.ID] = true
	}

	var tryDispatch func()
	var run func(t TaskSpec, attempt int)
	run = func(t TaskSpec, attempt int) {
		// Pick the fastest free provider.
		var bestC *grid.Container
		var bestN *grid.Node
		for _, c := range containers {
			if !free[c.ID] || !c.Provides(t.Service) {
				continue
			}
			n := s.Grid.Node(c.NodeID)
			if n == nil || !n.Up() {
				continue
			}
			if bestN == nil || n.Hardware.Speed > bestN.Hardware.Speed {
				bestC, bestN = c, n
			}
		}
		if bestC == nil {
			queues = append(queues, t)
			return
		}
		free[bestC.ID] = false
		dur := grid.ExecTime(t.BaseTime, t.DataMB, bestN) * (0.9 + 0.2*rng.Float64())
		failed := rng.Float64() < bestN.FailureRate
		node := bestN
		eng.Schedule(dur, "finish:"+t.ID, func() {
			free[bestC.ID] = true
			reply.BusySeconds += dur
			switch {
			case !failed:
				reply.Completed++
				if eng.Now() > reply.Makespan {
					reply.Makespan = eng.Now()
				}
			case attempt < req.Retries:
				reply.Retried++
				run(t, attempt+1)
			default:
				reply.Failed++
				_ = node
			}
			tryDispatch()
		})
	}

	tryDispatch = func() {
		if len(queues) == 0 {
			return
		}
		pending := queues
		queues = nil
		for _, t := range pending {
			run(t, 0)
		}
	}

	for i, t := range req.Tasks {
		t := t
		eng.Schedule(req.InterArrival*float64(i), "arrive:"+t.ID, func() { run(t, 0) })
	}
	eng.RunAll()
	if reply.Makespan > 0 && len(containers) > 0 {
		reply.Utilization = reply.BusySeconds / (reply.Makespan * float64(len(containers)))
	}
	return reply
}

// HandleMessage implements agent.Handler.
func (s *Simulation) HandleMessage(ctx *agent.Context, msg agent.Message) {
	req, ok := msg.Content.(SimulateRequest)
	if !ok {
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("simulation: unsupported content %T", msg.Content))
		return
	}
	_ = ctx.Reply(msg, agent.Inform, s.Simulate(req))
}

package services

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/grid"
)

// AvailabilityRequest asks a container whether it can currently execute a
// service (Figure 3, steps 6-7: "Activities executable?").
type AvailabilityRequest struct{ Service string }

// AvailabilityReply answers it.
type AvailabilityReply struct {
	Container  string
	Service    string
	Executable bool
}

// ExecuteRequest asks a container to run a service.
type ExecuteRequest struct {
	Service  string
	BaseTime float64
	DataMB   float64
}

// ExecuteReply reports the execution record on success.
type ExecuteReply struct{ Exec grid.Execution }

// ContainerAgent exposes one grid application container as an agent. It
// answers availability probes and execution requests; failures at the grid
// level surface as Failure replies, which triggers the coordinator's
// recovery path.
type ContainerAgent struct {
	Grid      *grid.Grid
	Container string
}

// HandleMessage implements agent.Handler.
func (a *ContainerAgent) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case AvailabilityRequest:
		a.heartbeat(ctx)
		ok := false
		if c := a.Grid.Container(a.Container); c != nil && c.Provides(req.Service) {
			if n := a.Grid.Node(c.NodeID); n != nil && n.Up() {
				ok = true
			}
		}
		_ = ctx.Reply(msg, agent.Inform, AvailabilityReply{
			Container: a.Container, Service: req.Service, Executable: ok,
		})
	case CallForProposal:
		a.heartbeat(ctx)
		if prop, ok := a.bid(req); ok {
			_ = ctx.Reply(msg, agent.Inform, prop)
		} else {
			_ = ctx.Reply(msg, agent.Refuse, "container "+a.Container+" declines")
		}
	case ExecuteRequest:
		ex, err := a.Grid.Execute(a.Container, req.Service, req.BaseTime, req.DataMB)
		// Report to the brokerage's performance data base, best effort —
		// failed executions included, so the "proven record of reliability"
		// reflects reality, not just the successes.
		if ex.Service != "" && ctx.Platform().Has(BrokerageName) {
			_ = ctx.Send(BrokerageName, agent.Inform, OntBrokerage, ExecutionReport{Exec: ex})
		}
		// And to the monitoring service's health statistics, also best
		// effort — a crash mid-execution shows up here as a faulted failure.
		if ctx.Platform().Has(MonitoringName) {
			out := ExecOutcome{Node: a.node(), Container: a.Container, Service: req.Service, OK: err == nil}
			if ex.Service != "" {
				out.Fault = ex.Fault
			}
			_ = ctx.Send(MonitoringName, agent.Inform, OntMonitoring, out)
		}
		if err != nil {
			_ = ctx.Reply(msg, agent.Failure, fmt.Errorf("container %s: %w", a.Container, err))
			return
		}
		_ = ctx.Reply(msg, agent.Inform, ExecuteReply{Exec: ex})
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("container %s: unsupported content %T", a.Container, msg.Content))
	}
}

// node returns the hosting node's ID (looked up live, since the container
// record is the source of truth).
func (a *ContainerAgent) node() string {
	if c := a.Grid.Container(a.Container); c != nil {
		return c.NodeID
	}
	return ""
}

// heartbeat signals liveness to the monitoring service, best effort.
func (a *ContainerAgent) heartbeat(ctx *agent.Context) {
	if ctx.Platform().Has(MonitoringName) {
		_ = ctx.Send(MonitoringName, agent.Inform, OntMonitoring,
			Heartbeat{Node: a.node(), Container: a.Container})
	}
}

package services

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// storageDump is the on-disk form of the persistent store.
type storageDump struct {
	Keys []storageKey `json:"keys"`
}

type storageKey struct {
	Key      string   `json:"key"`
	Versions [][]byte `json:"versions"`
}

// Save writes the whole store (all keys, all versions) to path atomically
// (write to a temp file in the same directory, then rename). This is what
// makes the storage service "persistent" across environment restarts.
func (s *Storage) Save(path string) error {
	s.mu.Lock()
	dump := storageDump{}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		versions := make([][]byte, len(s.data[k]))
		for i, v := range s.data[k] {
			versions[i] = append([]byte(nil), v...)
		}
		dump.Keys = append(dump.Keys, storageKey{Key: k, Versions: versions})
	}
	s.mu.Unlock()

	data, err := json.Marshal(dump)
	if err != nil {
		return fmt.Errorf("services: storage marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".storage-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Load replaces the store's contents with the dump at path.
func (s *Storage) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var dump storageDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("services: storage load: %w", err)
	}
	fresh := make(map[string][][]byte, len(dump.Keys))
	for _, k := range dump.Keys {
		if k.Key == "" {
			return fmt.Errorf("services: storage load: empty key in dump")
		}
		versions := make([][]byte, len(k.Versions))
		for i, v := range k.Versions {
			versions[i] = append([]byte(nil), v...)
		}
		fresh[k.Key] = versions
	}
	s.mu.Lock()
	s.data = fresh
	s.mu.Unlock()
	return nil
}

package services

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// storageDump is the on-disk form of a full store export.
type storageDump struct {
	Keys []storageKey `json:"keys"`
}

type storageKey struct {
	Key      string   `json:"key"`
	Versions [][]byte `json:"versions"`
}

// Save writes the whole store (all keys, all versions) to path atomically
// (write to a temp file in the same directory, then rename). For the mem
// backend this is the only durability; for file/bolt backends it doubles as
// a portable export.
func (s *Storage) Save(path string) error {
	if err := s.Sync(); err != nil {
		return fmt.Errorf("services: storage sync before save: %w", err)
	}
	dump := storageDump{}
	for _, k := range s.Keys("") { // sorted
		_, latest, _, err := s.Get(k, 0)
		if err != nil {
			return fmt.Errorf("services: storage save: %w", err)
		}
		versions := make([][]byte, 0, latest)
		for v := 1; v <= latest; v++ {
			value, _, found, err := s.Get(k, v)
			if err != nil {
				return fmt.Errorf("services: storage save: %w", err)
			}
			if !found {
				return fmt.Errorf("services: storage save: key %q lost version %d mid-dump", k, v)
			}
			versions = append(versions, value)
		}
		dump.Keys = append(dump.Keys, storageKey{Key: k, Versions: versions})
	}

	data, err := json.Marshal(dump)
	if err != nil {
		return fmt.Errorf("services: storage marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".storage-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Load replaces the store's contents with the dump at path. The dump is
// fully validated before anything is applied: a decode error, an empty key,
// or a duplicate key record (the shape a corrupt or hand-edited dump takes —
// previously the later record silently won) rejects the whole load, naming
// the byte offset of the offending record, and the store keeps its previous
// contents.
func (s *Storage) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dump, err := decodeDump(data)
	if err != nil {
		return fmt.Errorf("services: storage load: %w", err)
	}
	// Validated: replace the contents.
	for _, k := range s.Keys("") {
		if err := s.Delete(k); err != nil {
			return fmt.Errorf("services: storage load: clearing %q: %w", k, err)
		}
	}
	for _, k := range dump.Keys {
		for _, v := range k.Versions {
			if _, err := s.Put(k.Key, v); err != nil {
				return fmt.Errorf("services: storage load: writing %q: %w", k.Key, err)
			}
		}
	}
	return nil
}

// decodeDump parses and validates a dump, tracking each key record's byte
// offset so validation errors point at the offending record.
func decodeDump(data []byte) (*storageDump, error) {
	// First pass: strict structural decode, so arbitrary corruption fails
	// with the JSON error rather than a confusing validation message.
	var dump storageDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, err
	}
	// Second pass: walk the "keys" array with a token decoder to know where
	// each record starts, and validate as we go.
	dec := json.NewDecoder(bytes.NewReader(data))
	found, err := seekKeysArray(dec)
	if err != nil {
		return nil, err
	}
	if !found {
		return &dump, nil
	}
	seen := make(map[string]int64, len(dump.Keys))
	for dec.More() {
		offset := dec.InputOffset()
		var k storageKey
		if err := dec.Decode(&k); err != nil {
			return nil, err
		}
		if k.Key == "" {
			return nil, fmt.Errorf("empty key in record at offset %d", offset)
		}
		if prev, dup := seen[k.Key]; dup {
			return nil, fmt.Errorf("duplicate key %q in record at offset %d (first defined at offset %d)", k.Key, offset, prev)
		}
		seen[k.Key] = offset
	}
	return &dump, nil
}

// seekKeysArray advances the decoder past `{"keys": [`; found is false when
// the dump has no "keys" field (an empty export).
func seekKeysArray(dec *json.Decoder) (found bool, err error) {
	if _, err := dec.Token(); err != nil { // {
		return false, err
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return false, err
		}
		if d, ok := tok.(json.Delim); ok && d == '}' {
			return false, nil
		}
		name, ok := tok.(string)
		if !ok {
			return false, fmt.Errorf("malformed dump: unexpected token %v", tok)
		}
		if name == "keys" {
			tok, err := dec.Token()
			if err != nil {
				return false, err
			}
			if tok == nil { // "keys": null
				return false, nil
			}
			return true, nil
		}
		// Skip the value of an unknown field.
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			return false, err
		}
	}
}

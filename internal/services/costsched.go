package services

import "sort"

// Cost- and data-aware candidate scoring (ROADMAP item 5). The scorer turns
// the raw matchmaking/contract-net candidate list into per-candidate (ETA,
// cost) estimates that fold in node hardware, historical performance stats,
// and the transfer time of the activity's bound input data, then ranks the
// list so the head is the cheapest candidate that still meets the deadline
// (or the fastest one, under deadline pressure). The functions are pure and
// deterministic so the coordinator, the load simulator, property tests, and
// benchmarks all share one implementation.

// DataRef describes one bound input condition of an activity: its size and
// where it currently lives. Transfers are free when the data is already on
// the candidate's node or inside its administrative domain.
type DataRef struct {
	SizeMB   float64
	Location string
}

// ScoredCandidate pairs a candidate with its constraint-aware estimates.
type ScoredCandidate struct {
	Candidate

	// ETA is the estimated run time in simulated seconds: compute time from
	// hardware speed (or the contract-net predicted time), plus transfer
	// time for remote inputs, plus dispatch latency, blended with the
	// node's historical mean duration and inflated by its failure history.
	ETA float64

	// EstCost is the estimated spend for the run: ETA × CostPerSec.
	EstCost float64

	// Feasible reports whether ETA fits in the remaining deadline (always
	// true when no deadline constrains the pick).
	Feasible bool
}

// transferTime estimates seconds to stage inputs onto the candidate's node.
func transferTime(c *Candidate, inputs []DataRef) float64 {
	var secs float64
	for _, in := range inputs {
		if in.SizeMB <= 0 {
			continue
		}
		if in.Location == "" || in.Location == c.Node || in.Location == c.Domain {
			continue // already local (or location unknown — assume local)
		}
		if c.BandwidthMbps > 0 {
			secs += in.SizeMB * 8 / c.BandwidthMbps
		}
	}
	return secs
}

// ScoreCandidates estimates ETA and cost for every candidate. baseTime is
// the service's nominal duration on a speed-1 node; inputs describe the
// activity's bound conditions; perf holds historical stats keyed by node ID
// (nil for none); remainingDeadline constrains feasibility (<= 0 means
// unconstrained). The returned slice is index-aligned with cands.
func ScoreCandidates(cands []Candidate, baseTime float64, inputs []DataRef, perf map[string]PerfStats, remainingDeadline float64) []ScoredCandidate {
	out := make([]ScoredCandidate, len(cands))
	for i, c := range cands {
		eta := c.PredictedTime
		if eta <= 0 {
			speed := c.Speed
			if speed <= 0 {
				speed = 1
			}
			eta = baseTime/speed + transferTime(&c, inputs) + c.LatencyUs/1e6
		}
		if st, ok := perf[c.Node]; ok && st.Runs > 0 {
			if st.MeanDuration > 0 {
				eta = (eta + st.MeanDuration) / 2
			}
			if st.Runs >= 3 {
				sr := st.SuccessRate
				if sr < 0.25 {
					sr = 0.25
				}
				eta /= sr // expected retries on flaky nodes
			}
		}
		cost := eta * c.Cost
		out[i] = ScoredCandidate{
			Candidate: c,
			ETA:       eta,
			EstCost:   cost,
			Feasible:  remainingDeadline <= 0 || eta <= remainingDeadline,
		}
	}
	return out
}

// RankCostAware orders scored candidates for dispatch: feasible ones first —
// cheapest-first normally, fastest-first when urgent (deadline pressure) —
// then infeasible ones by ETA so a constrained case still degrades to the
// least-bad node. Ties break on the secondary axis and then container ID, so
// the head of the list is a lexicographic minimum: no other feasible
// candidate is strictly better on both cost and ETA.
func RankCostAware(scored []ScoredCandidate, urgent bool) []ScoredCandidate {
	out := make([]ScoredCandidate, len(scored))
	copy(out, scored)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		p1, p2 := a.EstCost, b.EstCost
		s1, s2 := a.ETA, b.ETA
		if urgent || !a.Feasible {
			p1, p2, s1, s2 = s1, s2, p1, p2
		}
		if p1 != p2 {
			return p1 < p2
		}
		if s1 != s2 {
			return s1 < s2
		}
		return a.Container < b.Container
	})
	return out
}

package services

import (
	"sort"

	"repro/internal/grid"
)

// Heuristic selects the scheduling policy used by Scheduling.ScheduleWith.
type Heuristic int

// Scheduling heuristics. MinMin is the paper-era default; the others exist
// for the ablation benches and for workloads where min-min's bias toward
// short tasks hurts.
const (
	// HeuristicMinMin picks, at each step, the task whose best completion
	// time is smallest and places it there (favours short tasks, keeps
	// machines busy early).
	HeuristicMinMin Heuristic = iota
	// HeuristicMaxMin picks the task whose best completion time is largest
	// (gets long tasks started early; often better makespan under high
	// heterogeneity).
	HeuristicMaxMin
	// HeuristicSufferage picks the task that would suffer most from not
	// getting its best container (largest gap between best and second-best
	// completion times).
	HeuristicSufferage
	// HeuristicFCFS assigns tasks in submission order to their earliest-
	// finishing container (the naive baseline).
	HeuristicFCFS
)

func (h Heuristic) String() string {
	switch h {
	case HeuristicMinMin:
		return "min-min"
	case HeuristicMaxMin:
		return "max-min"
	case HeuristicSufferage:
		return "sufferage"
	case HeuristicFCFS:
		return "fcfs"
	}
	return "unknown"
}

// option is one (task, container) placement with its completion time.
type option struct {
	taskIdx   int
	container string
	node      string
	start     float64
	finish    float64
}

// bestOptions returns, for every remaining task, its best (and second-best
// finish) placement given current container availability. Tasks with no
// provider are absent from the result.
func (s *Scheduling) bestOptions(tasks []TaskSpec, ready map[string]float64) ([]option, []float64) {
	best := make([]option, 0, len(tasks))
	second := make([]float64, 0, len(tasks))
	for i, t := range tasks {
		var b option
		b.taskIdx = -1
		secondBest := -1.0
		for _, c := range s.Grid.ContainersFor(t.Service) {
			n := s.Grid.Node(c.NodeID)
			if n == nil {
				continue
			}
			start := ready[c.ID]
			finish := start + grid.ExecTime(t.BaseTime, t.DataMB, n)
			if b.taskIdx < 0 || finish < b.finish || (finish == b.finish && c.ID < b.container) {
				if b.taskIdx >= 0 {
					secondBest = b.finish
				}
				b = option{taskIdx: i, container: c.ID, node: n.ID, start: start, finish: finish}
			} else if secondBest < 0 || finish < secondBest {
				secondBest = finish
			}
		}
		if b.taskIdx >= 0 {
			best = append(best, b)
			if secondBest < 0 {
				secondBest = b.finish
			}
			second = append(second, secondBest)
		}
	}
	return best, second
}

// ScheduleWith computes a schedule using the given heuristic. Tasks without
// any provider are silently dropped (reported by their absence).
func (s *Scheduling) ScheduleWith(tasks []TaskSpec, h Heuristic) ScheduleReply {
	out := s.scheduleWith(tasks, h)
	s.record(h, len(tasks), out)
	return out
}

func (s *Scheduling) scheduleWith(tasks []TaskSpec, h Heuristic) ScheduleReply {
	if h == HeuristicFCFS {
		return s.scheduleFCFS(tasks)
	}
	ready := make(map[string]float64)
	remaining := append([]TaskSpec(nil), tasks...)
	var out ScheduleReply
	for len(remaining) > 0 {
		best, second := s.bestOptions(remaining, ready)
		if len(best) == 0 {
			break
		}
		pick := 0
		switch h {
		case HeuristicMaxMin:
			for i := 1; i < len(best); i++ {
				if best[i].finish > best[pick].finish {
					pick = i
				}
			}
		case HeuristicSufferage:
			bestSuff := second[0] - best[0].finish
			for i := 1; i < len(best); i++ {
				if suff := second[i] - best[i].finish; suff > bestSuff {
					bestSuff = suff
					pick = i
				}
			}
		default: // min-min
			for i := 1; i < len(best); i++ {
				if best[i].finish < best[pick].finish {
					pick = i
				}
			}
		}
		chosen := best[pick]
		t := remaining[chosen.taskIdx]
		ready[chosen.container] = chosen.finish
		out.Assignments = append(out.Assignments, Assignment{
			Task: t.ID, Container: chosen.container, Node: chosen.node,
			Start: chosen.start, Finish: chosen.finish,
		})
		if chosen.finish > out.Makespan {
			out.Makespan = chosen.finish
		}
		remaining = append(remaining[:chosen.taskIdx], remaining[chosen.taskIdx+1:]...)
	}
	sortAssignments(out.Assignments)
	return out
}

func (s *Scheduling) scheduleFCFS(tasks []TaskSpec) ScheduleReply {
	ready := make(map[string]float64)
	var out ScheduleReply
	for _, t := range tasks {
		var b option
		b.taskIdx = -1
		for _, c := range s.Grid.ContainersFor(t.Service) {
			n := s.Grid.Node(c.NodeID)
			if n == nil {
				continue
			}
			start := ready[c.ID]
			finish := start + grid.ExecTime(t.BaseTime, t.DataMB, n)
			if b.taskIdx < 0 || finish < b.finish || (finish == b.finish && c.ID < b.container) {
				b = option{taskIdx: 0, container: c.ID, node: n.ID, start: start, finish: finish}
			}
		}
		if b.taskIdx < 0 {
			continue
		}
		ready[b.container] = b.finish
		out.Assignments = append(out.Assignments, Assignment{
			Task: t.ID, Container: b.container, Node: b.node, Start: b.start, Finish: b.finish,
		})
		if b.finish > out.Makespan {
			out.Makespan = b.finish
		}
	}
	sortAssignments(out.Assignments)
	return out
}

func sortAssignments(as []Assignment) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Start != as[j].Start {
			return as[i].Start < as[j].Start
		}
		return as[i].Task < as[j].Task
	})
}

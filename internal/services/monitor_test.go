package services

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/telemetry"
)

// sendOutcome reports one execution outcome; a follow-up synchronous call on
// the same mailbox guarantees the async send has been processed.
func sendOutcome(t *testing.T, f *fixture, out ExecOutcome) {
	t.Helper()
	if err := f.client.Send(MonitoringName, agent.Inform, OntMonitoring, out); err != nil {
		t.Fatal(err)
	}
}

func nodeHealth(t *testing.T, f *fixture, node string) NodeHealth {
	t.Helper()
	reply, err := f.client.Call(MonitoringName, OntMonitoring, NodeHealthRequest{Node: node}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hr, ok := reply.Content.(NodeHealthReply)
	if !ok {
		t.Fatalf("unexpected reply %T", reply.Content)
	}
	return hr.Health
}

func TestMonitorHealthFromOutcomes(t *testing.T) {
	f := newFixture(t)
	tel := telemetry.New()
	f.core.Monitoring.Telemetry = tel

	if err := f.client.Send(MonitoringName, agent.Inform, OntMonitoring, Heartbeat{Node: "n1", Container: "ac-1"}); err != nil {
		t.Fatal(err)
	}
	sendOutcome(t, f, ExecOutcome{Node: "n1", Container: "ac-1", Service: "POD", OK: true})
	sendOutcome(t, f, ExecOutcome{Node: "n1", Container: "ac-1", Service: "POD", OK: false, Fault: true})

	h := nodeHealth(t, f, "n1")
	if !h.Known || !h.Up || h.Status != HealthHealthy {
		t.Fatalf("health = %+v", h)
	}
	if h.Heartbeats != 3 || h.Successes != 1 || h.Failures != 1 || h.Faults != 1 || h.ConsecutiveFailures != 1 {
		t.Fatalf("counters = %+v", h)
	}
	if got := tel.Counter("monitoring.heartbeats").Value(); got != 1 {
		t.Fatalf("monitoring.heartbeats = %d", got)
	}
	if got := tel.Counter("monitoring.outcomes").Value(); got != 2 {
		t.Fatalf("monitoring.outcomes = %d", got)
	}

	unknown := nodeHealth(t, f, "ghost")
	if unknown.Known {
		t.Fatalf("ghost known: %+v", unknown)
	}
}

func TestMonitorDegradedThreshold(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < DegradedAfter; i++ {
		sendOutcome(t, f, ExecOutcome{Node: "n2", Container: "ac-2", Service: "PSF", OK: false})
	}
	if h := nodeHealth(t, f, "n2"); h.Status != HealthDegraded {
		t.Fatalf("after %d consecutive failures status = %q", DegradedAfter, h.Status)
	}
	// One success resets the streak.
	sendOutcome(t, f, ExecOutcome{Node: "n2", Container: "ac-2", Service: "PSF", OK: true})
	if h := nodeHealth(t, f, "n2"); h.Status != HealthHealthy || h.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery health = %+v", h)
	}
}

func TestMonitorQuarantine(t *testing.T) {
	f := newFixture(t)
	tel := telemetry.New()
	f.core.Monitoring.Telemetry = tel

	reply, err := f.client.Call(MonitoringName, OntMonitoring,
		QuarantineRequest{Node: "n1", Reason: "retries exhausted"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	qr, ok := reply.Content.(QuarantineReply)
	if !ok || !qr.Known {
		t.Fatalf("quarantine reply = %#v", reply.Content)
	}
	if f.grid.Node("n1").Up() {
		t.Fatal("n1 still up after quarantine")
	}
	h := nodeHealth(t, f, "n1")
	if h.Status != HealthQuarantined || h.QuarantineReason != "retries exhausted" {
		t.Fatalf("health = %+v", h)
	}
	if got := tel.Counter("monitoring.quarantines").Value(); got != 1 {
		t.Fatalf("monitoring.quarantines = %d", got)
	}
	if got := tel.Gauge("monitoring.nodes.up").Value(); got != 1 {
		t.Fatalf("monitoring.nodes.up = %g", got)
	}

	// Unknown nodes are acknowledged but not recorded.
	reply, err = f.client.Call(MonitoringName, OntMonitoring,
		QuarantineRequest{Node: "ghost", Reason: "x"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if qr, ok := reply.Content.(QuarantineReply); !ok || qr.Known {
		t.Fatalf("ghost quarantine reply = %#v", reply.Content)
	}
}

func TestMonitorClusterHealth(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < DegradedAfter; i++ {
		sendOutcome(t, f, ExecOutcome{Node: "n2", Container: "ac-2", Service: "PSF", OK: false})
	}
	if _, err := f.client.Call(MonitoringName, OntMonitoring,
		QuarantineRequest{Node: "n1", Reason: "test"}, time.Second); err != nil {
		t.Fatal(err)
	}
	reply, err := f.client.Call(MonitoringName, OntMonitoring, ClusterHealthRequest{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := reply.Content.(ClusterHealthReply)
	if !ok {
		t.Fatalf("unexpected reply %T", reply.Content)
	}
	if len(ch.Nodes) != 2 || ch.Up != 1 || ch.Quarantined != 1 || ch.Degraded != 1 {
		t.Fatalf("cluster health = %+v", ch)
	}
	if ch.Nodes[0].Node != "n1" || ch.Nodes[1].Node != "n2" {
		t.Fatalf("nodes not sorted: %+v", ch.Nodes)
	}
}

// TestContainerReportsToMonitoring drives a container agent end to end and
// checks that heartbeats (from probes) and outcomes (from executions) land
// in the monitoring service's health record.
func TestContainerReportsToMonitoring(t *testing.T) {
	f := newFixture(t)
	if _, err := f.client.Call("ac-1", OntExecution, AvailabilityRequest{Service: "POD"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.Call("ac-1", OntExecution, ExecuteRequest{Service: "POD", BaseTime: 5}, time.Second); err != nil {
		t.Fatal(err)
	}
	h := nodeHealth(t, f, "n1")
	if h.Heartbeats < 2 || h.Successes != 1 {
		t.Fatalf("health after container traffic = %+v", h)
	}
}

package services

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/agent"
)

// Authentication is the authentication service agent: it registers
// principals with shared secrets and issues HMAC tokens the other services
// can verify without shared state.
type Authentication struct {
	mu         sync.Mutex
	key        []byte
	principals map[string]string // principal -> secret
	nonce      uint64
}

// NewAuthentication returns an authentication service with the given signing
// key.
func NewAuthentication(key string) *Authentication {
	return &Authentication{key: []byte(key), principals: make(map[string]string)}
}

// AddPrincipal registers a principal and its secret.
func (s *Authentication) AddPrincipal(principal, secret string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.principals[principal] = secret
}

func (s *Authentication) sign(payload string) string {
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(payload))
	return hex.EncodeToString(mac.Sum(nil))
}

func (s *Authentication) issue(principal string) string {
	s.mu.Lock()
	s.nonce++
	payload := fmt.Sprintf("%s:%d", principal, s.nonce)
	s.mu.Unlock()
	return payload + ":" + s.sign(payload)
}

func (s *Authentication) verify(token string) (string, bool) {
	i := strings.LastIndexByte(token, ':')
	if i < 0 {
		return "", false
	}
	payload, sig := token[:i], token[i+1:]
	if !hmac.Equal([]byte(s.sign(payload)), []byte(sig)) {
		return "", false
	}
	principal, _, ok := strings.Cut(payload, ":")
	if !ok {
		return "", false
	}
	return principal, true
}

// HandleMessage implements agent.Handler.
func (s *Authentication) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case LoginRequest:
		s.mu.Lock()
		secret, known := s.principals[req.Principal]
		s.mu.Unlock()
		if !known || secret != req.Secret {
			_ = ctx.Reply(msg, agent.Refuse, "authentication: bad principal or secret")
			return
		}
		_ = ctx.Reply(msg, agent.Inform, LoginReply{Token: s.issue(req.Principal)})
	case VerifyRequest:
		principal, ok := s.verify(req.Token)
		_ = ctx.Reply(msg, agent.Inform, VerifyReply{Valid: ok, Principal: principal})
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("authentication: unsupported content %T", msg.Content))
	}
}

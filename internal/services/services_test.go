package services

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/ontology"
)

// fixture builds a platform with a small grid and all core services.
type fixture struct {
	platform *agent.Platform
	grid     *grid.Grid
	core     *Core
	broker   *Brokerage
	client   *agent.Context
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g := grid.New(3)
	mustNoErr := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustNoErr(g.AddNode(&grid.Node{
		ID: "n1", Domain: "a.edu",
		Hardware:   grid.Hardware{Type: "PC-cluster", Speed: 1, BandwidthMbps: 100, LatencyUs: 100},
		CostPerSec: 0.01,
		Software:   []grid.Software{{Name: "POD"}, {Name: "P3DR"}},
	}))
	mustNoErr(g.AddNode(&grid.Node{
		ID: "n2", Domain: "b.gov",
		Hardware:   grid.Hardware{Type: "SMP", Speed: 3, BandwidthMbps: 1000, LatencyUs: 10},
		CostPerSec: 0.05,
		Software:   []grid.Software{{Name: "P3DR"}, {Name: "PSF"}},
	}))
	mustNoErr(g.AddContainer(&grid.Container{ID: "ac-1", NodeID: "n1", Services: []string{"POD", "P3DR"}}))
	mustNoErr(g.AddContainer(&grid.Container{ID: "ac-2", NodeID: "n2", Services: []string{"P3DR", "PSF"}}))

	p := agent.NewPlatform()
	core, err := Bootstrap(p, g)
	mustNoErr(err)
	client := p.MustRegister("client", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
	t.Cleanup(p.Shutdown)
	return &fixture{platform: p, grid: g, core: core, broker: core.Brokerage, client: client}
}

func TestBootstrapRegistersEverything(t *testing.T) {
	f := newFixture(t)
	for _, name := range []string{
		InformationName, BrokerageName, MatchmakingName, MonitoringName,
		SchedulingName, StorageName, AuthenticationName, SimulationName,
		OntologyName, "ac-1", "ac-2",
	} {
		if !f.platform.Has(name) {
			t.Errorf("agent %q not registered", name)
		}
	}
}

func TestInformationLookup(t *testing.T) {
	f := newFixture(t)
	offers, err := Lookup(f.client, "end-user:P3DR")
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 || offers[0].Name != "ac-1" || offers[1].Name != "ac-2" {
		t.Errorf("offers = %+v", offers)
	}
	if offers, _ := Lookup(f.client, "brokerage"); len(offers) != 1 || offers[0].Name != BrokerageName {
		t.Errorf("brokerage offer = %+v", offers)
	}
	if offers, _ := Lookup(f.client, "nothing"); len(offers) != 0 {
		t.Errorf("phantom offers = %+v", offers)
	}
	// New registrations are visible.
	if err := RegisterOffer(f.client, "end-user:NEW", "here"); err != nil {
		t.Fatal(err)
	}
	offers, _ = Lookup(f.client, "end-user:NEW")
	if len(offers) != 1 || offers[0].Name != "client" {
		t.Errorf("registered offer = %+v", offers)
	}
}

func TestBrokerageSnapshotAndStaleness(t *testing.T) {
	f := newFixture(t)
	reply, err := f.client.Call(BrokerageName, OntBrokerage, ContainersRequest{Service: "P3DR"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	list := reply.Content.(ContainersReply).Containers
	if len(list) != 2 {
		t.Fatalf("containers = %v", list)
	}
	// Fail a node: the brokerage snapshot is STALE until refreshed (the
	// paper: "such information may be obsolete").
	_ = f.grid.SetNodeUp("n2", false)
	reply, _ = f.client.Call(BrokerageName, OntBrokerage, ContainersRequest{Service: "P3DR"}, time.Second)
	if got := len(reply.Content.(ContainersReply).Containers); got != 2 {
		t.Errorf("stale snapshot = %d containers, want 2 (staleness is intentional)", got)
	}
	if _, err := f.client.Call(BrokerageName, OntBrokerage, RefreshRequest{}, time.Second); err != nil {
		t.Fatal(err)
	}
	reply, _ = f.client.Call(BrokerageName, OntBrokerage, ContainersRequest{Service: "P3DR"}, time.Second)
	if got := reply.Content.(ContainersReply).Containers; len(got) != 1 || got[0] != "ac-1" {
		t.Errorf("refreshed snapshot = %v", got)
	}
}

func TestBrokeragePerformanceHistory(t *testing.T) {
	f := newFixture(t)
	f.broker.Record(grid.Execution{Service: "P3DR", Duration: 10, Cost: 1, OK: true})
	f.broker.Record(grid.Execution{Service: "P3DR", Duration: 20, Cost: 3, OK: false})
	f.broker.Record(grid.Execution{Service: "POD", Duration: 5, OK: true})
	reply, err := f.client.Call(BrokerageName, OntBrokerage, PerfRequest{Service: "P3DR"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := reply.Content.(PerfReply).Stats
	if s.Runs != 2 || s.MeanDuration != 15 || s.SuccessRate != 0.5 || s.MeanCost != 2 {
		t.Errorf("stats = %+v", s)
	}
	reply, _ = f.client.Call(BrokerageName, OntBrokerage, ClassesRequest{}, time.Second)
	if classes := reply.Content.(ClassesReply).Classes; len(classes) != 2 {
		t.Errorf("classes = %+v", classes)
	}
}

func TestMatchmaking(t *testing.T) {
	f := newFixture(t)
	reply, err := f.client.Call(MatchmakingName, OntMatchmaking, MatchRequest{Service: "P3DR"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cands := reply.Content.(MatchReply).Candidates
	if len(cands) != 2 {
		t.Fatalf("candidates = %+v", cands)
	}
	// n2 is 3x faster: better score despite higher cost? score = speed/cost:
	// n1: 1/0.01=100, n2: 3/0.05=60 -> n1 first.
	if cands[0].Node != "n1" {
		t.Errorf("ranking = %+v", cands)
	}
	// Constraints filter: min speed 2 leaves only n2.
	reply, _ = f.client.Call(MatchmakingName, OntMatchmaking, MatchRequest{Service: "P3DR", MinSpeed: 2}, time.Second)
	if cands := reply.Content.(MatchReply).Candidates; len(cands) != 1 || cands[0].Node != "n2" {
		t.Errorf("min-speed candidates = %+v", cands)
	}
	// Fine-grain task: low latency requirement excludes the PC cluster.
	reply, _ = f.client.Call(MatchmakingName, OntMatchmaking, MatchRequest{Service: "P3DR", MaxLatencyUs: 50}, time.Second)
	if cands := reply.Content.(MatchReply).Candidates; len(cands) != 1 || cands[0].Node != "n2" {
		t.Errorf("latency candidates = %+v", cands)
	}
	// Software constraint.
	reply, _ = f.client.Call(MatchmakingName, OntMatchmaking,
		MatchRequest{Service: "P3DR", RequireSoftware: []string{"PSF"}}, time.Second)
	if cands := reply.Content.(MatchReply).Candidates; len(cands) != 1 || cands[0].Node != "n2" {
		t.Errorf("software candidates = %+v", cands)
	}
	// Domain constraint.
	reply, _ = f.client.Call(MatchmakingName, OntMatchmaking,
		MatchRequest{Service: "P3DR", Domain: "a.edu"}, time.Second)
	if cands := reply.Content.(MatchReply).Candidates; len(cands) != 1 || cands[0].Node != "n1" {
		t.Errorf("domain candidates = %+v", cands)
	}
	// Matchmaking sees live status (unlike the brokerage).
	_ = f.grid.SetNodeUp("n2", false)
	reply, _ = f.client.Call(MatchmakingName, OntMatchmaking, MatchRequest{Service: "P3DR"}, time.Second)
	if cands := reply.Content.(MatchReply).Candidates; len(cands) != 1 {
		t.Errorf("live candidates = %+v", cands)
	}
}

func TestMonitoring(t *testing.T) {
	f := newFixture(t)
	reply, err := f.client.Call(MonitoringName, OntMonitoring, NodeStatusRequest{Node: "n1"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := reply.Content.(NodeStatusReply)
	if !st.Known || !st.Up {
		t.Errorf("status = %+v", st)
	}
	_ = f.grid.SetNodeUp("n1", false)
	reply, _ = f.client.Call(MonitoringName, OntMonitoring, NodeStatusRequest{Node: "n1"}, time.Second)
	if st := reply.Content.(NodeStatusReply); st.Up {
		t.Error("monitoring reported a failed node as up")
	}
	reply, _ = f.client.Call(MonitoringName, OntMonitoring, NodeStatusRequest{Node: "ghost"}, time.Second)
	if st := reply.Content.(NodeStatusReply); st.Known {
		t.Error("monitoring knows a ghost node")
	}
}

func TestScheduling(t *testing.T) {
	f := newFixture(t)
	tasks := []TaskSpec{
		{ID: "t1", Service: "P3DR", BaseTime: 300},
		{ID: "t2", Service: "P3DR", BaseTime: 300},
		{ID: "t3", Service: "POD", BaseTime: 60},
		{ID: "t4", Service: "NOPE", BaseTime: 10}, // no provider: dropped
	}
	reply, err := f.client.Call(SchedulingName, OntScheduling, ScheduleRequest{Tasks: tasks}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sched := reply.Content.(ScheduleReply)
	if len(sched.Assignments) != 3 {
		t.Fatalf("assignments = %+v", sched.Assignments)
	}
	if sched.Makespan <= 0 {
		t.Error("zero makespan")
	}
	// Min-min stacks both P3DR tasks on the 3x-faster n2 (two runs at 100s
	// beat one run at 300s on n1), so the makespan is ~200s, not 300s.
	for _, a := range sched.Assignments {
		if (a.Task == "t1" || a.Task == "t2") && a.Container != "ac-2" {
			t.Errorf("task %s on %s, want ac-2: %+v", a.Task, a.Container, sched.Assignments)
		}
	}
	if sched.Makespan < 150 || sched.Makespan > 250 {
		t.Errorf("makespan = %g, want ~200", sched.Makespan)
	}
}

func TestStorageService(t *testing.T) {
	f := newFixture(t)
	call := func(content any) agent.Message {
		t.Helper()
		reply, err := f.client.Call(StorageName, OntStorage, content, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if v := call(PutRequest{Key: "plans/p1", Value: []byte("v1")}); v.Content.(PutReply).Version != 1 {
		t.Error("first version != 1")
	}
	if v := call(PutRequest{Key: "plans/p1", Value: []byte("v2")}); v.Content.(PutReply).Version != 2 {
		t.Error("second version != 2")
	}
	got := call(GetRequest{Key: "plans/p1"}).Content.(GetReply)
	if !got.Found || string(got.Value) != "v2" || got.Version != 2 {
		t.Errorf("latest = %+v", got)
	}
	got = call(GetRequest{Key: "plans/p1", Version: 1}).Content.(GetReply)
	if !got.Found || string(got.Value) != "v1" {
		t.Errorf("v1 = %+v", got)
	}
	if got := call(GetRequest{Key: "missing"}).Content.(GetReply); got.Found {
		t.Error("found missing key")
	}
	call(PutRequest{Key: "plans/p2", Value: []byte("x")})
	call(PutRequest{Key: "other/k", Value: []byte("y")})
	keys := call(ListRequest{Prefix: "plans/"}).Content.(ListReply).Keys
	if len(keys) != 2 || keys[0] != "plans/p1" {
		t.Errorf("keys = %v", keys)
	}
	call(DeleteRequest{Key: "plans/p1"})
	if got := call(GetRequest{Key: "plans/p1"}).Content.(GetReply); got.Found {
		t.Error("deleted key still found")
	}
}

func TestAuthentication(t *testing.T) {
	f := newFixture(t)
	auth := NewAuthentication("k")
	auth.AddPrincipal("hyu", "secret")
	_ = f.platform // fixture's auth agent has no principals; use a fresh one
	p := agent.NewPlatform()
	defer p.Shutdown()
	p.MustRegister(AuthenticationName, auth)
	c := p.MustRegister("c", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))

	reply, err := c.Call(AuthenticationName, OntAuth, LoginRequest{Principal: "hyu", Secret: "secret"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	token := reply.Content.(LoginReply).Token
	if token == "" {
		t.Fatal("empty token")
	}
	reply, _ = c.Call(AuthenticationName, OntAuth, VerifyRequest{Token: token}, time.Second)
	v := reply.Content.(VerifyReply)
	if !v.Valid || v.Principal != "hyu" {
		t.Errorf("verify = %+v", v)
	}
	// Tampered token fails.
	bad := strings.Replace(token, "hyu", "eve", 1)
	reply, _ = c.Call(AuthenticationName, OntAuth, VerifyRequest{Token: bad}, time.Second)
	if reply.Content.(VerifyReply).Valid {
		t.Error("tampered token verified")
	}
	// Wrong secret refused.
	reply, _ = c.Call(AuthenticationName, OntAuth, LoginRequest{Principal: "hyu", Secret: "nope"}, time.Second)
	if reply.Performative != agent.Refuse {
		t.Errorf("bad login performative = %v", reply.Performative)
	}
	// Garbage token invalid.
	reply, _ = c.Call(AuthenticationName, OntAuth, VerifyRequest{Token: "garbage"}, time.Second)
	if reply.Content.(VerifyReply).Valid {
		t.Error("garbage token verified")
	}
}

func TestContainerAgent(t *testing.T) {
	f := newFixture(t)
	reply, err := f.client.Call("ac-2", OntExecution, AvailabilityRequest{Service: "PSF"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Content.(AvailabilityReply).Executable {
		t.Error("ac-2 should execute PSF")
	}
	reply, _ = f.client.Call("ac-2", OntExecution, AvailabilityRequest{Service: "POD"}, time.Second)
	if reply.Content.(AvailabilityReply).Executable {
		t.Error("ac-2 should not execute POD")
	}
	reply, err = f.client.Call("ac-2", OntExecution, ExecuteRequest{Service: "PSF", BaseTime: 120, DataMB: 10}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ex := reply.Content.(ExecuteReply).Exec
	if ex.Node != "n2" || !ex.OK {
		t.Errorf("execution = %+v", ex)
	}
	// Execution on a down node fails.
	_ = f.grid.SetNodeUp("n2", false)
	_, err = f.client.Call("ac-2", OntExecution, ExecuteRequest{Service: "PSF", BaseTime: 1}, time.Second)
	if err == nil {
		t.Error("execution on down node succeeded")
	}
	reply, _ = f.client.Call("ac-2", OntExecution, AvailabilityRequest{Service: "PSF"}, time.Second)
	if reply.Content.(AvailabilityReply).Executable {
		t.Error("down container reported executable")
	}
}

func TestSimulationService(t *testing.T) {
	f := newFixture(t)
	tasks := make([]TaskSpec, 8)
	for i := range tasks {
		tasks[i] = TaskSpec{ID: string(rune('a' + i)), Service: "P3DR", BaseTime: 300, DataMB: 10}
	}
	reply, err := f.client.Call(SimulationName, OntSimulation,
		SimulateRequest{Tasks: tasks, InterArrival: 5, Retries: 2, Seed: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := reply.Content.(SimulateReply)
	if res.Completed+res.Failed != len(tasks) {
		t.Errorf("completed %d + failed %d != %d", res.Completed, res.Failed, len(tasks))
	}
	if res.Makespan <= 0 || res.BusySeconds <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	// Determinism.
	reply2, _ := f.client.Call(SimulationName, OntSimulation,
		SimulateRequest{Tasks: tasks, InterArrival: 5, Retries: 2, Seed: 1}, time.Second)
	if reply2.Content.(SimulateReply) != res {
		t.Error("simulation not deterministic for equal seeds")
	}
}

func TestOntologyService(t *testing.T) {
	f := newFixture(t)
	reply, err := f.client.Call(OntologyName, OntOntology, ShellRequest{Name: "grid"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := ontology.Decode(reply.Content.(KBReply).JSON)
	if err != nil {
		t.Fatal(err)
	}
	if classes, instances := kb.Stats(); classes != 10 || instances != 0 {
		t.Errorf("shell stats = %d/%d", classes, instances)
	}
	// Publish a populated KB and fetch it back.
	pop := ontology.GridShell()
	pop.MustAddInstance(ontology.NewInstance("hw1", ontology.ClassHardware).Set("Speed", ontology.Num(2)))
	data, _ := pop.MarshalJSON()
	if _, err := f.client.Call(OntologyName, OntOntology, PublishKB{Name: "mine", JSON: data}, time.Second); err != nil {
		t.Fatal(err)
	}
	reply, _ = f.client.Call(OntologyName, OntOntology, KBRequest{Name: "mine"}, time.Second)
	back, err := ontology.Decode(reply.Content.(KBReply).JSON)
	if err != nil {
		t.Fatal(err)
	}
	if back.Instance("hw1") == nil {
		t.Error("published instance lost")
	}
	// Unknown ontology refused.
	reply, _ = f.client.Call(OntologyName, OntOntology, KBRequest{Name: "nope"}, time.Second)
	if reply.Performative != agent.Refuse {
		t.Errorf("unknown KB performative = %v", reply.Performative)
	}
}

func TestUnsupportedContentRefused(t *testing.T) {
	f := newFixture(t)
	for _, svc := range []string{
		InformationName, BrokerageName, MatchmakingName, MonitoringName,
		SchedulingName, StorageName, AuthenticationName, SimulationName, OntologyName, "ac-1",
	} {
		reply, err := f.client.Call(svc, "junk", struct{ X int }{1}, time.Second)
		if err != nil {
			t.Errorf("%s: %v", svc, err)
			continue
		}
		if reply.Performative != agent.Refuse {
			t.Errorf("%s replied %v to junk, want refuse", svc, reply.Performative)
		}
	}
}

package services

import (
	"repro/internal/grid"
)

// The contract-net protocol for resource acquisition: instead of asking the
// matchmaking service to rank resources from metadata, the buyer broadcasts
// a call for proposals to candidate application containers, each bids its
// predicted completion time and cost, and the buyer awards the execution to
// the best bid. This is the "resource acquisition on the spot markets, based
// upon some form of resource brokerage" negotiation of Section 1.

// CallForProposal asks a container to bid on executing a service.
type CallForProposal struct {
	Service  string
	BaseTime float64
	DataMB   float64
}

// Proposal is a container's bid. PredictedTime excludes the execution-time
// jitter (bids are estimates, reality differs — just as the paper warns
// about obsolete information).
type Proposal struct {
	Container     string
	Node          string
	PredictedTime float64
	CostPerSec    float64
	PredictedCost float64
}

// bid evaluates a CFP against this container's node, or reports refusal.
func (a *ContainerAgent) bid(req CallForProposal) (Proposal, bool) {
	c := a.Grid.Container(a.Container)
	if c == nil || !c.Provides(req.Service) {
		return Proposal{}, false
	}
	n := a.Grid.Node(c.NodeID)
	if n == nil || !n.Up() {
		return Proposal{}, false
	}
	predicted := grid.ExecTime(req.BaseTime, req.DataMB, n)
	return Proposal{
		Container:     a.Container,
		Node:          n.ID,
		PredictedTime: predicted,
		CostPerSec:    n.CostPerSec,
		PredictedCost: predicted * n.CostPerSec,
	}, true
}

package services

import (
	"fmt"
	"sync"

	"repro/internal/agent"
	"repro/internal/ontology"
)

// ShellRequest asks the ontology service for an ontology shell (classes and
// slots without instances).
type ShellRequest struct{ Name string }

// KBRequest asks for a populated ontology.
type KBRequest struct{ Name string }

// KBReply carries a knowledge base serialized as JSON (ontologies cross
// agent boundaries by value, never by reference).
type KBReply struct {
	Name string
	JSON []byte
}

// PublishKB stores or replaces a named knowledge base.
type PublishKB struct {
	Name string
	JSON []byte
}

// OntologyService maintains and distributes ontology shells and populated
// ontologies, global and user-specific (Section 2).
type OntologyService struct {
	mu  sync.Mutex
	kbs map[string]*ontology.KB
}

// NewOntologyService returns a service preloaded with the grid shell under
// the name "grid".
func NewOntologyService() *OntologyService {
	return &OntologyService{kbs: map[string]*ontology.KB{"grid": ontology.GridShell()}}
}

// Add registers a knowledge base under a name.
func (s *OntologyService) Add(name string, kb *ontology.KB) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kbs[name] = kb
}

// HandleMessage implements agent.Handler.
func (s *OntologyService) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case ShellRequest:
		s.mu.Lock()
		kb := s.kbs[req.Name]
		s.mu.Unlock()
		if kb == nil {
			_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("ontology: unknown ontology %q", req.Name))
			return
		}
		data, err := kb.Shell().MarshalJSON()
		if err != nil {
			_ = ctx.Reply(msg, agent.Failure, err)
			return
		}
		_ = ctx.Reply(msg, agent.Inform, KBReply{Name: req.Name, JSON: data})
	case KBRequest:
		s.mu.Lock()
		kb := s.kbs[req.Name]
		s.mu.Unlock()
		if kb == nil {
			_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("ontology: unknown ontology %q", req.Name))
			return
		}
		data, err := kb.MarshalJSON()
		if err != nil {
			_ = ctx.Reply(msg, agent.Failure, err)
			return
		}
		_ = ctx.Reply(msg, agent.Inform, KBReply{Name: req.Name, JSON: data})
	case PublishKB:
		kb, err := ontology.Decode(req.JSON)
		if err != nil {
			_ = ctx.Reply(msg, agent.Failure, err)
			return
		}
		s.Add(req.Name, kb)
		_ = ctx.Reply(msg, agent.Agree, nil)
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("ontology: unsupported content %T", msg.Content))
	}
}

package services

import (
	"testing"

	"repro/internal/grid"
)

// heterogeneousGrid builds three machines with very different speeds, all
// providing service S.
func heterogeneousGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g := grid.New(1)
	for _, spec := range []struct {
		id    string
		speed float64
	}{
		{"fast", 4}, {"mid", 2}, {"slow", 1},
	} {
		if err := g.AddNode(&grid.Node{ID: spec.id, Hardware: grid.Hardware{Speed: spec.speed}}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddContainer(&grid.Container{ID: "ac-" + spec.id, NodeID: spec.id, Services: []string{"S"}}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func mixedTasks() []TaskSpec {
	// One long task and several short ones: the classic case separating
	// min-min from max-min.
	return []TaskSpec{
		{ID: "long", Service: "S", BaseTime: 400},
		{ID: "s1", Service: "S", BaseTime: 40},
		{ID: "s2", Service: "S", BaseTime: 40},
		{ID: "s3", Service: "S", BaseTime: 40},
		{ID: "s4", Service: "S", BaseTime: 40},
	}
}

func TestHeuristicsAllComplete(t *testing.T) {
	s := &Scheduling{Grid: heterogeneousGrid(t)}
	for _, h := range []Heuristic{HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage, HeuristicFCFS} {
		reply := s.ScheduleWith(mixedTasks(), h)
		if len(reply.Assignments) != 5 {
			t.Errorf("%s: %d assignments, want 5", h, len(reply.Assignments))
		}
		if reply.Makespan <= 0 {
			t.Errorf("%s: zero makespan", h)
		}
		// No container runs two tasks at once.
		type span struct{ start, finish float64 }
		byContainer := map[string][]span{}
		for _, a := range reply.Assignments {
			for _, other := range byContainer[a.Container] {
				if a.Start < other.finish && other.start < a.Finish {
					t.Errorf("%s: overlap on %s", h, a.Container)
				}
			}
			byContainer[a.Container] = append(byContainer[a.Container], span{a.Start, a.Finish})
		}
	}
}

func TestMaxMinStartsLongTaskFirst(t *testing.T) {
	s := &Scheduling{Grid: heterogeneousGrid(t)}
	reply := s.ScheduleWith(mixedTasks(), HeuristicMaxMin)
	for _, a := range reply.Assignments {
		if a.Task == "long" {
			if a.Start != 0 {
				t.Errorf("max-min scheduled the long task at %g, want 0", a.Start)
			}
			if a.Node != "fast" {
				t.Errorf("max-min put the long task on %s, want fast", a.Node)
			}
			return
		}
	}
	t.Fatal("long task unassigned")
}

func TestMinMinDefersLongTask(t *testing.T) {
	s := &Scheduling{Grid: heterogeneousGrid(t)}
	reply := s.ScheduleWith(mixedTasks(), HeuristicMinMin)
	// Min-min places the short tasks first; the long task starts after at
	// least one short task finished on the fast machine.
	for _, a := range reply.Assignments {
		if a.Task == "long" && a.Start == 0 && a.Node == "fast" {
			t.Errorf("min-min put the long task on the fast machine at t=0: %+v", reply.Assignments)
		}
	}
}

func TestSufferagePrefersHighRegretTask(t *testing.T) {
	// Two tasks, one container each plus one shared fast container: the
	// task whose alternative is much worse must win the fast slot.
	g := grid.New(1)
	_ = g.AddNode(&grid.Node{ID: "fast", Hardware: grid.Hardware{Speed: 4}})
	_ = g.AddNode(&grid.Node{ID: "slowA", Hardware: grid.Hardware{Speed: 1}})
	_ = g.AddContainer(&grid.Container{ID: "ac-fast", NodeID: "fast", Services: []string{"A", "B"}})
	_ = g.AddContainer(&grid.Container{ID: "ac-slowA", NodeID: "slowA", Services: []string{"A"}})
	s := &Scheduling{Grid: g}
	// Task a: fast 25 or slow 100 (sufferage 75). Task b: fast only
	// (sufferage 0 — second best equals best when only one option).
	reply := s.ScheduleWith([]TaskSpec{
		{ID: "a", Service: "A", BaseTime: 100},
		{ID: "b", Service: "B", BaseTime: 100},
	}, HeuristicSufferage)
	if len(reply.Assignments) != 2 {
		t.Fatalf("assignments = %+v", reply.Assignments)
	}
	for _, a := range reply.Assignments {
		if a.Task == "a" && a.Node != "fast" {
			t.Errorf("high-regret task lost the fast slot: %+v", reply.Assignments)
		}
	}
}

func TestFCFSOrderPreserved(t *testing.T) {
	s := &Scheduling{Grid: heterogeneousGrid(t)}
	tasks := mixedTasks()
	reply := s.ScheduleWith(tasks, HeuristicFCFS)
	// FCFS assigns in input order: "long" gets the fast machine at t=0.
	if reply.Assignments[0].Task != "long" || reply.Assignments[0].Node != "fast" {
		t.Errorf("fcfs first assignment = %+v", reply.Assignments[0])
	}
}

func TestHeuristicMakespanOrdering(t *testing.T) {
	// On this workload, max-min should beat (or equal) FCFS and be no worse
	// than min-min's makespan; all should schedule everything.
	s := &Scheduling{Grid: heterogeneousGrid(t)}
	mk := map[Heuristic]float64{}
	for _, h := range []Heuristic{HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage, HeuristicFCFS} {
		mk[h] = s.ScheduleWith(mixedTasks(), h).Makespan
	}
	if mk[HeuristicMaxMin] > mk[HeuristicMinMin] {
		t.Errorf("max-min makespan %g > min-min %g on long+short mix", mk[HeuristicMaxMin], mk[HeuristicMinMin])
	}
	for h, m := range mk {
		if m <= 0 {
			t.Errorf("%s makespan %g", h, m)
		}
	}
}

func TestHeuristicStrings(t *testing.T) {
	for _, h := range []Heuristic{HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage, HeuristicFCFS, Heuristic(9)} {
		if h.String() == "" {
			t.Errorf("Heuristic(%d).String() empty", h)
		}
	}
}

func TestScheduleWithNoProviders(t *testing.T) {
	s := &Scheduling{Grid: grid.New(1)}
	for _, h := range []Heuristic{HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage, HeuristicFCFS} {
		reply := s.ScheduleWith([]TaskSpec{{ID: "t", Service: "S", BaseTime: 1}}, h)
		if len(reply.Assignments) != 0 {
			t.Errorf("%s scheduled a task with no providers", h)
		}
	}
}

func BenchmarkHeuristics(b *testing.B) {
	g := grid.Synthetic(grid.DefaultSyntheticConfig())
	s := &Scheduling{Grid: g}
	tasks := make([]TaskSpec, 64)
	services := []string{"POD", "P3DR", "POR", "PSF"}
	for i := range tasks {
		tasks[i] = TaskSpec{
			ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Service: services[i%4],
			BaseTime: float64(100 * (1 + i%7)), DataMB: 100,
		}
	}
	for _, h := range []Heuristic{HeuristicMinMin, HeuristicMaxMin, HeuristicSufferage, HeuristicFCFS} {
		b.Run(h.String(), func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				mk = s.ScheduleWith(tasks, h).Makespan
			}
			b.ReportMetric(mk, "makespan-s")
		})
	}
}

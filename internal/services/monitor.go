package services

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// The monitoring service of Figure 1: accurate, on-demand resource status
// (the brokerage's view may be stale; monitoring's is authoritative), plus
// per-node health tracked from container heartbeats and execution outcomes,
// and the quarantine interface the coordinator uses to take a faulty node
// out of rotation before re-planning (Figure 3: the new plan must route
// around the failed resource).

// NodeStatusRequest asks for the live status of a node.
type NodeStatusRequest struct{ Node string }

// NodeStatusReply reports it.
type NodeStatusReply struct {
	Node  string
	Known bool
	Up    bool
}

// SubscribeStatus subscribes the sender to node status-change events; the
// monitoring service delivers a StatusEvent to every subscriber whenever a
// PollStatus detects a node changed state.
type SubscribeStatus struct{}

// UnsubscribeStatus removes the sender's subscription.
type UnsubscribeStatus struct{}

// PollStatus makes the monitoring service re-scan the grid and notify
// subscribers of changes (in a deployment a ticker would send this; tests
// and scenarios drive it explicitly for determinism).
type PollStatus struct{}

// StatusEvent is pushed to subscribers when a node changes state.
type StatusEvent struct {
	Node string
	Up   bool
}

// Heartbeat is a container's liveness signal; containers emit one whenever
// they answer an availability probe or a call for proposals.
type Heartbeat struct {
	Node      string
	Container string
}

// ExecOutcome reports one finished execution attempt (success or failure)
// from a container, feeding the per-node health statistics.
type ExecOutcome struct {
	Node      string
	Container string
	Service   string
	OK        bool
	// Fault marks an injected fault (see grid.FaultSpec) as opposed to the
	// node's ordinary failure rate.
	Fault bool
}

// NodeHealthRequest asks for the full health record of a node.
type NodeHealthRequest struct{ Node string }

// NodeHealthReply answers it.
type NodeHealthReply struct{ Health NodeHealth }

// ClusterHealthRequest asks for the health summary of every node.
type ClusterHealthRequest struct{}

// ClusterHealthReply answers it, nodes sorted by ID.
type ClusterHealthReply struct {
	Nodes       []NodeHealth `json:"nodes"`
	Up          int          `json:"up"`
	Down        int          `json:"down"`
	Degraded    int          `json:"degraded"`
	Quarantined int          `json:"quarantined"`
}

// QuarantineRequest marks a node unavailable in the grid (its containers
// refuse work until repair) and records the reason. The coordinator sends it
// when an activity exhausts its retry budget on the node.
type QuarantineRequest struct {
	Node   string
	Reason string
}

// QuarantineReply acknowledges a quarantine.
type QuarantineReply struct {
	Node  string
	Known bool
}

// DegradedAfter is the number of consecutive failed executions after which
// a node's health status turns "degraded".
const DegradedAfter = 3

// Node health status values.
const (
	HealthHealthy     = "healthy"
	HealthDegraded    = "degraded"
	HealthDown        = "down"
	HealthQuarantined = "quarantined"
)

// NodeHealth is the monitoring service's view of one node.
type NodeHealth struct {
	Node                string `json:"node"`
	Known               bool   `json:"known"`
	Up                  bool   `json:"up"`
	Status              string `json:"status"`
	Heartbeats          int64  `json:"heartbeats"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	Faults              int64  `json:"faults"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	QuarantineReason    string `json:"quarantineReason,omitempty"`
}

// healthRecord accumulates per-node signals; guarded by Monitoring.mu.
type healthRecord struct {
	heartbeats          int64
	successes           int64
	failures            int64
	faults              int64
	consecutiveFailures int
}

// Monitoring is the monitoring service agent: authoritative on-demand node
// status, push subscriptions for status changes, per-node health from
// heartbeats and execution outcomes, and node quarantine.
type Monitoring struct {
	Grid *grid.Grid
	// Telemetry, when set, receives monitoring.* metrics and node-health
	// transition events on its bus; nil disables instrumentation (all
	// instruments are nil-safe).
	Telemetry *telemetry.Registry
	// Logger, when set, records health transitions and quarantines.
	Logger *slog.Logger

	mu          sync.Mutex
	subs        map[string]bool
	last        map[string]bool
	health      map[string]*healthRecord
	quarantined map[string]string // node -> reason
}

// HandleMessage implements agent.Handler.
func (s *Monitoring) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case NodeStatusRequest:
		n := s.Grid.Node(req.Node)
		reply := NodeStatusReply{Node: req.Node, Known: n != nil}
		if n != nil {
			reply.Up = n.Up()
		}
		_ = ctx.Reply(msg, agent.Inform, reply)
	case Heartbeat:
		s.Telemetry.Counter("monitoring.heartbeats").Inc()
		s.mu.Lock()
		s.record(req.Node).heartbeats++
		s.mu.Unlock()
	case ExecOutcome:
		s.Telemetry.Counter("monitoring.outcomes").Inc()
		s.mu.Lock()
		rec := s.record(req.Node)
		rec.heartbeats++
		wasDegraded := rec.consecutiveFailures >= DegradedAfter
		if req.OK {
			rec.successes++
			rec.consecutiveFailures = 0
		} else {
			rec.failures++
			rec.consecutiveFailures++
			if req.Fault {
				rec.faults++
			}
		}
		nowDegraded := rec.consecutiveFailures >= DegradedAfter
		s.mu.Unlock()
		// Publish only the edge, not every outcome while degraded.
		if !wasDegraded && nowDegraded {
			s.publishHealth(req.Node, HealthDegraded,
				fmt.Sprintf("%d consecutive failures (service %s)", DegradedAfter, req.Service))
		} else if wasDegraded && req.OK {
			s.publishHealth(req.Node, HealthHealthy, "recovered after successful execution")
		}
		s.updateUpGauge()
	case NodeHealthRequest:
		_ = ctx.Reply(msg, agent.Inform, NodeHealthReply{Health: s.NodeHealth(req.Node)})
	case ClusterHealthRequest:
		_ = ctx.Reply(msg, agent.Inform, s.ClusterHealth())
	case QuarantineRequest:
		known := s.Grid.Node(req.Node) != nil
		if known {
			_ = s.Grid.SetNodeUp(req.Node, false)
			s.mu.Lock()
			if s.quarantined == nil {
				s.quarantined = make(map[string]string)
			}
			s.quarantined[req.Node] = req.Reason
			s.mu.Unlock()
			s.Telemetry.Counter("monitoring.quarantines").Inc()
			s.publishHealth(req.Node, HealthQuarantined, req.Reason)
			s.updateUpGauge()
		}
		_ = ctx.Reply(msg, agent.Agree, QuarantineReply{Node: req.Node, Known: known})
	case SubscribeStatus:
		s.mu.Lock()
		if s.subs == nil {
			s.subs = make(map[string]bool)
		}
		s.subs[msg.Sender] = true
		if s.last == nil {
			s.last = s.snapshot()
		}
		s.mu.Unlock()
		_ = ctx.Reply(msg, agent.Agree, nil)
	case UnsubscribeStatus:
		s.mu.Lock()
		delete(s.subs, msg.Sender)
		s.mu.Unlock()
		_ = ctx.Reply(msg, agent.Agree, nil)
	case PollStatus:
		events := s.poll()
		for _, ev := range events {
			status := HealthDown
			detail := "node went down"
			if ev.Up {
				status, detail = HealthHealthy, "node came up"
			}
			s.publishHealth(ev.Node, status, detail)
		}
		for _, ev := range events {
			s.mu.Lock()
			subs := make([]string, 0, len(s.subs))
			for name := range s.subs {
				subs = append(subs, name)
			}
			s.mu.Unlock()
			sort.Strings(subs)
			for _, sub := range subs {
				_ = ctx.Send(sub, agent.Inform, OntMonitoring, ev)
			}
		}
		s.updateUpGauge()
		_ = ctx.Reply(msg, agent.Inform, len(events))
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("monitoring: unsupported content %T", msg.Content))
	}
}

// publishHealth mirrors one node-health transition onto the telemetry event
// bus and the structured log.
func (s *Monitoring) publishHealth(node, status, detail string) {
	s.Telemetry.PublishEvent(telemetry.Event{
		Node: node, Kind: telemetry.EventKindNodeHealth, Name: status, Detail: detail,
	})
	if s.Logger != nil {
		s.Logger.Info("node health transition",
			slog.String("node", node), slog.String("status", status), slog.String("detail", detail))
	}
}

// record returns (creating if needed) the health record of a node; callers
// hold s.mu.
func (s *Monitoring) record(node string) *healthRecord {
	if s.health == nil {
		s.health = make(map[string]*healthRecord)
	}
	rec := s.health[node]
	if rec == nil {
		rec = &healthRecord{}
		s.health[node] = rec
	}
	return rec
}

// NodeHealth assembles the health view of one node.
func (s *Monitoring) NodeHealth(node string) NodeHealth {
	n := s.Grid.Node(node)
	h := NodeHealth{Node: node, Known: n != nil}
	if n == nil {
		return h
	}
	h.Up = n.Up()
	s.mu.Lock()
	if rec := s.health[node]; rec != nil {
		h.Heartbeats = rec.heartbeats
		h.Successes = rec.successes
		h.Failures = rec.failures
		h.Faults = rec.faults
		h.ConsecutiveFailures = rec.consecutiveFailures
	}
	h.QuarantineReason = s.quarantined[node]
	s.mu.Unlock()
	switch {
	case h.QuarantineReason != "":
		h.Status = HealthQuarantined
	case !h.Up:
		h.Status = HealthDown
	case h.ConsecutiveFailures >= DegradedAfter:
		h.Status = HealthDegraded
	default:
		h.Status = HealthHealthy
	}
	return h
}

// ClusterHealth assembles the health summary of every node.
func (s *Monitoring) ClusterHealth() ClusterHealthReply {
	reply := ClusterHealthReply{Nodes: []NodeHealth{}}
	for _, n := range s.Grid.Nodes() {
		h := s.NodeHealth(n.ID)
		reply.Nodes = append(reply.Nodes, h)
		switch h.Status {
		case HealthQuarantined:
			reply.Quarantined++
		case HealthDown:
			reply.Down++
		case HealthDegraded:
			reply.Degraded++
		}
		if h.Up {
			reply.Up++
		}
	}
	return reply
}

// updateUpGauge refreshes the monitoring.nodes.up gauge from the grid.
func (s *Monitoring) updateUpGauge() {
	if s.Telemetry == nil {
		return
	}
	up := 0
	for _, n := range s.Grid.Nodes() {
		if n.Up() {
			up++
		}
	}
	s.Telemetry.Gauge("monitoring.nodes.up").Set(float64(up))
}

// snapshot captures every node's up/down state; callers hold s.mu.
func (s *Monitoring) snapshot() map[string]bool {
	out := make(map[string]bool)
	for _, n := range s.Grid.Nodes() {
		out[n.ID] = n.Up()
	}
	return out
}

// poll diffs the grid against the last snapshot and returns the changes.
func (s *Monitoring) poll() []StatusEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snapshot()
	var events []StatusEvent
	if s.last != nil {
		names := make([]string, 0, len(cur))
		for n := range cur {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if prev, seen := s.last[n]; !seen || prev != cur[n] {
				events = append(events, StatusEvent{Node: n, Up: cur[n]})
			}
		}
	}
	s.last = cur
	return events
}

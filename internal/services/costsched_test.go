package services

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomFleet draws n candidates with fuzzed hardware, prices, and (for
// some) contract-net predicted times.
func randomFleet(rng *rand.Rand, n int) []Candidate {
	fleet := make([]Candidate, n)
	for i := range fleet {
		c := Candidate{
			Container:     fmt.Sprintf("c-%03d", i),
			Node:          fmt.Sprintf("n-%03d", i),
			Domain:        fmt.Sprintf("d-%d", rng.Intn(5)),
			Speed:         0.25 + rng.Float64()*4,
			Cost:          rng.Float64() * 10,
			BandwidthMbps: 50 + rng.Float64()*2000,
			LatencyUs:     rng.Float64() * 5000,
		}
		if rng.Intn(4) == 0 {
			c.PredictedTime = 0.1 + rng.Float64()*5
		}
		if rng.Intn(8) == 0 {
			c.BandwidthMbps = 0 // unknown bandwidth: transfers assumed free
		}
		fleet[i] = c
	}
	return fleet
}

// randomInputs fuzzes the Size/Location shape of an activity's bound
// conditions: empty, local, remote, zero-size, and unknown-location refs.
func randomInputs(rng *rand.Rand, fleet []Candidate) []DataRef {
	inputs := make([]DataRef, rng.Intn(5))
	for i := range inputs {
		ref := DataRef{SizeMB: rng.Float64() * 1024}
		switch rng.Intn(4) {
		case 0: // unknown location
		case 1:
			ref.Location = fleet[rng.Intn(len(fleet))].Node
		case 2:
			ref.Location = fmt.Sprintf("d-%d", rng.Intn(5))
		case 3:
			ref.Location = "elsewhere"
		}
		if rng.Intn(6) == 0 {
			ref.SizeMB = 0
		}
		inputs[i] = ref
	}
	return inputs
}

// TestRankCostAwareNeverDominated is the scorer's core property: across
// fuzzed fleets and Size/Location inputs, the chosen head of the ranking is
// never strictly dominated — no other feasible candidate is strictly better
// on BOTH estimated cost and ETA. Table-driven over the scenarios the
// coordinator actually hits (unconstrained, deadlined, urgent, all-infeasible).
func TestRankCostAwareNeverDominated(t *testing.T) {
	cases := []struct {
		name     string
		deadline func(rng *rand.Rand) float64 // remaining deadline draw
		urgent   bool
	}{
		{"unconstrained-cheapest", func(*rand.Rand) float64 { return 0 }, false},
		{"deadlined-cheapest", func(rng *rand.Rand) float64 { return 0.5 + rng.Float64()*6 }, false},
		{"deadlined-urgent", func(rng *rand.Rand) float64 { return 0.5 + rng.Float64()*6 }, true},
		{"tight-deadline-urgent", func(rng *rand.Rand) float64 { return 0.01 + rng.Float64()*0.2 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(tc.name))))
			for trial := 0; trial < 500; trial++ {
				fleet := randomFleet(rng, 1+rng.Intn(24))
				inputs := randomInputs(rng, fleet)
				baseTime := 0.05 + rng.Float64()*10
				deadline := tc.deadline(rng)
				perf := map[string]PerfStats{}
				for _, c := range fleet {
					if rng.Intn(3) == 0 {
						perf[c.Node] = PerfStats{
							Runs:         1 + rng.Intn(10),
							SuccessRate:  rng.Float64(),
							MeanDuration: rng.Float64() * 8,
							MeanCost:     rng.Float64() * 20,
						}
					}
				}
				scored := ScoreCandidates(fleet, baseTime, inputs, perf, deadline)
				ranked := RankCostAware(scored, tc.urgent)
				if len(ranked) != len(fleet) {
					t.Fatalf("trial %d: ranking changed candidate count: %d != %d",
						trial, len(ranked), len(fleet))
				}
				head := ranked[0]
				for _, other := range ranked[1:] {
					if !other.Feasible {
						continue
					}
					if head.Feasible &&
						other.EstCost < head.EstCost && other.ETA < head.ETA {
						t.Fatalf("trial %d: chosen %s (cost %.4f eta %.4f) dominated by %s (cost %.4f eta %.4f)",
							trial, head.Container, head.EstCost, head.ETA,
							other.Container, other.EstCost, other.ETA)
					}
					if !head.Feasible {
						t.Fatalf("trial %d: infeasible %s ranked ahead of feasible %s",
							trial, head.Container, other.Container)
					}
				}
			}
		})
	}
}

// TestScoreCandidatesTransfer pins the transfer-time arithmetic: remote data
// pays SizeMB*8/BandwidthMbps, local/domain/unknown data is free.
func TestScoreCandidatesTransfer(t *testing.T) {
	cand := Candidate{
		Container: "c", Node: "n1", Domain: "d1",
		Speed: 2, Cost: 3, BandwidthMbps: 100, LatencyUs: 0,
	}
	baseTime := 4.0
	cases := []struct {
		name    string
		inputs  []DataRef
		wantETA float64
	}{
		{"no-inputs", nil, 2},
		{"local-node", []DataRef{{SizeMB: 500, Location: "n1"}}, 2},
		{"local-domain", []DataRef{{SizeMB: 500, Location: "d1"}}, 2},
		{"unknown-location", []DataRef{{SizeMB: 500}}, 2},
		{"remote", []DataRef{{SizeMB: 100, Location: "far"}}, 2 + 100*8/100.0},
		{"two-remote", []DataRef{
			{SizeMB: 100, Location: "far"}, {SizeMB: 50, Location: "father"},
		}, 2 + 150*8/100.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scored := ScoreCandidates([]Candidate{cand}, baseTime, tc.inputs, nil, 0)
			if got := scored[0].ETA; got != tc.wantETA {
				t.Errorf("ETA = %v, want %v", got, tc.wantETA)
			}
			if got, want := scored[0].EstCost, tc.wantETA*cand.Cost; got != want {
				t.Errorf("EstCost = %v, want %v", got, want)
			}
		})
	}
}

// TestScoreCandidatesHistory pins the historical-stats blend: mean duration
// averages into the ETA, and ≥3 runs of flaky history inflate it by the
// (floored) success rate.
func TestScoreCandidatesHistory(t *testing.T) {
	cand := Candidate{Container: "c", Node: "n1", Speed: 1, Cost: 1}
	base := 2.0
	for _, tc := range []struct {
		name string
		perf PerfStats
		want float64
	}{
		{"no-history", PerfStats{}, 2},
		{"blend-mean", PerfStats{Runs: 1, SuccessRate: 1, MeanDuration: 6}, 4},
		{"flaky-inflates", PerfStats{Runs: 5, SuccessRate: 0.5, MeanDuration: 6}, 8},
		{"success-floor", PerfStats{Runs: 5, SuccessRate: 0.01, MeanDuration: 6}, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			perf := map[string]PerfStats{}
			if tc.perf.Runs > 0 {
				perf["n1"] = tc.perf
			}
			scored := ScoreCandidates([]Candidate{cand}, base, nil, perf, 0)
			if got := scored[0].ETA; got != tc.want {
				t.Errorf("ETA = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestRankCostAwareModes pins the two ranking modes on a hand-built fleet:
// cheapest feasible first normally, fastest feasible first when urgent, and
// infeasible candidates always last.
func TestRankCostAwareModes(t *testing.T) {
	mk := func(id string, eta, cost float64, feasible bool) ScoredCandidate {
		return ScoredCandidate{
			Candidate: Candidate{Container: id},
			ETA:       eta, EstCost: cost, Feasible: feasible,
		}
	}
	scored := []ScoredCandidate{
		mk("slow-cheap", 10, 1, true),
		mk("fast-dear", 1, 10, true),
		mk("late", 0.5, 0.5, false),
	}
	if got := RankCostAware(scored, false)[0].Container; got != "slow-cheap" {
		t.Errorf("normal mode picked %s, want slow-cheap", got)
	}
	if got := RankCostAware(scored, true)[0].Container; got != "fast-dear" {
		t.Errorf("urgent mode picked %s, want fast-dear", got)
	}
	for _, urgent := range []bool{false, true} {
		ranked := RankCostAware(scored, urgent)
		if last := ranked[len(ranked)-1]; last.Container != "late" {
			t.Errorf("urgent=%v: infeasible candidate not ranked last (got %s)", urgent, last.Container)
		}
	}
}

package services

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// ContainersRequest asks the brokerage for the application containers that
// can possibly provide a service (Figure 3, step 4).
type ContainersRequest struct{ Service string }

// ContainersReply lists candidate container IDs. The brokerage answers from
// its snapshot, so the list "may be obsolete" in the paper's words: a
// container whose node failed after the last refresh is still listed.
type ContainersReply struct{ Containers []string }

// PerfRequest asks for past performance statistics of a service, optionally
// restricted to executions on one node (used by the coordinator's
// history-aware dispatch).
type PerfRequest struct {
	Service string
	Node    string // empty = all nodes
}

// PerfStats aggregates the execution history of a service.
type PerfStats struct {
	Runs         int
	SuccessRate  float64
	MeanDuration float64
	MeanCost     float64
}

// PerfReply carries the stats.
type PerfReply struct{ Stats PerfStats }

// ClassesRequest asks for the current resource equivalence classes.
type ClassesRequest struct{}

// ClassesReply lists them.
type ClassesReply struct{ Classes []grid.EquivalenceClass }

// ExecutionReport informs the brokerage of a completed execution, feeding
// the past-performance data base.
type ExecutionReport struct{ Exec grid.Execution }

// RefreshRequest forces the brokerage to resnapshot the grid.
type RefreshRequest struct{}

// Brokerage is the brokerage service agent. It keeps a best-effort snapshot
// of container offerings plus the performance history.
type Brokerage struct {
	Grid *grid.Grid

	// Telemetry, when set, counts requests, refreshes, and recorded
	// executions.
	Telemetry *telemetry.Registry

	mu       sync.Mutex
	snapshot map[string][]string // service -> container IDs (possibly stale)
	history  []grid.Execution
}

// NewBrokerage builds a brokerage with an immediate snapshot.
func NewBrokerage(g *grid.Grid) *Brokerage {
	b := &Brokerage{Grid: g}
	b.Refresh()
	return b
}

// Refresh re-snapshots the container offerings from the grid.
func (b *Brokerage) Refresh() {
	snap := make(map[string][]string)
	for _, c := range b.Grid.Containers() {
		n := b.Grid.Node(c.NodeID)
		if n == nil || !n.Up() {
			continue
		}
		for _, s := range c.Services {
			snap[s] = append(snap[s], c.ID)
		}
	}
	for s := range snap {
		sort.Strings(snap[s])
	}
	b.mu.Lock()
	b.snapshot = snap
	b.mu.Unlock()
	b.Telemetry.Counter("brokerage.refreshes").Inc()
}

// Record adds an execution to the history (also reachable by message).
func (b *Brokerage) Record(ex grid.Execution) {
	b.mu.Lock()
	b.history = append(b.history, ex)
	b.mu.Unlock()
	b.Telemetry.Counter("brokerage.executions.recorded").Inc()
}

func (b *Brokerage) stats(service, node string) PerfStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var s PerfStats
	okCount := 0
	for _, ex := range b.history {
		if ex.Service != service {
			continue
		}
		if node != "" && ex.Node != node {
			continue
		}
		s.Runs++
		s.MeanDuration += ex.Duration
		s.MeanCost += ex.Cost
		if ex.OK {
			okCount++
		}
	}
	if s.Runs > 0 {
		s.MeanDuration /= float64(s.Runs)
		s.MeanCost /= float64(s.Runs)
		s.SuccessRate = float64(okCount) / float64(s.Runs)
	}
	return s
}

// HandleMessage implements agent.Handler.
func (b *Brokerage) HandleMessage(ctx *agent.Context, msg agent.Message) {
	b.Telemetry.Counter("brokerage.requests").Inc()
	switch req := msg.Content.(type) {
	case ContainersRequest:
		b.mu.Lock()
		list := append([]string(nil), b.snapshot[req.Service]...)
		b.mu.Unlock()
		_ = ctx.Reply(msg, agent.Inform, ContainersReply{Containers: list})
	case PerfRequest:
		_ = ctx.Reply(msg, agent.Inform, PerfReply{Stats: b.stats(req.Service, req.Node)})
	case ClassesRequest:
		_ = ctx.Reply(msg, agent.Inform, ClassesReply{Classes: b.Grid.EquivalenceClasses()})
	case ExecutionReport:
		b.Record(req.Exec)
		if msg.Performative == agent.Request {
			_ = ctx.Reply(msg, agent.Agree, nil)
		}
	case RefreshRequest:
		b.Refresh()
		if msg.Performative == agent.Request {
			_ = ctx.Reply(msg, agent.Agree, nil)
		}
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("brokerage: unsupported content %T", msg.Content))
	}
}

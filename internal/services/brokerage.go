package services

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// ContainersRequest asks the brokerage for the application containers that
// can possibly provide a service (Figure 3, step 4).
type ContainersRequest struct{ Service string }

// ContainersReply lists candidate container IDs. The brokerage answers from
// its snapshot, so the list "may be obsolete" in the paper's words: a
// container whose node failed after the last refresh is still listed.
type ContainersReply struct{ Containers []string }

// PerfRequest asks for past performance statistics of a service, optionally
// restricted to executions on one node (used by the coordinator's
// history-aware dispatch).
type PerfRequest struct {
	Service string
	Node    string // empty = all nodes
}

// PerfStats aggregates the execution history of a service.
type PerfStats struct {
	Runs         int
	SuccessRate  float64
	MeanDuration float64
	MeanCost     float64
}

// PerfReply carries the stats.
type PerfReply struct{ Stats PerfStats }

// PerfBatchRequest asks for one service's statistics on several nodes in a
// single round-trip (the coordinator queries every dispatch candidate at
// once instead of paying one agent call per node).
type PerfBatchRequest struct {
	Service string
	Nodes   []string
}

// PerfBatchReply carries the per-node stats, index-aligned with the request's
// Nodes slice.
type PerfBatchReply struct{ Stats []PerfStats }

// ClassesRequest asks for the current resource equivalence classes.
type ClassesRequest struct{}

// ClassesReply lists them.
type ClassesReply struct{ Classes []grid.EquivalenceClass }

// ExecutionReport informs the brokerage of a completed execution, feeding
// the past-performance data base.
type ExecutionReport struct{ Exec grid.Execution }

// RefreshRequest forces the brokerage to resnapshot the grid.
type RefreshRequest struct{}

// Brokerage is the brokerage service agent. It keeps a best-effort snapshot
// of container offerings plus the performance history, folded incrementally
// into per-service and per-service-per-node aggregates so a PerfRequest is
// O(1) regardless of how many executions were ever recorded.
type Brokerage struct {
	Grid *grid.Grid

	// Telemetry, when set, counts requests, refreshes, and recorded
	// executions.
	Telemetry *telemetry.Registry

	mu       sync.Mutex
	snapshot map[string][]string   // service -> container IDs (possibly stale)
	perf     map[string]*perfAccum // "service" and "service\x00node" aggregates
}

// perfAccum is one running performance aggregate.
type perfAccum struct {
	runs, ok  int
	dur, cost float64
}

func (a *perfAccum) add(ex grid.Execution) {
	a.runs++
	a.dur += ex.Duration
	a.cost += ex.Cost
	if ex.OK {
		a.ok++
	}
}

func (a *perfAccum) stats() PerfStats {
	if a == nil || a.runs == 0 {
		return PerfStats{}
	}
	n := float64(a.runs)
	return PerfStats{
		Runs:         a.runs,
		SuccessRate:  float64(a.ok) / n,
		MeanDuration: a.dur / n,
		MeanCost:     a.cost / n,
	}
}

// perfKey joins service and node with a separator no service name contains.
func perfKey(service, node string) string { return service + "\x00" + node }

// NewBrokerage builds a brokerage with an immediate snapshot.
func NewBrokerage(g *grid.Grid) *Brokerage {
	b := &Brokerage{Grid: g}
	b.Refresh()
	return b
}

// Refresh re-snapshots the container offerings from the grid.
func (b *Brokerage) Refresh() {
	snap := make(map[string][]string)
	for _, c := range b.Grid.Containers() {
		n := b.Grid.Node(c.NodeID)
		if n == nil || !n.Up() {
			continue
		}
		for _, s := range c.Services {
			snap[s] = append(snap[s], c.ID)
		}
	}
	for s := range snap {
		sort.Strings(snap[s])
	}
	b.mu.Lock()
	b.snapshot = snap
	b.mu.Unlock()
	b.Telemetry.Counter("brokerage.refreshes").Inc()
}

// Record folds an execution into the running aggregates (also reachable by
// message).
func (b *Brokerage) Record(ex grid.Execution) {
	b.mu.Lock()
	if b.perf == nil {
		b.perf = make(map[string]*perfAccum)
	}
	for _, key := range []string{ex.Service, perfKey(ex.Service, ex.Node)} {
		a := b.perf[key]
		if a == nil {
			a = &perfAccum{}
			b.perf[key] = a
		}
		a.add(ex)
	}
	b.mu.Unlock()
	b.Telemetry.Counter("brokerage.executions.recorded").Inc()
}

func (b *Brokerage) stats(service, node string) PerfStats {
	key := service
	if node != "" {
		key = perfKey(service, node)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.perf[key].stats()
}

// HandleMessage implements agent.Handler.
func (b *Brokerage) HandleMessage(ctx *agent.Context, msg agent.Message) {
	b.Telemetry.Counter("brokerage.requests").Inc()
	switch req := msg.Content.(type) {
	case ContainersRequest:
		b.mu.Lock()
		list := append([]string(nil), b.snapshot[req.Service]...)
		b.mu.Unlock()
		_ = ctx.Reply(msg, agent.Inform, ContainersReply{Containers: list})
	case PerfRequest:
		_ = ctx.Reply(msg, agent.Inform, PerfReply{Stats: b.stats(req.Service, req.Node)})
	case PerfBatchRequest:
		stats := make([]PerfStats, len(req.Nodes))
		for i, node := range req.Nodes {
			stats[i] = b.stats(req.Service, node)
		}
		_ = ctx.Reply(msg, agent.Inform, PerfBatchReply{Stats: stats})
	case ClassesRequest:
		_ = ctx.Reply(msg, agent.Inform, ClassesReply{Classes: b.Grid.EquivalenceClasses()})
	case ExecutionReport:
		b.Record(req.Exec)
		if msg.Performative == agent.Request {
			_ = ctx.Reply(msg, agent.Agree, nil)
		}
	case RefreshRequest:
		b.Refresh()
		if msg.Performative == agent.Request {
			_ = ctx.Reply(msg, agent.Agree, nil)
		}
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("brokerage: unsupported content %T", msg.Content))
	}
}

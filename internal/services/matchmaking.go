package services

import (
	"fmt"
	"sort"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// MatchRequest asks for resources matching a set of conditions, the
// spot-market lookup of Section 2 ("locate resources in a spot market,
// subject to a wide range of conditions").
type MatchRequest struct {
	Service         string
	MinSpeed        float64  // 0 = any
	MaxCostPerSec   float64  // 0 = any
	MaxLatencyUs    float64  // 0 = any; fine-grain parallel tasks set this
	RequireSoftware []string // package names that must be installed
	Domain          string   // restrict to one administrative domain
}

// Candidate is one matched container with its ranking score (higher is
// better: fast, reliable, cheap).
type Candidate struct {
	Container string
	Node      string
	Speed     float64
	Cost      float64
	Score     float64

	// Domain, BandwidthMbps, and LatencyUs describe the hosting node so
	// cost-aware scoring can estimate data-transfer time without another
	// grid lookup.
	Domain        string
	BandwidthMbps float64
	LatencyUs     float64

	// PredictedTime, when > 0, is an authoritative run-time estimate for
	// this candidate (contract-net bids carry one); the cost scorer uses it
	// instead of deriving an ETA from hardware speed.
	PredictedTime float64
}

// MatchReply lists candidates best-first.
type MatchReply struct{ Candidates []Candidate }

// Matchmaking is the matchmaking service agent. Unlike the brokerage's
// best-effort snapshot, matchmaking reads the live grid, so its answers
// reflect current node status.
type Matchmaking struct {
	Grid *grid.Grid

	// Telemetry, when set, counts lookups and whether they produced any
	// candidate (hits) or none (misses).
	Telemetry *telemetry.Registry
}

// Match evaluates a request against the live grid.
func (s *Matchmaking) Match(req MatchRequest) []Candidate {
	var out []Candidate
	defer func() {
		tel := s.Telemetry
		if tel == nil {
			return
		}
		tel.Counter("matchmaking.requests").Inc()
		if len(out) > 0 {
			tel.Counter("matchmaking.hits").Inc()
		} else {
			tel.Counter("matchmaking.misses").Inc()
		}
	}()
	for _, c := range s.Grid.ContainersFor(req.Service) {
		n := s.Grid.Node(c.NodeID)
		if n == nil {
			continue
		}
		hw := n.Hardware
		if req.MinSpeed > 0 && hw.Speed < req.MinSpeed {
			continue
		}
		if req.MaxCostPerSec > 0 && n.CostPerSec > req.MaxCostPerSec {
			continue
		}
		if req.MaxLatencyUs > 0 && hw.LatencyUs > req.MaxLatencyUs {
			continue
		}
		if req.Domain != "" && n.Domain != req.Domain {
			continue
		}
		haveAll := true
		for _, sw := range req.RequireSoftware {
			if !n.HasSoftware(sw) {
				haveAll = false
				break
			}
		}
		if !haveAll {
			continue
		}
		// Score: speed, discounted by failure rate, per unit cost.
		cost := n.CostPerSec
		if cost <= 0 {
			cost = 1e-6
		}
		score := hw.Speed * (1 - n.FailureRate) / cost
		out = append(out, Candidate{
			Container:     c.ID,
			Node:          n.ID,
			Speed:         hw.Speed,
			Cost:          n.CostPerSec,
			Score:         score,
			Domain:        n.Domain,
			BandwidthMbps: hw.BandwidthMbps,
			LatencyUs:     hw.LatencyUs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Container < out[j].Container
	})
	return out
}

// HandleMessage implements agent.Handler.
func (s *Matchmaking) HandleMessage(ctx *agent.Context, msg agent.Message) {
	req, ok := msg.Content.(MatchRequest)
	if !ok {
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("matchmaking: unsupported content %T", msg.Content))
		return
	}
	_ = ctx.Reply(msg, agent.Inform, MatchReply{Candidates: s.Match(req)})
}

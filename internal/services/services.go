// Package services implements the core services of Figure 1 as agents on
// the platform of package agent: information, brokerage, matchmaking,
// monitoring, scheduling, persistent storage, authentication, and
// simulation, plus the Application Container agents that host end-user
// services. The planning and coordination services live in their own
// packages (planner, coordination) and talk to these over the same message
// ontologies.
//
// Core services are persistent and reliable; end-user services (the
// containers) may fail with their nodes, which is what exercises the
// re-planning flow of Figure 3.
package services

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
)

// Well-known agent names for the core services.
const (
	InformationName    = "information"
	BrokerageName      = "brokerage"
	MatchmakingName    = "matchmaking"
	MonitoringName     = "monitoring"
	SchedulingName     = "scheduling"
	StorageName        = "storage"
	AuthenticationName = "authentication"
	SimulationName     = "simulation"
	PlanningName       = "planning"
	CoordinationName   = "coordination"
	OntologyName       = "ontology"
)

// Ontology names (the vocabulary tag on messages).
const (
	OntInformation = "grid-information"
	OntBrokerage   = "grid-brokerage"
	OntMatchmaking = "grid-matchmaking"
	OntMonitoring  = "grid-monitoring"
	OntScheduling  = "grid-scheduling"
	OntStorage     = "grid-storage"
	OntAuth        = "grid-authentication"
	OntSimulation  = "grid-simulation"
	OntExecution   = "grid-execution"
	OntPlanning    = "grid-planning"
	OntOntology    = "grid-ontology"
)

// CallTimeout is the default synchronous call budget between services.
const CallTimeout = 30 * time.Second

// ---------------------------------------------------------------------------
// Information service: all services register their offerings here (white and
// yellow pages).

// Offer describes one registered service offering.
type Offer struct {
	Name     string // agent name providing the offer
	Type     string // offering type, e.g. "brokerage", "end-user:P3DR"
	Location string
}

// LookupRequest asks for the agents offering a type.
type LookupRequest struct{ Type string }

// LookupReply lists the matching offers sorted by agent name.
type LookupReply struct{ Offers []Offer }

// Information is the information service agent.
type Information struct {
	mu     sync.Mutex
	offers map[string][]Offer // type -> offers
}

// NewInformation returns an empty information service.
func NewInformation() *Information {
	return &Information{offers: make(map[string][]Offer)}
}

// HandleMessage implements agent.Handler.
func (s *Information) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch content := msg.Content.(type) {
	case Offer:
		s.mu.Lock()
		s.offers[content.Type] = append(s.offers[content.Type], content)
		s.mu.Unlock()
		if msg.Performative == agent.Request {
			_ = ctx.Reply(msg, agent.Agree, content)
		}
	case LookupRequest:
		s.mu.Lock()
		offers := append([]Offer(nil), s.offers[content.Type]...)
		s.mu.Unlock()
		sort.Slice(offers, func(i, j int) bool { return offers[i].Name < offers[j].Name })
		_ = ctx.Reply(msg, agent.Inform, LookupReply{Offers: offers})
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("information: unsupported content %T", msg.Content))
	}
}

// RegisterOffer registers an offering with the information service on
// behalf of ctx's agent.
func RegisterOffer(ctx *agent.Context, offerType, location string) error {
	_, err := ctx.Call(InformationName, OntInformation,
		Offer{Name: ctx.Name(), Type: offerType, Location: location}, CallTimeout)
	return err
}

// Lookup queries the information service for offers of a type.
func Lookup(ctx *agent.Context, offerType string) ([]Offer, error) {
	reply, err := ctx.Call(InformationName, OntInformation, LookupRequest{Type: offerType}, CallTimeout)
	if err != nil {
		return nil, err
	}
	lr, ok := reply.Content.(LookupReply)
	if !ok {
		return nil, fmt.Errorf("services: unexpected lookup reply %T", reply.Content)
	}
	return lr.Offers, nil
}

// ---------------------------------------------------------------------------
// Monitoring service: see monitor.go.

// ---------------------------------------------------------------------------
// Authentication service: token issue and verification (HMAC-based).

// LoginRequest authenticates a principal.
type LoginRequest struct{ Principal, Secret string }

// LoginReply carries the session token.
type LoginReply struct{ Token string }

// VerifyRequest checks a token.
type VerifyRequest struct{ Token string }

// VerifyReply reports the principal a valid token belongs to.
type VerifyReply struct {
	Valid     bool
	Principal string
}
